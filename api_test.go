package privcloud

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func demoSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{
		Providers: []ProviderSpec{
			{Name: "alpha", Privacy: High, Cost: 2},
			{Name: "beta", Privacy: High, Cost: 1},
			{Name: "gamma", Privacy: High, Cost: 0},
			{Name: "delta", Privacy: Moderate, Cost: 0},
			{Name: "epsilon", Privacy: High, Cost: 3},
			{Name: "zeta", Privacy: Low, Cost: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterClient("acme"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddPassword("acme", "s3cret", High); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemEndToEnd(t *testing.T) {
	sys := demoSystem(t)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 70_000)
	rng.Read(data)
	info, err := sys.Upload("acme", "s3cret", "ledger.csv", data, High, UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Chunks < 2 || info.Raid != Raid5 {
		t.Fatalf("info = %+v", info)
	}
	n, err := sys.ChunkCount("acme", "s3cret", "ledger.csv")
	if err != nil || n != info.Chunks {
		t.Fatalf("ChunkCount = %d, %v", n, err)
	}
	back, err := sys.GetFile("acme", "s3cret", "ledger.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("round trip mismatch")
	}
	chunk, err := sys.GetChunk("acme", "s3cret", "ledger.csv", 0)
	if err != nil || !bytes.Equal(chunk, data[:len(chunk)]) {
		t.Fatalf("chunk: %v", err)
	}
	st := sys.Stats()
	if st.Chunks != info.Chunks || st.Files != 1 || st.Clients != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSystemOutageRecovery(t *testing.T) {
	sys := demoSystem(t)
	data := make([]byte, 50_000)
	rand.New(rand.NewSource(2)).Read(data)
	if _, err := sys.Upload("acme", "s3cret", "f", data, Moderate, UploadOptions{Assurance: Raid6}); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetProviderOutage("alpha", true); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetProviderOutage("beta", true); err != nil {
		t.Fatal(err)
	}
	back, err := sys.GetFile("acme", "s3cret", "f")
	if err != nil {
		t.Fatalf("RAID-6 should mask two outages: %v", err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("recovered data mismatch")
	}
	if err := sys.SetProviderOutage("ghost", true); err == nil {
		t.Fatal("unknown provider accepted")
	}
}

func TestSystemLifecycle(t *testing.T) {
	sys := demoSystem(t)
	orig := []byte("version one of the chunk .........")
	if _, err := sys.Upload("acme", "s3cret", "f", orig, Low, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := sys.UpdateChunk("acme", "s3cret", "f", 0, []byte("version two")); err != nil {
		t.Fatal(err)
	}
	snap, err := sys.GetSnapshot("acme", "s3cret", "f", 0)
	if err != nil || !bytes.Equal(snap, orig) {
		t.Fatalf("snapshot: %q, %v", snap, err)
	}
	if err := sys.RemoveChunk("acme", "s3cret", "f", 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveFile("acme", "s3cret", "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.GetFile("acme", "s3cret", "f"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("err = %v", err)
	}
}

func TestSystemAccessControl(t *testing.T) {
	sys := demoSystem(t)
	if err := sys.AddPassword("acme", "weak", Public); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Upload("acme", "s3cret", "s", []byte("x"), High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.GetFile("acme", "weak", "s"); !errors.Is(err, ErrAuth) {
		t.Fatalf("weak password: %v", err)
	}
	if _, err := sys.GetFile("acme", "nope", "s"); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong password: %v", err)
	}
}

func TestSystemConfigValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty config: %v", err)
	}
	if _, err := NewSystem(SystemConfig{Providers: []ProviderSpec{{Name: "", Privacy: Low}}}); err == nil {
		t.Fatal("empty provider name accepted")
	}
	if _, err := NewSystem(SystemConfig{Providers: []ProviderSpec{
		{Name: "a", Privacy: High}, {Name: "a", Privacy: Low},
	}}); err == nil {
		t.Fatal("duplicate provider accepted")
	}
	if _, err := NewSystem(SystemConfig{Providers: []ProviderSpec{{Name: "a", Privacy: High, Cost: 9}}}); err == nil {
		t.Fatal("bad cost level accepted")
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := demoSystem(t)
	if sys.Distributor() == nil || sys.Fleet() == nil {
		t.Fatal("accessors returned nil")
	}
	if sys.Fleet().Len() != 6 {
		t.Fatalf("fleet len = %d", sys.Fleet().Len())
	}
}

func TestSystemStreaming(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Providers: []ProviderSpec{
			{Name: "alpha", Privacy: High, Cost: 1},
			{Name: "beta", Privacy: High, Cost: 1},
			{Name: "gamma", Privacy: High, Cost: 1},
			{Name: "delta", Privacy: High, Cost: 1},
			{Name: "epsilon", Privacy: High, Cost: 1},
		},
		StreamWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterClient("acme"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddPassword("acme", "s3cret", High); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 120_000)
	rng.Read(data)
	info, err := sys.UploadFrom("acme", "s3cret", "big.dat", bytes.NewReader(data), High, UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Bytes != len(data) {
		t.Fatalf("info = %+v", info)
	}
	var buf bytes.Buffer
	n, err := sys.GetFileTo(&buf, "acme", "s3cret", "big.dat")
	if err != nil || n != int64(len(data)) || !bytes.Equal(buf.Bytes(), data) {
		t.Fatalf("GetFileTo: n=%d err=%v", n, err)
	}
	// The buffered surface reads what the streaming surface wrote.
	got, err := sys.GetFile("acme", "s3cret", "big.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("GetFile interop: %v", err)
	}
	m := sys.Metrics()
	if m.StreamUploads != 1 || m.StreamReads != 1 {
		t.Fatalf("stream counters: %+v", m)
	}
	if _, err := sys.UploadFrom("acme", "s3cret", "big.dat", bytes.NewReader(data), High, UploadOptions{}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate UploadFrom: %v", err)
	}
}
