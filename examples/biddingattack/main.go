// Biddingattack replays the paper's §VII-A Hercules/Titans story end to
// end: the company Hercules stores its tender-bidding history in the
// cloud; the malicious employee Hera runs multivariate regression on
// whatever her provider holds. With a single provider she recovers the
// pricing rule; after Hercules distributes the data over Titans, Spartans
// and Yagamis, each insider's regression yields a different misleading
// equation.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/mining"
	"repro/internal/privacy"
	"repro/internal/provider"
)

func main() {
	// Part 1: the paper's exact 12-row Table IV.
	r, err := experiments.Table4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatTable4(r))

	// Part 2: the same attack against the real system at scale.
	fmt.Println("\n--- end-to-end: 500 synthetic bidding rows through the distributor ---")
	model := dataset.PaperBiddingModel()
	recs := dataset.GenerateBiddingHistory(500, model, rand.New(rand.NewSource(42)))
	csvData := dataset.BiddingCSV(recs)
	truth := &mining.RegressionModel{Coeffs: []float64{model.A, model.B, model.C}, Intercept: model.D}
	fmt.Printf("planted pricing rule: %v\n\n", truth)

	fleet, err := provider.NewFleet(
		provider.MustNew(provider.Info{Name: "Titans", PL: privacy.High, CL: 1}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "Spartans", PL: privacy.High, CL: 1}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "Yagamis", PL: privacy.High, CL: 1}, provider.Options{}),
	)
	if err != nil {
		log.Fatal(err)
	}
	policy := privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
		privacy.Public: 4 << 10, privacy.Low: 2 << 10, privacy.Moderate: 1 << 10, privacy.High: 512,
	}}
	d, err := core.New(core.Config{Fleet: fleet, ChunkPolicy: policy, StripeWidth: 3})
	if err != nil {
		log.Fatal(err)
	}
	must(d.RegisterClient("Hercules"))
	must(d.AddPassword("Hercules", "labours", privacy.High))
	if _, err := d.Upload("Hercules", "labours", "bids.csv", csvData, privacy.Moderate, core.UploadOptions{NoParity: true}); err != nil {
		log.Fatal(err)
	}

	blobs, err := attack.DumpProviders(fleet, []int{0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	perProv := attack.PerProviderBiddingModels(blobs)
	names := make([]string, 0, len(perProv))
	for n := range perProv {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		res := perProv[name]
		if res.Model == nil {
			fmt.Printf("Hera at %-9s rows=%3d -> mining FAILED: %v\n", name, res.RowsRecovered, res.FitErr)
			continue
		}
		relErr, _ := mining.RelativeCoefficientError(res.Model, truth)
		fmt.Printf("Hera at %-9s rows=%3d -> %v   (rel. error vs truth: %.2f)\n",
			name, res.RowsRecovered, res.Model, relErr)
	}

	pooled := attack.BiddingRegressionAttack(blobs)
	relErr, _ := mining.RelativeCoefficientError(pooled.Model, truth)
	fmt.Printf("\noutside attacker pooling all three providers: rows=%d, rel. error %.2f\n",
		pooled.RowsRecovered, relErr)
	fmt.Println("(pooling everything approaches the truth — which is why the paper")
	fmt.Println(" assumes compromising *all* providers at once is impractical)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
