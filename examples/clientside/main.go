// Clientside demonstrates the paper's §IV-C alternative: the Cloud Data
// Distributor implemented *inside the client* with a Chord-like hash ring
// mapping each ⟨filename, serial⟩ to a provider — no third-party
// distributor to trust or to fail. It also shows the consistent-hashing
// payoff on provider churn.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dht"
	"repro/internal/privacy"
	"repro/internal/provider"
)

func main() {
	fleet, err := provider.NewFleet()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p := provider.MustNew(provider.Info{
			Name: fmt.Sprintf("provider-%d", i), PL: privacy.High, CL: 0,
		}, provider.Options{})
		must(fleet.Add(p))
	}

	cd, err := dht.NewClientDistributor(fleet, privacy.ChunkSizePolicy{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client-side distributor over a %d-node hash ring\n", cd.Ring().Size())

	// Upload straight from the client: the ring decides placement.
	data := make([]byte, 200_000)
	rand.New(rand.NewSource(1)).Read(data)
	n, err := cd.Upload("archive.bin", data, privacy.Moderate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded archive.bin: %d chunks, client table uses %d bytes of memory\n", n, cd.TableBytes())
	for _, p := range fleet.All() {
		fmt.Printf("  %s holds %d chunks\n", p.Info().Name, p.Len())
	}

	back, err := cd.GetFile("archive.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved: %d bytes, intact=%v\n", len(back), bytes.Equal(back, data))

	// Ring lookups are O(log n) hops.
	ring := cd.Ring()
	members := ring.Members()
	total := 0
	for i := 0; i < 200; i++ {
		res, err := ring.Lookup(members[i%len(members)], dht.ChunkKey("archive.bin", i))
		if err != nil {
			log.Fatal(err)
		}
		total += res.Hops
	}
	fmt.Printf("mean ring-lookup cost over 200 keys: %.2f hops (log2(%d) = 3)\n",
		float64(total)/200, ring.Size())

	// Consistent hashing under churn: removing one node only remaps the
	// keys it owned.
	moved := 0
	keys := make([]uint64, 1000)
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = dht.ChunkKey("churn-probe", i)
		before[i], _ = ring.Successor(keys[i])
	}
	must(ring.Leave("provider-3"))
	for i := range keys {
		after, _ := ring.Successor(keys[i])
		if after != before[i] {
			moved++
		}
	}
	fmt.Printf("after provider-3 left the ring, only %d/1000 sampled keys remapped\n", moved)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
