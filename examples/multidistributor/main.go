// Multidistributor demonstrates the paper's Fig. 2 extended architecture:
// several Cloud Data Distributors share one provider fleet. The primary
// handles uploads and replicates its tables to secondaries; when the
// primary fails, retrieval continues through a secondary — removing the
// single point of failure §IV-C warns about.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
)

func main() {
	fleet, err := provider.NewFleet()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p := provider.MustNew(provider.Info{
			Name: fmt.Sprintf("cp%d", i), PL: privacy.High, CL: privacy.CostLevel(i % 4),
		}, provider.Options{})
		must(fleet.Add(p))
	}

	var dists []*core.Distributor
	for i := 0; i < 3; i++ {
		d, err := core.New(core.Config{Fleet: fleet, Secret: []byte{byte(i + 1)}})
		if err != nil {
			log.Fatal(err)
		}
		dists = append(dists, d)
	}
	cluster, err := core.NewCluster(dists...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: 1 primary + %d secondary distributors over %d providers\n",
		cluster.Size()-1, fleet.Len())

	must(cluster.RegisterClient("client"))
	must(cluster.AddPassword("client", "pw", privacy.High))
	data := make([]byte, 80_000)
	rand.New(rand.NewSource(7)).Read(data)
	info, err := cluster.Upload("client", "pw", "report.bin", data, privacy.Moderate, core.UploadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded report.bin via primary: %d chunks (metadata replicated to secondaries)\n", info.Chunks)

	fmt.Println("\n>>> primary distributor fails")
	must(cluster.SetDown(0, true))

	back, err := cluster.GetFile("client", "pw", "report.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieval served by a secondary: %d bytes, intact=%v\n", len(back), bytes.Equal(back, data))

	if _, err := cluster.Upload("client", "pw", "new.bin", data, privacy.Low, core.UploadOptions{}); err != nil {
		fmt.Printf("upload correctly refused while primary is down: %v\n", err)
	}

	fmt.Println("\n>>> primary recovers")
	must(cluster.SetDown(0, false))
	if _, err := cluster.Upload("client", "pw", "new.bin", data, privacy.Low, core.UploadOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("upload via recovered primary: ok")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
