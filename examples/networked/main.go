// Networked runs the whole architecture as actual HTTP services on
// loopback — providers, distributor, and a client — mirroring the paper's
// prototype of PCs acting as Cloud Providers and a separate PC as the
// Cloud Data Distributor.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/transport"
)

func main() {
	// Five provider processes (httptest servers stand in for separate
	// machines; cmd/provider runs the same handler standalone).
	fleet, err := provider.NewFleet()
	if err != nil {
		log.Fatal(err)
	}
	var mems []*provider.MemProvider
	for i := 0; i < 5; i++ {
		mem := provider.MustNew(provider.Info{
			Name: fmt.Sprintf("node%d", i), PL: privacy.High, CL: privacy.CostLevel(i % 4),
		}, provider.Options{})
		mems = append(mems, mem)
		srv := httptest.NewServer(transport.NewProviderServer(mem))
		defer srv.Close()
		remote, err := transport.DialProvider(srv.URL, srv.Client())
		if err != nil {
			log.Fatal(err)
		}
		must(fleet.Add(remote))
		fmt.Printf("provider %q serving at %s\n", remote.Info().Name, srv.URL)
	}

	// The distributor process.
	dist, err := core.New(core.Config{Fleet: fleet})
	if err != nil {
		log.Fatal(err)
	}
	dsrv := httptest.NewServer(transport.NewDistributorServer(dist))
	defer dsrv.Close()
	fmt.Printf("distributor serving at %s\n\n", dsrv.URL)

	// The client process.
	client := transport.NewClient(dsrv.URL, dsrv.Client())
	must(client.RegisterClient("bob"))
	must(client.AddPassword("bob", "x9pr", privacy.High))

	data := make([]byte, 100_000)
	rand.New(rand.NewSource(3)).Read(data)
	info, err := client.Upload("bob", "x9pr", "archive.bin", data, privacy.Moderate, transport.UploadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client uploaded archive.bin over HTTP: %d chunks\n", info.Chunks)

	// A real outage on a backing node: the distributor reconstructs.
	mems[1].SetOutage(true)
	fmt.Println("node1 goes down...")
	back, err := client.GetFile("bob", "x9pr", "archive.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client retrieved archive.bin during the outage: %d bytes, intact=%v\n",
		len(back), bytes.Equal(back, data))

	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributor stats over the wire: chunks=%d parity=%d per-provider=%v\n",
		stats.Chunks, stats.ParityShards, stats.PerProvider)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
