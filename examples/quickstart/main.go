// Quickstart: stand up the full architecture in-process — a fleet of
// simulated cloud providers and the Cloud Data Distributor — then walk
// through the paper's client workflow: register, add ⟨password, PL⟩
// pairs, upload files at different privacy levels, survive a provider
// outage, and print the paper's Tables I–III.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	privcloud "repro"
	"repro/internal/core"
)

func main() {
	// Six providers with mixed reputation (privacy level) and cost.
	sys, err := privcloud.NewSystem(privcloud.SystemConfig{
		Providers: []privcloud.ProviderSpec{
			{Name: "Adobe", Privacy: privcloud.High, Cost: 3},
			{Name: "AWS", Privacy: privcloud.High, Cost: 3},
			{Name: "Google", Privacy: privcloud.High, Cost: 2},
			{Name: "Sky", Privacy: privcloud.Moderate, Cost: 1},
			{Name: "Sea", Privacy: privcloud.Low, Cost: 1},
			{Name: "Earth", Privacy: privcloud.Low, Cost: 0},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// One client, two access groups: admins may read everything, the
	// public password only PL0 data.
	must(sys.RegisterClient("acme"))
	must(sys.AddPassword("acme", "admin-pw", privcloud.High))
	must(sys.AddPassword("acme", "public-pw", privcloud.Public))

	// Upload a sensitive ledger (PL3 → small chunks, trusted providers
	// only) and a public dataset (PL0 → large chunks, any provider).
	rng := rand.New(rand.NewSource(1))
	ledger := make([]byte, 120_000)
	rng.Read(ledger)
	info, err := sys.Upload("acme", "admin-pw", "ledger.bin", ledger, privcloud.High, privcloud.UploadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded ledger.bin: %d bytes -> %d chunks, %v assurance\n", info.Bytes, info.Chunks, info.Raid)

	readme := []byte("hello world — publicly shareable bytes\n")
	info, err = sys.Upload("acme", "admin-pw", "readme.txt", readme, privcloud.Public, privcloud.UploadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded readme.txt: %d bytes -> %d chunks\n", info.Bytes, info.Chunks)

	// Access control: the public password cannot touch the ledger.
	if _, err := sys.GetFile("acme", "public-pw", "ledger.bin"); err != nil {
		fmt.Printf("public-pw denied on ledger.bin: %v\n", err)
	}

	// Availability: take one provider down; RAID-5 masks it.
	must(sys.SetProviderOutage("Google", true))
	back, err := sys.GetFile("acme", "admin-pw", "ledger.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved ledger.bin with Google down: %d bytes, intact=%v\n", len(back), bytes.Equal(back, ledger))
	must(sys.SetProviderOutage("Google", false))

	// The paper's three tables.
	d := sys.Distributor()
	fmt.Println("\nTable I — Cloud Provider Table")
	fmt.Print(core.FormatProviderTable(d.ProviderTable()))
	fmt.Println("\nTable II — Client Table")
	fmt.Print(core.FormatClientTable(d.ClientTable()))
	fmt.Println("\nTable III — Chunk Table (first rows)")
	rows := d.ChunkTable()
	if len(rows) > 6 {
		rows = rows[:6]
	}
	fmt.Print(core.FormatChunkTable(rows))

	st := sys.Stats()
	fmt.Printf("\nplacement: %d chunks + %d parity over %d providers: %v\n",
		st.Chunks, st.ParityShards, len(st.PerProvider), st.PerProvider)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
