// Attacksim plays the outside attacker: it uploads three different
// sensitive datasets (bidding records, GPS traces, purchase baskets)
// through the distributor, then sweeps how many providers the attacker
// compromises and reports what each mining algorithm extracts — the
// paper's threat model measured end to end.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/mining"
	"repro/internal/privacy"
	"repro/internal/provider"
)

const nProviders = 6

func main() {
	fleet, err := provider.NewFleet()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nProviders; i++ {
		p := provider.MustNew(provider.Info{
			Name: fmt.Sprintf("cp%d", i), PL: privacy.High, CL: privacy.CostLevel(i % 4),
		}, provider.Options{})
		must(fleet.Add(p))
	}
	policy := privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
		privacy.Public: 4 << 10, privacy.Low: 2 << 10, privacy.Moderate: 1 << 10, privacy.High: 512,
	}}
	d, err := core.New(core.Config{Fleet: fleet, ChunkPolicy: policy, StripeWidth: 4})
	if err != nil {
		log.Fatal(err)
	}
	must(d.RegisterClient("victim"))
	must(d.AddPassword("victim", "pw", privacy.High))

	// Dataset 1: bidding records with a planted pricing rule.
	bidModel := dataset.PaperBiddingModel()
	bids := dataset.GenerateBiddingHistory(400, bidModel, rand.New(rand.NewSource(1)))
	upload(d, "bids.csv", dataset.BiddingCSV(bids), privacy.Moderate)
	truth := &mining.RegressionModel{Coeffs: []float64{bidModel.A, bidModel.B, bidModel.C}, Intercept: bidModel.D}

	// Dataset 2: GPS traces with planted behavioural groups.
	gpsCfg := dataset.DefaultGPSConfig()
	profiles, points, err := dataset.GenerateGPS(gpsCfg)
	if err != nil {
		log.Fatal(err)
	}
	upload(d, "gps.csv", dataset.GPSCSV(points), privacy.High)

	// Dataset 3: purchase baskets with planted associations.
	basketCfg := dataset.DefaultBasketConfig()
	basketCfg.Transactions = 800
	txns, err := dataset.GenerateBaskets(basketCfg)
	if err != nil {
		log.Fatal(err)
	}
	var basketLog []byte
	for _, t := range txns {
		basketLog = append(basketLog, []byte(strings.Join(t, ","))...)
		basketLog = append(basketLog, '\n')
	}
	upload(d, "txns.log", basketLog, privacy.Moderate)

	fmt.Printf("victim data distributed over %d providers\n\n", nProviders)
	fmt.Printf("%-12s %-28s %-24s %-18s\n", "compromised", "regression (relErr)", "clustering (ARI)", "planted rules")

	rng := rand.New(rand.NewSource(99))
	for k := 1; k <= nProviders; k++ {
		_, blobs, err := attack.CompromiseRandom(fleet, k, rng)
		if err != nil {
			log.Fatal(err)
		}

		// The attacker first triages stolen blobs by sniffing content,
		// then feeds each pile to the matching algorithm.
		reg := attack.BiddingRegressionAttack(attack.FilterKind(blobs, attack.KindBidding))
		regCol := "FAILED"
		if reg.Model != nil {
			e, _ := mining.RelativeCoefficientError(reg.Model, truth)
			regCol = fmt.Sprintf("%d rows, relErr %.2f", reg.RowsRecovered, e)
		}

		gps, err := attack.GPSClusteringAttack(attack.FilterKind(blobs, attack.KindGPS), gpsCfg.Groups)
		gpsCol := "FAILED"
		if err == nil && len(gps.UserIDs) > 1 {
			truthLabels := make([]int, len(gps.UserIDs))
			for i, id := range gps.UserIDs {
				truthLabels[i] = profiles[id].Group
			}
			ari, _ := metrics.AdjustedRandIndex(gps.Labels, truthLabels)
			gpsCol = fmt.Sprintf("%d users, ARI %.2f", len(gps.UserIDs), ari)
		}

		basket := attack.BasketRuleAttack(attack.FilterKind(blobs, attack.KindBaskets), 0.05, 0.7)
		found := 0
		for _, pr := range basketCfg.PlantedRuleNames() {
			if attack.HasRule(basket.Rules, pr[0], pr[1]) {
				found++
			}
		}
		basketCol := fmt.Sprintf("%d/%d recovered", found, len(basketCfg.PlantedRules))

		fmt.Printf("%-12d %-28s %-24s %-18s\n", k, regCol, gpsCol, basketCol)
	}
	fmt.Println("\n(one row per attacker foothold; the fewer providers compromised,")
	fmt.Println(" the less every mining algorithm extracts — the paper's core claim)")
}

func upload(d *core.Distributor, name string, data []byte, pl privacy.Level) {
	if _, err := d.Upload("victim", "pw", name, data, pl, core.UploadOptions{NoParity: true}); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
