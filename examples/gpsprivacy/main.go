// Gpsprivacy reproduces the paper's §VIII GPS experiment as a story: a
// location-based service stores the traces of 30 users; an attacker
// clusters users into behavioural groups. On the whole data the
// clustering recovers the planted groups (Fig. 4); on 500-observation
// fragments the dendrogram scrambles and users migrate between clusters
// (Figs. 5–6).
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/provider"
)

func main() {
	cfg := dataset.DefaultGPSConfig()
	r, err := experiments.GPSFigures(cfg, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatGPSFigures(r))

	fmt.Println("\nFig. 4 dendrogram (entire data):")
	fmt.Print(experiments.GPSDendrogramASCII(&r.Full))

	// End-to-end: upload the trace file through the distributor to six
	// providers and let a single malicious insider cluster what it holds.
	fmt.Println("\n--- end-to-end: one insider at one of six providers ---")
	profiles, points, err := dataset.GenerateGPS(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := provider.NewFleet()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p := provider.MustNew(provider.Info{
			Name: fmt.Sprintf("cp%d", i), PL: privacy.High, CL: 0,
		}, provider.Options{})
		if err := fleet.Add(p); err != nil {
			log.Fatal(err)
		}
	}
	d, err := core.New(core.Config{Fleet: fleet, StripeWidth: 4})
	if err != nil {
		log.Fatal(err)
	}
	must(d.RegisterClient("lbs"))
	must(d.AddPassword("lbs", "pw", privacy.High))
	if _, err := d.Upload("lbs", "pw", "gps.csv", dataset.GPSCSV(points), privacy.High, core.UploadOptions{}); err != nil {
		log.Fatal(err)
	}

	insider, err := attack.DumpProviders(fleet, []int{0})
	if err != nil {
		log.Fatal(err)
	}
	res, err := attack.GPSClusteringAttack(insider, cfg.Groups)
	if err != nil {
		fmt.Printf("insider mining failed outright: %v\n", err)
		return
	}
	truth := make([]int, len(res.UserIDs))
	for i, id := range res.UserIDs {
		truth[i] = profiles[id].Group
	}
	ari, _ := metrics.AdjustedRandIndex(res.Labels, truth)
	fmt.Printf("insider sees %d of %d observations (%d users); clustering ARI vs planted groups: %.3f\n",
		res.PointsRecovered, len(points), len(res.UserIDs), ari)
	fmt.Println("(compare with the full-data ARI above — fragmentation degrades the attack)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
