// Package privacy defines the paper's four-level sensitivity taxonomy
// (PL 0–3), provider cost levels (CL 0–3), and the chunk-size policy tied
// to sensitivity ("the higher the privilege level, the lower the chunk
// size"). It is the shared vocabulary of the distributor, chunker and
// placement policy.
package privacy

import "fmt"

// Level is a privacy (mining-sensitivity) level. The paper suggests, but
// does not limit the system to, four levels.
type Level int

const (
	// Public data: accessible to everyone including the adversary.
	Public Level = 0
	// Low sensitivity: reveals no private information but can be used to
	// find patterns.
	Low Level = 1
	// Moderate sensitivity: protected data usable to extract non-trivial
	// financial, legal or health information.
	Moderate Level = 2
	// High sensitivity: private data whose leak "can prove disastrous".
	High Level = 3
)

// MaxLevel is the highest level in the default 4-level scheme.
const MaxLevel = High

// Valid reports whether l is within the default scheme.
func (l Level) Valid() bool { return l >= Public && l <= MaxLevel }

func (l Level) String() string {
	switch l {
	case Public:
		return "PL0(public)"
	case Low:
		return "PL1(low)"
	case Moderate:
		return "PL2(moderate)"
	case High:
		return "PL3(high)"
	default:
		return fmt.Sprintf("PL%d", int(l))
	}
}

// CostLevel is a provider storage cost class; higher means more expensive
// ($/GB-month).
type CostLevel int

// ValidCost reports whether c is within the default 4-level cost scheme.
func (c CostLevel) Valid() bool { return c >= 0 && c <= 3 }

// DollarsPerGBMonth maps a cost level to a representative storage price,
// loosely calibrated to the 2012 cloud-storage market the paper cites.
func (c CostLevel) DollarsPerGBMonth() float64 {
	switch {
	case c <= 0:
		return 0.05
	case c == 1:
		return 0.08
	case c == 2:
		return 0.11
	default:
		return 0.14
	}
}

// ChunkSizePolicy maps a privacy level to a chunk size in bytes: sensitive
// files split into smaller chunks so each provider holds fewer samples
// (§VII-B, §VII-C).
type ChunkSizePolicy struct {
	// SizeByLevel[l] is the chunk size for level l.
	SizeByLevel map[Level]int
}

// DefaultChunkSizes returns the repository's default policy: public data
// in 64 KiB chunks halving per level down to 8 KiB for PL3.
func DefaultChunkSizes() ChunkSizePolicy {
	return ChunkSizePolicy{SizeByLevel: map[Level]int{
		Public:   64 << 10,
		Low:      32 << 10,
		Moderate: 16 << 10,
		High:     8 << 10,
	}}
}

// Size returns the chunk size for a level, falling back to the smallest
// configured size for levels above the map (more sensitive ⇒ no larger).
func (p ChunkSizePolicy) Size(l Level) (int, error) {
	if s, ok := p.SizeByLevel[l]; ok {
		if s <= 0 {
			return 0, fmt.Errorf("privacy: non-positive chunk size %d for %v", s, l)
		}
		return s, nil
	}
	smallest := 0
	for _, s := range p.SizeByLevel {
		if smallest == 0 || s < smallest {
			smallest = s
		}
	}
	if smallest == 0 {
		return 0, fmt.Errorf("privacy: empty chunk size policy")
	}
	return smallest, nil
}

// Validate checks that sizes are positive and non-increasing with level.
func (p ChunkSizePolicy) Validate() error {
	prev := 0
	for l := Public; l <= MaxLevel; l++ {
		s, ok := p.SizeByLevel[l]
		if !ok {
			continue
		}
		if s <= 0 {
			return fmt.Errorf("privacy: chunk size for %v is %d", l, s)
		}
		if prev != 0 && s > prev {
			return fmt.Errorf("privacy: chunk size grows with sensitivity (%v: %d > previous %d)", l, s, prev)
		}
		prev = s
	}
	if prev == 0 && len(p.SizeByLevel) == 0 {
		return fmt.Errorf("privacy: empty chunk size policy")
	}
	return nil
}
