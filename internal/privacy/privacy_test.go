package privacy

import (
	"strings"
	"testing"
)

func TestLevelValid(t *testing.T) {
	for l := Public; l <= High; l++ {
		if !l.Valid() {
			t.Fatalf("%v should be valid", l)
		}
	}
	if Level(-1).Valid() || Level(4).Valid() {
		t.Fatal("out-of-range levels reported valid")
	}
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{
		Public:   "PL0(public)",
		Low:      "PL1(low)",
		Moderate: "PL2(moderate)",
		High:     "PL3(high)",
		Level(7): "PL7",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestCostLevel(t *testing.T) {
	if !CostLevel(0).Valid() || !CostLevel(3).Valid() {
		t.Fatal("valid cost levels rejected")
	}
	if CostLevel(-1).Valid() || CostLevel(4).Valid() {
		t.Fatal("invalid cost levels accepted")
	}
	prev := 0.0
	for c := CostLevel(0); c <= 3; c++ {
		d := c.DollarsPerGBMonth()
		if d <= prev {
			t.Fatalf("cost not increasing: CL%d = %v after %v", c, d, prev)
		}
		prev = d
	}
}

func TestDefaultChunkSizes(t *testing.T) {
	p := DefaultChunkSizes()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for l := Public; l <= High; l++ {
		s, err := p.Size(l)
		if err != nil {
			t.Fatal(err)
		}
		if s > prev {
			t.Fatalf("chunk size grows with sensitivity at %v", l)
		}
		if s <= 0 {
			t.Fatalf("chunk size %d at %v", s, l)
		}
		prev = s
	}
	// Paper property: higher privacy level → strictly smaller default chunk.
	pub, _ := p.Size(Public)
	high, _ := p.Size(High)
	if high >= pub {
		t.Fatalf("PL3 chunk (%d) should be smaller than PL0 (%d)", high, pub)
	}
}

func TestChunkSizeFallback(t *testing.T) {
	p := DefaultChunkSizes()
	s, err := p.Size(Level(9)) // beyond configured levels
	if err != nil {
		t.Fatal(err)
	}
	want, _ := p.Size(High)
	if s != want {
		t.Fatalf("fallback size = %d, want smallest %d", s, want)
	}
}

func TestChunkSizeEmptyPolicy(t *testing.T) {
	p := ChunkSizePolicy{SizeByLevel: map[Level]int{}}
	if _, err := p.Size(Public); err == nil {
		t.Fatal("empty policy should error")
	}
	if err := p.Validate(); err == nil {
		t.Fatal("empty policy should fail validation")
	}
}

func TestValidateRejectsGrowingSizes(t *testing.T) {
	p := ChunkSizePolicy{SizeByLevel: map[Level]int{Public: 10, Low: 20}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "grows") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsNonPositive(t *testing.T) {
	p := ChunkSizePolicy{SizeByLevel: map[Level]int{Public: 0}}
	if err := p.Validate(); err == nil {
		t.Fatal("zero size should fail validation")
	}
	p2 := ChunkSizePolicy{SizeByLevel: map[Level]int{Public: -5}}
	if _, err := p2.Size(Public); err == nil {
		t.Fatal("negative size should error from Size")
	}
}
