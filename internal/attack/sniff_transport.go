package attack

import (
	"fmt"
	"net/http"
	"sort"

	"repro/internal/transport"
)

// SniffTransport collects the full contents of networked providers — the
// view of an adversary who owns (or has compromised) the providers behind
// the given base URLs. It is DumpProviders for the deployed system: the
// toolkit dials each provider's HTTP surface exactly as the distributor
// would and pulls its insider dump, so every campaign that runs against
// an in-process provider.Fleet runs unchanged against loopback or
// multi-host fleets. A nil hc uses the shared pooled transport.
//
// Collusion scope is the URL list: pass one URL for the single malicious
// insider, one shard's fleet for a colluding provider ring, or every
// fleet of every shard for the strongest pooled adversary.
func SniffTransport(urls []string, hc *http.Client) ([]Blob, error) {
	var blobs []Blob
	for _, u := range urls {
		rp, err := transport.DialProvider(u, hc)
		if err != nil {
			return nil, fmt.Errorf("attack: sniff %s: %w", u, err)
		}
		dump := rp.Dump()
		if dump == nil {
			return nil, fmt.Errorf("attack: sniff %s: provider dump unreachable", u)
		}
		name := rp.Info().Name
		for key, data := range dump {
			blobs = append(blobs, Blob{Provider: name, Key: key, Data: data})
		}
	}
	sort.Slice(blobs, func(a, b int) bool {
		if blobs[a].Provider != blobs[b].Provider {
			return blobs[a].Provider < blobs[b].Provider
		}
		return blobs[a].Key < blobs[b].Key
	})
	return blobs, nil
}
