package attack

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/mining"
	"repro/internal/privacy"
	"repro/internal/provider"
)

// fixture uploads a dataset into a distributed fleet and returns both.
func fixture(t *testing.T, nProviders int, data []byte, pl privacy.Level, opts core.UploadOptions) (*core.Distributor, *provider.Fleet) {
	t.Helper()
	fleet, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nProviders; i++ {
		p := provider.MustNew(provider.Info{
			Name: string(rune('A' + i)), PL: privacy.High, CL: privacy.CostLevel(i % 4),
		}, provider.Options{})
		if err := fleet.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	d, err := core.New(core.Config{Fleet: fleet, StripeWidth: nProviders - 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("victim"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("victim", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upload("victim", "pw", "data.csv", data, pl, opts); err != nil {
		t.Fatal(err)
	}
	return d, fleet
}

func TestDumpProvidersSortedAndComplete(t *testing.T) {
	_, fleet := fixture(t, 5, dataset.BiddingCSV(dataset.PaperTable4()), privacy.Moderate, core.UploadOptions{})
	all := make([]int, fleet.Len())
	for i := range all {
		all[i] = i
	}
	blobs, err := DumpProviders(fleet, all)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < fleet.Len(); i++ {
		p, _ := fleet.At(i)
		total += p.Len()
	}
	if len(blobs) != total {
		t.Fatalf("blobs = %d, fleet holds %d", len(blobs), total)
	}
	for i := 1; i < len(blobs); i++ {
		if blobs[i-1].Provider > blobs[i].Provider ||
			(blobs[i-1].Provider == blobs[i].Provider && blobs[i-1].Key >= blobs[i].Key) {
			t.Fatal("blobs not sorted")
		}
	}
	if _, err := DumpProviders(fleet, []int{99}); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestCompromiseRandom(t *testing.T) {
	_, fleet := fixture(t, 6, dataset.BiddingCSV(dataset.PaperTable4()), privacy.Moderate, core.UploadOptions{})
	idx, blobs, err := CompromiseRandom(fleet, 2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("compromised %d", len(idx))
	}
	names := map[string]bool{}
	for _, i := range idx {
		p, _ := fleet.At(i)
		names[p.Info().Name] = true
	}
	for _, b := range blobs {
		if !names[b.Provider] {
			t.Fatalf("blob from uncompromised provider %s", b.Provider)
		}
	}
	if _, _, err := CompromiseRandom(fleet, 99, nil); err == nil {
		t.Fatal("k > fleet accepted")
	}
}

func TestInsiderRecoversModelFromWholeData(t *testing.T) {
	// Baseline: single provider holds everything → the attack recovers
	// the planted pricing rule (the paper's first Hercules scenario).
	model := dataset.PaperBiddingModel()
	recs := dataset.GenerateBiddingHistory(400, model, rand.New(rand.NewSource(7)))
	csvData := dataset.BiddingCSV(recs)

	fleet, _ := provider.NewFleet(provider.MustNew(provider.Info{Name: "Titans", PL: privacy.High, CL: 3}, provider.Options{}))
	d, err := core.New(core.Config{Fleet: fleet, StripeWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = d.RegisterClient("hercules")
	_ = d.AddPassword("hercules", "pw", privacy.High)
	if _, err := d.Upload("hercules", "pw", "bids.csv", csvData, privacy.Public, core.UploadOptions{NoParity: true}); err != nil {
		t.Fatal(err)
	}

	blobs, err := DumpProviders(fleet, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	res := BiddingRegressionAttack(blobs)
	if res.FitErr != nil {
		t.Fatalf("whole-data attack failed: %v", res.FitErr)
	}
	if res.RowsRecovered < 350 {
		t.Fatalf("rows recovered = %d of 400", res.RowsRecovered)
	}
	truth := &mining.RegressionModel{Coeffs: []float64{model.A, model.B, model.C}, Intercept: model.D}
	relErr, err := mining.RelativeCoefficientError(res.Model, truth)
	if err != nil {
		t.Fatal(err)
	}
	if relErr > 0.25 {
		t.Fatalf("insider on whole data should recover model; relErr = %v (model %v)", relErr, res.Model)
	}
}

func TestFragmentationDegradesInsiderModel(t *testing.T) {
	// Distributed case: each insider sees only its own fragments; its
	// fitted model must be far further from the truth than the whole-data
	// fit, and per-provider models must disagree with each other.
	model := dataset.PaperBiddingModel()
	recs := dataset.GenerateBiddingHistory(400, model, rand.New(rand.NewSource(8)))
	csvData := dataset.BiddingCSV(recs)

	policy := privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
		privacy.Public: 1 << 10, privacy.Low: 1 << 10, privacy.Moderate: 512, privacy.High: 256,
	}}
	fleet, _ := provider.NewFleet(
		provider.MustNew(provider.Info{Name: "Titans", PL: privacy.High, CL: 1}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "Spartans", PL: privacy.High, CL: 1}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "Yagamis", PL: privacy.High, CL: 1}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "Olympus", PL: privacy.High, CL: 1}, provider.Options{}),
	)
	d, err := core.New(core.Config{Fleet: fleet, ChunkPolicy: policy, StripeWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = d.RegisterClient("hercules")
	_ = d.AddPassword("hercules", "pw", privacy.High)
	if _, err := d.Upload("hercules", "pw", "bids.csv", csvData, privacy.Moderate, core.UploadOptions{}); err != nil {
		t.Fatal(err)
	}

	truth := &mining.RegressionModel{Coeffs: []float64{model.A, model.B, model.C}, Intercept: model.D}
	perProv := PerProviderBiddingModels(mustDumpAll(t, fleet))
	if len(perProv) == 0 {
		t.Fatal("no providers saw data")
	}
	worst := 0.0
	var models []*mining.RegressionModel
	for name, r := range perProv {
		if r.FitErr != nil {
			// Mining failure is the defence succeeding outright.
			continue
		}
		relErr, err := mining.RelativeCoefficientError(r.Model, truth)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: rows=%d model=%v relErr=%.3f", name, r.RowsRecovered, r.Model, relErr)
		if relErr > worst {
			worst = relErr
		}
		models = append(models, r.Model)
	}
	if len(models) >= 2 {
		// Models from different insiders must disagree.
		d01, _ := mining.CoefficientDistance(models[0], models[1])
		if d01 < 1 {
			t.Fatalf("per-provider models nearly identical (distance %v) — fragmentation had no effect", d01)
		}
	}
	if worst < 0.05 && len(models) > 0 {
		t.Fatalf("every fragment model within 5%% of truth — fragmentation had no effect")
	}
}

func mustDumpAll(t *testing.T, fleet *provider.Fleet) []Blob {
	t.Helper()
	all := make([]int, fleet.Len())
	for i := range all {
		all[i] = i
	}
	blobs, err := DumpProviders(fleet, all)
	if err != nil {
		t.Fatal(err)
	}
	return blobs
}

func TestGPSClusteringAttackFullVsFragment(t *testing.T) {
	cfg := dataset.DefaultGPSConfig()
	profiles, points, err := dataset.GenerateGPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := dataset.GPSCSV(points)

	// Full data on one provider.
	fleet1, _ := provider.NewFleet(provider.MustNew(provider.Info{Name: "Solo", PL: privacy.High, CL: 0}, provider.Options{}))
	d1, _ := core.New(core.Config{Fleet: fleet1, StripeWidth: 1})
	_ = d1.RegisterClient("v")
	_ = d1.AddPassword("v", "pw", privacy.High)
	if _, err := d1.Upload("v", "pw", "gps.csv", full, privacy.Public, core.UploadOptions{NoParity: true}); err != nil {
		t.Fatal(err)
	}
	fullRes, err := GPSClusteringAttack(mustDumpAll(t, fleet1), cfg.Groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullRes.UserIDs) != cfg.Users {
		t.Fatalf("full attack sees %d users", len(fullRes.UserIDs))
	}
	// Full-data clustering should align with the planted groups.
	truthLabels := make([]int, len(fullRes.UserIDs))
	for i, id := range fullRes.UserIDs {
		truthLabels[i] = profiles[id].Group
	}
	ariFull, err := metrics.AdjustedRandIndex(fullRes.Labels, truthLabels)
	if err != nil {
		t.Fatal(err)
	}
	if ariFull < 0.5 {
		t.Fatalf("full-data clustering ARI = %v, expected strong recovery", ariFull)
	}

	// Fragmented: 6 providers, small chunks; a single insider mines one.
	policy := privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
		privacy.Public: 4 << 10, privacy.Low: 4 << 10, privacy.Moderate: 2 << 10, privacy.High: 1 << 10,
	}}
	fleet2, _ := provider.NewFleet(
		provider.MustNew(provider.Info{Name: "F0", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "F1", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "F2", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "F3", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "F4", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "F5", PL: privacy.High, CL: 0}, provider.Options{}),
	)
	d2, _ := core.New(core.Config{Fleet: fleet2, ChunkPolicy: policy, StripeWidth: 4})
	_ = d2.RegisterClient("v")
	_ = d2.AddPassword("v", "pw", privacy.High)
	if _, err := d2.Upload("v", "pw", "gps.csv", full, privacy.High, core.UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	oneProv, err := DumpProviders(fleet2, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	fragRes, err := GPSClusteringAttack(oneProv, cfg.Groups)
	if err != nil {
		// Total mining failure is an acceptable (strong) outcome.
		t.Logf("fragment attack failed outright: %v", err)
		return
	}
	if fragRes.PointsRecovered >= fullRes.PointsRecovered {
		t.Fatalf("insider recovered %d points ≥ full %d", fragRes.PointsRecovered, fullRes.PointsRecovered)
	}
	// Quantify the paper's "entities moved between clusters": agreement of
	// the fragment clustering with truth must be lower than full data's.
	truthFrag := make([]int, len(fragRes.UserIDs))
	for i, id := range fragRes.UserIDs {
		truthFrag[i] = profiles[id].Group
	}
	ariFrag, err := metrics.AdjustedRandIndex(fragRes.Labels, truthFrag)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ARI full=%.3f fragment=%.3f points full=%d fragment=%d",
		ariFull, ariFrag, fullRes.PointsRecovered, fragRes.PointsRecovered)
	if ariFrag >= ariFull {
		t.Fatalf("fragment clustering (ARI %v) as good as full data (ARI %v)", ariFrag, ariFull)
	}
}

func TestBasketRuleAttack(t *testing.T) {
	cfg := dataset.DefaultBasketConfig()
	cfg.Transactions = 800
	txns, err := dataset.GenerateBaskets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize as lines.
	var body []byte
	for _, txn := range txns {
		for i, it := range txn {
			if i > 0 {
				body = append(body, ',')
			}
			body = append(body, it...)
		}
		body = append(body, '\n')
	}
	blobs := []Blob{{Provider: "solo", Key: "k", Data: body}}
	res := BasketRuleAttack(blobs, 0.05, 0.7)
	if res.FitErr != nil {
		t.Fatal(res.FitErr)
	}
	names := cfg.PlantedRuleNames()
	if !HasRule(res.Rules, names[0][0], names[0][1]) {
		t.Fatalf("planted rule not recovered from whole data: %d rules", len(res.Rules))
	}
	if res.TxnsRecovered != 800 {
		t.Fatalf("txns = %d", res.TxnsRecovered)
	}
	// Empty input fails cleanly.
	empty := BasketRuleAttack(nil, 0.05, 0.7)
	if !errors.Is(empty.FitErr, mining.ErrTooFewSamples) {
		t.Fatalf("empty attack err = %v", empty.FitErr)
	}
}

func TestBiddingAttackOnGarbage(t *testing.T) {
	blobs := []Blob{{Provider: "p", Key: "k", Data: []byte{0x00, 0xFF, 0x13, 0x37}}}
	res := BiddingRegressionAttack(blobs)
	if res.FitErr == nil {
		t.Fatal("attack on parity garbage should fail")
	}
	if !errors.Is(res.FitErr, mining.ErrTooFewSamples) {
		t.Fatalf("err = %v", res.FitErr)
	}
}

func TestGPSAttackOnEmpty(t *testing.T) {
	if _, err := GPSClusteringAttack(nil, 3); err == nil {
		t.Fatal("empty attack should fail")
	}
}

func TestParseBasketLines(t *testing.T) {
	txns := parseBasketLines([]byte("a,b\nc\n\n,x,\nno-newline-tail"))
	if len(txns) != 4 {
		t.Fatalf("txns = %v", txns)
	}
	if len(txns[0]) != 2 || txns[0][0] != "a" {
		t.Fatalf("txn0 = %v", txns[0])
	}
	if len(txns[2]) != 1 || txns[2][0] != "x" {
		t.Fatalf("txn2 = %v", txns[2])
	}
	if txns[3][0] != "no-newline-tail" {
		t.Fatalf("txn3 = %v", txns[3])
	}
}

func TestMisleadingDataCorruptsAttack(t *testing.T) {
	// With misleading decoy records injected, an attacker who cannot strip
	// them fits a worse model than without decoys.
	model := dataset.PaperBiddingModel()
	model.Noise = 0
	recs := dataset.GenerateBiddingHistory(200, model, rand.New(rand.NewSource(12)))
	csvData := dataset.BiddingCSV(recs)
	truth := &mining.RegressionModel{Coeffs: []float64{model.A, model.B, model.C}, Intercept: model.D}

	// Decoys: rows with the same schema but a different pricing rule.
	decoyModel := dataset.BiddingModel{A: -2, B: 9, C: 0.2, D: 100, Noise: 0}
	decoyRecs := dataset.GenerateBiddingHistory(60, decoyModel, rand.New(rand.NewSource(13)))
	decoyCSV := dataset.BiddingCSV(decoyRecs)
	var decoyLines [][]byte
	start := 0
	for i, b := range decoyCSV {
		if b == '\n' {
			line := decoyCSV[start:i]
			if len(line) > 0 && line[0] != 'y' { // skip header
				decoyLines = append(decoyLines, line)
			}
			start = i + 1
		}
	}

	run := func(opts core.UploadOptions) BiddingResult {
		fleet, _ := provider.NewFleet(provider.MustNew(provider.Info{Name: "T", PL: privacy.High, CL: 0}, provider.Options{}))
		d, _ := core.New(core.Config{Fleet: fleet, StripeWidth: 1})
		_ = d.RegisterClient("v")
		_ = d.AddPassword("v", "pw", privacy.High)
		if _, err := d.Upload("v", "pw", "bids.csv", csvData, privacy.Public, opts); err != nil {
			t.Fatal(err)
		}
		return BiddingRegressionAttack(mustDumpAll(t, fleet))
	}

	clean := run(core.UploadOptions{NoParity: true})
	poisoned := run(core.UploadOptions{NoParity: true, MisleadLines: decoyLines})
	if clean.FitErr != nil {
		t.Fatal(clean.FitErr)
	}
	if poisoned.FitErr != nil {
		return // decoys broke mining entirely: defence succeeded
	}
	cleanErr, _ := mining.RelativeCoefficientError(clean.Model, truth)
	poisErr, _ := mining.RelativeCoefficientError(poisoned.Model, truth)
	t.Logf("clean relErr=%.4f poisoned relErr=%.4f", cleanErr, poisErr)
	if !(poisErr > cleanErr) {
		t.Fatalf("decoys did not degrade the attack: clean %v vs poisoned %v", cleanErr, poisErr)
	}
	if math.IsNaN(poisErr) {
		t.Fatal("NaN error")
	}
}

func TestHealthPredictionAttackFullVsFragment(t *testing.T) {
	cfg := dataset.DefaultHealthConfig()
	recs, err := dataset.GenerateHealthRecords(cfg)
	if err != nil {
		t.Fatal(err)
	}
	split := len(recs) * 3 / 4
	train, holdout := recs[:split], recs[split:]
	body := dataset.HealthCSV(train)

	// Whole data on one provider.
	solo, _ := provider.NewFleet(provider.MustNew(provider.Info{Name: "S", PL: privacy.High, CL: 0}, provider.Options{}))
	d1, _ := core.New(core.Config{Fleet: solo, StripeWidth: 1})
	_ = d1.RegisterClient("h")
	_ = d1.AddPassword("h", "pw", privacy.High)
	if _, err := d1.Upload("h", "pw", "p.csv", body, privacy.Public, core.UploadOptions{NoParity: true}); err != nil {
		t.Fatal(err)
	}
	fullRes := HealthPredictionAttack(mustDumpAll(t, solo), holdout)
	if fullRes.FitErr != nil {
		t.Fatalf("full attack failed: %v", fullRes.FitErr)
	}
	// The cohort's class distributions overlap by design, so the ceiling
	// is well below 1.0; the whole-data attacker must still clearly beat
	// the majority-class baseline (~0.57 at the default config).
	if fullRes.Accuracy < 0.70 {
		t.Fatalf("full-data accuracy = %v, want a usable predictor", fullRes.Accuracy)
	}

	// Fragmented across 5 providers; a single insider trains on less.
	policy := privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
		privacy.Public: 1 << 10, privacy.Low: 1 << 10, privacy.Moderate: 512, privacy.High: 512,
	}}
	fleet, _ := provider.NewFleet(
		provider.MustNew(provider.Info{Name: "A", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "B", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "C", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "D", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "E", PL: privacy.High, CL: 0}, provider.Options{}),
	)
	d2, _ := core.New(core.Config{Fleet: fleet, ChunkPolicy: policy, StripeWidth: 5})
	_ = d2.RegisterClient("h")
	_ = d2.AddPassword("h", "pw", privacy.High)
	if _, err := d2.Upload("h", "pw", "p.csv", body, privacy.High, core.UploadOptions{NoParity: true}); err != nil {
		t.Fatal(err)
	}
	oneBlob, err := DumpProviders(fleet, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	fragRes := HealthPredictionAttack(oneBlob, holdout)
	if fragRes.FitErr == nil && fragRes.RowsRecovered >= fullRes.RowsRecovered {
		t.Fatalf("insider sees %d rows >= full %d", fragRes.RowsRecovered, fullRes.RowsRecovered)
	}
	t.Logf("full: rows=%d acc=%.3f; insider: rows=%d acc=%.3f err=%v",
		fullRes.RowsRecovered, fullRes.Accuracy, fragRes.RowsRecovered, fragRes.Accuracy, fragRes.FitErr)
}

func TestHealthPredictionAttackEmpty(t *testing.T) {
	recs, _ := dataset.GenerateHealthRecords(dataset.DefaultHealthConfig())
	res := HealthPredictionAttack(nil, recs[:10])
	if res.FitErr == nil {
		t.Fatal("empty attack should fail")
	}
}

func TestHealthRuleLeak(t *testing.T) {
	recs, _ := dataset.GenerateHealthRecords(dataset.DefaultHealthConfig())
	blobs := []Blob{{Provider: "p", Key: "k", Data: dataset.HealthCSV(recs)}}
	rules, rows, err := HealthRuleLeak(blobs)
	if err != nil {
		t.Fatal(err)
	}
	if rows != len(recs) {
		t.Fatalf("rows = %d", rows)
	}
	// The leaked rules must mention a vital sign and a risk class.
	if !strings.Contains(rules, "=> high") && !strings.Contains(rules, "=> low") {
		t.Fatalf("rules leak nothing:\n%s", rules)
	}
	if _, _, err := HealthRuleLeak(nil); err == nil {
		t.Fatal("empty leak should fail")
	}
}
