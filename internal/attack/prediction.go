package attack

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mining"
)

// PredictionResult is the outcome of the health-record prediction attack:
// the adversary trains a risk classifier on whatever patient rows it
// recovered and is scored on held-out patients — the paper's "likelihood
// of an individual getting a terminal illness" threat.
type PredictionResult struct {
	RowsRecovered int
	RowsSkipped   int
	// Accuracy on the held-out set; meaningful only when FitErr is nil.
	Accuracy float64
	FitErr   error
}

// HealthPredictionAttack parses patient records from the blobs, trains a
// Gaussian naive-Bayes classifier, and evaluates it on the held-out
// records.
func HealthPredictionAttack(blobs []Blob, holdout []dataset.HealthRecord) PredictionResult {
	var res PredictionResult
	var recs []dataset.HealthRecord
	for _, b := range blobs {
		rs, skipped := dataset.ParseHealthCSV(b.Data)
		recs = append(recs, rs...)
		res.RowsSkipped += skipped
	}
	res.RowsRecovered = len(recs)
	if len(recs) == 0 {
		res.FitErr = fmt.Errorf("attack: no patient rows recovered: %w", mining.ErrTooFewSamples)
		return res
	}
	x, y := dataset.HealthFeatures(recs)
	nb, err := mining.TrainGaussianNB(x, y)
	if err != nil {
		res.FitErr = err
		return res
	}
	if len(nb.Classes()) < 2 {
		res.FitErr = fmt.Errorf("attack: only one risk class visible: %w", mining.ErrTooFewSamples)
		return res
	}
	tx, ty := dataset.HealthFeatures(holdout)
	acc, err := nb.Accuracy(tx, ty)
	if err != nil {
		res.FitErr = err
		return res
	}
	res.Accuracy = acc
	return res
}

// HealthKNNAttack is HealthPredictionAttack with a k-nearest-neighbour
// classifier instead of naive Bayes — the non-parametric variant, which
// degrades differently under decoy poisoning (every decoy row is a
// potential false neighbour rather than a shift in class statistics).
func HealthKNNAttack(blobs []Blob, holdout []dataset.HealthRecord, k int) PredictionResult {
	var res PredictionResult
	var recs []dataset.HealthRecord
	for _, b := range blobs {
		rs, skipped := dataset.ParseHealthCSV(b.Data)
		recs = append(recs, rs...)
		res.RowsSkipped += skipped
	}
	res.RowsRecovered = len(recs)
	if len(recs) == 0 {
		res.FitErr = fmt.Errorf("attack: no patient rows recovered: %w", mining.ErrTooFewSamples)
		return res
	}
	x, y := dataset.HealthFeatures(recs)
	knn, err := mining.NewKNN(k, x, y)
	if err != nil {
		res.FitErr = err
		return res
	}
	tx, ty := dataset.HealthFeatures(holdout)
	acc, err := knn.Accuracy(tx, ty)
	if err != nil {
		res.FitErr = err
		return res
	}
	res.Accuracy = acc
	return res
}

// HealthRuleLeak trains a decision tree on whatever patient rows the
// attacker recovered and returns the leaked decision rules in plain
// language — the most damaging form of the prediction attack, since the
// thresholds themselves ("glucose > 114 ⇒ high risk") are the secret.
func HealthRuleLeak(blobs []Blob) (rules string, rows int, err error) {
	var recs []dataset.HealthRecord
	for _, b := range blobs {
		rs, _ := dataset.ParseHealthCSV(b.Data)
		recs = append(recs, rs...)
	}
	if len(recs) == 0 {
		return "", 0, fmt.Errorf("attack: no patient rows recovered: %w", mining.ErrTooFewSamples)
	}
	x, y := dataset.HealthFeatures(recs)
	tree, err := mining.TrainDecisionTree(x, y, mining.TreeConfig{MaxDepth: 3})
	if err != nil {
		return "", len(recs), err
	}
	return tree.Rules([]string{"age", "bmi", "bloodsys", "glucose"}), len(recs), nil
}
