package attack

import (
	"testing"
)

// trace builds a TimedAccess list from (t, provider, op, key) rows.
func trace(rows ...[4]string) []TimedAccess {
	var out []TimedAccess
	for _, r := range rows {
		var t int64
		for _, c := range r[0] {
			t = t*10 + int64(c-'0')
		}
		out = append(out, TimedAccess{T: t, Provider: r[1], Op: r[2], Key: r[3]})
	}
	return out
}

func TestCoOwnershipGroupsMergesBursts(t *testing.T) {
	// File A's shards a1,a2 co-arrive at t=1 and t=3 (a2 with a3);
	// file B's shards arrive alone-ish at t=2.
	tr := trace(
		[4]string{"1", "p0", "get", "a1"},
		[4]string{"1", "p1", "get", "a2"},
		[4]string{"2", "p0", "get", "b1"},
		[4]string{"2", "p2", "get", "b2"},
		[4]string{"3", "p1", "get", "a2"},
		[4]string{"3", "p2", "get", "a3"},
	)
	groups := CoOwnershipGroups(tr)
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 groups", groups)
	}
	// Transitive merge: a1–a2 at t=1, a2–a3 at t=3 → {a1,a2,a3}.
	if len(groups[0]) != 3 || groups[0][0] != "a1" || groups[0][2] != "a3" {
		t.Fatalf("group 0 = %v, want [a1 a2 a3]", groups[0])
	}
	if len(groups[1]) != 2 || groups[1][0] != "b1" {
		t.Fatalf("group 1 = %v, want [b1 b2]", groups[1])
	}

	truth := map[string]string{"a1": "A", "a2": "A", "a3": "A", "b1": "B", "b2": "B"}
	p, r, f1 := PairScore(groups, truth)
	if p != 1 || r != 1 || f1 != 1 {
		t.Fatalf("perfect grouping scored p=%v r=%v f1=%v", p, r, f1)
	}
}

func TestPairScorePenalizesWrongMerges(t *testing.T) {
	// One burst mixes the two files: the attacker merges everything.
	tr := trace(
		[4]string{"1", "p0", "get", "a1"},
		[4]string{"1", "p1", "get", "a2"},
		[4]string{"1", "p0", "get", "b1"},
	)
	groups := CoOwnershipGroups(tr)
	truth := map[string]string{"a1": "A", "a2": "A", "b1": "B"}
	p, r, _ := PairScore(groups, truth)
	if r != 1 {
		t.Fatalf("recall = %v, want 1 (the true pair a1-a2 was found)", r)
	}
	if p >= 1 {
		t.Fatalf("precision = %v, want < 1 (a-b pairs are wrong)", p)
	}
	if cf := CrossLabelFraction(groups, truth); cf <= 0 {
		t.Fatalf("cross-label fraction = %v, want > 0 for a merged A/B group", cf)
	}
}

func TestCrossLabelFractionZeroWhenIsolated(t *testing.T) {
	tr := trace(
		[4]string{"1", "p0", "get", "a1"},
		[4]string{"1", "p1", "get", "a2"},
		[4]string{"2", "p0", "get", "b1"},
	)
	groups := CoOwnershipGroups(tr)
	tenants := map[string]string{"a1": "acme", "a2": "acme", "b1": "globex"}
	if cf := CrossLabelFraction(groups, tenants); cf != 0 {
		t.Fatalf("isolated tenants scored confusion %v, want 0", cf)
	}
}

func TestAccessPatternIsIdentityBlind(t *testing.T) {
	// Same shape, different tenant/provider/key identities.
	a := trace(
		[4]string{"1", "p0", "get", "a1"},
		[4]string{"1", "p1", "get", "a2"},
		[4]string{"2", "p0", "get", "a1"},
	)
	b := trace(
		[4]string{"7", "p4", "get", "z9"},
		[4]string{"7", "p2", "get", "z3"},
		[4]string{"9", "p4", "get", "z9"},
	)
	if AccessPattern(a) != AccessPattern(b) {
		t.Fatalf("identical shapes produced different patterns:\n  %s\n  %s",
			AccessPattern(a), AccessPattern(b))
	}
	// A warm hit (no provider requests in the burst) differs from a
	// cold miss: the channel AccessPattern is built to expose.
	c := trace(
		[4]string{"1", "p0", "get", "a1"},
		[4]string{"2", "p0", "get", "a1"},
	)
	if AccessPattern(a) == AccessPattern(c) {
		t.Fatal("patterns with different burst shapes compare equal")
	}
}

func TestCoOwnershipGroupsDeterministic(t *testing.T) {
	tr := trace(
		[4]string{"2", "p1", "get", "k3"},
		[4]string{"1", "p0", "put", "k1"},
		[4]string{"1", "p0", "put", "k2"},
		[4]string{"2", "p1", "get", "k1"},
		[4]string{"3", "p2", "get", "k5"},
	)
	first := CoOwnershipGroups(tr)
	for i := 0; i < 10; i++ {
		again := CoOwnershipGroups(tr)
		if len(again) != len(first) {
			t.Fatalf("run %d: %v vs %v", i, again, first)
		}
		for g := range again {
			if len(again[g]) != len(first[g]) {
				t.Fatalf("run %d: %v vs %v", i, again, first)
			}
			for m := range again[g] {
				if again[g][m] != first[g][m] {
					t.Fatalf("run %d: %v vs %v", i, again, first)
				}
			}
		}
	}
}
