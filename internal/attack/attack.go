// Package attack simulates the paper's two adversaries: the malicious
// insider at a cloud provider (the paper's "Hera" at "Titans") who mines
// everything that provider stores, and the outside attacker who manages
// to compromise some subset of providers and pools their contents. Both
// run the mining toolkit over whatever raw blobs they can see — which is
// exactly how the defence is supposed to bite: fragments are partial,
// rows are cut at chunk boundaries, parity shards parse as garbage, and
// misleading records blend in.
package attack

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/provider"
)

// Blob is one stored object as an attacker sees it: an opaque key (the
// virtual id, which deliberately carries no client identity) and raw
// bytes.
type Blob struct {
	Provider string
	Key      string
	Data     []byte
}

// DumpProviders collects the full contents of the given fleet indices —
// the view of an attacker who owns exactly those providers. Blobs are
// returned sorted by (provider, key): the attacker has no way to learn
// original chunk order.
func DumpProviders(fleet *provider.Fleet, indices []int) ([]Blob, error) {
	var blobs []Blob
	for _, i := range indices {
		p, err := fleet.At(i)
		if err != nil {
			return nil, err
		}
		name := p.Info().Name
		for key, data := range p.Dump() {
			blobs = append(blobs, Blob{Provider: name, Key: key, Data: data})
		}
	}
	sort.Slice(blobs, func(a, b int) bool {
		if blobs[a].Provider != blobs[b].Provider {
			return blobs[a].Provider < blobs[b].Provider
		}
		return blobs[a].Key < blobs[b].Key
	})
	return blobs, nil
}

// CompromiseRandom picks k distinct providers at random — the outside
// attacker's foothold — and returns their indices plus contents.
func CompromiseRandom(fleet *provider.Fleet, k int, rng *rand.Rand) ([]int, []Blob, error) {
	if k < 0 || k > fleet.Len() {
		return nil, nil, fmt.Errorf("attack: compromise %d of %d providers", k, fleet.Len())
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	perm := rng.Perm(fleet.Len())[:k]
	sort.Ints(perm)
	blobs, err := DumpProviders(fleet, perm)
	if err != nil {
		return nil, nil, err
	}
	return perm, blobs, nil
}

// BiddingResult is the outcome of the Table IV regression attack.
type BiddingResult struct {
	// RowsRecovered is how many bidding records parsed out of the blobs.
	RowsRecovered int
	// RowsSkipped counts unparseable fragments (cut lines, parity bytes,
	// decoys that fail to parse).
	RowsSkipped int
	// Model is the attacker's fitted pricing rule; nil if mining failed.
	Model *mining.RegressionModel
	// FitErr is non-nil when regression itself failed (e.g. too few
	// samples — the failure mode fragmentation aims for).
	FitErr error
}

// BiddingRegressionAttack pools all blobs, parses whatever bidding rows
// survive, and fits the multivariate linear model the paper's malicious
// employee uses.
func BiddingRegressionAttack(blobs []Blob) BiddingResult {
	var res BiddingResult
	var x [][]float64
	var y []float64
	for _, b := range blobs {
		recs, skipped, err := dataset.ParseBiddingCSV(b.Data)
		if err != nil {
			res.RowsSkipped++
			continue
		}
		res.RowsSkipped += skipped
		res.RowsRecovered += len(recs)
		bx, by := dataset.Features(recs)
		x = append(x, bx...)
		y = append(y, by...)
	}
	if len(x) == 0 {
		res.FitErr = fmt.Errorf("attack: no bidding rows recovered: %w", mining.ErrTooFewSamples)
		return res
	}
	model, err := mining.LinearRegression(x, y)
	if err != nil {
		res.FitErr = err
		return res
	}
	res.Model = model
	return res
}

// PerProviderBiddingModels runs the regression attack separately for each
// provider (each insider mines only what it stores) — the paper's
// Titans/Spartans/Yagamis scenario producing three mutually inconsistent
// misleading equations.
func PerProviderBiddingModels(blobs []Blob) map[string]BiddingResult {
	byProv := map[string][]Blob{}
	for _, b := range blobs {
		byProv[b.Provider] = append(byProv[b.Provider], b)
	}
	out := make(map[string]BiddingResult, len(byProv))
	for name, bs := range byProv {
		out[name] = BiddingRegressionAttack(bs)
	}
	return out
}

// GPSResult is the outcome of the Figs. 4–6 clustering attack.
type GPSResult struct {
	PointsRecovered int
	PointsSkipped   int
	// UserIDs are the users visible in the recovered data, ascending.
	UserIDs []int
	// Dendrogram is the hierarchical binary cluster tree over visible
	// users (nil if fewer than one user was visible).
	Dendrogram *mining.Dendrogram
	// Labels is the flat clustering obtained by cutting the tree into k
	// clusters (parallel to UserIDs).
	Labels []int
}

// GPSClusteringAttack parses GPS observations out of the blobs, reduces
// them to per-user features, and builds the binary cluster tree exactly
// as the paper's evaluation does with MATLAB. Rows cut at chunk
// boundaries can still parse with truncated coordinates, so the attacker
// applies the sanity filtering any competent analyst would: coordinates
// must be on Earth and within city range of the data's median.
func GPSClusteringAttack(blobs []Blob, cutK int) (GPSResult, error) {
	var res GPSResult
	var points []dataset.GPSPoint
	for _, b := range blobs {
		pts, skipped := dataset.ParseGPSCSV(b.Data)
		points = append(points, pts...)
		res.PointsSkipped += skipped
	}
	points, dropped := filterImplausible(points)
	res.PointsSkipped += dropped
	res.PointsRecovered = len(points)
	if len(points) == 0 {
		return res, fmt.Errorf("attack: no GPS observations recovered: %w", mining.ErrTooFewSamples)
	}
	vectors, ids := dataset.UserFeatureVectors(points)
	res.UserIDs = ids
	dg, err := mining.ClusterPoints(vectors, mining.AverageLinkage)
	if err != nil {
		return res, err
	}
	res.Dendrogram = dg
	if cutK < 1 {
		cutK = 1
	}
	if cutK > len(ids) {
		cutK = len(ids)
	}
	labels, err := dg.Cut(cutK)
	if err != nil {
		return res, err
	}
	res.Labels = labels
	return res, nil
}

// filterImplausible drops observations with off-Earth coordinates or
// coordinates further than ~1° (city scale) from the data's median —
// the artifacts of rows truncated at chunk boundaries.
func filterImplausible(points []dataset.GPSPoint) (kept []dataset.GPSPoint, dropped int) {
	var lats, lons []float64
	for _, p := range points {
		if p.Lat < -90 || p.Lat > 90 || p.Lon < -180 || p.Lon > 180 {
			continue
		}
		lats = append(lats, p.Lat)
		lons = append(lons, p.Lon)
	}
	if len(lats) == 0 {
		return nil, len(points)
	}
	medLat, medLon := median(lats), median(lons)
	for _, p := range points {
		if math.Abs(p.Lat-medLat) > 1 || math.Abs(p.Lon-medLon) > 1 {
			dropped++
			continue
		}
		kept = append(kept, p)
	}
	return kept, dropped
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// BasketResult is the outcome of the association-rule attack.
type BasketResult struct {
	TxnsRecovered int
	Rules         []mining.Rule
	Frequent      []mining.FrequentItemSet
	FitErr        error
}

// BasketRuleAttack parses newline-separated comma-joined transactions out
// of the blobs and mines association rules.
func BasketRuleAttack(blobs []Blob, minSupport, minConfidence float64) BasketResult {
	var res BasketResult
	var txns []mining.Transaction
	for _, b := range blobs {
		txns = append(txns, parseBasketLines(b.Data)...)
	}
	res.TxnsRecovered = len(txns)
	if len(txns) == 0 {
		res.FitErr = fmt.Errorf("attack: no transactions recovered: %w", mining.ErrTooFewSamples)
		return res
	}
	freq, rules, err := mining.Apriori(txns, minSupport, minConfidence)
	if err != nil {
		res.FitErr = err
		return res
	}
	res.Frequent = freq
	res.Rules = rules
	return res
}

// parseBasketLines splits blob bytes into transactions; a line is a
// comma-separated item list. Lines with fewer than 1 item are skipped.
func parseBasketLines(data []byte) []mining.Transaction {
	var txns []mining.Transaction
	start := 0
	flush := func(end int) {
		line := string(data[start:end])
		if line == "" {
			return
		}
		var t mining.Transaction
		field := ""
		for _, r := range line {
			if r == ',' {
				if field != "" {
					t = append(t, field)
				}
				field = ""
				continue
			}
			field += string(r)
		}
		if field != "" {
			t = append(t, field)
		}
		if len(t) > 0 {
			txns = append(txns, t)
		}
	}
	for i, b := range data {
		if b == '\n' {
			flush(i)
			start = i + 1
		}
	}
	if start < len(data) {
		flush(len(data))
	}
	return txns
}

// HasRule reports whether a mined rule set contains antecedent → consequent
// as single items.
func HasRule(rules []mining.Rule, antecedent, consequent string) bool {
	for _, r := range rules {
		if len(r.Antecedent) == 1 && len(r.Consequent) == 1 &&
			r.Antecedent[0] == antecedent && r.Consequent[0] == consequent {
			return true
		}
	}
	return false
}
