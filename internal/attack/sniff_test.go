package attack

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestSniffBidding(t *testing.T) {
	data := dataset.BiddingCSV(dataset.PaperTable4())
	if got := Sniff(data); got != KindBidding {
		t.Fatalf("Sniff(bidding) = %v", got)
	}
}

func TestSniffGPS(t *testing.T) {
	_, pts, err := dataset.GenerateGPS(dataset.GPSConfig{Users: 5, Groups: 2, ObsPerUser: 20, AnchorNoise: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := Sniff(dataset.GPSCSV(pts)); got != KindGPS {
		t.Fatalf("Sniff(gps) = %v", got)
	}
}

func TestSniffBaskets(t *testing.T) {
	cfg := dataset.DefaultBasketConfig()
	cfg.Transactions = 50
	txns, err := dataset.GenerateBaskets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var body []byte
	for _, txn := range txns {
		body = append(body, []byte(strings.Join(txn, ","))...)
		body = append(body, '\n')
	}
	if got := Sniff(body); got != KindBaskets {
		t.Fatalf("Sniff(baskets) = %v", got)
	}
}

func TestSniffGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	junk := make([]byte, 4096)
	rng.Read(junk)
	if got := Sniff(junk); got != KindUnknown {
		t.Fatalf("Sniff(parity garbage) = %v", got)
	}
	if got := Sniff(nil); got != KindUnknown {
		t.Fatalf("Sniff(empty) = %v", got)
	}
}

func TestSniffKindString(t *testing.T) {
	for k, want := range map[BlobKind]string{
		KindUnknown: "unknown", KindBidding: "bidding", KindGPS: "gps", KindBaskets: "baskets",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestFilterKindSeparatesMixedLoot(t *testing.T) {
	bid := dataset.BiddingCSV(dataset.PaperTable4())
	_, pts, _ := dataset.GenerateGPS(dataset.GPSConfig{Users: 4, Groups: 2, ObsPerUser: 25, AnchorNoise: 0.01, Seed: 3})
	gps := dataset.GPSCSV(pts)
	blobs := []Blob{
		{Provider: "p", Key: "a", Data: bid},
		{Provider: "p", Key: "b", Data: gps},
		{Provider: "p", Key: "c", Data: []byte{0x13, 0x37, 0x00}},
	}
	bids := FilterKind(blobs, KindBidding)
	if len(bids) != 1 || bids[0].Key != "a" {
		t.Fatalf("bidding filter = %v", bids)
	}
	gpsBlobs := FilterKind(blobs, KindGPS)
	if len(gpsBlobs) != 1 || gpsBlobs[0].Key != "b" {
		t.Fatalf("gps filter = %v", gpsBlobs)
	}
	if got := FilterKind(blobs, KindBaskets); len(got) != 0 {
		t.Fatalf("baskets filter = %v", got)
	}
}
