package attack

import (
	"strconv"
	"strings"

	"repro/internal/dataset"
)

// BlobKind classifies what a stolen blob appears to contain. Attackers
// facing a pile of opaque chunks triage them by content before picking a
// mining algorithm; this is that triage.
type BlobKind int

const (
	// KindUnknown marks blobs no parser makes sense of (e.g. RAID parity
	// or encrypted payloads).
	KindUnknown BlobKind = iota
	// KindBidding marks 6-column numeric CSV rows (year, company, costs).
	KindBidding
	// KindGPS marks 4-column numeric CSV rows (user, t, lat, lon).
	KindGPS
	// KindBaskets marks comma-joined non-numeric item lists.
	KindBaskets
)

func (k BlobKind) String() string {
	switch k {
	case KindBidding:
		return "bidding"
	case KindGPS:
		return "gps"
	case KindBaskets:
		return "baskets"
	default:
		return "unknown"
	}
}

// Sniff guesses a blob's content kind from parse success rates. A kind
// wins if it parses at least half of the blob's lines and beats the
// other candidates.
func Sniff(data []byte) BlobKind {
	lines := 0
	for _, b := range data {
		if b == '\n' {
			lines++
		}
	}
	if lines == 0 {
		lines = 1
	}
	bidRecs, _, err := dataset.ParseBiddingCSV(data)
	bidScore := 0.0
	if err == nil {
		bidScore = float64(len(bidRecs)) / float64(lines)
	}
	gpsPts, _ := dataset.ParseGPSCSV(data)
	gpsScore := float64(len(gpsPts)) / float64(lines)
	basketScore := basketLikeness(data, lines)

	best, bestScore := KindUnknown, 0.5
	for _, c := range []struct {
		kind  BlobKind
		score float64
	}{
		{KindBidding, bidScore},
		{KindGPS, gpsScore},
		{KindBaskets, basketScore},
	} {
		if c.score > bestScore {
			best, bestScore = c.kind, c.score
		}
	}
	return best
}

// basketLikeness scores the fraction of lines that look like item lists:
// printable comma-separated tokens, mostly non-numeric. Binary payloads
// (parity shards, ciphertexts) score zero because their "lines" contain
// non-printable bytes.
func basketLikeness(data []byte, lines int) float64 {
	ok := 0
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || !printable(line) {
			continue
		}
		fields := strings.Split(line, ",")
		nonNumeric := 0
		for _, f := range fields {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			if _, err := strconv.ParseFloat(f, 64); err != nil {
				nonNumeric++
			}
		}
		// Item lists are mostly non-numeric tokens; CSV records with a
		// single text column (like the bidding "company") are not.
		if nonNumeric >= len(fields)-1 && nonNumeric >= 1 {
			ok++
		}
	}
	return float64(ok) / float64(lines)
}

// printable reports whether a line consists solely of printable ASCII.
func printable(line string) bool {
	for i := 0; i < len(line); i++ {
		if line[i] < 0x20 || line[i] > 0x7E {
			return false
		}
	}
	return true
}

// FilterKind keeps only blobs sniffed as the wanted kind.
func FilterKind(blobs []Blob, want BlobKind) []Blob {
	var out []Blob
	for _, b := range blobs {
		if Sniff(b.Data) == want {
			out = append(out, b)
		}
	}
	return out
}
