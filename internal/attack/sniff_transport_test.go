package attack

import (
	"net/http/httptest"
	"testing"

	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/transport"
)

func TestSniffTransportCollectsNetworkedDumps(t *testing.T) {
	urls := make([]string, 2)
	want := map[string]string{}
	for i := 0; i < 2; i++ {
		name := "prov" + string(rune('A'+i))
		mem, err := provider.New(provider.Info{Name: name, PL: privacy.High, CL: 1}, provider.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.Put("k"+string(rune('0'+i)), []byte("secret"+name)); err != nil {
			t.Fatal(err)
		}
		want["k"+string(rune('0'+i))] = name
		srv := httptest.NewServer(transport.NewProviderServer(mem))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}

	blobs, err := SniffTransport(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 2 {
		t.Fatalf("sniffed %d blobs, want 2: %v", len(blobs), blobs)
	}
	for _, b := range blobs {
		if want[b.Key] != b.Provider {
			t.Fatalf("blob %q attributed to %q, want %q", b.Key, b.Provider, want[b.Key])
		}
		if string(b.Data) != "secret"+b.Provider {
			t.Fatalf("blob %q data = %q", b.Key, b.Data)
		}
	}
	// Sorted by (provider, key), same contract as DumpProviders.
	if blobs[0].Provider > blobs[1].Provider {
		t.Fatalf("blobs not sorted: %v", blobs)
	}
}

func TestSniffTransportErrorsOnUnreachableProvider(t *testing.T) {
	mem, err := provider.New(provider.Info{Name: "up", PL: privacy.High, CL: 1}, provider.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(transport.NewProviderServer(mem))
	dead := httptest.NewServer(transport.NewProviderServer(mem))
	dead.Close()
	t.Cleanup(srv.Close)

	if _, err := SniffTransport([]string{srv.URL, dead.URL}, nil); err == nil {
		t.Fatal("sniff with one dead provider: want error, got nil")
	}
}
