package attack

import (
	"fmt"
	"sort"
	"strings"
)

// TimedAccess is one data-plane request as a malicious provider's access
// log records it: when it arrived (a coarse burst stamp — wall-clock
// seconds in a real deployment, the harness's logical op counter in
// deterministic campaigns), which provider saw it, the operation, and
// the opaque key. The key deliberately carries no client identity; the
// whole point of the timing channel is what arrival *patterns* reveal
// anyway.
type TimedAccess struct {
	T        int64
	Provider string
	Op       string // "put" | "get" | "delete"
	Key      string
}

// CoOwnershipGroups is the timing side-channel attack: colluding
// providers pool their access logs and cluster keys that arrive in the
// same burst. Requests belonging to one logical client operation land
// within one inter-arrival gap of each other, so keys that repeatedly
// co-occur are almost certainly shards of the same object — the
// fragmentation defence hides contents and identity, but not
// co-arrival. Keys sharing any burst are merged transitively
// (union-find); the returned groups and their members are sorted for
// deterministic scoring.
func CoOwnershipGroups(trace []TimedAccess) [][]string {
	parent := map[string]string{}
	var find func(string) string
	find = func(k string) string {
		p, ok := parent[k]
		if !ok {
			parent[k] = k
			return k
		}
		if p == k {
			return k
		}
		root := find(p)
		parent[k] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Deterministic root choice: smallest key wins.
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}

	byBurst := map[int64][]string{}
	for _, a := range trace {
		byBurst[a.T] = append(byBurst[a.T], a.Key)
	}
	bursts := make([]int64, 0, len(byBurst))
	for t := range byBurst {
		bursts = append(bursts, t)
	}
	sort.Slice(bursts, func(i, j int) bool { return bursts[i] < bursts[j] })
	for _, t := range bursts {
		keys := byBurst[t]
		for i := 1; i < len(keys); i++ {
			union(keys[0], keys[i])
		}
	}

	groups := map[string][]string{}
	members := make([]string, 0, len(parent))
	for k := range parent {
		members = append(members, k)
	}
	sort.Strings(members)
	for _, k := range members {
		r := find(k)
		groups[r] = append(groups[r], k)
	}
	roots := make([]string, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	out := make([][]string, 0, len(groups))
	for _, r := range roots {
		g := groups[r]
		sort.Strings(g)
		// Deduplicate: a key accessed in many bursts appears once.
		g = dedupSorted(g)
		out = append(out, g)
	}
	return out
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// PairScore scores inferred co-ownership against ground truth: truth
// maps each key to its owning object's label, and two keys form a true
// pair when their labels match. Precision is the fraction of inferred
// same-group pairs that are truly co-owned, recall the fraction of
// truly co-owned pairs the attack found, F1 their harmonic mean. Keys
// absent from truth (decoy keys, foreign namespaces) are ignored on the
// inferred side.
func PairScore(groups [][]string, truth map[string]string) (precision, recall, f1 float64) {
	var tp, fp int
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			li, ok := truth[g[i]]
			if !ok {
				continue
			}
			for j := i + 1; j < len(g); j++ {
				lj, ok := truth[g[j]]
				if !ok {
					continue
				}
				if li == lj {
					tp++
				} else {
					fp++
				}
			}
		}
	}
	// Total true pairs, for recall.
	counts := map[string]int{}
	for _, l := range truth {
		counts[l]++
	}
	truePairs := 0
	for _, n := range counts {
		truePairs += n * (n - 1) / 2
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if truePairs > 0 {
		recall = float64(tp) / float64(truePairs)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// CrossLabelFraction is the fraction of inferred same-group key pairs
// whose labels differ — with tenant labels it measures tenant
// confusion, the leak a shared cache or mixed-up placement would open:
// any correctly isolated system scores exactly 0, because no single
// client operation ever touches two tenants' chunks. Keys absent from
// the label map are ignored.
func CrossLabelFraction(groups [][]string, label map[string]string) float64 {
	var cross, total int
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			li, ok := label[g[i]]
			if !ok {
				continue
			}
			for j := i + 1; j < len(g); j++ {
				lj, ok := label[g[j]]
				if !ok {
					continue
				}
				total++
				if li != lj {
					cross++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cross) / float64(total)
}

// AccessPattern reduces a trace to its identity-blind shape: for each
// burst in time order, the sorted multiset of per-provider operation
// counts, with provider names and keys erased. Two request sequences
// that differ only in *who* they were for — not in how many requests
// hit how many providers — produce identical patterns. The cache/hedge
// timing-invariance check is an equality test on this: a warm read must
// look the same for every tenant, and so must a cold one, or the
// provider can tell tenants apart by shape alone.
func AccessPattern(trace []TimedAccess) string {
	type burst struct {
		t     int64
		byPos map[string]map[string]int // provider -> op -> count
	}
	byT := map[int64]*burst{}
	for _, a := range trace {
		b, ok := byT[a.T]
		if !ok {
			b = &burst{t: a.T, byPos: map[string]map[string]int{}}
			byT[a.T] = b
		}
		if b.byPos[a.Provider] == nil {
			b.byPos[a.Provider] = map[string]int{}
		}
		b.byPos[a.Provider][a.Op]++
	}
	bursts := make([]*burst, 0, len(byT))
	for _, b := range byT {
		bursts = append(bursts, b)
	}
	sort.Slice(bursts, func(i, j int) bool { return bursts[i].t < bursts[j].t })

	var out []string
	for _, b := range bursts {
		// One anonymous signature per provider: its op counts, sorted.
		var sigs []string
		for _, ops := range b.byPos {
			names := make([]string, 0, len(ops))
			for op := range ops {
				names = append(names, op)
			}
			sort.Strings(names)
			var parts []string
			for _, op := range names {
				parts = append(parts, fmt.Sprintf("%s×%d", op, ops[op]))
			}
			sigs = append(sigs, strings.Join(parts, ","))
		}
		sort.Strings(sigs)
		out = append(out, "["+strings.Join(sigs, " | ")+"]")
	}
	return strings.Join(out, " ")
}
