package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cryptofrag"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
	"repro/internal/sim"
)

// ChunkSizePoint is one row of the chunk-size ablation (§VII-C "Reducing
// Chunk Size"): smaller chunks → fewer parseable rows per insider → worse
// attacker model.
type ChunkSizePoint struct {
	ChunkBytes    int
	RowsRecovered int // by the single insider with the most data
	RelErr        float64
	MiningFailed  bool
}

// AblationChunkSize sweeps chunk sizes for a fixed bidding history spread
// over nProviders and reports the best-positioned insider's attack
// quality at each size.
func AblationChunkSize(chunkSizes []int, nRows, nProviders int, seed int64) ([]ChunkSizePoint, error) {
	model := dataset.PaperBiddingModel()
	recs := dataset.GenerateBiddingHistory(nRows, model, rand.New(rand.NewSource(seed)))
	csvData := dataset.BiddingCSV(recs)
	truth := &mining.RegressionModel{Coeffs: []float64{model.A, model.B, model.C}, Intercept: model.D}

	var out []ChunkSizePoint
	for _, cs := range chunkSizes {
		fleet, err := BuildFleet(nProviders, provider.LatencyModel{})
		if err != nil {
			return nil, err
		}
		policy := privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
			privacy.Public: cs, privacy.Low: cs, privacy.Moderate: cs, privacy.High: cs,
		}}
		d, err := core.New(core.Config{Fleet: fleet, ChunkPolicy: policy, StripeWidth: nProviders - 1})
		if err != nil {
			return nil, err
		}
		if err := seedAndUpload(d, "victim", "bids.csv", csvData, privacy.Moderate, core.UploadOptions{NoParity: true}); err != nil {
			return nil, err
		}
		all := make([]int, fleet.Len())
		for i := range all {
			all[i] = i
		}
		blobs, err := attack.DumpProviders(fleet, all)
		if err != nil {
			return nil, err
		}
		perProv := attack.PerProviderBiddingModels(blobs)
		point := ChunkSizePoint{ChunkBytes: cs, MiningFailed: true}
		for _, r := range perProv {
			if r.RowsRecovered > point.RowsRecovered {
				point.RowsRecovered = r.RowsRecovered
			}
			if r.Model == nil {
				continue
			}
			e, err := mining.RelativeCoefficientError(r.Model, truth)
			if err != nil {
				return nil, err
			}
			if point.MiningFailed || e < point.RelErr {
				point.RelErr = e // best (most dangerous) insider
			}
			point.MiningFailed = false
		}
		out = append(out, point)
	}
	return out, nil
}

// FormatChunkSizeAblation renders the sweep.
func FormatChunkSizeAblation(points []ChunkSizePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %14s %12s %8s\n", "chunk bytes", "rows@insider", "best relErr", "failed")
	for _, p := range points {
		if p.MiningFailed {
			fmt.Fprintf(&b, "%12d %14d %12s %8v\n", p.ChunkBytes, p.RowsRecovered, "-", true)
			continue
		}
		fmt.Fprintf(&b, "%12d %14d %12.3f %8v\n", p.ChunkBytes, p.RowsRecovered, p.RelErr, false)
	}
	return b.String()
}

// MisleadPoint is one row of the misleading-data ablation (§VII-D).
type MisleadPoint struct {
	DecoyRows    int
	RelErr       float64
	ReadOverhead float64 // extra stored bytes / original bytes
	MiningFailed bool
}

// AblationMislead sweeps the number of injected decoy records and reports
// the attacker's model error plus the storage/read overhead the paper
// warns about ("it has some overhead associated with retrieving data").
func AblationMislead(decoyCounts []int, nRows int, seed int64) ([]MisleadPoint, error) {
	model := dataset.PaperBiddingModel()
	model.Noise = 0
	recs := dataset.GenerateBiddingHistory(nRows, model, rand.New(rand.NewSource(seed)))
	csvData := dataset.BiddingCSV(recs)
	truth := &mining.RegressionModel{Coeffs: []float64{model.A, model.B, model.C}, Intercept: model.D}

	decoyModel := dataset.BiddingModel{A: -3, B: 8, C: 0.1, D: 777, Noise: 0}
	var out []MisleadPoint
	for _, n := range decoyCounts {
		decoys := dataset.GenerateBiddingHistory(n, decoyModel, rand.New(rand.NewSource(seed+int64(n)+1)))
		var decoyLines [][]byte
		for _, line := range strings.Split(string(dataset.BiddingCSV(decoys)), "\n") {
			if line == "" || strings.HasPrefix(line, "year,") {
				continue
			}
			decoyLines = append(decoyLines, []byte(line))
		}
		fleet, err := BuildFleet(1, provider.LatencyModel{})
		if err != nil {
			return nil, err
		}
		d, err := core.New(core.Config{Fleet: fleet, StripeWidth: 1, MisleadSeed: seed})
		if err != nil {
			return nil, err
		}
		opts := core.UploadOptions{NoParity: true}
		if n > 0 {
			opts.MisleadLines = decoyLines
		}
		if err := seedAndUpload(d, "victim", "bids.csv", csvData, privacy.Public, opts); err != nil {
			return nil, err
		}
		blobs, err := attack.DumpProviders(fleet, []int{0})
		if err != nil {
			return nil, err
		}
		stored := 0
		for _, b := range blobs {
			stored += len(b.Data)
		}
		res := attack.BiddingRegressionAttack(blobs)
		point := MisleadPoint{
			DecoyRows:    n,
			ReadOverhead: float64(stored-len(csvData)) / float64(len(csvData)),
		}
		if res.Model == nil {
			point.MiningFailed = true
		} else {
			point.RelErr, err = mining.RelativeCoefficientError(res.Model, truth)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, point)
	}
	return out, nil
}

// FormatMisleadAblation renders the sweep.
func FormatMisleadAblation(points []MisleadPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %12s %14s %8s\n", "decoys", "relErr", "readOverhead", "failed")
	for _, p := range points {
		if p.MiningFailed {
			fmt.Fprintf(&b, "%10d %12s %14.3f %8v\n", p.DecoyRows, "-", p.ReadOverhead, true)
			continue
		}
		fmt.Fprintf(&b, "%10d %12.3f %14.3f %8v\n", p.DecoyRows, p.RelErr, p.ReadOverhead, false)
	}
	return b.String()
}

// RaidPoint is one row of the RAID ablation: analytic survival plus an
// end-to-end outage drill.
type RaidPoint struct {
	Level         raid.Level
	FailureProb   float64
	AnalyticAvail float64
	DrillDown     int
	DrillReadable int
	DrillTotal    int
	StorageFactor float64
}

// AblationRAID compares None/RAID5/RAID6 at a given stripe width: analytic
// availability at failure probability p and a live drill with `down`
// providers out.
func AblationRAID(width int, p float64, down, nProviders int, seed int64) ([]RaidPoint, error) {
	var out []RaidPoint
	for _, lvl := range []raid.Level{raid.None, raid.RAID5, raid.RAID6} {
		avail, err := sim.StripeSurvival(width, lvl, p)
		if err != nil {
			return nil, err
		}
		fleet, err := BuildFleet(nProviders, provider.LatencyModel{})
		if err != nil {
			return nil, err
		}
		d, err := core.New(core.Config{Fleet: fleet, StripeWidth: width, DefaultRaid: raid.RAID5})
		if err != nil {
			return nil, err
		}
		if err := d.RegisterClient("c"); err != nil {
			return nil, err
		}
		if err := d.AddPassword("c", "pw", privacy.High); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		var files []string
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("f%d", i)
			opts := core.UploadOptions{Assurance: lvl}
			if lvl == raid.None {
				opts = core.UploadOptions{NoParity: true}
			}
			if _, err := d.Upload("c", "pw", name, dataset.RandomBytes(48_000, rng), privacy.Moderate, opts); err != nil {
				return nil, err
			}
			files = append(files, name)
		}
		drill, err := sim.OutageDrill(d, fleet, "c", "pw", files, down, rng)
		if err != nil {
			return nil, err
		}
		factor := 1.0
		if lvl.ParityShards() > 0 {
			factor = float64(width+lvl.ParityShards()) / float64(width)
		}
		out = append(out, RaidPoint{
			Level: lvl, FailureProb: p, AnalyticAvail: avail,
			DrillDown: down, DrillReadable: drill.FilesReadable, DrillTotal: drill.FilesTotal,
			StorageFactor: factor,
		})
	}
	return out, nil
}

// FormatRaidAblation renders the comparison.
func FormatRaidAblation(points []RaidPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7s %8s %14s %18s %14s\n", "raid", "p(fail)", "P(survive)", "drill readable", "storage x")
	for _, pt := range points {
		fmt.Fprintf(&b, "%7s %8.2f %14.4f %11d/%d (%d down) %9.2f\n",
			pt.Level, pt.FailureProb, pt.AnalyticAvail, pt.DrillReadable, pt.DrillTotal, pt.DrillDown, pt.StorageFactor)
	}
	return b.String()
}

// CompromisePoint is one row of the outside-attacker sweep: mining success
// versus the number of compromised providers.
type CompromisePoint struct {
	Compromised   int
	RowsRecovered int
	RelErr        float64
	MiningFailed  bool
}

// AblationCompromise uploads a bidding history across nProviders and
// sweeps how many providers the outside attacker controls.
func AblationCompromise(nProviders, nRows int, seed int64) ([]CompromisePoint, error) {
	model := dataset.PaperBiddingModel()
	recs := dataset.GenerateBiddingHistory(nRows, model, rand.New(rand.NewSource(seed)))
	csvData := dataset.BiddingCSV(recs)
	truth := &mining.RegressionModel{Coeffs: []float64{model.A, model.B, model.C}, Intercept: model.D}

	fleet, err := BuildFleet(nProviders, provider.LatencyModel{})
	if err != nil {
		return nil, err
	}
	policy := privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
		privacy.Public: 1 << 10, privacy.Low: 1 << 10, privacy.Moderate: 1 << 10, privacy.High: 512,
	}}
	d, err := core.New(core.Config{Fleet: fleet, ChunkPolicy: policy, StripeWidth: nProviders - 1})
	if err != nil {
		return nil, err
	}
	if err := seedAndUpload(d, "victim", "bids.csv", csvData, privacy.Moderate, core.UploadOptions{NoParity: true}); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(seed + 99))
	var out []CompromisePoint
	for k := 1; k <= nProviders; k++ {
		_, blobs, err := attack.CompromiseRandom(fleet, k, rng)
		if err != nil {
			return nil, err
		}
		res := attack.BiddingRegressionAttack(blobs)
		point := CompromisePoint{Compromised: k, RowsRecovered: res.RowsRecovered}
		if res.Model == nil {
			point.MiningFailed = true
		} else {
			point.RelErr, err = mining.RelativeCoefficientError(res.Model, truth)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, point)
	}
	return out, nil
}

// FormatCompromise renders the sweep.
func FormatCompromise(points []CompromisePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %14s %12s %8s\n", "compromised", "rows", "relErr", "failed")
	for _, p := range points {
		if p.MiningFailed {
			fmt.Fprintf(&b, "%12d %14d %12s %8v\n", p.Compromised, p.RowsRecovered, "-", true)
			continue
		}
		fmt.Fprintf(&b, "%12d %14d %12.3f %8v\n", p.Compromised, p.RowsRecovered, p.RelErr, false)
	}
	return b.String()
}

// EncVsFragPoint is one row of the §VII-E comparison.
type EncVsFragPoint struct {
	ObjectBytes       int
	QueryBytes        int
	EncTransferred    int
	EncDecrypted      int
	FragTransferred   int
	FragChunksTouched int
	Speedup           float64
}

// EncryptionVsFragmentation sweeps object sizes for a fixed point query,
// reproducing the paper's overhead argument quantitatively.
func EncryptionVsFragmentation(objectSizes []int, chunkSize, queryBytes int) ([]EncVsFragPoint, error) {
	var out []EncVsFragPoint
	for _, sz := range objectSizes {
		if queryBytes > sz {
			return nil, fmt.Errorf("experiments: query %d larger than object %d", queryBytes, sz)
		}
		enc := cryptofrag.EncryptedQueryCost(sz, queryBytes)
		frag, err := cryptofrag.FragmentedQueryCost(sz, chunkSize, sz/2, queryBytes)
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if frag.BytesTransferred > 0 {
			speedup = float64(enc.BytesTransferred) / float64(frag.BytesTransferred)
		}
		out = append(out, EncVsFragPoint{
			ObjectBytes: sz, QueryBytes: queryBytes,
			EncTransferred: enc.BytesTransferred, EncDecrypted: enc.BytesDecrypted,
			FragTransferred: frag.BytesTransferred, FragChunksTouched: frag.ChunksTouched,
			Speedup: speedup,
		})
	}
	return out, nil
}

// FormatEncVsFrag renders the comparison.
func FormatEncVsFrag(points []EncVsFragPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %10s %14s %14s %10s\n", "object", "query", "enc bytes", "frag bytes", "speedup")
	for _, p := range points {
		fmt.Fprintf(&b, "%12d %10d %14d %14d %9.1fx\n",
			p.ObjectBytes, p.QueryBytes, p.EncTransferred, p.FragTransferred, p.Speedup)
	}
	return b.String()
}
