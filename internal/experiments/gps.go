package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/mining"
)

// GPSFiguresResult reproduces Figs. 4–6: the dendrogram over the entire
// GPS data set (>3000 observations of 30 users) and the dendrograms over
// two 500-observation fragments, plus the agreement statistics that turn
// "many entities have moved from their original cluster" into numbers.
type GPSFiguresResult struct {
	Config dataset.GPSConfig
	// Full is the Fig. 4 clustering (all observations).
	Full GPSFigure
	// Fragments are the Fig. 5 and Fig. 6 clusterings (500 observations
	// each, disjoint).
	Fragments []GPSFigure
	// TruthARI is the adjusted Rand index of each clustering against the
	// planted behavioural groups: [full, frag1, frag2].
	TruthARI []float64
	// FullARI[i] is fragment i's ARI against the full-data clustering.
	FullARI []float64
	// Migrations[i] counts pair relationships that changed between the
	// full clustering and fragment i's clustering.
	Migrations []int
	// MigratedUsers[i] counts users touched by at least one changed pair.
	MigratedUsers []int
	// CopheneticCorr[i] correlates fragment i's dendrogram heights with
	// the full dendrogram's.
	CopheneticCorr []float64
}

// GPSFigure is one dendrogram plot's worth of data.
type GPSFigure struct {
	Label        string
	Observations int
	Users        []int
	Dendrogram   *mining.Dendrogram
	LeafOrder    []int
	Labels       []int // flat clustering at k = Config.Groups
}

// GPSFigures generates the synthetic 30-user traces and clusters the
// whole set and two 500-observation fragments, exactly mirroring the
// paper's §VIII-B methodology ("Figure 4 corresponds to the clustering of
// users using more than 3000 observations and Figure 5 and Figure 6
// corresponds to clustering using 500 observations").
func GPSFigures(cfg dataset.GPSConfig, fragmentObs int) (*GPSFiguresResult, error) {
	if fragmentObs < 1 {
		return nil, fmt.Errorf("experiments: fragmentObs %d", fragmentObs)
	}
	profiles, points, err := dataset.GenerateGPS(cfg)
	if err != nil {
		return nil, err
	}
	if len(points) <= 2*fragmentObs {
		return nil, fmt.Errorf("experiments: %d observations cannot yield two disjoint fragments of %d", len(points), fragmentObs)
	}
	res := &GPSFiguresResult{Config: cfg}

	full, err := clusterFigure("Fig. 4 (entire data)", points, cfg.Groups)
	if err != nil {
		return nil, err
	}
	res.Full = *full

	// Interleave observations across fragments (users appear in both, as
	// they would when chunks scatter): fragment f takes a contiguous slab.
	frags := [][]dataset.GPSPoint{
		points[:fragmentObs],
		points[fragmentObs : 2*fragmentObs],
	}
	for i, fp := range frags {
		fig, err := clusterFigure(fmt.Sprintf("Fig. %d (fragment of %d observations)", 5+i, fragmentObs), fp, cfg.Groups)
		if err != nil {
			return nil, err
		}
		res.Fragments = append(res.Fragments, *fig)
	}

	// Agreement statistics.
	truthOf := func(users []int) []int {
		out := make([]int, len(users))
		for i, u := range users {
			out[i] = profiles[u].Group
		}
		return out
	}
	ariFull, err := metrics.AdjustedRandIndex(res.Full.Labels, truthOf(res.Full.Users))
	if err != nil {
		return nil, err
	}
	res.TruthARI = append(res.TruthARI, ariFull)
	fullCoph := res.Full.Dendrogram.CopheneticDistances()

	for i := range res.Fragments {
		frag := &res.Fragments[i]
		ari, err := metrics.AdjustedRandIndex(frag.Labels, truthOf(frag.Users))
		if err != nil {
			return nil, err
		}
		res.TruthARI = append(res.TruthARI, ari)

		// Compare with the full clustering restricted to the fragment's
		// visible users.
		fullRestricted, fragLabels := restrictLabels(res.Full.Users, res.Full.Labels, frag.Users, frag.Labels)
		ariVsFull, err := metrics.AdjustedRandIndex(fragLabels, fullRestricted)
		if err != nil {
			return nil, err
		}
		res.FullARI = append(res.FullARI, ariVsFull)
		mig, err := metrics.ClusterMigrations(fullRestricted, fragLabels)
		if err != nil {
			return nil, err
		}
		res.Migrations = append(res.Migrations, mig)
		moved, err := metrics.MigratedItems(fullRestricted, fragLabels)
		if err != nil {
			return nil, err
		}
		res.MigratedUsers = append(res.MigratedUsers, moved)

		// Cophenetic correlation over shared users.
		corr, err := copheneticAgreement(fullCoph, res.Full.Users, frag)
		if err != nil {
			return nil, err
		}
		res.CopheneticCorr = append(res.CopheneticCorr, corr)
	}
	return res, nil
}

func clusterFigure(label string, points []dataset.GPSPoint, k int) (*GPSFigure, error) {
	vectors, users := dataset.UserFeatureVectors(points)
	if len(vectors) == 0 {
		return nil, fmt.Errorf("experiments: no users visible in %s", label)
	}
	dg, err := mining.ClusterPoints(vectors, mining.AverageLinkage)
	if err != nil {
		return nil, err
	}
	if k > len(users) {
		k = len(users)
	}
	labels, err := dg.Cut(k)
	if err != nil {
		return nil, err
	}
	return &GPSFigure{
		Label:        label,
		Observations: len(points),
		Users:        users,
		Dendrogram:   dg,
		LeafOrder:    dg.LeafOrder(),
		Labels:       labels,
	}, nil
}

// restrictLabels aligns two clusterings on their common user set.
func restrictLabels(usersA []int, labelsA []int, usersB []int, labelsB []int) (a, b []int) {
	posA := map[int]int{}
	for i, u := range usersA {
		posA[u] = i
	}
	for j, u := range usersB {
		if i, ok := posA[u]; ok {
			a = append(a, labelsA[i])
			b = append(b, labelsB[j])
		}
	}
	return a, b
}

func copheneticAgreement(fullCoph [][]float64, fullUsers []int, frag *GPSFigure) (float64, error) {
	posFull := map[int]int{}
	for i, u := range fullUsers {
		posFull[u] = i
	}
	fragCoph := frag.Dendrogram.CopheneticDistances()
	var xs, ys []float64
	for i := 0; i < len(frag.Users); i++ {
		fi, ok := posFull[frag.Users[i]]
		if !ok {
			continue
		}
		for j := i + 1; j < len(frag.Users); j++ {
			fj, ok := posFull[frag.Users[j]]
			if !ok {
				continue
			}
			xs = append(xs, fullCoph[fi][fj])
			ys = append(ys, fragCoph[i][j])
		}
	}
	if len(xs) == 0 {
		return 0, nil
	}
	return metrics.Pearson(xs, ys)
}

// FormatGPSFigures renders the three dendrograms and the agreement
// statistics.
func FormatGPSFigures(r *GPSFiguresResult) string {
	var b strings.Builder
	writeFig := func(fig *GPSFigure) {
		fmt.Fprintf(&b, "%s — %d observations, %d users\n", fig.Label, fig.Observations, len(fig.Users))
		order := make([]string, len(fig.LeafOrder))
		for i, o := range fig.LeafOrder {
			order[i] = fmt.Sprintf("%d", fig.Users[o]+1)
		}
		fmt.Fprintf(&b, "  leaf order: %s\n", strings.Join(order, " "))
		hs := fig.Dendrogram.MergeHeights()
		if len(hs) > 0 {
			fmt.Fprintf(&b, "  merge heights: min=%.4f max=%.4f\n", hs[0], hs[len(hs)-1])
		}
	}
	writeFig(&r.Full)
	for i := range r.Fragments {
		writeFig(&r.Fragments[i])
	}
	b.WriteString("\nAgreement with planted groups (adjusted Rand index):\n")
	labels := []string{"full", "fragment1", "fragment2"}
	for i, ari := range r.TruthARI {
		fmt.Fprintf(&b, "  %-10s ARI=%.3f\n", labels[i], ari)
	}
	b.WriteString("\nFragment vs full clustering (the paper's 'entities moved'):\n")
	for i := range r.Fragments {
		fmt.Fprintf(&b, "  fragment%d: ARI=%.3f, changed pairs=%d, migrated users=%d, cophenetic corr=%.3f\n",
			i+1, r.FullARI[i], r.Migrations[i], r.MigratedUsers[i], r.CopheneticCorr[i])
	}
	return b.String()
}

// GPSDendrogramASCII renders one figure's full tree (used by the
// benchrunner's verbose mode).
func GPSDendrogramASCII(fig *GPSFigure) string {
	return fig.Dendrogram.ASCII(func(obs int) string {
		return fmt.Sprintf("user%02d", fig.Users[obs]+1)
	})
}
