package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/provider"
)

// HealthPoint reports prediction-attack quality for one attacker scope.
type HealthPoint struct {
	Scope         string
	RowsRecovered int
	Accuracy      float64
	Failed        bool
}

// HealthPredictionExperiment uploads a synthetic patient cohort once to a
// single provider and once fragmented across nProviders, then scores the
// risk-prediction attack for the whole-data adversary and each insider —
// the paper's health-privacy motivation made measurable.
func HealthPredictionExperiment(cfg dataset.HealthConfig, nProviders int) ([]HealthPoint, float64, error) {
	recs, err := dataset.GenerateHealthRecords(cfg)
	if err != nil {
		return nil, 0, err
	}
	// Train/holdout split: the cloud stores the training records; the
	// attack is scored on the held-out patients.
	split := len(recs) * 3 / 4
	train, holdout := recs[:split], recs[split:]
	body := dataset.HealthCSV(train)

	// Majority-class baseline accuracy: an attacker with no data at all.
	low := 0
	for _, r := range holdout {
		if r.Risk == "low" {
			low++
		}
	}
	baseline := float64(low) / float64(len(holdout))
	if baseline < 0.5 {
		baseline = 1 - baseline
	}

	score := func(scope string, blobs []attack.Blob) HealthPoint {
		res := attack.HealthPredictionAttack(blobs, holdout)
		p := HealthPoint{Scope: scope, RowsRecovered: res.RowsRecovered, Accuracy: res.Accuracy}
		if res.FitErr != nil {
			p.Failed = true
		}
		return p
	}

	solo, err := provider.NewFleet(provider.MustNew(provider.Info{Name: "solo", PL: privacy.High, CL: 0}, provider.Options{}))
	if err != nil {
		return nil, 0, err
	}
	ds, err := core.New(core.Config{Fleet: solo, StripeWidth: 1})
	if err != nil {
		return nil, 0, err
	}
	if err := seedAndUpload(ds, "hospital", "patients.csv", body, privacy.Public, core.UploadOptions{NoParity: true}); err != nil {
		return nil, 0, err
	}
	soloBlobs, err := attack.DumpProviders(solo, []int{0})
	if err != nil {
		return nil, 0, err
	}
	out := []HealthPoint{score("full", soloBlobs)}

	fleet, err := BuildFleet(nProviders, provider.LatencyModel{})
	if err != nil {
		return nil, 0, err
	}
	policy := privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
		privacy.Public: 1 << 10, privacy.Low: 1 << 10, privacy.Moderate: 512, privacy.High: 256,
	}}
	dd, err := core.New(core.Config{Fleet: fleet, ChunkPolicy: policy, StripeWidth: nProviders})
	if err != nil {
		return nil, 0, err
	}
	if err := seedAndUpload(dd, "hospital", "patients.csv", body, privacy.High, core.UploadOptions{NoParity: true}); err != nil {
		return nil, 0, err
	}
	for i := 0; i < fleet.Len(); i++ {
		blobs, err := attack.DumpProviders(fleet, []int{i})
		if err != nil {
			return nil, 0, err
		}
		p, _ := fleet.At(i)
		out = append(out, score(p.Info().Name, blobs))
	}
	return out, baseline, nil
}

// FormatHealthExperiment renders the prediction-attack comparison.
func FormatHealthExperiment(points []HealthPoint, baseline float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "majority-class baseline accuracy: %.3f\n", baseline)
	fmt.Fprintf(&b, "%-8s %10s %12s %8s\n", "scope", "rows", "accuracy", "failed")
	for _, p := range points {
		if p.Failed {
			fmt.Fprintf(&b, "%-8s %10d %12s %8v\n", p.Scope, p.RowsRecovered, "-", true)
			continue
		}
		fmt.Fprintf(&b, "%-8s %10d %12.3f %8v\n", p.Scope, p.RowsRecovered, p.Accuracy, false)
	}
	return b.String()
}
