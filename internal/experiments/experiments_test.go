package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/provider"
	"repro/internal/raid"
)

// TestTable4ShapeMatchesPaper is the headline reproduction check: the
// full-data fit is close to the paper's (1.4, 1.5, 3.1, 5436) while the
// three fragment fits diverge from it and from each other.
func TestTable4ShapeMatchesPaper(t *testing.T) {
	r, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	paper := []float64{1.4, 1.5, 3.1}
	for i, want := range paper {
		if math.Abs(r.FullModel.Coeffs[i]-want) > 0.4 {
			t.Fatalf("full coeff[%d] = %v, paper %v", i, r.FullModel.Coeffs[i], want)
		}
	}
	if math.Abs(r.FullModel.Intercept-5436) > 900 {
		t.Fatalf("full intercept = %v, paper 5436", r.FullModel.Intercept)
	}
	if len(r.FragmentModels) != 3 {
		t.Fatalf("fragments = %d, want 3", len(r.FragmentModels))
	}
	// The paper's misleading per-provider equations: e.g. (1.8, 0.8, 3.4)
	// + 4489 — every fragment model differs substantially from the full
	// fit.
	divergent := 0
	for i, e := range r.FragmentErrs {
		t.Logf("fragment %d: %v (relErr %.3f)", i+1, r.FragmentModels[i], e)
		if e > 0.1 {
			divergent++
		}
	}
	if divergent < 2 {
		t.Fatalf("only %d/3 fragment models diverge from the full fit", divergent)
	}
	if r.PairwiseDist < 100 {
		t.Fatalf("fragment models nearly agree (mean distance %v)", r.PairwiseDist)
	}
	out := FormatTable4(r)
	for _, want := range []string{"Table IV", "Greece", "2011", "Full data", "provider 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTable4SystemEndToEnd(t *testing.T) {
	r, err := Table4System(300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Full.FitErr != nil {
		t.Fatalf("single-provider attack failed: %v", r.Full.FitErr)
	}
	if r.TruthErrFull > 0.2 {
		t.Fatalf("single-provider insider should recover the model (err %.3f)", r.TruthErrFull)
	}
	if len(r.PerProvider) != 3 {
		t.Fatalf("per-provider results = %d", len(r.PerProvider))
	}
	// The distributed insiders do strictly worse than the single-provider
	// insider.
	if r.TruthErrFragMax <= r.TruthErrFull {
		t.Fatalf("fragmented attack (worst %.3f) not worse than whole-data (%.3f)",
			r.TruthErrFragMax, r.TruthErrFull)
	}
	for name, pr := range r.PerProvider {
		if pr.RowsRecovered >= r.Full.RowsRecovered {
			t.Fatalf("insider %s sees %d rows ≥ whole-data %d", name, pr.RowsRecovered, r.Full.RowsRecovered)
		}
	}
}

func TestGPSFiguresShapeMatchesPaper(t *testing.T) {
	cfg := dataset.DefaultGPSConfig()
	r, err := GPSFigures(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 4 uses >3000 observations; Figs. 5–6 use 500 each.
	if r.Full.Observations <= 3000 {
		t.Fatalf("full observations = %d, paper uses >3000", r.Full.Observations)
	}
	if len(r.Fragments) != 2 {
		t.Fatalf("fragments = %d", len(r.Fragments))
	}
	for i, f := range r.Fragments {
		if f.Observations != 500 {
			t.Fatalf("fragment %d observations = %d, want 500", i, f.Observations)
		}
	}
	// Full-data clustering recovers the planted groups well...
	if r.TruthARI[0] < 0.5 {
		t.Fatalf("full-data ARI = %.3f, want strong recovery", r.TruthARI[0])
	}
	// ...and each fragment's clustering disagrees with the full one: the
	// paper's "many entities have moved from their original cluster".
	for i := range r.Fragments {
		if r.FullARI[i] > 0.95 {
			t.Fatalf("fragment %d ARI vs full = %.3f — no entities moved", i+1, r.FullARI[i])
		}
		if r.Migrations[i] == 0 {
			t.Fatalf("fragment %d: zero changed pairs", i+1)
		}
		if r.MigratedUsers[i] == 0 {
			t.Fatalf("fragment %d: zero migrated users", i+1)
		}
	}
	out := FormatGPSFigures(r)
	for _, want := range []string{"Fig. 4", "Fig. 5", "Fig. 6", "migrated users", "leaf order"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q", want)
		}
	}
	ascii := GPSDendrogramASCII(&r.Full)
	if !strings.Contains(ascii, "user01") {
		t.Fatalf("dendrogram ASCII missing labels:\n%.200s", ascii)
	}
}

func TestGPSFiguresValidation(t *testing.T) {
	cfg := dataset.DefaultGPSConfig()
	if _, err := GPSFigures(cfg, 0); err == nil {
		t.Fatal("fragmentObs=0 accepted")
	}
	if _, err := GPSFigures(cfg, 10_000); err == nil {
		t.Fatal("oversized fragment accepted")
	}
}

func TestDistributionTime(t *testing.T) {
	r, err := DistributionTime(200_000, 6, raid.RAID5, provider.LatencyModel{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ReadBackOK {
		t.Fatal("consistency check failed")
	}
	if r.Chunks < 2 || r.Parity < 1 {
		t.Fatalf("chunks=%d parity=%d", r.Chunks, r.Parity)
	}
	if r.WallTime <= 0 {
		t.Fatal("no wall time measured")
	}
}

func TestDistributionSweepAndLatencyModel(t *testing.T) {
	rows, err := DistributionSweep([]int{50_000, 100_000}, []int{4, 8}, provider.LatencyModel{PerByte: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.ReadBackOK {
			t.Fatalf("readback failed: %+v", r)
		}
		if r.SimulatedTime <= 0 {
			t.Fatalf("latency model not applied: %+v", r)
		}
	}
	// Larger files take more simulated provider time at equal providers.
	if rows[1].SimulatedTime <= rows[0].SimulatedTime {
		t.Fatalf("simulated time not increasing with size: %v vs %v", rows[0].SimulatedTime, rows[1].SimulatedTime)
	}
	if !strings.Contains(FormatDistributionSweep(rows), "providers") {
		t.Fatal("sweep rendering broken")
	}
}

func TestMultiDistributorDrill(t *testing.T) {
	r, err := MultiDistributor(3, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.UploadOK || !r.PrimaryRetrievalOK {
		t.Fatalf("healthy-path failure: %+v", r)
	}
	if !r.FailoverRetrievalOK {
		t.Fatal("secondary failed to serve retrieval during primary outage")
	}
	if !r.UploadBlockedOK {
		t.Fatal("upload succeeded with primary down")
	}
}

func TestFigure3Report(t *testing.T) {
	out, err := Figure3Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table I", "Table II", "Table III",
		"Earth", "Bob", "10986",
		"chunk served", "request denied",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "UNEXPECTED") {
		t.Fatalf("walkthrough deviated:\n%s", out)
	}
}

func TestAblationChunkSize(t *testing.T) {
	points, err := AblationChunkSize([]int{8 << 10, 1 << 10, 256}, 300, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Rows seen by the best insider shrink as chunks shrink.
	if points[2].RowsRecovered >= points[0].RowsRecovered {
		t.Fatalf("rows did not shrink with chunk size: %+v", points)
	}
	if !strings.Contains(FormatChunkSizeAblation(points), "chunk bytes") {
		t.Fatal("rendering broken")
	}
}

func TestAblationMislead(t *testing.T) {
	points, err := AblationMislead([]int{0, 40, 160}, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].MiningFailed {
		t.Fatal("attack failed with zero decoys")
	}
	if points[0].ReadOverhead > 0.01 {
		t.Fatalf("overhead with zero decoys = %v", points[0].ReadOverhead)
	}
	// More decoys → worse model (or failure) and more overhead.
	last := points[len(points)-1]
	if !last.MiningFailed && last.RelErr <= points[0].RelErr {
		t.Fatalf("decoys did not hurt the attack: %+v", points)
	}
	if last.ReadOverhead <= points[0].ReadOverhead {
		t.Fatalf("overhead did not grow: %+v", points)
	}
	if !strings.Contains(FormatMisleadAblation(points), "decoys") {
		t.Fatal("rendering broken")
	}
}

func TestAblationRAID(t *testing.T) {
	points, err := AblationRAID(3, 0.1, 1, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Availability ordering and the storage cost of parity.
	if !(points[2].AnalyticAvail > points[1].AnalyticAvail && points[1].AnalyticAvail > points[0].AnalyticAvail) {
		t.Fatalf("availability ordering wrong: %+v", points)
	}
	if points[0].StorageFactor != 1 || points[1].StorageFactor <= 1 || points[2].StorageFactor <= points[1].StorageFactor {
		t.Fatalf("storage factors wrong: %+v", points)
	}
	// With one provider down, RAID5/6 drills read everything.
	if points[1].DrillReadable != points[1].DrillTotal || points[2].DrillReadable != points[2].DrillTotal {
		t.Fatalf("raid drills lost files: %+v", points)
	}
	if !strings.Contains(FormatRaidAblation(points), "P(survive)") {
		t.Fatal("rendering broken")
	}
}

func TestAblationCompromise(t *testing.T) {
	points, err := AblationCompromise(5, 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	// Recovered rows grow with the number of compromised providers, and
	// the full compromise sees the most.
	if points[4].RowsRecovered <= points[0].RowsRecovered {
		t.Fatalf("row recovery not increasing: %+v", points)
	}
	// Full compromise should mine successfully (relErr bounded by the
	// planted noise — intercept SE dominates since covariates sit far
	// from the origin).
	if points[4].MiningFailed || points[4].RelErr > 0.5 {
		t.Fatalf("full compromise failed to mine: %+v", points[4])
	}
	if points[4].RowsRecovered < 250 {
		t.Fatalf("full compromise recovered only %d/300 rows", points[4].RowsRecovered)
	}
	if !strings.Contains(FormatCompromise(points), "compromised") {
		t.Fatal("rendering broken")
	}
}

func TestEncryptionVsFragmentation(t *testing.T) {
	points, err := EncryptionVsFragmentation([]int{1 << 20, 8 << 20}, 64<<10, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Speedup <= 1 {
			t.Fatalf("fragmentation not cheaper: %+v", p)
		}
		if p.FragChunksTouched > 2 {
			t.Fatalf("point query touched %d chunks", p.FragChunksTouched)
		}
	}
	// Speedup grows with object size (encryption cost scales with the
	// whole object).
	if points[1].Speedup <= points[0].Speedup {
		t.Fatalf("speedup not growing: %+v", points)
	}
	if _, err := EncryptionVsFragmentation([]int{100}, 64, 4096); err == nil {
		t.Fatal("query > object accepted")
	}
	if !strings.Contains(FormatEncVsFrag(points), "speedup") {
		t.Fatal("rendering broken")
	}
}

func TestBasketRuleExperiment(t *testing.T) {
	cfg := dataset.DefaultBasketConfig()
	cfg.Transactions = 600
	points, err := BasketRuleExperiment(cfg, 4, 0.05, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 { // full + 4 insiders
		t.Fatalf("points = %d", len(points))
	}
	full := points[0]
	if full.Scope != "full" || full.PlantedFound != len(cfg.PlantedRules) {
		t.Fatalf("full attack failed to recover planted rules: %+v", full)
	}
	// Every insider sees strictly fewer transactions than the whole log.
	for _, p := range points[1:] {
		if p.TxnsRecovered >= full.TxnsRecovered {
			t.Fatalf("insider %s sees %d txns >= full %d", p.Scope, p.TxnsRecovered, full.TxnsRecovered)
		}
	}
	if !strings.Contains(FormatBasketExperiment(points), "planted found") {
		t.Fatal("rendering broken")
	}
}

func TestEncryptionVsFragmentationLive(t *testing.T) {
	points, err := EncryptionVsFragmentationLive([]int{256 << 10, 1 << 20}, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if !p.BothCorrect {
			t.Fatalf("wrong query answer: %+v", p)
		}
		if p.Speedup <= 1 {
			t.Fatalf("fragmentation not measurably cheaper: %+v", p)
		}
		if p.EncBytesMoved < int64(p.ObjectBytes) {
			t.Fatalf("encrypted baseline moved %d < object %d", p.EncBytesMoved, p.ObjectBytes)
		}
	}
	if points[1].Speedup <= points[0].Speedup {
		t.Fatalf("speedup should grow with object size: %+v", points)
	}
	if !strings.Contains(FormatEncVsFragLive(points), "speedup") {
		t.Fatal("rendering broken")
	}
	if _, err := EncryptionVsFragmentationLive([]int{10}, 100, 1); err == nil {
		t.Fatal("query > object accepted")
	}
}

func TestHealthPredictionExperiment(t *testing.T) {
	cfg := dataset.DefaultHealthConfig()
	points, baseline, err := HealthPredictionExperiment(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	full := points[0]
	if full.Failed {
		t.Fatal("whole-data prediction attack failed")
	}
	// The whole-data attacker beats the majority baseline clearly.
	if full.Accuracy < baseline+0.1 {
		t.Fatalf("full accuracy %.3f barely beats baseline %.3f", full.Accuracy, baseline)
	}
	// Insiders see strictly fewer rows.
	for _, p := range points[1:] {
		if p.RowsRecovered >= full.RowsRecovered {
			t.Fatalf("insider %s sees %d rows >= full %d", p.Scope, p.RowsRecovered, full.RowsRecovered)
		}
	}
	if !strings.Contains(FormatHealthExperiment(points, baseline), "baseline") {
		t.Fatal("rendering broken")
	}
}

func TestCostTradeoff(t *testing.T) {
	r, err := CostTradeoff(3, 128<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.SensitiveOnTrusted != 1.0 {
		t.Fatalf("sensitive chunks off trusted providers: %v", r.SensitiveOnTrusted)
	}
	if r.StoredBytes <= r.LogicalBytes {
		t.Fatalf("parity overhead missing: stored %d <= logical %d", r.StoredBytes, r.LogicalBytes)
	}
	if r.Ratio >= 1 {
		t.Fatalf("distributed (%v) not cheaper than premium single (%v) despite cheap providers", r.DistributedBill, r.SingleBill)
	}
	if !strings.Contains(FormatCost(r), "distributed bill") {
		t.Fatal("rendering broken")
	}
}
