package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/provider"
)

// CostResult quantifies the paper's §IV-B trade-off: "It is wise to make
// a trade off between security and cost by providing regular data to
// cheaper providers while sensitive data to secured providers."
type CostResult struct {
	LogicalBytes    int64
	StoredBytes     int64 // includes parity overhead
	DistributedBill float64
	SingleBill      float64 // premium single provider (CL3)
	Ratio           float64
	PerProvider     map[string]float64
	// SensitiveOnTrusted verifies the policy: fraction of PL3 chunk bytes
	// on PL3 providers (must be 1.0).
	SensitiveOnTrusted float64
}

// CostTradeoff uploads a mixed-sensitivity workload into a mixed-price
// fleet and bills both architectures.
func CostTradeoff(filesPerLevel int, fileBytes int, seed int64) (*CostResult, error) {
	fleet, err := provider.NewFleet(
		provider.MustNew(provider.Info{Name: "fortress", PL: privacy.High, CL: 3}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "citadel", PL: privacy.High, CL: 2}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "vaulted", PL: privacy.High, CL: 2}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "midtier", PL: privacy.Moderate, CL: 1}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "bargain", PL: privacy.Low, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "budget", PL: privacy.Public, CL: 0}, provider.Options{}),
	)
	if err != nil {
		return nil, err
	}
	d, err := core.New(core.Config{Fleet: fleet})
	if err != nil {
		return nil, err
	}
	if err := d.RegisterClient("acct"); err != nil {
		return nil, err
	}
	if err := d.AddPassword("acct", "pw", privacy.High); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var logical int64
	for _, pl := range []privacy.Level{privacy.Public, privacy.Low, privacy.Moderate, privacy.High} {
		for i := 0; i < filesPerLevel; i++ {
			name := fmt.Sprintf("f-%v-%d", pl, i)
			data := dataset.RandomBytes(fileBytes, rng)
			if _, err := d.Upload("acct", "pw", name, data, pl, core.UploadOptions{}); err != nil {
				return nil, err
			}
			logical += int64(fileBytes)
		}
	}

	bill, err := costmodel.FleetBill(fleet)
	if err != nil {
		return nil, err
	}
	cmp, err := costmodel.Compare(fleet, logical, 3)
	if err != nil {
		return nil, err
	}

	// Verify the sensitivity constraint on actual placements.
	sensitiveTotal, sensitiveTrusted := 0, 0
	for _, row := range d.ChunkTable() {
		if row.PL != privacy.High {
			continue
		}
		sensitiveTotal++
		p, err := fleet.At(row.CPIndex)
		if err != nil {
			return nil, err
		}
		if p.Info().PL >= privacy.High {
			sensitiveTrusted++
		}
	}
	frac := 1.0
	if sensitiveTotal > 0 {
		frac = float64(sensitiveTrusted) / float64(sensitiveTotal)
	}
	return &CostResult{
		LogicalBytes:       logical,
		StoredBytes:        bill.BytesStored,
		DistributedBill:    cmp.DistributedMonthly,
		SingleBill:         cmp.SingleMonthly,
		Ratio:              cmp.Ratio,
		PerProvider:        bill.PerProvider,
		SensitiveOnTrusted: frac,
	}, nil
}

// FormatCost renders the billing comparison.
func FormatCost(r *CostResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "logical bytes: %d, stored (with parity): %d (overhead %.2fx)\n",
		r.LogicalBytes, r.StoredBytes, float64(r.StoredBytes)/float64(r.LogicalBytes))
	names := make([]string, 0, len(r.PerProvider))
	for n := range r.PerProvider {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-10s $%.6f/month\n", n, r.PerProvider[n])
	}
	fmt.Fprintf(&b, "distributed bill: $%.6f/month vs premium single provider: $%.6f/month (ratio %.2f)\n",
		r.DistributedBill, r.SingleBill, r.Ratio)
	fmt.Fprintf(&b, "PL3 chunks on PL3 providers: %.0f%%\n", r.SensitiveOnTrusted*100)
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
