package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/cryptofrag"
	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/provider"
)

// EncVsFragLivePoint is one measured row of the §VII-E comparison: the
// same file, the same point query, served by the encrypted single-
// provider baseline and by the fragmenting distributor, with actual
// provider byte counters.
type EncVsFragLivePoint struct {
	ObjectBytes    int
	QueryBytes     int
	EncBytesMoved  int64
	FragBytesMoved int64
	Speedup        float64
	BothCorrect    bool
}

// EncryptionVsFragmentationLive runs both systems for each object size.
func EncryptionVsFragmentationLive(objectSizes []int, queryBytes int, seed int64) ([]EncVsFragLivePoint, error) {
	var out []EncVsFragLivePoint
	key := bytes.Repeat([]byte{0x7A}, 32)
	for _, sz := range objectSizes {
		if queryBytes > sz {
			return nil, fmt.Errorf("experiments: query %d > object %d", queryBytes, sz)
		}
		data := dataset.RandomBytes(sz, rand.New(rand.NewSource(seed)))
		offset := sz / 2

		// Encrypted baseline on one premium provider.
		encProv := provider.MustNew(provider.Info{Name: "vault", PL: privacy.High, CL: 3}, provider.Options{})
		store, err := cryptofrag.NewBaselineStore(encProv, key)
		if err != nil {
			return nil, err
		}
		if err := store.Put("f", data); err != nil {
			return nil, err
		}
		encBefore := store.BytesOut()
		encGot, err := store.GetRange("f", offset, queryBytes)
		if err != nil {
			return nil, err
		}
		encMoved := store.BytesOut() - encBefore

		// Fragmenting distributor over six providers.
		fleet, err := BuildFleet(6, provider.LatencyModel{})
		if err != nil {
			return nil, err
		}
		d, err := core.New(core.Config{Fleet: fleet})
		if err != nil {
			return nil, err
		}
		if err := seedAndUpload(d, "c", "f", data, privacy.Moderate, core.UploadOptions{}); err != nil {
			return nil, err
		}
		fragBefore := int64(0)
		for _, p := range fleet.All() {
			fragBefore += p.Usage().BytesOut
		}
		fragGot, err := d.GetRange("c", "pw", "f", offset, queryBytes)
		if err != nil {
			return nil, err
		}
		fragMoved := int64(0)
		for _, p := range fleet.All() {
			fragMoved += p.Usage().BytesOut
		}
		fragMoved -= fragBefore

		point := EncVsFragLivePoint{
			ObjectBytes:    sz,
			QueryBytes:     queryBytes,
			EncBytesMoved:  encMoved,
			FragBytesMoved: fragMoved,
			BothCorrect: bytes.Equal(encGot, data[offset:offset+queryBytes]) &&
				bytes.Equal(fragGot, data[offset:offset+queryBytes]),
		}
		if fragMoved > 0 {
			point.Speedup = float64(encMoved) / float64(fragMoved)
		}
		out = append(out, point)
	}
	return out, nil
}

// FormatEncVsFragLive renders the measured comparison.
func FormatEncVsFragLive(points []EncVsFragLivePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %8s %16s %16s %9s %8s\n", "object", "query", "enc bytes moved", "frag bytes moved", "speedup", "correct")
	for _, p := range points {
		fmt.Fprintf(&b, "%12d %8d %16d %16d %8.1fx %8v\n",
			p.ObjectBytes, p.QueryBytes, p.EncBytesMoved, p.FragBytesMoved, p.Speedup, p.BothCorrect)
	}
	return b.String()
}
