package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/provider"
)

// BasketPoint reports rule recovery for one attacker foothold.
type BasketPoint struct {
	Scope          string // "full" or the insider's provider name
	TxnsRecovered  int
	RulesMined     int
	PlantedFound   int
	PlantedMissing int
}

// BasketRuleExperiment plants association rules in a transaction log
// (§II-B: "association rule mining can be used to discover association
// relationships among large number of business transaction records"),
// uploads the log once to a single provider and once fragmented across
// nProviders, and reports whether each attacker recovers the planted
// rules.
func BasketRuleExperiment(cfg dataset.BasketConfig, nProviders int, minSup, minConf float64) ([]BasketPoint, error) {
	txns, err := dataset.GenerateBaskets(cfg)
	if err != nil {
		return nil, err
	}
	var body []byte
	for _, txn := range txns {
		body = append(body, []byte(strings.Join(txn, ","))...)
		body = append(body, '\n')
	}
	planted := cfg.PlantedRuleNames()

	score := func(scope string, blobs []attack.Blob) BasketPoint {
		res := attack.BasketRuleAttack(blobs, minSup, minConf)
		p := BasketPoint{Scope: scope, TxnsRecovered: res.TxnsRecovered, RulesMined: len(res.Rules)}
		for _, pr := range planted {
			if attack.HasRule(res.Rules, pr[0], pr[1]) {
				p.PlantedFound++
			} else {
				p.PlantedMissing++
			}
		}
		return p
	}

	// Single-provider baseline.
	solo, err := provider.NewFleet(provider.MustNew(provider.Info{Name: "solo", PL: privacy.High, CL: 0}, provider.Options{}))
	if err != nil {
		return nil, err
	}
	ds, err := core.New(core.Config{Fleet: solo, StripeWidth: 1})
	if err != nil {
		return nil, err
	}
	if err := seedAndUpload(ds, "shop", "txns.log", body, privacy.Public, core.UploadOptions{NoParity: true}); err != nil {
		return nil, err
	}
	soloBlobs, err := attack.DumpProviders(solo, []int{0})
	if err != nil {
		return nil, err
	}
	out := []BasketPoint{score("full", soloBlobs)}

	// Fragmented across nProviders with small chunks; each insider mines
	// its own share.
	fleet, err := BuildFleet(nProviders, provider.LatencyModel{})
	if err != nil {
		return nil, err
	}
	policy := privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
		privacy.Public: 1 << 10, privacy.Low: 1 << 10, privacy.Moderate: 512, privacy.High: 256,
	}}
	dd, err := core.New(core.Config{Fleet: fleet, ChunkPolicy: policy, StripeWidth: nProviders})
	if err != nil {
		return nil, err
	}
	if err := seedAndUpload(dd, "shop", "txns.log", body, privacy.Moderate, core.UploadOptions{NoParity: true}); err != nil {
		return nil, err
	}
	for i := 0; i < fleet.Len(); i++ {
		blobs, err := attack.DumpProviders(fleet, []int{i})
		if err != nil {
			return nil, err
		}
		p, _ := fleet.At(i)
		out = append(out, score(p.Info().Name, blobs))
	}
	return out, nil
}

// FormatBasketExperiment renders rule recovery per attacker scope.
func FormatBasketExperiment(points []BasketPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %14s %16s\n", "scope", "txns", "rules", "planted found", "planted missing")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s %10d %10d %14d %16d\n", p.Scope, p.TxnsRecovered, p.RulesMined, p.PlantedFound, p.PlantedMissing)
	}
	return b.String()
}
