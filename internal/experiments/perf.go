package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
)

// BuildFleet constructs n simulated providers with rotating cost levels
// and the given per-operation latency model (zero for pure-throughput
// benches, non-zero to model WAN providers like the paper's lab PCs).
func BuildFleet(n int, latency provider.LatencyModel) (*provider.Fleet, error) {
	fleet, err := provider.NewFleet()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		p, err := provider.New(provider.Info{
			Name: fmt.Sprintf("cp%02d", i),
			PL:   privacy.High,
			CL:   privacy.CostLevel(i % 4),
		}, provider.Options{Latency: latency})
		if err != nil {
			return nil, err
		}
		if err := fleet.Add(p); err != nil {
			return nil, err
		}
	}
	return fleet, nil
}

// DistributionTimeResult is one row of the §VIII-B performance series:
// how long the Cloud Data Distributor takes to fragment and scatter a
// file, wall-clock and simulated provider time.
type DistributionTimeResult struct {
	FileBytes     int
	Providers     int
	Raid          raid.Level
	Chunks        int
	Parity        int
	WallTime      time.Duration
	SimulatedTime time.Duration
	ReadBackOK    bool
}

// DistributionTime uploads one file of the given size into a fresh
// system and measures distribution time, then verifies consistency by
// reading the file back (the paper "tested the consistency of the system
// and ... monitored its performance (Distribution time)").
func DistributionTime(fileBytes, nProviders int, level raid.Level, latency provider.LatencyModel, seed int64) (*DistributionTimeResult, error) {
	fleet, err := BuildFleet(nProviders, latency)
	if err != nil {
		return nil, err
	}
	d, err := core.New(core.Config{Fleet: fleet, DefaultRaid: level})
	if err != nil {
		return nil, err
	}
	if err := d.RegisterClient("perf"); err != nil {
		return nil, err
	}
	if err := d.AddPassword("perf", "pw", privacy.High); err != nil {
		return nil, err
	}
	data := dataset.RandomBytes(fileBytes, rand.New(rand.NewSource(seed)))

	start := time.Now()
	info, err := d.Upload("perf", "pw", "payload.bin", data, privacy.Moderate, core.UploadOptions{})
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)

	var simTime time.Duration
	for _, p := range fleet.All() {
		simTime += p.Usage().SimulatedTime
	}
	back, err := d.GetFile("perf", "pw", "payload.bin")
	res := &DistributionTimeResult{
		FileBytes:     fileBytes,
		Providers:     nProviders,
		Raid:          level,
		Chunks:        info.Chunks,
		Parity:        d.Stats().ParityShards,
		WallTime:      wall,
		SimulatedTime: simTime,
		ReadBackOK:    err == nil && bytes.Equal(back, data),
	}
	return res, nil
}

// DistributionSweep measures distribution time across file sizes and
// provider counts — the series behind the §VIII-B performance claim.
func DistributionSweep(sizes []int, providerCounts []int, latency provider.LatencyModel) ([]*DistributionTimeResult, error) {
	var out []*DistributionTimeResult
	seed := int64(1)
	for _, n := range providerCounts {
		for _, sz := range sizes {
			r, err := DistributionTime(sz, n, raid.RAID5, latency, seed)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
			seed++
		}
	}
	return out, nil
}

// FormatDistributionSweep renders the sweep as a table.
func FormatDistributionSweep(rows []*DistributionTimeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %6s %7s %7s %14s %14s %9s\n",
		"bytes", "providers", "raid", "chunks", "parity", "wall", "simulated", "readback")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %10d %6s %7d %7d %14v %14v %9v\n",
			r.FileBytes, r.Providers, r.Raid, r.Chunks, r.Parity, r.WallTime.Round(time.Microsecond), r.SimulatedTime, r.ReadBackOK)
	}
	return b.String()
}

// MultiDistributorResult demonstrates Fig. 2: retrieval continues through
// secondaries when the primary distributor fails.
type MultiDistributorResult struct {
	Distributors        int
	UploadOK            bool
	PrimaryRetrievalOK  bool
	FailoverRetrievalOK bool
	UploadBlockedOK     bool // uploads correctly refused while primary down
}

// MultiDistributor runs the Fig. 2 drill with nDistributors over
// nProviders.
func MultiDistributor(nDistributors, nProviders int, seed int64) (*MultiDistributorResult, error) {
	fleet, err := BuildFleet(nProviders, provider.LatencyModel{})
	if err != nil {
		return nil, err
	}
	dists := make([]*core.Distributor, nDistributors)
	for i := range dists {
		d, err := core.New(core.Config{Fleet: fleet, Secret: []byte{byte(i + 1)}})
		if err != nil {
			return nil, err
		}
		dists[i] = d
	}
	cluster, err := core.NewCluster(dists...)
	if err != nil {
		return nil, err
	}
	if err := cluster.RegisterClient("client"); err != nil {
		return nil, err
	}
	if err := cluster.AddPassword("client", "pw", privacy.High); err != nil {
		return nil, err
	}
	data := dataset.RandomBytes(60_000, rand.New(rand.NewSource(seed)))
	res := &MultiDistributorResult{Distributors: nDistributors}
	if _, err := cluster.Upload("client", "pw", "f", data, privacy.Moderate, core.UploadOptions{}); err != nil {
		return nil, err
	}
	res.UploadOK = true
	back, err := cluster.GetFile("client", "pw", "f")
	res.PrimaryRetrievalOK = err == nil && bytes.Equal(back, data)

	if err := cluster.SetDown(0, true); err != nil {
		return nil, err
	}
	back, err = cluster.GetFile("client", "pw", "f")
	res.FailoverRetrievalOK = err == nil && bytes.Equal(back, data)
	_, err = cluster.Upload("client", "pw", "g", data, privacy.Low, core.UploadOptions{})
	res.UploadBlockedOK = err != nil
	_ = cluster.SetDown(0, false)
	return res, nil
}

// Figure3Report renders the paper's Tables I–III from the Figure 3
// scenario plus the two walkthrough outcomes.
func Figure3Report() (string, error) {
	sc, err := core.NewFigure3Scenario()
	if err != nil {
		return "", err
	}
	d := sc.Distributor
	var b strings.Builder
	b.WriteString("Table I — Cloud Provider Table\n")
	b.WriteString(core.FormatProviderTable(d.ProviderTable()))
	b.WriteString("\nTable II — Client Table\n")
	b.WriteString(core.FormatClientTable(d.ClientTable()))
	b.WriteString("\nTable III — Chunk Table\n")
	b.WriteString(core.FormatChunkTable(d.ChunkTable()))

	b.WriteString("\nFig. 3 walkthrough:\n")
	if _, err := d.GetChunk("Bob", "x9pr", "file1", 0); err == nil {
		b.WriteString("  (Bob, x9pr, file1, 0) -> chunk served (PL1 password, PL1 chunk)\n")
	} else {
		fmt.Fprintf(&b, "  (Bob, x9pr, file1, 0) -> UNEXPECTED: %v\n", err)
	}
	if _, err := d.GetChunk("Bob", "aB1c", "file1", 0); err != nil {
		b.WriteString("  (Bob, aB1c, file1, 0) -> request denied (PL0 password, PL1 chunk)\n")
	} else {
		b.WriteString("  (Bob, aB1c, file1, 0) -> UNEXPECTED: served\n")
	}
	return b.String(), nil
}
