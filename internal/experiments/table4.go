// Package experiments implements every table and figure of the paper's
// evaluation as a reproducible function: Table IV's regression attack on
// the Hercules bidding history, Figs. 4–6's GPS clustering dendrograms,
// the Fig. 1/2/3 architecture demonstrations, the §VIII-B distribution-
// time measurements, and the ablations DESIGN.md calls out. cmd/benchrunner
// prints them; bench_test.go times them.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/privacy"
	"repro/internal/provider"
)

// Table4Result reproduces the paper's §VII-A example: the full-data fit
// Hera obtains at a single provider, and the three divergent fits after
// Hercules splits his history across Titans, Spartans and Yagamis.
type Table4Result struct {
	Rows           []dataset.BidRecord
	FullModel      *mining.RegressionModel
	FragmentModels []*mining.RegressionModel
	// FragmentErrs[i] is the relative coefficient error of fragment i's
	// model versus the full-data model.
	FragmentErrs []float64
	// PairwiseDist is the mean coefficient distance between fragment
	// models — how much the misleading equations disagree.
	PairwiseDist float64
}

// Table4 runs the regression attack on the paper's exact 12-row table:
// full data, then the paper's three 4-row fragments.
func Table4() (*Table4Result, error) {
	rows := dataset.PaperTable4()
	res := &Table4Result{Rows: rows}
	x, y := dataset.Features(rows)
	full, err := mining.LinearRegression(x, y)
	if err != nil {
		return nil, fmt.Errorf("full-data regression: %w", err)
	}
	res.FullModel = full

	for start := 0; start < len(rows); start += 4 {
		fx, fy := dataset.Features(rows[start : start+4])
		m, err := mining.LinearRegression(fx, fy)
		if err != nil {
			return nil, fmt.Errorf("fragment %d regression: %w", start/4, err)
		}
		res.FragmentModels = append(res.FragmentModels, m)
		relErr, err := mining.RelativeCoefficientError(m, full)
		if err != nil {
			return nil, err
		}
		res.FragmentErrs = append(res.FragmentErrs, relErr)
	}
	n := 0
	for i := 0; i < len(res.FragmentModels); i++ {
		for j := i + 1; j < len(res.FragmentModels); j++ {
			d, err := mining.CoefficientDistance(res.FragmentModels[i], res.FragmentModels[j])
			if err != nil {
				return nil, err
			}
			res.PairwiseDist += d
			n++
		}
	}
	if n > 0 {
		res.PairwiseDist /= float64(n)
	}
	return res, nil
}

// FormatTable4 renders the experiment like the paper's narrative.
func FormatTable4(r *Table4Result) string {
	var b strings.Builder
	b.WriteString("Table IV — Hercules bidding history (12 rows)\n")
	fmt.Fprintf(&b, "%-5s %-8s %9s %10s %11s %9s\n", "Year", "Company", "Materials", "Production", "Maintenance", "Bid")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-5d %-8s %9.0f %10.0f %11.0f %9.0f\n",
			row.Year, row.Company, row.Materials, row.Production, row.Maintenance, row.Bid)
	}
	fmt.Fprintf(&b, "\nFull data (single provider, paper: (1.4*M + 1.5*P + 3.1*Mn) + 5436):\n  %v\n", r.FullModel)
	b.WriteString("\nPer-fragment fits (paper: three mutually misleading equations):\n")
	for i, m := range r.FragmentModels {
		fmt.Fprintf(&b, "  provider %d: %v   (rel. error vs full fit: %.2f)\n", i+1, m, r.FragmentErrs[i])
	}
	fmt.Fprintf(&b, "\nMean pairwise distance between fragment models: %.0f\n", r.PairwiseDist)
	return b.String()
}

// Table4SystemResult runs the same attack through the real system: a
// synthetic bidding history is uploaded to a 3-provider fleet via the
// distributor, and each provider's insider fits a model on its fragments.
type Table4SystemResult struct {
	RowsUploaded int
	Full         attack.BiddingResult
	PerProvider  map[string]attack.BiddingResult
	// TruthErrFull / worst-case fragment error vs the planted model.
	TruthErrFull    float64
	TruthErrFragMin float64
	TruthErrFragMax float64
}

// Table4System distributes n synthetic bidding rows over three providers
// and runs both the single-provider and per-insider attacks.
func Table4System(n int, seed int64) (*Table4SystemResult, error) {
	model := dataset.PaperBiddingModel()
	recs := dataset.GenerateBiddingHistory(n, model, rand.New(rand.NewSource(seed)))
	csvData := dataset.BiddingCSV(recs)
	truth := &mining.RegressionModel{Coeffs: []float64{model.A, model.B, model.C}, Intercept: model.D}

	// Single-provider baseline.
	soloFleet, err := provider.NewFleet(provider.MustNew(provider.Info{Name: "Titans", PL: privacy.High, CL: 3}, provider.Options{}))
	if err != nil {
		return nil, err
	}
	solo, err := core.New(core.Config{Fleet: soloFleet, StripeWidth: 1})
	if err != nil {
		return nil, err
	}
	if err := seedAndUpload(solo, "hercules", "bids.csv", csvData, privacy.Public, core.UploadOptions{NoParity: true}); err != nil {
		return nil, err
	}
	soloBlobs, err := attack.DumpProviders(soloFleet, []int{0})
	if err != nil {
		return nil, err
	}

	// Distributed: three equally reputable providers, paper-style.
	triFleet, err := provider.NewFleet(
		provider.MustNew(provider.Info{Name: "Titans", PL: privacy.High, CL: 1}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "Spartans", PL: privacy.High, CL: 1}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "Yagamis", PL: privacy.High, CL: 1}, provider.Options{}),
	)
	if err != nil {
		return nil, err
	}
	policy := privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
		privacy.Public: 2 << 10, privacy.Low: 1 << 10, privacy.Moderate: 512, privacy.High: 512,
	}}
	tri, err := core.New(core.Config{Fleet: triFleet, ChunkPolicy: policy, StripeWidth: 3})
	if err != nil {
		return nil, err
	}
	if err := seedAndUpload(tri, "hercules", "bids.csv", csvData, privacy.Moderate, core.UploadOptions{NoParity: true}); err != nil {
		return nil, err
	}
	triBlobs, err := attack.DumpProviders(triFleet, []int{0, 1, 2})
	if err != nil {
		return nil, err
	}

	res := &Table4SystemResult{
		RowsUploaded: n,
		Full:         attack.BiddingRegressionAttack(soloBlobs),
		PerProvider:  attack.PerProviderBiddingModels(triBlobs),
	}
	if res.Full.Model != nil {
		res.TruthErrFull, _ = mining.RelativeCoefficientError(res.Full.Model, truth)
	}
	first := true
	for _, r := range res.PerProvider {
		if r.Model == nil {
			continue
		}
		e, _ := mining.RelativeCoefficientError(r.Model, truth)
		if first {
			res.TruthErrFragMin, res.TruthErrFragMax = e, e
			first = false
			continue
		}
		if e < res.TruthErrFragMin {
			res.TruthErrFragMin = e
		}
		if e > res.TruthErrFragMax {
			res.TruthErrFragMax = e
		}
	}
	return res, nil
}

func seedAndUpload(d *core.Distributor, client, filename string, data []byte, pl privacy.Level, opts core.UploadOptions) error {
	if err := d.RegisterClient(client); err != nil {
		return err
	}
	if err := d.AddPassword(client, "pw", privacy.High); err != nil {
		return err
	}
	_, err := d.Upload(client, "pw", filename, data, pl, opts)
	return err
}
