// Package dataset synthesizes the workloads the paper's evaluation uses:
// Hercules-style tender-bidding histories (Table IV), GPS traces of mobile
// users (Figs. 4–6; a synthetic substitute for the paper's private data of
// 30 Dhaka users), market-basket transactions for association-rule attacks,
// and generic tabular records for storage workloads.
package dataset

import (
	"encoding/csv"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// BidRecord is one row of the Hercules bidding history (paper Table IV).
type BidRecord struct {
	Year        int
	Company     string
	Materials   float64
	Production  float64
	Maintenance float64
	Bid         float64
}

// BiddingModel is the planted linear pricing rule the malicious employee
// (Hera) tries to recover: Bid = A·Materials + B·Production +
// C·Maintenance + D (+ noise).
type BiddingModel struct {
	A, B, C, D float64
	// Noise is the standard deviation of zero-mean Gaussian noise added to
	// each bid, so per-fragment regressions diverge the way Table IV shows.
	Noise float64
}

// PaperBiddingModel is the rule the paper's full-data attack recovers:
// Bid ≈ 1.4·Materials + 1.5·Production + 3.1·Maintenance + 5436.
func PaperBiddingModel() BiddingModel {
	return BiddingModel{A: 1.4, B: 1.5, C: 3.1, D: 5436, Noise: 120}
}

// PaperTable4 returns the exact 12-row bidding history printed in the
// paper's Table IV.
func PaperTable4() []BidRecord {
	return []BidRecord{
		{2001, "Greece", 1300, 600, 3200, 18111},
		{2002, "Rome", 1400, 600, 3300, 18627},
		{2002, "Greece", 1900, 800, 3200, 19337},
		{2004, "Rome", 1700, 900, 3500, 20078},
		{2005, "Greece", 1700, 700, 3100, 18383},
		{2006, "Rome", 1800, 800, 3300, 19600},
		{2009, "Greece", 1500, 1000, 3600, 20320},
		{2010, "Rome", 1700, 900, 3700, 20667},
		{2010, "Greece", 1800, 700, 3500, 19937},
		{2011, "Rome", 2100, 800, 3700, 21135},
		{2011, "Greece", 1900, 1100, 3600, 20945},
		{2011, "Rome", 2000, 1000, 3700, 21199},
	}
}

// GenerateBiddingHistory synthesizes n bidding rows from the model so the
// benchmarks can sweep dataset sizes far past the paper's 12 rows.
func GenerateBiddingHistory(n int, model BiddingModel, rng *rand.Rand) []BidRecord {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	companies := []string{"Greece", "Rome"}
	recs := make([]BidRecord, n)
	year := 2001
	for i := 0; i < n; i++ {
		mat := 1300 + float64(rng.Intn(9))*100
		prod := 600 + float64(rng.Intn(6))*100
		mnt := 3100 + float64(rng.Intn(7))*100
		bid := model.A*mat + model.B*prod + model.C*mnt + model.D + rng.NormFloat64()*model.Noise
		recs[i] = BidRecord{
			Year:        year,
			Company:     companies[rng.Intn(len(companies))],
			Materials:   mat,
			Production:  prod,
			Maintenance: mnt,
			Bid:         bid,
		}
		if rng.Float64() < 0.6 {
			year++
		}
	}
	return recs
}

// Features converts records into the regression design set (X, y).
func Features(recs []BidRecord) (x [][]float64, y []float64) {
	x = make([][]float64, len(recs))
	y = make([]float64, len(recs))
	for i, r := range recs {
		x[i] = []float64{r.Materials, r.Production, r.Maintenance}
		y[i] = r.Bid
	}
	return x, y
}

// BiddingCSV serializes records to CSV — the file format clients upload to
// the distributor in the benchmarks.
func BiddingCSV(recs []BidRecord) []byte {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{"year", "company", "materials", "production", "maintenance", "bid"})
	for _, r := range recs {
		_ = w.Write([]string{
			strconv.Itoa(r.Year), r.Company,
			fmt.Sprintf("%.0f", r.Materials),
			fmt.Sprintf("%.0f", r.Production),
			fmt.Sprintf("%.0f", r.Maintenance),
			fmt.Sprintf("%.2f", r.Bid),
		})
	}
	w.Flush()
	return []byte(b.String())
}

// ParseBiddingCSV is the inverse of BiddingCSV. Rows that fail to parse
// (e.g. misleading decoy bytes an attacker failed to strip) are skipped and
// counted — this models an attacker mining a corrupted fragment.
func ParseBiddingCSV(data []byte) (recs []BidRecord, skipped int, err error) {
	r := csv.NewReader(strings.NewReader(string(data)))
	r.FieldsPerRecord = -1
	rows, err := r.ReadAll()
	if err != nil {
		// CSV-level corruption: salvage line by line.
		return parseBiddingLoose(string(data))
	}
	for i, row := range rows {
		if i == 0 && len(row) > 0 && row[0] == "year" {
			continue
		}
		rec, ok := parseBidRow(row)
		if !ok {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, skipped, nil
}

func parseBiddingLoose(data string) (recs []BidRecord, skipped int, err error) {
	for _, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "year,") {
			continue
		}
		rec, ok := parseBidRow(strings.Split(line, ","))
		if !ok {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, skipped, nil
}

func parseBidRow(row []string) (BidRecord, bool) {
	if len(row) != 6 {
		return BidRecord{}, false
	}
	year, err1 := strconv.Atoi(strings.TrimSpace(row[0]))
	mat, err2 := strconv.ParseFloat(strings.TrimSpace(row[2]), 64)
	prod, err3 := strconv.ParseFloat(strings.TrimSpace(row[3]), 64)
	mnt, err4 := strconv.ParseFloat(strings.TrimSpace(row[4]), 64)
	bid, err5 := strconv.ParseFloat(strings.TrimSpace(row[5]), 64)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
		return BidRecord{}, false
	}
	return BidRecord{Year: year, Company: row[1], Materials: mat, Production: prod, Maintenance: mnt, Bid: bid}, true
}
