package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/mining"
)

// BasketConfig parameterizes market-basket synthesis for the
// association-rule attack the paper names ("association rule mining can be
// used to discover association relationships among large number of
// business transaction records").
type BasketConfig struct {
	Transactions int
	// Catalog is the number of distinct items.
	Catalog int
	// PlantedRules are item pairs (a, b) where buying a implies buying b
	// with high probability — the private associations an attacker hunts.
	PlantedRules [][2]int
	// PlantProb is the probability the consequent joins the basket when
	// the antecedent is present.
	PlantProb float64
	// BaseProb is the independent inclusion probability of any item.
	BaseProb float64
	Seed     int64
}

// DefaultBasketConfig plants two strong associations in a 20-item catalog.
func DefaultBasketConfig() BasketConfig {
	return BasketConfig{
		Transactions: 2000,
		Catalog:      20,
		PlantedRules: [][2]int{{0, 1}, {5, 9}},
		PlantProb:    0.9,
		BaseProb:     0.12,
		Seed:         7,
	}
}

// GenerateBaskets synthesizes transactions with the planted associations.
func GenerateBaskets(cfg BasketConfig) ([]mining.Transaction, error) {
	if cfg.Transactions < 1 || cfg.Catalog < 2 {
		return nil, fmt.Errorf("dataset: need >=1 transactions and >=2 items, got %d, %d", cfg.Transactions, cfg.Catalog)
	}
	for _, r := range cfg.PlantedRules {
		if r[0] < 0 || r[0] >= cfg.Catalog || r[1] < 0 || r[1] >= cfg.Catalog {
			return nil, fmt.Errorf("dataset: planted rule %v outside catalog of %d", r, cfg.Catalog)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	txns := make([]mining.Transaction, cfg.Transactions)
	for i := range txns {
		present := make([]bool, cfg.Catalog)
		for it := 0; it < cfg.Catalog; it++ {
			if rng.Float64() < cfg.BaseProb {
				present[it] = true
			}
		}
		for _, r := range cfg.PlantedRules {
			if present[r[0]] && rng.Float64() < cfg.PlantProb {
				present[r[1]] = true
			}
		}
		var t mining.Transaction
		for it, p := range present {
			if p {
				t = append(t, itemName(it))
			}
		}
		if len(t) == 0 {
			t = mining.Transaction{itemName(rng.Intn(cfg.Catalog))}
		}
		txns[i] = t
	}
	return txns, nil
}

func itemName(i int) string { return fmt.Sprintf("item%02d", i) }

// PlantedRuleNames converts the config's planted index pairs into the item
// names Apriori reports, for checking rule recovery.
func (cfg BasketConfig) PlantedRuleNames() [][2]string {
	out := make([][2]string, len(cfg.PlantedRules))
	for i, r := range cfg.PlantedRules {
		out[i] = [2]string{itemName(r[0]), itemName(r[1])}
	}
	return out
}
