package dataset

import (
	"bytes"
	"fmt"
	"math/rand"
)

// RandomBytes returns n pseudo-random bytes — generic storage payloads for
// distribution-time and throughput benchmarks.
func RandomBytes(n int, rng *rand.Rand) []byte {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// TextRecords returns n lines of structured key=value text, a compressible
// realistic file body (e.g. application logs a client archives to cloud).
func TextRecords(n int, rng *rand.Rand) []byte {
	if rng == nil {
		rng = rand.New(rand.NewSource(2))
	}
	var buf bytes.Buffer
	events := []string{"login", "purchase", "view", "logout", "refund"}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "seq=%d user=u%04d event=%s amount=%.2f region=r%d\n",
			i, rng.Intn(500), events[rng.Intn(len(events))], rng.Float64()*900, rng.Intn(8))
	}
	return buf.Bytes()
}
