package dataset

import (
	"encoding/csv"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// GPSPoint is one location observation of one user.
type GPSPoint struct {
	User int     // 0-based user index
	T    int     // observation sequence number
	Lat  float64 // degrees
	Lon  float64 // degrees
}

// GPSProfile describes one synthetic user: a set of anchor points
// (home/work/leisure) with visit probabilities. Users in the same
// behavioural group share anchors, so clustering the full data recovers
// the groups — the structure Figs. 4–6 probe.
type GPSProfile struct {
	User    int
	Group   int
	Anchors [][2]float64 // (lat, lon) anchor coordinates
	Weights []float64    // visit probability per anchor (sums to 1)
}

// GPSConfig parameterizes trace synthesis.
type GPSConfig struct {
	Users       int     // number of users (paper: 30)
	Groups      int     // number of behavioural groups
	ObsPerUser  int     // observations per user (paper: >3000 total → >100 each)
	AnchorNoise float64 // Gaussian jitter around anchors, in degrees
	Seed        int64
}

// DefaultGPSConfig mirrors the paper's setup: 30 users of a location-based
// service, >3000 total observations.
func DefaultGPSConfig() GPSConfig {
	return GPSConfig{Users: 30, Groups: 5, ObsPerUser: 110, AnchorNoise: 0.004, Seed: 2012}
}

// dhakaCenter approximates the paper's data-collection city.
var dhakaCenter = [2]float64{23.78, 90.40}

// GenerateGPS synthesizes profiles and traces. Each group gets its own
// anchor constellation; each user perturbs the group anchors slightly, so
// within-group users are mutually closer than across groups.
func GenerateGPS(cfg GPSConfig) ([]GPSProfile, []GPSPoint, error) {
	if cfg.Users < 1 {
		return nil, nil, fmt.Errorf("dataset: Users=%d must be >= 1", cfg.Users)
	}
	if cfg.Groups < 1 || cfg.Groups > cfg.Users {
		return nil, nil, fmt.Errorf("dataset: Groups=%d out of [1,%d]", cfg.Groups, cfg.Users)
	}
	if cfg.ObsPerUser < 1 {
		return nil, nil, fmt.Errorf("dataset: ObsPerUser=%d must be >= 1", cfg.ObsPerUser)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// One anchor constellation per group, spread around the city.
	groupAnchors := make([][][2]float64, cfg.Groups)
	for g := range groupAnchors {
		anchors := make([][2]float64, 3) // home, work, leisure
		for a := range anchors {
			anchors[a] = [2]float64{
				dhakaCenter[0] + rng.NormFloat64()*0.05 + float64(g)*0.02,
				dhakaCenter[1] + rng.NormFloat64()*0.05 - float64(g)*0.02,
			}
		}
		groupAnchors[g] = anchors
	}

	profiles := make([]GPSProfile, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		g := u % cfg.Groups
		anchors := make([][2]float64, len(groupAnchors[g]))
		for a, base := range groupAnchors[g] {
			anchors[a] = [2]float64{
				base[0] + rng.NormFloat64()*0.002,
				base[1] + rng.NormFloat64()*0.002,
			}
		}
		weights := []float64{0.5, 0.35, 0.15} // home-heavy routine
		profiles[u] = GPSProfile{User: u, Group: g, Anchors: anchors, Weights: weights}
	}
	// Emit observations in time-major order, the way a location-based
	// service logs them: consecutive slices of the stream then contain
	// a few observations of every user, matching the paper's fragment
	// dendrograms (all 30 users appear with far fewer samples each).
	var points []GPSPoint
	for t := 0; t < cfg.ObsPerUser; t++ {
		for u := 0; u < cfg.Users; u++ {
			p := profiles[u]
			a := sampleIndex(p.Weights, rng)
			points = append(points, GPSPoint{
				User: u,
				T:    t,
				Lat:  p.Anchors[a][0] + rng.NormFloat64()*cfg.AnchorNoise,
				Lon:  p.Anchors[a][1] + rng.NormFloat64()*cfg.AnchorNoise,
			})
		}
	}
	return profiles, points, nil
}

func sampleIndex(weights []float64, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}

// UserFeatureVectors reduces a set of observations to one feature vector
// per user — the per-user summary statistics (mean and spread of location)
// the clustering attack runs on. Users with no observations in the slice
// are omitted; the returned userIDs parallel the vectors.
func UserFeatureVectors(points []GPSPoint) (vectors [][]float64, userIDs []int) {
	type agg struct {
		n                int
		sumLat, sumLon   float64
		sumLat2, sumLon2 float64
	}
	byUser := map[int]*agg{}
	for _, p := range points {
		a := byUser[p.User]
		if a == nil {
			a = &agg{}
			byUser[p.User] = a
		}
		a.n++
		a.sumLat += p.Lat
		a.sumLon += p.Lon
		a.sumLat2 += p.Lat * p.Lat
		a.sumLon2 += p.Lon * p.Lon
	}
	// Deterministic ascending user order.
	maxUser := -1
	for u := range byUser {
		if u > maxUser {
			maxUser = u
		}
	}
	for u := 0; u <= maxUser; u++ {
		a, ok := byUser[u]
		if !ok {
			continue
		}
		n := float64(a.n)
		meanLat, meanLon := a.sumLat/n, a.sumLon/n
		varLat := a.sumLat2/n - meanLat*meanLat
		varLon := a.sumLon2/n - meanLon*meanLon
		if varLat < 0 {
			varLat = 0
		}
		if varLon < 0 {
			varLon = 0
		}
		vectors = append(vectors, []float64{meanLat, meanLon, varLat * 1000, varLon * 1000})
		userIDs = append(userIDs, u)
	}
	return vectors, userIDs
}

// GPSCSV serializes observations to the CSV file a client would upload.
func GPSCSV(points []GPSPoint) []byte {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{"user", "t", "lat", "lon"})
	for _, p := range points {
		_ = w.Write([]string{
			strconv.Itoa(p.User), strconv.Itoa(p.T),
			strconv.FormatFloat(p.Lat, 'f', 6, 64),
			strconv.FormatFloat(p.Lon, 'f', 6, 64),
		})
	}
	w.Flush()
	return []byte(b.String())
}

// ParseGPSCSV is the inverse of GPSCSV; unparseable rows are skipped and
// counted, modelling mining over corrupted fragments.
func ParseGPSCSV(data []byte) (points []GPSPoint, skipped int) {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "user,") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 4 {
			skipped++
			continue
		}
		user, e1 := strconv.Atoi(f[0])
		t, e2 := strconv.Atoi(f[1])
		lat, e3 := strconv.ParseFloat(f[2], 64)
		lon, e4 := strconv.ParseFloat(f[3], 64)
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
			skipped++
			continue
		}
		points = append(points, GPSPoint{User: user, T: t, Lat: lat, Lon: lon})
	}
	return points, skipped
}
