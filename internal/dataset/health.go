package dataset

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// HealthRecord is one row of a synthetic patient dataset — the paper's
// motivating example of mining risk ("the likelihood of an individual
// getting a terminal illness"). Features are routine vitals; Risk is the
// protected outcome a prediction attack tries to learn.
type HealthRecord struct {
	Patient  int
	Age      float64
	BMI      float64
	BloodSys float64
	Glucose  float64
	Risk     string // "low" or "high"
}

// HealthConfig parameterizes patient-record synthesis.
type HealthConfig struct {
	Patients int
	// HighRiskFraction of patients carry the high-risk profile.
	HighRiskFraction float64
	Seed             int64
}

// DefaultHealthConfig yields a balanced, clearly separable cohort.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{Patients: 600, HighRiskFraction: 0.4, Seed: 11}
}

// GenerateHealthRecords synthesizes the cohort: high-risk patients have
// systematically shifted vitals (the learnable signal).
func GenerateHealthRecords(cfg HealthConfig) ([]HealthRecord, error) {
	if cfg.Patients < 2 {
		return nil, fmt.Errorf("dataset: Patients=%d", cfg.Patients)
	}
	if cfg.HighRiskFraction <= 0 || cfg.HighRiskFraction >= 1 {
		return nil, fmt.Errorf("dataset: HighRiskFraction=%v outside (0,1)", cfg.HighRiskFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	recs := make([]HealthRecord, cfg.Patients)
	for i := range recs {
		high := rng.Float64() < cfg.HighRiskFraction
		r := HealthRecord{Patient: i, Risk: "low"}
		// The class-conditional distributions overlap substantially, so
		// prediction quality depends on training-set size — the lever
		// fragmentation pulls.
		if high {
			r.Risk = "high"
			r.Age = 52 + rng.NormFloat64()*13
			r.BMI = 28 + rng.NormFloat64()*4.5
			r.BloodSys = 136 + rng.NormFloat64()*16
			r.Glucose = 112 + rng.NormFloat64()*20
		} else {
			r.Age = 44 + rng.NormFloat64()*13
			r.BMI = 25.5 + rng.NormFloat64()*4.5
			r.BloodSys = 124 + rng.NormFloat64()*16
			r.Glucose = 98 + rng.NormFloat64()*20
		}
		recs[i] = r
	}
	return recs, nil
}

// HealthFeatures converts records into a feature matrix and label slice
// for the prediction attack.
func HealthFeatures(recs []HealthRecord) (x [][]float64, y []string) {
	x = make([][]float64, len(recs))
	y = make([]string, len(recs))
	for i, r := range recs {
		x[i] = []float64{r.Age, r.BMI, r.BloodSys, r.Glucose}
		y[i] = r.Risk
	}
	return x, y
}

// HealthCSV serializes records to the uploadable CSV form.
func HealthCSV(recs []HealthRecord) []byte {
	var b strings.Builder
	b.WriteString("patient,age,bmi,bloodsys,glucose,risk\n")
	for _, r := range recs {
		fmt.Fprintf(&b, "%d,%.2f,%.2f,%.2f,%.2f,%s\n",
			r.Patient, r.Age, r.BMI, r.BloodSys, r.Glucose, r.Risk)
	}
	return []byte(b.String())
}

// ParseHealthCSV is the inverse of HealthCSV; unparseable rows (chunk
// boundary cuts, decoys) are skipped and counted.
func ParseHealthCSV(data []byte) (recs []HealthRecord, skipped int) {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "patient,") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 6 {
			skipped++
			continue
		}
		patient, e1 := strconv.Atoi(f[0])
		age, e2 := strconv.ParseFloat(f[1], 64)
		bmi, e3 := strconv.ParseFloat(f[2], 64)
		sys, e4 := strconv.ParseFloat(f[3], 64)
		glu, e5 := strconv.ParseFloat(f[4], 64)
		risk := f[5]
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil || e5 != nil || (risk != "low" && risk != "high") {
			skipped++
			continue
		}
		recs = append(recs, HealthRecord{Patient: patient, Age: age, BMI: bmi, BloodSys: sys, Glucose: glu, Risk: risk})
	}
	return recs, skipped
}
