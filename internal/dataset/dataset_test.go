package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mining"
)

func TestPaperTable4MatchesPaper(t *testing.T) {
	recs := PaperTable4()
	if len(recs) != 12 {
		t.Fatalf("rows = %d, want 12", len(recs))
	}
	first := recs[0]
	if first.Year != 2001 || first.Company != "Greece" || first.Bid != 18111 {
		t.Fatalf("first row = %+v", first)
	}
	last := recs[11]
	if last.Year != 2011 || last.Company != "Rome" || last.Bid != 21199 {
		t.Fatalf("last row = %+v", last)
	}
}

func TestPaperTable4RegressionIsNearPaperEquation(t *testing.T) {
	// The paper reports the full-data fit ≈ 1.4·M + 1.5·P + 3.1·Mn + 5436.
	x, y := Features(PaperTable4())
	m, err := mining.LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.4, 1.5, 3.1}
	for i := range want {
		if math.Abs(m.Coeffs[i]-want[i]) > 0.35 {
			t.Fatalf("coeff[%d] = %v, paper reports %v", i, m.Coeffs[i], want[i])
		}
	}
	if math.Abs(m.Intercept-5436) > 800 {
		t.Fatalf("intercept = %v, paper reports 5436", m.Intercept)
	}
}

func TestGenerateBiddingHistory(t *testing.T) {
	model := PaperBiddingModel()
	recs := GenerateBiddingHistory(200, model, rand.New(rand.NewSource(3)))
	if len(recs) != 200 {
		t.Fatalf("rows = %d", len(recs))
	}
	// Full-data regression must recover the planted coefficients closely.
	x, y := Features(recs)
	m, err := mining.LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coeffs[0]-model.A) > 0.2 || math.Abs(m.Coeffs[1]-model.B) > 0.2 || math.Abs(m.Coeffs[2]-model.C) > 0.2 {
		t.Fatalf("coeffs = %v, want ~(%v,%v,%v)", m.Coeffs, model.A, model.B, model.C)
	}
	for _, r := range recs {
		if r.Year < 2001 || r.Materials < 1300 || r.Materials > 2100 {
			t.Fatalf("out-of-range record %+v", r)
		}
	}
}

func TestBiddingCSVRoundTrip(t *testing.T) {
	recs := PaperTable4()
	data := BiddingCSV(recs)
	got, skipped, err := ParseBiddingCSV(data)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped = %d", skipped)
	}
	if len(got) != len(recs) {
		t.Fatalf("rows = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Year != recs[i].Year || got[i].Company != recs[i].Company ||
			got[i].Materials != recs[i].Materials || math.Abs(got[i].Bid-recs[i].Bid) > 0.01 {
			t.Fatalf("row %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestParseBiddingCSVCorrupted(t *testing.T) {
	data := []byte("year,company,materials,production,maintenance,bid\n2001,Greece,1300,600,3200,18111\nGARBAGE LINE\n2002,Rome,bad,600,3300,18627\n")
	recs, skipped, err := ParseBiddingCSV(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || skipped != 2 {
		t.Fatalf("recs=%d skipped=%d, want 1, 2", len(recs), skipped)
	}
}

func TestGenerateGPSValidation(t *testing.T) {
	if _, _, err := GenerateGPS(GPSConfig{Users: 0, Groups: 1, ObsPerUser: 1}); err == nil {
		t.Fatal("Users=0 should error")
	}
	if _, _, err := GenerateGPS(GPSConfig{Users: 2, Groups: 3, ObsPerUser: 1}); err == nil {
		t.Fatal("Groups>Users should error")
	}
	if _, _, err := GenerateGPS(GPSConfig{Users: 2, Groups: 1, ObsPerUser: 0}); err == nil {
		t.Fatal("ObsPerUser=0 should error")
	}
}

func TestGenerateGPSShape(t *testing.T) {
	cfg := DefaultGPSConfig()
	profiles, points, err := GenerateGPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 30 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	if len(points) != 30*cfg.ObsPerUser {
		t.Fatalf("points = %d, want %d", len(points), 30*cfg.ObsPerUser)
	}
	if len(points) <= 3000 {
		t.Fatalf("paper requires >3000 observations, got %d", len(points))
	}
	for _, p := range profiles {
		if p.Group != p.User%cfg.Groups {
			t.Fatalf("profile %d group = %d", p.User, p.Group)
		}
		if len(p.Anchors) != 3 || len(p.Weights) != 3 {
			t.Fatalf("profile %d anchors/weights wrong", p.User)
		}
	}
}

func TestGenerateGPSDeterministic(t *testing.T) {
	cfg := DefaultGPSConfig()
	_, p1, _ := GenerateGPS(cfg)
	_, p2, _ := GenerateGPS(cfg)
	if len(p1) != len(p2) {
		t.Fatal("nondeterministic length")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed gave different traces")
		}
	}
}

func TestUserFeatureVectors(t *testing.T) {
	cfg := DefaultGPSConfig()
	_, points, _ := GenerateGPS(cfg)
	vecs, ids := UserFeatureVectors(points)
	if len(vecs) != 30 || len(ids) != 30 {
		t.Fatalf("vectors = %d, ids = %d", len(vecs), len(ids))
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("ids not ascending contiguous: %v", ids)
		}
	}
	for _, v := range vecs {
		if len(v) != 4 {
			t.Fatalf("feature dim = %d", len(v))
		}
		// Mean lat/lon must be near Dhaka.
		if v[0] < 23 || v[0] > 25 || v[1] < 89 || v[1] > 92 {
			t.Fatalf("feature out of city bounds: %v", v)
		}
	}
}

func TestUserFeatureVectorsSubset(t *testing.T) {
	pts := []GPSPoint{
		{User: 3, Lat: 1, Lon: 2},
		{User: 3, Lat: 1, Lon: 2},
		{User: 7, Lat: 5, Lon: 6},
	}
	vecs, ids := UserFeatureVectors(pts)
	if len(vecs) != 2 || ids[0] != 3 || ids[1] != 7 {
		t.Fatalf("vecs=%d ids=%v", len(vecs), ids)
	}
	if vecs[0][0] != 1 || vecs[0][1] != 2 || vecs[0][2] != 0 {
		t.Fatalf("mean/var wrong: %v", vecs[0])
	}
}

func TestGPSCSVRoundTrip(t *testing.T) {
	_, points, _ := GenerateGPS(GPSConfig{Users: 3, Groups: 2, ObsPerUser: 5, AnchorNoise: 0.01, Seed: 5})
	data := GPSCSV(points)
	got, skipped := ParseGPSCSV(data)
	if skipped != 0 {
		t.Fatalf("skipped = %d", skipped)
	}
	if len(got) != len(points) {
		t.Fatalf("points = %d, want %d", len(got), len(points))
	}
	for i := range points {
		if got[i].User != points[i].User || math.Abs(got[i].Lat-points[i].Lat) > 1e-5 {
			t.Fatalf("point %d mismatch", i)
		}
	}
}

func TestParseGPSCSVCorrupted(t *testing.T) {
	data := []byte("user,t,lat,lon\n0,0,23.7,90.4\nnoise###\n1,bad,23.8,90.3\n")
	pts, skipped := ParseGPSCSV(data)
	if len(pts) != 1 || skipped != 2 {
		t.Fatalf("pts=%d skipped=%d", len(pts), skipped)
	}
}

func TestGroupStructureVisibleInFullData(t *testing.T) {
	// Users of the same group must be mutually closer (in feature space)
	// than users of different groups, so clustering the full data works.
	cfg := DefaultGPSConfig()
	profiles, points, _ := GenerateGPS(cfg)
	vecs, ids := UserFeatureVectors(points)
	sameSum, sameN, diffSum, diffN := 0.0, 0, 0.0, 0
	for i := range vecs {
		for j := i + 1; j < len(vecs); j++ {
			d := 0.0
			for k := range vecs[i] {
				dv := vecs[i][k] - vecs[j][k]
				d += dv * dv
			}
			d = math.Sqrt(d)
			if profiles[ids[i]].Group == profiles[ids[j]].Group {
				sameSum += d
				sameN++
			} else {
				diffSum += d
				diffN++
			}
		}
	}
	if sameSum/float64(sameN) >= diffSum/float64(diffN) {
		t.Fatalf("within-group distance %v >= across-group %v", sameSum/float64(sameN), diffSum/float64(diffN))
	}
}

func TestGenerateBaskets(t *testing.T) {
	cfg := DefaultBasketConfig()
	cfg.Transactions = 500
	txns, err := GenerateBaskets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 500 {
		t.Fatalf("txns = %d", len(txns))
	}
	// The planted rule item00 → item01 must be recoverable by Apriori.
	_, rules, err := mining.Apriori(txns, 0.05, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	names := cfg.PlantedRuleNames()
	found := false
	for _, r := range rules {
		if len(r.Antecedent) == 1 && len(r.Consequent) == 1 &&
			r.Antecedent[0] == names[0][0] && r.Consequent[0] == names[0][1] {
			found = true
		}
	}
	if !found {
		t.Fatal("planted rule not recoverable from full data")
	}
}

func TestGenerateBasketsValidation(t *testing.T) {
	if _, err := GenerateBaskets(BasketConfig{Transactions: 0, Catalog: 5}); err == nil {
		t.Fatal("0 transactions should error")
	}
	if _, err := GenerateBaskets(BasketConfig{Transactions: 5, Catalog: 1}); err == nil {
		t.Fatal("catalog of 1 should error")
	}
	if _, err := GenerateBaskets(BasketConfig{Transactions: 5, Catalog: 5, PlantedRules: [][2]int{{0, 9}}}); err == nil {
		t.Fatal("rule outside catalog should error")
	}
}

func TestRandomBytes(t *testing.T) {
	b := RandomBytes(1000, rand.New(rand.NewSource(1)))
	if len(b) != 1000 {
		t.Fatalf("len = %d", len(b))
	}
	b2 := RandomBytes(1000, rand.New(rand.NewSource(1)))
	if !bytes.Equal(b, b2) {
		t.Fatal("same seed gave different bytes")
	}
	if bytes.Equal(b, make([]byte, 1000)) {
		t.Fatal("bytes are all zero")
	}
}

func TestTextRecords(t *testing.T) {
	b := TextRecords(50, nil)
	lines := bytes.Count(b, []byte("\n"))
	if lines != 50 {
		t.Fatalf("lines = %d", lines)
	}
	if !bytes.Contains(b, []byte("seq=0 ")) {
		t.Fatal("missing first record")
	}
}

// Property: bidding CSV round-trips for arbitrary generated histories.
func TestBiddingCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		recs := GenerateBiddingHistory(n, PaperBiddingModel(), rng)
		got, skipped, err := ParseBiddingCSV(BiddingCSV(recs))
		if err != nil || skipped != 0 || len(got) != n {
			return false
		}
		for i := range recs {
			if got[i].Year != recs[i].Year || math.Abs(got[i].Bid-recs[i].Bid) > 0.01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateHealthRecords(t *testing.T) {
	cfg := DefaultHealthConfig()
	recs, err := GenerateHealthRecords(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != cfg.Patients {
		t.Fatalf("patients = %d", len(recs))
	}
	high, low := 0, 0
	for _, r := range recs {
		switch r.Risk {
		case "high":
			high++
		case "low":
			low++
		default:
			t.Fatalf("bad risk %q", r.Risk)
		}
	}
	if high == 0 || low == 0 {
		t.Fatalf("classes: high=%d low=%d", high, low)
	}
	// High-risk vitals are systematically shifted.
	var hiG, loG float64
	for _, r := range recs {
		if r.Risk == "high" {
			hiG += r.Glucose
		} else {
			loG += r.Glucose
		}
	}
	if hiG/float64(high) <= loG/float64(low) {
		t.Fatal("high-risk glucose not elevated — no learnable signal")
	}
}

func TestGenerateHealthRecordsValidation(t *testing.T) {
	if _, err := GenerateHealthRecords(HealthConfig{Patients: 1, HighRiskFraction: 0.5}); err == nil {
		t.Fatal("1 patient accepted")
	}
	if _, err := GenerateHealthRecords(HealthConfig{Patients: 10, HighRiskFraction: 0}); err == nil {
		t.Fatal("fraction 0 accepted")
	}
	if _, err := GenerateHealthRecords(HealthConfig{Patients: 10, HighRiskFraction: 1}); err == nil {
		t.Fatal("fraction 1 accepted")
	}
}

func TestHealthCSVRoundTrip(t *testing.T) {
	recs, _ := GenerateHealthRecords(HealthConfig{Patients: 30, HighRiskFraction: 0.4, Seed: 4})
	got, skipped := ParseHealthCSV(HealthCSV(recs))
	if skipped != 0 || len(got) != 30 {
		t.Fatalf("rows=%d skipped=%d", len(got), skipped)
	}
	for i := range recs {
		if got[i].Patient != recs[i].Patient || got[i].Risk != recs[i].Risk ||
			math.Abs(got[i].Glucose-recs[i].Glucose) > 0.01 {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestParseHealthCSVCorrupted(t *testing.T) {
	data := []byte("patient,age,bmi,bloodsys,glucose,risk\n1,40,24,120,90,low\nGARBAGE\n2,55,31,150,130,banana\n")
	recs, skipped := ParseHealthCSV(data)
	if len(recs) != 1 || skipped != 2 {
		t.Fatalf("rows=%d skipped=%d", len(recs), skipped)
	}
}

func TestHealthFeatures(t *testing.T) {
	recs := []HealthRecord{{Age: 40, BMI: 25, BloodSys: 120, Glucose: 90, Risk: "low"}}
	x, y := HealthFeatures(recs)
	if len(x) != 1 || len(x[0]) != 4 || y[0] != "low" {
		t.Fatalf("features: %v %v", x, y)
	}
}
