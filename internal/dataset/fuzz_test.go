package dataset

import "testing"

// FuzzParseBiddingCSV feeds arbitrary bytes to the CSV salvager: it must
// never panic (attackers parse hostile fragments all day).
func FuzzParseBiddingCSV(f *testing.F) {
	f.Add([]byte("year,company,materials,production,maintenance,bid\n2001,Greece,1,2,3,4\n"))
	f.Add([]byte("\x00\xff garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ParseBiddingCSV(data)
	})
}

// FuzzParseGPSCSV must never panic on hostile fragments.
func FuzzParseGPSCSV(f *testing.F) {
	f.Add([]byte("0,0,23.7,90.4\n"))
	f.Add([]byte(",,,,\n1,2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseGPSCSV(data)
	})
}

// FuzzParseHealthCSV must never panic on hostile fragments.
func FuzzParseHealthCSV(f *testing.F) {
	f.Add([]byte("1,40,24,120,90,low\n"))
	f.Add([]byte("patient,age\nx\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseHealthCSV(data)
	})
}
