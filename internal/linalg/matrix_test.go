package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromRowsRagged(t *testing.T) {
	_, err := FromRows([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil || m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("FromRows(nil) = %v, %v", m, err)
	}
}

func TestMustFromRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	MustFromRows([][]float64{{1}, {2, 3}})
}

func TestAtSetRowCol(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	r := m.Row(1)
	if r[2] != 7 || len(r) != 3 {
		t.Fatalf("Row(1) = %v", r)
	}
	c := m.Col(2)
	if c[1] != 7 || len(c) != 2 {
		t.Fatalf("Col(2) = %v", c)
	}
	// Row/Col must be copies.
	r[0] = 99
	c[0] = 99
	if m.At(1, 0) != 0 || m.At(0, 2) != 0 {
		t.Fatal("Row/Col returned aliased memory")
	}
}

func TestMul(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Mul =\n%v, want\n%v", got, want)
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestMulVec(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := a.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", got)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equal(MustFromRows([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(MustFromRows([][]float64{{-3, -1}, {1, 3}}), 0) {
		t.Fatalf("Sub = %v", diff)
	}
	sc := a.Scale(2)
	if !sc.Equal(MustFromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatalf("Scale = %v", sc)
	}
	// Originals untouched.
	if a.At(0, 0) != 1 {
		t.Fatal("Add/Sub/Scale mutated the receiver")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 7)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	if !a.T().T().Equal(a, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix(5, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	ia, _ := Identity(5).Mul(a)
	ai, _ := a.Mul(Identity(5))
	if !ia.Equal(a, 1e-12) || !ai.Equal(a, 1e-12) {
		t.Fatal("identity multiplication changed matrix")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}})
	c := a.Clone()
	c.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestNorm2(t *testing.T) {
	a := MustFromRows([][]float64{{3, 4}})
	if got := a.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestStringContainsValues(t *testing.T) {
	s := MustFromRows([][]float64{{1.5}}).String()
	if len(s) == 0 {
		t.Fatal("String() empty")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random small matrices.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := NewMatrix(m, k)
		b := NewMatrix(k, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		btat, err := b.T().Mul(a.T())
		if err != nil {
			return false
		}
		return ab.T().Equal(btat, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix addition commutes.
func TestAddCommutesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(5), 1+rng.Intn(5)
		a, b := NewMatrix(m, n), NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		ab, _ := a.Add(b)
		ba, _ := b.Add(a)
		return ab.Equal(ba, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
