package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRShapeError(t *testing.T) {
	if _, err := QRDecompose(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestQRExactSolve(t *testing.T) {
	// x + 2y = 5; 3x + 4y = 11  →  x = 1, y = 2
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	x, err := LeastSquares(a, []float64{5, 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("x = %v, want [1 2]", x)
	}
}

func TestQROverdeterminedRecoversPlantedModel(t *testing.T) {
	// y = 2a - 3b + 0.5 with no noise: least squares must recover exactly.
	rng := rand.New(rand.NewSource(7))
	n := 50
	a := NewMatrix(n, 3)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		av, bv := rng.NormFloat64(), rng.NormFloat64()
		a.Set(i, 0, av)
		a.Set(i, 1, bv)
		a.Set(i, 2, 1)
		b[i] = 2*av - 3*bv + 0.5
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -3, 0.5}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestQRSingular(t *testing.T) {
	// Two identical columns → rank deficient.
	a := MustFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestQRSolveLengthMismatch(t *testing.T) {
	a := MustFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	d, err := QRDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Solve([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestQRRFactorUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewMatrix(6, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	d, err := QRDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	r := d.R()
	for i := 1; i < r.Rows; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %v, want 0", i, j, r.At(i, j))
			}
		}
	}
}

func TestGaussSolveSquare(t *testing.T) {
	a := MustFromRows([][]float64{{2, 1, 1}, {1, 3, 2}, {1, 0, 0}})
	x, err := SolveSquare(a, []float64{7, 13, 1}) // solution (1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveSquareErrors(t *testing.T) {
	if _, err := SolveSquare(NewMatrix(2, 3), []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("non-square: err = %v, want ErrShape", err)
	}
	if _, err := SolveSquare(NewMatrix(2, 2), []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("bad b: err = %v, want ErrShape", err)
	}
	sing := MustFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveSquare(sing, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular: err = %v, want ErrSingular", err)
	}
}

// Property: for random well-conditioned square systems, Gauss and QR agree.
func TestGaussVsQRProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance keeps the system well-conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)*2)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xg, err1 := SolveSquare(a, b)
		xq, err2 := LeastSquares(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range xg {
			if math.Abs(xg[i]-xq[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: least-squares residual is orthogonal to the column space
// (Aᵀ(Ax − b) ≈ 0).
func TestLeastSquaresNormalEquationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 8 + rng.Intn(8)
		n := 2 + rng.Intn(4)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return errors.Is(err, ErrSingular) // acceptable for random degenerate draws
		}
		ax, _ := a.MulVec(x)
		res := make([]float64, m)
		for i := range res {
			res[i] = ax[i] - b[i]
		}
		atr, _ := a.T().MulVec(res)
		for _, v := range atr {
			if math.Abs(v) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
