// Package linalg provides small dense-matrix linear algebra used by the
// data-mining toolkit: matrix arithmetic, QR decomposition and
// least-squares solves. It is deliberately minimal — just enough, written
// against the standard library only, to support multivariate regression
// and clustering distance computations.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible matrix shapes")

// ErrSingular is returned when a solve encounters a (numerically) singular system.
var ErrSingular = errors.New("linalg: singular matrix")

// NewMatrix allocates a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// MustFromRows is FromRows that panics on ragged input; for literals in tests.
func MustFromRows(rows [][]float64) *Matrix {
	m, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m × other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("%w: (%dx%d)×(%dx%d)", ErrShape, m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mv := range mi {
			if mv == 0 {
				continue
			}
			ok := other.Data[k*other.Cols : (k+1)*other.Cols]
			for j, ov := range ok {
				oi[j] += mv * ov
			}
		}
	}
	return out, nil
}

// MulVec returns m × v for a column vector v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("%w: (%dx%d)×vec(%d)", ErrShape, m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m + other.
func (m *Matrix) Add(other *Matrix) (*Matrix, error) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return nil, ErrShape
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += other.Data[i]
	}
	return out, nil
}

// Sub returns m - other.
func (m *Matrix) Sub(other *Matrix) (*Matrix, error) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return nil, ErrShape
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= other.Data[i]
	}
	return out, nil
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Equal reports whether two matrices agree elementwise within tol.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
