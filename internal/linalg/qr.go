package linalg

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q·R with A m×n, m ≥ n.
// Q is m×m orthogonal (stored implicitly via reflectors), R is m×n upper
// triangular. It supports least-squares solves min ‖Ax - b‖₂.
type QR struct {
	m, n int
	// qr holds R in its upper triangle and the Householder vectors below
	// the diagonal (in the LAPACK compact style).
	qr    *Matrix
	rdiag []float64
}

// QRDecompose factors a (copied) matrix. It requires Rows >= Cols.
func QRDecompose(a *Matrix) (*QR, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("%w: QR requires rows(%d) >= cols(%d)", ErrShape, a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdiag := make([]float64, n)

	for k := 0; k < n; k++ {
		// Compute the 2-norm of column k below the diagonal.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Set(k, k, qr.At(k, k)+1)
			// Apply the reflector to remaining columns.
			for j := k + 1; j < n; j++ {
				s := 0.0
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
				}
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{m: m, n: n, qr: qr, rdiag: rdiag}, nil
}

// FullRank reports whether R has no (numerically) zero diagonal entries.
func (d *QR) FullRank() bool {
	for _, v := range d.rdiag {
		if math.Abs(v) < 1e-12 {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x of A·x ≈ b.
func (d *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != d.m {
		return nil, fmt.Errorf("%w: len(b)=%d, want %d", ErrShape, len(b), d.m)
	}
	if !d.FullRank() {
		return nil, ErrSingular
	}
	y := make([]float64, d.m)
	copy(y, b)

	// Apply Qᵀ to b.
	for k := 0; k < d.n; k++ {
		s := 0.0
		for i := k; i < d.m; i++ {
			s += d.qr.At(i, k) * y[i]
		}
		s = -s / d.qr.At(k, k)
		for i := k; i < d.m; i++ {
			y[i] += s * d.qr.At(i, k)
		}
	}
	// Back-substitute R·x = y.
	x := make([]float64, d.n)
	for k := d.n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < d.n; j++ {
			s -= d.qr.At(k, j) * x[j]
		}
		x[k] = s / d.rdiag[k]
	}
	return x, nil
}

// R returns the n×n upper-triangular factor.
func (d *QR) R() *Matrix {
	r := NewMatrix(d.n, d.n)
	for i := 0; i < d.n; i++ {
		r.Set(i, i, d.rdiag[i])
		for j := i + 1; j < d.n; j++ {
			r.Set(i, j, d.qr.At(i, j))
		}
	}
	return r
}

// LeastSquares solves min ‖A·x − b‖₂ directly.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	d, err := QRDecompose(a)
	if err != nil {
		return nil, err
	}
	return d.Solve(b)
}

// SolveSquare solves the square system A·x = b by Gaussian elimination with
// partial pivoting. A is not modified.
func SolveSquare(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: SolveSquare needs square matrix, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("%w: len(b)=%d, want %d", ErrShape, len(b), a.Rows)
	}
	return gaussSolve(a, b)
}

func gaussSolve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	m := a.Clone()
	y := make([]float64, n)
	copy(y, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		p, maxv := k, math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv < 1e-14 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				vk, vp := m.At(k, j), m.At(p, j)
				m.Set(k, j, vp)
				m.Set(p, j, vk)
			}
			y[k], y[p] = y[p], y[k]
		}
		for i := k + 1; i < n; i++ {
			f := m.At(i, k) / m.At(k, k)
			if f == 0 {
				continue
			}
			for j := k; j < n; j++ {
				m.Set(i, j, m.At(i, j)-f*m.At(k, j))
			}
			y[i] -= f * y[k]
		}
	}
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= m.At(k, j) * x[j]
		}
		x[k] = s / m.At(k, k)
	}
	return x, nil
}
