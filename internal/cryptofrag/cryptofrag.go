// Package cryptofrag implements the encryption-based alternative the
// paper compares against in §VII-E ("Encryption vs Fragmentation"): the
// client encrypts data before storing it in the cloud, and every query
// must fetch and decrypt before it can be answered. The package provides
// AES-CTR whole-file encryption, the paper's "partial encryption"
// (encrypt a sensitive portion, fragment the rest), and a query-cost
// harness the benchmarks use to reproduce the paper's overhead argument.
package cryptofrag

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
)

// ErrKeySize is returned for invalid key lengths.
var ErrKeySize = errors.New("cryptofrag: key must be 16, 24 or 32 bytes")

// ErrCiphertext is returned for malformed or tampered ciphertexts.
var ErrCiphertext = errors.New("cryptofrag: invalid ciphertext")

// ivSize is the AES block size used as the CTR IV.
const ivSize = aes.BlockSize

// macSize is the length of the appended integrity tag.
const macSize = sha256.Size

// Encrypt seals plaintext with AES-CTR and appends an HMAC-SHA256 tag
// (encrypt-then-MAC). The IV is derived deterministically from the key and
// a caller-supplied nonce counter, so tests are reproducible; production
// use would draw it from crypto/rand.
func Encrypt(key, plaintext []byte, nonce uint64) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrKeySize, err)
	}
	iv := deriveIV(key, nonce)
	out := make([]byte, ivSize+len(plaintext)+macSize)
	copy(out, iv)
	cipher.NewCTR(block, iv).XORKeyStream(out[ivSize:ivSize+len(plaintext)], plaintext)
	mac := hmac.New(sha256.New, key)
	mac.Write(out[:ivSize+len(plaintext)])
	copy(out[ivSize+len(plaintext):], mac.Sum(nil))
	return out, nil
}

// Decrypt opens a ciphertext produced by Encrypt, verifying integrity.
func Decrypt(key, ciphertext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrKeySize, err)
	}
	if len(ciphertext) < ivSize+macSize {
		return nil, fmt.Errorf("%w: too short", ErrCiphertext)
	}
	body := ciphertext[:len(ciphertext)-macSize]
	tag := ciphertext[len(ciphertext)-macSize:]
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, fmt.Errorf("%w: MAC mismatch", ErrCiphertext)
	}
	iv := body[:ivSize]
	plaintext := make([]byte, len(body)-ivSize)
	cipher.NewCTR(block, iv).XORKeyStream(plaintext, body[ivSize:])
	return plaintext, nil
}

func deriveIV(key []byte, nonce uint64) []byte {
	h := hmac.New(sha256.New, key)
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(nonce >> (8 * (7 - i)))
	}
	h.Write(buf[:])
	return h.Sum(nil)[:ivSize]
}

// PartialEncryption is the paper's complement strategy: "Clients can also
// use partial encryption along with fragmentation, that involves
// partitioning data and encrypting a portion of it." Sensitive holds the
// encrypted portion; Plain the rest (to be fragmented normally).
type PartialEncryption struct {
	Sensitive []byte // ciphertext of the sensitive prefix
	Plain     []byte // untouched remainder
	splitAt   int
}

// PartialEncrypt encrypts the first splitAt bytes and leaves the rest for
// fragmentation.
func PartialEncrypt(key, data []byte, splitAt int, nonce uint64) (*PartialEncryption, error) {
	if splitAt < 0 || splitAt > len(data) {
		return nil, fmt.Errorf("cryptofrag: split %d outside [0,%d]", splitAt, len(data))
	}
	ct, err := Encrypt(key, data[:splitAt], nonce)
	if err != nil {
		return nil, err
	}
	plain := make([]byte, len(data)-splitAt)
	copy(plain, data[splitAt:])
	return &PartialEncryption{Sensitive: ct, Plain: plain, splitAt: splitAt}, nil
}

// Recombine decrypts the sensitive portion and reassembles the original.
func (p *PartialEncryption) Recombine(key []byte) ([]byte, error) {
	head, err := Decrypt(key, p.Sensitive)
	if err != nil {
		return nil, err
	}
	return append(head, p.Plain...), nil
}

// QueryCost quantifies the paper's overhead argument. For the encrypted
// baseline, answering any query requires transferring and decrypting the
// whole object ("The client has to fetch the whole database, then decrypt
// it and run queries"); for fragmentation, only the chunks overlapping
// the queried byte range move.
type QueryCost struct {
	BytesTransferred int
	BytesDecrypted   int
	ChunksTouched    int
}

// EncryptedQueryCost models a range query of length qLen over an
// encrypted object of size objSize.
func EncryptedQueryCost(objSize, qLen int) QueryCost {
	_ = qLen // the whole object moves regardless of the query
	return QueryCost{
		BytesTransferred: objSize + ivSize + macSize,
		BytesDecrypted:   objSize,
		ChunksTouched:    1,
	}
}

// FragmentedQueryCost models the same range query over a fragmented
// object with the given chunk size: only overlapping chunks transfer and
// nothing is decrypted.
func FragmentedQueryCost(objSize, chunkSize, qStart, qLen int) (QueryCost, error) {
	if chunkSize <= 0 {
		return QueryCost{}, fmt.Errorf("cryptofrag: chunk size %d", chunkSize)
	}
	if qStart < 0 || qLen < 0 || qStart+qLen > objSize {
		return QueryCost{}, fmt.Errorf("cryptofrag: query [%d,%d) outside object of %d", qStart, qStart+qLen, objSize)
	}
	if qLen == 0 {
		return QueryCost{}, nil
	}
	first := qStart / chunkSize
	last := (qStart + qLen - 1) / chunkSize
	chunks := last - first + 1
	bytes := chunks * chunkSize
	lastChunkStart := last * chunkSize
	if lastChunkStart+chunkSize > objSize {
		bytes -= lastChunkStart + chunkSize - objSize
	}
	return QueryCost{BytesTransferred: bytes, ChunksTouched: chunks}, nil
}

// Zero reports whether a cost is empty.
func (q QueryCost) Zero() bool { return q == QueryCost{} }

// EqualPayload compares decrypted output to an expected plaintext in
// constant time (convenience for tests).
func EqualPayload(a, b []byte) bool { return bytes.Equal(a, b) }
