package cryptofrag

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

var testKey = bytes.Repeat([]byte{0x42}, 32)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	pt := []byte("the sensitive tender bidding history of Hercules Inc.")
	ct, err := Encrypt(testKey, pt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, pt[:16]) {
		t.Fatal("ciphertext contains plaintext")
	}
	got, err := Decrypt(testKey, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("round trip mismatch")
	}
}

func TestEncryptKeySizes(t *testing.T) {
	for _, n := range []int{16, 24, 32} {
		if _, err := Encrypt(make([]byte, n), []byte("x"), 0); err != nil {
			t.Fatalf("key size %d rejected: %v", n, err)
		}
	}
	if _, err := Encrypt(make([]byte, 15), []byte("x"), 0); !errors.Is(err, ErrKeySize) {
		t.Fatalf("bad key: %v", err)
	}
	if _, err := Decrypt(make([]byte, 5), []byte("x")); !errors.Is(err, ErrKeySize) {
		t.Fatalf("bad key decrypt: %v", err)
	}
}

func TestDecryptRejectsTampering(t *testing.T) {
	ct, _ := Encrypt(testKey, []byte("integrity matters"), 2)
	ct[len(ct)/2] ^= 0x01
	if _, err := Decrypt(testKey, ct); !errors.Is(err, ErrCiphertext) {
		t.Fatalf("tampered ciphertext: %v", err)
	}
	if _, err := Decrypt(testKey, []byte("short")); !errors.Is(err, ErrCiphertext) {
		t.Fatalf("short ciphertext: %v", err)
	}
}

func TestDecryptRejectsWrongKey(t *testing.T) {
	ct, _ := Encrypt(testKey, []byte("secret"), 3)
	other := bytes.Repeat([]byte{0x24}, 32)
	if _, err := Decrypt(other, ct); !errors.Is(err, ErrCiphertext) {
		t.Fatalf("wrong key: %v", err)
	}
}

func TestNoncesProduceDistinctCiphertexts(t *testing.T) {
	pt := []byte("same plaintext")
	c1, _ := Encrypt(testKey, pt, 1)
	c2, _ := Encrypt(testKey, pt, 2)
	if bytes.Equal(c1, c2) {
		t.Fatal("distinct nonces gave identical ciphertexts")
	}
}

func TestPartialEncrypt(t *testing.T) {
	data := []byte("SECRETHEADERpublic body that can be fragmented plainly")
	pe, err := PartialEncrypt(testKey, data, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(pe.Sensitive, []byte("SECRETHEADER")) {
		t.Fatal("sensitive portion not encrypted")
	}
	if !bytes.Equal(pe.Plain, data[12:]) {
		t.Fatal("plain portion altered")
	}
	got, err := pe.Recombine(testKey)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("recombine mismatch")
	}
}

func TestPartialEncryptBounds(t *testing.T) {
	if _, err := PartialEncrypt(testKey, []byte("abc"), -1, 0); err == nil {
		t.Fatal("negative split accepted")
	}
	if _, err := PartialEncrypt(testKey, []byte("abc"), 4, 0); err == nil {
		t.Fatal("oversized split accepted")
	}
	// Degenerate splits still round-trip.
	for _, at := range []int{0, 3} {
		pe, err := PartialEncrypt(testKey, []byte("abc"), at, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pe.Recombine(testKey)
		if err != nil || !bytes.Equal(got, []byte("abc")) {
			t.Fatalf("split %d: %q, %v", at, got, err)
		}
	}
}

func TestEncryptedQueryCostIsWholeObject(t *testing.T) {
	c := EncryptedQueryCost(1_000_000, 10)
	if c.BytesTransferred < 1_000_000 || c.BytesDecrypted != 1_000_000 {
		t.Fatalf("cost = %+v", c)
	}
	// The query size is irrelevant — the paper's point.
	c2 := EncryptedQueryCost(1_000_000, 900_000)
	if c.BytesTransferred != c2.BytesTransferred {
		t.Fatal("encrypted cost varied with query size")
	}
}

func TestFragmentedQueryCost(t *testing.T) {
	// Object 1000, chunks 100, query [250, 40) → chunk 2 only.
	c, err := FragmentedQueryCost(1000, 100, 250, 40)
	if err != nil {
		t.Fatal(err)
	}
	if c.ChunksTouched != 1 || c.BytesTransferred != 100 || c.BytesDecrypted != 0 {
		t.Fatalf("cost = %+v", c)
	}
	// Query crossing a boundary touches two chunks.
	c, _ = FragmentedQueryCost(1000, 100, 290, 40)
	if c.ChunksTouched != 2 || c.BytesTransferred != 200 {
		t.Fatalf("cost = %+v", c)
	}
	// Short final chunk.
	c, _ = FragmentedQueryCost(950, 100, 940, 10)
	if c.ChunksTouched != 1 || c.BytesTransferred != 50 {
		t.Fatalf("tail cost = %+v", c)
	}
	// Zero-length query is free.
	c, _ = FragmentedQueryCost(1000, 100, 10, 0)
	if !c.Zero() {
		t.Fatalf("zero query cost = %+v", c)
	}
}

func TestFragmentedQueryCostValidation(t *testing.T) {
	if _, err := FragmentedQueryCost(100, 0, 0, 10); err == nil {
		t.Fatal("zero chunk size accepted")
	}
	if _, err := FragmentedQueryCost(100, 10, 95, 10); err == nil {
		t.Fatal("overflowing query accepted")
	}
	if _, err := FragmentedQueryCost(100, 10, -1, 5); err == nil {
		t.Fatal("negative start accepted")
	}
}

func TestFragmentationBeatsEncryptionForPointQueries(t *testing.T) {
	// The paper's §VII-E claim, as an inequality.
	objSize := 10 << 20
	enc := EncryptedQueryCost(objSize, 4096)
	frag, err := FragmentedQueryCost(objSize, 64<<10, 5<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if frag.BytesTransferred >= enc.BytesTransferred {
		t.Fatalf("fragmentation (%d B) not cheaper than encryption (%d B)", frag.BytesTransferred, enc.BytesTransferred)
	}
	if frag.BytesDecrypted != 0 {
		t.Fatal("fragmentation should decrypt nothing")
	}
}

// Property: Encrypt→Decrypt is the identity for random payloads/nonces.
func TestEncryptDecryptProperty(t *testing.T) {
	f := func(data []byte, nonce uint64) bool {
		ct, err := Encrypt(testKey, data, nonce)
		if err != nil {
			return false
		}
		pt, err := Decrypt(testKey, ct)
		if err != nil {
			return false
		}
		if data == nil {
			return len(pt) == 0
		}
		return bytes.Equal(pt, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: fragmented query cost never exceeds object size + one chunk,
// and covers at least the queried bytes.
func TestFragmentedQueryCostBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		objSize := 1 + rng.Intn(100_000)
		chunk := 1 + rng.Intn(4096)
		qStart := rng.Intn(objSize)
		qLen := rng.Intn(objSize - qStart)
		c, err := FragmentedQueryCost(objSize, chunk, qStart, qLen)
		if err != nil {
			return false
		}
		if qLen == 0 {
			return c.Zero()
		}
		return c.BytesTransferred >= qLen && c.BytesTransferred <= objSize+chunk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
