package cryptofrag

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/privacy"
	"repro/internal/provider"
)

func baselineFixture(t *testing.T) (*BaselineStore, *provider.MemProvider) {
	t.Helper()
	p := provider.MustNew(provider.Info{Name: "vault", PL: privacy.High, CL: 3}, provider.Options{})
	s, err := NewBaselineStore(p, testKey)
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

func TestBaselineStoreRoundTrip(t *testing.T) {
	s, p := baselineFixture(t)
	data := make([]byte, 50_000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := s.Put("f", data); err != nil {
		t.Fatal(err)
	}
	// Ciphertext on the provider, not plaintext.
	for _, blob := range p.Dump() {
		if bytes.Contains(blob, data[:64]) {
			t.Fatal("plaintext visible on provider")
		}
	}
	got, err := s.Get("f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	if err := s.Put("f", data); err == nil {
		t.Fatal("duplicate Put accepted")
	}
	if err := s.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("f"); err == nil {
		t.Fatal("get after delete succeeded")
	}
	if err := s.Delete("f"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestBaselineStoreValidation(t *testing.T) {
	if _, err := NewBaselineStore(nil, testKey); err == nil {
		t.Fatal("nil provider accepted")
	}
	p := provider.MustNew(provider.Info{Name: "x", PL: privacy.Low, CL: 0}, provider.Options{})
	if _, err := NewBaselineStore(p, []byte("short")); err == nil {
		t.Fatal("bad key accepted")
	}
}

func TestBaselineGetRange(t *testing.T) {
	s, _ := baselineFixture(t)
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(2)).Read(data)
	if err := s.Put("f", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetRange("f", 5_000, 100)
	if err != nil || !bytes.Equal(got, data[5_000:5_100]) {
		t.Fatalf("range: %v", err)
	}
	if _, err := s.GetRange("f", 9_999, 100); err == nil {
		t.Fatal("overflow range accepted")
	}
	if _, err := s.GetRange("f", -1, 5); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestBaselineRangeQueryMovesWholeObject(t *testing.T) {
	// The §VII-E claim as a measured fact: a 100-byte query transfers the
	// entire ciphertext.
	s, _ := baselineFixture(t)
	data := make([]byte, 200_000)
	rand.New(rand.NewSource(3)).Read(data)
	if err := s.Put("f", data); err != nil {
		t.Fatal(err)
	}
	before := s.BytesOut()
	if _, err := s.GetRange("f", 100_000, 100); err != nil {
		t.Fatal(err)
	}
	moved := s.BytesOut() - before
	if moved < int64(len(data)) {
		t.Fatalf("query moved %d bytes, encrypted baseline must move >= %d", moved, len(data))
	}
}
