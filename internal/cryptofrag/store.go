package cryptofrag

import (
	"fmt"
	"sync"

	"repro/internal/provider"
)

// BaselineStore is the §VII-E encryption-based alternative made runnable:
// the client encrypts each file whole and stores the ciphertext on a
// single provider. Every query — even for a handful of bytes — must
// "fetch the whole database, then decrypt it and run queries", which is
// exactly the overhead the paper holds against encryption.
type BaselineStore struct {
	mu       sync.Mutex
	provider provider.Provider
	key      []byte
	nonce    uint64
	files    map[string]baselineFile
}

type baselineFile struct {
	key     string // provider object key
	origLen int
}

// NewBaselineStore wraps one provider with client-side encryption.
func NewBaselineStore(p provider.Provider, key []byte) (*BaselineStore, error) {
	if p == nil {
		return nil, fmt.Errorf("cryptofrag: nil provider")
	}
	switch len(key) {
	case 16, 24, 32:
	default:
		return nil, ErrKeySize
	}
	cp := make([]byte, len(key))
	copy(cp, key)
	return &BaselineStore{provider: p, key: cp, files: make(map[string]baselineFile)}, nil
}

// Put encrypts and uploads a whole file.
func (s *BaselineStore) Put(filename string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.files[filename]; dup {
		return fmt.Errorf("cryptofrag: file %q already stored", filename)
	}
	s.nonce++
	ct, err := Encrypt(s.key, data, s.nonce)
	if err != nil {
		return err
	}
	objKey := fmt.Sprintf("enc-%016x", s.nonce)
	if err := s.provider.Put(objKey, ct); err != nil {
		return err
	}
	s.files[filename] = baselineFile{key: objKey, origLen: len(data)}
	return nil
}

// Get fetches and decrypts the whole file.
func (s *BaselineStore) Get(filename string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(filename)
}

func (s *BaselineStore) getLocked(filename string) ([]byte, error) {
	f, ok := s.files[filename]
	if !ok {
		return nil, fmt.Errorf("cryptofrag: unknown file %q", filename)
	}
	ct, err := s.provider.Get(f.key)
	if err != nil {
		return nil, err
	}
	return Decrypt(s.key, ct)
}

// GetRange answers a byte-range query the only way an encrypted whole-
// object store can: transfer everything, decrypt everything, slice.
func (s *BaselineStore) GetRange(filename string, offset, length int) ([]byte, error) {
	if offset < 0 || length < 0 {
		return nil, fmt.Errorf("cryptofrag: range [%d, %d)", offset, offset+length)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pt, err := s.getLocked(filename)
	if err != nil {
		return nil, err
	}
	if offset+length > len(pt) {
		return nil, fmt.Errorf("cryptofrag: range [%d, %d) beyond file of %d bytes", offset, offset+length, len(pt))
	}
	out := make([]byte, length)
	copy(out, pt[offset:offset+length])
	return out, nil
}

// Delete removes a file.
func (s *BaselineStore) Delete(filename string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[filename]
	if !ok {
		return fmt.Errorf("cryptofrag: unknown file %q", filename)
	}
	if err := s.provider.Delete(f.key); err != nil {
		return err
	}
	delete(s.files, filename)
	return nil
}

// BytesOut reports cumulative bytes transferred from the provider —
// the measured query cost the §VII-E comparison reads.
func (s *BaselineStore) BytesOut() int64 {
	return s.provider.Usage().BytesOut
}
