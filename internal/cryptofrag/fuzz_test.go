package cryptofrag

import (
	"bytes"
	"testing"
)

// FuzzEncryptDecrypt fuzzes the AEAD round trip.
func FuzzEncryptDecrypt(f *testing.F) {
	f.Add([]byte("plaintext"), uint64(1))
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, nonce uint64) {
		ct, err := Encrypt(testKey, data, nonce)
		if err != nil {
			t.Fatalf("encrypt: %v", err)
		}
		pt, err := Decrypt(testKey, ct)
		if err != nil {
			t.Fatalf("decrypt: %v", err)
		}
		if !bytes.Equal(pt, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecryptHostile feeds Decrypt arbitrary bytes: it must reject or
// round-trip, never panic.
func FuzzDecryptHostile(f *testing.F) {
	f.Add([]byte("not a ciphertext"))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, blob []byte) {
		_, _ = Decrypt(testKey, blob)
	})
}
