package minecheck

import (
	"sync"
	"sync/atomic"

	"repro/internal/attack"
	"repro/internal/provider"
)

// spy interposes on one in-memory provider and keeps the access log a
// malicious provider operator would keep: every data-plane request with
// its arrival burst, operation, and key. The burst stamp is the
// harness's logical epoch counter — the deterministic stand-in for the
// wall-clock second an adversary in a real deployment would record; the
// driver advances the epoch between logical client operations, so
// requests serving one client op share a stamp exactly as a co-arriving
// burst would.
//
// Control-plane reads (Dump, Keys, Len, Usage) are the attacker's own
// actions and are not logged.
type spy struct {
	inner provider.Provider
	epoch *atomic.Int64

	mu    sync.Mutex
	trace []attack.TimedAccess
}

func newSpy(inner provider.Provider, epoch *atomic.Int64) *spy {
	return &spy{inner: inner, epoch: epoch}
}

func (s *spy) record(op, key string) {
	t := s.epoch.Load()
	s.mu.Lock()
	s.trace = append(s.trace, attack.TimedAccess{
		T: t, Provider: s.inner.Info().Name, Op: op, Key: key,
	})
	s.mu.Unlock()
}

// Trace returns a copy of the access log.
func (s *spy) Trace() []attack.TimedAccess {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]attack.TimedAccess(nil), s.trace...)
}

func (s *spy) Put(key string, data []byte) error {
	s.record("put", key)
	return s.inner.Put(key, data)
}

func (s *spy) Get(key string) ([]byte, error) {
	s.record("get", key)
	return s.inner.Get(key)
}

func (s *spy) Delete(key string) error {
	s.record("delete", key)
	return s.inner.Delete(key)
}

func (s *spy) Info() provider.Info     { return s.inner.Info() }
func (s *spy) Down() bool              { return s.inner.Down() }
func (s *spy) SetOutage(down bool)     { s.inner.SetOutage(down) }
func (s *spy) Len() int                { return s.inner.Len() }
func (s *spy) Keys() []string          { return s.inner.Keys() }
func (s *spy) Dump() map[string][]byte { return s.inner.Dump() }
func (s *spy) Usage() provider.Usage   { return s.inner.Usage() }
