package minecheck

import "fmt"

// Thresholds are the stored regression gates for defended cells
// (PL ≥ Moderate with misleading data on): every attack-quality score
// must stay strictly below its ceiling, for the best single insider AND
// the fully colluding pool. Values were calibrated over a 32-seed sweep
// of the gated cells — observed maxima were ≤ 0.22 for clustering,
// ≤ 0.15 for prediction, and 0 for regression and rule recovery — and
// sit far below the undefended control floor (regression ≥ 0.97, rule
// recovery 1.0, clustering ≥ 0.37), so a genuine leak clears the bar by
// an order of magnitude while seed-to-seed noise does not.
type Thresholds struct {
	Regression float64 `json:"regression"`
	Cluster    float64 `json:"cluster"`
	Rule       float64 `json:"rule"`
	NB         float64 `json:"nb"`
	KNN        float64 `json:"knn"`
	// TenantConfusion is an exact-zero invariant: no client operation
	// ever co-bursts two tenants' chunks in a correctly isolated system.
	TenantConfusion float64 `json:"tenantConfusion"`
	// ShardCorrelation caps how strongly a colluding distributor fleet
	// can correlate one tenant's files by placement.
	ShardCorrelation float64 `json:"shardCorrelation"`
}

// DefaultThresholds are the stored gate ceilings.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Regression:       0.15,
		Cluster:          0.30,
		Rule:             0.25,
		NB:               0.25,
		KNN:              0.20,
		TenantConfusion:  0,
		ShardCorrelation: 0.80,
	}
}

// Gated reports whether a cell is one the gate applies to: privacy
// level Moderate or higher with the misleading-data defence on — the
// deployment posture the paper prescribes for sensitive data.
func (c Cell) Gated() bool {
	return int(c.PL) >= 2 && c.Mislead
}

// Gate checks a campaign result against the thresholds and returns one
// violation string per breached ceiling (empty means the cell holds).
// Calling it on a non-gated cell reports nothing: undefended cells are
// *supposed* to leak.
func (r *Result) Gate(th Thresholds) []string {
	if !r.Cell.Gated() {
		return nil
	}
	var v []string
	check := func(name string, got, ceiling float64) {
		if got > ceiling {
			v = append(v, fmt.Sprintf("%s: %s = %.3f exceeds %.3f (cell %s, seed %d)",
				"minecheck gate", name, got, ceiling, r.Cell, r.Seed))
		}
	}
	s := r.Scores
	check("regression (insider)", s.RegressionInsider, th.Regression)
	check("regression (pooled)", s.RegressionPooled, th.Regression)
	check("clustering (insider)", s.ClusterInsider, th.Cluster)
	check("clustering (pooled)", s.ClusterPooled, th.Cluster)
	check("rule recovery (insider)", s.RuleInsider, th.Rule)
	check("rule recovery (pooled)", s.RulePooled, th.Rule)
	check("naive-bayes (insider)", s.NBInsider, th.NB)
	check("naive-bayes (pooled)", s.NBPooled, th.NB)
	check("knn (insider)", s.KNNInsider, th.KNN)
	check("knn (pooled)", s.KNNPooled, th.KNN)
	check("tenant confusion", s.TenantConfusion, th.TenantConfusion)
	check("shard correlation", s.ShardCorrelation, th.ShardCorrelation)
	return v
}
