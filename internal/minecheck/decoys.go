package minecheck

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// Decoy construction, one strategy per dataset. Each returns whole
// fabricated records for core's line-level mislead injection
// (UploadOptions.MisleadLines): decoys parse exactly like real rows, so
// an attacker's miner ingests them, but mislead.Strip removes them on
// any authorised read. The strategies target what each mining family
// actually learns:
//
//   - regression decoys come from a *different* linear pricing rule, so
//     the pooled fit lands between the true and decoy models (the
//     paper's three mutually inconsistent misleading equations);
//   - clustering decoys reuse real user IDs against a single wrong
//     anchor, collapsing the between-group structure the dendrogram cut
//     recovers;
//   - association decoys are anti-rule baskets (antecedent without
//     consequent), driving planted-rule confidence under threshold;
//   - prediction decoys are label-flipped patient rows, pushing the
//     class-conditional statistics toward coin-flip.

// decoyBiddingModel is the wrong pricing rule decoys are drawn from —
// deliberately far from PaperBiddingModel in every coefficient.
func decoyBiddingModel() dataset.BiddingModel {
	return dataset.BiddingModel{A: -3, B: 8, C: 0.1, D: 777, Noise: 0}
}

// biddingDecoys fabricates n bidding rows priced by the decoy rule.
func biddingDecoys(n int, rng *rand.Rand) [][]byte {
	recs := dataset.GenerateBiddingHistory(n, decoyBiddingModel(), rng)
	return csvLines(dataset.BiddingCSV(recs))
}

// gpsDecoys fabricates n observations that reuse the real user IDs
// against per-user *random* wrong anchors inside the city: plausible
// enough to survive an analyst's range filter, and because each user is
// dragged in an independent random direction (with decoys outweighing
// real observations), the between-group geometry the dendrogram cut
// recovers is scrambled rather than merely translated.
func gpsDecoys(n, users int, rng *rand.Rand) [][]byte {
	anchors := make([][2]float64, users)
	for u := range anchors {
		anchors[u] = [2]float64{
			23.78 + (rng.Float64()-0.5)*0.9,
			90.40 + (rng.Float64()-0.5)*0.9,
		}
	}
	var pts []dataset.GPSPoint
	for i := 0; i < n; i++ {
		u := rng.Intn(users)
		pts = append(pts, dataset.GPSPoint{
			User: u,
			T:    100000 + i,
			Lat:  anchors[u][0] + rng.NormFloat64()*0.004,
			Lon:  anchors[u][1] + rng.NormFloat64()*0.004,
		})
	}
	return csvLines(dataset.GPSCSV(pts))
}

// basketDecoys fabricates n anti-rule transactions: each contains one
// planted antecedent, never its consequent, plus background items.
func basketDecoys(n int, cfg dataset.BasketConfig, rng *rand.Rand) [][]byte {
	rules := cfg.PlantedRules
	var out [][]byte
	for i := 0; i < n; i++ {
		r := rules[i%len(rules)]
		items := map[int]bool{r[0]: true}
		for it := 0; it < cfg.Catalog; it++ {
			if it != r[1] && rng.Float64() < cfg.BaseProb {
				items[it] = true
			}
		}
		delete(items, r[1])
		var line []byte
		for it := 0; it < cfg.Catalog; it++ {
			if items[it] {
				if len(line) > 0 {
					line = append(line, ',')
				}
				line = append(line, fmt.Sprintf("item%02d", it)...)
			}
		}
		out = append(out, line)
	}
	return out
}

// healthDecoys fabricates n patient rows with the risk label flipped
// relative to the vitals that generated it.
func healthDecoys(n int, seed int64) ([][]byte, error) {
	recs, err := dataset.GenerateHealthRecords(dataset.HealthConfig{
		Patients: n, HighRiskFraction: 0.5, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	for i := range recs {
		recs[i].Patient += 100000
		if recs[i].Risk == "high" {
			recs[i].Risk = "low"
		} else {
			recs[i].Risk = "high"
		}
	}
	return csvLines(dataset.HealthCSV(recs)), nil
}

// csvLines splits serialized CSV into data lines, dropping the header
// (decoy headers would be trivially strippable duplicates).
func csvLines(data []byte) [][]byte {
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	var out [][]byte
	for i, l := range lines {
		if i == 0 || len(l) == 0 {
			continue
		}
		out = append(out, append([]byte(nil), l...))
	}
	return out
}
