package minecheck

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/localfleet"
	"repro/internal/provider"
	"repro/internal/transport"
)

var (
	flagSeed  = flag.Int64("seed", 0, "run exactly this minecheck seed (0 = sweep)")
	flagSeeds = flag.Int("seeds", 0, "number of seeds to sweep (0 = 32, or 8 with -short)")
)

func sweepSeeds(t *testing.T) []int64 {
	if *flagSeed != 0 {
		return []int64{*flagSeed}
	}
	n := *flagSeeds
	if n == 0 {
		n = 32
		if testing.Short() {
			n = 8
		}
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// dumpArtifact writes a failing campaign's full result to
// $MINECHECK_ARTIFACTS so CI can upload it next to the repro line.
func dumpArtifact(t *testing.T, r *Result, violations []string) {
	dir := os.Getenv("MINECHECK_ARTIFACTS")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("minecheck: cannot create artifact dir: %v", err)
		return
	}
	body, _ := json.MarshalIndent(map[string]any{"result": r, "violations": violations}, "", "  ")
	path := filepath.Join(dir, fmt.Sprintf("minecheck-seed%d.json", r.Seed))
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Logf("minecheck: cannot write artifact: %v", err)
		return
	}
	t.Logf("minecheck: failing-seed artifact written to %s", path)
}

// TestMineCheck is the adversary-in-the-loop sweep: for every seed it
// runs the gate cells (defended postures plus the undefended control)
// against the real loopback deployment, holds each defended cell below
// the stored thresholds, and — across the sweep — requires the control
// cell to leak decisively, proving the attacks have teeth. Reproduce
// any failure with the printed repro line, e.g.
//
//	go test ./internal/minecheck -run 'TestMineCheck$' -seed=7
func TestMineCheck(t *testing.T) {
	th := DefaultThresholds()
	var control []Scores
	for _, seed := range sweepSeeds(t) {
		for _, cell := range GateCells() {
			r, err := Run(Config{Seed: seed, Cell: cell})
			if err != nil {
				t.Fatalf("minecheck seed %d cell %s: %v\nrepro: go test ./internal/minecheck -run 'TestMineCheck$' -seed=%d",
					seed, cell, err, seed)
			}
			if v := r.Gate(th); len(v) > 0 {
				dumpArtifact(t, r, v)
				t.Errorf("minecheck gate failed (repro: go test ./internal/minecheck -run 'TestMineCheck$' -seed=%d):\n  %v",
					seed, v)
			}
			if !cell.Gated() {
				control = append(control, r.Scores)
			}
		}
	}
	if t.Failed() || len(control) == 0 {
		return
	}
	// Teeth: on the undefended control the same attacks must succeed,
	// or a gate that "holds" proves nothing. Means over the sweep keep
	// this stable against per-seed mining variance.
	mean := func(f func(Scores) float64) float64 {
		var sum float64
		for _, s := range control {
			sum += f(s)
		}
		return sum / float64(len(control))
	}
	teeth := []struct {
		name  string
		got   float64
		floor float64
	}{
		{"regression (pooled)", mean(func(s Scores) float64 { return s.RegressionPooled }), 0.90},
		{"rule recovery (pooled)", mean(func(s Scores) float64 { return s.RulePooled }), 0.90},
		{"clustering (pooled)", mean(func(s Scores) float64 { return s.ClusterPooled }), 0.40},
		{"naive-bayes (pooled)", mean(func(s Scores) float64 { return s.NBPooled }), 0.35},
		{"knn (pooled)", mean(func(s Scores) float64 { return s.KNNPooled }), 0.25},
	}
	for _, c := range teeth {
		if c.got < c.floor {
			t.Errorf("control cell: mean %s = %.3f below teeth floor %.3f — attacks lost their bite, gate is vacuous",
				c.name, c.got, c.floor)
		}
	}
}

// TestMineCheckDeterministic pins the harness's core promise: same seed
// and cell → byte-identical campaign scores, even though the run goes
// over real loopback HTTP.
func TestMineCheckDeterministic(t *testing.T) {
	cells := []Cell{GateCells()[0], GateCells()[3]}
	for _, cell := range cells {
		a, err := Run(Config{Seed: 11, Cell: cell})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Config{Seed: 11, Cell: cell})
		if err != nil {
			t.Fatal(err)
		}
		if a.Scores != b.Scores {
			t.Errorf("cell %s: scores differ across identical runs:\n  %+v\n  %+v", cell, a.Scores, b.Scores)
		}
		if a.Chunks != b.Chunks || a.Ops != b.Ops {
			t.Errorf("cell %s: chunks/ops differ: %d/%d vs %d/%d", cell, a.Chunks, a.Ops, b.Chunks, b.Ops)
		}
	}
}

// TestMineCheckPlantedLeakTripsGate proves the gate is live: the same
// defended cells with decoy injection silently skipped (data stored
// bare) must trip the gate on every seed — if they don't, the gate
// could never catch a real regression either.
func TestMineCheckPlantedLeakTripsGate(t *testing.T) {
	th := DefaultThresholds()
	for _, seed := range []int64{1, 2, 3} {
		for _, cell := range GateCells() {
			if !cell.Gated() {
				continue
			}
			r, err := Run(Config{Seed: seed, Cell: cell, PlantLeak: true})
			if err != nil {
				t.Fatal(err)
			}
			if v := r.Gate(th); len(v) == 0 {
				t.Errorf("planted leak (no decoys) in cell %s seed %d passed the gate: thresholds are toothless", cell, seed)
			}
		}
	}
}

// TestTimingInvariance is the cache/hedge side-channel unit check: two
// tenants driving identical access scripts over same-sized files must
// produce identical provider-side access *shapes* (per-burst op-count
// multisets with identities erased). If a cache hit, hedge fan-out, or
// placement quirk made one tenant's warm read look different from the
// other's, a provider could tell tenants apart by traffic shape alone.
func TestTimingInvariance(t *testing.T) {
	var ep atomic.Int64
	var spies []*spy
	cluster, err := localfleet.Start(localfleet.Config{
		Shards:    1,
		Providers: 6,
		Wrap: func(_, _ int, p provider.Provider) provider.Provider {
			s := newSpy(p, &ep)
			spies = append(spies, s)
			return s
		},
		Distributor: func(_ int, c *core.Config) {
			c.Secret = []byte("timing-invariance")
			c.Parallelism = 1
			c.CacheBytes = 4 << 20
			c.HedgeAfter = 5 * time.Second
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	sys, err := transport.NewSystem(cluster.DistURLs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Same file size for both tenants: 20 KiB spans multiple chunks at
	// PL Moderate, so a read fans out and the shape is non-trivial.
	payload := bytes.Repeat([]byte("account ledger row 0123456789\n"), 700)
	epochsOf := map[string][]int64{}
	for _, tenant := range []string{"alice", "bob"} {
		if err := sys.RegisterClient(tenant); err != nil {
			t.Fatal(err)
		}
		if err := sys.AddPassword(tenant, "pw", 2); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Upload(tenant, "pw", "ledger.dat", payload, 2, transport.UploadOptions{Assurance: 5}); err != nil {
			t.Fatal(err)
		}
	}
	// Identical scripts: one cold read, two warm reads.
	for _, tenant := range []string{"alice", "bob"} {
		for i := 0; i < 3; i++ {
			e := ep.Add(1)
			epochsOf[tenant] = append(epochsOf[tenant], e)
			if _, err := sys.GetFile(tenant, "pw", "ledger.dat"); err != nil {
				t.Fatal(err)
			}
		}
	}

	var all []attack.TimedAccess
	for _, s := range spies {
		all = append(all, s.Trace()...)
	}
	traceFor := func(tenant string) []attack.TimedAccess {
		want := map[int64]bool{}
		for _, e := range epochsOf[tenant] {
			want[e] = true
		}
		var out []attack.TimedAccess
		for _, a := range all {
			if a.Op == "get" && want[a.T] {
				out = append(out, a)
			}
		}
		return out
	}
	alice, bob := attack.AccessPattern(traceFor("alice")), attack.AccessPattern(traceFor("bob"))
	if alice != bob {
		t.Errorf("tenants distinguishable by access shape:\n  alice: %s\n  bob:   %s", alice, bob)
	}
	if alice == "" {
		t.Error("no provider accesses recorded for the cold read; fixture broken")
	}
}
