// Package minecheck is the adversary-in-the-loop check: it stands up
// the real networked system on loopback (distributor shards + HTTP
// providers, the cloudbench fixture), drives mixed tenant traffic, then
// runs the full data-mining arsenal — regression, hierarchical
// clustering, association rules, naive Bayes and kNN prediction — over
// what malicious providers actually observed: their stored blobs, their
// request timing logs, and the shard placement of every file. Each
// configuration cell gets attack-quality scores normalised to [0,1]
// (0 = attacker learned nothing, 1 = perfect recovery), so a sweep
// traces the privacy-vs-performance frontier and a CI gate can pin the
// defended cells below stored thresholds.
package minecheck

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/localfleet"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
	"repro/internal/transport"
)

// Cell is one point of the configuration sweep.
type Cell struct {
	PL      privacy.Level `json:"pl"`
	Raid    raid.Level    `json:"raid"`
	Mislead bool          `json:"mislead"`
	Cache   bool          `json:"cache"`
	Hedge   bool          `json:"hedge"`
	Shards  int           `json:"shards"`
}

func (c Cell) String() string {
	onoff := func(b bool, name string) string {
		if b {
			return "+" + name
		}
		return "-" + name
	}
	return fmt.Sprintf("PL%d/raid%d%s%s%s/%dsh",
		int(c.PL), int(c.Raid),
		onoff(c.Mislead, "mislead"), onoff(c.Cache, "cache"), onoff(c.Hedge, "hedge"),
		c.Shards)
}

// Config parameterises one campaign run.
type Config struct {
	Seed int64
	Cell Cell
	// Providers per shard; 0 means 6 (enough for RAID6 stripes with
	// slack for least-load placement to matter).
	Providers int
	// PlantLeak deliberately skips decoy injection while the cell still
	// claims the defended posture — the known-bad configuration the
	// test suite uses to prove the gate actually fires. Never set
	// outside tests.
	PlantLeak bool
}

// Scores are the attack-quality metrics for one cell, each normalised
// to [0,1] where 0 means the attacker learned nothing beyond chance and
// 1 means perfect recovery of the protected structure. Insider variants
// take the best single compromised provider; Pooled variants give the
// adversary every provider of every shard (full collusion).
type Scores struct {
	// RegressionInsider/Pooled: holdout R² of the attacker's fitted
	// pricing rule against data from the true model (clamped to [0,1]).
	RegressionInsider float64 `json:"regressionInsider"`
	RegressionPooled  float64 `json:"regressionPooled"`
	// ClusterInsider/Pooled: adjusted Rand index of the dendrogram cut
	// against the true behavioural groups (clamped at 0).
	ClusterInsider float64 `json:"clusterInsider"`
	ClusterPooled  float64 `json:"clusterPooled"`
	// RuleInsider/Pooled: fraction of planted association rules the
	// Apriori attack recovers.
	RuleInsider float64 `json:"ruleInsider"`
	RulePooled  float64 `json:"rulePooled"`
	// NBInsider/Pooled and KNNInsider/Pooled: excess holdout accuracy of
	// the attacker's risk classifier, max(0, 2·acc − 1).
	NBInsider  float64 `json:"nbInsider"`
	NBPooled   float64 `json:"nbPooled"`
	KNNInsider float64 `json:"knnInsider"`
	KNNPooled  float64 `json:"knnPooled"`
	// CoOwnershipF1: pairwise F1 of chunk co-ownership inferred from
	// pooled request-timing logs (the burst side channel). Reported on
	// the frontier; fragmentation does not close this channel.
	CoOwnershipF1 float64 `json:"coOwnershipF1"`
	// TenantConfusion: fraction of timing-inferred co-owned pairs that
	// straddle tenants. Any correctly isolated system scores exactly 0;
	// a cache or placement leak that mixes tenants shows up here.
	TenantConfusion float64 `json:"tenantConfusion"`
	// ShardCorrelation: how concentrated one tenant's files are on a
	// single distributor shard, normalised so uniform spread is 0 and
	// all-on-one-shard is 1 (0 when only one shard exists).
	ShardCorrelation float64 `json:"shardCorrelation"`
}

// Result is one campaign outcome.
type Result struct {
	Cell   Cell   `json:"cell"`
	Seed   int64  `json:"seed"`
	Scores Scores `json:"scores"`
	Ops    int    `json:"ops"`
	Chunks int    `json:"chunks"`
	// OpsPerSec is wall-clock throughput of the traffic phase. It is the
	// only non-deterministic field; determinism checks compare Scores.
	OpsPerSec float64 `json:"opsPerSec"`
}

// file is one tenant upload in the workload.
type file struct {
	tenant, name string
	data         []byte
}

// workload sizes — small enough that a 128-cell sweep finishes in
// seconds, large enough that every attack succeeds decisively on the
// undefended control cell.
const (
	bidRows     = 240
	gpsUsers    = 12
	gpsGroups   = 3
	gpsObsEach  = 40
	healthRows  = 240
	holdoutRows = 120
	basketTxns  = 500
	knnK        = 5
	minSupport  = 0.02
	minConfid   = 0.6
)

// Run stands up the cell's deployment, drives the tenant workload, and
// mounts every attack. Deterministic given (Seed, Cell): serial driver,
// Parallelism 1, instant providers, hedging enabled but clamped far
// above loopback latency, and logical-epoch timing stamps.
func Run(cfg Config) (*Result, error) {
	cell := cfg.Cell
	if cell.Shards < 1 {
		cell.Shards = 1
	}
	provs := cfg.Providers
	if provs == 0 {
		provs = 6
	}

	var ep atomic.Int64
	type spyAt struct {
		shard int
		spy   *spy
	}
	var spies []spyAt
	cluster, err := localfleet.Start(localfleet.Config{
		Shards:    cell.Shards,
		Providers: provs,
		Wrap: func(shard, idx int, p provider.Provider) provider.Provider {
			s := newSpy(p, &ep)
			spies = append(spies, spyAt{shard, s})
			return s
		},
		Distributor: func(shard int, c *core.Config) {
			c.Secret = []byte(fmt.Sprintf("minecheck-%d-%d", cfg.Seed, shard))
			c.MisleadSeed = cfg.Seed + int64(shard)
			c.Parallelism = 1
			if cell.Cache {
				c.CacheBytes = 4 << 20
			}
			if cell.Hedge {
				// Hedging on, but the clamp floor (HedgeAfter/8) sits far
				// above loopback service time, so the path is armed yet
				// never fires — deterministic with the machinery live.
				c.HedgeAfter = 5 * time.Second
			}
		},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	hc := &http.Client{Timeout: 30 * time.Second, Transport: transport.NewPooledTransport()}
	sys, err := transport.NewSystem(cluster.DistURLs, hc)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	sub := func() int64 { return rng.Int63() }

	// ---- datasets (ground truth the attacks are scored against) ----
	trueModel := dataset.PaperBiddingModel()
	bids := dataset.GenerateBiddingHistory(bidRows, trueModel, rand.New(rand.NewSource(sub())))
	bidHoldout := dataset.GenerateBiddingHistory(holdoutRows, trueModel, rand.New(rand.NewSource(sub())))

	gpsCfg := dataset.GPSConfig{Users: gpsUsers, Groups: gpsGroups, ObsPerUser: gpsObsEach, AnchorNoise: 0.004, Seed: sub()}
	profiles, gpsPts, err := dataset.GenerateGPS(gpsCfg)
	if err != nil {
		return nil, err
	}
	groupOf := map[int]int{}
	for _, p := range profiles {
		groupOf[p.User] = p.Group
	}

	healthCfg := dataset.HealthConfig{Patients: healthRows, HighRiskFraction: 0.4, Seed: sub()}
	health, err := dataset.GenerateHealthRecords(healthCfg)
	if err != nil {
		return nil, err
	}
	healthHoldout, err := dataset.GenerateHealthRecords(dataset.HealthConfig{
		Patients: holdoutRows, HighRiskFraction: 0.4, Seed: sub(),
	})
	if err != nil {
		return nil, err
	}

	basketCfg := dataset.DefaultBasketConfig()
	basketCfg.Transactions = basketTxns
	basketCfg.Seed = sub()
	baskets, err := dataset.GenerateBaskets(basketCfg)
	if err != nil {
		return nil, err
	}
	var basketBuf bytes.Buffer
	for _, t := range baskets {
		basketBuf.WriteString(strings.Join(t, ","))
		basketBuf.WriteByte('\n')
	}

	// ---- decoys (the mislead defence, when the cell turns it on) ----
	// Decoy volumes: ≥1× the real rows for the model-shift strategies,
	// 3× for clustering (decoys must outweigh real observations to move
	// a user's feature vector off its group) and 1.5× for prediction
	// (pulling class statistics firmly past coin-flip).
	decoyRNG := rand.New(rand.NewSource(sub()))
	healthDec, err := healthDecoys(healthRows*3/2, sub())
	if err != nil {
		return nil, err
	}
	decoysFor := map[string][][]byte{
		"bidding.csv": biddingDecoys(bidRows, decoyRNG),
		"gps.csv":     gpsDecoys(3*gpsUsers*gpsObsEach, gpsUsers, decoyRNG),
		"baskets.txt": basketDecoys(basketTxns, basketCfg, decoyRNG),
		"health.csv":  healthDec,
	}

	// ---- tenants and uploads (one epoch per logical operation) ----
	files := []file{
		{"acme", "bidding.csv", dataset.BiddingCSV(bids)},
		{"acme", "baskets.txt", basketBuf.Bytes()},
		{"acme", "health.csv", dataset.HealthCSV(health)},
		{"globex", "gps.csv", dataset.GPSCSV(gpsPts)},
		{"globex", "notes.txt", dataset.TextRecords(160, rand.New(rand.NewSource(sub())))},
	}
	// Filler uploads widen the per-tenant file population so the shard
	// placement metric measures routing, not two-file coin flips.
	for i := 0; i < 4; i++ {
		for _, tenant := range []string{"acme", "globex"} {
			files = append(files, file{
				tenant, fmt.Sprintf("log-%d.txt", i),
				dataset.TextRecords(40+20*i, rand.New(rand.NewSource(sub()))),
			})
		}
	}
	for _, tenant := range []string{"acme", "globex"} {
		if err := sys.RegisterClient(tenant); err != nil {
			return nil, err
		}
		if err := sys.AddPassword(tenant, "pw-"+tenant, cell.PL); err != nil {
			return nil, err
		}
	}

	traceAt := func() []attack.TimedAccess {
		var all []attack.TimedAccess
		for _, s := range spies {
			all = append(all, s.spy.Trace()...)
		}
		return all
	}

	ops := 0
	epochOwner := map[int64]file{}
	for _, f := range files {
		e := ep.Add(1)
		ops++
		epochOwner[e] = f
		opts := transport.UploadOptions{Assurance: cell.Raid}
		if cell.Mislead && !cfg.PlantLeak {
			opts.MisleadLines = decoysFor[f.name]
		}
		if _, err := sys.Upload(f.tenant, "pw-"+f.tenant, f.name, f.data, cell.PL, opts); err != nil {
			return nil, fmt.Errorf("upload %s/%s: %w", f.tenant, f.name, err)
		}
	}
	// Every key put while a file's upload epoch was current belongs to
	// that file — the serial driver makes the attribution exact, and
	// keying on the epoch stamp keeps it independent of how the
	// per-provider logs interleave.
	keyFile := map[string]string{}   // provider key → "tenant/name"
	keyTenant := map[string]string{} // provider key → tenant
	for _, a := range traceAt() {
		if a.Op != "put" {
			continue
		}
		if f, ok := epochOwner[a.T]; ok {
			keyFile[a.Key] = f.tenant + "/" + f.name
			keyTenant[a.Key] = f.tenant
		}
	}

	// ---- mixed read traffic: cold reads, then warm re-reads ----
	reads := []int{0, 3, 1, 4, 2, 0, 3, 1, 0, 3, 2, 4}
	start := time.Now()
	for _, fi := range reads {
		f := files[fi]
		ep.Add(1)
		ops++
		got, err := sys.GetFile(f.tenant, "pw-"+f.tenant, f.name)
		if err != nil {
			return nil, fmt.Errorf("read %s/%s: %w", f.tenant, f.name, err)
		}
		if !bytes.Equal(got, f.data) {
			return nil, fmt.Errorf("read %s/%s: bytes differ from upload (mislead strip or assembly broken)", f.tenant, f.name)
		}
	}
	elapsed := time.Since(start)

	// ---- the attacks ----
	var res Result
	res.Cell = cell
	res.Seed = cfg.Seed
	res.Ops = ops
	if elapsed > 0 {
		res.OpsPerSec = float64(len(reads)) / elapsed.Seconds()
	}

	var allURLs []string
	for _, us := range cluster.ProviderURLs {
		allURLs = append(allURLs, us...)
	}
	pooled, err := attack.SniffTransport(allURLs, hc)
	if err != nil {
		return nil, err
	}
	res.Chunks = len(pooled)
	var insiders [][]attack.Blob
	for _, u := range allURLs {
		blobs, err := attack.SniffTransport([]string{u}, hc)
		if err != nil {
			return nil, err
		}
		insiders = append(insiders, blobs)
	}

	score := func(f func([]attack.Blob) float64) (insider, pool float64) {
		for _, b := range insiders {
			if s := f(b); s > insider {
				insider = s
			}
		}
		return insider, f(pooled)
	}

	res.Scores.RegressionInsider, res.Scores.RegressionPooled = score(func(b []attack.Blob) float64 {
		return regressionScore(attack.BiddingRegressionAttack(b), bidHoldout)
	})
	res.Scores.ClusterInsider, res.Scores.ClusterPooled = score(func(b []attack.Blob) float64 {
		return clusterScore(b, groupOf)
	})
	res.Scores.RuleInsider, res.Scores.RulePooled = score(func(b []attack.Blob) float64 {
		// A competent attacker triages stolen chunks by content before
		// mining, so only basket-looking blobs feed Apriori.
		basketBlobs := attack.FilterKind(b, attack.KindBaskets)
		return ruleScore(attack.BasketRuleAttack(basketBlobs, minSupport, minConfid), basketCfg)
	})
	res.Scores.NBInsider, res.Scores.NBPooled = score(func(b []attack.Blob) float64 {
		return excessAccuracy(attack.HealthPredictionAttack(b, healthHoldout))
	})
	res.Scores.KNNInsider, res.Scores.KNNPooled = score(func(b []attack.Blob) float64 {
		return excessAccuracy(attack.HealthKNNAttack(b, healthHoldout, knnK))
	})

	// ---- the side channels: timing and placement ----
	var gets []attack.TimedAccess
	for _, a := range traceAt() {
		if a.Op == "get" {
			gets = append(gets, a)
		}
	}
	sort.Slice(gets, func(i, j int) bool {
		if gets[i].T != gets[j].T {
			return gets[i].T < gets[j].T
		}
		if gets[i].Provider != gets[j].Provider {
			return gets[i].Provider < gets[j].Provider
		}
		return gets[i].Key < gets[j].Key
	})
	groups := attack.CoOwnershipGroups(gets)
	// Score only over keys the read trace exposed: parity chunks that no
	// healthy read touches are invisible to this channel by design.
	seen := map[string]bool{}
	for _, a := range gets {
		seen[a.Key] = true
	}
	fileTruth := map[string]string{}
	tenantTruth := map[string]string{}
	for k := range seen {
		if f, ok := keyFile[k]; ok {
			fileTruth[k] = f
			tenantTruth[k] = keyTenant[k]
		}
	}
	_, _, res.Scores.CoOwnershipF1 = attack.PairScore(groups, fileTruth)
	res.Scores.TenantConfusion = attack.CrossLabelFraction(groups, tenantTruth)

	res.Scores.ShardCorrelation, err = shardCorrelation(sys, files, cell.Shards)
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// regressionScore evaluates the attacker's fitted model on fresh data
// from the true pricing rule: R² on the holdout, clamped to [0,1]. A
// model poisoned toward the decoy rule predicts worse than the mean
// bid, scoring 0.
func regressionScore(r attack.BiddingResult, holdout []dataset.BidRecord) float64 {
	if r.FitErr != nil || r.Model == nil {
		return 0
	}
	x, y := dataset.Features(holdout)
	rmse, err := r.Model.RMSE(x, y)
	if err != nil {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var variance float64
	for _, v := range y {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(y))
	if variance == 0 {
		return 0
	}
	return clamp01(1 - rmse*rmse/variance)
}

// clusterScore cuts the attacker's dendrogram at the true group count
// and scores the flat clustering with the adjusted Rand index.
func clusterScore(blobs []attack.Blob, groupOf map[int]int) float64 {
	res, err := attack.GPSClusteringAttack(blobs, gpsGroups)
	if err != nil || len(res.UserIDs) < 2 {
		return 0
	}
	truth := make([]int, len(res.UserIDs))
	for i, uid := range res.UserIDs {
		g, ok := groupOf[uid]
		if !ok {
			g = -1 - i // decoy-only "user": its own singleton class
		}
		truth[i] = g
	}
	ari, err := metrics.AdjustedRandIndex(res.Labels, truth)
	if err != nil {
		return 0
	}
	return clamp01(ari)
}

// ruleScore is the fraction of planted associations recovered.
func ruleScore(r attack.BasketResult, cfg dataset.BasketConfig) float64 {
	if r.FitErr != nil {
		return 0
	}
	planted := cfg.PlantedRuleNames()
	if len(planted) == 0 {
		return 0
	}
	found := 0
	for _, p := range planted {
		if attack.HasRule(r.Rules, p[0], p[1]) {
			found++
		}
	}
	return float64(found) / float64(len(planted))
}

// excessAccuracy maps holdout accuracy to [0,1] excess over coin-flip.
func excessAccuracy(r attack.PredictionResult) float64 {
	if r.FitErr != nil {
		return 0
	}
	return clamp01(2*r.Accuracy - 1)
}

// shardCorrelation measures tenant→shard placement concentration: for
// each tenant, the modal shard's share of its files, normalised so 1/S
// (uniform) maps to 0 and 1 (all co-located) maps to 1, averaged over
// tenants. The mean is the gateable statistic — a routing leak that
// correlates files by tenant concentrates *every* tenant's namespace,
// while an unlucky hash draw spikes one tenant at a time. One shard
// carries no information: 0.
func shardCorrelation(sys *transport.System, files []file, shards int) (float64, error) {
	if shards <= 1 {
		return 0, nil
	}
	byTenant := map[string]map[int]int{}
	total := map[string]int{}
	for _, f := range files {
		loc, err := sys.Locate(f.tenant, f.name)
		if err != nil {
			return 0, err
		}
		if byTenant[f.tenant] == nil {
			byTenant[f.tenant] = map[int]int{}
		}
		byTenant[f.tenant][loc.Shard]++
		total[f.tenant]++
	}
	var sum float64
	for tenant, counts := range byTenant {
		modal := 0
		for _, n := range counts {
			if n > modal {
				modal = n
			}
		}
		frac := float64(modal) / float64(total[tenant])
		uniform := 1.0 / float64(shards)
		sum += clamp01((frac - uniform) / (1 - uniform))
	}
	return sum / float64(len(byTenant)), nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
