package minecheck

import (
	"fmt"
	"strings"

	"repro/internal/privacy"
	"repro/internal/raid"
)

// FrontierSchema identifies the JSON layout cmd/minecheck emits and
// cmd/benchjson embeds.
const FrontierSchema = "minecheck/v1"

// Frontier is one full sweep: every cell's attack scores plus read
// throughput, tracing where privacy is bought and what it costs.
type Frontier struct {
	Schema string   `json:"schema"`
	Seed   int64    `json:"seed"`
	Cells  []Result `json:"cells"`
}

// AllCells enumerates the full sweep grid: privacy level 0–3 ×
// RAID-5/6 × mislead on/off × cache on/off × hedging on/off × 1/4
// shards — 128 cells.
func AllCells() []Cell {
	var cells []Cell
	for pl := 0; pl <= 3; pl++ {
		for _, rl := range []raid.Level{raid.RAID5, raid.RAID6} {
			for _, mislead := range []bool{false, true} {
				for _, cache := range []bool{false, true} {
					for _, hedge := range []bool{false, true} {
						for _, shards := range []int{1, 4} {
							cells = append(cells, Cell{
								PL: privacy.Level(pl), Raid: rl,
								Mislead: mislead, Cache: cache, Hedge: hedge,
								Shards: shards,
							})
						}
					}
				}
			}
		}
	}
	return cells
}

// GateCells is the small per-seed subset the CI check runs: the
// defended postures the gate protects plus the undefended control that
// proves the attacks have teeth.
func GateCells() []Cell {
	return []Cell{
		{PL: privacy.Moderate, Raid: raid.RAID5, Mislead: true, Cache: true, Hedge: false, Shards: 1},
		{PL: privacy.High, Raid: raid.RAID6, Mislead: true, Cache: false, Hedge: true, Shards: 1},
		{PL: privacy.Moderate, Raid: raid.RAID5, Mislead: true, Cache: true, Hedge: true, Shards: 4},
		{PL: privacy.Public, Raid: raid.RAID5, Mislead: false, Cache: false, Hedge: false, Shards: 1},
	}
}

// Sweep runs every cell at the given seed.
func Sweep(seed int64, cells []Cell) (*Frontier, error) {
	f := &Frontier{Schema: FrontierSchema, Seed: seed}
	for _, c := range cells {
		r, err := Run(Config{Seed: seed, Cell: c})
		if err != nil {
			return nil, fmt.Errorf("minecheck: cell %s: %w", c, err)
		}
		f.Cells = append(f.Cells, *r)
	}
	return f, nil
}

// Table renders the frontier as a GitHub-flavoured markdown table:
// worst-case (pooled-adversary) mining scores, the timing and placement
// side channels, and read throughput per cell.
func (f *Frontier) Table() string {
	var b strings.Builder
	b.WriteString("| Cell | Reg | Clu | Rule | NB | kNN | CoOwn F1 | Confusion | Shard corr | Reads/s |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|\n")
	for i := range f.Cells {
		r := &f.Cells[i]
		s := r.Scores
		fmt.Fprintf(&b, "| %s | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.0f |\n",
			r.Cell, s.RegressionPooled, s.ClusterPooled, s.RulePooled,
			s.NBPooled, s.KNNPooled, s.CoOwnershipF1, s.TenantConfusion,
			s.ShardCorrelation, r.OpsPerSec)
	}
	return b.String()
}
