// Package loadreport defines the JSON document cmd/cloudbench emits and
// cmd/benchjson merges into the BENCH_N.json trajectory. It lives in its
// own package so the producer and the consumer share one schema without
// either importing the other's main.
package loadreport

// Schema identifies the document format; bump on incompatible changes.
const Schema = "cloudbench/v1"

// Report is one cloudbench run: per-op and aggregate latency/throughput
// over the measured (post-warmup) window, plus a whole-run timeline.
type Report struct {
	Schema   string          `json:"schema"`
	Target   string          `json:"target"`
	Config   Config          `json:"config"`
	Ops      map[string]Op   `json:"ops"`
	Total    Op              `json:"total"`
	Timeline []TimelinePoint `json:"timeline"`
	Errors   int64           `json:"errors"`
}

// Config echoes the knobs that shaped the run, so a trajectory point is
// reproducible from its own record.
type Config struct {
	Workers      int    `json:"workers"`
	Tenants      int    `json:"tenants"`
	Keys         int    `json:"keys_per_tenant"`
	Providers    int    `json:"providers,omitempty"`    // in-process fleet only, per distributor
	Distributors int    `json:"distributors,omitempty"` // shard count (1 = single distributor)
	Mix          string `json:"mix"`
	Sizes        string `json:"sizes"`
	Duration     string `json:"duration"`
	Warmup       string `json:"warmup"`
	Seed         int64  `json:"seed"`
}

// Op is one operation class's measured-window summary. Latencies are
// milliseconds; rates are over the measured window.
type Op struct {
	Count   int64   `json:"count"`
	Errors  int64   `json:"errors"`
	Bytes   int64   `json:"bytes"`
	OpsPerS float64 `json:"ops_per_s"`
	MBPerS  float64 `json:"mb_per_s"`
	P50ms   float64 `json:"p50_ms"`
	P90ms   float64 `json:"p90_ms"`
	P99ms   float64 `json:"p99_ms"`
	P999ms  float64 `json:"p99_9_ms"`
	MaxMs   float64 `json:"max_ms"`
	MeanMs  float64 `json:"mean_ms"`
}

// TimelinePoint is one interval of the whole-run (warmup included)
// throughput series.
type TimelinePoint struct {
	TSec    float64 `json:"t_s"`
	OpsPerS float64 `json:"ops_per_s"`
	MBPerS  float64 `json:"mb_per_s"`
	Errors  int64   `json:"errors"`
}
