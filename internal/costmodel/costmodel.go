// Package costmodel accounts for the monetary side of the paper's
// trade-off: "It is wise to make a trade off between security and cost by
// providing regular data to cheaper providers while sensitive data to
// secured providers." It bills a fleet at per-cost-level $/GB-month rates
// and compares placement strategies (distributed with RAID parity versus
// a premium single provider).
package costmodel

import (
	"fmt"

	"repro/internal/provider"
)

// Bill is the monthly cost breakdown of a fleet.
type Bill struct {
	PerProvider map[string]float64
	Total       float64
	// BytesStored is the resident byte total across providers (including
	// parity overhead).
	BytesStored int64
}

// FleetBill computes the current monthly bill from resident bytes and each
// provider's cost level.
func FleetBill(fleet *provider.Fleet) (Bill, error) {
	if fleet == nil || fleet.Len() == 0 {
		return Bill{}, fmt.Errorf("costmodel: empty fleet")
	}
	b := Bill{PerProvider: make(map[string]float64, fleet.Len())}
	for i := 0; i < fleet.Len(); i++ {
		p, err := fleet.At(i)
		if err != nil {
			return Bill{}, err
		}
		u := p.Usage()
		gb := float64(u.BytesStored) / (1 << 30)
		cost := gb * p.Info().CL.DollarsPerGBMonth()
		b.PerProvider[p.Info().Name] = cost
		b.Total += cost
		b.BytesStored += u.BytesStored
	}
	return b, nil
}

// SingleProviderCost models the baseline: all bytes on one provider at the
// given cost level, no parity overhead.
func SingleProviderCost(bytes int64, cl int) float64 {
	gb := float64(bytes) / (1 << 30)
	return gb * costLevelDollars(cl)
}

func costLevelDollars(cl int) float64 {
	switch {
	case cl <= 0:
		return 0.05
	case cl == 1:
		return 0.08
	case cl == 2:
		return 0.11
	default:
		return 0.14
	}
}

// ParityOverhead returns the storage blow-up factor of a stripe
// configuration: (data+parity)/data.
func ParityOverhead(dataShards, parityShards int) (float64, error) {
	if dataShards < 1 || parityShards < 0 {
		return 0, fmt.Errorf("costmodel: %d data, %d parity shards", dataShards, parityShards)
	}
	return float64(dataShards+parityShards) / float64(dataShards), nil
}

// Comparison pits the distributed placement against the single-provider
// baseline for the same logical bytes.
type Comparison struct {
	DistributedMonthly float64
	SingleMonthly      float64
	// Ratio is distributed / single; < 1 means the distributed placement
	// is cheaper despite parity, because cheap providers absorb most data.
	Ratio float64
}

// Compare bills the fleet and a hypothetical premium single provider
// (cost level singleCL) holding logicalBytes.
func Compare(fleet *provider.Fleet, logicalBytes int64, singleCL int) (Comparison, error) {
	bill, err := FleetBill(fleet)
	if err != nil {
		return Comparison{}, err
	}
	single := SingleProviderCost(logicalBytes, singleCL)
	c := Comparison{DistributedMonthly: bill.Total, SingleMonthly: single}
	if single > 0 {
		c.Ratio = bill.Total / single
	}
	return c, nil
}
