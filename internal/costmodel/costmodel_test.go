package costmodel

import (
	"math"
	"testing"

	"repro/internal/privacy"
	"repro/internal/provider"
)

func TestFleetBill(t *testing.T) {
	cheap := provider.MustNew(provider.Info{Name: "cheap", PL: privacy.High, CL: 0}, provider.Options{})
	dear := provider.MustNew(provider.Info{Name: "dear", PL: privacy.High, CL: 3}, provider.Options{})
	fleet, _ := provider.NewFleet(cheap, dear)
	_ = cheap.Put("a", make([]byte, 1<<20)) // 1 MiB
	_ = dear.Put("b", make([]byte, 2<<20))  // 2 MiB

	bill, err := FleetBill(fleet)
	if err != nil {
		t.Fatal(err)
	}
	wantCheap := (1.0 / 1024) * 0.05
	wantDear := (2.0 / 1024) * 0.14
	if math.Abs(bill.PerProvider["cheap"]-wantCheap) > 1e-9 {
		t.Fatalf("cheap = %v, want %v", bill.PerProvider["cheap"], wantCheap)
	}
	if math.Abs(bill.PerProvider["dear"]-wantDear) > 1e-9 {
		t.Fatalf("dear = %v, want %v", bill.PerProvider["dear"], wantDear)
	}
	if math.Abs(bill.Total-(wantCheap+wantDear)) > 1e-9 {
		t.Fatalf("total = %v", bill.Total)
	}
	if bill.BytesStored != 3<<20 {
		t.Fatalf("bytes = %d", bill.BytesStored)
	}
}

func TestFleetBillEmpty(t *testing.T) {
	if _, err := FleetBill(nil); err == nil {
		t.Fatal("nil fleet accepted")
	}
	empty, _ := provider.NewFleet()
	if _, err := FleetBill(empty); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestSingleProviderCost(t *testing.T) {
	if got := SingleProviderCost(1<<30, 3); math.Abs(got-0.14) > 1e-9 {
		t.Fatalf("1 GiB at CL3 = %v", got)
	}
	if got := SingleProviderCost(0, 3); got != 0 {
		t.Fatalf("0 bytes = %v", got)
	}
	// Cost levels map to increasing rates.
	prev := 0.0
	for cl := 0; cl <= 3; cl++ {
		c := SingleProviderCost(1<<30, cl)
		if c <= prev {
			t.Fatalf("cost not increasing at CL%d", cl)
		}
		prev = c
	}
}

func TestParityOverhead(t *testing.T) {
	if got, err := ParityOverhead(4, 1); err != nil || math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("4+1 = %v, %v", got, err)
	}
	if got, _ := ParityOverhead(4, 2); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("4+2 = %v", got)
	}
	if got, _ := ParityOverhead(3, 0); got != 1 {
		t.Fatalf("no parity = %v", got)
	}
	if _, err := ParityOverhead(0, 1); err == nil {
		t.Fatal("0 data shards accepted")
	}
	if _, err := ParityOverhead(1, -1); err == nil {
		t.Fatal("negative parity accepted")
	}
}

func TestCompareDistributedVsSingle(t *testing.T) {
	// The paper's trade-off: scattering over cheap providers can beat a
	// premium single provider even with RAID-5 parity overhead.
	fleet, _ := provider.NewFleet(
		provider.MustNew(provider.Info{Name: "c0", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "c1", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "c2", PL: privacy.High, CL: 0}, provider.Options{}),
	)
	logical := int64(3 << 20)
	perProv := logical / 3
	overhead := int64(float64(perProv) / 2) // RAID5 over width 2 ≈ +50%/2
	for i, p := range fleet.All() {
		mem := p.(*provider.MemProvider)
		_ = mem.Put("data", make([]byte, perProv))
		if i == 0 {
			_ = mem.Put("parity", make([]byte, overhead))
		}
	}
	cmp, err := Compare(fleet, logical, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ratio >= 1 {
		t.Fatalf("distributed (%v) not cheaper than premium single (%v)", cmp.DistributedMonthly, cmp.SingleMonthly)
	}
	if cmp.DistributedMonthly <= 0 || cmp.SingleMonthly <= 0 {
		t.Fatalf("degenerate comparison: %+v", cmp)
	}
}
