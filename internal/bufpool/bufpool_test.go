package bufpool

import (
	"sync"
	"testing"
)

func TestGetLengthAndCapacity(t *testing.T) {
	for _, n := range []int{1, 7, 511, 512, 513, 4096, 64 << 10, 1 << 20, 1<<20 + 1, 0, -3} {
		b := Get(n)
		want := n
		if n < 0 {
			want = 0
		}
		if len(b) != want {
			t.Fatalf("Get(%d): len=%d", n, len(b))
		}
		Put(b)
	}
}

func TestRecycleKeepsClassCapacity(t *testing.T) {
	// A recycled buffer must always be able to serve the full class size
	// it is stored under, regardless of the length it was Put at.
	b := Get(1000) // 1024-class
	Put(b[:13])    // cap still 1024
	c := Get(1024)
	if cap(c) < 1024 {
		t.Fatalf("recycled buffer cap=%d, class needs 1024", cap(c))
	}
}

func TestPutForeignBuffers(t *testing.T) {
	Put(nil)
	Put(make([]byte, 3))     // below min class: dropped
	Put(make([]byte, 2<<20)) // above max class: dropped
	Put(make([]byte, 700))   // non-power-of-two cap: floor class 512
	b := Get(512)
	if len(b) != 512 {
		t.Fatalf("len=%d after foreign Put", len(b))
	}
}

func TestConcurrentUse(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := 512 + int(seed)*137 + i
				b := Get(n)
				for j := range b {
					b[j] = seed
				}
				for j := range b {
					if b[j] != seed {
						t.Errorf("buffer raced")
						return
					}
				}
				Put(b)
			}
		}(byte(g))
	}
	wg.Wait()
}

func BenchmarkGetPut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(16 << 10)
		buf[0] = 1
		Put(buf)
	}
}
