// Package bufpool provides size-classed byte-buffer pooling for the
// data plane. The distributor's hot paths (chunk padding, parity
// buffers, reconstruction scratch) allocate short-lived buffers whose
// sizes repeat heavily — one pool per power-of-two size class lets
// those buffers recycle across requests instead of churning the GC.
//
// Ownership rules (see DESIGN.md §8):
//
//   - Get returns a buffer of exactly the requested length; its tail
//     (up to capacity) and its contents are NOT zeroed. Callers that
//     need zeroed padding must clear it themselves.
//   - Put hands the buffer back; the caller must not retain any alias.
//     Buffers whose bytes escape to a client or are stored in a live
//     table must never be Put.
//   - Put is always safe to skip — an un-Put buffer is ordinary garbage.
//   - Put accepts any buffer (pooled or not); wrong-sized ones are
//     dropped, so callers need not track provenance.
package bufpool

import (
	"math/bits"
	"sync"
)

const (
	// minBits..maxBits bound the pooled size classes: 512 B .. 1 MiB.
	// Smaller buffers are cheaper to allocate than to pool; larger ones
	// are rare (chunk sizes top out at 64 KiB) and would pin memory.
	minBits = 9
	maxBits = 20
)

var classes [maxBits - minBits + 1]sync.Pool

// class returns the pool index whose buffers have capacity 2^(minBits+i),
// and that capacity, for the smallest class holding n bytes. ok is false
// when n is outside the pooled range.
func class(n int) (idx, size int, ok bool) {
	if n <= 0 || n > 1<<maxBits {
		return 0, 0, false
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n), 0 for n==1
	if b < minBits {
		b = minBits
	}
	return b - minBits, 1 << b, true
}

// Get returns a buffer with len(b) == n from the matching size class,
// falling back to a plain allocation for out-of-range sizes. Contents
// are undefined.
func Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	idx, size, ok := class(n)
	if !ok {
		return make([]byte, n)
	}
	if v := classes[idx].Get(); v != nil {
		return (*v.(*[]byte))[:n]
	}
	return make([]byte, n, size)
}

// Put recycles b into the size class its capacity fills. Buffers too
// small or too large for any class are dropped. The caller must not use
// b (or any alias of it) afterwards.
func Put(b []byte) {
	c := cap(b)
	if c < 1<<minBits || c > 1<<maxBits {
		return
	}
	// Floor class: the largest class size ≤ cap, so every buffer stored
	// in a class can serve that class's full size.
	idx := bits.Len(uint(c)) - 1 - minBits
	if idx < 0 {
		return
	}
	if idx >= len(classes) {
		idx = len(classes) - 1
	}
	b = b[:1<<(idx+minBits)]
	classes[idx].Put(&b)
}
