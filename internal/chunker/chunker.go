// Package chunker implements the paper's fragmentation step: splitting a
// client file into fixed-size chunks whose size is dictated by the file's
// privacy level ("The chunk size is fixed for a particular privilege
// level. The higher the privilege level, the lower the chunk size."), and
// reassembling chunks back into the file. Each chunk carries a checksum so
// retrieval can detect provider corruption.
package chunker

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/privacy"
)

// Chunk is one fragment of a file, identified within the file by its
// serial number (the paper's "sl no." — the chunk's position in the file).
type Chunk struct {
	Serial int
	Data   []byte
	// Sum is the SHA-256 of Data, computed at split time.
	Sum [32]byte
	// Level is inherited from the parent file ("each chunk having the same
	// privacy level of the parent file").
	Level privacy.Level
}

// ErrCorrupt is returned when a chunk's payload no longer matches its
// checksum.
var ErrCorrupt = errors.New("chunker: chunk checksum mismatch")

// ErrMissing is returned by Reassemble when serials are absent.
var ErrMissing = errors.New("chunker: missing chunk")

// Split fragments data into chunks of the size configured for level. The
// final chunk may be shorter. An empty file yields a single empty chunk so
// zero-byte files round-trip.
func Split(data []byte, level privacy.Level, policy privacy.ChunkSizePolicy) ([]Chunk, error) {
	size, err := policy.Size(level)
	if err != nil {
		return nil, err
	}
	return SplitSize(data, size, level)
}

// SplitSize fragments data into chunks of exactly size bytes (last one
// may be shorter).
func SplitSize(data []byte, size int, level privacy.Level) ([]Chunk, error) {
	if size <= 0 {
		return nil, fmt.Errorf("chunker: chunk size %d must be positive", size)
	}
	n := (len(data) + size - 1) / size
	if n == 0 {
		n = 1
	}
	chunks := make([]Chunk, 0, n)
	for i := 0; i < n; i++ {
		lo := i * size
		hi := lo + size
		if hi > len(data) {
			hi = len(data)
		}
		// Chunk buffers come from the data-plane pool: chunk sizes are
		// fixed per privacy level, so they recycle perfectly. Callers that
		// finish with a chunk may bufpool.Put its Data; callers that hand
		// the bytes onward simply let the GC take them.
		payload := bufpool.Get(hi - lo)
		copy(payload, data[lo:hi])
		chunks = append(chunks, Chunk{
			Serial: i,
			Data:   payload,
			Sum:    sha256.Sum256(payload),
			Level:  level,
		})
	}
	return chunks, nil
}

// Verify checks a chunk's payload against its checksum.
func (c *Chunk) Verify() error {
	if sha256.Sum256(c.Data) != c.Sum {
		return fmt.Errorf("%w: serial %d", ErrCorrupt, c.Serial)
	}
	return nil
}

// Reassemble restores the original file from chunks. Chunks may arrive in
// any order; duplicate serials must agree; every serial 0..max must be
// present. Each chunk is checksum-verified.
func Reassemble(chunks []Chunk) ([]byte, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("%w: no chunks", ErrMissing)
	}
	bySerial := make(map[int]*Chunk, len(chunks))
	maxSerial := -1
	for i := range chunks {
		c := &chunks[i]
		if err := c.Verify(); err != nil {
			return nil, err
		}
		if prev, ok := bySerial[c.Serial]; ok {
			if !bytes.Equal(prev.Data, c.Data) {
				return nil, fmt.Errorf("chunker: conflicting duplicates for serial %d", c.Serial)
			}
			continue
		}
		bySerial[c.Serial] = c
		if c.Serial > maxSerial {
			maxSerial = c.Serial
		}
	}
	var out bytes.Buffer
	for s := 0; s <= maxSerial; s++ {
		c, ok := bySerial[s]
		if !ok {
			return nil, fmt.Errorf("%w: serial %d", ErrMissing, s)
		}
		out.Write(c.Data)
	}
	return out.Bytes(), nil
}

// CountChunks predicts how many chunks Split will produce — the number the
// distributor notifies the client of ("The total number of chunks for each
// file is notified to the client").
func CountChunks(fileSize int, level privacy.Level, policy privacy.ChunkSizePolicy) (int, error) {
	size, err := policy.Size(level)
	if err != nil {
		return 0, err
	}
	if fileSize <= 0 {
		return 1, nil
	}
	return (fileSize + size - 1) / size, nil
}
