package chunker

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/privacy"
)

func TestSplitSizes(t *testing.T) {
	data := make([]byte, 100)
	chunks, err := SplitSize(data, 30, privacy.Low)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 {
		t.Fatalf("chunks = %d, want 4", len(chunks))
	}
	for i, c := range chunks {
		if c.Serial != i {
			t.Fatalf("serial[%d] = %d", i, c.Serial)
		}
		if c.Level != privacy.Low {
			t.Fatalf("level = %v", c.Level)
		}
	}
	if len(chunks[3].Data) != 10 {
		t.Fatalf("last chunk = %d bytes, want 10", len(chunks[3].Data))
	}
}

func TestSplitSizeValidation(t *testing.T) {
	if _, err := SplitSize([]byte("x"), 0, privacy.Public); err == nil {
		t.Fatal("size 0 should error")
	}
	if _, err := SplitSize([]byte("x"), -1, privacy.Public); err == nil {
		t.Fatal("negative size should error")
	}
}

func TestSplitEmptyFile(t *testing.T) {
	chunks, err := SplitSize(nil, 10, privacy.High)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 || len(chunks[0].Data) != 0 {
		t.Fatalf("empty file → %d chunks, first %d bytes", len(chunks), len(chunks[0].Data))
	}
	got, err := Reassemble(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("reassembled %d bytes", len(got))
	}
}

func TestSplitUsesPolicyLevels(t *testing.T) {
	policy := privacy.DefaultChunkSizes()
	data := make([]byte, 100<<10) // 100 KiB
	pub, err := Split(data, privacy.Public, policy)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Split(data, privacy.High, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(high) <= len(pub) {
		t.Fatalf("PL3 produced %d chunks, PL0 %d — sensitive data must split smaller", len(high), len(pub))
	}
}

func TestSplitCopiesData(t *testing.T) {
	data := []byte("hello world")
	chunks, _ := SplitSize(data, 5, privacy.Public)
	data[0] = 'X'
	if chunks[0].Data[0] != 'h' {
		t.Fatal("chunk aliases caller's buffer")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	chunks, _ := SplitSize([]byte("sensitive payload"), 8, privacy.High)
	if err := chunks[0].Verify(); err != nil {
		t.Fatal(err)
	}
	chunks[0].Data[0] ^= 0xFF
	if err := chunks[0].Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	chunks, _ := SplitSize(data, 7, privacy.Low)
	// Shuffle deterministically.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
	got, err := Reassemble(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestReassembleMissingChunk(t *testing.T) {
	chunks, _ := SplitSize(make([]byte, 50), 10, privacy.Public)
	broken := append(chunks[:2:2], chunks[3:]...) // drop serial 2
	if _, err := Reassemble(broken); !errors.Is(err, ErrMissing) {
		t.Fatalf("err = %v, want ErrMissing", err)
	}
}

func TestReassembleEmptyInput(t *testing.T) {
	if _, err := Reassemble(nil); !errors.Is(err, ErrMissing) {
		t.Fatalf("err = %v, want ErrMissing", err)
	}
}

func TestReassembleCorruptChunk(t *testing.T) {
	chunks, _ := SplitSize([]byte("abcdefghij"), 3, privacy.Public)
	chunks[1].Data[0] ^= 1
	if _, err := Reassemble(chunks); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReassembleAgreeingDuplicates(t *testing.T) {
	data := []byte("duplicate tolerant reassembly")
	chunks, _ := SplitSize(data, 6, privacy.Low)
	dup := append(chunks, chunks[0]) // replica of serial 0 (RAID mirrors do this)
	got, err := Reassemble(dup)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestReassembleConflictingDuplicates(t *testing.T) {
	chunks, _ := SplitSize([]byte("abcdef"), 3, privacy.Low)
	evil := chunks[0]
	evil.Data = []byte("zzz")
	evil.Sum = sum256(evil.Data)
	if _, err := Reassemble(append(chunks, evil)); err == nil {
		t.Fatal("conflicting duplicates must error")
	}
}

func sum256(b []byte) [32]byte {
	c, _ := SplitSize(b, len(b)+1, privacy.Public)
	return c[0].Sum
}

func TestCountChunks(t *testing.T) {
	policy := privacy.DefaultChunkSizes()
	n, err := CountChunks(100<<10, privacy.Public, policy)
	if err != nil {
		t.Fatal(err)
	}
	chunks, _ := Split(make([]byte, 100<<10), privacy.Public, policy)
	if n != len(chunks) {
		t.Fatalf("CountChunks = %d, actual = %d", n, len(chunks))
	}
	n, _ = CountChunks(0, privacy.Public, policy)
	if n != 1 {
		t.Fatalf("empty file count = %d, want 1", n)
	}
}

func TestCountChunksBadPolicy(t *testing.T) {
	if _, err := CountChunks(10, privacy.Public, privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{}}); err == nil {
		t.Fatal("empty policy should error")
	}
}

// Property: Split → Reassemble is the identity for arbitrary payloads and
// chunk sizes.
func TestSplitReassembleRoundTripProperty(t *testing.T) {
	f := func(data []byte, sizeSeed uint8) bool {
		size := int(sizeSeed)%64 + 1
		chunks, err := SplitSize(data, size, privacy.Moderate)
		if err != nil {
			return false
		}
		got, err := Reassemble(chunks)
		if err != nil {
			return false
		}
		if data == nil {
			return len(got) == 0
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: total bytes across chunks equals the file size, and all but the
// last chunk are exactly the configured size.
func TestSplitSizesInvariantProperty(t *testing.T) {
	f := func(n uint16, sizeSeed uint8) bool {
		size := int(sizeSeed)%128 + 1
		data := make([]byte, int(n)%5000)
		chunks, err := SplitSize(data, size, privacy.Low)
		if err != nil {
			return false
		}
		total := 0
		for i, c := range chunks {
			total += len(c.Data)
			if i < len(chunks)-1 && len(c.Data) != size {
				return false
			}
		}
		return total == len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
