package chunker

import (
	"bytes"
	"testing"

	"repro/internal/privacy"
)

// FuzzSplitReassemble fuzzes the fragmentation round trip.
func FuzzSplitReassemble(f *testing.F) {
	f.Add([]byte("hello world"), 5)
	f.Add([]byte{}, 1)
	f.Add(bytes.Repeat([]byte{0xFF}, 300), 7)
	f.Fuzz(func(t *testing.T, data []byte, size int) {
		if size <= 0 || size > 1<<20 {
			return
		}
		chunks, err := SplitSize(data, size, privacy.Moderate)
		if err != nil {
			t.Fatalf("split: %v", err)
		}
		got, err := Reassemble(chunks)
		if err != nil {
			t.Fatalf("reassemble: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
	})
}
