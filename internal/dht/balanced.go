package dht

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count BalancedRing members use when
// callers have no reason to pick another: enough points that the largest
// member arc stays within a few percent of fair share even on tiny
// rings, cheap enough that an 8-member ring is ~1k sorted points.
const DefaultVNodes = 128

// BalancedRing is the consistent-hash partition the sharded data plane
// routes on. A plain Ring places each member at a single point of the
// identifier circle, so a small ring carries brutal arc-size variance —
// with 4 members the largest arc is routinely 2-3x fair share, and which
// member draws the long straw depends on nothing but its name's hash. A
// BalancedRing places every member at vnodes points instead and routes a
// key to the member owning its successor point, flattening ownership to
// near-uniform while keeping the property that matters for scaling:
// membership change moves only the arcs adjacent to the changed member's
// points, ≈1/n of the keyspace.
//
// It deliberately has no finger tables — routing is a local binary
// search, not a multi-hop Chord lookup — because the shard router always
// knows the full membership.
type BalancedRing struct {
	mu     sync.RWMutex
	vnodes int
	names  []string // join order
	points []vpoint // sorted by id
}

// vpoint is one virtual position; member indexes into names.
type vpoint struct {
	id     uint64
	member int
}

// vnodeID places virtual replica v of a member. The NUL separator keeps
// a member literally named "a\x00#1" from colliding with a's replicas.
func vnodeID(name string, v int) uint64 {
	return HashID(fmt.Sprintf("%s\x00#%d", name, v))
}

// NewBalancedRing builds a ring with vnodes virtual points per member
// (DefaultVNodes if vnodes <= 0). Duplicate names are rejected.
func NewBalancedRing(vnodes int, names ...string) (*BalancedRing, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	b := &BalancedRing{vnodes: vnodes}
	for _, n := range names {
		if err := b.Join(n); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Join adds a member at vnodes points of the circle.
func (b *BalancedRing) Join(name string) error {
	if name == "" {
		return errors.New("dht: empty node name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, n := range b.names {
		if n == name {
			return fmt.Errorf("dht: node %q already joined", name)
		}
	}
	member := len(b.names)
	b.names = append(b.names, name)
	for v := 0; v < b.vnodes; v++ {
		b.points = append(b.points, vpoint{id: vnodeID(name, v), member: member})
	}
	sort.Slice(b.points, func(i, j int) bool { return b.points[i].id < b.points[j].id })
	return nil
}

// Leave removes a member; its arcs shift to the next point's owner.
func (b *BalancedRing) Leave(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	member := -1
	for i, n := range b.names {
		if n == name {
			member = i
			break
		}
	}
	if member == -1 {
		return fmt.Errorf("dht: node %q not in ring", name)
	}
	b.names = append(b.names[:member], b.names[member+1:]...)
	kept := b.points[:0]
	for _, p := range b.points {
		if p.member == member {
			continue
		}
		if p.member > member {
			p.member--
		}
		kept = append(kept, p)
	}
	b.points = kept
	return nil
}

// Size returns the member count.
func (b *BalancedRing) Size() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.names)
}

// Members returns member names in join order.
func (b *BalancedRing) Members() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]string(nil), b.names...)
}

// Successor returns the member owning key.
func (b *BalancedRing) Successor(key uint64) (string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(b.points) == 0 {
		return "", ErrEmptyRing
	}
	i := sort.Search(len(b.points), func(i int) bool { return b.points[i].id >= key })
	if i == len(b.points) {
		i = 0
	}
	return b.names[b.points[i].member], nil
}

// OwnershipHistogram counts how many of n sampled keys land on each
// member — the balance metric the vnode count exists to flatten.
func (b *BalancedRing) OwnershipHistogram(nKeys int) (map[string]int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(b.points) == 0 {
		return nil, ErrEmptyRing
	}
	hist := make(map[string]int, len(b.names))
	for _, n := range b.names {
		hist[n] = 0
	}
	for i := 0; i < nKeys; i++ {
		key := HashID(fmt.Sprintf("sample-key-%d", i))
		j := sort.Search(len(b.points), func(j int) bool { return b.points[j].id >= key })
		if j == len(b.points) {
			j = 0
		}
		hist[b.names[b.points[j].member]]++
	}
	return hist, nil
}
