package dht

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sync"

	"repro/internal/chunker"
	"repro/internal/privacy"
	"repro/internal/provider"
)

// ClientDistributor is the paper's §IV-C alternative architecture: the
// distributor logic lives inside the client, a downloaded provider list
// seeds a hash ring, and each ⟨filename, serial⟩ maps to a provider via
// consistent hashing. "Client will also have to maintain a Chunk Table
// for his chunks. This approach has some limitations. Client will require
// some memory where the tables will reside." — that memory is this
// struct.
type ClientDistributor struct {
	mu     sync.Mutex
	ring   *Ring
	fleet  *provider.Fleet
	policy privacy.ChunkSizePolicy
	// chunkTable is the client-resident table: filename → per-serial
	// records.
	chunkTable map[string][]clientChunk
}

type clientChunk struct {
	Provider string
	Key      string
	Sum      [32]byte
	Len      int
}

// NewClientDistributor seeds the ring from the fleet's provider names
// (the paper's "downloadable list of Cloud Providers").
func NewClientDistributor(fleet *provider.Fleet, policy privacy.ChunkSizePolicy) (*ClientDistributor, error) {
	if fleet == nil || fleet.Len() == 0 {
		return nil, fmt.Errorf("dht: empty fleet")
	}
	if len(policy.SizeByLevel) == 0 {
		policy = privacy.DefaultChunkSizes()
	}
	names := make([]string, fleet.Len())
	for i := 0; i < fleet.Len(); i++ {
		p, err := fleet.At(i)
		if err != nil {
			return nil, err
		}
		names[i] = p.Info().Name
	}
	ring, err := NewRing(names...)
	if err != nil {
		return nil, err
	}
	return &ClientDistributor{
		ring:       ring,
		fleet:      fleet,
		policy:     policy,
		chunkTable: make(map[string][]clientChunk),
	}, nil
}

// Ring exposes the underlying hash ring (for inspection and benches).
func (c *ClientDistributor) Ring() *Ring { return c.ring }

// Upload splits the file client-side and ships each chunk to the provider
// the ring assigns it.
func (c *ClientDistributor) Upload(filename string, data []byte, pl privacy.Level) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.chunkTable[filename]; dup {
		return 0, fmt.Errorf("dht: file %q already uploaded", filename)
	}
	chunks, err := chunker.Split(data, pl, c.policy)
	if err != nil {
		return 0, err
	}
	records := make([]clientChunk, len(chunks))
	for i, ch := range chunks {
		owner, err := c.ring.Successor(ChunkKey(filename, ch.Serial))
		if err != nil {
			return 0, err
		}
		p, _, err := c.fleet.ByName(owner)
		if err != nil {
			return 0, err
		}
		key := fmt.Sprintf("%016x", ChunkKey(filename, ch.Serial))
		if err := p.Put(key, ch.Data); err != nil {
			return 0, fmt.Errorf("dht: put chunk %d on %s: %w", ch.Serial, owner, err)
		}
		records[i] = clientChunk{Provider: owner, Key: key, Sum: ch.Sum, Len: len(ch.Data)}
	}
	c.chunkTable[filename] = records
	return len(chunks), nil
}

// GetFile fetches and reassembles a file via ring lookups.
func (c *ClientDistributor) GetFile(filename string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	records, ok := c.chunkTable[filename]
	if !ok {
		return nil, fmt.Errorf("dht: unknown file %q", filename)
	}
	var out bytes.Buffer
	for serial, rec := range records {
		p, _, err := c.fleet.ByName(rec.Provider)
		if err != nil {
			return nil, err
		}
		data, err := p.Get(rec.Key)
		if err != nil {
			return nil, fmt.Errorf("dht: chunk %d from %s: %w", serial, rec.Provider, err)
		}
		if sha256.Sum256(data) != rec.Sum {
			return nil, fmt.Errorf("dht: chunk %d checksum mismatch", serial)
		}
		out.Write(data)
	}
	return out.Bytes(), nil
}

// Remove deletes a file's chunks and its table entry.
func (c *ClientDistributor) Remove(filename string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	records, ok := c.chunkTable[filename]
	if !ok {
		return fmt.Errorf("dht: unknown file %q", filename)
	}
	for serial, rec := range records {
		p, _, err := c.fleet.ByName(rec.Provider)
		if err != nil {
			return err
		}
		if err := p.Delete(rec.Key); err != nil {
			return fmt.Errorf("dht: delete chunk %d: %w", serial, err)
		}
	}
	delete(c.chunkTable, filename)
	return nil
}

// TableBytes estimates the client-side memory the paper warns about: the
// size of the resident chunk table.
func (c *ClientDistributor) TableBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for name, records := range c.chunkTable {
		total += len(name)
		for _, r := range records {
			total += len(r.Provider) + len(r.Key) + len(r.Sum) + 8
		}
	}
	return total
}
