package dht

import (
	"errors"
	"fmt"
	"testing"
)

func balancedOf(t *testing.T, vnodes, n int) *BalancedRing {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node-%03d", i)
	}
	b, err := NewBalancedRing(vnodes, names...)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBalancedRingValidation(t *testing.T) {
	if _, err := NewBalancedRing(8, "a", "a"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewBalancedRing(8, ""); err == nil {
		t.Fatal("empty name accepted")
	}
	b, err := NewBalancedRing(0, "a")
	if err != nil {
		t.Fatal(err)
	}
	if b.vnodes != DefaultVNodes {
		t.Fatalf("vnodes = %d, want DefaultVNodes", b.vnodes)
	}
}

func TestBalancedRingEmptyErrors(t *testing.T) {
	b, _ := NewBalancedRing(8)
	if _, err := b.Successor(5); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.OwnershipHistogram(5); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("err = %v", err)
	}
}

func TestBalancedRingSuccessorDeterministic(t *testing.T) {
	b := balancedOf(t, DefaultVNodes, 4)
	key := FileKey("alice", "report.pdf")
	o1, err := b.Successor(key)
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := b.Successor(key)
	if o1 != o2 {
		t.Fatal("successor not deterministic")
	}
	// Membership order must not change the partition: shard identity is
	// the name, not the join sequence.
	rev, err := NewBalancedRing(DefaultVNodes, "node-003", "node-002", "node-001", "node-000")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := FileKey("alice", fmt.Sprintf("f-%d", i))
		a, _ := b.Successor(k)
		c, _ := rev.Successor(k)
		if a != c {
			t.Fatalf("join order changed ownership of key %d: %s vs %s", i, a, c)
		}
	}
}

func TestBalancedRingOwnershipNearUniform(t *testing.T) {
	// The reason BalancedRing exists: a 4-member single-point ring
	// routinely gives its luckiest member 2-3x fair share. With
	// DefaultVNodes the largest share must stay within 25% of fair —
	// across several disjoint member-name sets, not one lucky draw.
	const keys = 20000
	for trial := 0; trial < 4; trial++ {
		names := make([]string, 4)
		for i := range names {
			names[i] = fmt.Sprintf("http://127.0.0.1:%d", 10000+trial*100+i)
		}
		b, err := NewBalancedRing(DefaultVNodes, names...)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := b.OwnershipHistogram(keys)
		if err != nil {
			t.Fatal(err)
		}
		fair := float64(keys) / float64(len(names))
		for name, got := range hist {
			if ratio := float64(got) / fair; ratio > 1.25 || ratio < 0.75 {
				t.Errorf("trial %d: %s owns %.2fx fair share (%d/%d keys)", trial, name, ratio, got, keys)
			}
		}
	}
}

func TestBalancedRingJoinLeaveMovesOnlyOwnKeys(t *testing.T) {
	b := balancedOf(t, 64, 6)
	keys := make([]uint64, 2000)
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = HashID(fmt.Sprintf("key-%d", i))
		before[i], _ = b.Successor(keys[i])
	}

	victim := "node-002"
	if err := b.Leave(victim); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range keys {
		after, _ := b.Successor(keys[i])
		if before[i] == victim {
			if after == victim {
				t.Fatalf("key %d still on departed node", i)
			}
			moved++
			continue
		}
		if after != before[i] {
			t.Fatalf("key %d moved from %s to %s though %s left", i, before[i], after, victim)
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys — test is vacuous")
	}
	if err := b.Leave(victim); err == nil {
		t.Fatal("double leave accepted")
	}

	// Rejoining restores the exact pre-leave partition.
	if err := b.Join(victim); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		after, _ := b.Successor(keys[i])
		if after != before[i] {
			t.Fatalf("key %d not restored after rejoin: %s vs %s", i, after, before[i])
		}
	}
}

func TestBalancedRingJoinMovesBoundedShare(t *testing.T) {
	// Growing n -> n+1 members must move roughly 1/(n+1) of the keys and
	// only onto the new member.
	b := balancedOf(t, DefaultVNodes, 4)
	const keys = 10000
	before := make([]string, keys)
	for i := range before {
		before[i], _ = b.Successor(HashID(fmt.Sprintf("key-%d", i)))
	}
	if err := b.Join("node-new"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range before {
		after, _ := b.Successor(HashID(fmt.Sprintf("key-%d", i)))
		if after == before[i] {
			continue
		}
		if after != "node-new" {
			t.Fatalf("key %d moved to %s, not the joining member", i, after)
		}
		moved++
	}
	frac := float64(moved) / keys
	if frac < 0.10 || frac > 0.30 {
		t.Fatalf("join moved %.1f%% of keys, want ~20%%", 100*frac)
	}
}

func TestBalancedRingMembers(t *testing.T) {
	b := balancedOf(t, 8, 3)
	got := b.Members()
	want := []string{"node-000", "node-001", "node-002"}
	if len(got) != len(want) {
		t.Fatalf("members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members = %v, want join order %v", got, want)
		}
	}
	if b.Size() != 3 {
		t.Fatalf("Size = %d", b.Size())
	}
	if err := b.Leave("node-001"); err != nil {
		t.Fatal(err)
	}
	got = b.Members()
	if len(got) != 2 || got[0] != "node-000" || got[1] != "node-002" {
		t.Fatalf("members after leave = %v", got)
	}
}
