// Package dht implements the Chord-style consistent-hash ring the paper
// proposes for pushing the Cloud Data Distributor into the client
// (§IV-C): "the Cloud Data Distributor can be implemented at client side
// by using CAN or CHORD like hash tables that will map each
// ⟨filename, chunk Sl⟩ pair to a Cloud Provider."
//
// Nodes (providers) own arcs of a 64-bit identifier circle; keys map to
// their clockwise successor. Each node keeps a finger table for O(log n)
// lookups; Lookup reports hop counts so the benchmarks can reproduce the
// classic Chord scaling curve.
package dht

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ringBits is the identifier-space width.
const ringBits = 64

// ErrEmptyRing is returned by lookups on a ring with no nodes.
var ErrEmptyRing = errors.New("dht: ring has no nodes")

// HashID maps an arbitrary name into the identifier circle.
func HashID(name string) uint64 {
	sum := sha256.Sum256([]byte(name))
	return binary.BigEndian.Uint64(sum[:8])
}

// ChunkKey derives the ring key of the paper's ⟨filename, serial⟩ pair.
func ChunkKey(filename string, serial int) uint64 {
	return HashID(fmt.Sprintf("%s#%d", filename, serial))
}

// FileKey derives the ring key of a ⟨client, filename⟩ pair — the unit
// the sharded data plane routes on. Every operation on one file of one
// client lands on a single owning distributor, so per-file generation
// counters and placement state never straddle shards. The NUL separator
// keeps distinct pairs from colliding by concatenation ("ab"+"c" vs
// "a"+"bc").
func FileKey(client, filename string) uint64 {
	return HashID(client + "\x00" + filename)
}

// node is one ring participant.
type node struct {
	id   uint64
	name string
	// fingers[i] is the first node ≥ id + 2^i on the circle.
	fingers [ringBits]int // index into Ring.nodes, rebuilt on change
}

// Ring is a Chord-style ring. It is safe for concurrent use.
type Ring struct {
	mu    sync.RWMutex
	nodes []*node // sorted by id
}

// NewRing builds a ring with the given member names (e.g. provider
// names). Duplicate names are rejected.
func NewRing(names ...string) (*Ring, error) {
	r := &Ring{}
	for _, n := range names {
		if err := r.Join(n); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Join adds a member.
func (r *Ring) Join(name string) error {
	if name == "" {
		return errors.New("dht: empty node name")
	}
	id := HashID(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.nodes {
		if n.name == name {
			return fmt.Errorf("dht: node %q already joined", name)
		}
		if n.id == id {
			return fmt.Errorf("dht: id collision between %q and %q", n.name, name)
		}
	}
	r.nodes = append(r.nodes, &node{id: id, name: name})
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i].id < r.nodes[j].id })
	r.rebuildFingers()
	return nil
}

// Leave removes a member (e.g. a provider going out of business); keys it
// owned shift to its successor, exactly the consistent-hashing property
// the paper wants for provider churn.
func (r *Ring) Leave(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, n := range r.nodes {
		if n.name == name {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			r.rebuildFingers()
			return nil
		}
	}
	return fmt.Errorf("dht: node %q not in ring", name)
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Members returns node names ordered by ring position.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.name
	}
	return out
}

// rebuildFingers recomputes every node's finger table. Callers hold r.mu.
func (r *Ring) rebuildFingers() {
	n := len(r.nodes)
	if n == 0 {
		return
	}
	for _, nd := range r.nodes {
		for b := 0; b < ringBits; b++ {
			target := nd.id + (uint64(1) << b) // wraps mod 2^64 naturally
			nd.fingers[b] = r.successorIndex(target)
		}
	}
}

// successorIndex returns the index of the first node with id >= target
// (wrapping). Callers hold r.mu (read or write).
func (r *Ring) successorIndex(target uint64) int {
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= target })
	if i == len(r.nodes) {
		return 0
	}
	return i
}

// Successor returns the member owning key.
func (r *Ring) Successor(key uint64) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.nodes) == 0 {
		return "", ErrEmptyRing
	}
	return r.nodes[r.successorIndex(key)].name, nil
}

// LookupResult reports a routed lookup.
type LookupResult struct {
	Owner string
	Hops  int
	Path  []string
}

// Lookup routes from a start node to the key's owner using finger tables
// (closest-preceding-finger routing), returning the hop count — the
// O(log n) metric the Chord paper reports and our DHT bench reproduces.
func (r *Ring) Lookup(start string, key uint64) (LookupResult, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.nodes) == 0 {
		return LookupResult{}, ErrEmptyRing
	}
	cur := -1
	for i, n := range r.nodes {
		if n.name == start {
			cur = i
			break
		}
	}
	if cur == -1 {
		return LookupResult{}, fmt.Errorf("dht: start node %q not in ring", start)
	}
	ownerIdx := r.successorIndex(key)
	res := LookupResult{Path: []string{r.nodes[cur].name}}
	for cur != ownerIdx {
		// If the owner is our immediate successor, one hop finishes.
		succ := (cur + 1) % len(r.nodes)
		if succ == ownerIdx {
			cur = succ
		} else {
			next := r.closestPrecedingFinger(cur, key)
			if next == cur { // no progress possible: step to successor
				next = succ
			}
			cur = next
		}
		res.Hops++
		res.Path = append(res.Path, r.nodes[cur].name)
		if res.Hops > len(r.nodes)+ringBits {
			return res, fmt.Errorf("dht: routing loop for key %d", key)
		}
	}
	res.Owner = r.nodes[ownerIdx].name
	return res, nil
}

// closestPrecedingFinger finds cur's finger that most closely precedes
// key. Callers hold r.mu.
func (r *Ring) closestPrecedingFinger(cur int, key uint64) int {
	nd := r.nodes[cur]
	for b := ringBits - 1; b >= 0; b-- {
		f := nd.fingers[b]
		if f == cur {
			continue
		}
		if inOpenInterval(nd.id, r.nodes[f].id, key) {
			return f
		}
	}
	return cur
}

// inOpenInterval reports whether x ∈ (a, b) on the circle.
func inOpenInterval(a, x, b uint64) bool {
	if a < b {
		return a < x && x < b
	}
	if a > b {
		return x > a || x < b
	}
	return false // a == b: empty interval
}

// OwnershipHistogram counts how many of n sampled keys land on each
// member — the load-balance metric for the client-side variant.
func (r *Ring) OwnershipHistogram(nKeys int) (map[string]int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.nodes) == 0 {
		return nil, ErrEmptyRing
	}
	hist := make(map[string]int, len(r.nodes))
	for _, nd := range r.nodes {
		hist[nd.name] = 0
	}
	for i := 0; i < nKeys; i++ {
		key := HashID(fmt.Sprintf("sample-key-%d", i))
		hist[r.nodes[r.successorIndex(key)].name]++
	}
	return hist, nil
}
