package dht

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/privacy"
	"repro/internal/provider"
)

func ringOf(t *testing.T, n int) *Ring {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node-%03d", i)
	}
	r, err := NewRing(names...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing("a", "a"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewRing(""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestSuccessorConsistency(t *testing.T) {
	r := ringOf(t, 10)
	key := HashID("some-key")
	owner1, err := r.Successor(key)
	if err != nil {
		t.Fatal(err)
	}
	owner2, _ := r.Successor(key)
	if owner1 != owner2 {
		t.Fatal("successor not deterministic")
	}
}

func TestEmptyRingErrors(t *testing.T) {
	r, _ := NewRing()
	if _, err := r.Successor(5); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.Lookup("x", 5); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.OwnershipHistogram(5); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinLeaveMovesOnlyOwnKeys(t *testing.T) {
	// Consistent hashing: removing one node only remaps the keys it
	// owned; all other assignments are untouched.
	r := ringOf(t, 12)
	keys := make([]uint64, 500)
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = HashID(fmt.Sprintf("key-%d", i))
		before[i], _ = r.Successor(keys[i])
	}
	victim := "node-004"
	if err := r.Leave(victim); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		after, _ := r.Successor(keys[i])
		if before[i] != victim && after != before[i] {
			t.Fatalf("key %d moved from %s to %s though %s left", i, before[i], after, victim)
		}
		if before[i] == victim && after == victim {
			t.Fatalf("key %d still on departed node", i)
		}
	}
	if err := r.Leave(victim); err == nil {
		t.Fatal("double leave accepted")
	}
}

func TestMembersOrderedByRingPosition(t *testing.T) {
	r := ringOf(t, 8)
	members := r.Members()
	if len(members) != 8 {
		t.Fatalf("members = %d", len(members))
	}
	for i := 1; i < len(members); i++ {
		if HashID(members[i-1]) >= HashID(members[i]) {
			t.Fatal("members not ordered by id")
		}
	}
	if r.Size() != 8 {
		t.Fatalf("Size = %d", r.Size())
	}
}

func TestLookupFindsOwner(t *testing.T) {
	r := ringOf(t, 20)
	members := r.Members()
	for i := 0; i < 100; i++ {
		key := HashID(fmt.Sprintf("lookup-key-%d", i))
		owner, _ := r.Successor(key)
		res, err := r.Lookup(members[i%len(members)], key)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner != owner {
			t.Fatalf("lookup owner %s != successor %s", res.Owner, owner)
		}
		if res.Path[len(res.Path)-1] != owner && res.Hops > 0 {
			t.Fatalf("path does not end at owner: %v", res.Path)
		}
	}
}

func TestLookupFromUnknownNode(t *testing.T) {
	r := ringOf(t, 3)
	if _, err := r.Lookup("ghost", 42); err == nil {
		t.Fatal("unknown start accepted")
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	// Chord's O(log n): mean hops for 256 nodes should stay well under
	// the linear bound and within a small multiple of log2(n).
	r := ringOf(t, 256)
	members := r.Members()
	totalHops := 0
	trials := 400
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < trials; i++ {
		key := HashID(fmt.Sprintf("hop-key-%d", i))
		start := members[rng.Intn(len(members))]
		res, err := r.Lookup(start, key)
		if err != nil {
			t.Fatal(err)
		}
		totalHops += res.Hops
	}
	mean := float64(totalHops) / float64(trials)
	logN := math.Log2(256)
	if mean > 3*logN {
		t.Fatalf("mean hops %.2f > 3·log2(n) = %.2f", mean, 3*logN)
	}
}

func TestOwnershipHistogramBalanced(t *testing.T) {
	r := ringOf(t, 32)
	hist, err := r.OwnershipHistogram(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 32 {
		t.Fatalf("hist has %d entries", len(hist))
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != 20_000 {
		t.Fatalf("total = %d", total)
	}
}

func TestChunkKeyDistinct(t *testing.T) {
	k1 := ChunkKey("file1", 0)
	k2 := ChunkKey("file1", 1)
	k3 := ChunkKey("file2", 0)
	if k1 == k2 || k1 == k3 || k2 == k3 {
		t.Fatal("chunk keys collide on trivial inputs")
	}
	if k1 != ChunkKey("file1", 0) {
		t.Fatal("chunk key not deterministic")
	}
}

func TestInOpenInterval(t *testing.T) {
	if !inOpenInterval(1, 5, 10) || inOpenInterval(1, 1, 10) || inOpenInterval(1, 10, 10) {
		t.Fatal("plain interval wrong")
	}
	// Wrapped interval (a > b).
	if !inOpenInterval(100, 5, 10) || !inOpenInterval(100, 200, 10) || inOpenInterval(100, 50, 10) {
		t.Fatal("wrapped interval wrong")
	}
	if inOpenInterval(7, 7, 7) || inOpenInterval(7, 3, 7) {
		t.Fatal("empty interval wrong")
	}
}

// Property: lookups from every start node agree on the owner.
func TestLookupAgreementProperty(t *testing.T) {
	r := ringOf(t, 17)
	members := r.Members()
	f := func(seed int64) bool {
		key := uint64(seed)
		want, err := r.Successor(key)
		if err != nil {
			return false
		}
		for _, start := range members {
			res, err := r.Lookup(start, key)
			if err != nil || res.Owner != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func dhtFleet(t *testing.T, n int) *provider.Fleet {
	t.Helper()
	fleet, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p := provider.MustNew(provider.Info{
			Name: fmt.Sprintf("prov-%02d", i), PL: privacy.High, CL: 0,
		}, provider.Options{})
		if err := fleet.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	return fleet
}

func TestClientDistributorRoundTrip(t *testing.T) {
	fleet := dhtFleet(t, 6)
	cd, err := NewClientDistributor(fleet, privacy.ChunkSizePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 150_000)
	rng.Read(data)
	n, err := cd.Upload("big.bin", data, privacy.Moderate)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("chunks = %d", n)
	}
	got, err := cd.GetFile("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	// Chunks actually scattered across more than one provider.
	used := 0
	for _, p := range fleet.All() {
		if p.Len() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("chunks on %d providers, want spread", used)
	}
	if cd.TableBytes() == 0 {
		t.Fatal("client table reports zero memory")
	}
	if err := cd.Remove("big.bin"); err != nil {
		t.Fatal(err)
	}
	for _, p := range fleet.All() {
		if p.Len() != 0 {
			t.Fatalf("provider %s still holds chunks", p.Info().Name)
		}
	}
	if _, err := cd.GetFile("big.bin"); err == nil {
		t.Fatal("get after remove succeeded")
	}
}

func TestClientDistributorValidation(t *testing.T) {
	if _, err := NewClientDistributor(nil, privacy.ChunkSizePolicy{}); err == nil {
		t.Fatal("nil fleet accepted")
	}
	fleet := dhtFleet(t, 3)
	cd, _ := NewClientDistributor(fleet, privacy.ChunkSizePolicy{})
	if _, err := cd.Upload("f", []byte("x"), privacy.Low); err != nil {
		t.Fatal(err)
	}
	if _, err := cd.Upload("f", []byte("y"), privacy.Low); err == nil {
		t.Fatal("duplicate upload accepted")
	}
	if err := cd.Remove("ghost"); err == nil {
		t.Fatal("removing unknown file accepted")
	}
}

func TestClientDistributorDetectsCorruption(t *testing.T) {
	fleet := dhtFleet(t, 4)
	cd, _ := NewClientDistributor(fleet, privacy.ChunkSizePolicy{})
	if _, err := cd.Upload("f", bytes.Repeat([]byte{7}, 50_000), privacy.Low); err != nil {
		t.Fatal(err)
	}
	// Corrupt one stored chunk.
	for _, p := range fleet.All() {
		keys := p.Keys()
		if len(keys) == 0 {
			continue
		}
		_ = p.Put(keys[0], []byte("tampered"))
		break
	}
	if _, err := cd.GetFile("f"); err == nil {
		t.Fatal("corruption not detected")
	}
}
