package dht

import (
	"fmt"
	"math"
	"testing"
)

// ringOfSize builds a ring of n deterministically named nodes.
func ringOfSize(t *testing.T, n int) *Ring {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%03d", i)
	}
	r, err := NewRing(names...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// owners maps nKeys deterministic chunk keys to their current owner.
func owners(t *testing.T, r *Ring, nKeys int) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string, nKeys)
	for i := 0; i < nKeys; i++ {
		key := ChunkKey(fmt.Sprintf("file-%05d", i), i%7)
		o, err := r.Successor(key)
		if err != nil {
			t.Fatal(err)
		}
		out[key] = o
	}
	return out
}

// movedFraction counts keys whose owner differs between two snapshots.
func movedFraction(before, after map[uint64]string) float64 {
	moved := 0
	for k, o := range before {
		if after[k] != o {
			moved++
		}
	}
	return float64(moved) / float64(len(before))
}

// TestRebalanceOnJoinLeave is the consistent-hashing contract the shard
// router depends on: when the ring grows from n to n+1 nodes, only
// ~1/(n+1) of the keyspace changes owner (and symmetrically on leave) —
// not the wholesale reshuffle a mod-N scheme would cause. With a single
// hash point per node the per-node arc sizes vary, so the bound is a
// generous multiple of the expectation, but far below the reshuffle
// regime; and keys that do move must move to/from exactly the node that
// joined/left.
func TestRebalanceOnJoinLeave(t *testing.T) {
	const nKeys = 4000
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			r := ringOfSize(t, n)
			before := owners(t, r, nKeys)

			joined := "joiner"
			if err := r.Join(joined); err != nil {
				t.Fatal(err)
			}
			after := owners(t, r, nKeys)
			frac := movedFraction(before, after)
			expect := 1.0 / float64(n+1)
			if frac > 6*expect {
				t.Fatalf("join moved %.1f%% of keys; expected ≈%.1f%% (bound %.1f%%)",
					100*frac, 100*expect, 100*6*expect)
			}
			for k, o := range before {
				if after[k] != o && after[k] != joined {
					t.Fatalf("key %d moved %s→%s, but only %q joined", k, o, after[k], joined)
				}
			}

			// Leave restores the exact prior ownership map.
			if err := r.Leave(joined); err != nil {
				t.Fatal(err)
			}
			restored := owners(t, r, nKeys)
			for k, o := range before {
				if restored[k] != o {
					t.Fatalf("leave did not restore key %d: %s vs %s", k, restored[k], o)
				}
			}

			// Leaving an original member moves only that member's keys,
			// again ≈1/n of the space.
			victim, err := r.Successor(ChunkKey("victim-pick", 0))
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Leave(victim); err != nil {
				t.Fatal(err)
			}
			afterLeave := owners(t, r, nKeys)
			frac = movedFraction(before, afterLeave)
			if frac > 6.0/float64(n) {
				t.Fatalf("leave moved %.1f%% of keys; bound %.1f%%", 100*frac, 100*6.0/float64(n))
			}
			for k, o := range before {
				if afterLeave[k] != o && o != victim {
					t.Fatalf("key %d owned by %s moved although %s left", k, o, victim)
				}
			}
		})
	}
}

// TestLookupHopsLogN checks the routed-lookup cost stays O(log n)
// across ring sizes: the mean over many (start, key) pairs must be
// within a small constant of log2(n), and no single lookup may exceed
// the Chord worst case by more than a constant factor.
func TestLookupHopsLogN(t *testing.T) {
	const nKeys = 1500
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			r := ringOfSize(t, n)
			members := r.Members()
			logN := math.Log2(float64(n))
			var total, worst int
			for i := 0; i < nKeys; i++ {
				start := members[i%len(members)]
				res, err := r.Lookup(start, ChunkKey(fmt.Sprintf("hopfile-%05d", i), 0))
				if err != nil {
					t.Fatal(err)
				}
				total += res.Hops
				if res.Hops > worst {
					worst = res.Hops
				}
			}
			mean := float64(total) / float64(nKeys)
			if mean > logN+2 {
				t.Fatalf("mean hops %.2f exceeds log2(%d)+2 = %.2f", mean, n, logN+2)
			}
			if worst > int(2*logN)+3 {
				t.Fatalf("worst-case hops %d exceeds 2·log2(%d)+3 = %d", worst, n, int(2*logN)+3)
			}
		})
	}
}

// TestFileKeySeparation pins the routing key's injectivity property:
// the client/filename boundary is part of the hash input, so moving a
// byte across it produces a different key.
func TestFileKeySeparation(t *testing.T) {
	if FileKey("ab", "c") == FileKey("a", "bc") {
		t.Fatal("client/filename boundary not separated")
	}
	if FileKey("alice", "f") == FileKey("bob", "f") {
		t.Fatal("same filename for different clients must not collide")
	}
	if FileKey("alice", "f") != FileKey("alice", "f") {
		t.Fatal("FileKey must be deterministic")
	}
}
