package metrics

import (
	"math/bits"
	"time"
)

// Histogram is an HDR-style log-linear latency histogram: values are
// binned into power-of-two groups, each split into 2^subBucketBits
// linear sub-buckets, so every recorded value lands in a bucket whose
// width is at most 1/2^subBucketBits of the value. Quantiles are read
// back from bucket midpoints with bounded (~1.6%) relative error at any
// magnitude, in O(buckets) time and O(buckets) constant memory — no
// sample reservoir, no sorting, no coordinated per-value allocation.
//
// A Histogram is not safe for concurrent use; concurrent recorders keep
// one each and Merge them when done.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

// subBucketBits fixes the linear resolution inside each power-of-two
// group: 2^6 = 64 sub-buckets, ≤1.6% relative bucket width.
const subBucketBits = 6

const subBucketCount = 1 << subBucketBits

// histBuckets covers all of int64: values below subBucketCount are
// exact, and the highest group index for 2^62-ish values stays in range.
const histBuckets = (64 - subBucketBits) << subBucketBits

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets)}
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subBucketCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1
	shift := e - subBucketBits
	return ((shift + 1) << subBucketBits) + int((v>>shift)&(subBucketCount-1))
}

// bucketMid returns the representative (midpoint) value of a bucket.
func bucketMid(idx int) int64 {
	if idx < 2*subBucketCount {
		return int64(idx)
	}
	shift := idx>>subBucketBits - 1
	base := int64(subBucketCount+idx&(subBucketCount-1)) << shift
	return base + (int64(1)<<shift)/2
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
}

// RecordDuration adds one observation in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Merge folds o into h; o is unchanged.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact arithmetic mean of the recorded values.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the value at quantile q ∈ [0, 1]: the smallest
// bucket midpoint such that at least ⌈q·count⌉ observations are at or
// below its bucket, clamped into [Min, Max] so bucket rounding never
// reports a latency outside the observed range.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank >= h.total {
		return h.max
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// HistogramSnapshot is a point-in-time percentile summary.
type HistogramSnapshot struct {
	Count uint64
	Min   int64
	Max   int64
	Mean  float64
	P50   int64
	P90   int64
	P99   int64
	P999  int64
}

// Snapshot summarizes the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}
