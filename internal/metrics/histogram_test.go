package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram: %+v", h.Snapshot())
	}
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %d", h.Quantile(0.5))
	}
}

func TestHistogramSmallValuesAreExact(t *testing.T) {
	h := NewHistogram()
	// Values below 2·subBucketCount land in width-1 buckets.
	for v := int64(0); v < 128; v++ {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != 127 || h.Count() != 128 {
		t.Fatalf("min/max/count = %d/%d/%d", h.Min(), h.Max(), h.Count())
	}
	if got := h.Quantile(0.5); got != 63 {
		t.Fatalf("p50 = %d, want 63 (lower median of 0..127)", got)
	}
	if got := h.Quantile(1); got != 127 {
		t.Fatalf("p100 = %d, want 127", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %d, want 0", got)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative record: min=%d max=%d count=%d", h.Min(), h.Max(), h.Count())
	}
}

// TestHistogramQuantileError checks the advertised relative error bound
// against exact order statistics over several magnitudes.
func TestHistogramQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, latency-shaped.
		v := int64(math.Exp(rng.Float64()*14) * 1000)
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(q*float64(len(vals))+0.5) - 1
		exact := vals[rank]
		got := h.Quantile(q)
		if relErr := math.Abs(float64(got-exact)) / float64(exact); relErr > 0.02 {
			t.Fatalf("q=%v: got %d, exact %d, rel err %.4f > 2%%", q, got, exact, relErr)
		}
	}
}

func TestHistogramQuantilesMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	for i := 0; i < 5000; i++ {
		h.Record(rng.Int63n(1_000_000_000))
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %d < previous %d", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("p100 = %d, max = %d", h.Quantile(1), h.Max())
	}
}

func TestHistogramMergeMatchesCombinedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b, both := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 0; i < 4000; i++ {
		v := rng.Int63n(50_000_000)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(b)
	a.Merge(nil)
	a.Merge(NewHistogram())
	if a.Count() != both.Count() || a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatalf("merge count/min/max mismatch: %+v vs %+v", a.Snapshot(), both.Snapshot())
	}
	if a.Mean() != both.Mean() {
		t.Fatalf("merge mean = %v, want %v", a.Mean(), both.Mean())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("q=%v: merged %d, combined %d", q, a.Quantile(q), both.Quantile(q))
		}
	}
}

func TestHistogramSnapshotAndDuration(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.RecordDuration(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
		t.Fatalf("snapshot not ordered: %+v", s)
	}
	want := float64(499500) * float64(time.Millisecond) / 1000
	if math.Abs(s.Mean-want) > 1e-6*want {
		t.Fatalf("mean = %v, want %v", s.Mean, want)
	}
}

func TestHistogramExtremeValues(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(math.MaxInt64)
	if h.Min() != 0 || h.Max() != math.MaxInt64 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("p100 = %d", got)
	}
}
