package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandIndexIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2}
	ri, err := RandIndex(a, a)
	if err != nil || ri != 1 {
		t.Fatalf("ri=%v err=%v", ri, err)
	}
}

func TestRandIndexRelabelInvariant(t *testing.T) {
	a := []int{0, 0, 1, 1}
	b := []int{5, 5, 9, 9} // same partition, different labels
	ri, err := RandIndex(a, b)
	if err != nil || ri != 1 {
		t.Fatalf("ri=%v err=%v", ri, err)
	}
}

func TestRandIndexDisagreement(t *testing.T) {
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	ri, _ := RandIndex(a, b)
	// pairs: (01)s-d,(02)d-s,(03)d-d,(12)d-d,(13)d-s,(23)s-d → agree 2/6
	if math.Abs(ri-2.0/6.0) > 1e-12 {
		t.Fatalf("ri = %v, want 1/3", ri)
	}
}

func TestRandIndexErrors(t *testing.T) {
	if _, err := RandIndex([]int{1}, []int{1, 2}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
	ri, err := RandIndex([]int{3}, []int{8})
	if err != nil || ri != 1 {
		t.Fatalf("singleton ri=%v err=%v", ri, err)
	}
}

func TestAdjustedRandIndexIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	ari, err := AdjustedRandIndex(a, a)
	if err != nil || math.Abs(ari-1) > 1e-12 {
		t.Fatalf("ari=%v err=%v", ari, err)
	}
}

func TestAdjustedRandIndexRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 400
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(4)
		b[i] = rng.Intn(4)
	}
	ari, err := AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari) > 0.05 {
		t.Fatalf("ari = %v, want ~0 for independent labels", ari)
	}
}

func TestAdjustedRandIndexMismatch(t *testing.T) {
	if _, err := AdjustedRandIndex([]int{1}, []int{1, 2}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestClusterMigrations(t *testing.T) {
	a := []int{0, 0, 1, 1}
	got, err := ClusterMigrations(a, a)
	if err != nil || got != 0 {
		t.Fatalf("got=%d err=%v", got, err)
	}
	b := []int{0, 1, 1, 1} // item 1 moved from cluster with 0 to cluster with 2,3
	got, _ = ClusterMigrations(a, b)
	// changed pairs: (0,1) together→apart, (1,2) apart→together, (1,3) apart→together = 3
	if got != 3 {
		t.Fatalf("migrations = %d, want 3", got)
	}
	if _, err := ClusterMigrations([]int{1}, []int{1, 2}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestMigratedItems(t *testing.T) {
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 1, 1}
	got, err := MigratedItems(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// items 0,1,2,3 all touch a changed pair
	if got != 4 {
		t.Fatalf("migrated items = %d, want 4", got)
	}
	same, _ := MigratedItems(a, a)
	if same != 0 {
		t.Fatalf("identical partitions migrated %d", same)
	}
	if _, err := MigratedItems([]int{1}, []int{}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	r, err := Pearson(x, y)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("r=%v err=%v", r, err)
	}
	yneg := []float64{8, 6, 4, 2}
	r, _ = Pearson(x, yneg)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
	flat := []float64{5, 5, 5, 5}
	r, _ = Pearson(x, flat)
	if r != 0 {
		t.Fatalf("r = %v, want 0 for zero variance", r)
	}
	if _, err := Pearson(x, []float64{1}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Pearson(nil, nil); !errors.Is(err, ErrMismatch) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestCopheneticCorrelation(t *testing.T) {
	a := [][]float64{{0, 1, 4}, {1, 0, 4}, {4, 4, 0}}
	r, err := CopheneticCorrelation(a, a)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("r=%v err=%v", r, err)
	}
	if _, err := CopheneticCorrelation(a, [][]float64{{0}}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
	bad := [][]float64{{0, 1}, {1, 0}, {0, 0}}
	if _, err := CopheneticCorrelation(bad, bad); !errors.Is(err, ErrMismatch) {
		t.Fatalf("non-square err = %v", err)
	}
	one := [][]float64{{0}}
	r, err = CopheneticCorrelation(one, one)
	if err != nil || r != 1 {
		t.Fatalf("1x1: r=%v err=%v", r, err)
	}
}

func TestMeanAbs(t *testing.T) {
	if MeanAbs(nil) != 0 {
		t.Fatal("MeanAbs(nil) != 0")
	}
	if got := MeanAbs([]float64{-3, 3}); got != 3 {
		t.Fatalf("MeanAbs = %v", got)
	}
}

func TestPurity(t *testing.T) {
	pred := []int{0, 0, 0, 1, 1, 1}
	truth := []int{7, 7, 8, 9, 9, 9}
	p, err := Purity(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-5.0/6.0) > 1e-12 {
		t.Fatalf("purity = %v, want 5/6", p)
	}
	if _, err := Purity(nil, nil); !errors.Is(err, ErrMismatch) {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := Purity([]int{1}, []int{1, 2}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("mismatch err = %v", err)
	}
}

// Property: RandIndex is symmetric and within [0,1]; ARI ≤ 1.
func TestIndicesBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		r1, e1 := RandIndex(a, b)
		r2, e2 := RandIndex(b, a)
		if e1 != nil || e2 != nil || r1 != r2 || r1 < 0 || r1 > 1 {
			return false
		}
		ari, err := AdjustedRandIndex(a, b)
		if err != nil || ari > 1+1e-12 {
			return false
		}
		ariBA, _ := AdjustedRandIndex(b, a)
		return math.Abs(ari-ariBA) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ClusterMigrations(a,b) = (1 - RandIndex) * nPairs.
func TestMigrationsRandIndexRelationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(3)
			b[i] = rng.Intn(3)
		}
		ri, _ := RandIndex(a, b)
		mig, _ := ClusterMigrations(a, b)
		pairs := n * (n - 1) / 2
		return math.Abs(float64(mig)-(1-ri)*float64(pairs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
