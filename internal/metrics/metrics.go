// Package metrics provides the evaluation statistics the benchmarks use to
// quantify mining success and clustering agreement: Rand / adjusted Rand
// index, cluster-migration counts, cophenetic correlation, and basic error
// measures. These turn the paper's visual "entities moved between
// clusters" argument (Figs. 4–6) into numbers. It also provides the
// HDR-style latency histogram (histogram.go) the load harness uses for
// percentile reporting.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// ErrMismatch is returned when paired inputs disagree in length.
var ErrMismatch = errors.New("metrics: input length mismatch")

// RandIndex measures agreement between two clusterings of the same items
// in [0, 1]; 1 means identical partitions.
func RandIndex(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrMismatch, len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 1, nil
	}
	agree := 0
	total := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameA := a[i] == a[j]
			sameB := b[i] == b[j]
			if sameA == sameB {
				agree++
			}
			total++
		}
	}
	return float64(agree) / float64(total), nil
}

// AdjustedRandIndex corrects RandIndex for chance; 1 = identical,
// ~0 = random relabelling, negative = worse than chance.
func AdjustedRandIndex(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrMismatch, len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 1, nil
	}
	// Contingency table.
	table := map[[2]int]int{}
	rowSum := map[int]int{}
	colSum := map[int]int{}
	for i := 0; i < n; i++ {
		table[[2]int{a[i], b[i]}]++
		rowSum[a[i]]++
		colSum[b[i]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumIJ, sumI, sumJ float64
	for _, v := range table {
		sumIJ += choose2(v)
	}
	for _, v := range rowSum {
		sumI += choose2(v)
	}
	for _, v := range colSum {
		sumJ += choose2(v)
	}
	totalPairs := choose2(n)
	expected := sumI * sumJ / totalPairs
	maxIdx := (sumI + sumJ) / 2
	if maxIdx == expected {
		return 1, nil
	}
	return (sumIJ - expected) / (maxIdx - expected), nil
}

// ClusterMigrations counts items whose co-clustering relationships changed:
// the number of item pairs clustered together in a but apart in b, plus
// pairs apart in a but together in b. It is the paper's "many entities have
// moved from their original cluster" made exact.
func ClusterMigrations(a, b []int) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrMismatch, len(a), len(b))
	}
	moved := 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			if (a[i] == a[j]) != (b[i] == b[j]) {
				moved++
			}
		}
	}
	return moved, nil
}

// MigratedItems counts items involved in at least one changed pair — a
// per-entity version of ClusterMigrations closer to reading a dendrogram.
func MigratedItems(a, b []int) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrMismatch, len(a), len(b))
	}
	touched := make([]bool, len(a))
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			if (a[i] == a[j]) != (b[i] == b[j]) {
				touched[i] = true
				touched[j] = true
			}
		}
	}
	c := 0
	for _, t := range touched {
		if t {
			c++
		}
	}
	return c, nil
}

// Pearson computes the Pearson correlation coefficient of two equal-length
// series; used for cophenetic correlation between dendrograms.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrMismatch, len(x), len(y))
	}
	n := float64(len(x))
	if n == 0 {
		return 0, fmt.Errorf("%w: empty series", ErrMismatch)
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// CopheneticCorrelation compares two full cophenetic distance matrices
// (same item set) by correlating their upper triangles. Near 1 means the
// dendrograms encode the same structure; fragmentation drives it down.
func CopheneticCorrelation(a, b [][]float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d items", ErrMismatch, len(a), len(b))
	}
	var xs, ys []float64
	for i := range a {
		if len(a[i]) != len(a) || len(b[i]) != len(b) {
			return 0, fmt.Errorf("%w: non-square cophenetic matrix", ErrMismatch)
		}
		for j := i + 1; j < len(a); j++ {
			xs = append(xs, a[i][j])
			ys = append(ys, b[i][j])
		}
	}
	if len(xs) == 0 {
		return 1, nil
	}
	return Pearson(xs, ys)
}

// MeanAbs returns the mean absolute value of a series.
func MeanAbs(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s / float64(len(x))
}

// Purity measures how well predicted clusters match true groups: the
// fraction of items in each predicted cluster belonging to that cluster's
// majority true group, weighted by cluster size.
func Purity(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrMismatch, len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("%w: empty clustering", ErrMismatch)
	}
	byCluster := map[int]map[int]int{}
	for i, c := range pred {
		if byCluster[c] == nil {
			byCluster[c] = map[int]int{}
		}
		byCluster[c][truth[i]]++
	}
	correct := 0
	for _, dist := range byCluster {
		best := 0
		for _, cnt := range dist {
			if cnt > best {
				best = cnt
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred)), nil
}
