package provider

import "sync"

// Hooked wraps a Provider with observation/abort hooks on the data plane.
// Unlike SetOutage — which makes Down() report the outage so the fleet's
// eligibility filter hides the provider from placement — a Hooked failure
// is silent: the provider still claims to be up while its operations
// fail. That is exactly the misbehavior the distributor's health tracker
// exists to catch, so tests and simulations use Hooked to stage
// mid-upload faults and sustained silent outages.
type Hooked struct {
	Provider

	mu        sync.Mutex
	puts      int
	beforePut func(n int, key string) error
	beforeGet func(key string) error
}

// NewHooked wraps p.
func NewHooked(p Provider) *Hooked { return &Hooked{Provider: p} }

// SetBeforePut installs fn, called before every Put with the 1-based
// ordinal of that Put on this provider; a non-nil return aborts the Put
// with that error before anything is stored. nil removes the hook.
func (h *Hooked) SetBeforePut(fn func(n int, key string) error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.beforePut = fn
}

// SetBeforeGet installs fn, called before every Get; a non-nil return
// aborts the Get with that error. nil removes the hook.
func (h *Hooked) SetBeforeGet(fn func(key string) error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.beforeGet = fn
}

// Puts returns how many Put calls reached this provider (aborted or not).
func (h *Hooked) Puts() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.puts
}

// Put counts the call, consults the hook, then delegates.
func (h *Hooked) Put(key string, data []byte) error {
	h.mu.Lock()
	h.puts++
	n := h.puts
	fn := h.beforePut
	h.mu.Unlock()
	if fn != nil {
		if err := fn(n, key); err != nil {
			return err
		}
	}
	return h.Provider.Put(key, data)
}

// Get consults the hook, then delegates.
func (h *Hooked) Get(key string) ([]byte, error) {
	h.mu.Lock()
	fn := h.beforeGet
	h.mu.Unlock()
	if fn != nil {
		if err := fn(key); err != nil {
			return nil, err
		}
	}
	return h.Provider.Get(key)
}
