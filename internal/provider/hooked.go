package provider

import (
	"errors"
	"sync"
)

// ErrSilentDrop, returned by a before-delete hook, makes the Hooked
// provider report success WITHOUT delegating — the blob stays on disk
// while the caller believes it is gone. That models a real storage
// misbehavior (a provider acking deletes it never applies) and is the
// knob simulation harnesses use to prove their orphan-blob oracle has
// teeth: a dropped delete must surface as an unexplained orphan.
var ErrSilentDrop = errors.New("provider: operation silently dropped")

// Hooked wraps a Provider with observation/abort hooks on the data plane.
// Unlike SetOutage — which makes Down() report the outage so the fleet's
// eligibility filter hides the provider from placement — a Hooked failure
// is silent: the provider still claims to be up while its operations
// fail. That is exactly the misbehavior the distributor's health tracker
// exists to catch, so tests and simulations use Hooked to stage
// mid-upload faults, sustained silent outages, byte corruption and
// network partitions.
//
// Ordering per operation: the before-hook runs first (it observes every
// attempt, even ones the partition will swallow), then the partition
// gate, then the delegate. The Get transform runs last, on the
// delegate's result.
type Hooked struct {
	Provider

	mu           sync.Mutex
	puts         int
	partitioned  bool
	beforePut    func(n int, key string) error
	beforeGet    func(key string) error
	transformGet func(key string, data []byte) []byte
	beforeDelete func(key string) error
	beforeList   func() error
}

// NewHooked wraps p.
func NewHooked(p Provider) *Hooked { return &Hooked{Provider: p} }

// SetBeforePut installs fn, called before every Put with the 1-based
// ordinal of that Put on this provider; a non-nil return aborts the Put
// with that error before anything is stored. nil removes the hook.
func (h *Hooked) SetBeforePut(fn func(n int, key string) error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.beforePut = fn
}

// SetBeforeGet installs fn, called before every Get; a non-nil return
// aborts the Get with that error. nil removes the hook.
func (h *Hooked) SetBeforeGet(fn func(key string) error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.beforeGet = fn
}

// SetTransformGet installs fn, applied to every successful Get result
// before it reaches the caller — the corruption hook. fn receives a
// private copy of the stored bytes and may mutate it in place or return
// a replacement (same-length mutations model silent bit rot; the stored
// blob itself is untouched). nil removes the hook.
func (h *Hooked) SetTransformGet(fn func(key string, data []byte) []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.transformGet = fn
}

// SetBeforeDelete installs fn, called before every Delete; a non-nil
// return aborts the Delete with that error — except ErrSilentDrop, which
// makes the Delete report success without removing anything (see
// ErrSilentDrop). nil removes the hook.
func (h *Hooked) SetBeforeDelete(fn func(key string) error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.beforeDelete = fn
}

// SetBeforeList installs fn, called before every Keys listing; a non-nil
// return makes Keys return nil — the provider hides its inventory, the
// failure mode that turns an orphan audit blind. nil removes the hook.
func (h *Hooked) SetBeforeList(fn func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.beforeList = fn
}

// SetPartitioned toggles a silent network partition: every data-plane
// operation (Put/Get/Delete/Keys) fails with ErrOutage while Down() keeps
// reporting the provider as up, so placement still tries it and only the
// health tracker can learn the truth.
func (h *Hooked) SetPartitioned(v bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.partitioned = v
}

// Partitioned reports whether the silent partition is active.
func (h *Hooked) Partitioned() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.partitioned
}

// Puts returns how many Put calls reached this provider (aborted or not).
func (h *Hooked) Puts() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.puts
}

// Put counts the call, consults the hook and partition gate, then
// delegates.
func (h *Hooked) Put(key string, data []byte) error {
	h.mu.Lock()
	h.puts++
	n := h.puts
	fn := h.beforePut
	cut := h.partitioned
	h.mu.Unlock()
	if fn != nil {
		if err := fn(n, key); err != nil {
			return err
		}
	}
	if cut {
		return ErrOutage
	}
	return h.Provider.Put(key, data)
}

// Get consults the hook and partition gate, delegates, then applies the
// corruption transform to the result.
func (h *Hooked) Get(key string) ([]byte, error) {
	h.mu.Lock()
	fn := h.beforeGet
	tf := h.transformGet
	cut := h.partitioned
	h.mu.Unlock()
	if fn != nil {
		if err := fn(key); err != nil {
			return nil, err
		}
	}
	if cut {
		return nil, ErrOutage
	}
	data, err := h.Provider.Get(key)
	if err != nil {
		return nil, err
	}
	if tf != nil {
		data = tf(key, data)
	}
	return data, nil
}

// Delete consults the hook and partition gate, then delegates. A hook
// returning ErrSilentDrop acks the delete without performing it.
func (h *Hooked) Delete(key string) error {
	h.mu.Lock()
	fn := h.beforeDelete
	cut := h.partitioned
	h.mu.Unlock()
	if fn != nil {
		if err := fn(key); err != nil {
			if errors.Is(err, ErrSilentDrop) {
				return nil
			}
			return err
		}
	}
	if cut {
		return ErrOutage
	}
	return h.Provider.Delete(key)
}

// Keys consults the hook and partition gate, then delegates. A failing
// hook or an active partition yields nil — an empty inventory, exactly
// what a scrubber or auditor would see from an unreachable provider.
func (h *Hooked) Keys() []string {
	h.mu.Lock()
	fn := h.beforeList
	cut := h.partitioned
	h.mu.Unlock()
	if fn != nil {
		if err := fn(); err != nil {
			return nil
		}
	}
	if cut {
		return nil
	}
	return h.Provider.Keys()
}
