package provider

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/privacy"
)

func newHookedMem(t *testing.T) *Hooked {
	t.Helper()
	p, err := New(Info{Name: "hp", PL: privacy.High, CL: 0}, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return NewHooked(p)
}

func TestHookedBeforeDelete(t *testing.T) {
	h := newHookedMem(t)
	if err := h.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	boom := errors.New("boom")
	h.SetBeforeDelete(func(key string) error {
		if key != "k" {
			t.Errorf("hook saw key %q, want k", key)
		}
		return boom
	})
	if err := h.Delete("k"); !errors.Is(err, boom) {
		t.Fatalf("Delete err = %v, want injected boom", err)
	}
	if _, err := h.Get("k"); err != nil {
		t.Fatalf("blob should survive an aborted delete: %v", err)
	}
	h.SetBeforeDelete(nil)
	if err := h.Delete("k"); err != nil {
		t.Fatalf("Delete after hook removal: %v", err)
	}
}

func TestHookedSilentDropDelete(t *testing.T) {
	h := newHookedMem(t)
	if err := h.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	h.SetBeforeDelete(func(string) error { return ErrSilentDrop })
	if err := h.Delete("k"); err != nil {
		t.Fatalf("silently dropped delete must report success, got %v", err)
	}
	if _, err := h.Get("k"); err != nil {
		t.Fatalf("silently dropped delete must leave the blob in place: %v", err)
	}
}

func TestHookedBeforeList(t *testing.T) {
	h := newHookedMem(t)
	for i := 0; i < 3; i++ {
		if err := h.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	h.SetBeforeList(func() error { return errors.New("listing refused") })
	if keys := h.Keys(); keys != nil {
		t.Fatalf("Keys under a failing list hook = %v, want nil", keys)
	}
	h.SetBeforeList(nil)
	if keys := h.Keys(); len(keys) != 3 {
		t.Fatalf("Keys after hook removal = %v, want 3 entries", keys)
	}
}

func TestHookedTransformGetCorruptsResultNotStore(t *testing.T) {
	h := newHookedMem(t)
	orig := []byte("payload-bytes")
	if err := h.Put("k", orig); err != nil {
		t.Fatalf("Put: %v", err)
	}
	h.SetTransformGet(func(key string, data []byte) []byte {
		data[0] ^= 0xff // same-length silent bit rot
		return data
	})
	got, err := h.Get("k")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("transform did not corrupt the served bytes")
	}
	if len(got) != len(orig) {
		t.Fatalf("corruption changed length: %d != %d", len(got), len(orig))
	}
	h.SetTransformGet(nil)
	got, err = h.Get("k")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("stored blob was mutated by the transform; Get must hand the hook a private copy")
	}
}

func TestHookedPartition(t *testing.T) {
	h := newHookedMem(t)
	if err := h.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	var observed []string
	h.SetBeforeDelete(func(key string) error {
		observed = append(observed, key)
		return nil
	})
	h.SetPartitioned(true)
	if h.Down() {
		t.Fatal("a partition must be silent: Down() should stay false")
	}
	if err := h.Put("k2", []byte("v")); !errors.Is(err, ErrOutage) {
		t.Fatalf("Put under partition = %v, want ErrOutage", err)
	}
	if _, err := h.Get("k"); !errors.Is(err, ErrOutage) {
		t.Fatalf("Get under partition = %v, want ErrOutage", err)
	}
	if err := h.Delete("k"); !errors.Is(err, ErrOutage) {
		t.Fatalf("Delete under partition = %v, want ErrOutage", err)
	}
	if keys := h.Keys(); keys != nil {
		t.Fatalf("Keys under partition = %v, want nil", keys)
	}
	// The before-hook observes attempts even while the partition swallows
	// them — fault injectors depend on that to account for failed deletes.
	if len(observed) != 1 || observed[0] != "k" {
		t.Fatalf("before-delete hook observed %v, want [k]", observed)
	}
	h.SetPartitioned(false)
	if _, err := h.Get("k"); err != nil {
		t.Fatalf("Get after partition heals: %v", err)
	}
}
