package provider

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DiskProvider is a provider whose blobs persist on the local filesystem —
// what cmd/provider uses with -data-dir so a provider process survives
// restarts, completing the paper's "PCs as Cloud Providers" deployment.
// Keys map to files named by their SHA-256 so arbitrary virtual ids are
// path-safe. It is safe for concurrent use.
type DiskProvider struct {
	info Info
	dir  string

	mu    sync.Mutex
	down  bool
	names map[string]string // key -> filename (loaded from the index)
	usage Usage
}

var _ Provider = (*DiskProvider)(nil)

const diskIndexName = "index.tsv"

// NewDiskProvider opens (or creates) a blob directory. Existing blobs are
// re-indexed, so restarts preserve data.
func NewDiskProvider(info Info, dir string) (*DiskProvider, error) {
	if info.Name == "" {
		return nil, fmt.Errorf("provider: empty name")
	}
	if !info.PL.Valid() || !info.CL.Valid() {
		return nil, fmt.Errorf("provider: invalid PL/CL for %q", info.Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("provider: create data dir: %w", err)
	}
	p := &DiskProvider{info: info, dir: dir, names: make(map[string]string)}
	if err := p.loadIndex(); err != nil {
		return nil, err
	}
	return p, nil
}

func keyFile(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".blob"
}

// loadIndex restores the key→file map; missing index means empty store.
func (p *DiskProvider) loadIndex() error {
	data, err := os.ReadFile(filepath.Join(p.dir, diskIndexName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("provider: read index: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			continue
		}
		p.names[parts[0]] = parts[1]
		if st, err := os.Stat(filepath.Join(p.dir, parts[1])); err == nil {
			p.usage.BytesStored += st.Size()
		}
	}
	p.usage.Keys = len(p.names)
	return nil
}

// saveIndex persists the key map. Callers hold p.mu.
func (p *DiskProvider) saveIndex() error {
	var b strings.Builder
	keys := make([]string, 0, len(p.names))
	for k := range p.names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\t')
		b.WriteString(p.names[k])
		b.WriteByte('\n')
	}
	tmp := filepath.Join(p.dir, diskIndexName+".tmp")
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(p.dir, diskIndexName))
}

// Info returns the provider identity.
func (p *DiskProvider) Info() Info { return p.info }

// SetOutage toggles simulated unavailability.
func (p *DiskProvider) SetOutage(down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = down
}

// Down reports outage state.
func (p *DiskProvider) Down() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// Put stores data under key, atomically (write + rename).
func (p *DiskProvider) Put(key string, data []byte) error {
	if key == "" {
		return fmt.Errorf("provider: empty key")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return fmt.Errorf("%w: %s", ErrOutage, p.info.Name)
	}
	fname := keyFile(key)
	path := filepath.Join(p.dir, fname)
	var oldSize int64
	if prev, ok := p.names[key]; ok {
		if st, err := os.Stat(filepath.Join(p.dir, prev)); err == nil {
			oldSize = st.Size()
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("provider: write blob: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("provider: commit blob: %w", err)
	}
	p.names[key] = fname
	p.usage.Puts++
	p.usage.BytesIn += int64(len(data))
	p.usage.BytesStored += int64(len(data)) - oldSize
	p.usage.Keys = len(p.names)
	return p.saveIndex()
}

// Get reads the blob stored under key.
func (p *DiskProvider) Get(key string) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return nil, fmt.Errorf("%w: %s", ErrOutage, p.info.Name)
	}
	fname, ok := p.names[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, p.info.Name, key)
	}
	data, err := os.ReadFile(filepath.Join(p.dir, fname))
	if err != nil {
		return nil, fmt.Errorf("provider: read blob: %w", err)
	}
	p.usage.Gets++
	p.usage.BytesOut += int64(len(data))
	return data, nil
}

// Delete removes the blob under key.
func (p *DiskProvider) Delete(key string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return fmt.Errorf("%w: %s", ErrOutage, p.info.Name)
	}
	fname, ok := p.names[key]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, p.info.Name, key)
	}
	path := filepath.Join(p.dir, fname)
	var size int64
	if st, err := os.Stat(path); err == nil {
		size = st.Size()
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("provider: remove blob: %w", err)
	}
	delete(p.names, key)
	p.usage.Deletes++
	p.usage.BytesStored -= size
	p.usage.Keys = len(p.names)
	return p.saveIndex()
}

// Keys lists stored keys sorted.
func (p *DiskProvider) Keys() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]string, 0, len(p.names))
	for k := range p.names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of stored keys.
func (p *DiskProvider) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.names)
}

// Dump returns every (key, value) pair — the insider view.
func (p *DiskProvider) Dump() map[string][]byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string][]byte, len(p.names))
	for k, fname := range p.names {
		if data, err := os.ReadFile(filepath.Join(p.dir, fname)); err == nil {
			out[k] = data
		}
	}
	return out
}

// Usage returns billing counters.
func (p *DiskProvider) Usage() Usage {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.usage
	u.Keys = len(p.names)
	return u
}
