package provider

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/privacy"
)

func newTestProvider(t *testing.T) *MemProvider {
	t.Helper()
	p, err := New(Info{Name: "T", PL: privacy.High, CL: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Info{Name: "", PL: privacy.Low, CL: 0}, Options{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := New(Info{Name: "x", PL: privacy.Level(9), CL: 0}, Options{}); err == nil {
		t.Fatal("invalid PL accepted")
	}
	if _, err := New(Info{Name: "x", PL: privacy.Low, CL: 9}, Options{}); err == nil {
		t.Fatal("invalid CL accepted")
	}
	if _, err := New(Info{Name: "x", PL: privacy.Low, CL: 0}, Options{FailureRate: 1.0}); err == nil {
		t.Fatal("failure rate 1.0 accepted")
	}
	if _, err := New(Info{Name: "x", PL: privacy.Low, CL: 0}, Options{FailureRate: -0.1}); err == nil {
		t.Fatal("negative failure rate accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Info{}, Options{})
}

func TestPutGetDelete(t *testing.T) {
	p := newTestProvider(t)
	if err := p.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get("k1")
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := p.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get("k1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
	if err := p.Delete("k1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestPutEmptyKey(t *testing.T) {
	p := newTestProvider(t)
	if err := p.Put("", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestPutCopiesAndGetCopies(t *testing.T) {
	p := newTestProvider(t)
	data := []byte("mutable")
	if err := p.Put("k", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, _ := p.Get("k")
	if got[0] != 'm' {
		t.Fatal("Put aliased caller buffer")
	}
	got[0] = 'Y'
	again, _ := p.Get("k")
	if again[0] != 'm' {
		t.Fatal("Get returned aliased buffer")
	}
}

func TestOverwriteAccounting(t *testing.T) {
	p := newTestProvider(t)
	_ = p.Put("k", make([]byte, 100))
	_ = p.Put("k", make([]byte, 40))
	u := p.Usage()
	if u.BytesStored != 40 {
		t.Fatalf("BytesStored = %d, want 40", u.BytesStored)
	}
	if u.BytesIn != 140 {
		t.Fatalf("BytesIn = %d, want 140", u.BytesIn)
	}
	if u.Keys != 1 {
		t.Fatalf("Keys = %d", u.Keys)
	}
}

func TestOutage(t *testing.T) {
	p := newTestProvider(t)
	_ = p.Put("k", []byte("v"))
	p.SetOutage(true)
	if !p.Down() {
		t.Fatal("Down() = false after SetOutage(true)")
	}
	if err := p.Put("k2", []byte("v")); !errors.Is(err, ErrOutage) {
		t.Fatalf("Put during outage = %v", err)
	}
	if _, err := p.Get("k"); !errors.Is(err, ErrOutage) {
		t.Fatalf("Get during outage = %v", err)
	}
	if err := p.Delete("k"); !errors.Is(err, ErrOutage) {
		t.Fatalf("Delete during outage = %v", err)
	}
	p.SetOutage(false)
	if _, err := p.Get("k"); err != nil {
		t.Fatalf("Get after recovery = %v", err)
	}
}

func TestFailureInjection(t *testing.T) {
	p, err := New(Info{Name: "flaky", PL: privacy.Low, CL: 0}, Options{FailureRate: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for i := 0; i < 200; i++ {
		if err := p.Put(fmt.Sprintf("k%d", i), []byte("v")); errors.Is(err, ErrInjected) {
			failures++
		}
	}
	if failures < 50 || failures > 150 {
		t.Fatalf("failures = %d/200 at rate 0.5", failures)
	}
}

func TestLatencyAccounting(t *testing.T) {
	var slept time.Duration
	p, err := New(Info{Name: "slow", PL: privacy.Low, CL: 0}, Options{
		Latency: LatencyModel{PerOp: time.Millisecond, PerByte: time.Microsecond},
		Sleep:   func(d time.Duration) { slept += d },
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = p.Put("k", make([]byte, 1000))
	want := time.Millisecond + 1000*time.Microsecond
	if slept != want {
		t.Fatalf("slept = %v, want %v", slept, want)
	}
	if p.Usage().SimulatedTime != want {
		t.Fatalf("SimulatedTime = %v, want %v", p.Usage().SimulatedTime, want)
	}
}

func TestVirtualClockWithoutSleep(t *testing.T) {
	p, _ := New(Info{Name: "v", PL: privacy.Low, CL: 0}, Options{
		Latency: LatencyModel{PerOp: time.Second},
	})
	start := time.Now()
	_ = p.Put("k", []byte("v"))
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("virtual clock actually slept")
	}
	if p.Usage().SimulatedTime != time.Second {
		t.Fatalf("SimulatedTime = %v", p.Usage().SimulatedTime)
	}
}

func TestUsageCounters(t *testing.T) {
	p := newTestProvider(t)
	_ = p.Put("a", make([]byte, 10))
	_ = p.Put("b", make([]byte, 20))
	_, _ = p.Get("a")
	_ = p.Delete("b")
	u := p.Usage()
	if u.Puts != 2 || u.Gets != 1 || u.Deletes != 1 {
		t.Fatalf("counters = %+v", u)
	}
	if u.BytesStored != 10 || u.BytesIn != 30 || u.BytesOut != 10 {
		t.Fatalf("bytes = %+v", u)
	}
}

func TestMonthlyCost(t *testing.T) {
	p, _ := New(Info{Name: "bill", PL: privacy.High, CL: 3}, Options{})
	_ = p.Put("k", make([]byte, 1<<20)) // 1 MiB
	cost := p.MonthlyCost()
	want := privacy.CostLevel(3).DollarsPerGBMonth() / 1024
	if cost < want*0.99 || cost > want*1.01 {
		t.Fatalf("cost = %v, want ~%v", cost, want)
	}
}

func TestDumpIsInsiderView(t *testing.T) {
	p := newTestProvider(t)
	_ = p.Put("x", []byte("1"))
	_ = p.Put("y", []byte("2"))
	d := p.Dump()
	if len(d) != 2 || string(d["x"]) != "1" {
		t.Fatalf("Dump = %v", d)
	}
	d["x"][0] = 'Z'
	got, _ := p.Get("x")
	if got[0] != '1' {
		t.Fatal("Dump aliased stored data")
	}
}

func TestKeysSortedAndLen(t *testing.T) {
	p := newTestProvider(t)
	_ = p.Put("b", nil)
	_ = p.Put("a", nil)
	_ = p.Put("c", nil)
	keys := p.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := newTestProvider(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := p.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				got, err := p.Get(key)
				if err != nil || !bytes.Equal(got, []byte(key)) {
					t.Errorf("get %s: %q %v", key, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if p.Len() != 800 {
		t.Fatalf("Len = %d, want 800", p.Len())
	}
}

func TestFleet(t *testing.T) {
	a := MustNew(Info{Name: "A", PL: privacy.High, CL: 1}, Options{})
	b := MustNew(Info{Name: "B", PL: privacy.Low, CL: 0}, Options{})
	f, err := NewFleet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	got, err := f.At(0)
	if err != nil || got != a {
		t.Fatalf("At(0) = %v, %v", got, err)
	}
	if _, err := f.At(5); err == nil {
		t.Fatal("At(5) accepted")
	}
	if _, err := f.At(-1); err == nil {
		t.Fatal("At(-1) accepted")
	}
	pb, idx, err := f.ByName("B")
	if err != nil || pb != b || idx != 1 {
		t.Fatalf("ByName = %v, %d, %v", pb, idx, err)
	}
	if _, _, err := f.ByName("zzz"); err == nil {
		t.Fatal("unknown name accepted")
	}
	all := f.All()
	if len(all) != 2 || all[0] != a {
		t.Fatalf("All = %v", all)
	}
}

func TestFleetDuplicate(t *testing.T) {
	a := MustNew(Info{Name: "A", PL: privacy.High, CL: 1}, Options{})
	a2 := MustNew(Info{Name: "A", PL: privacy.Low, CL: 0}, Options{})
	if _, err := NewFleet(a, a2); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestFleetEligible(t *testing.T) {
	high := MustNew(Info{Name: "H", PL: privacy.High, CL: 3}, Options{})
	low := MustNew(Info{Name: "L", PL: privacy.Low, CL: 0}, Options{})
	f, _ := NewFleet(high, low)
	el := f.Eligible(privacy.Moderate)
	if len(el) != 1 || el[0] != 0 {
		t.Fatalf("Eligible(PL2) = %v", el)
	}
	el = f.Eligible(privacy.Public)
	if len(el) != 2 {
		t.Fatalf("Eligible(PL0) = %v", el)
	}
	high.SetOutage(true)
	el = f.Eligible(privacy.Moderate)
	if len(el) != 0 {
		t.Fatalf("outaged provider still eligible: %v", el)
	}
}

func TestPaperFleet(t *testing.T) {
	f, err := PaperFleet()
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 7 {
		t.Fatalf("Len = %d, want 7", f.Len())
	}
	earth, idx, err := f.ByName("Earth")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 3 walkthrough: "The sixth entry of Cloud Provider
	// Table is Earth."
	if idx != 6 {
		t.Fatalf("Earth at index %d, want 6", idx)
	}
	if earth.Info().PL != privacy.Low || earth.Info().CL != 1 {
		t.Fatalf("Earth info = %+v", earth.Info())
	}
	aws, _, _ := f.ByName("AWS")
	if aws.Info().PL != privacy.High {
		t.Fatalf("AWS PL = %v", aws.Info().PL)
	}
}

// Property: Put then Get returns the exact payload for arbitrary data.
func TestPutGetRoundTripProperty(t *testing.T) {
	p := MustNew(Info{Name: "q", PL: privacy.High, CL: 0}, Options{})
	i := 0
	f := func(data []byte) bool {
		i++
		key := fmt.Sprintf("k%d", i)
		if err := p.Put(key, data); err != nil {
			return false
		}
		got, err := p.Get(key)
		if err != nil {
			return false
		}
		if data == nil {
			return len(got) == 0
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
