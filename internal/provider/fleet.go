package provider

import (
	"fmt"

	"repro/internal/privacy"
)

// Provider is the full surface the distributor and the evaluation harness
// need from a cloud provider, whether it lives in-process (MemProvider) or
// behind HTTP (transport.RemoteProvider): the S3-like data plane, identity,
// availability control for failure injection, and the insider view used by
// attack simulations.
type Provider interface {
	Store
	// Down reports whether the provider is currently unreachable.
	Down() bool
	// SetOutage toggles simulated unavailability.
	SetOutage(down bool)
	// Len returns the number of stored keys.
	Len() int
	// Keys returns stored keys in sorted order.
	Keys() []string
	// Dump returns every stored (key, value) pair — the malicious-insider
	// view of this provider.
	Dump() map[string][]byte
	// Usage returns billing counters.
	Usage() Usage
}

// Fleet is an ordered collection of providers the distributor places
// chunks on. Order is stable: index in the fleet is the paper's "Cloud
// Provider Table index".
type Fleet struct {
	providers []Provider
	byName    map[string]int
}

// NewFleet builds a fleet, rejecting duplicate names.
func NewFleet(providers ...Provider) (*Fleet, error) {
	f := &Fleet{byName: make(map[string]int, len(providers))}
	for _, p := range providers {
		if err := f.Add(p); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Add appends a provider to the fleet.
func (f *Fleet) Add(p Provider) error {
	name := p.Info().Name
	if _, dup := f.byName[name]; dup {
		return fmt.Errorf("provider: duplicate provider %q", name)
	}
	f.byName[name] = len(f.providers)
	f.providers = append(f.providers, p)
	return nil
}

// Len returns the number of providers.
func (f *Fleet) Len() int { return len(f.providers) }

// At returns the provider at fleet index i.
func (f *Fleet) At(i int) (Provider, error) {
	if i < 0 || i >= len(f.providers) {
		return nil, fmt.Errorf("provider: fleet index %d out of range [0,%d)", i, len(f.providers))
	}
	return f.providers[i], nil
}

// ByName looks a provider up by name.
func (f *Fleet) ByName(name string) (Provider, int, error) {
	i, ok := f.byName[name]
	if !ok {
		return nil, 0, fmt.Errorf("provider: unknown provider %q", name)
	}
	return f.providers[i], i, nil
}

// All returns the providers in fleet order (the slice is a copy).
func (f *Fleet) All() []Provider {
	out := make([]Provider, len(f.providers))
	copy(out, f.providers)
	return out
}

// Eligible returns fleet indices of providers whose privacy level is ≥ pl
// and that are currently up, in fleet order — the candidates the placement
// policy ranks.
func (f *Fleet) Eligible(pl privacy.Level) []int {
	var out []int
	for i, p := range f.providers {
		if p.Info().PL >= pl && !p.Down() {
			out = append(out, i)
		}
	}
	return out
}

// PaperFleet builds the 7-provider fleet of the paper's Figure 3 (Adobe,
// AWS, Google, Microsoft, Sky, Sea, Earth) with the PL/CL values printed
// in its Cloud Provider Table.
func PaperFleet() (*Fleet, error) {
	specs := []Info{
		{Name: "Adobe", PL: privacy.High, CL: 3},
		{Name: "AWS", PL: privacy.High, CL: 3},
		{Name: "Google", PL: privacy.High, CL: 3},
		{Name: "Microsoft", PL: privacy.High, CL: 3},
		{Name: "Sky", PL: privacy.Moderate, CL: 1},
		{Name: "Sea", PL: privacy.Low, CL: 1},
		{Name: "Earth", PL: privacy.Low, CL: 1},
	}
	f := &Fleet{byName: map[string]int{}}
	for _, s := range specs {
		p, err := New(s, Options{})
		if err != nil {
			return nil, err
		}
		if err := f.Add(p); err != nil {
			return nil, err
		}
	}
	return f, nil
}
