package provider

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/privacy"
)

func diskProvider(t *testing.T) *DiskProvider {
	t.Helper()
	p, err := NewDiskProvider(Info{Name: "disk", PL: privacy.High, CL: 1}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDiskProviderValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewDiskProvider(Info{Name: "", PL: privacy.Low, CL: 0}, dir); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewDiskProvider(Info{Name: "x", PL: privacy.Level(9), CL: 0}, dir); err == nil {
		t.Fatal("bad PL accepted")
	}
}

func TestDiskProviderPutGetDelete(t *testing.T) {
	p := diskProvider(t)
	data := []byte("persistent payload")
	if err := p.Put("k1", data); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get("k1")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := p.Put("", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := p.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get("k1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get deleted = %v", err)
	}
	if err := p.Delete("k1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestDiskProviderSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	info := Info{Name: "durable", PL: privacy.High, CL: 2}
	p1, err := NewDiskProvider(info, dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	want := map[string][]byte{}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("chunk-%d", i)
		data := make([]byte, 100+rng.Intn(1000))
		rng.Read(data)
		want[key] = data
		if err := p1.Put(key, data); err != nil {
			t.Fatal(err)
		}
	}
	_ = p1.Delete("chunk-3")
	delete(want, "chunk-3")

	// "Restart": a fresh instance over the same directory.
	p2, err := NewDiskProvider(info, dir)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Len() != len(want) {
		t.Fatalf("restarted provider holds %d keys, want %d", p2.Len(), len(want))
	}
	for key, data := range want {
		got, err := p2.Get(key)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("restart lost %s: %v", key, err)
		}
	}
	if p2.Usage().BytesStored <= 0 {
		t.Fatal("restored BytesStored not positive")
	}
}

func TestDiskProviderOutage(t *testing.T) {
	p := diskProvider(t)
	_ = p.Put("k", []byte("v"))
	p.SetOutage(true)
	if !p.Down() {
		t.Fatal("Down() = false")
	}
	if _, err := p.Get("k"); !errors.Is(err, ErrOutage) {
		t.Fatalf("Get during outage = %v", err)
	}
	if err := p.Put("k2", []byte("v")); !errors.Is(err, ErrOutage) {
		t.Fatalf("Put during outage = %v", err)
	}
	if err := p.Delete("k"); !errors.Is(err, ErrOutage) {
		t.Fatalf("Delete during outage = %v", err)
	}
	p.SetOutage(false)
	if _, err := p.Get("k"); err != nil {
		t.Fatal(err)
	}
}

func TestDiskProviderPathUnsafeKeys(t *testing.T) {
	p := diskProvider(t)
	keys := []string{"../../etc/passwd", "a/b/c", "k with spaces", "\x00weird"}
	for _, k := range keys {
		if err := p.Put(k, []byte(k)); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	for _, k := range keys {
		got, err := p.Get(k)
		if err != nil || string(got) != k {
			t.Fatalf("Get(%q) = %q, %v", k, got, err)
		}
	}
	if p.Len() != len(keys) {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestDiskProviderDumpAndUsage(t *testing.T) {
	p := diskProvider(t)
	_ = p.Put("a", make([]byte, 10))
	_ = p.Put("b", make([]byte, 20))
	_ = p.Put("a", make([]byte, 5)) // overwrite shrinks
	d := p.Dump()
	if len(d) != 2 || len(d["a"]) != 5 {
		t.Fatalf("Dump = %d entries", len(d))
	}
	u := p.Usage()
	if u.BytesStored != 25 {
		t.Fatalf("BytesStored = %d, want 25", u.BytesStored)
	}
	if u.Puts != 3 || u.Keys != 2 {
		t.Fatalf("usage = %+v", u)
	}
	keys := p.Keys()
	if len(keys) != 2 || keys[0] != "a" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestDiskProviderWorksWithDistributorFleet(t *testing.T) {
	// DiskProvider satisfies provider.Provider, so it plugs into a fleet.
	fleet, err := NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p, err := NewDiskProvider(Info{Name: fmt.Sprintf("dp%d", i), PL: privacy.High, CL: 0}, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := fleet.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if fleet.Len() != 3 {
		t.Fatalf("fleet = %d", fleet.Len())
	}
	el := fleet.Eligible(privacy.High)
	if len(el) != 3 {
		t.Fatalf("eligible = %v", el)
	}
}
