// Package provider simulates S3-like cloud storage providers — the second
// entity of the paper's architecture. "The main tasks of Cloud Providers
// are: storing chunks of data, responding to a query by providing the
// desired data, and removing chunks when asked. All these are done using
// virtual id which is known as key for Amazon's simple storage service."
//
// A MemProvider is one provider: a concurrency-safe key→blob store with a
// reputation (privacy) level, a cost level, a configurable latency and
// failure model, outage simulation (the EC2 April 2011 scenario the paper
// opens with), and billing counters. Dump exposes the provider's complete
// view of stored data — exactly what a malicious insider (the paper's
// "Hera") gets to mine.
package provider

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/privacy"
)

// Store is the S3-like surface the distributor programs against: the
// paper's put()/get()/delete() methods keyed by virtual id.
type Store interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	Info() Info
}

// Info is the static description of a provider: one row of the paper's
// Cloud Provider Table, minus the live chunk list the distributor keeps.
type Info struct {
	Name string
	// PL is the provider's privacy (trustworthiness/reputation) level: "A
	// chunk is given to a provider having equal or higher privacy level
	// compared to the privacy level of the chunk."
	PL privacy.Level
	// CL is the provider's cost level: "in case of equal privacy level,
	// the one with a lower cost level is given preference."
	CL privacy.CostLevel
}

// ErrNotFound is returned by Get/Delete for unknown keys.
var ErrNotFound = errors.New("provider: key not found")

// ErrOutage is returned while a provider is down.
var ErrOutage = errors.New("provider: outage")

// ErrInjected is the transient failure produced by the failure-rate model.
var ErrInjected = errors.New("provider: injected transient failure")

// LatencyModel adds simulated service time per operation: a fixed setup
// cost plus a per-byte transfer cost. Zero values mean no delay — the
// default for unit tests.
type LatencyModel struct {
	PerOp   time.Duration
	PerByte time.Duration
}

func (l LatencyModel) delay(n int) time.Duration {
	return l.PerOp + time.Duration(n)*l.PerByte
}

// Options configures a MemProvider beyond its identity.
type Options struct {
	Latency LatencyModel
	// FailureRate is the probability an operation fails with ErrInjected.
	FailureRate float64
	// Seed drives the failure model.
	Seed int64
	// Sleep replaces time.Sleep for latency simulation; nil uses a virtual
	// clock that only accumulates (no real blocking), keeping tests fast
	// while benchmarks can still read SimulatedTime.
	Sleep func(time.Duration)
}

// Usage captures a provider's billing-relevant counters.
type Usage struct {
	Puts, Gets, Deletes int64
	BytesStored         int64 // current resident bytes
	BytesIn, BytesOut   int64 // cumulative transfer
	Keys                int
	// SimulatedTime is the total simulated service time accumulated by the
	// latency model.
	SimulatedTime time.Duration
}

// MemProvider is an in-memory simulated cloud provider. It is safe for
// concurrent use.
type MemProvider struct {
	info Info
	opts Options

	mu    sync.Mutex
	data  map[string][]byte
	down  bool
	rng   *rand.Rand
	usage Usage
}

// New creates a provider with the given identity and options.
func New(info Info, opts Options) (*MemProvider, error) {
	if info.Name == "" {
		return nil, fmt.Errorf("provider: empty name")
	}
	if !info.PL.Valid() {
		return nil, fmt.Errorf("provider: invalid privacy level %v", info.PL)
	}
	if !info.CL.Valid() {
		return nil, fmt.Errorf("provider: invalid cost level %d", info.CL)
	}
	if opts.FailureRate < 0 || opts.FailureRate >= 1 {
		return nil, fmt.Errorf("provider: failure rate %v outside [0,1)", opts.FailureRate)
	}
	return &MemProvider{
		info: info,
		opts: opts,
		data: make(map[string][]byte),
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}, nil
}

// MustNew is New panicking on error, for table-literal fleets in tests.
func MustNew(info Info, opts Options) *MemProvider {
	p, err := New(info, opts)
	if err != nil {
		panic(err)
	}
	return p
}

// Info returns the provider's identity.
func (p *MemProvider) Info() Info { return p.info }

// SetOutage toggles the provider's availability; while down every
// operation returns ErrOutage.
func (p *MemProvider) SetOutage(down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = down
}

// Down reports whether the provider is in an outage.
func (p *MemProvider) Down() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// gate applies outage, failure injection and latency accounting. Callers
// hold p.mu.
func (p *MemProvider) gate(nBytes int) error {
	if p.down {
		return fmt.Errorf("%w: %s", ErrOutage, p.info.Name)
	}
	if p.opts.FailureRate > 0 && p.rng.Float64() < p.opts.FailureRate {
		return fmt.Errorf("%w: %s", ErrInjected, p.info.Name)
	}
	d := p.opts.Latency.delay(nBytes)
	if d > 0 {
		p.usage.SimulatedTime += d
		if p.opts.Sleep != nil {
			p.opts.Sleep(d)
		}
	}
	return nil
}

// Put stores data under key, overwriting any previous value. The data is
// copied.
func (p *MemProvider) Put(key string, data []byte) error {
	if key == "" {
		return fmt.Errorf("provider: empty key")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.gate(len(data)); err != nil {
		return err
	}
	if old, ok := p.data[key]; ok {
		p.usage.BytesStored -= int64(len(old))
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	p.data[key] = cp
	p.usage.Puts++
	p.usage.BytesIn += int64(len(data))
	p.usage.BytesStored += int64(len(data))
	p.usage.Keys = len(p.data)
	return nil
}

// Get returns a copy of the value stored under key.
func (p *MemProvider) Get(key string) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.data[key]
	if err := p.gate(len(v)); err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, p.info.Name, key)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	p.usage.Gets++
	p.usage.BytesOut += int64(len(v))
	return cp, nil
}

// Delete removes key. Deleting an unknown key returns ErrNotFound.
func (p *MemProvider) Delete(key string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.gate(0); err != nil {
		return err
	}
	v, ok := p.data[key]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, p.info.Name, key)
	}
	delete(p.data, key)
	p.usage.Deletes++
	p.usage.BytesStored -= int64(len(v))
	p.usage.Keys = len(p.data)
	return nil
}

// Usage returns a snapshot of the billing counters.
func (p *MemProvider) Usage() Usage {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.usage
	u.Keys = len(p.data)
	return u
}

// MonthlyCost estimates the provider's bill for the currently resident
// bytes at the provider's cost level.
func (p *MemProvider) MonthlyCost() float64 {
	u := p.Usage()
	gb := float64(u.BytesStored) / (1 << 30)
	return gb * p.info.CL.DollarsPerGBMonth()
}

// Dump returns every (key, value) pair the provider holds, sorted by key —
// the complete view available to a malicious insider. Values are copies.
func (p *MemProvider) Dump() map[string][]byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string][]byte, len(p.data))
	for k, v := range p.data {
		cp := make([]byte, len(v))
		copy(cp, v)
		out[k] = cp
	}
	return out
}

// Keys returns the stored keys in sorted order.
func (p *MemProvider) Keys() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]string, 0, len(p.data))
	for k := range p.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of stored keys.
func (p *MemProvider) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.data)
}
