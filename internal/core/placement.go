package core

import (
	"fmt"
	"sort"

	"repro/internal/privacy"
)

// loadLocked is a provider's committed shard count plus the shards that
// in-flight writes have staged on it — the quantity placement balances,
// so concurrent writers spread out instead of all picking the provider
// that looked emptiest at the same instant. Callers hold d.mu.
func (d *Distributor) loadLocked(idx int) int {
	return d.provCount[idx] + d.provPending[idx]
}

// placeShards chooses n distinct providers for one stripe's shards. The
// policy is the paper's: only providers with privacy level ≥ pl are
// eligible ("A chunk is given to a provider having equal or higher
// privacy level compared to the privacy level of the chunk"); among
// eligible providers, lower cost level wins ("in case of equal privacy
// level, the one with a lower cost level is given preference"), with the
// current load as a balancing tiebreaker. Callers hold d.mu.
func (d *Distributor) placeShards(pl privacy.Level, n int) ([]int, error) {
	eligible := d.healthyEligible(pl)
	if len(eligible) < n {
		return nil, fmt.Errorf("%w: need %d healthy providers with PL>=%v, have %d",
			ErrPlacement, n, pl, len(eligible))
	}
	sort.SliceStable(eligible, func(a, b int) bool {
		ia, _ := d.fleet.At(eligible[a])
		ib, _ := d.fleet.At(eligible[b])
		if ia.Info().CL != ib.Info().CL {
			return ia.Info().CL < ib.Info().CL
		}
		return d.loadLocked(eligible[a]) < d.loadLocked(eligible[b])
	})
	return eligible[:n], nil
}

// placeParityExcluding picks one healthy eligible provider not in the
// exclusion set, preferring lower cost then lower load. Callers hold d.mu.
func (d *Distributor) placeParityExcluding(pl privacy.Level, exclude map[int]bool) (int, error) {
	best := -1
	for _, idx := range d.healthyEligible(pl) {
		if exclude[idx] {
			continue
		}
		if best == -1 {
			best = idx
			continue
		}
		pi, _ := d.fleet.At(idx)
		pb, _ := d.fleet.At(best)
		if pi.Info().CL < pb.Info().CL ||
			(pi.Info().CL == pb.Info().CL && d.loadLocked(idx) < d.loadLocked(best)) {
			best = idx
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("%w: no provider for re-encoded parity", ErrPlacement)
	}
	return best, nil
}

// pickSnapshotProvider chooses a provider for a chunk's pre-modification
// snapshot, distinct from the chunk's current provider. Callers hold d.mu.
func (d *Distributor) pickSnapshotProvider(pl privacy.Level, exclude int) (int, error) {
	eligible := d.healthyEligible(pl)
	var best = -1
	for _, idx := range eligible {
		if idx == exclude {
			continue
		}
		if best == -1 {
			best = idx
			continue
		}
		pi, _ := d.fleet.At(idx)
		pb, _ := d.fleet.At(best)
		if pi.Info().CL < pb.Info().CL ||
			(pi.Info().CL == pb.Info().CL && d.loadLocked(idx) < d.loadLocked(best)) {
			best = idx
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("%w: no snapshot provider with PL>=%v distinct from current", ErrPlacement, pl)
	}
	return best, nil
}

// healthyEligible filters the fleet's PL-eligible providers down to the
// ones whose circuit breaker admits new placements: a provider that has
// been silently failing is skipped even though it still reports itself
// up. Callers hold d.mu.
func (d *Distributor) healthyEligible(pl privacy.Level) []int {
	eligible := d.fleet.Eligible(pl)
	out := eligible[:0]
	for _, idx := range eligible {
		if d.health.Available(idx) {
			out = append(out, idx)
		}
	}
	return out
}

// effectiveWidth computes the number of data shards per stripe for a
// privacy level and parity count: the configured stripe width, shrunk so
// every shard of a full stripe lands on a distinct eligible provider.
func (d *Distributor) effectiveWidth(pl privacy.Level, parity int) (int, error) {
	eligible := len(d.healthyEligible(pl))
	w := d.stripeWidth
	if eligible-parity < w {
		w = eligible - parity
	}
	if w < 1 {
		return 0, fmt.Errorf("%w: %d eligible providers cannot host %d parity shards plus data",
			ErrPlacement, eligible, parity)
	}
	return w, nil
}
