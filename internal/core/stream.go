package core

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/privacy"
	"repro/internal/raid"
)

// This file is the streaming data plane: UploadStream and GetFileTo move
// a file through the distributor stripe-by-stripe behind an io.Reader /
// io.Writer, holding at most Config.StreamWindow stripes of payload in
// memory at once. The byte-slice entry points (Upload, GetFile) remain
// the whole-buffer fast path for small objects; these are the large-blob
// path where materializing the file would evict the chunk cache and
// starve the bufpool.

// stripeJob is one stripe of a streaming upload flowing from the planner
// to a ship worker: the staged shards plus the metadata rows they patch
// on failover. Positions inside a job are job-relative — chunkPos
// indexes job.chunks and stripePos is always 0 — because the stripe is
// planned before the distributor knows how many stripes precede it; the
// commit rebases everything in stripe order once the final stripe lands.
type stripeJob struct {
	shards []stagedShard
	chunks []chunkEntry
	stripe [1]stripeEntry
	pooled [][]byte // buffers released to bufpool once the job ships
}

func (j *stripeJob) releaseBuffers() {
	for _, b := range j.pooled {
		bufpool.Put(b)
	}
	j.pooled = nil
}

// readStripe reads up to width chunks of chunkSize bytes from r into
// pooled buffers. It returns io.EOF when the stream is exhausted; the
// final call may carry both data (a short last chunk) and io.EOF. first
// preserves the chunker.Split convention that an empty file still
// yields one empty chunk.
func readStripe(r io.Reader, chunkSize, width int, first bool) ([][]byte, int, error) {
	var datas [][]byte
	total := 0
	for len(datas) < width {
		buf := bufpool.Get(chunkSize)
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			datas = append(datas, buf[:n])
			total += n
		} else {
			bufpool.Put(buf)
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if first && len(datas) == 0 {
				datas = append(datas, nil) // empty stream: one empty chunk
			}
			return datas, total, io.EOF
		}
		if err != nil {
			return datas, total, err
		}
	}
	return datas, total, nil
}

// planStreamStripe stages one stripe of a streaming upload under d.mu:
// payload preparation (the mislead RNG and the encryption nonce are
// lock-guarded), placement, virtual-id allocation, parity and ticket
// staging — the same plan phase Upload runs for the whole file, scoped
// to one stripe. datas are the stripe's raw chunk buffers (ownership
// moves into the returned job); baseSerial numbers the first chunk.
func (d *Distributor) planStreamStripe(t *writeTicket, client, filename string, pl privacy.Level, level raid.Level, encKey []byte, opts UploadOptions, datas [][]byte, baseSerial int) (*stripeJob, error) {
	parity := level.ParityShards()
	job := &stripeJob{pooled: append([][]byte(nil), datas...)}

	sums := make([][32]byte, len(datas))
	for i, data := range datas {
		sums[i] = sha256.Sum256(data)
	}

	// Everything that touches distributor state — payload preparation
	// (the mislead RNG and the encryption nonce are lock-guarded),
	// placement, virtual-id allocation and ticket staging — runs under
	// d.mu. Padding and parity math run after the unlock: they touch only
	// job-local buffers and are the bulk of the planning cost, and a
	// streaming upload acquires d.mu once per stripe — keeping the hold
	// O(metadata) instead of O(bytes) lets concurrent readers interleave
	// with a long transfer instead of convoying behind it. The parity
	// payloads are staged before they are computed, which is safe because
	// a job reaches a ship worker only after this function returns.
	payloads := make([][]byte, len(datas))
	parityBufs := make([][]byte, parity)
	shardLen := 0
	err := func() error {
		d.mu.Lock()
		defer d.mu.Unlock()

		for i, data := range datas {
			payload, inj, err := d.preparePayload(data, encKey, opts)
			if err != nil {
				return err
			}
			payloads[i] = payload
			job.chunks = append(job.chunks, chunkEntry{
				PL:      pl,
				SPIndex: -1,
				Mislead: inj,
				Client:  client, Filename: filename,
				Serial:     baseSerial + i,
				PayloadLen: len(payload),
				DataLen:    len(data),
				Sum:        sums[i],
				EncKey:     encKey,
			})
			if len(payload) > shardLen {
				shardLen = len(payload)
			}
		}
		if shardLen == 0 {
			shardLen = 1 // parity over empty chunks still needs one byte
		}

		placement, err := d.placeShards(pl, len(datas)+parity)
		if err != nil {
			return err
		}
		st := &job.stripe[0]
		st.Level = level
		st.ShardLen = shardLen
		for gi := range datas {
			vid := d.vids.Next()
			provIdx := placement[gi]
			ce := &job.chunks[gi]
			ce.VirtualID = vid
			ce.CPIndex = provIdx

			exclude := map[int]bool{provIdx: true}
			for r := 0; r < opts.Replicas; r++ {
				mIdx, err := d.placeParityExcluding(pl, exclude)
				if err != nil {
					return fmt.Errorf("placing replica %d of chunk %d: %w", r+1, ce.Serial, err)
				}
				exclude[mIdx] = true
				mvid := d.vids.Next()
				ce.Mirrors = append(ce.Mirrors, mirrorRef{VirtualID: mvid, CPIndex: mIdx})
				job.shards = append(job.shards, stagedShard{
					kind: shardMirror, chunkPos: gi, mirrorPos: r,
					stripePos: 0, parityPos: -1,
					provIdx: mIdx, vid: mvid, payload: payloads[gi],
				})
				d.stageLocked(t, mIdx, mvid)
			}

			st.Members = append(st.Members, gi)
			job.shards = append(job.shards, stagedShard{
				kind: shardData, chunkPos: gi, mirrorPos: -1,
				stripePos: 0, parityPos: -1,
				provIdx: provIdx, vid: vid, payload: payloads[gi],
			})
			d.stageLocked(t, provIdx, vid)
		}
		for pi := 0; pi < parity; pi++ {
			vid := d.vids.Next()
			provIdx := placement[len(datas)+pi]
			parityBufs[pi] = bufpool.Get(shardLen)
			job.pooled = append(job.pooled, parityBufs[pi])
			st.Parity = append(st.Parity, parityShard{VirtualID: vid, CPIndex: provIdx})
			job.shards = append(job.shards, stagedShard{
				kind: shardParity, chunkPos: -1, mirrorPos: -1,
				stripePos: 0, parityPos: pi,
				provIdx: provIdx, vid: vid, payload: parityBufs[pi],
			})
			d.stageLocked(t, provIdx, vid)
		}
		return nil
	}()
	if err != nil {
		return job, err
	}

	if parity > 0 {
		padded := make([][]byte, len(datas))
		for gi, p := range payloads {
			if len(p) == shardLen {
				padded[gi] = p
			} else {
				pad := bufpool.Get(shardLen)
				n := copy(pad, p)
				clear(pad[n:])
				padded[gi] = pad
				job.pooled = append(job.pooled, pad)
			}
		}
		if err := raid.ParityInto(level, padded, parityBufs); err != nil {
			return job, err
		}
	}
	return job, nil
}

// UploadStream is Upload behind an io.Reader: it chunks, misleads (or
// encrypts), stripes and ships the file stripe-by-stripe as bytes
// arrive, holding at most Config.StreamWindow stripes of payload in
// flight — peak distributor memory for the request is O(window × stripe
// size) regardless of file size. The plan→ship→commit protocol is
// unchanged: every stripe stages on one write ticket, the filename is
// reserved for the whole transfer, the WAL commit record lands before
// anything becomes visible, and any failure (read error, placement,
// provider exhaustion, log append) rolls back every blob already stored
// — a crashed or aborted stream leaves no orphans and no partial file.
func (d *Distributor) UploadStream(client, password, filename string, r io.Reader, pl privacy.Level, opts UploadOptions) (FileInfo, error) {
	level, err := d.validateUpload(filename, pl, opts)
	if err != nil {
		return FileInfo{}, err
	}
	chunkSize, err := d.policy.Size(pl)
	if err != nil {
		return FileInfo{}, err
	}
	var encKey []byte
	if len(opts.EncryptKey) > 0 {
		encKey = append([]byte(nil), opts.EncryptKey...)
	}
	parity := level.ParityShards()

	// ---- Open: authorize, reserve the filename, open the ticket ----
	resKey := client + "\x00" + filename
	d.mu.Lock()
	if _, err := d.authorize(client, password, pl); err != nil {
		d.mu.Unlock()
		return FileInfo{}, err
	}
	c := d.clients[client]
	if _, dup := c.Files[filename]; dup || d.reserved[resKey] {
		d.mu.Unlock()
		return FileInfo{}, fmt.Errorf("%w: %s", ErrExists, filename)
	}
	width, err := d.effectiveWidth(pl, parity)
	if err != nil {
		d.mu.Unlock()
		return FileInfo{}, err
	}
	d.reserved[resKey] = true
	t := d.newTicketLocked()
	d.fidSeq++
	fid := d.fidSeq
	d.mu.Unlock()

	// ---- Pipeline: plan stripes as bytes arrive, ship them on worker
	// goroutines. The semaphore slot taken before reading a stripe is
	// released only after that stripe ships, so at most window stripes of
	// pooled buffers exist at once; window 1 degenerates to strict
	// lockstep (plan→ship→plan→ship), which deterministic harnesses use.
	window := d.streamWindow
	sem := make(chan struct{}, window)
	jobCh := make(chan *stripeJob)
	var (
		mu      sync.Mutex
		stored  []storedShard
		shipErr error
		wg      sync.WaitGroup
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return shipErr != nil
	}
	for i := 0; i < window; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				if !failed() {
					st, err := d.shipStaged(pl, job.shards, job.chunks, job.stripe[:], t)
					mu.Lock()
					stored = append(stored, st...)
					if err != nil && shipErr == nil {
						shipErr = err
					}
					mu.Unlock()
				}
				job.releaseBuffers()
				<-sem
			}
		}()
	}

	var jobs []*stripeJob
	var planErr error
	total := 0
	serial := 0
	for eof := false; !eof; {
		sem <- struct{}{}
		if failed() {
			<-sem
			break
		}
		datas, n, rerr := readStripe(r, chunkSize, width, serial == 0)
		total += n
		if rerr == io.EOF {
			eof = true
		} else if rerr != nil {
			for _, b := range datas {
				bufpool.Put(b)
			}
			planErr = fmt.Errorf("reading stream: %w", rerr)
			<-sem
			break
		}
		if len(datas) == 0 {
			<-sem
			break
		}
		job, perr := d.planStreamStripe(t, client, filename, pl, level, encKey, opts, datas, serial)
		if perr != nil {
			job.releaseBuffers()
			planErr = perr
			<-sem
			break
		}
		serial += len(datas)
		jobs = append(jobs, job)
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()

	abort := func(cause error) (FileInfo, error) {
		d.mu.Lock()
		d.releaseTicketLocked(t)
		delete(d.reserved, resKey)
		d.mu.Unlock()
		d.rollbackStored(stored)
		return FileInfo{}, fmt.Errorf("core: upload aborted: %w", cause)
	}
	if planErr != nil {
		return abort(planErr)
	}
	if shipErr != nil {
		return abort(shipErr)
	}

	// ---- Commit: assemble the per-stripe rows in stream order, rebase
	// them onto the live tables and log before anything becomes visible —
	// byte-identical semantics to Upload's commit.
	nChunks := serial
	fe := &fileEntry{Filename: filename, PL: pl, FID: fid, Raid: level, ChunkIdx: make([]int, nChunks)}
	newChunks := make([]chunkEntry, 0, nChunks)
	newStripes := make([]stripeEntry, 0, len(jobs))
	for si, job := range jobs {
		cbase := len(newChunks)
		st := job.stripe[0]
		st.ID = si
		for j := range st.Members {
			st.Members[j] += cbase
		}
		for i := range job.chunks {
			job.chunks[i].StripeID = si
			fe.ChunkIdx[job.chunks[i].Serial] = cbase + i
		}
		newChunks = append(newChunks, job.chunks...)
		newStripes = append(newStripes, st)
	}

	d.mu.Lock()
	base := len(d.chunks)
	sbase := len(d.stripes)
	for i := range newChunks {
		newChunks[i].StripeID += sbase
	}
	for i := range newStripes {
		newStripes[i].ID += sbase
		for j := range newStripes[i].Members {
			newStripes[i].Members[j] += base
		}
	}
	for s := range fe.ChunkIdx {
		fe.ChunkIdx[s] += base
	}
	c = d.clients[client]
	rec := &walRecord{
		Op: "upload", Client: client, Filename: filename,
		FID: fe.FID, PL: pl, Raid: level,
		ChunksBase: base, StripesBase: sbase,
		Chunks: newChunks, Stripes: newStripes, ChunkIdx: fe.ChunkIdx,
		FileGen: fe.Gen, ClientGen: c.Gen + 1, Gen: d.gen + 1,
	}
	if err := d.logAppendLocked(rec); err != nil {
		d.releaseTicketLocked(t)
		delete(d.reserved, resKey)
		d.mu.Unlock()
		d.rollbackStored(stored)
		return FileInfo{}, fmt.Errorf("core: upload aborted: %w", err)
	}
	d.chunks = append(d.chunks, newChunks...)
	d.stripes = append(d.stripes, newStripes...)
	d.commitTicketLocked(t)
	delete(d.reserved, resKey)
	c.Files[filename] = fe
	c.Count += nChunks
	c.Gen++
	d.gen++
	d.counters.uploads.Add(1)
	d.counters.streamUploads.Add(1)
	d.maybeCheckpointLocked()
	d.mu.Unlock()

	return FileInfo{Filename: filename, PL: pl, Chunks: nChunks, Raid: level, Bytes: total}, nil
}

// GetFileTo streams a whole file into w in chunk order while up to
// Config.StreamWindow later chunks are fetched (and hedged) in the
// background — GetFile's read resilience with O(window) memory instead
// of a whole-file buffer. Chunks already resident in the generation-
// keyed cache are served from it, but streamed reads never populate the
// cache: a GiB-scale pass through an LRU sized for point reads would
// only evict every hot chunk. Returns the bytes written; on error the
// count reports how much of the prefix reached w before the failure.
func (d *Distributor) GetFileTo(w io.Writer, client, password, filename string) (int64, error) {
	d.mu.RLock()
	c, _, err := d.auth(client, password)
	if err != nil {
		d.mu.RUnlock()
		return 0, err
	}
	fe, ok := c.Files[filename]
	if !ok {
		d.mu.RUnlock()
		return 0, fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	if _, err := d.authorize(client, password, fe.PL); err != nil {
		d.mu.RUnlock()
		return 0, err
	}
	// Snapshot every chunk's fetch plan under one RLock hold, like
	// GetFile: the plans pin a single file generation, so a concurrent
	// update can never tear the stream. Plans are metadata-sized (a few
	// hundred bytes per chunk) — the window bounds payload memory.
	fid, fileGen := fe.FID, fe.Gen
	plans := make([]fetchPlan, len(fe.ChunkIdx))
	var cached [][]byte
	if d.cache != nil {
		cached = make([][]byte, len(fe.ChunkIdx))
	}
	for serial, idx := range fe.ChunkIdx {
		if idx < 0 {
			d.mu.RUnlock()
			return 0, fmt.Errorf("%w: serial %d was removed", ErrNoSuchChunk, serial)
		}
		if cached != nil {
			if data, ok := d.cache.get(cacheKey{fid: fid, serial: serial, gen: fileGen}); ok {
				cached[serial] = data
				continue
			}
		}
		plans[serial] = d.planFetch(&d.chunks[idx])
	}
	d.mu.RUnlock()

	// Bounded lookahead: keep fetching ahead of the writer until
	// in-flight fetches plus buffered out-of-order chunks reach the
	// window, then write strictly in serial order from the caller's
	// goroutine. The results channel is buffered to the window, so a
	// fetch finishing after an early return can never block or leak.
	type item struct {
		serial int
		data   []byte
		err    error
	}
	n := len(plans)
	window := d.streamWindow
	results := make(chan item, window)
	pending := make(map[int][]byte, window)
	launched, inFlight, next := 0, 0, 0
	var written int64
	launch := func() {
		s := launched
		launched++
		inFlight++
		if cached != nil && cached[s] != nil {
			data := cached[s]
			go func() { results <- item{serial: s, data: data} }()
			return
		}
		plan := &plans[s]
		go func() {
			data, err := d.fetchChunkPlan(plan)
			results <- item{serial: s, data: data, err: err}
		}()
	}
	for next < n {
		for launched < n && inFlight+len(pending) < window {
			launch()
		}
		it := <-results
		inFlight--
		if it.err != nil {
			return written, it.err
		}
		pending[it.serial] = it.data
		for {
			data, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			nw, werr := w.Write(data)
			written += int64(nw)
			if werr != nil {
				return written, fmt.Errorf("core: writing stream: %w", werr)
			}
			next++
		}
	}
	d.counters.fileReads.Add(1)
	d.counters.streamReads.Add(1)
	return written, nil
}
