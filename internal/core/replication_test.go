package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/privacy"
)

// statsEqual compares two placement snapshots field by field; the
// PerProvider counts are the incremental bump arithmetic's ledger, so a
// single miscounted placement fails here.
func statsEqual(t *testing.T, phase string, p, s Stats) {
	t.Helper()
	if p.Clients != s.Clients || p.Files != s.Files || p.Chunks != s.Chunks ||
		p.ParityShards != s.ParityShards || p.MirrorShards != s.MirrorShards ||
		p.Snapshots != s.Snapshots || p.Stripes != s.Stripes {
		t.Fatalf("%s: stats diverged\nprimary   %+v\nsecondary %+v", phase, p, s)
	}
	if len(p.PerProvider) != len(s.PerProvider) {
		t.Fatalf("%s: provider count width %d vs %d", phase, len(p.PerProvider), len(s.PerProvider))
	}
	for i := range p.PerProvider {
		if p.PerProvider[i] != s.PerProvider[i] {
			t.Fatalf("%s: provider %d count %d on primary, %d on secondary\nprimary   %v\nsecondary %v",
				phase, i, p.PerProvider[i], s.PerProvider[i], p.PerProvider, s.PerProvider)
		}
	}
}

// TestClusterIncrementalReplication proves the happy path never falls
// back to a full snapshot: every mutation ships as one commit record,
// and the secondary's tables (including the incrementally maintained
// per-provider counts) match the primary's after each phase.
func TestClusterIncrementalReplication(t *testing.T) {
	c, _ := testCluster(t, 2, 6)
	if err := c.RegisterClient("ann"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPassword("ann", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("f%d", i)
		if _, err := c.Upload("ann", "pw", name, payload(40_000, int64(i)), privacy.Moderate, UploadOptions{Replicas: i % 2}); err != nil {
			t.Fatal(err)
		}
	}
	statsEqual(t, "after uploads", c.dists[0].Stats(), c.dists[1].Stats())

	if err := c.dists[0].UpdateChunk("ann", "pw", "f1", 0, payload(9_000, 99), UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.dists[0].RemoveChunk("ann", "pw", "f2", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.dists[0].RemoveFile("ann", "pw", "f3"); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	statsEqual(t, "after update/remove", c.dists[0].Stats(), c.dists[1].Stats())

	rs := c.ReplicationStats()
	if rs.SnapshotSyncs != 0 {
		t.Fatalf("happy path took %d snapshot syncs (want 0): %+v", rs.SnapshotSyncs, rs)
	}
	if rs.RecordsReplicated == 0 || rs.Head == 0 {
		t.Fatalf("no incremental records flowed: %+v", rs)
	}
	if rs.RecordsReplicated != rs.Head {
		t.Fatalf("secondary applied %d of %d records", rs.RecordsReplicated, rs.Head)
	}

	// The replicated tables must actually serve: byte-exact reads off
	// the follower with the primary down.
	want, err := c.dists[0].GetFile("ann", "pw", "f0")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetFile("ann", "pw", "f0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("follower read diverged: %d vs %d bytes", len(got), len(want))
	}
}

// TestClusterProvCountConvergence drives every placement-moving op the
// WAL records cover — including a decommission, whose moves replicate
// as move_chunk/move_mirror/move_snapshot/move_parity records — and
// checks the follower's incremental provider counts stay exact.
func TestClusterProvCountConvergence(t *testing.T) {
	c, _ := testCluster(t, 2, 8)
	if err := c.RegisterClient("kim"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPassword("kim", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("g%d", i)
		if _, err := c.Upload("kim", "pw", name, payload(60_000, int64(10+i)), privacy.High, UploadOptions{Replicas: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Updates create snapshots of the old chunks; move/drop records then
	// have snapshot placements to carry.
	if err := c.dists[0].UpdateChunk("kim", "pw", "g0", 1, payload(7_000, 77), UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.dists[0].UpdateChunk("kim", "pw", "g1", 0, payload(6_000, 78), UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.dists[0].Decommission(2); err != nil {
		t.Fatal(err)
	}
	if err := c.dists[0].RemoveFile("kim", "pw", "g2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	statsEqual(t, "after decommission", c.dists[0].Stats(), c.dists[1].Stats())
	if rs := c.ReplicationStats(); rs.SnapshotSyncs != 0 {
		t.Fatalf("expected pure incremental replication, got %+v", rs)
	}
}

// TestClusterLagSurfacing is the staleness fix: a down secondary's lag
// is visible through Lag() while it misses commits, and bringing it
// back replays everything before it can serve again.
func TestClusterLagSurfacing(t *testing.T) {
	c, _ := testCluster(t, 3, 6)
	if err := c.RegisterClient("lee"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPassword("lee", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upload("lee", "pw", "base", payload(30_000, 5), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDown(2, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upload("lee", "pw", "while-down", payload(30_000, 6), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}

	lag := c.Lag()
	if lag[0].Role != "primary" || lag[0].LagRecords != 0 {
		t.Fatalf("primary row: %+v", lag[0])
	}
	if lag[1].LagRecords != 0 || lag[1].Down {
		t.Fatalf("up secondary should be current: %+v", lag[1])
	}
	if !lag[2].Down || lag[2].LagRecords == 0 {
		t.Fatalf("down secondary should show lag: %+v", lag[2])
	}
	if lag[2].Generation >= lag[0].Generation {
		t.Fatalf("down secondary generation %d not behind primary %d", lag[2].Generation, lag[0].Generation)
	}

	// Heal: SetDown(false) must catch the member up before it serves.
	if err := c.SetDown(2, false); err != nil {
		t.Fatal(err)
	}
	lag = c.Lag()
	if lag[2].LagRecords != 0 || lag[2].Generation != lag[0].Generation {
		t.Fatalf("healed secondary still lagging: %+v vs primary %+v", lag[2], lag[0])
	}
	want, err := c.dists[0].GetFile("lee", "pw", "while-down")
	if err != nil {
		t.Fatal(err)
	}
	c.SetDown(0, true)
	c.SetDown(1, true)
	got, err := c.GetFile("lee", "pw", "while-down")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("healed secondary served stale or corrupt bytes")
	}
}

// TestClusterSnapshotFallback covers the two paths that must ship a
// full snapshot: a member joining with a diverged generation, and a
// member whose cursor fell off the retained log.
func TestClusterSnapshotFallback(t *testing.T) {
	fleet := testFleet(t, 6)
	primary, err := New(Config{Fleet: fleet, Secret: []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.RegisterClient("pat"); err != nil {
		t.Fatal(err)
	}
	if err := primary.AddPassword("pat", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Upload("pat", "pw", "pre", payload(50_000, 9), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}

	// The follower joins late: its generation (0) diverges from the
	// primary's, so the first sync must be a snapshot.
	follower, err := New(Config{Fleet: fleet, Secret: []byte{2}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(primary, follower)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	rs := c.ReplicationStats()
	if rs.SnapshotSyncs != 1 {
		t.Fatalf("late join should cost exactly one snapshot: %+v", rs)
	}
	statsEqual(t, "after join", primary.Stats(), follower.Stats())

	// From here replication is incremental again.
	if _, err := c.Upload("pat", "pw", "post", payload(20_000, 10), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	rs = c.ReplicationStats()
	if rs.SnapshotSyncs != 1 || rs.RecordsReplicated == 0 {
		t.Fatalf("post-join sync regressed to snapshots: %+v", rs)
	}
	want, err := primary.GetFile("pat", "pw", "post")
	if err != nil {
		t.Fatal(err)
	}
	got, err := follower.GetFile("pat", "pw", "post")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("follower read diverged after catch-up")
	}
}
