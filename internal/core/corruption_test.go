package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
)

// corruptServedBytes makes every Get from the provider return the stored
// length with flipped bytes — silent rot in flight, the store untouched.
func corruptServedBytes(h *provider.Hooked) {
	h.SetTransformGet(func(_ string, data []byte) []byte {
		for i := range data {
			data[i] ^= 0xA5
		}
		return data
	})
}

func TestGetRangeCorruptionRescuedByParity(t *testing.T) {
	d, hooked := hookedDistributor(t, 6)
	data := payload(60_000, 51)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{Assurance: raid.RAID5}); err != nil {
		t.Fatal(err)
	}

	// Find the provider of serial 0 and corrupt everything it serves:
	// right length, wrong bytes. The range read must detect the rot and
	// rescue the true bytes from parity, never serve garbage.
	d.mu.RLock()
	provIdx := d.chunks[d.clients["alice"].Files["f"].ChunkIdx[0]].CPIndex
	chunkLen := d.chunks[d.clients["alice"].Files["f"].ChunkIdx[0]].DataLen
	d.mu.RUnlock()
	corruptServedBytes(hooked[provIdx])

	for _, span := range [][2]int{{0, 100}, {chunkLen - 50, 100}, {0, chunkLen}} {
		got, err := d.GetRange("alice", "root", "f", span[0], span[1])
		if err != nil {
			t.Fatalf("GetRange(%d,%d) under corruption: %v", span[0], span[1], err)
		}
		if !bytes.Equal(got, data[span[0]:span[0]+span[1]]) {
			t.Fatalf("GetRange(%d,%d) served wrong bytes under corruption", span[0], span[1])
		}
	}
	m := d.Metrics()
	if m.CorruptionsDetected == 0 {
		t.Fatal("CorruptionsDetected = 0, want > 0")
	}
	if m.Reconstructions == 0 {
		t.Fatal("Reconstructions = 0, want > 0 (rescue must come from RAID peers)")
	}
}

func TestGetRangeCorruptionWithoutRedundancyFailsClosed(t *testing.T) {
	d, hooked := hookedDistributor(t, 6)
	data := payload(20_000, 52)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{NoParity: true}); err != nil {
		t.Fatal(err)
	}
	d.mu.RLock()
	provIdx := d.chunks[d.clients["alice"].Files["f"].ChunkIdx[0]].CPIndex
	d.mu.RUnlock()
	corruptServedBytes(hooked[provIdx])

	// No parity and no mirrors: nothing can rescue the bytes, so the read
	// must fail — wrong bytes must never reach the client.
	if _, err := d.GetRange("alice", "root", "f", 0, 100); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("GetRange on unrescuable corruption = %v, want ErrUnavailable", err)
	}
	if d.Metrics().CorruptionsDetected == 0 {
		t.Fatal("CorruptionsDetected = 0, want > 0")
	}
}

func TestGetRangeCorruptionRescuedByMirror(t *testing.T) {
	d, hooked := hookedDistributor(t, 6)
	data := payload(20_000, 53)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{NoParity: true, Replicas: 1, MisleadFraction: 0.2}); err != nil {
		t.Fatal(err)
	}
	d.mu.RLock()
	provIdx := d.chunks[d.clients["alice"].Files["f"].ChunkIdx[0]].CPIndex
	d.mu.RUnlock()
	corruptServedBytes(hooked[provIdx])

	got, err := d.GetRange("alice", "root", "f", 100, 500)
	if err != nil {
		t.Fatalf("GetRange under corruption with a mirror: %v", err)
	}
	if !bytes.Equal(got, data[100:600]) {
		t.Fatal("GetRange served wrong bytes")
	}
	if d.Metrics().MirrorHits == 0 {
		t.Fatal("MirrorHits = 0, want > 0 (rescue must come from the replica)")
	}
}
