package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/privacy"
	"repro/internal/provider"
)

func TestReplicasValidation(t *testing.T) {
	d := testDistributor(t, 4)
	if _, err := d.Upload("alice", "root", "f", []byte("x"), privacy.Low, UploadOptions{Replicas: -1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative replicas: %v", err)
	}
	// More replicas than distinct providers can host.
	if _, err := d.Upload("alice", "root", "f", []byte("x"), privacy.Low, UploadOptions{Replicas: 10}); !errors.Is(err, ErrPlacement) {
		t.Fatalf("oversubscribed replicas: %v", err)
	}
}

func TestReplicasStoredOnDistinctProviders(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(40_000, 70)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{Replicas: 2}); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.MirrorShards != 2*st.Chunks {
		t.Fatalf("mirrors = %d, want %d", st.MirrorShards, 2*st.Chunks)
	}
	d.mu.Lock()
	for _, c := range d.chunks {
		seen := map[int]bool{c.CPIndex: true}
		if len(c.Mirrors) != 2 {
			t.Fatalf("chunk has %d mirrors", len(c.Mirrors))
		}
		for _, m := range c.Mirrors {
			if seen[m.CPIndex] {
				t.Fatalf("mirror shares provider %d", m.CPIndex)
			}
			seen[m.CPIndex] = true
		}
	}
	d.mu.Unlock()
	got, err := d.GetFile("alice", "root", "f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestMirrorsServeReadsWhenPrimaryAndParityDown(t *testing.T) {
	// With 2 mirrors + no parity, reads must survive the primary being
	// down because a mirror takes over.
	d := testDistributor(t, 6)
	data := payload(30_000, 71)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{Replicas: 2, NoParity: true}); err != nil {
		t.Fatal(err)
	}
	// Fail every chunk's primary provider (collect them first).
	d.mu.Lock()
	primaries := map[int]bool{}
	for _, c := range d.chunks {
		primaries[c.CPIndex] = true
	}
	d.mu.Unlock()
	for idx := range primaries {
		p, _ := d.Providers().At(idx)
		p.SetOutage(true)
	}
	got, err := d.GetFile("alice", "root", "f")
	if err != nil {
		t.Fatalf("mirror read failed: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mirror data mismatch")
	}
}

func TestReplicasRemovedWithFile(t *testing.T) {
	d := testDistributor(t, 6)
	if _, err := d.Upload("alice", "root", "f", payload(20_000, 72), privacy.Moderate, UploadOptions{Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveFile("alice", "root", "f"); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Providers().All() {
		if p.Len() != 0 {
			t.Fatalf("provider %s still holds %d keys", p.Info().Name, p.Len())
		}
	}
	if d.Stats().MirrorShards != 0 {
		t.Fatalf("mirror stat = %d after removal", d.Stats().MirrorShards)
	}
}

func TestReplicasRemovedWithChunk(t *testing.T) {
	d := testDistributor(t, 6)
	info, err := d.Upload("alice", "root", "f", payload(60_000, 73), privacy.Moderate, UploadOptions{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := totalKeys(d)
	if err := d.RemoveChunk("alice", "root", "f", 0); err != nil {
		t.Fatal(err)
	}
	after := totalKeys(d)
	if after >= before {
		t.Fatalf("keys %d -> %d after chunk removal", before, after)
	}
	if d.Stats().MirrorShards != info.Chunks-1 {
		t.Fatalf("mirror stat = %d, want %d", d.Stats().MirrorShards, info.Chunks-1)
	}
}

func totalKeys(d *Distributor) int {
	n := 0
	for _, p := range d.Providers().All() {
		n += p.Len()
	}
	return n
}

func TestUpdateChunkRewritesMirrors(t *testing.T) {
	d := testDistributor(t, 6)
	if _, err := d.Upload("alice", "root", "f", payload(20_000, 74), privacy.Moderate, UploadOptions{Replicas: 2, NoParity: true}); err != nil {
		t.Fatal(err)
	}
	newData := []byte("the updated state of serial zero")
	if err := d.UpdateChunk("alice", "root", "f", 0, newData, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Kill the primary; the mirror must serve the *new* state.
	d.mu.Lock()
	entry := d.chunks[0]
	d.mu.Unlock()
	p, _ := d.Providers().At(entry.CPIndex)
	p.SetOutage(true)
	got, err := d.GetChunk("alice", "root", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatalf("mirror served stale data: %q", got)
	}
}

func TestTransientFailureRetry(t *testing.T) {
	// Providers failing 40% of operations transiently: retries mask it.
	fleet, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p, err := provider.New(provider.Info{
			Name: fmt.Sprintf("flaky%d", i), PL: privacy.High, CL: 0,
		}, provider.Options{FailureRate: 0.4, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := fleet.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	d, err := New(Config{Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	_ = d.RegisterClient("c")
	_ = d.AddPassword("c", "pw", privacy.High)
	data := payload(60_000, 75)
	// With 40% failure and 3 attempts the per-op failure rate is 6.4%;
	// an upload of ~10 shards may still fail occasionally, so allow a
	// few retries of the whole operation (a client would too).
	var uerr error
	for attempt := 0; attempt < 5; attempt++ {
		_, uerr = d.Upload("c", "pw", fmt.Sprintf("f%d", attempt), data, privacy.Moderate, UploadOptions{})
		if uerr == nil {
			// Reads can hit the same 6.4% per-op residual; retry them
			// like a client would as well.
			var got []byte
			var gerr error
			for ga := 0; ga < 5; ga++ {
				if got, gerr = d.GetFile("c", "pw", fmt.Sprintf("f%d", attempt)); gerr == nil {
					break
				}
			}
			if gerr != nil {
				t.Fatalf("get after flaky upload: %v", gerr)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("flaky round trip mismatch")
			}
			return
		}
	}
	t.Fatalf("all uploads failed despite retry: %v", uerr)
}

func TestDecommissionMovesEverything(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(80_000, 76)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	// Create a snapshot so every shard type exists.
	if err := d.UpdateChunk("alice", "root", "f", 0, []byte("v2"), UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Pick the busiest provider to evacuate.
	victim, most := 0, -1
	for i, p := range d.Providers().All() {
		if p.Len() > most {
			victim, most = i, p.Len()
		}
	}
	rep, err := d.Decommission(victim)
	if err != nil {
		t.Fatal(err)
	}
	vp, _ := d.Providers().At(victim)
	if vp.Len() != 0 {
		t.Fatalf("decommissioned provider still holds %d keys", vp.Len())
	}
	if rep.ChunksMoved+rep.MirrorsMoved+rep.ParityMoved+rep.SnapshotsMoved == 0 {
		t.Fatalf("nothing moved: %+v", rep)
	}
	// Data fully readable afterwards — even with the old provider gone.
	vp.SetOutage(true)
	got, err := d.GetFile("alice", "root", "f")
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("v2"), data[chunkSizeFor(t, privacy.Moderate):]...)
	if !bytes.Equal(got, want) {
		t.Fatal("post-decommission data mismatch")
	}
	// Accounting stays consistent.
	for i, p := range d.Providers().All() {
		if p.Len() != d.Stats().PerProvider[i] {
			t.Fatalf("provider %d holds %d keys, table says %d", i, p.Len(), d.Stats().PerProvider[i])
		}
	}
	// RAID still works after migration: fail another provider.
	for i := 0; i < 6; i++ {
		if i == victim {
			continue
		}
		p, _ := d.Providers().At(i)
		p.SetOutage(true)
		if _, err := d.GetFile("alice", "root", "f"); err != nil {
			t.Fatalf("provider %d down after decommission: %v", i, err)
		}
		p.SetOutage(false)
	}
}

func chunkSizeFor(t *testing.T, pl privacy.Level) int {
	t.Helper()
	size, err := privacy.DefaultChunkSizes().Size(pl)
	if err != nil {
		t.Fatal(err)
	}
	return size
}

func TestDecommissionDarkProviderUsesRAID(t *testing.T) {
	// The provider dies abruptly (outage first, then decommission):
	// payloads must come from parity reconstruction.
	d := testDistributor(t, 6)
	data := payload(60_000, 77)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	victim := -1
	for i, p := range d.Providers().All() {
		if p.Len() > 0 {
			victim = i
			break
		}
	}
	vp, _ := d.Providers().At(victim)
	vp.SetOutage(true)
	if _, err := d.Decommission(victim); err != nil {
		t.Fatalf("decommission of dark provider: %v", err)
	}
	got, err := d.GetFile("alice", "root", "f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data lost after dark decommission: %v", err)
	}
}

func TestDecommissionBadIndex(t *testing.T) {
	d := testDistributor(t, 3)
	if _, err := d.Decommission(9); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestOpMetrics(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(60_000, 90)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetFile("alice", "root", "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetChunk("alice", "root", "f", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetRange("alice", "root", "f", 10, 20); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateChunk("alice", "root", "f", 0, []byte("x"), UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.Uploads != 1 || m.FileReads != 1 || m.ChunkReads != 1 || m.RangeReads != 1 || m.Updates != 1 {
		t.Fatalf("op counters wrong: %+v", m)
	}
	if m.PrimaryHits == 0 {
		t.Fatalf("no primary hits recorded: %+v", m)
	}
	if m.MirrorHits != 0 || m.Reconstructions != 0 {
		t.Fatalf("unexpected recovery events on healthy fleet: %+v", m)
	}

	// Fail the primary of chunk 1: reads must record mirror hits.
	d.mu.Lock()
	entry := d.chunks[1]
	d.mu.Unlock()
	p, _ := d.Providers().At(entry.CPIndex)
	p.SetOutage(true)
	if _, err := d.GetChunk("alice", "root", "f", 1); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().MirrorHits == 0 {
		t.Fatalf("mirror hit not recorded: %+v", d.Metrics())
	}
	p.SetOutage(false)
	if err := d.RemoveFile("alice", "root", "f"); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().Removes != 1 {
		t.Fatalf("remove not counted: %+v", d.Metrics())
	}
}

func TestOpMetricsReconstruction(t *testing.T) {
	d := testDistributor(t, 6)
	if _, err := d.Upload("alice", "root", "f", payload(40_000, 91), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	entry := d.chunks[0]
	d.mu.Unlock()
	p, _ := d.Providers().At(entry.CPIndex)
	p.SetOutage(true)
	if _, err := d.GetChunk("alice", "root", "f", 0); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().Reconstructions == 0 {
		t.Fatalf("reconstruction not recorded: %+v", d.Metrics())
	}
}

func TestOpMetricsTransientRetries(t *testing.T) {
	fleet, _ := provider.NewFleet(
		provider.MustNew(provider.Info{Name: "a", PL: privacy.High, CL: 0}, provider.Options{FailureRate: 0.3, Seed: 1}),
		provider.MustNew(provider.Info{Name: "b", PL: privacy.High, CL: 0}, provider.Options{FailureRate: 0.3, Seed: 2}),
		provider.MustNew(provider.Info{Name: "c", PL: privacy.High, CL: 0}, provider.Options{FailureRate: 0.3, Seed: 3}),
		provider.MustNew(provider.Info{Name: "e", PL: privacy.High, CL: 0}, provider.Options{FailureRate: 0.3, Seed: 4}),
		provider.MustNew(provider.Info{Name: "f", PL: privacy.High, CL: 0}, provider.Options{FailureRate: 0.3, Seed: 5}),
	)
	d, _ := New(Config{Fleet: fleet})
	_ = d.RegisterClient("c")
	_ = d.AddPassword("c", "pw", privacy.High)
	for i := 0; i < 5; i++ {
		_, _ = d.Upload("c", "pw", fmt.Sprintf("f%d", i), payload(30_000, int64(i)), privacy.Moderate, UploadOptions{})
	}
	if d.Metrics().TransientRetries == 0 {
		t.Fatalf("no retries recorded against 30%%-flaky providers: %+v", d.Metrics())
	}
}

func TestAuditOrphans(t *testing.T) {
	d := testDistributor(t, 5)
	if _, err := d.Upload("alice", "root", "f", payload(40_000, 110), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Clean system: no orphans.
	rep, err := d.AuditOrphans(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Orphans) != 0 {
		t.Fatalf("clean system has orphans: %+v", rep.Orphans)
	}
	// Plant orphans directly on two providers (simulating an interrupted
	// removal).
	p0, _ := d.Providers().At(0)
	p1, _ := d.Providers().At(1)
	_ = p0.Put("orphan-a", []byte("junk"))
	_ = p1.Put("orphan-b", []byte("junk"))

	rep, err = d.AuditOrphans(false)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, keys := range rep.Orphans {
		total += len(keys)
	}
	if total != 2 || rep.Deleted != 0 {
		t.Fatalf("dry run = %+v", rep)
	}
	// GC pass removes them and data stays intact.
	rep, err = d.AuditOrphans(true)
	if err != nil || rep.Deleted != 2 {
		t.Fatalf("gc = %+v, %v", rep, err)
	}
	if _, err := d.GetFile("alice", "root", "f"); err != nil {
		t.Fatalf("data damaged by GC: %v", err)
	}
	rep, _ = d.AuditOrphans(false)
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans remain after GC: %+v", rep.Orphans)
	}
}

func TestAuditSkipsDownProviders(t *testing.T) {
	d := testDistributor(t, 4)
	p0, _ := d.Providers().At(0)
	_ = p0.Put("orphan", []byte("x"))
	p0.SetOutage(true)
	rep, err := d.AuditOrphans(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deleted != 0 {
		t.Fatalf("audit touched a down provider: %+v", rep)
	}
}
