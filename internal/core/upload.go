package core

import (
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/chunker"
	"repro/internal/cryptofrag"
	"repro/internal/mislead"
	"repro/internal/privacy"
	"repro/internal/raid"
)

// validateUpload checks the argument surface shared by Upload and
// UploadStream and resolves the effective RAID level. It reads only
// immutable configuration, so it takes no lock.
func (d *Distributor) validateUpload(filename string, pl privacy.Level, opts UploadOptions) (raid.Level, error) {
	if filename == "" {
		return 0, fmt.Errorf("%w: empty filename", ErrConfig)
	}
	if !pl.Valid() {
		return 0, fmt.Errorf("%w: privacy level %v", ErrConfig, pl)
	}
	if opts.MisleadFraction < 0 || opts.MisleadFraction >= 1 {
		return 0, fmt.Errorf("%w: mislead fraction %v outside [0,1)", ErrConfig, opts.MisleadFraction)
	}
	if opts.Replicas < 0 {
		return 0, fmt.Errorf("%w: replicas %d", ErrConfig, opts.Replicas)
	}
	if len(opts.EncryptKey) > 0 {
		switch len(opts.EncryptKey) {
		case 16, 24, 32:
		default:
			return 0, fmt.Errorf("%w: encryption key must be 16, 24 or 32 bytes", ErrConfig)
		}
		if opts.MisleadFraction > 0 || len(opts.MisleadLines) > 0 {
			return 0, fmt.Errorf("%w: misleading data and encryption are mutually exclusive", ErrConfig)
		}
	}
	level := opts.Assurance
	if level == 0 {
		level = d.defaultRaid
	}
	if opts.NoParity {
		level = raid.None
	}
	if !level.Valid() {
		return 0, fmt.Errorf("%w: raid level %v", ErrConfig, level)
	}
	return level, nil
}

// preparePayload builds a chunk's stored payload from its original data:
// encryption, line decoys or byte decoys per opts. The mislead RNG and
// the encryption nonce are d.mu-guarded, so callers hold d.mu.
func (d *Distributor) preparePayload(data []byte, encKey []byte, opts UploadOptions) ([]byte, mislead.Injection, error) {
	switch {
	case encKey != nil:
		payload, err := cryptofrag.Encrypt(encKey, data, d.nextEncNonce())
		return payload, mislead.Injection{}, err
	case len(opts.MisleadLines) > 0:
		return mislead.InjectLines(data, opts.MisleadLines, d.misleadRNG)
	case opts.MisleadFraction > 0:
		return mislead.Inject(data, opts.MisleadFraction, d.misleadRNG)
	}
	return data, mislead.Injection{}, nil
}

// Upload receives a file from a client, fragments it according to the
// file's privacy level, optionally injects misleading bytes, stripes the
// chunks with RAID parity and scatters everything over the provider
// fleet. It returns the chunk count the client later uses to request
// chunks by (filename, serial).
//
// The write runs in three phases. Plan (under d.mu): validate, chunk,
// build payloads, place shards and allocate virtual ids into staged
// tables that reference nothing live; the filename is reserved so a
// concurrent identical upload fails fast with ErrExists. Ship (no lock):
// every shard goes out with bounded fan-out and per-shard failover; one
// slow provider delays only this upload, not other clients. Commit
// (under d.mu): staged rows are rebased onto the live tables and the
// provider counts folded in atomically — or, on a failed ship, the
// staging is withdrawn and stored blobs rolled back, leaving no trace.
func (d *Distributor) Upload(client, password, filename string, data []byte, pl privacy.Level, opts UploadOptions) (FileInfo, error) {
	level, err := d.validateUpload(filename, pl, opts)
	if err != nil {
		return FileInfo{}, err
	}

	// ---- Plan: stage everything under the lock, mutate nothing live ----
	resKey := client + "\x00" + filename
	d.mu.Lock()
	c, err := d.authorize(client, password, pl)
	if err != nil {
		d.mu.Unlock()
		return FileInfo{}, err
	}
	if _, dup := c.Files[filename]; dup || d.reserved[resKey] {
		d.mu.Unlock()
		return FileInfo{}, fmt.Errorf("%w: %s", ErrExists, filename)
	}
	d.reserved[resKey] = true
	t := d.newTicketLocked()
	// abortLocked undoes the reservation and staging; used by every error
	// path once the ticket is open. Callers hold d.mu.
	abortLocked := func() {
		d.releaseTicketLocked(t)
		delete(d.reserved, resKey)
	}

	chunks, err := chunker.Split(data, pl, d.policy)
	if err != nil {
		abortLocked()
		d.mu.Unlock()
		return FileInfo{}, err
	}
	// Every pooled buffer this upload draws (chunk splits, stripe padding,
	// parity) is dead once the function returns: providers copy payloads on
	// Put and the committed tables hold only metadata, so the deferred
	// release cannot race anything live.
	pooled := make([][]byte, 0, len(chunks))
	defer func() {
		for _, b := range pooled {
			bufpool.Put(b)
		}
	}()
	for _, ch := range chunks {
		pooled = append(pooled, ch.Data)
	}

	// Prepare payloads (with optional misleading data) per chunk. This
	// stays in the plan phase: the mislead RNG and the encryption nonce
	// are d.mu-guarded.
	type prepared struct {
		payload []byte
		inj     mislead.Injection
		sum     [32]byte
		dataLen int
	}
	var encKey []byte
	if len(opts.EncryptKey) > 0 {
		encKey = append([]byte(nil), opts.EncryptKey...)
	}
	prep := make([]prepared, len(chunks))
	for i, ch := range chunks {
		payload, inj, perr := d.preparePayload(ch.Data, encKey, opts)
		if perr != nil {
			abortLocked()
			d.mu.Unlock()
			return FileInfo{}, perr
		}
		prep[i] = prepared{payload: payload, inj: inj, sum: ch.Sum, dataLen: len(ch.Data)}
	}

	parity := level.ParityShards()
	width, err := d.effectiveWidth(pl, parity)
	if err != nil {
		abortLocked()
		d.mu.Unlock()
		return FileInfo{}, err
	}

	d.fidSeq++
	fe := &fileEntry{Filename: filename, PL: pl, FID: d.fidSeq, Raid: level, ChunkIdx: make([]int, len(chunks))}

	// Staged rows use positions relative to the staged slices — the live
	// table lengths can change while the ship phase runs, so absolute
	// indices only exist at commit, when everything is rebased at once.
	var shards []stagedShard
	newChunks := make([]chunkEntry, 0, len(chunks))
	newStripes := make([]stripeEntry, 0, (len(chunks)+width-1)/width)

	for start := 0; start < len(prep); start += width {
		end := start + width
		if end > len(prep) {
			end = len(prep)
		}
		group := prep[start:end]
		shardLen := 0
		for _, p := range group {
			if len(p.payload) > shardLen {
				shardLen = len(p.payload)
			}
		}
		if shardLen == 0 {
			shardLen = 1 // parity over empty chunks still needs one byte
		}
		nShards := len(group) + parity
		placement, err := d.placeShards(pl, nShards)
		if err != nil {
			abortLocked()
			d.mu.Unlock()
			return FileInfo{}, err
		}

		stripePos := len(newStripes)
		st := stripeEntry{ID: stripePos, Level: level, ShardLen: shardLen}
		padded := make([][]byte, len(group))
		for gi, p := range group {
			serial := start + gi
			vid := d.vids.Next()
			provIdx := placement[gi]
			chunkPos := len(newChunks)
			ce := chunkEntry{
				VirtualID:  vid,
				PL:         pl,
				CPIndex:    provIdx,
				SPIndex:    -1,
				Mislead:    p.inj,
				Client:     client,
				Filename:   filename,
				Serial:     serial,
				PayloadLen: len(p.payload),
				DataLen:    p.dataLen,
				Sum:        p.sum,
				EncKey:     encKey,
				StripeID:   stripePos,
			}
			// Mirrors: extra full copies on providers distinct from the
			// chunk's own and from each other.
			exclude := map[int]bool{provIdx: true}
			for r := 0; r < opts.Replicas; r++ {
				mIdx, err := d.placeParityExcluding(pl, exclude)
				if err != nil {
					abortLocked()
					d.mu.Unlock()
					return FileInfo{}, fmt.Errorf("placing replica %d of chunk %d: %w", r+1, serial, err)
				}
				exclude[mIdx] = true
				mvid := d.vids.Next()
				ce.Mirrors = append(ce.Mirrors, mirrorRef{VirtualID: mvid, CPIndex: mIdx})
				shards = append(shards, stagedShard{
					kind: shardMirror, chunkPos: chunkPos, mirrorPos: r,
					stripePos: stripePos, parityPos: -1,
					provIdx: mIdx, vid: mvid, payload: p.payload,
				})
				d.stageLocked(t, mIdx, mvid)
			}

			newChunks = append(newChunks, ce)
			fe.ChunkIdx[serial] = chunkPos
			st.Members = append(st.Members, chunkPos)
			shards = append(shards, stagedShard{
				kind: shardData, chunkPos: chunkPos, mirrorPos: -1,
				stripePos: stripePos, parityPos: -1,
				provIdx: provIdx, vid: vid, payload: p.payload,
			})
			d.stageLocked(t, provIdx, vid)

			// Parity math needs equal-length shards; only payloads shorter
			// than the stripe width get a pooled, zero-padded copy.
			if len(p.payload) == shardLen {
				padded[gi] = p.payload
			} else {
				pad := bufpool.Get(shardLen)
				n := copy(pad, p.payload)
				clear(pad[n:])
				padded[gi] = pad
				pooled = append(pooled, pad)
			}
		}
		if parity > 0 {
			parityBufs := make([][]byte, parity)
			for pi := range parityBufs {
				parityBufs[pi] = bufpool.Get(shardLen)
				pooled = append(pooled, parityBufs[pi])
			}
			if err := raid.ParityInto(level, padded, parityBufs); err != nil {
				abortLocked()
				d.mu.Unlock()
				return FileInfo{}, err
			}
			for pi := 0; pi < parity; pi++ {
				vid := d.vids.Next()
				provIdx := placement[len(group)+pi]
				st.Parity = append(st.Parity, parityShard{VirtualID: vid, CPIndex: provIdx})
				shards = append(shards, stagedShard{
					kind: shardParity, chunkPos: -1, mirrorPos: -1,
					stripePos: stripePos, parityPos: pi,
					provIdx: provIdx, vid: vid, payload: parityBufs[pi],
				})
				d.stageLocked(t, provIdx, vid)
			}
		}
		newStripes = append(newStripes, st)
	}
	d.mu.Unlock()

	// ---- Ship: all provider puts happen without the lock ----
	// shipStaged fails individual shards over to other healthy providers;
	// if a shard runs out of providers, everything already stored is
	// rolled back here, so a failed upload leaves no orphan blobs.
	stored, err := d.shipStaged(pl, shards, newChunks, newStripes, t)
	if err != nil {
		d.mu.Lock()
		abortLocked()
		d.mu.Unlock()
		d.rollbackStored(stored)
		return FileInfo{}, fmt.Errorf("core: upload aborted: %w", err)
	}

	// ---- Commit: rebase staged rows onto the live tables atomically ----
	d.mu.Lock()
	base := len(d.chunks)
	sbase := len(d.stripes)
	for i := range newChunks {
		newChunks[i].StripeID += sbase
	}
	for i := range newStripes {
		newStripes[i].ID += sbase
		for j := range newStripes[i].Members {
			newStripes[i].Members[j] += base
		}
	}
	for serial := range fe.ChunkIdx {
		fe.ChunkIdx[serial] += base
	}
	// Durability point: the commit record must be on the log before the
	// rows become visible. A failed append aborts like a failed ship —
	// staging withdrawn, stored blobs rolled back, no trace.
	rec := &walRecord{
		Op: "upload", Client: client, Filename: filename,
		FID: fe.FID, PL: pl, Raid: level,
		ChunksBase: base, StripesBase: sbase,
		Chunks: newChunks, Stripes: newStripes, ChunkIdx: fe.ChunkIdx,
		FileGen: fe.Gen, ClientGen: c.Gen + 1, Gen: d.gen + 1,
	}
	if err := d.logAppendLocked(rec); err != nil {
		abortLocked()
		d.mu.Unlock()
		d.rollbackStored(stored)
		return FileInfo{}, fmt.Errorf("core: upload aborted: %w", err)
	}
	d.chunks = append(d.chunks, newChunks...)
	d.stripes = append(d.stripes, newStripes...)
	d.commitTicketLocked(t)
	delete(d.reserved, resKey)
	c.Files[filename] = fe
	c.Count += len(chunks)
	c.Gen++
	d.gen++
	d.counters.uploads.Add(1)
	d.maybeCheckpointLocked()
	d.mu.Unlock()

	return FileInfo{Filename: filename, PL: pl, Chunks: len(chunks), Raid: level, Bytes: len(data)}, nil
}
