package core

import (
	"fmt"

	"repro/internal/chunker"
	"repro/internal/cryptofrag"
	"repro/internal/mislead"
	"repro/internal/privacy"
	"repro/internal/raid"
)

// Upload receives a file from a client, fragments it according to the
// file's privacy level, optionally injects misleading bytes, stripes the
// chunks with RAID parity and scatters everything over the provider
// fleet. It returns the chunk count the client later uses to request
// chunks by (filename, serial).
func (d *Distributor) Upload(client, password, filename string, data []byte, pl privacy.Level, opts UploadOptions) (FileInfo, error) {
	if filename == "" {
		return FileInfo{}, fmt.Errorf("%w: empty filename", ErrConfig)
	}
	if !pl.Valid() {
		return FileInfo{}, fmt.Errorf("%w: privacy level %v", ErrConfig, pl)
	}
	if opts.MisleadFraction < 0 || opts.MisleadFraction >= 1 {
		return FileInfo{}, fmt.Errorf("%w: mislead fraction %v outside [0,1)", ErrConfig, opts.MisleadFraction)
	}
	if opts.Replicas < 0 {
		return FileInfo{}, fmt.Errorf("%w: replicas %d", ErrConfig, opts.Replicas)
	}
	if len(opts.EncryptKey) > 0 {
		switch len(opts.EncryptKey) {
		case 16, 24, 32:
		default:
			return FileInfo{}, fmt.Errorf("%w: encryption key must be 16, 24 or 32 bytes", ErrConfig)
		}
		if opts.MisleadFraction > 0 || len(opts.MisleadLines) > 0 {
			return FileInfo{}, fmt.Errorf("%w: misleading data and encryption are mutually exclusive", ErrConfig)
		}
	}
	level := opts.Assurance
	if level == 0 {
		level = d.defaultRaid
	}
	if opts.NoParity {
		level = raid.None
	}
	if !level.Valid() {
		return FileInfo{}, fmt.Errorf("%w: raid level %v", ErrConfig, level)
	}

	d.mu.Lock()
	defer d.mu.Unlock()

	c, err := d.authorize(client, password, pl)
	if err != nil {
		return FileInfo{}, err
	}
	if _, dup := c.Files[filename]; dup {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrExists, filename)
	}

	chunks, err := chunker.Split(data, pl, d.policy)
	if err != nil {
		return FileInfo{}, err
	}

	// Prepare payloads (with optional misleading data) per chunk.
	type prepared struct {
		payload []byte
		inj     mislead.Injection
		sum     [32]byte
		dataLen int
	}
	var encKey []byte
	if len(opts.EncryptKey) > 0 {
		encKey = append([]byte(nil), opts.EncryptKey...)
	}
	prep := make([]prepared, len(chunks))
	for i, ch := range chunks {
		payload := ch.Data
		var inj mislead.Injection
		switch {
		case encKey != nil:
			payload, err = cryptofrag.Encrypt(encKey, ch.Data, d.nextEncNonce())
		case len(opts.MisleadLines) > 0:
			payload, inj, err = mislead.InjectLines(ch.Data, opts.MisleadLines, d.misleadRNG)
		case opts.MisleadFraction > 0:
			payload, inj, err = mislead.Inject(ch.Data, opts.MisleadFraction, d.misleadRNG)
		}
		if err != nil {
			return FileInfo{}, err
		}
		prep[i] = prepared{payload: payload, inj: inj, sum: ch.Sum, dataLen: len(ch.Data)}
	}

	parity := level.ParityShards()
	width, err := d.effectiveWidth(pl, parity)
	if err != nil {
		return FileInfo{}, err
	}

	fe := &fileEntry{Filename: filename, PL: pl, Raid: level, ChunkIdx: make([]int, len(chunks))}

	// Stage everything; only commit tables and counts after all provider
	// puts succeed (possibly after per-shard failover).
	var shards []stagedShard
	newChunks := make([]chunkEntry, 0, len(chunks))
	newStripes := make([]stripeEntry, 0, (len(chunks)+width-1)/width)
	baseChunkIdx := len(d.chunks)
	baseStripeIdx := len(d.stripes)
	countDelta := make([]int, d.fleet.Len())

	for start := 0; start < len(prep); start += width {
		end := start + width
		if end > len(prep) {
			end = len(prep)
		}
		group := prep[start:end]
		shardLen := 0
		for _, p := range group {
			if len(p.payload) > shardLen {
				shardLen = len(p.payload)
			}
		}
		if shardLen == 0 {
			shardLen = 1 // parity over empty chunks still needs one byte
		}
		nShards := len(group) + parity
		placement, err := d.placeShardsWithDelta(pl, nShards, countDelta)
		if err != nil {
			return FileInfo{}, err
		}

		stripePos := len(newStripes)
		st := stripeEntry{ID: baseStripeIdx + stripePos, Level: level, ShardLen: shardLen}
		padded := make([][]byte, len(group))
		for gi, p := range group {
			serial := start + gi
			vid := d.vids.Next()
			provIdx := placement[gi]
			chunkPos := len(newChunks)
			ce := chunkEntry{
				VirtualID:  vid,
				PL:         pl,
				CPIndex:    provIdx,
				SPIndex:    -1,
				Mislead:    p.inj,
				Client:     client,
				Filename:   filename,
				Serial:     serial,
				PayloadLen: len(p.payload),
				DataLen:    p.dataLen,
				Sum:        p.sum,
				EncKey:     encKey,
				StripeID:   st.ID,
			}
			// Mirrors: extra full copies on providers distinct from the
			// chunk's own and from each other.
			exclude := map[int]bool{provIdx: true}
			for r := 0; r < opts.Replicas; r++ {
				mIdx, err := d.placeExcludingWithDelta(pl, exclude, countDelta)
				if err != nil {
					return FileInfo{}, fmt.Errorf("placing replica %d of chunk %d: %w", r+1, serial, err)
				}
				exclude[mIdx] = true
				mvid := d.vids.Next()
				ce.Mirrors = append(ce.Mirrors, mirrorRef{VirtualID: mvid, CPIndex: mIdx})
				shards = append(shards, stagedShard{
					kind: shardMirror, chunkPos: chunkPos, mirrorPos: r,
					stripePos: stripePos, parityPos: -1,
					provIdx: mIdx, vid: mvid, payload: p.payload,
				})
				countDelta[mIdx]++
			}

			idx := baseChunkIdx + chunkPos
			newChunks = append(newChunks, ce)
			fe.ChunkIdx[serial] = idx
			st.Members = append(st.Members, idx)
			shards = append(shards, stagedShard{
				kind: shardData, chunkPos: chunkPos, mirrorPos: -1,
				stripePos: stripePos, parityPos: -1,
				provIdx: provIdx, vid: vid, payload: p.payload,
			})
			countDelta[provIdx]++

			pad := make([]byte, shardLen)
			copy(pad, p.payload)
			padded[gi] = pad
		}
		if parity > 0 {
			stripe, err := raid.Encode(level, padded)
			if err != nil {
				return FileInfo{}, err
			}
			for pi := 0; pi < parity; pi++ {
				vid := d.vids.Next()
				provIdx := placement[len(group)+pi]
				st.Parity = append(st.Parity, parityShard{VirtualID: vid, CPIndex: provIdx})
				shards = append(shards, stagedShard{
					kind: shardParity, chunkPos: -1, mirrorPos: -1,
					stripePos: stripePos, parityPos: pi,
					provIdx: provIdx, vid: vid, payload: stripe.Shards[len(group)+pi],
				})
				countDelta[provIdx]++
			}
		}
		newStripes = append(newStripes, st)
	}

	// Ship all shards with bounded fan-out, failing individual shards
	// over to other healthy providers; shipStaged rolls back anything
	// already stored if a shard runs out of providers, so a failed
	// upload leaves no orphan blobs and no table rows.
	if err := d.shipStaged(pl, shards, newChunks, newStripes, countDelta); err != nil {
		return FileInfo{}, fmt.Errorf("core: upload aborted: %w", err)
	}

	// Commit.
	d.chunks = append(d.chunks, newChunks...)
	d.stripes = append(d.stripes, newStripes...)
	for i, delta := range countDelta {
		d.provCount[i] += delta
	}
	c.Files[filename] = fe
	c.Count += len(chunks)
	d.counters.uploads.Add(1)

	return FileInfo{Filename: filename, PL: pl, Chunks: len(chunks), Raid: level, Bytes: len(data)}, nil
}

// placeShardsWithDelta is placeShards that also accounts for shard counts
// staged by the current request but not yet committed, so multi-stripe
// uploads spread load correctly.
func (d *Distributor) placeShardsWithDelta(pl privacy.Level, n int, delta []int) ([]int, error) {
	for i, v := range delta {
		d.provCount[i] += v
	}
	placement, err := d.placeShards(pl, n)
	for i, v := range delta {
		d.provCount[i] -= v
	}
	return placement, err
}

// placeExcludingWithDelta is placeParityExcluding with staged counts.
func (d *Distributor) placeExcludingWithDelta(pl privacy.Level, exclude map[int]bool, delta []int) (int, error) {
	for i, v := range delta {
		d.provCount[i] += v
	}
	idx, err := d.placeParityExcluding(pl, exclude)
	for i, v := range delta {
		d.provCount[i] -= v
	}
	return idx, err
}
