package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/wal"
)

// benchDistributor builds a distributor over n in-memory providers with a
// fixed artificial latency on every Put — the regime the unlocked ship
// phase is built for, where provider round-trips dominate an upload's
// wall-clock time.
func benchDistributor(b *testing.B, n int, putLatency time.Duration) *Distributor {
	b.Helper()
	f, err := provider.NewFleet()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("B%d", i), PL: privacy.High, CL: 1,
		}, provider.Options{})
		if err != nil {
			b.Fatal(err)
		}
		h := provider.NewHooked(mem)
		h.SetBeforePut(func(int, string) error {
			time.Sleep(putLatency)
			return nil
		})
		if err := f.Add(h); err != nil {
			b.Fatal(err)
		}
	}
	d, err := New(Config{Fleet: f, Parallelism: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		b.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		b.Fatal(err)
	}
	return d
}

// benchReadDistributor builds a zero-latency distributor holding one
// uploaded file, for read-path benchmarks.
func benchReadDistributor(b *testing.B, fileBytes int, mislead float64, cacheBytes int64) (*Distributor, []byte) {
	b.Helper()
	f, err := provider.NewFleet()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("R%d", i), PL: privacy.High, CL: 1,
		}, provider.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Add(mem); err != nil {
			b.Fatal(err)
		}
	}
	d, err := New(Config{Fleet: f, Parallelism: 4, CacheBytes: cacheBytes})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		b.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		b.Fatal(err)
	}
	data := payload(fileBytes, 7)
	if _, err := d.Upload("alice", "root", "bench.bin", data, privacy.Moderate, UploadOptions{MisleadFraction: mislead}); err != nil {
		b.Fatal(err)
	}
	return d, data
}

// BenchmarkGetFile measures the hot whole-file read path: fetch plans,
// provider gets, mislead stripping and final assembly. allocs/op is the
// acceptance metric for the pooled/into-buffer assembly path.
func BenchmarkGetFile(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		mislead float64
	}{{"plain", 0}, {"mislead", 0.1}} {
		b.Run(cfg.name+"/256KiB", func(b *testing.B) {
			d, want := benchReadDistributor(b, 256<<10, cfg.mislead, 0)
			b.SetBytes(int64(len(want)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := d.GetFile("alice", "root", "bench.bin")
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != len(want) {
					b.Fatalf("got %d bytes, want %d", len(got), len(want))
				}
			}
		})
	}
}

// BenchmarkGetChunk measures single-chunk reads, cold (no cache) and hot
// (served from the generation-aware chunk cache without provider I/O).
func BenchmarkGetChunk(b *testing.B) {
	for _, cfg := range []struct {
		name       string
		cacheBytes int64
	}{{"cold", 0}, {"cached", 32 << 20}} {
		b.Run(cfg.name, func(b *testing.B) {
			d, _ := benchReadDistributor(b, 256<<10, 0, cfg.cacheBytes)
			b.SetBytes(16 << 10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.GetChunk("alice", "root", "bench.bin", 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchTailDistributor builds a distributor over 8 providers that all
// carry a 20ms LatencyModel, but whose injected Sleep only really blocks
// on the one provider `slow` points at — armed after upload, aimed at
// chunk 0's primary. The slow provider stays healthy and answers
// correctly; it is just late, the regime hedged reads exist for. Every
// chunk carries one mirror replica so a hedge has somewhere to go.
func benchTailDistributor(b *testing.B, hedgeAfter time.Duration) (*Distributor, []byte) {
	b.Helper()
	const perOp = 20 * time.Millisecond
	slow := &atomic.Int64{}
	slow.Store(-1)
	f, err := provider.NewFleet()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		i := i
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("T%d", i), PL: privacy.High, CL: 1,
		}, provider.Options{
			Latency: provider.LatencyModel{PerOp: perOp},
			Sleep: func(d time.Duration) {
				if int64(i) == slow.Load() {
					time.Sleep(d)
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Add(mem); err != nil {
			b.Fatal(err)
		}
	}
	d, err := New(Config{Fleet: f, Parallelism: 4, HedgeAfter: hedgeAfter})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		b.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		b.Fatal(err)
	}
	data := payload(256<<10, 21)
	if _, err := d.Upload("alice", "root", "bench.bin", data, privacy.Moderate, UploadOptions{Replicas: 1}); err != nil {
		b.Fatal(err)
	}
	slow.Store(int64(d.chunks[d.clients["alice"].Files["bench.bin"].ChunkIdx[0]].CPIndex))
	return d, data
}

// BenchmarkGetFileTail measures whole-file reads with one slow (but
// healthy and correct) provider on the read path. unhedged waits out the
// full 20ms stall on every read; hedged races a mirror after at most
// -hedge-after (4ms here) and should land near that bound — the ratio is
// the tail-read acceptance metric (>= 2x).
func BenchmarkGetFileTail(b *testing.B) {
	for _, cfg := range []struct {
		name       string
		hedgeAfter time.Duration
	}{{"unhedged", 0}, {"hedged", 4 * time.Millisecond}} {
		b.Run(cfg.name+"/256KiB", func(b *testing.B) {
			d, want := benchTailDistributor(b, cfg.hedgeAfter)
			b.SetBytes(int64(len(want)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := d.GetFile("alice", "root", "bench.bin")
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != len(want) {
					b.Fatalf("got %d bytes, want %d", len(got), len(want))
				}
			}
		})
	}
}

// benchWALDistributor builds a distributor over 8 zero-latency in-memory
// providers with the given WAL mode ("" = in-memory metadata), for
// measuring the durability layer's overhead in isolation.
func benchWALDistributor(b *testing.B, dir string, policy wal.SyncPolicy) *Distributor {
	b.Helper()
	f, err := provider.NewFleet()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("W%d", i), PL: privacy.High, CL: 1,
		}, provider.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Add(mem); err != nil {
			b.Fatal(err)
		}
	}
	d, err := New(Config{Fleet: f, Parallelism: 4, WALDir: dir, WALSync: policy})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		b.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkUploadWALOverhead measures what durable metadata costs an
// upload against the in-memory baseline. The acceptance criterion is
// grouped sync within 15% of mem; always pays a real fsync per commit
// and is reported for comparison.
func BenchmarkUploadWALOverhead(b *testing.B) {
	data := payload(8<<10, 77)
	for _, cfg := range []struct {
		name   string
		wal    bool
		policy wal.SyncPolicy
	}{
		{"mem", false, 0},
		{"off", true, wal.SyncOff},
		{"grouped", true, wal.SyncGrouped},
		{"always", true, wal.SyncAlways},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			dir := ""
			if cfg.wal {
				dir = b.TempDir()
			}
			d := benchWALDistributor(b, dir, cfg.policy)
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("f-%d", i)
				if _, err := d.Upload("alice", "root", name, data, privacy.Moderate, UploadOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentUploads measures upload throughput as client
// concurrency grows. With provider I/O outside d.mu the ns/op figure
// should drop markedly from workers=1 to workers=4 and 8; under the old
// lock-across-I/O write path all three rungs were equal.
func BenchmarkConcurrentUploads(b *testing.B) {
	data := payload(8<<10, 99)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			d := benchDistributor(b, 8, 200*time.Microsecond)
			b.SetBytes(int64(len(data)))
			var seq atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := seq.Add(1)
						if i > int64(b.N) {
							return
						}
						name := fmt.Sprintf("f-%d", i)
						if _, err := d.Upload("alice", "root", name, data, privacy.Moderate, UploadOptions{}); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
