package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/privacy"
	"repro/internal/raid"
)

func TestGetFileSurvivesOneProviderOutageRAID5(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(120_000, 20)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Knock out each provider in turn; RAID-5 must mask every single
	// failure.
	for i := 0; i < 6; i++ {
		p, _ := d.Providers().At(i)
		p.SetOutage(true)
		got, err := d.GetFile("alice", "root", "f")
		if err != nil {
			t.Fatalf("provider %d down: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("provider %d down: data mismatch", i)
		}
		p.SetOutage(false)
	}
}

func TestGetFileSurvivesTwoOutagesRAID6(t *testing.T) {
	d := testDistributor(t, 7)
	data := payload(100_000, 21)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{Assurance: raid.RAID6}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			pi, _ := d.Providers().At(i)
			pj, _ := d.Providers().At(j)
			pi.SetOutage(true)
			pj.SetOutage(true)
			got, err := d.GetFile("alice", "root", "f")
			if err != nil {
				t.Fatalf("providers %d,%d down: %v", i, j, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("providers %d,%d down: mismatch", i, j)
			}
			pi.SetOutage(false)
			pj.SetOutage(false)
		}
	}
}

func TestRAID5FailsUnderTwoOutages(t *testing.T) {
	// Stripe width 2 + parity on a 3-provider fleet: every stripe touches
	// all three providers, so two outages must make some chunk
	// unrecoverable.
	d, err := New(Config{Fleet: testFleet(t, 3), StripeWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = d.RegisterClient("alice")
	_ = d.AddPassword("alice", "root", privacy.High)
	if _, err := d.Upload("alice", "root", "f", payload(60_000, 22), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	p0, _ := d.Providers().At(0)
	p1, _ := d.Providers().At(1)
	p0.SetOutage(true)
	p1.SetOutage(true)
	if _, err := d.GetFile("alice", "root", "f"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

func TestNoParityFailsUnderOneOutage(t *testing.T) {
	d := testDistributor(t, 4)
	if _, err := d.Upload("alice", "root", "f", payload(50_000, 23), privacy.Moderate, UploadOptions{NoParity: true}); err != nil {
		t.Fatal(err)
	}
	// Find a provider actually hosting a shard and fail it.
	failed := false
	for i := 0; i < 4; i++ {
		p, _ := d.Providers().At(i)
		if p.Len() == 0 {
			continue
		}
		p.SetOutage(true)
		_, err := d.GetFile("alice", "root", "f")
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("provider %d down without parity: err = %v", i, err)
		}
		p.SetOutage(false)
		failed = true
		break
	}
	if !failed {
		t.Fatal("no provider hosted any shard")
	}
}

func TestRecoveryWithMisleadingData(t *testing.T) {
	// RAID reconstruction must compose with mislead stripping: parity is
	// computed over the inflated payloads.
	d := testDistributor(t, 6)
	data := payload(80_000, 24)
	if _, err := d.Upload("alice", "root", "f", data, privacy.High, UploadOptions{MisleadFraction: 0.3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p, _ := d.Providers().At(i)
		p.SetOutage(true)
		got, err := d.GetFile("alice", "root", "f")
		if err != nil {
			t.Fatalf("provider %d down: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("provider %d down: mismatch", i)
		}
		p.SetOutage(false)
	}
}

func TestCorruptedShardDetectedAndRecovered(t *testing.T) {
	d := testDistributor(t, 5)
	data := payload(30_000, 25)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt one stored shard in place (same length, flipped bytes).
	d.mu.Lock()
	entry := d.chunks[0]
	d.mu.Unlock()
	p, _ := d.Providers().At(entry.CPIndex)
	stored, err := p.Get(entry.VirtualID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stored {
		stored[i] ^= 0xA5
	}
	if err := p.Put(entry.VirtualID, stored); err != nil {
		t.Fatal(err)
	}
	// Same length ⇒ the provider's answer is plausible, but the rung's
	// end-to-end checksum rejects it and the ladder falls through to RAID
	// reconstruction: the client gets the true bytes, never the rot.
	got, err := d.GetChunk("alice", "root", "f", 0)
	if err != nil {
		t.Fatalf("GetChunk should rescue silent corruption via parity: %v", err)
	}
	want := data[:len(got)]
	if !bytes.Equal(got, want) {
		t.Fatal("rescued chunk bytes mismatch")
	}
	m := d.Metrics()
	if m.CorruptionsDetected == 0 {
		t.Fatal("CorruptionsDetected = 0, want > 0")
	}
	if m.Reconstructions == 0 {
		t.Fatal("Reconstructions = 0, want > 0 (rescue must come from parity)")
	}
}

func TestTruncatedShardTriggersReconstruction(t *testing.T) {
	d := testDistributor(t, 5)
	data := payload(30_000, 26)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	entry := d.chunks[0]
	d.mu.Unlock()
	p, _ := d.Providers().At(entry.CPIndex)
	// Replace the shard with a truncated blob: length check fails and the
	// distributor reconstructs from parity.
	if err := p.Put(entry.VirtualID, []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetChunk("alice", "root", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := privacy.DefaultChunkSizes().Size(privacy.Moderate)
	if !bytes.Equal(got, data[:size]) {
		t.Fatal("reconstructed chunk mismatch")
	}
}
