package core

import "sync/atomic"

// OpMetrics counts the distributor's data-path events — the observability
// a production deployment needs to see how often the resilience machinery
// (mirrors, RAID reconstruction, retries) actually fires.
type OpMetrics struct {
	Uploads   int64
	FileReads int64
	// StreamUploads / StreamReads count the transfers that went through
	// the streaming pipeline (UploadStream / GetFileTo); they are also
	// included in Uploads / FileReads.
	StreamUploads    int64
	StreamReads      int64
	ChunkReads       int64
	RangeReads       int64
	Updates          int64
	Removes          int64
	PrimaryHits      int64 // payload served by the chunk's own provider
	MirrorHits       int64 // payload served by a replica
	Reconstructions  int64 // payload rebuilt from RAID peers
	TransientRetries int64
	WriteFailovers   int64 // shards re-placed after a put exhausted retries
	RollbackDeletes  int64 // best-effort deletes issued unwinding a failed write
	CircuitOpens     int64 // provider circuit-breaker open events
	ProbeSuccesses   int64 // half-open probes that closed a circuit
	HedgedReads      int64 // payload reads where a hedge rung was launched
	HedgeWins        int64 // reads won by a hedge-launched rung
	CoalescedReads   int64 // reads served by another reader's in-flight fetch
	// CorruptionsDetected counts provider answers that had the right
	// length but failed end-to-end verification — silent corruption the
	// read ladder rescued (or at least refused to serve).
	CorruptionsDetected int64
	// Cache reports the read-side chunk cache; all-zero when caching is
	// disabled (Config.CacheBytes == 0).
	Cache CacheStats
	// WAL reports the durability layer; all-zero when the distributor is
	// in-memory (Config.WALDir == ""). Deterministic under SyncAlways.
	WAL WALStats
}

// opCounters is the internal atomic representation.
type opCounters struct {
	uploads, fileReads, chunkReads, rangeReads, updates, removes atomic.Int64
	streamUploads, streamReads                                   atomic.Int64
	primaryHits, mirrorHits, reconstructions, transientRetries   atomic.Int64
	writeFailovers, rollbackDeletes                              atomic.Int64
	hedgedReads, hedgeWins, corruptionsDetected                  atomic.Int64
}

// Metrics returns a snapshot of the distributor's operation counters.
func (d *Distributor) Metrics() OpMetrics {
	opens, probes := d.health.Totals()
	return OpMetrics{
		Uploads:             d.counters.uploads.Load(),
		FileReads:           d.counters.fileReads.Load(),
		StreamUploads:       d.counters.streamUploads.Load(),
		StreamReads:         d.counters.streamReads.Load(),
		ChunkReads:          d.counters.chunkReads.Load(),
		RangeReads:          d.counters.rangeReads.Load(),
		Updates:             d.counters.updates.Load(),
		Removes:             d.counters.removes.Load(),
		PrimaryHits:         d.counters.primaryHits.Load(),
		MirrorHits:          d.counters.mirrorHits.Load(),
		Reconstructions:     d.counters.reconstructions.Load(),
		TransientRetries:    d.counters.transientRetries.Load(),
		WriteFailovers:      d.counters.writeFailovers.Load(),
		RollbackDeletes:     d.counters.rollbackDeletes.Load(),
		CircuitOpens:        opens,
		ProbeSuccesses:      probes,
		HedgedReads:         d.counters.hedgedReads.Load(),
		HedgeWins:           d.counters.hedgeWins.Load(),
		CoalescedReads:      d.flights.coalesced.Load(),
		CorruptionsDetected: d.counters.corruptionsDetected.Load(),
		Cache:               d.cache.stats(),
		WAL:                 d.walStats(),
	}
}
