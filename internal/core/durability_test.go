package core

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/privacy"
	"repro/internal/raid"
	"repro/internal/wal"
)

// runWALWorkload drives a representative mutation mix through d: it
// touches every record type the log can carry except the decommission
// moves (covered by TestWALReplayAfterDecommission).
func runWALWorkload(t *testing.T, d *Distributor) {
	t.Helper()
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "guest", privacy.Public); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("bob"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("bob", "pw", privacy.Moderate); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upload("alice", "root", "f1", payload(40_000, 1), privacy.Moderate, UploadOptions{Assurance: raid.RAID6, Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upload("alice", "root", "f2", payload(25_000, 2), privacy.High, UploadOptions{Assurance: raid.RAID5}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upload("bob", "pw", "g1", payload(12_000, 3), privacy.Public, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateChunk("alice", "root", "f1", 1, payload(9_000, 4), UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveChunk("alice", "root", "f1", 0); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveFile("alice", "root", "f2"); err != nil {
		t.Fatal(err)
	}
}

func TestWALReplayEquivalence(t *testing.T) {
	fleet := testFleet(t, 8)
	dir := t.TempDir()
	d, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	runWALWorkload(t, d)
	want := d.StateView()
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}

	d2, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	got := d2.StateView()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("recovered state differs from pre-crash state\npre:  %+v\npost: %+v", want, got)
	}
	st := d2.Metrics().WAL
	if !st.Enabled || st.Replayed == 0 {
		t.Fatalf("expected replayed records after a crash, got %+v", st)
	}
	// The recovered distributor keeps serving: the surviving file reads
	// back byte-identical through the normal path.
	wantData := payload(12_000, 3)
	gotData, err := d2.GetFile("bob", "pw", "g1")
	if err != nil {
		t.Fatal(err)
	}
	if string(gotData) != string(wantData) {
		t.Fatal("recovered distributor served wrong bytes")
	}
	// And keeps accepting mutations.
	if _, err := d2.Upload("bob", "pw", "g2", payload(5_000, 5), privacy.Public, UploadOptions{}); err != nil {
		t.Fatalf("post-recovery upload: %v", err)
	}
}

func TestWALReplayAfterDecommission(t *testing.T) {
	fleet := testFleet(t, 8)
	dir := t.TempDir()
	d, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upload("alice", "root", "f", payload(60_000, 7), privacy.Moderate, UploadOptions{Assurance: raid.RAID6, Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	// UpdateChunk leaves a pre-modification snapshot blob behind, so the
	// decommission below also exercises the snapshot-move records.
	if err := d.UpdateChunk("alice", "root", "f", 0, payload(7_000, 8), UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decommission(2); err != nil {
		t.Fatal(err)
	}
	want := d.StateView()
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	d2, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if got := d2.StateView(); !reflect.DeepEqual(want, got) {
		t.Fatalf("recovered state differs after decommission replay\npre:  %+v\npost: %+v", want, got)
	}
}

func TestWALGracefulCloseReplaysNothing(t *testing.T) {
	fleet := testFleet(t, 8)
	dir := t.TempDir()
	d, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncGrouped})
	if err != nil {
		t.Fatal(err)
	}
	runWALWorkload(t, d)
	want := d.StateView()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := d.Close(ctx); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := d.Upload("alice", "root", "late", payload(100, 9), privacy.Public, UploadOptions{}); err == nil {
		t.Fatal("upload after Close must fail")
	}

	d2, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	st := d2.Metrics().WAL
	if !st.RecoveredSnapshot {
		t.Fatalf("graceful close must leave a final checkpoint, got %+v", st)
	}
	if st.Replayed != 0 {
		t.Fatalf("graceful close must leave no log tail; replayed %d records", st.Replayed)
	}
	if got := d2.StateView(); !reflect.DeepEqual(want, got) {
		t.Fatal("state recovered from the final checkpoint differs")
	}
}

func TestWALSnapshotRotation(t *testing.T) {
	fleet := testFleet(t, 8)
	dir := t.TempDir()
	d, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	runWALWorkload(t, d) // 11 commits > 2 checkpoint cadences
	st := d.Metrics().WAL
	if st.Checkpoints < 2 {
		t.Fatalf("Checkpoints = %d, want >= 2 with SnapshotEvery=4 over %d records", st.Checkpoints, st.Records)
	}
	if st.SinceCheckpoint >= 4+1 {
		t.Fatalf("SinceCheckpoint = %d, cadence not enforced", st.SinceCheckpoint)
	}
	// Rotation purged old segments: the directory never accumulates more
	// than the active segment plus the latest snapshot lineage.
	info, err := wal.Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Segments) != 1 || len(info.Snapshots) != 1 {
		t.Fatalf("after rotation: %d segments, %d snapshots; want 1 and 1", len(info.Segments), len(info.Snapshots))
	}
}

func TestWALRecoverySweepsOrphans(t *testing.T) {
	fleet := testFleet(t, 8)
	dir := t.TempDir()
	d, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upload("alice", "root", "f", payload(20_000, 11), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Plant a blob no table references — the residue of a write that
	// shipped but whose commit record never became durable.
	p, err := fleet.At(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put("orphan-vid-1234", []byte("stranded")); err != nil {
		t.Fatal(err)
	}
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}

	d2, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	st := d2.Metrics().WAL
	if st.RecoveryOrphans != 1 {
		t.Fatalf("RecoveryOrphans = %d, want 1", st.RecoveryOrphans)
	}
	if _, err := p.Get("orphan-vid-1234"); err == nil {
		t.Fatal("planted orphan survived the recovery sweep")
	}
	// Every referenced blob survived: the audit deleted only the stray.
	data, err := d2.GetFile("alice", "root", "f")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(payload(20_000, 11)) {
		t.Fatal("recovered file corrupted by the orphan sweep")
	}
}

func TestWALFreshDirDoesNotSweep(t *testing.T) {
	// Pointing an EMPTY WALDir at a fleet that already holds blobs must
	// not mass-delete them: the orphan sweep is gated on having actually
	// recovered state.
	fleet := testFleet(t, 8)
	d, err := New(Config{Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upload("alice", "root", "f", payload(10_000, 13), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}

	d2, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: t.TempDir(), WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if st := d2.Metrics().WAL; st.RecoveryOrphans != 0 {
		t.Fatalf("fresh WALDir swept %d blobs from a populated fleet", st.RecoveryOrphans)
	}
	if _, err := d.GetFile("alice", "root", "f"); err != nil {
		t.Fatalf("in-memory distributor's blobs were deleted: %v", err)
	}
}

func TestWALCountersNotReusedAfterCrash(t *testing.T) {
	fleet := testFleet(t, 8)
	dir := t.TempDir()
	d, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upload("alice", "root", "f", payload(8_000, 17), privacy.Moderate, UploadOptions{Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	preNonce, preFID := d.encNonce, d.fidSeq
	preVID := d.vids.(*prfAllocator).ctr
	d.mu.Unlock()
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}

	d2, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	d2.mu.Lock()
	postNonce, postFID := d2.encNonce, d2.fidSeq
	postVID := d2.vids.(*prfAllocator).ctr
	d2.mu.Unlock()
	// An operation that aborted after planning may have consumed counters
	// past the logged watermark; the slack guarantees no AES-CTR nonce,
	// file id or virtual id is ever issued twice across a crash.
	if postNonce < preNonce+walCounterSlack {
		t.Fatalf("enc nonce %d not advanced past pre-crash %d + slack", postNonce, preNonce)
	}
	if postFID < preFID+walCounterSlack {
		t.Fatalf("fid seq %d not advanced past pre-crash %d + slack", postFID, preFID)
	}
	if postVID < preVID+walCounterSlack {
		t.Fatalf("vid ctr %d not advanced past pre-crash %d + slack", postVID, preVID)
	}
}

func TestWALCorruptionFailsStartupDescriptively(t *testing.T) {
	fleet := testFleet(t, 8)
	dir := t.TempDir()
	d, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upload("alice", "root", "f", payload(30_000, 19), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF // mid-log, not a torn tail
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err == nil {
		t.Fatal("startup over a corrupt log must fail")
	}
	if !strings.Contains(err.Error(), "wal") {
		t.Fatalf("error does not name the wal: %v", err)
	}

	// The offline validator refuses the same directory.
	if _, verr := ValidateWALDir(dir); verr == nil {
		t.Fatal("ValidateWALDir accepted a corrupt directory")
	}
}

func TestWALWrongFleetRejected(t *testing.T) {
	fleet := testFleet(t, 8)
	dir := t.TempDir()
	d, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upload("alice", "root", "f", payload(30_000, 23), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Close(ctx); err != nil {
		t.Fatal(err)
	}

	small := testFleet(t, 2)
	_, err = New(Config{Fleet: small, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err == nil {
		t.Fatal("recovery against a smaller fleet must fail")
	}
	if !strings.Contains(err.Error(), "fleet") {
		t.Fatalf("error does not explain the fleet mismatch: %v", err)
	}
}

func TestValidateWALDirReport(t *testing.T) {
	fleet := testFleet(t, 8)
	dir := t.TempDir()
	d, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	runWALWorkload(t, d)
	view := d.StateView()
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}

	rep, err := ValidateWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records == 0 {
		t.Fatalf("report shows no records: %+v", rep)
	}
	if rep.Gen != view.Gen {
		t.Fatalf("replayed gen %d, live was %d", rep.Gen, view.Gen)
	}
	if rep.Clients != 2 {
		t.Fatalf("Clients = %d, want 2", rep.Clients)
	}
	if rep.Files != 2 { // f1 and g1 survive the workload
		t.Fatalf("Files = %d, want 2", rep.Files)
	}
	if rep.TailTruncated {
		t.Fatal("clean crash at SyncAlways must not report a torn tail")
	}
}

func TestWALBugSkipSyncLosesCommits(t *testing.T) {
	// The planted lost-commit bug: records are acknowledged but never
	// fsynced, so a crash forgets everything since the last checkpoint.
	fleet := testFleet(t, 8)
	dir := t.TempDir()
	d, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways, WALBugSkipSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	d2, err := New(Config{Fleet: fleet, Secret: []byte("s"), WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.StateView().Files) != 0 {
		t.Fatal("unexpected files")
	}
	d2.mu.Lock()
	_, registered := d2.clients["alice"]
	d2.mu.Unlock()
	if registered {
		t.Fatal("BugSkipSync did not lose the acknowledged commit — the planted bug is gone")
	}
}
