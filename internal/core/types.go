// Package core implements the Cloud Data Distributor, the paper's central
// contribution: "the entity that receives data (files) from clients,
// performs fragmentation of data (splits files into chunks) and
// distributes these fragments (chunks) among Cloud Providers. It also
// participates in data retrieving procedure... Clients do not interact
// with Cloud Providers directly rather via Cloud Data Distributor."
//
// The distributor maintains the paper's three tables (Cloud Provider
// Table, Client Table, Chunk Table), enforces ⟨password, privacy-level⟩
// access control, allocates virtual chunk ids that conceal client
// identity from providers, applies RAID-5/6 striping for availability,
// optionally injects misleading bytes, and keeps pre-modification chunk
// snapshots on a distinct snapshot provider.
package core

import (
	"errors"

	"repro/internal/mislead"
	"repro/internal/privacy"
	"repro/internal/raid"
)

// Errors reported by the distributor. They deliberately do not reveal
// whether a client, file or password exists beyond what the caller is
// entitled to know.
var (
	// ErrAuth covers unknown clients, wrong passwords and insufficient
	// privilege ("the password is not privileged enough to access the
	// chunk. Hence its request is denied.").
	ErrAuth = errors.New("core: access denied")
	// ErrNoSuchFile is returned for unknown filenames of an authenticated
	// client.
	ErrNoSuchFile = errors.New("core: no such file")
	// ErrNoSuchChunk is returned for out-of-range serial numbers.
	ErrNoSuchChunk = errors.New("core: no such chunk")
	// ErrExists is returned when uploading a filename that already exists.
	ErrExists = errors.New("core: file already exists")
	// ErrPlacement is returned when too few eligible providers exist for
	// the requested privacy level and assurance.
	ErrPlacement = errors.New("core: not enough eligible providers")
	// ErrUnavailable is returned when a chunk cannot be served even after
	// RAID reconstruction.
	ErrUnavailable = errors.New("core: chunk unavailable")
	// ErrNoSnapshot is returned when no pre-modification state exists.
	ErrNoSnapshot = errors.New("core: no snapshot for chunk")
	// ErrConfig is returned for invalid distributor configuration.
	ErrConfig = errors.New("core: invalid configuration")
	// ErrCircuitOpen is returned when a write is refused because the
	// target provider's circuit breaker is open. Write paths with
	// failover treat it like a put failure and re-place the shard.
	ErrCircuitOpen = errors.New("core: provider circuit open")
	// ErrRange is returned when a requested byte range lies outside the
	// file's bounds — a caller input error, distinct from a chunk that
	// is genuinely missing.
	ErrRange = errors.New("core: range outside file bounds")
	// ErrConflict is returned when a mutation loses the commit race: the
	// file it planned against was modified by a concurrent request while
	// the mutation's provider I/O was in flight. The operation had no
	// effect; callers may re-read and retry.
	ErrConflict = errors.New("core: concurrent modification")
)

// chunkEntry is one row of the paper's Chunk Table (Table III): "the
// virtual id, privacy level (PL), Cloud Provider Table index of the
// current cloud provider storing the chunk (CP), Cloud Provider Table
// index of the snapshot provider (SP) (if any), set of positions of
// misleading data bytes (M) (if any)".
type chunkEntry struct {
	VirtualID string
	PL        privacy.Level
	CPIndex   int // fleet index of the current provider
	SPIndex   int // fleet index of the snapshot provider, -1 = NA
	Mislead   mislead.Injection

	// Bookkeeping beyond the paper's table needed to serve requests.
	Client     string
	Filename   string
	Serial     int
	PayloadLen int      // stored payload length before stripe padding
	DataLen    int      // original chunk length (pre-mislead, pre-encryption)
	Sum        [32]byte // checksum of the original chunk data
	// EncKey, when non-nil, is the AES key whose ciphertext this chunk's
	// payload is (the §VII-E "encryption along with fragmentation"
	// complement). Held only in distributor metadata.
	EncKey   []byte
	StripeID int    // index into the distributor's stripe list
	SnapVID  string // virtual id of the snapshot copy, if any
	// Mirrors are full replicas of the chunk on other providers ("Same
	// chunk can be provided to multiple Cloud Providers depending on the
	// clients' requirement"), tried before RAID reconstruction.
	Mirrors []mirrorRef
}

// mirrorRef locates one replica of a chunk.
type mirrorRef struct {
	VirtualID string
	CPIndex   int
}

// parityShard is one parity member of a stripe, stored like a chunk but
// invisible to clients.
type parityShard struct {
	VirtualID string
	CPIndex   int
}

// stripeEntry groups data chunks with their parity shards.
type stripeEntry struct {
	ID       int
	Level    raid.Level
	ShardLen int
	// Members are chunk-table indices of the data shards, in shard order.
	Members []int
	Parity  []parityShard
}

// fileEntry is the per-file part of the Client Table: the paper's
// quadruples (filename, sl, PL, chunk-table idx) grouped by file.
type fileEntry struct {
	Filename string
	PL       privacy.Level
	// FID is a distributor-unique file id, assigned at upload and never
	// reused. Cache keys use it instead of (client, filename) so a remove
	// followed by a re-upload of the same name can never alias cached
	// chunks of the dead file.
	FID uint64
	// ChunkIdx[serial] is the Chunk Table index of that serial.
	ChunkIdx []int
	Raid     raid.Level
	// Gen counts committed mutations of this file. A write plans against
	// one generation and refuses to commit against another, so two
	// mutations racing on the same file cannot interleave their table
	// updates. Exported so metadata replication carries it.
	Gen uint64
}

// clientEntry is one row of the paper's Client Table (Table II).
type clientEntry struct {
	Name string
	// Passwords maps a password's SHA-256 hex digest to the privacy level
	// it unlocks — the paper's ⟨password, PL⟩ pairs used "for access
	// control which associates a group of users with a ⟨password, PL⟩
	// pair", stored hashed so metadata replicas never hold plaintext.
	Passwords map[string]privacy.Level
	Files     map[string]*fileEntry
	// Count is the client's total chunk count (paper Table II "Count").
	Count int
	// Gen counts committed mutations of the client's file set (uploads
	// and removals). Exported so metadata replication carries it.
	Gen uint64
}

// UploadOptions tunes one upload beyond the defaults.
type UploadOptions struct {
	// Assurance selects the RAID level ("The default choice is RAID level
	// 5. In case of higher assurance, RAID level 6 is used."). Zero means
	// the distributor default.
	Assurance raid.Level
	// NoParity disables RAID striping for this upload — the
	// single-copy baseline (raid.None cannot be expressed through
	// Assurance because its zero value means "default").
	NoParity bool
	// MisleadFraction ∈ [0,1): ratio of decoy bytes injected per chunk
	// ("the Cloud Data Distributor may add misleading data into chunks
	// depending on the demand of clients"). 0 disables injection.
	MisleadFraction float64
	// MisleadLines, when non-nil, supplies whole decoy records to insert
	// instead of byte-level decoys; used for line-oriented files where
	// decoys must parse like real records to mislead mining.
	MisleadLines [][]byte
	// Replicas adds that many full copies of every data chunk on distinct
	// providers — the paper's per-client assurance knob ("Same chunk can
	// be provided to multiple Cloud Providers depending on the clients'
	// requirement"). Replicas compose with RAID parity: mirrors are tried
	// first on retrieval, reconstruction second.
	Replicas int
	// EncryptKey, when non-empty (16/24/32 bytes), encrypts every chunk
	// payload with AES-CTR before storage — the paper's complement
	// strategy ("Concerned clients can also use encryption along with
	// fragmentation. But encryption is not an alternative to
	// fragmentation, rather it is a complement."). The key never leaves
	// the distributor's memory; providers only ever see ciphertext.
	// Mutually exclusive with misleading-data injection (decoys inside
	// ciphertext would confuse no miner).
	EncryptKey []byte
}

// FileInfo is what the distributor reports back after an upload: "The
// total number of chunks for each file is notified to the client so that
// any chunk can be asked by the client by mentioning the filename and
// serial no."
type FileInfo struct {
	Filename string
	PL       privacy.Level
	Chunks   int
	Raid     raid.Level
	Bytes    int
}
