package core

import (
	"sync"
	"sync/atomic"
)

// flightCall is one in-flight chunk fetch other readers can wait on.
type flightCall struct {
	done    chan struct{}
	data    []byte // set only when waiters joined; immutable after done closes
	err     error
	waiters int
}

// flightGroup coalesces concurrent fetches of the same chunk generation
// (keyed by the cache's (fid, serial, gen) triple) into one provider
// round-trip — a stdlib-only single-flight. The zero value is ready to
// use. Unlike a cache it holds no bytes at rest: a call's shared copy
// exists only while waiters are draining it, and a reader arriving after
// the flight lands starts a fresh fetch (which the chunk cache then
// absorbs).
type flightGroup struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall

	// coalesced counts reads served by another reader's in-flight fetch.
	// It is incremented at join time (not completion) so tests and
	// operators can observe fan-in while the leader is still fetching.
	coalesced atomic.Int64
}

// do runs fn once per key among concurrent callers. The leader executes
// fn and gets its result back untouched (shared == false); every caller
// that joined while the leader was in flight gets the leader's error or
// a private copy of its bytes (shared == true), so no two callers ever
// alias the same slice. The leader only materializes the shared copy
// when someone actually joined — the uncontended path costs one map
// insert and delete.
func (g *flightGroup) do(key cacheKey, fn func() ([]byte, error)) (data []byte, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.coalesced.Add(1)
		g.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, true, c.err
		}
		out := make([]byte, len(c.data))
		copy(out, c.data)
		return out, true, nil
	}
	if g.calls == nil {
		g.calls = make(map[cacheKey]*flightCall)
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	data, err = fn()

	g.mu.Lock()
	if c.waiters > 0 && err == nil {
		// Copy before publishing: the leader's slice may be a view into a
		// caller-owned buffer (GetFile's single assembly buffer) that the
		// caller is free to mutate the moment do returns.
		c.data = append([]byte(nil), data...)
	}
	c.err = err
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return data, false, err
}
