package core

import (
	"fmt"

	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
)

// Scenario reproduces the paper's Figure 3 application-architecture
// walkthrough: the 7-provider fleet (Adobe … Earth), client Bob with four
// ⟨password, PL⟩ pairs, client Roy, files file1 (PL1), file2 (PL2) and
// file3 (PL3), and the exact virtual ids printed in the figure (10986,
// 13239, 32977, 23434, 18334, 23345, 16948).
type Scenario struct {
	Distributor *Distributor
	Fleet       *provider.Fleet
}

// Figure3VIDs are the virtual ids of Figure 3's Chunk Table, in chunk
// upload order.
var Figure3VIDs = []string{"10986", "13239", "32977", "23434", "18334", "23345", "16948"}

// NewFigure3Scenario constructs the paper's walkthrough state. Chunk
// contents are synthetic (the paper does not print them); placement
// follows this implementation's cost/load policy, so the provider hosting
// a given chunk may differ from the figure while always satisfying the
// paper's PL constraint.
func NewFigure3Scenario() (*Scenario, error) {
	fleet, err := provider.PaperFleet()
	if err != nil {
		return nil, err
	}
	dist, err := New(Config{
		Fleet: fleet,
		// Figure 3 lists one provider per chunk with no parity entries, so
		// the scenario stores stripes without parity.
		DefaultRaid: raid.RAID5,
		StripeWidth: 1,
		VIDs:        NewScriptedAllocator(Figure3VIDs),
		ChunkPolicy: privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
			privacy.Public:   1024,
			privacy.Low:      1024,
			privacy.Moderate: 1024,
			privacy.High:     1024,
		}},
	})
	if err != nil {
		return nil, err
	}

	if err := dist.RegisterClient("Bob"); err != nil {
		return nil, err
	}
	bobPasswords := []struct {
		pw string
		pl privacy.Level
	}{
		{"aB1c", privacy.Public},
		{"x9pr", privacy.Low},
		{"6S4r", privacy.Moderate},
		{"Ty7e", privacy.High},
	}
	for _, bp := range bobPasswords {
		if err := dist.AddPassword("Bob", bp.pw, bp.pl); err != nil {
			return nil, err
		}
	}
	if err := dist.RegisterClient("Roy"); err != nil {
		return nil, err
	}
	if err := dist.AddPassword("Roy", "eV2t", privacy.High); err != nil {
		return nil, err
	}

	// file1: 3 chunks at PL1; file2: 2 chunks at PL2; file3 (Roy): 2 at PL3.
	mk := func(chunks int, tag byte) []byte {
		data := make([]byte, chunks*1024)
		for i := range data {
			data[i] = tag + byte(i%7)
		}
		return data
	}
	uploads := []struct {
		client, pw, name string
		data             []byte
		pl               privacy.Level
	}{
		{"Bob", "x9pr", "file1", mk(3, 'a'), privacy.Low},
		{"Bob", "6S4r", "file2", mk(2, 'b'), privacy.Moderate},
		{"Roy", "eV2t", "file3", mk(2, 'c'), privacy.High},
	}
	for _, u := range uploads {
		if _, err := dist.Upload(u.client, u.pw, u.name, u.data, u.pl, UploadOptions{NoParity: true}); err != nil {
			return nil, fmt.Errorf("scenario upload %s: %w", u.name, err)
		}
	}
	return &Scenario{Distributor: dist, Fleet: fleet}, nil
}
