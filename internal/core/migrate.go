package core

import (
	"fmt"

	"repro/internal/privacy"
	"repro/internal/raid"
)

// DecommissionReport summarizes a provider evacuation.
type DecommissionReport struct {
	Provider       string
	ChunksMoved    int
	MirrorsMoved   int
	ParityMoved    int
	SnapshotsMoved int
}

// decommissionPasses bounds the re-scan loop: writes racing with an
// evacuation can land new shards on the departing provider (it only
// becomes invisible to placement once the caller marks it down), so the
// evacuation sweeps until a pass finds nothing left.
const decommissionPasses = 5

// Decommission evacuates every shard (chunks, mirrors, parity, snapshots)
// from the provider at fleet index provIdx onto other eligible providers —
// the recovery path for the paper's "cloud provider going out of
// business" scenario. Payloads are read from the departing provider if it
// is still up, reconstructed from RAID peers otherwise. The provider
// remains in the fleet (indices are stable) but holds no data and, since
// load-based placement sees its count at zero, callers should also mark
// it down via SetOutage to exclude it from future placement.
//
// Each shard moves through its own plan → copy → commit cycle: the fetch
// plan and target are chosen under d.mu, the provider round-trips run
// without it, and the commit re-checks the owning file's generation — a
// shard mutated concurrently is skipped (its copy dropped) and picked up
// again by the next sweep.
func (d *Distributor) Decommission(provIdx int) (DecommissionReport, error) {
	d.mu.Lock()
	old, err := d.fleet.At(provIdx)
	if err != nil {
		d.mu.Unlock()
		return DecommissionReport{}, err
	}
	rep := DecommissionReport{Provider: old.Info().Name}
	d.mu.Unlock()

	for pass := 0; pass < decommissionPasses; pass++ {
		dirty, err := d.evacuatePass(provIdx, &rep)
		if err != nil {
			return rep, err
		}
		if dirty == 0 {
			return rep, nil
		}
	}
	return rep, fmt.Errorf("%w: provider %d keeps acquiring shards during decommission", ErrUnavailable, provIdx)
}

// evacuatePass sweeps the tables once, moving every shard currently on
// provIdx. It returns how many shards it touched (moved or skipped on
// conflict) so the caller knows whether another sweep is needed.
func (d *Distributor) evacuatePass(provIdx int, rep *DecommissionReport) (int, error) {
	dirty := 0
	for i := 0; ; i++ {
		d.mu.Lock()
		if i >= len(d.chunks) {
			d.mu.Unlock()
			break
		}
		mirrors := len(d.chunks[i].Mirrors)
		d.mu.Unlock()
		n, err := d.moveChunk(i, provIdx, rep)
		dirty += n
		if err != nil {
			return dirty, err
		}
		for mi := 0; mi < mirrors; mi++ {
			n, err := d.moveMirror(i, mi, provIdx, rep)
			dirty += n
			if err != nil {
				return dirty, err
			}
		}
		n, err = d.moveSnapshot(i, provIdx, rep)
		dirty += n
		if err != nil {
			return dirty, err
		}
	}
	for si := 0; ; si++ {
		d.mu.Lock()
		if si >= len(d.stripes) {
			d.mu.Unlock()
			break
		}
		parity := len(d.stripes[si].Parity)
		d.mu.Unlock()
		for pi := 0; pi < parity; pi++ {
			n, err := d.moveParity(si, pi, provIdx, rep)
			dirty += n
			if err != nil {
				return dirty, err
			}
		}
	}
	return dirty, nil
}

// dropCopied best-effort deletes a relocation copy whose commit lost the
// generation race — unless the committed row ended up referencing exactly
// that (provider, vid) pair, in which case the copy IS the live blob.
func (d *Distributor) dropCopied(provIdx int, vid string, live bool) {
	if live {
		return
	}
	if p, err := d.fleet.At(provIdx); err == nil {
		_ = p.Delete(vid)
	}
}

// moveChunk relocates the primary copy of chunk i off provIdx. Returns 1
// if it moved (or conflicted and must be re-checked), 0 if the chunk was
// not on provIdx.
func (d *Distributor) moveChunk(i, provIdx int, rep *DecommissionReport) (int, error) {
	// Plan.
	d.mu.Lock()
	if i >= len(d.chunks) || d.chunks[i].CPIndex != provIdx {
		d.mu.Unlock()
		return 0, nil
	}
	e := &d.chunks[i]
	fe := d.clients[e.Client].Files[e.Filename]
	gen := fe.Gen
	vid := e.VirtualID
	pl := e.PL
	plan := d.planFetch(e)
	newIdx, exclude, err := d.relocationTarget(e, provIdx)
	if err != nil {
		d.mu.Unlock()
		return 0, err
	}
	t := d.newTicketLocked()
	d.stageLocked(t, newIdx, vid)
	d.mu.Unlock()

	// Copy. The first put keeps the chunk's virtual id (a pure move);
	// failover hops re-key like any other write.
	payload, err := d.fetchPayloadPlan(&plan)
	if err != nil {
		d.releaseTicket(t)
		return 0, fmt.Errorf("core: decommission: chunk %s/%s#%d unreadable: %w",
			plan.entry.Client, plan.entry.Filename, plan.entry.Serial, err)
	}
	newProv, newVID, err := d.rehomePut(pl, newIdx, vid, payload, exclude, t)
	if err != nil {
		d.releaseTicket(t)
		return 0, fmt.Errorf("core: decommission: rehoming chunk: %w", err)
	}

	// Commit.
	d.mu.Lock()
	feNow, ok := d.clients[plan.entry.Client].Files[plan.entry.Filename]
	if !ok || feNow != fe || feNow.Gen != gen ||
		d.chunks[i].VirtualID != vid || d.chunks[i].CPIndex != provIdx {
		live := i < len(d.chunks) && d.chunks[i].VirtualID == newVID && d.chunks[i].CPIndex == newProv
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		d.dropCopied(newProv, newVID, live)
		return 1, nil
	}
	rec := &walRecord{
		Op: "move_chunk", Client: plan.entry.Client, Filename: plan.entry.Filename,
		TableIdx: i, NewProv: newProv, NewVID: newVID,
		FileGen: gen + 1, Gen: d.gen + 1,
	}
	if err := d.logAppendLocked(rec); err != nil {
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		d.dropCopied(newProv, newVID, false)
		return 0, fmt.Errorf("core: decommission: %w", err)
	}
	d.commitTicketLocked(t)
	d.provCount[provIdx]--
	d.chunks[i].CPIndex = newProv
	d.chunks[i].VirtualID = newVID
	feNow.Gen++
	d.gen++
	d.maybeCheckpointLocked()
	d.mu.Unlock()
	_ = d.deleteJob(provIdx, vid)()
	rep.ChunksMoved++
	return 1, nil
}

// moveMirror relocates mirror mi of chunk i off provIdx.
func (d *Distributor) moveMirror(i, mi, provIdx int, rep *DecommissionReport) (int, error) {
	d.mu.Lock()
	if i >= len(d.chunks) || d.chunks[i].CPIndex < 0 ||
		mi >= len(d.chunks[i].Mirrors) || d.chunks[i].Mirrors[mi].CPIndex != provIdx {
		d.mu.Unlock()
		return 0, nil
	}
	e := &d.chunks[i]
	fe := d.clients[e.Client].Files[e.Filename]
	gen := fe.Gen
	vid := e.Mirrors[mi].VirtualID
	pl := e.PL
	plan := d.planFetch(e)
	newIdx, exclude, err := d.relocationTarget(e, provIdx)
	if err != nil {
		d.mu.Unlock()
		return 0, err
	}
	t := d.newTicketLocked()
	d.stageLocked(t, newIdx, vid)
	d.mu.Unlock()

	payload, err := d.fetchPayloadPlan(&plan)
	if err != nil {
		d.releaseTicket(t)
		return 0, fmt.Errorf("core: decommission: mirror source unreadable: %w", err)
	}
	newProv, newVID, err := d.rehomePut(pl, newIdx, vid, payload, exclude, t)
	if err != nil {
		d.releaseTicket(t)
		return 0, fmt.Errorf("core: decommission: rehoming mirror: %w", err)
	}

	d.mu.Lock()
	feNow, ok := d.clients[plan.entry.Client].Files[plan.entry.Filename]
	if !ok || feNow != fe || feNow.Gen != gen ||
		mi >= len(d.chunks[i].Mirrors) ||
		d.chunks[i].Mirrors[mi].VirtualID != vid || d.chunks[i].Mirrors[mi].CPIndex != provIdx {
		live := i < len(d.chunks) && mi < len(d.chunks[i].Mirrors) &&
			d.chunks[i].Mirrors[mi].VirtualID == newVID && d.chunks[i].Mirrors[mi].CPIndex == newProv
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		d.dropCopied(newProv, newVID, live)
		return 1, nil
	}
	rec := &walRecord{
		Op: "move_mirror", Client: plan.entry.Client, Filename: plan.entry.Filename,
		TableIdx: i, SubIdx: mi, NewProv: newProv, NewVID: newVID,
		FileGen: gen + 1, Gen: d.gen + 1,
	}
	if err := d.logAppendLocked(rec); err != nil {
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		d.dropCopied(newProv, newVID, false)
		return 0, fmt.Errorf("core: decommission: %w", err)
	}
	d.commitTicketLocked(t)
	d.provCount[provIdx]--
	d.chunks[i].Mirrors[mi] = mirrorRef{VirtualID: newVID, CPIndex: newProv}
	feNow.Gen++
	d.gen++
	d.maybeCheckpointLocked()
	d.mu.Unlock()
	_ = d.deleteJob(provIdx, vid)()
	rep.MirrorsMoved++
	return 1, nil
}

// moveSnapshot relocates chunk i's snapshot off provIdx. A snapshot that
// only exists on the departing provider and is unreadable is dropped
// rather than failing the whole evacuation.
func (d *Distributor) moveSnapshot(i, provIdx int, rep *DecommissionReport) (int, error) {
	d.mu.Lock()
	if i >= len(d.chunks) || d.chunks[i].SPIndex != provIdx || d.chunks[i].SnapVID == "" {
		d.mu.Unlock()
		return 0, nil
	}
	e := &d.chunks[i]
	fe := d.clients[e.Client].Files[e.Filename]
	gen := fe.Gen
	client, filename := e.Client, e.Filename
	vid := e.SnapVID
	pl := e.PL
	cpIdx := e.CPIndex
	d.mu.Unlock()

	sp, err := d.fleet.At(provIdx)
	if err != nil {
		return 0, err
	}
	snap, err := sp.Get(vid)
	if err != nil {
		// Unreadable pre-state: drop the snapshot under the same
		// generation rule as a move.
		d.mu.Lock()
		feNow, ok := d.clients[client].Files[filename]
		if !ok || feNow != fe || feNow.Gen != gen ||
			d.chunks[i].SnapVID != vid || d.chunks[i].SPIndex != provIdx {
			d.mu.Unlock()
			return 1, nil
		}
		rec := &walRecord{
			Op: "drop_snapshot", Client: client, Filename: filename,
			TableIdx: i, FileGen: gen + 1, Gen: d.gen + 1,
		}
		if err := d.logAppendLocked(rec); err != nil {
			d.mu.Unlock()
			return 0, fmt.Errorf("core: decommission: %w", err)
		}
		d.chunks[i].SPIndex = -1
		d.chunks[i].SnapVID = ""
		d.provCount[provIdx]--
		feNow.Gen++
		d.gen++
		d.maybeCheckpointLocked()
		d.mu.Unlock()
		// The read failure may be transient while the blob still exists;
		// without a best-effort delete the dropped reference leaks an
		// orphan no audit can attribute.
		_ = sp.Delete(vid)
		return 1, nil
	}

	d.mu.Lock()
	exclude := map[int]bool{provIdx: true, cpIdx: true}
	newIdx, err := d.placeParityExcluding(pl, exclude)
	if err != nil {
		d.mu.Unlock()
		return 0, err
	}
	t := d.newTicketLocked()
	d.stageLocked(t, newIdx, vid)
	d.mu.Unlock()

	newProv, newVID, err := d.rehomePut(pl, newIdx, vid, snap, exclude, t)
	if err != nil {
		d.releaseTicket(t)
		return 0, fmt.Errorf("core: decommission: rehoming snapshot: %w", err)
	}

	d.mu.Lock()
	feNow, ok := d.clients[client].Files[filename]
	if !ok || feNow != fe || feNow.Gen != gen ||
		d.chunks[i].SnapVID != vid || d.chunks[i].SPIndex != provIdx {
		live := i < len(d.chunks) && d.chunks[i].SnapVID == newVID && d.chunks[i].SPIndex == newProv
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		d.dropCopied(newProv, newVID, live)
		return 1, nil
	}
	rec := &walRecord{
		Op: "move_snapshot", Client: client, Filename: filename,
		TableIdx: i, NewProv: newProv, NewVID: newVID,
		FileGen: gen + 1, Gen: d.gen + 1,
	}
	if err := d.logAppendLocked(rec); err != nil {
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		d.dropCopied(newProv, newVID, false)
		return 0, fmt.Errorf("core: decommission: %w", err)
	}
	d.commitTicketLocked(t)
	d.provCount[provIdx]--
	d.chunks[i].SPIndex = newProv
	d.chunks[i].SnapVID = newVID
	feNow.Gen++
	d.gen++
	d.maybeCheckpointLocked()
	d.mu.Unlock()
	_ = d.deleteJob(provIdx, vid)()
	rep.SnapshotsMoved++
	return 1, nil
}

// moveParity relocates parity shard pi of stripe si off provIdx,
// recomputing its contents from the members (cheaper than reading, and
// correct even if the departing provider is already dark).
func (d *Distributor) moveParity(si, pi, provIdx int, rep *DecommissionReport) (int, error) {
	d.mu.Lock()
	if si >= len(d.stripes) {
		d.mu.Unlock()
		return 0, nil
	}
	st := &d.stripes[si]
	if pi >= len(st.Parity) || st.Parity[pi].CPIndex != provIdx || len(st.Members) == 0 {
		d.mu.Unlock()
		return 0, nil
	}
	owner := &d.chunks[st.Members[0]]
	fe := d.clients[owner.Client].Files[owner.Filename]
	gen := fe.Gen
	client, filename := owner.Client, owner.Filename
	vid := st.Parity[pi].VirtualID
	pl := d.stripePL(st)
	level := st.Level
	shardLen := st.ShardLen
	nData := len(st.Members)
	plans := make([]fetchPlan, nData)
	exclude := map[int]bool{provIdx: true}
	for mi, ci := range st.Members {
		plans[mi] = d.planFetch(&d.chunks[ci])
		exclude[d.chunks[ci].CPIndex] = true
	}
	for pj := range st.Parity {
		if pj != pi && st.Parity[pj].CPIndex != provIdx {
			exclude[st.Parity[pj].CPIndex] = true
		}
	}
	newIdx, err := d.placeParityExcluding(pl, exclude)
	if err != nil {
		d.mu.Unlock()
		return 0, err
	}
	t := d.newTicketLocked()
	d.stageLocked(t, newIdx, vid)
	d.mu.Unlock()

	padded := make([][]byte, nData)
	jobs := make([]func() error, nData)
	for mi := range plans {
		mi := mi
		jobs[mi] = func() error {
			payload, err := d.fetchPayloadPlan(&plans[mi])
			if err != nil {
				return fmt.Errorf("core: re-encode: reading member %d: %w", mi, err)
			}
			pad := make([]byte, shardLen)
			copy(pad, payload)
			padded[mi] = pad
			return nil
		}
	}
	if err := d.fanOut(jobs); err != nil {
		d.releaseTicket(t)
		return 0, err
	}
	stripe, err := raid.Encode(level, padded)
	if err != nil {
		d.releaseTicket(t)
		return 0, fmt.Errorf("core: re-encode: %w", err)
	}
	newProv, newVID, err := d.rehomePut(pl, newIdx, vid, stripe.Shards[nData+pi], exclude, t)
	if err != nil {
		d.releaseTicket(t)
		return 0, fmt.Errorf("core: decommission: rehoming parity: %w", err)
	}

	d.mu.Lock()
	feNow, ok := d.clients[client].Files[filename]
	stale := !ok || feNow != fe || feNow.Gen != gen ||
		si >= len(d.stripes) || pi >= len(d.stripes[si].Parity) ||
		d.stripes[si].Parity[pi].VirtualID != vid || d.stripes[si].Parity[pi].CPIndex != provIdx
	if stale {
		live := si < len(d.stripes) && pi < len(d.stripes[si].Parity) &&
			d.stripes[si].Parity[pi].VirtualID == newVID && d.stripes[si].Parity[pi].CPIndex == newProv
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		d.dropCopied(newProv, newVID, live)
		return 1, nil
	}
	rec := &walRecord{
		Op: "move_parity", Client: client, Filename: filename,
		TableIdx: si, SubIdx: pi, NewProv: newProv, NewVID: newVID,
		FileGen: gen + 1, Gen: d.gen + 1,
	}
	if err := d.logAppendLocked(rec); err != nil {
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		d.dropCopied(newProv, newVID, false)
		return 0, fmt.Errorf("core: decommission: %w", err)
	}
	d.commitTicketLocked(t)
	d.provCount[provIdx]--
	d.stripes[si].Parity[pi] = parityShard{VirtualID: newVID, CPIndex: newProv}
	feNow.Gen++
	d.gen++
	d.maybeCheckpointLocked()
	d.mu.Unlock()
	_ = d.deleteJob(provIdx, vid)()
	rep.ParityMoved++
	return 1, nil
}

// relocationTarget picks a new home for a chunk off oldIdx, avoiding its
// stripe-mates and mirrors so the placement invariants survive. It also
// returns the exclusion set actually in force, so a failover away from
// the chosen target respects the same constraints.
func (d *Distributor) relocationTarget(entry *chunkEntry, oldIdx int) (int, map[int]bool, error) {
	exclude := map[int]bool{oldIdx: true}
	st := &d.stripes[entry.StripeID]
	for _, ci := range st.Members {
		if d.chunks[ci].CPIndex >= 0 {
			exclude[d.chunks[ci].CPIndex] = true
		}
	}
	for _, ps := range st.Parity {
		exclude[ps.CPIndex] = true
	}
	for _, m := range entry.Mirrors {
		exclude[m.CPIndex] = true
	}
	idx, err := d.placeParityExcluding(entry.PL, exclude)
	if err != nil {
		// Relax: allow sharing with mirrors/parity if the fleet is small,
		// but never the departing provider itself.
		exclude = map[int]bool{oldIdx: true}
		idx, err = d.placeParityExcluding(entry.PL, exclude)
	}
	return idx, exclude, err
}

// stripePL returns the privacy level of a stripe's members (uniform per
// file by construction); defaults to the highest level for safety when
// the stripe is empty.
func (d *Distributor) stripePL(st *stripeEntry) privacy.Level {
	if len(st.Members) > 0 {
		return d.chunks[st.Members[0]].PL
	}
	return privacy.High
}

// AuditReport lists provider-resident objects the tables no longer
// reference — the residue of interrupted removals.
type AuditReport struct {
	// Orphans[providerName] lists unreferenced keys found there.
	Orphans map[string][]string
	Deleted int
}

// referencedLocked builds the set of every virtual id the committed
// tables reference, plus the ids staged by in-flight writes — a blob
// that is shipped but not yet committed must never look like an orphan.
// Callers hold d.mu.
func (d *Distributor) referencedLocked() map[string]bool {
	referenced := make(map[string]bool)
	for i := range d.chunks {
		c := &d.chunks[i]
		if c.CPIndex < 0 {
			continue
		}
		referenced[c.VirtualID] = true
		for _, m := range c.Mirrors {
			referenced[m.VirtualID] = true
		}
		if c.SnapVID != "" {
			referenced[c.SnapVID] = true
		}
	}
	for _, st := range d.stripes {
		for _, ps := range st.Parity {
			referenced[ps.VirtualID] = true
		}
	}
	for vid := range d.inflight {
		referenced[vid] = true
	}
	return referenced
}

// AuditOrphans scans every provider for keys absent from the distributor's
// tables and, when gc is true, deletes them. Interrupted removals (e.g. a
// provider outage mid-RemoveFile) can leave such orphans behind; running
// the audit after recovery reconciles providers with the tables. The
// provider scans run without d.mu; candidates are re-validated against
// fresh table and in-flight state before anything is reported or deleted,
// so a write that commits mid-scan cannot lose blobs to the collector.
func (d *Distributor) AuditOrphans(gc bool) (AuditReport, error) {
	d.mu.Lock()
	referenced := d.referencedLocked()
	genAtScan := d.gen
	n := d.fleet.Len()
	d.mu.Unlock()

	rep := AuditReport{Orphans: map[string][]string{}}
	type candidate struct {
		provIdx int
		name    string
		key     string
	}
	var cands []candidate
	for i := 0; i < n; i++ {
		p, err := d.fleet.At(i)
		if err != nil {
			return rep, err
		}
		if p.Down() {
			continue // unreachable; audit again after recovery
		}
		for _, key := range p.Keys() {
			if !referenced[key] {
				cands = append(cands, candidate{i, p.Info().Name, key})
			}
		}
	}

	d.mu.Lock()
	if d.gen != genAtScan {
		referenced = d.referencedLocked()
	} else {
		for vid := range d.inflight {
			referenced[vid] = true
		}
	}
	confirmed := cands[:0]
	for _, cd := range cands {
		if !referenced[cd.key] {
			confirmed = append(confirmed, cd)
		}
	}
	d.mu.Unlock()

	for _, cd := range confirmed {
		rep.Orphans[cd.name] = append(rep.Orphans[cd.name], cd.key)
		if gc {
			if p, err := d.fleet.At(cd.provIdx); err == nil {
				if err := p.Delete(cd.key); err == nil {
					rep.Deleted++
				}
			}
		}
	}
	return rep, nil
}
