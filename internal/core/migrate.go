package core

import (
	"fmt"

	"repro/internal/privacy"
	"repro/internal/provider"
)

// DecommissionReport summarizes a provider evacuation.
type DecommissionReport struct {
	Provider       string
	ChunksMoved    int
	MirrorsMoved   int
	ParityMoved    int
	SnapshotsMoved int
}

// Decommission evacuates every shard (chunks, mirrors, parity, snapshots)
// from the provider at fleet index provIdx onto other eligible providers —
// the recovery path for the paper's "cloud provider going out of
// business" scenario. Payloads are read from the departing provider if it
// is still up, reconstructed from RAID peers otherwise. The provider
// remains in the fleet (indices are stable) but holds no data and, since
// load-based placement sees its count at zero, callers should also mark
// it down via SetOutage to exclude it from future placement.
func (d *Distributor) Decommission(provIdx int) (DecommissionReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old, err := d.fleet.At(provIdx)
	if err != nil {
		return DecommissionReport{}, err
	}
	rep := DecommissionReport{Provider: old.Info().Name}

	// Move data chunks (and their mirrors) off the provider.
	for i := range d.chunks {
		entry := &d.chunks[i]
		if entry.CPIndex == provIdx {
			payload, err := d.fetchPayloadLocked(entry)
			if err != nil {
				return rep, fmt.Errorf("core: decommission: chunk %s/%s#%d unreadable: %w",
					entry.Client, entry.Filename, entry.Serial, err)
			}
			newIdx, err := d.relocationTarget(entry, provIdx)
			if err != nil {
				return rep, err
			}
			if err := d.providerOp(newIdx, func(np provider.Provider) error {
				return np.Put(entry.VirtualID, payload)
			}); err != nil {
				return rep, fmt.Errorf("core: decommission: rehoming chunk: %w", err)
			}
			_ = d.deleteJob(provIdx, entry.VirtualID)()
			d.provCount[provIdx]--
			d.provCount[newIdx]++
			entry.CPIndex = newIdx
			rep.ChunksMoved++
		}
		for mi := range entry.Mirrors {
			m := &entry.Mirrors[mi]
			if m.CPIndex != provIdx || entry.CPIndex < 0 {
				continue
			}
			payload, err := d.fetchPayloadLocked(entry)
			if err != nil {
				return rep, fmt.Errorf("core: decommission: mirror source unreadable: %w", err)
			}
			newIdx, err := d.relocationTarget(entry, provIdx)
			if err != nil {
				return rep, err
			}
			if err := d.providerOp(newIdx, func(np provider.Provider) error {
				return np.Put(m.VirtualID, payload)
			}); err != nil {
				return rep, fmt.Errorf("core: decommission: rehoming mirror: %w", err)
			}
			_ = d.deleteJob(provIdx, m.VirtualID)()
			d.provCount[provIdx]--
			d.provCount[newIdx]++
			m.CPIndex = newIdx
			rep.MirrorsMoved++
		}
		// Snapshots.
		if entry.SPIndex == provIdx && entry.SnapVID != "" {
			sp, _ := d.fleet.At(provIdx)
			snap, err := sp.Get(entry.SnapVID)
			if err != nil {
				// The pre-state only exists on the departing provider; if it
				// is unreadable the snapshot is dropped rather than failing
				// the whole evacuation.
				entry.SPIndex = -1
				entry.SnapVID = ""
				d.provCount[provIdx]--
				continue
			}
			newIdx, err := d.placeParityExcluding(entry.PL, map[int]bool{provIdx: true, entry.CPIndex: true})
			if err != nil {
				return rep, err
			}
			if err := d.providerOp(newIdx, func(np provider.Provider) error {
				return np.Put(entry.SnapVID, snap)
			}); err != nil {
				return rep, fmt.Errorf("core: decommission: rehoming snapshot: %w", err)
			}
			_ = d.deleteJob(provIdx, entry.SnapVID)()
			d.provCount[provIdx]--
			d.provCount[newIdx]++
			entry.SPIndex = newIdx
			rep.SnapshotsMoved++
		}
	}

	// Parity shards: recompute from members (cheaper than reading, and
	// correct even if the departing provider is already dark).
	for si := range d.stripes {
		st := &d.stripes[si]
		moved := false
		for pi := range st.Parity {
			if st.Parity[pi].CPIndex != provIdx {
				continue
			}
			exclude := map[int]bool{provIdx: true}
			for _, ci := range st.Members {
				exclude[d.chunks[ci].CPIndex] = true
			}
			for pj := range st.Parity {
				if pj != pi && st.Parity[pj].CPIndex != provIdx {
					exclude[st.Parity[pj].CPIndex] = true
				}
			}
			pl := d.stripePL(st)
			newIdx, err := d.placeParityExcluding(pl, exclude)
			if err != nil {
				return rep, err
			}
			_ = d.deleteJob(provIdx, st.Parity[pi].VirtualID)()
			d.provCount[provIdx]--
			d.provCount[newIdx]++
			st.Parity[pi].CPIndex = newIdx
			moved = true
			rep.ParityMoved++
		}
		if moved {
			if err := d.reencodeStripeLocked(st.ID); err != nil {
				return rep, err
			}
		}
	}
	return rep, nil
}

// relocationTarget picks a new home for a chunk off oldIdx, avoiding its
// stripe-mates and mirrors so the placement invariants survive.
func (d *Distributor) relocationTarget(entry *chunkEntry, oldIdx int) (int, error) {
	exclude := map[int]bool{oldIdx: true}
	st := &d.stripes[entry.StripeID]
	for _, ci := range st.Members {
		if d.chunks[ci].CPIndex >= 0 {
			exclude[d.chunks[ci].CPIndex] = true
		}
	}
	for _, ps := range st.Parity {
		exclude[ps.CPIndex] = true
	}
	for _, m := range entry.Mirrors {
		exclude[m.CPIndex] = true
	}
	idx, err := d.placeParityExcluding(entry.PL, exclude)
	if err != nil {
		// Relax: allow sharing with mirrors/parity if the fleet is small,
		// but never the departing provider itself.
		idx, err = d.placeParityExcluding(entry.PL, map[int]bool{oldIdx: true})
	}
	return idx, err
}

// stripePL returns the privacy level of a stripe's members (uniform per
// file by construction); defaults to the highest level for safety when
// the stripe is empty.
func (d *Distributor) stripePL(st *stripeEntry) privacy.Level {
	if len(st.Members) > 0 {
		return d.chunks[st.Members[0]].PL
	}
	return privacy.High
}

// AuditReport lists provider-resident objects the tables no longer
// reference — the residue of interrupted removals.
type AuditReport struct {
	// Orphans[providerName] lists unreferenced keys found there.
	Orphans map[string][]string
	Deleted int
}

// AuditOrphans scans every provider for keys absent from the distributor's
// tables and, when gc is true, deletes them. Interrupted removals (e.g. a
// provider outage mid-RemoveFile) can leave such orphans behind; running
// the audit after recovery reconciles providers with the tables.
func (d *Distributor) AuditOrphans(gc bool) (AuditReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Build the set of every key the tables reference.
	referenced := make(map[string]bool)
	for i := range d.chunks {
		c := &d.chunks[i]
		if c.CPIndex < 0 {
			continue
		}
		referenced[c.VirtualID] = true
		for _, m := range c.Mirrors {
			referenced[m.VirtualID] = true
		}
		if c.SnapVID != "" {
			referenced[c.SnapVID] = true
		}
	}
	for _, st := range d.stripes {
		for _, ps := range st.Parity {
			referenced[ps.VirtualID] = true
		}
	}

	rep := AuditReport{Orphans: map[string][]string{}}
	for i := 0; i < d.fleet.Len(); i++ {
		p, err := d.fleet.At(i)
		if err != nil {
			return rep, err
		}
		if p.Down() {
			continue // unreachable; audit again after recovery
		}
		for _, key := range p.Keys() {
			if referenced[key] {
				continue
			}
			rep.Orphans[p.Info().Name] = append(rep.Orphans[p.Info().Name], key)
			if gc {
				if err := p.Delete(key); err == nil {
					rep.Deleted++
				}
			}
		}
	}
	return rep, nil
}
