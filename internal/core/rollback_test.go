package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
)

// hookedDistributor builds a distributor over n Hooked providers with
// identical cost levels (so placement is purely load-balancing and every
// provider gets selected deterministically) and serialized provider I/O
// (so put ordinals are the staged shard order).
func hookedDistributor(t *testing.T, n int) (*Distributor, []*provider.Hooked) {
	t.Helper()
	f, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	hooked := make([]*provider.Hooked, n)
	for i := 0; i < n; i++ {
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("H%d", i), PL: privacy.High, CL: 1,
		}, provider.Options{})
		if err != nil {
			t.Fatal(err)
		}
		hooked[i] = provider.NewHooked(mem)
		if err := f.Add(hooked[i]); err != nil {
			t.Fatal(err)
		}
	}
	d, err := New(Config{Fleet: f, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	return d, hooked
}

// failNthFleetPut makes the k-th Put across the whole fleet fail with
// ErrOutage (not retried as transient), everything else pass.
func failNthFleetPut(hooked []*provider.Hooked, k int) {
	var mu sync.Mutex
	n := 0
	for _, h := range hooked {
		h.SetBeforePut(func(_ int, _ string) error {
			mu.Lock()
			defer mu.Unlock()
			n++
			if n == k {
				return provider.ErrOutage
			}
			return nil
		})
	}
}

func clearPutHooks(hooked []*provider.Hooked) {
	for _, h := range hooked {
		h.SetBeforePut(nil)
	}
}

// TestUploadRollbackAtEveryShardPosition fails the upload's k-th provider
// put for every shard position of a one-stripe file, on a fleet exactly
// as wide as the stripe so failover has nowhere to go. The upload must
// fail cleanly: no blobs left on any provider, no table rows, and the
// same file uploadable once the fault clears.
func TestUploadRollbackAtEveryShardPosition(t *testing.T) {
	cases := []struct {
		name      string
		providers int
		puts      int // data shards + parity shards in one stripe
		opts      UploadOptions
	}{
		{"raid5", 5, 5, UploadOptions{}},
		{"raid6", 6, 6, UploadOptions{Assurance: raid.RAID6}},
	}
	for _, tc := range cases {
		for k := 1; k <= tc.puts; k++ {
			t.Run(fmt.Sprintf("%s_put%d", tc.name, k), func(t *testing.T) {
				d, hooked := hookedDistributor(t, tc.providers)
				// Exactly one full stripe: width (4) data chunks.
				data := payload(4*chunkSizeFor(t, privacy.Moderate), int64(100+k))
				failNthFleetPut(hooked, k)
				if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, tc.opts); err == nil {
					t.Fatal("upload should fail when failover is impossible")
				}
				for i, h := range hooked {
					if h.Len() != 0 {
						t.Fatalf("provider %d holds %d orphaned blobs after rollback", i, h.Len())
					}
				}
				st := d.Stats()
				if st.Chunks != 0 || st.ParityShards != 0 || st.Stripes != 0 || st.Files != 0 {
					t.Fatalf("tables not rolled back: %+v", st)
				}
				if _, err := d.ChunkCount("alice", "root", "f"); !errors.Is(err, ErrNoSuchFile) {
					t.Fatalf("file exists after failed upload: %v", err)
				}
				if k > 1 && d.Metrics().RollbackDeletes == 0 {
					t.Fatal("rollback of stored shards recorded no deletes")
				}
				// The fault was transient operator error, not state damage:
				// the same upload must work once the hook clears.
				clearPutHooks(hooked)
				if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, tc.opts); err != nil {
					t.Fatalf("upload after fault cleared: %v", err)
				}
				got, err := d.GetFile("alice", "root", "f")
				if err != nil || !bytes.Equal(got, data) {
					t.Fatalf("round trip after recovery: %v", err)
				}
			})
		}
	}
}

// darken makes one provider silently fail every data-plane operation
// while still reporting itself up — the failure mode SetOutage cannot
// model, and the one the health tracker exists to catch.
func darken(h *provider.Hooked) {
	h.SetBeforePut(func(int, string) error { return provider.ErrOutage })
	h.SetBeforeGet(func(string) error { return provider.ErrOutage })
}

// TestUploadFailsOverAroundDarkProvider gives failover one spare
// provider: uploads must succeed by re-homing the shards that land on
// the dark provider, leaving no orphans anywhere.
func TestUploadFailsOverAroundDarkProvider(t *testing.T) {
	d, hooked := hookedDistributor(t, 6)
	darken(hooked[0])
	var files []string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("f%d", i)
		data := payload(4*chunkSizeFor(t, privacy.Moderate), int64(200+i))
		if _, err := d.Upload("alice", "root", name, data, privacy.Moderate, UploadOptions{}); err != nil {
			t.Fatalf("upload %s with one dark provider: %v", name, err)
		}
		got, err := d.GetFile("alice", "root", name)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("readback %s: %v", name, err)
		}
		files = append(files, name)
	}
	if d.Metrics().WriteFailovers == 0 {
		t.Fatal("the dark provider was never selected; failover untested")
	}
	if hooked[0].Len() != 0 {
		t.Fatalf("dark provider holds %d blobs", hooked[0].Len())
	}
	rep, err := d.AuditOrphans(false)
	if err != nil {
		t.Fatal(err)
	}
	for prov, keys := range rep.Orphans {
		if len(keys) > 0 {
			t.Fatalf("orphans on %s after failovers: %v", prov, keys)
		}
	}
	st := d.Stats()
	for i, h := range hooked {
		if h.Len() != st.PerProvider[i] {
			t.Fatalf("provider %d holds %d keys, table says %d", i, h.Len(), st.PerProvider[i])
		}
	}
	_ = files
}

// TestCircuitBreakerAvoidsFailingProvider keeps writing against a dark
// provider until its breaker opens, then checks that placement stops
// selecting it entirely: no further put attempts reach it and uploads
// proceed with zero additional failovers.
func TestCircuitBreakerAvoidsFailingProvider(t *testing.T) {
	d, hooked := hookedDistributor(t, 6)
	darken(hooked[0])
	// Enough uploads to accumulate FailureThreshold (5) consecutive put
	// failures on the dark provider, which load-balancing keeps picking
	// while its circuit is closed.
	for i := 0; i < 8; i++ {
		data := payload(4*chunkSizeFor(t, privacy.Moderate), int64(300+i))
		if _, err := d.Upload("alice", "root", fmt.Sprintf("g%d", i), data, privacy.Moderate, UploadOptions{}); err != nil {
			t.Fatalf("upload g%d: %v", i, err)
		}
	}
	health := d.Health()
	if health[0].State != "open" {
		t.Fatalf("dark provider state = %q after sustained failures, want open (health: %+v)", health[0].State, health[0])
	}
	if d.Metrics().CircuitOpens == 0 {
		t.Fatal("CircuitOpens counter never moved")
	}
	// With the circuit open the provider is invisible to placement:
	// further uploads must not attempt a single put against it.
	putsBefore := hooked[0].Puts()
	failoversBefore := d.Metrics().WriteFailovers
	for i := 0; i < 3; i++ {
		data := payload(4*chunkSizeFor(t, privacy.Moderate), int64(400+i))
		if _, err := d.Upload("alice", "root", fmt.Sprintf("h%d", i), data, privacy.Moderate, UploadOptions{}); err != nil {
			t.Fatalf("upload h%d with open circuit: %v", i, err)
		}
	}
	if n := hooked[0].Puts() - putsBefore; n != 0 {
		t.Fatalf("%d puts reached the open-circuited provider", n)
	}
	if n := d.Metrics().WriteFailovers - failoversBefore; n != 0 {
		t.Fatalf("%d failovers with the bad provider already circuit-broken", n)
	}
}

// TestRollbackPreservesExistingFiles stages a failing second upload and
// checks the rollback touches nothing belonging to the first.
func TestRollbackPreservesExistingFiles(t *testing.T) {
	d, hooked := hookedDistributor(t, 5)
	data1 := payload(4*chunkSizeFor(t, privacy.Moderate), 500)
	if _, err := d.Upload("alice", "root", "keep", data1, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	failNthFleetPut(hooked, 3)
	data2 := payload(4*chunkSizeFor(t, privacy.Moderate), 501)
	if _, err := d.Upload("alice", "root", "doomed", data2, privacy.Moderate, UploadOptions{}); err == nil {
		t.Fatal("second upload should fail")
	}
	clearPutHooks(hooked)
	after := d.Stats()
	if before.Chunks != after.Chunks || before.ParityShards != after.ParityShards {
		t.Fatalf("rollback disturbed tables: before %+v, after %+v", before, after)
	}
	for i, h := range hooked {
		if h.Len() != after.PerProvider[i] {
			t.Fatalf("provider %d holds %d keys, table says %d", i, h.Len(), after.PerProvider[i])
		}
	}
	got, err := d.GetFile("alice", "root", "keep")
	if err != nil || !bytes.Equal(got, data1) {
		t.Fatalf("first file damaged by second upload's rollback: %v", err)
	}
}
