package core

import (
	"fmt"
	"sort"

	"encoding/binary"

	"repro/internal/mislead"
	"repro/internal/privacy"
	"repro/internal/raid"
)

// Hand-rolled binary codec for WAL records and checkpoint state. Every
// frame must be self-contained (recovery decodes each record
// independently, and the torn-tail scan may stop at any frame boundary),
// which rules out a streaming gob encoder — and a fresh gob encoder per
// record re-transmits full type descriptors, costing more than the
// record itself on the upload hot path. This codec writes fields in a
// fixed order with varint integers instead: one small allocation per
// record and no reflection.
//
// Layout rules:
//   - every payload starts with a version byte (walCodecVersion),
//   - unsigned fields are uvarints, signed ones zigzag varints
//     (SPIndex/StripeID use -1 as "none"),
//   - strings are length-prefixed, never nil,
//   - slices and maps are prefixed with length+1 so nil (0) and empty
//     (1) round-trip distinctly — recovered tables must DeepEqual the
//     tables a live distributor would hold,
//   - map entries are written in sorted key order so encoding a given
//     state is deterministic.
//
// Decoding is strict: claimed lengths are bounds-checked against the
// remaining input before allocating, and trailing bytes after the last
// field are corruption, not slack.

// walCodecVersion identifies this layout. A decoder seeing any other
// value fails loudly rather than misparse a frame from a different
// build.
const walCodecVersion = 1

type walEnc struct{ b []byte }

func (e *walEnc) u64(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *walEnc) i(v int)      { e.b = binary.AppendVarint(e.b, int64(v)) }

func (e *walEnc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// blob writes a nil-distinguishing byte slice.
func (e *walEnc) blob(p []byte) {
	if p == nil {
		e.u64(0)
		return
	}
	e.u64(uint64(len(p)) + 1)
	e.b = append(e.b, p...)
}

// ints writes a nil-distinguishing []int.
func (e *walEnc) ints(v []int) {
	if v == nil {
		e.u64(0)
		return
	}
	e.u64(uint64(len(v)) + 1)
	for _, x := range v {
		e.i(x)
	}
}

func (e *walEnc) chunk(c *chunkEntry) {
	e.str(c.VirtualID)
	e.i(int(c.PL))
	e.i(c.CPIndex)
	e.i(c.SPIndex)
	e.ints(c.Mislead.Positions)
	e.str(c.Client)
	e.str(c.Filename)
	e.i(c.Serial)
	e.i(c.PayloadLen)
	e.i(c.DataLen)
	e.b = append(e.b, c.Sum[:]...)
	e.blob(c.EncKey)
	e.i(c.StripeID)
	e.str(c.SnapVID)
	if c.Mirrors == nil {
		e.u64(0)
	} else {
		e.u64(uint64(len(c.Mirrors)) + 1)
		for _, m := range c.Mirrors {
			e.str(m.VirtualID)
			e.i(m.CPIndex)
		}
	}
}

func (e *walEnc) chunks(cs []chunkEntry) {
	if cs == nil {
		e.u64(0)
		return
	}
	e.u64(uint64(len(cs)) + 1)
	for i := range cs {
		e.chunk(&cs[i])
	}
}

func (e *walEnc) parity(ps []parityShard) {
	if ps == nil {
		e.u64(0)
		return
	}
	e.u64(uint64(len(ps)) + 1)
	for _, p := range ps {
		e.str(p.VirtualID)
		e.i(p.CPIndex)
	}
}

func (e *walEnc) stripes(ss []stripeEntry) {
	if ss == nil {
		e.u64(0)
		return
	}
	e.u64(uint64(len(ss)) + 1)
	for i := range ss {
		s := &ss[i]
		e.i(s.ID)
		e.i(int(s.Level))
		e.i(s.ShardLen)
		e.ints(s.Members)
		e.parity(s.Parity)
	}
}

// encodeWALRecord serializes one commit record. All fields are written
// in fixed order; varints make the unset ones cost a byte each.
func encodeWALRecord(rec *walRecord) []byte {
	e := &walEnc{b: make([]byte, 0, 192)}
	e.b = append(e.b, walCodecVersion)
	e.str(rec.Op)
	e.u64(rec.Gen)
	e.u64(rec.FIDSeq)
	e.u64(rec.EncNonce)
	e.u64(rec.VIDCtr)
	e.str(rec.Client)
	e.str(rec.Filename)
	e.str(rec.PassHash)
	e.i(int(rec.PassPL))
	e.u64(rec.FID)
	e.i(int(rec.PL))
	e.i(int(rec.Raid))
	e.i(rec.ChunksBase)
	e.i(rec.StripesBase)
	e.chunks(rec.Chunks)
	e.stripes(rec.Stripes)
	e.ints(rec.ChunkIdx)
	e.i(rec.Serial)
	e.i(rec.StripeID)
	e.chunk(&rec.Chunk)
	e.parity(rec.Parity)
	e.ints(rec.Members)
	e.i(rec.ShardLen)
	e.i(rec.TableIdx)
	e.i(rec.SubIdx)
	e.i(rec.NewProv)
	e.str(rec.NewVID)
	e.u64(rec.FileGen)
	e.u64(rec.ClientGen)
	return e.b
}

// encodeWALState serializes a checkpoint snapshot of the full tables.
func encodeWALState(st *walState) []byte {
	e := &walEnc{b: make([]byte, 0, 1024)}
	e.b = append(e.b, walCodecVersion)
	if st.Clients == nil {
		e.u64(0)
	} else {
		e.u64(uint64(len(st.Clients)) + 1)
		for _, name := range sortedKeys(st.Clients) {
			c := st.Clients[name]
			e.str(name)
			e.str(c.Name)
			if c.Passwords == nil {
				e.u64(0)
			} else {
				e.u64(uint64(len(c.Passwords)) + 1)
				for _, h := range sortedKeys(c.Passwords) {
					e.str(h)
					e.i(int(c.Passwords[h]))
				}
			}
			if c.Files == nil {
				e.u64(0)
			} else {
				e.u64(uint64(len(c.Files)) + 1)
				for _, fn := range sortedKeys(c.Files) {
					fe := c.Files[fn]
					e.str(fn)
					e.str(fe.Filename)
					e.i(int(fe.PL))
					e.u64(fe.FID)
					e.ints(fe.ChunkIdx)
					e.i(int(fe.Raid))
					e.u64(fe.Gen)
				}
			}
			e.i(c.Count)
			e.u64(c.Gen)
		}
	}
	e.chunks(st.Chunks)
	e.stripes(st.Stripes)
	e.u64(st.Gen)
	e.u64(st.FIDSeq)
	e.u64(st.EncNonce)
	e.u64(st.VIDCtr)
	return e.b
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// walDec is a strict sequential decoder: the first malformed field
// poisons it and every later read returns zero values, so call sites
// check err once at the end.
type walDec struct {
	b   []byte
	err error
}

func (d *walDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *walDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("walcodec: truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *walDec) i() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("walcodec: truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return int(v)
}

// take consumes exactly n bytes, failing before any allocation when the
// input is shorter than claimed.
func (d *walDec) take(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("walcodec: length %d exceeds %d remaining bytes", n, len(d.b))
		return nil
	}
	p := d.b[:n]
	d.b = d.b[n:]
	return p
}

func (d *walDec) str() string { return string(d.take(d.u64())) }

func (d *walDec) blob() []byte {
	n := d.u64()
	if n == 0 {
		return nil
	}
	p := d.take(n - 1)
	if d.err != nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// count decodes a length+1 prefix for a collection whose elements each
// occupy at least one input byte, rejecting lengths the remaining input
// cannot possibly hold. Returns (length, isNil).
func (d *walDec) count() (int, bool) {
	n := d.u64()
	if n == 0 {
		return 0, true
	}
	n--
	if n > uint64(len(d.b)) {
		d.fail("walcodec: collection of %d elements exceeds %d remaining bytes", n, len(d.b))
		return 0, true
	}
	return int(n), false
}

func (d *walDec) ints() []int {
	n, isNil := d.count()
	if isNil || d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.i()
	}
	return out
}

func (d *walDec) chunk(c *chunkEntry) {
	c.VirtualID = d.str()
	c.PL = privacy.Level(d.i())
	c.CPIndex = d.i()
	c.SPIndex = d.i()
	c.Mislead = mislead.Injection{Positions: d.ints()}
	c.Client = d.str()
	c.Filename = d.str()
	c.Serial = d.i()
	c.PayloadLen = d.i()
	c.DataLen = d.i()
	copy(c.Sum[:], d.take(uint64(len(c.Sum))))
	c.EncKey = d.blob()
	c.StripeID = d.i()
	c.SnapVID = d.str()
	n, isNil := d.count()
	if !isNil && d.err == nil {
		c.Mirrors = make([]mirrorRef, n)
		for i := range c.Mirrors {
			c.Mirrors[i].VirtualID = d.str()
			c.Mirrors[i].CPIndex = d.i()
		}
	}
}

func (d *walDec) chunks() []chunkEntry {
	n, isNil := d.count()
	if isNil || d.err != nil {
		return nil
	}
	out := make([]chunkEntry, n)
	for i := range out {
		d.chunk(&out[i])
	}
	return out
}

func (d *walDec) parity() []parityShard {
	n, isNil := d.count()
	if isNil || d.err != nil {
		return nil
	}
	out := make([]parityShard, n)
	for i := range out {
		out[i].VirtualID = d.str()
		out[i].CPIndex = d.i()
	}
	return out
}

func (d *walDec) stripes() []stripeEntry {
	n, isNil := d.count()
	if isNil || d.err != nil {
		return nil
	}
	out := make([]stripeEntry, n)
	for i := range out {
		s := &out[i]
		s.ID = d.i()
		s.Level = raid.Level(d.i())
		s.ShardLen = d.i()
		s.Members = d.ints()
		s.Parity = d.parity()
	}
	return out
}

// version consumes and checks the leading codec-version byte.
func (d *walDec) version() {
	if len(d.b) == 0 {
		d.fail("walcodec: empty payload")
		return
	}
	if d.b[0] != walCodecVersion {
		d.fail("walcodec: unknown version %d (want %d)", d.b[0], walCodecVersion)
		return
	}
	d.b = d.b[1:]
}

// done fails when decoded input remains — a well-formed payload is
// consumed exactly.
func (d *walDec) done() error {
	if d.err == nil && len(d.b) != 0 {
		d.fail("walcodec: %d trailing bytes after the last field", len(d.b))
	}
	return d.err
}

// decodeWALRecord parses one commit record, the exact inverse of
// encodeWALRecord.
func decodeWALRecord(data []byte, rec *walRecord) error {
	d := &walDec{b: data}
	d.version()
	rec.Op = d.str()
	rec.Gen = d.u64()
	rec.FIDSeq = d.u64()
	rec.EncNonce = d.u64()
	rec.VIDCtr = d.u64()
	rec.Client = d.str()
	rec.Filename = d.str()
	rec.PassHash = d.str()
	rec.PassPL = privacy.Level(d.i())
	rec.FID = d.u64()
	rec.PL = privacy.Level(d.i())
	rec.Raid = raid.Level(d.i())
	rec.ChunksBase = d.i()
	rec.StripesBase = d.i()
	rec.Chunks = d.chunks()
	rec.Stripes = d.stripes()
	rec.ChunkIdx = d.ints()
	rec.Serial = d.i()
	rec.StripeID = d.i()
	d.chunk(&rec.Chunk)
	rec.Parity = d.parity()
	rec.Members = d.ints()
	rec.ShardLen = d.i()
	rec.TableIdx = d.i()
	rec.SubIdx = d.i()
	rec.NewProv = d.i()
	rec.NewVID = d.str()
	rec.FileGen = d.u64()
	rec.ClientGen = d.u64()
	return d.done()
}

// decodeWALState parses a checkpoint snapshot, the exact inverse of
// encodeWALState.
func decodeWALState(data []byte, st *walState) error {
	d := &walDec{b: data}
	d.version()
	if n, isNil := d.count(); !isNil && d.err == nil {
		st.Clients = make(map[string]*clientEntry, n)
		for i := 0; i < n && d.err == nil; i++ {
			key := d.str()
			c := &clientEntry{Name: d.str()}
			if pn, pNil := d.count(); !pNil && d.err == nil {
				c.Passwords = make(map[string]privacy.Level, pn)
				for j := 0; j < pn && d.err == nil; j++ {
					h := d.str()
					c.Passwords[h] = privacy.Level(d.i())
				}
			}
			if fn, fNil := d.count(); !fNil && d.err == nil {
				c.Files = make(map[string]*fileEntry, fn)
				for j := 0; j < fn && d.err == nil; j++ {
					name := d.str()
					fe := &fileEntry{
						Filename: d.str(),
						PL:       privacy.Level(d.i()),
						FID:      d.u64(),
						ChunkIdx: d.ints(),
						Raid:     raid.Level(d.i()),
						Gen:      d.u64(),
					}
					c.Files[name] = fe
				}
			}
			c.Count = d.i()
			c.Gen = d.u64()
			st.Clients[key] = c
		}
	}
	st.Chunks = d.chunks()
	st.Stripes = d.stripes()
	st.Gen = d.u64()
	st.FIDSeq = d.u64()
	st.EncNonce = d.u64()
	st.VIDCtr = d.u64()
	return d.done()
}
