package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/privacy"
)

// ProviderRow is one row of the paper's Cloud Provider Table (Table I).
type ProviderRow struct {
	Name  string
	PL    privacy.Level
	CL    privacy.CostLevel
	Count int
	// VIDs is the list of virtual ids of chunks (and parity shards)
	// currently hosted by this provider, sorted.
	VIDs []string
}

// ClientRow is one row of the paper's Client Table (Table II).
type ClientRow struct {
	Client    string
	Passwords []PasswordPair
	Count     int
	Chunks    []ClientChunkRef
}

// PasswordPair is the paper's ⟨password, PL⟩ access-control pair. Only
// the credential's hash is available (the distributor never stores
// plaintext), so the table shows a recognizable prefix.
type PasswordPair struct {
	PasswordHash string
	PL           privacy.Level
}

// ClientChunkRef is the paper's quadruple (filename, sl, PL, chunk index).
type ClientChunkRef struct {
	Filename string
	Serial   int
	PL       privacy.Level
	ChunkIdx int
}

// ChunkRow is one row of the paper's Chunk Table (Table III).
type ChunkRow struct {
	VirtualID string
	PL        privacy.Level
	CPIndex   int
	SPIndex   int // -1 renders as NA
	Mislead   []int
}

// ProviderTable snapshots Table I.
func (d *Distributor) ProviderTable() []ProviderRow {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rows := make([]ProviderRow, d.fleet.Len())
	for i := range rows {
		p, _ := d.fleet.At(i)
		info := p.Info()
		rows[i] = ProviderRow{Name: info.Name, PL: info.PL, CL: info.CL, Count: d.provCount[i]}
	}
	for _, c := range d.chunks {
		if c.CPIndex >= 0 {
			rows[c.CPIndex].VIDs = append(rows[c.CPIndex].VIDs, c.VirtualID)
		}
		for _, m := range c.Mirrors {
			rows[m.CPIndex].VIDs = append(rows[m.CPIndex].VIDs, m.VirtualID)
		}
		if c.SPIndex >= 0 && c.SnapVID != "" {
			rows[c.SPIndex].VIDs = append(rows[c.SPIndex].VIDs, c.SnapVID)
		}
	}
	for _, st := range d.stripes {
		for _, ps := range st.Parity {
			rows[ps.CPIndex].VIDs = append(rows[ps.CPIndex].VIDs, ps.VirtualID)
		}
	}
	for i := range rows {
		sort.Strings(rows[i].VIDs)
	}
	return rows
}

// ClientTable snapshots Table II.
func (d *Distributor) ClientTable() []ClientRow {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.clients))
	for n := range d.clients {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([]ClientRow, 0, len(names))
	for _, n := range names {
		c := d.clients[n]
		row := ClientRow{Client: n, Count: c.Count}
		for hash, pl := range c.Passwords {
			row.Passwords = append(row.Passwords, PasswordPair{PasswordHash: hash, PL: pl})
		}
		sort.Slice(row.Passwords, func(i, j int) bool {
			if row.Passwords[i].PL != row.Passwords[j].PL {
				return row.Passwords[i].PL > row.Passwords[j].PL
			}
			return row.Passwords[i].PasswordHash < row.Passwords[j].PasswordHash
		})
		fnames := make([]string, 0, len(c.Files))
		for fn := range c.Files {
			fnames = append(fnames, fn)
		}
		sort.Strings(fnames)
		for _, fn := range fnames {
			fe := c.Files[fn]
			for serial, idx := range fe.ChunkIdx {
				if idx < 0 {
					continue
				}
				row.Chunks = append(row.Chunks, ClientChunkRef{
					Filename: fn, Serial: serial, PL: fe.PL, ChunkIdx: idx,
				})
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// ChunkTable snapshots Table III.
func (d *Distributor) ChunkTable() []ChunkRow {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rows := make([]ChunkRow, 0, len(d.chunks))
	for _, c := range d.chunks {
		if c.CPIndex < 0 {
			continue // removed
		}
		rows = append(rows, ChunkRow{
			VirtualID: c.VirtualID,
			PL:        c.PL,
			CPIndex:   c.CPIndex,
			SPIndex:   c.SPIndex,
			Mislead:   append([]int(nil), c.Mislead.Positions...),
		})
	}
	return rows
}

// FormatProviderTable renders Table I the way the paper prints it.
func FormatProviderTable(rows []ProviderRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %3s %3s %8s  %s\n", "CloudProvider", "PL", "CL", "Count", "Virtual id list")
	for _, r := range rows {
		sample := r.VIDs
		more := ""
		if len(sample) > 3 {
			sample = sample[:3]
			more = ", ..."
		}
		fmt.Fprintf(&b, "%-12s %3d %3d %8d  {%s%s}\n", r.Name, int(r.PL), int(r.CL), r.Count, strings.Join(sample, ", "), more)
	}
	return b.String()
}

// FormatClientTable renders Table II.
func FormatClientTable(rows []ClientRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-14s %8s  %s\n", "Client", "(pass, PL)", "Count", "(filename, sl, PL, idx)")
	for _, r := range rows {
		pws := make([]string, len(r.Passwords))
		for i, p := range r.Passwords {
			h := p.PasswordHash
			if len(h) > 8 {
				h = h[:8]
			}
			pws[i] = fmt.Sprintf("(%s…,%d)", h, int(p.PL))
		}
		refs := make([]string, 0, len(r.Chunks))
		for _, c := range r.Chunks {
			refs = append(refs, fmt.Sprintf("(%s,%d,%d,%d)", c.Filename, c.Serial, int(c.PL), c.ChunkIdx))
		}
		if len(refs) > 4 {
			refs = append(refs[:4], "...")
		}
		fmt.Fprintf(&b, "%-8s %-14s %8d  %s\n", r.Client, strings.Join(pws, " "), r.Count, strings.Join(refs, " "))
	}
	return b.String()
}

// FormatChunkTable renders Table III.
func FormatChunkTable(rows []ChunkRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %3s %4s %4s  %s\n", "virtual id", "PL", "CP", "SP", "M")
	for _, r := range rows {
		sp := "NA"
		if r.SPIndex >= 0 {
			sp = fmt.Sprintf("%d", r.SPIndex)
		}
		m := "{}"
		if len(r.Mislead) > 0 {
			sample := r.Mislead
			more := ""
			if len(sample) > 3 {
				sample = sample[:3]
				more = ", ..."
			}
			parts := make([]string, len(sample))
			for i, p := range sample {
				parts[i] = fmt.Sprintf("%d", p)
			}
			m = "{" + strings.Join(parts, ", ") + more + "}"
		}
		fmt.Fprintf(&b, "%-18s %3d %4d %4s  %s\n", r.VirtualID, int(r.PL), r.CPIndex, sp, m)
	}
	return b.String()
}

// Stats summarizes the distributor's current placement state.
type Stats struct {
	Clients      int
	Files        int
	Chunks       int
	ParityShards int
	MirrorShards int
	Snapshots    int
	Stripes      int
	// PerProvider[i] is the shard count on fleet index i.
	PerProvider []int
}

// Stats returns a snapshot of placement statistics.
func (d *Distributor) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s := Stats{Clients: len(d.clients), PerProvider: append([]int(nil), d.provCount...)}
	for _, c := range d.clients {
		s.Files += len(c.Files)
		s.Chunks += c.Count
	}
	for _, c := range d.chunks {
		if c.CPIndex < 0 {
			continue
		}
		s.MirrorShards += len(c.Mirrors)
		if c.SPIndex >= 0 && c.SnapVID != "" {
			s.Snapshots++
		}
	}
	for _, st := range d.stripes {
		if len(st.Members) > 0 || len(st.Parity) > 0 {
			s.Stripes++
		}
		s.ParityShards += len(st.Parity)
	}
	return s
}
