package core

import (
	"errors"
	"fmt"
	"time"
)

// rungKind names the three sources a chunk payload can come from, in
// ladder order.
type rungKind int

const (
	rungPrimary rungKind = iota
	rungMirror
	rungReconstruct
)

// errRungFailed is the internal marker for a primary or mirror fetch
// that missed (wrong length, corrupt bytes, exhausted retries, outage).
// It never reaches callers: when every rung fails, the reconstruction
// rung's descriptive ErrUnavailable is returned instead.
var errRungFailed = errors.New("core: read rung failed")

// readRung is one source in the payload read ladder: where the bytes
// live and how to fetch them. fetch takes no locks and is safe to run
// concurrently with the other rungs of the same plan.
type readRung struct {
	kind    rungKind
	provIdx int // provider racing this rung; -1 for reconstruction
	fetch   func() (fetchResult, error)
}

// readRungs builds the ladder for a plan: primary, then each mirror,
// then degraded RAID reconstruction. Every rung verifies its payload
// end-to-end (strip/decrypt + checksum) before declaring success, so a
// provider returning plausible-length garbage is indistinguishable from
// one that failed outright: the ladder falls through to the next copy
// instead of serving corrupt bytes. The reconstruction rung is always
// present — without parity it fails immediately with the descriptive
// error the ladder reports when everything else missed too.
func (d *Distributor) readRungs(plan *fetchPlan) []readRung {
	entry := &plan.entry
	verified := func(payload []byte) (fetchResult, error) {
		recovered, err := stripAndVerify(entry, payload)
		if err != nil {
			return fetchResult{}, err
		}
		return fetchResult{payload: payload, recovered: recovered}, nil
	}
	source := func(provIdx int, vid string) func() (fetchResult, error) {
		return func() (fetchResult, error) {
			payload, ok := d.tryGet(provIdx, vid, entry.PayloadLen)
			if !ok {
				return fetchResult{}, errRungFailed
			}
			res, err := verified(payload)
			if err != nil {
				// The provider answered with the right length but the
				// wrong bytes — silent corruption, not unavailability.
				d.counters.corruptionsDetected.Add(1)
				return fetchResult{}, errRungFailed
			}
			return res, nil
		}
	}
	rungs := make([]readRung, 0, len(entry.Mirrors)+2)
	rungs = append(rungs, readRung{kind: rungPrimary, provIdx: entry.CPIndex,
		fetch: source(entry.CPIndex, entry.VirtualID)})
	for _, m := range entry.Mirrors {
		rungs = append(rungs, readRung{kind: rungMirror, provIdx: m.CPIndex,
			fetch: source(m.CPIndex, m.VirtualID)})
	}
	rungs = append(rungs, readRung{kind: rungReconstruct, provIdx: -1, fetch: func() (fetchResult, error) {
		payload, err := d.reconstructPlan(plan)
		if err != nil {
			return fetchResult{}, err
		}
		res, verr := verified(payload)
		if verr != nil {
			return fetchResult{}, fmt.Errorf("%w: reconstruction yields corrupt payload: %v", ErrUnavailable, verr)
		}
		return res, nil
	}})
	return rungs
}

// recordRungWin attributes a served payload to its source, preserving
// the primary/mirror/reconstruction counters of the sequential ladder.
func (d *Distributor) recordRungWin(kind rungKind) {
	switch kind {
	case rungPrimary:
		d.counters.primaryHits.Add(1)
	case rungMirror:
		d.counters.mirrorHits.Add(1)
	case rungReconstruct:
		d.counters.reconstructions.Add(1)
	}
}

// fetchSequential walks the ladder one rung at a time — the read path
// when hedging is disabled. The reconstruction rung runs last, so on
// total failure its error (the most descriptive) is what callers see.
func (d *Distributor) fetchSequential(rungs []readRung) (fetchResult, error) {
	var lastErr error
	for i := range rungs {
		res, err := rungs[i].fetch()
		if err == nil {
			d.recordRungWin(rungs[i].kind)
			return res, nil
		}
		lastErr = err
	}
	return fetchResult{}, lastErr
}

// hedgeDelay returns how long to let a just-launched rung on provIdx run
// before racing the next rung against it: twice the provider's latency
// EWMA — comfortably above a typical response, so a healthy provider is
// almost never hedged — clamped to [hedgeAfter/8, hedgeAfter] so a
// freshly started distributor (no samples, EWMA 0) or a pathological
// average can neither hedge instantly nor never.
func (d *Distributor) hedgeDelay(provIdx int) time.Duration {
	base := d.hedgeAfter
	if provIdx < 0 {
		return base
	}
	ewma := d.health.LatencyEWMA(provIdx)
	if ewma <= 0 {
		return base
	}
	delay := 2 * ewma
	if floor := base / 8; delay < floor {
		delay = floor
	}
	if delay > base {
		delay = base
	}
	return delay
}

// fetchHedged races the ladder: rung 0 launches immediately, and each
// further rung launches either when its predecessor's hedge delay
// expires (the predecessor is slow but may still answer) or the moment
// every launched rung has failed (nothing left to wait for). The first
// successful payload wins; later arrivals are discarded. Losing rungs
// are not cancelled — the provider interface has no context plumbing —
// they run to completion in the background and their genuine outcomes
// feed the health tracker exactly as if they had run alone, so losing a
// race never looks like a provider failure.
func (d *Distributor) fetchHedged(rungs []readRung) (fetchResult, error) {
	type rungResult struct {
		idx int
		res fetchResult
		err error
	}
	// Buffered to len(rungs): a loser finishing after the winner returns
	// must never block on its send, or its goroutine would leak.
	results := make(chan rungResult, len(rungs))
	byHedge := make([]bool, len(rungs))
	launched := 0
	launch := func() {
		r := rungs[launched]
		idx := launched
		launched++
		go func() {
			res, err := r.fetch()
			results <- rungResult{idx: idx, res: res, err: err}
		}()
	}

	var timer *time.Timer
	var timerC <-chan time.Time
	// arm schedules the next hedge relative to the rung just launched. A
	// fresh timer per launch sidesteps the Reset/drain races of reusing
	// one; the ladder is at most a handful of rungs deep.
	arm := func() {
		if timer != nil {
			timer.Stop()
		}
		timer, timerC = nil, nil
		if launched < len(rungs) {
			timer = time.NewTimer(d.hedgeDelay(rungs[launched-1].provIdx))
			timerC = timer.C
		}
	}
	launch()
	arm()
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()

	hedged := false
	var reconErr, lastErr error
	for done := 0; ; {
		select {
		case <-timerC:
			if !hedged {
				hedged = true
				d.counters.hedgedReads.Add(1)
			}
			byHedge[launched] = true
			launch()
			arm()
		case res := <-results:
			if res.err == nil {
				if byHedge[res.idx] {
					d.counters.hedgeWins.Add(1)
				}
				d.recordRungWin(rungs[res.idx].kind)
				return res.res, nil
			}
			if rungs[res.idx].kind == rungReconstruct {
				reconErr = res.err
			}
			lastErr = res.err
			done++
			if done == len(rungs) {
				// Every rung failed. Full ladders ran reconstruction, whose
				// error is the most descriptive; truncated ladders (the
				// range path's direct fetches) fall back to the last rung's.
				if reconErr != nil {
					return fetchResult{}, reconErr
				}
				return fetchResult{}, lastErr
			}
			if done == launched {
				// Nothing left in flight: escalate immediately rather
				// than waiting out a hedge delay that has no one to
				// hedge against.
				launch()
				arm()
			}
		}
	}
}

// fetchVerifiedPlan returns one verified chunk read: the stored payload
// (post-mislead bytes) plus the recovered original bytes it verified
// against. The fallback ladder is: primary provider → mirror replicas →
// RAID reconstruction from the stripe, and every rung checksums its
// answer before winning — corruption is rescued by falling through the
// ladder, never served. With hedging enabled (Config.HedgeAfter > 0) the
// rungs are raced after per-provider EWMA-derived delays; otherwise they
// run strictly in order. It takes no locks.
func (d *Distributor) fetchVerifiedPlan(plan *fetchPlan) (fetchResult, error) {
	rungs := d.readRungs(plan)
	if d.hedgeAfter <= 0 {
		return d.fetchSequential(rungs)
	}
	return d.fetchHedged(rungs)
}
