package core

import (
	"bytes"
	"testing"

	"repro/internal/privacy"
	"repro/internal/raid"
)

func TestStateViewShapeAndQuiescence(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(40_000, 41)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{Assurance: raid.RAID6, Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	v := d.StateView()
	if !v.Quiescent {
		t.Fatal("idle distributor must report Quiescent")
	}
	if len(v.Files) != 1 || v.Files[0].Filename != "f" || v.Files[0].Live == 0 {
		t.Fatalf("Files = %+v", v.Files)
	}
	if len(v.Stripes) == 0 {
		t.Fatal("no stripes in view")
	}
	// Every committed blob must exist on its provider at its recorded
	// length, on a provider whose PL covers the blob's.
	for _, b := range v.Blobs {
		p, err := d.Providers().At(b.ProvIdx)
		if err != nil {
			t.Fatalf("blob %s on bad provider %d", b.VID, b.ProvIdx)
		}
		if p.Info().PL < b.PL {
			t.Fatalf("blob %s (PL %d) placed on %s (PL %d)", b.VID, b.PL, p.Info().Name, p.Info().PL)
		}
		got, err := p.Get(b.VID)
		if err != nil {
			t.Fatalf("blob %s missing from %s: %v", b.VID, p.Info().Name, err)
		}
		if b.PayloadLen > 0 && len(got) != b.PayloadLen {
			t.Fatalf("blob %s length %d, view says %d", b.VID, len(got), b.PayloadLen)
		}
	}
	// Two snapshots of unchanged state are identical.
	v2 := d.StateView()
	if len(v2.Blobs) != len(v.Blobs) || v2.Gen != v.Gen {
		t.Fatal("repeated StateView of idle state differs")
	}
}

func TestScrubRepairsRottedParity(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(50_000, 42)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{Assurance: raid.RAID6}); err != nil {
		t.Fatal(err)
	}
	// Rot one parity blob at rest: same length, different bytes. The
	// chunk phase of Scrub cannot see this — only parity recompute can.
	v := d.StateView()
	var target BlobView
	for _, b := range v.Blobs {
		if b.Kind == BlobParity {
			target = b
			break
		}
	}
	if target.VID == "" {
		t.Fatal("no parity blob found")
	}
	p, _ := d.Providers().At(target.ProvIdx)
	stored, err := p.Get(target.VID)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), stored...)
	for i := range stored {
		stored[i] ^= 0x5A
	}
	if err := p.Put(target.VID, stored); err != nil {
		t.Fatal(err)
	}

	rep, err := d.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ParityChecked == 0 {
		t.Fatal("ParityChecked = 0, want > 0")
	}
	if rep.ParityRepaired == 0 {
		t.Fatalf("ParityRepaired = 0, want > 0 (report: %+v)", rep)
	}
	healed, err := p.Get(target.VID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, want) {
		t.Fatal("scrub did not restore the parity blob's original bytes")
	}
	// A clean second pass finds nothing to repair.
	rep2, err := d.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ParityRepaired != 0 || rep2.ParityUnrepairable != 0 {
		t.Fatalf("second scrub still repairing: %+v", rep2)
	}
}
