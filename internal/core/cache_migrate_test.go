package core

import (
	"bytes"
	"testing"

	"repro/internal/privacy"
)

// TestCacheNotStaleAcrossDecommission is the cache-vs-migration
// lifecycle check: decommissioning a provider while its chunks are
// cache-resident must not let the old generation's cached bytes shadow
// anything that happens after the migration commits. The move bumps the
// file generation, so post-migration reads plan new cache keys — the
// warm entries become unreachable rather than stale.
func TestCacheNotStaleAcrossDecommission(t *testing.T) {
	d, gets := cacheTestDistributor(t, 32<<20)
	data := payload(48<<10, 7)
	if _, err := d.Upload("alice", "root", "f.bin", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}

	// Warm the cache with the whole file.
	if _, err := d.GetFile("alice", "root", "f.bin"); err != nil {
		t.Fatal(err)
	}
	genBefore := d.StateView().Files[0].Gen

	// Decommission the provider holding serial 0's primary copy.
	d.mu.RLock()
	provIdx := d.chunks[d.clients["alice"].Files["f.bin"].ChunkIdx[0]].CPIndex
	d.mu.RUnlock()
	if _, err := d.Decommission(provIdx); err != nil {
		t.Fatal(err)
	}

	genAfter := d.StateView().Files[0].Gen
	if genAfter <= genBefore {
		t.Fatalf("decommission did not bump the file generation (%d -> %d); stale cache entries would stay live", genBefore, genAfter)
	}

	// The migrated read must go back to the providers (new generation ⇒
	// new cache keys ⇒ miss), and must still serve the exact bytes.
	before := gets.Load()
	got, err := d.GetFile("alice", "root", "f.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-decommission read served wrong bytes")
	}
	if gets.Load() == before {
		t.Fatal("post-decommission read performed no provider I/O — it was served from the pre-migration cache")
	}

	// And a mutation after the migration must win over any warm entry:
	// the classic staleness scenario is cache(genN) surviving a move and
	// shadowing an update.
	newChunk := payload(8<<10, 8)
	if err := d.UpdateChunk("alice", "root", "f.bin", 0, newChunk, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	gotChunk, err := d.GetChunk("alice", "root", "f.bin", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotChunk, newChunk) {
		t.Fatal("read after decommission+update served stale pre-update bytes")
	}
}
