package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/privacy"
	"repro/internal/raid"
	"repro/internal/wal"
)

// This file is the distributor's durability layer: every commit path
// appends one typed record to the write-ahead log BEFORE its mutation
// becomes visible, periodic checkpoints snapshot the full tables, and
// New replays snapshot+tail so a restarted distributor serves exactly
// the state the last acknowledged commit left behind.

// walRecord is one logical commit, serialized into a WAL frame by the
// binary codec in walcodec.go. Exactly one Op is set per record; the
// other fields are populated per-op (varint encoding makes each unused
// field a single byte on the wire). Every
// record also carries the post-commit watermarks — distributor
// generation plus the allocator counters — so recovery restores them
// without replaying aborted operations that consumed counters but never
// logged anything.
type walRecord struct {
	Op string // register, passwd, upload, update, remove_file, remove_chunk, move_chunk, move_mirror, move_snapshot, drop_snapshot, move_parity

	// Watermarks (every record).
	Gen      uint64 // d.gen after this commit applies
	FIDSeq   uint64
	EncNonce uint64
	VIDCtr   uint64

	Client   string
	Filename string

	// passwd.
	PassHash string
	PassPL   privacy.Level

	// upload: the staged rows, already rebased to absolute indices.
	FID         uint64
	PL          privacy.Level
	Raid        raid.Level
	ChunksBase  int
	StripesBase int
	Chunks      []chunkEntry
	Stripes     []stripeEntry
	ChunkIdx    []int

	// update / remove_chunk.
	Serial   int
	StripeID int
	Chunk    chunkEntry
	Parity   []parityShard
	Members  []int
	ShardLen int

	// moves (decommission relocations).
	TableIdx int // chunk index, or stripe index for move_parity
	SubIdx   int // mirror index / parity index
	NewProv  int
	NewVID   string

	// Per-file and per-client generations after this commit applies.
	FileGen   uint64
	ClientGen uint64
}

// walState is the checkpoint payload: the full committed tables plus the
// allocator watermarks. provCount is deliberately absent — recovery
// recomputes it from the tables, which doubles as an integrity check
// that every placement is inside the fleet.
type walState struct {
	Clients  map[string]*clientEntry
	Chunks   []chunkEntry
	Stripes  []stripeEntry
	Gen      uint64
	FIDSeq   uint64
	EncNonce uint64
	VIDCtr   uint64
}

// walCounterSlack is added to every allocator counter after recovery.
// Operations that aborted after the plan phase consumed nonces, file ids
// and virtual-id counter values that no record ever logged; restarting
// exactly at the logged watermark could re-issue them. Re-using an
// AES-CTR nonce under the same key breaks confidentiality outright, so
// the slack is generous.
const walCounterSlack = 1 << 16

// defaultSnapshotEvery is the checkpoint cadence (in records) when
// Config.SnapshotEvery is zero.
const defaultSnapshotEvery = 4096

// errClosed reports an append on a distributor that has been Closed (or
// Crashed); the owning mutation aborts cleanly.
var errClosed = errors.New("core: distributor closed")

// logAppendLocked fills rec's allocator watermarks, appends it to the
// WAL (honoring the sync policy) and hands the encoded record to the
// commit hook, which is how a Cluster feeds incremental replication. A
// nil WAL with no hook (plain in-memory distributor) is a no-op.
// Callers hold d.mu and MUST abort their commit — leaving the tables
// untouched and rolling back shipped blobs — when this fails: a
// mutation that is not durable must not become visible. The hook runs
// only after a successful append, so every record it sees is exactly a
// committed mutation.
func (d *Distributor) logAppendLocked(rec *walRecord) error {
	if d.wal == nil && d.commitHook == nil {
		return nil
	}
	if d.closed {
		return errClosed
	}
	rec.FIDSeq = d.fidSeq
	rec.EncNonce = d.encNonce
	if prf, ok := d.vids.(*prfAllocator); ok {
		rec.VIDCtr = prf.ctr
	}
	raw := encodeWALRecord(rec)
	if d.wal != nil {
		if err := d.wal.Append(raw); err != nil {
			return fmt.Errorf("core: wal append: %w", err)
		}
	}
	if d.commitHook != nil {
		d.commitHook(raw)
	}
	return nil
}

// setCommitHook registers fn to receive every committed mutation's
// encoded WAL record. fn runs under d.mu immediately after the record
// is appended (or, on an in-memory distributor, where the append would
// have been), so it must be cheap, must not block, and must not call
// back into the distributor. Install before concurrent use.
func (d *Distributor) setCommitHook(fn func(raw []byte)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.commitHook = fn
}

// maybeCheckpointLocked checkpoints when the log tail has grown past the
// configured cadence. A checkpoint failure is not fatal to the mutation
// that triggered it — the records are already durable, the tail just
// stays long — so it is only counted. Callers hold d.mu.
func (d *Distributor) maybeCheckpointLocked() {
	if d.wal == nil || d.closed {
		return
	}
	if d.wal.Stats().SinceCheckpoint < uint64(d.snapshotEvery) {
		return
	}
	if err := d.checkpointLocked(); err != nil {
		d.walCheckpointErrs.Add(1)
	}
}

// checkpointLocked snapshots the committed tables into the WAL and
// rotates the log. Callers hold d.mu.
func (d *Distributor) checkpointLocked() error {
	st := walState{
		Clients:  d.clients,
		Chunks:   d.chunks,
		Stripes:  d.stripes,
		Gen:      d.gen,
		FIDSeq:   d.fidSeq,
		EncNonce: d.encNonce,
	}
	if prf, ok := d.vids.(*prfAllocator); ok {
		st.VIDCtr = prf.ctr
	}
	if err := d.wal.Checkpoint(encodeWALState(&st)); err != nil {
		return fmt.Errorf("core: wal checkpoint: %w", err)
	}
	return nil
}

// recoverWAL opens cfg.WALDir and rebuilds the distributor's tables from
// the newest snapshot plus the log tail. Runs from New, before the
// distributor is published, so the *Locked helpers are safe without the
// lock. On any decode or apply failure the error names the record so an
// operator can tell a torn tail (repaired silently) from real corruption.
func (d *Distributor) recoverWAL(cfg Config) error {
	every := cfg.SnapshotEvery
	if every == 0 {
		every = defaultSnapshotEvery
	}
	if every < 1 {
		return fmt.Errorf("%w: snapshot every %d", ErrConfig, cfg.SnapshotEvery)
	}
	d.snapshotEvery = every
	log, rec, err := wal.Open(cfg.WALDir, wal.Options{Policy: cfg.WALSync, BugSkipSync: cfg.WALBugSkipSync})
	if err != nil {
		return fmt.Errorf("core: opening wal: %w", err)
	}
	d.wal = log
	d.walTailTruncated = rec.TailTruncated
	if rec.Snapshot != nil {
		var st walState
		if err := decodeWALState(rec.Snapshot, &st); err != nil {
			log.Close()
			return fmt.Errorf("core: decoding wal snapshot (lsn %d): %w", rec.SnapshotLSN, err)
		}
		d.installState(&st)
		d.walRecoveredSnapshot = true
	}
	for i, raw := range rec.Records {
		var r walRecord
		if err := decodeWALRecord(raw, &r); err != nil {
			log.Close()
			return fmt.Errorf("core: decoding wal record lsn %d: %w", rec.SnapshotLSN+uint64(i), err)
		}
		if err := d.applyWALRecord(&r); err != nil {
			log.Close()
			return fmt.Errorf("core: replaying wal record lsn %d (op %s): %w", rec.SnapshotLSN+uint64(i), r.Op, err)
		}
	}
	d.walReplayed = int64(len(rec.Records))
	if err := d.recomputeProvCountLocked(); err != nil {
		log.Close()
		return err
	}
	if d.walRecoveredSnapshot || d.walReplayed > 0 {
		// Aborted operations consumed counters no record logged; never
		// re-issue a nonce, fid or vid a previous incarnation may have used.
		d.fidSeq += walCounterSlack
		d.encNonce += walCounterSlack
		if prf, ok := d.vids.(*prfAllocator); ok {
			prf.ctr += walCounterSlack
		}
		// Blobs shipped by tickets that never reached their commit record
		// are unreferenced now; sweep them like an interrupted removal.
		// Best-effort — unreachable providers are audited again later. The
		// sweep is gated on having actually recovered state so that
		// pointing a fresh WALDir at a populated fleet cannot mass-delete.
		if rep, err := d.AuditOrphans(true); err == nil {
			d.recoveryOrphans = int64(rep.Deleted)
		}
	}
	return nil
}

// installState replaces the tables with a decoded checkpoint.
func (d *Distributor) installState(st *walState) {
	if st.Clients == nil {
		st.Clients = map[string]*clientEntry{}
	}
	d.clients = st.Clients
	d.chunks = st.Chunks
	d.stripes = st.Stripes
	d.gen = st.Gen
	d.fidSeq = st.FIDSeq
	d.encNonce = st.EncNonce
	d.restoreVIDCtr(st.VIDCtr)
}

// restoreVIDCtr advances the PRF allocator to at least ctr. Custom
// allocators (scripted, test fakes) carry no counter to restore.
func (d *Distributor) restoreVIDCtr(ctr uint64) {
	if prf, ok := d.vids.(*prfAllocator); ok && ctr > prf.ctr {
		prf.ctr = ctr
	}
}

// applyWALRecord replays one commit against the tables. It validates
// every reference — replay is the one place a corrupt-but-CRC-valid or
// out-of-order record could silently poison the tables, so a mismatch is
// an error, not a best-effort patch. Mutates clients/chunks/stripes, the
// watermarks, and the per-provider counts (incrementally, so a follower
// applying a replication stream never pays an O(table) recompute);
// recovery still recomputes the counts wholesale afterwards, which is
// what makes the bump helpers safe to no-op when no fleet is attached.
// The cache starts empty in a fresh process and is generation-keyed, so
// stale entries on a follower miss naturally.
func (d *Distributor) applyWALRecord(rec *walRecord) error {
	switch rec.Op {
	case "register":
		if _, ok := d.clients[rec.Client]; ok {
			return fmt.Errorf("client %q already exists", rec.Client)
		}
		d.clients[rec.Client] = &clientEntry{
			Name:      rec.Client,
			Passwords: make(map[string]privacy.Level),
			Files:     make(map[string]*fileEntry),
		}

	case "passwd":
		c, ok := d.clients[rec.Client]
		if !ok {
			return fmt.Errorf("client %q not registered", rec.Client)
		}
		c.Passwords[rec.PassHash] = rec.PassPL

	case "upload":
		c, ok := d.clients[rec.Client]
		if !ok {
			return fmt.Errorf("client %q not registered", rec.Client)
		}
		if rec.ChunksBase != len(d.chunks) || rec.StripesBase != len(d.stripes) {
			return fmt.Errorf("upload of %q rebased at chunk %d / stripe %d but tables hold %d / %d",
				rec.Filename, rec.ChunksBase, rec.StripesBase, len(d.chunks), len(d.stripes))
		}
		if _, dup := c.Files[rec.Filename]; dup {
			return fmt.Errorf("file %q already exists", rec.Filename)
		}
		d.chunks = append(d.chunks, rec.Chunks...)
		d.stripes = append(d.stripes, rec.Stripes...)
		for i := range rec.Chunks {
			d.bumpChunkProvLocked(&rec.Chunks[i], 1)
		}
		for i := range rec.Stripes {
			d.bumpParityProvLocked(rec.Stripes[i].Parity, 1)
		}
		c.Files[rec.Filename] = &fileEntry{
			Filename: rec.Filename,
			PL:       rec.PL,
			FID:      rec.FID,
			Raid:     rec.Raid,
			ChunkIdx: rec.ChunkIdx,
			Gen:      rec.FileGen,
		}
		c.Count += len(rec.ChunkIdx)
		c.Gen = rec.ClientGen

	case "update":
		fe, err := d.replayFile(rec)
		if err != nil {
			return err
		}
		idx, err := d.replayChunkIdx(fe, rec.Serial)
		if err != nil {
			return err
		}
		if rec.StripeID < 0 || rec.StripeID >= len(d.stripes) {
			return fmt.Errorf("stripe %d out of range", rec.StripeID)
		}
		st := &d.stripes[rec.StripeID]
		d.bumpChunkProvLocked(&d.chunks[idx], -1)
		d.bumpParityProvLocked(st.Parity, -1)
		d.chunks[idx] = rec.Chunk
		d.bumpChunkProvLocked(&rec.Chunk, 1)
		st.Parity = rec.Parity
		d.bumpParityProvLocked(rec.Parity, 1)
		if rec.ShardLen > 0 {
			st.ShardLen = rec.ShardLen
		}
		fe.Gen = rec.FileGen

	case "remove_file":
		c := d.clients[rec.Client]
		fe, err := d.replayFile(rec)
		if err != nil {
			return err
		}
		remaining := 0
		seenStripe := map[int]bool{}
		for _, idx := range fe.ChunkIdx {
			if idx < 0 {
				continue
			}
			if idx >= len(d.chunks) {
				return fmt.Errorf("chunk %d out of range", idx)
			}
			remaining++
			e := &d.chunks[idx]
			d.bumpChunkProvLocked(e, -1)
			if !seenStripe[e.StripeID] {
				seenStripe[e.StripeID] = true
				st := &d.stripes[e.StripeID]
				d.bumpParityProvLocked(st.Parity, -1)
				st.Parity = nil
				st.Members = nil
			}
			e.CPIndex = -1
			e.SnapVID = ""
			e.SPIndex = -1
			e.Mirrors = nil
		}
		c.Count -= remaining
		delete(c.Files, rec.Filename)
		c.Gen = rec.ClientGen

	case "remove_chunk":
		c := d.clients[rec.Client]
		fe, err := d.replayFile(rec)
		if err != nil {
			return err
		}
		idx, err := d.replayChunkIdx(fe, rec.Serial)
		if err != nil {
			return err
		}
		if rec.StripeID < 0 || rec.StripeID >= len(d.stripes) {
			return fmt.Errorf("stripe %d out of range", rec.StripeID)
		}
		st := &d.stripes[rec.StripeID]
		d.bumpParityProvLocked(st.Parity, -1)
		st.Members = rec.Members
		st.ShardLen = rec.ShardLen
		st.Parity = rec.Parity
		d.bumpParityProvLocked(rec.Parity, 1)
		e := &d.chunks[idx]
		d.bumpChunkProvLocked(e, -1)
		e.CPIndex = -1
		e.SPIndex = -1
		e.SnapVID = ""
		e.Mirrors = nil
		fe.ChunkIdx[rec.Serial] = -1
		c.Count--
		fe.Gen = rec.FileGen

	case "move_chunk":
		fe, err := d.replayFile(rec)
		if err != nil {
			return err
		}
		if rec.TableIdx < 0 || rec.TableIdx >= len(d.chunks) {
			return fmt.Errorf("chunk %d out of range", rec.TableIdx)
		}
		e := &d.chunks[rec.TableIdx]
		if e.CPIndex >= 0 {
			d.bumpProvLocked(e.CPIndex, -1)
			d.bumpProvLocked(rec.NewProv, 1)
		}
		e.CPIndex = rec.NewProv
		e.VirtualID = rec.NewVID
		fe.Gen = rec.FileGen

	case "move_mirror":
		fe, err := d.replayFile(rec)
		if err != nil {
			return err
		}
		if rec.TableIdx < 0 || rec.TableIdx >= len(d.chunks) {
			return fmt.Errorf("chunk %d out of range", rec.TableIdx)
		}
		e := &d.chunks[rec.TableIdx]
		if rec.SubIdx < 0 || rec.SubIdx >= len(e.Mirrors) {
			return fmt.Errorf("mirror %d of chunk %d out of range", rec.SubIdx, rec.TableIdx)
		}
		if e.CPIndex >= 0 {
			d.bumpProvLocked(e.Mirrors[rec.SubIdx].CPIndex, -1)
			d.bumpProvLocked(rec.NewProv, 1)
		}
		e.Mirrors[rec.SubIdx] = mirrorRef{VirtualID: rec.NewVID, CPIndex: rec.NewProv}
		fe.Gen = rec.FileGen

	case "move_snapshot":
		fe, err := d.replayFile(rec)
		if err != nil {
			return err
		}
		if rec.TableIdx < 0 || rec.TableIdx >= len(d.chunks) {
			return fmt.Errorf("chunk %d out of range", rec.TableIdx)
		}
		e := &d.chunks[rec.TableIdx]
		if e.CPIndex >= 0 {
			if e.SnapVID != "" {
				d.bumpProvLocked(e.SPIndex, -1)
			}
			if rec.NewVID != "" {
				d.bumpProvLocked(rec.NewProv, 1)
			}
		}
		e.SPIndex = rec.NewProv
		e.SnapVID = rec.NewVID
		fe.Gen = rec.FileGen

	case "drop_snapshot":
		fe, err := d.replayFile(rec)
		if err != nil {
			return err
		}
		if rec.TableIdx < 0 || rec.TableIdx >= len(d.chunks) {
			return fmt.Errorf("chunk %d out of range", rec.TableIdx)
		}
		e := &d.chunks[rec.TableIdx]
		if e.CPIndex >= 0 && e.SnapVID != "" {
			d.bumpProvLocked(e.SPIndex, -1)
		}
		e.SPIndex = -1
		e.SnapVID = ""
		fe.Gen = rec.FileGen

	case "move_parity":
		fe, err := d.replayFile(rec)
		if err != nil {
			return err
		}
		if rec.TableIdx < 0 || rec.TableIdx >= len(d.stripes) {
			return fmt.Errorf("stripe %d out of range", rec.TableIdx)
		}
		st := &d.stripes[rec.TableIdx]
		if rec.SubIdx < 0 || rec.SubIdx >= len(st.Parity) {
			return fmt.Errorf("parity %d of stripe %d out of range", rec.SubIdx, rec.TableIdx)
		}
		d.bumpProvLocked(st.Parity[rec.SubIdx].CPIndex, -1)
		d.bumpProvLocked(rec.NewProv, 1)
		st.Parity[rec.SubIdx] = parityShard{VirtualID: rec.NewVID, CPIndex: rec.NewProv}
		fe.Gen = rec.FileGen

	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}

	d.gen = rec.Gen
	if rec.FIDSeq > d.fidSeq {
		d.fidSeq = rec.FIDSeq
	}
	if rec.EncNonce > d.encNonce {
		d.encNonce = rec.EncNonce
	}
	d.restoreVIDCtr(rec.VIDCtr)
	return nil
}

// replayFile resolves the client+filename a record targets.
func (d *Distributor) replayFile(rec *walRecord) (*fileEntry, error) {
	c, ok := d.clients[rec.Client]
	if !ok {
		return nil, fmt.Errorf("client %q not registered", rec.Client)
	}
	fe, ok := c.Files[rec.Filename]
	if !ok {
		return nil, fmt.Errorf("file %q not found for client %q", rec.Filename, rec.Client)
	}
	return fe, nil
}

// replayChunkIdx resolves a file's serial to a live chunk-table index.
func (d *Distributor) replayChunkIdx(fe *fileEntry, serial int) (int, error) {
	if serial < 0 || serial >= len(fe.ChunkIdx) {
		return 0, fmt.Errorf("serial %d out of range for %q", serial, fe.Filename)
	}
	idx := fe.ChunkIdx[serial]
	if idx < 0 || idx >= len(d.chunks) {
		return 0, fmt.Errorf("serial %d of %q resolves to chunk %d, table holds %d", serial, fe.Filename, idx, len(d.chunks))
	}
	return idx, nil
}

// bumpProvLocked adjusts the committed per-provider count by delta.
// Recovery replay recomputes the counts wholesale after the tail is
// applied, and the offline validator (ValidateWALDir) carries no fleet
// at all, so a nil slice or out-of-range index is silently ignored here;
// recomputeProvCountLocked remains the authoritative shape check.
func (d *Distributor) bumpProvLocked(idx, delta int) {
	if idx >= 0 && idx < len(d.provCount) {
		d.provCount[idx] += delta
	}
}

// bumpChunkProvLocked adjusts provider counts for every placement a
// live chunk entry holds: primary, mirrors and snapshot. Dead entries
// (CPIndex < 0) carry no counted placements, matching the rules in
// recomputeProvCountLocked.
func (d *Distributor) bumpChunkProvLocked(e *chunkEntry, delta int) {
	if e.CPIndex < 0 {
		return
	}
	d.bumpProvLocked(e.CPIndex, delta)
	for _, m := range e.Mirrors {
		d.bumpProvLocked(m.CPIndex, delta)
	}
	if e.SnapVID != "" {
		d.bumpProvLocked(e.SPIndex, delta)
	}
}

// bumpParityProvLocked adjusts provider counts for a parity shard list.
func (d *Distributor) bumpParityProvLocked(ps []parityShard, delta int) {
	for _, p := range ps {
		d.bumpProvLocked(p.CPIndex, delta)
	}
}

// Generation returns the distributor's commit generation: it advances on
// every committed mutation and is what replication lag is measured in.
func (d *Distributor) Generation() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.gen
}

// ApplyReplicated applies one encoded commit record shipped from a
// primary distributor onto this follower: the same log-before-mutate
// discipline as a local commit (a durable follower appends the raw
// record to its own WAL first), then the same validated replay path the
// recovery code uses. The record's generation watermark must not run
// behind the follower's — that is the conflict check that catches a
// stream applied out of order or against a diverged replica; structural
// validation inside the replay catches everything subtler, and either
// failure tells the caller to fall back to a full snapshot. Returns the
// follower's generation after the record applies.
func (d *Distributor) ApplyReplicated(raw []byte) (uint64, error) {
	var rec walRecord
	if err := decodeWALRecord(raw, &rec); err != nil {
		return 0, fmt.Errorf("core: decoding replicated record: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, errClosed
	}
	if rec.Gen < d.gen {
		return 0, fmt.Errorf("%w: replicated %s record at generation %d behind follower generation %d",
			ErrConflict, rec.Op, rec.Gen, d.gen)
	}
	if d.wal != nil {
		if err := d.wal.Append(raw); err != nil {
			return 0, fmt.Errorf("core: follower wal append: %w", err)
		}
	}
	if err := d.applyWALRecord(&rec); err != nil {
		return 0, fmt.Errorf("core: applying replicated %s record: %w", rec.Op, err)
	}
	d.maybeCheckpointLocked()
	return d.gen, nil
}

// recomputeProvCountLocked rebuilds the committed per-provider counts
// from the tables. Doubles as the fleet-shape check: a WAL directory
// recorded against a different fleet places shards outside this one, and
// that must fail loudly at startup instead of panicking on first read.
func (d *Distributor) recomputeProvCountLocked() error {
	n := d.fleet.Len()
	counts := make([]int, n)
	tally := func(what string, provIdx int) error {
		if provIdx >= n {
			return fmt.Errorf("core: wal recovery: %s placed on provider %d but the fleet has %d — wrong fleet for this WAL directory", what, provIdx, n)
		}
		if provIdx >= 0 {
			counts[provIdx]++
		}
		return nil
	}
	for i := range d.chunks {
		c := &d.chunks[i]
		if err := tally(fmt.Sprintf("chunk %s#%d", c.Filename, c.Serial), c.CPIndex); err != nil {
			return err
		}
		if c.CPIndex < 0 {
			continue
		}
		for _, m := range c.Mirrors {
			if err := tally(fmt.Sprintf("mirror of %s#%d", c.Filename, c.Serial), m.CPIndex); err != nil {
				return err
			}
		}
		if c.SnapVID != "" {
			if err := tally(fmt.Sprintf("snapshot of %s#%d", c.Filename, c.Serial), c.SPIndex); err != nil {
				return err
			}
		}
	}
	for si := range d.stripes {
		for _, ps := range d.stripes[si].Parity {
			if err := tally(fmt.Sprintf("parity of stripe %d", si), ps.CPIndex); err != nil {
				return err
			}
		}
	}
	d.provCount = counts
	return nil
}

// Close gracefully shuts the distributor down: waits (bounded by ctx)
// for in-flight tickets to settle, writes a final checkpoint and closes
// the WAL. Further mutations fail with a closed error. Safe to call on
// an in-memory distributor (marks it closed, nothing to flush) and safe
// to call twice.
func (d *Distributor) Close(ctx context.Context) error {
	drained := d.drainTickets(ctx)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	var ckErr error
	if d.wal != nil {
		ckErr = d.checkpointLocked()
	}
	d.mu.Unlock()
	if d.wal == nil {
		return nil
	}
	var drainErr error
	if !drained {
		drainErr = fmt.Errorf("core: close: in-flight writes still open at deadline; their blobs will be swept as orphans on recovery")
	}
	return errors.Join(drainErr, ckErr, d.wal.Close())
}

// Crash abandons the distributor the way a power loss would: no drain,
// no final checkpoint, and the WAL keeps only what its sync policy made
// durable. Fault-injection harnesses use this; production uses Close.
func (d *Distributor) Crash() error {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	if d.wal == nil {
		return nil
	}
	return d.wal.Crash()
}

// drainTickets waits for every in-flight write (open tickets and upload
// reservations) to commit or abort, polling until ctx expires.
func (d *Distributor) drainTickets(ctx context.Context) bool {
	for {
		d.mu.Lock()
		idle := len(d.inflight) == 0 && len(d.reserved) == 0
		d.mu.Unlock()
		if idle {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// WALStats is the deterministic slice of the durability layer's counters
// carried inside OpMetrics. Comparable scalars only — no wall-clock
// fields — so simulation harnesses can compare whole metric snapshots
// with ==; the age-based view lives in WALHealth.
type WALStats struct {
	Enabled           bool
	Records           int64 // records appended since this process opened the log
	Fsyncs            int64
	Checkpoints       int64
	CheckpointErrors  int64
	SinceCheckpoint   int64 // log-tail records a crash right now would replay
	Replayed          int64 // records replayed at startup
	RecoveredSnapshot bool
	TailTruncated     bool  // startup truncated a torn final record
	RecoveryOrphans   int64 // orphan blobs swept by the post-recovery audit
}

// walStats assembles the WALStats snapshot; zero value when the
// distributor is in-memory.
func (d *Distributor) walStats() WALStats {
	if d.wal == nil {
		return WALStats{}
	}
	st := d.wal.Stats()
	return WALStats{
		Enabled:           true,
		Records:           st.Appended,
		Fsyncs:            st.Fsyncs,
		Checkpoints:       st.Checkpoints,
		CheckpointErrors:  d.walCheckpointErrs.Load(),
		SinceCheckpoint:   int64(st.SinceCheckpoint),
		Replayed:          d.walReplayed,
		RecoveredSnapshot: d.walRecoveredSnapshot,
		TailTruncated:     d.walTailTruncated,
		RecoveryOrphans:   d.recoveryOrphans,
	}
}

// WALHealth is the operator-facing durability view served on /v1/health:
// WALStats plus log positions and the last-checkpoint age.
type WALHealth struct {
	Enabled             bool   `json:"enabled"`
	Policy              string `json:"policy,omitempty"`
	NextLSN             uint64 `json:"next_lsn,omitempty"`
	SegmentBase         uint64 `json:"segment_base,omitempty"`
	SinceCheckpoint     uint64 `json:"since_checkpoint,omitempty"`
	Records             int64  `json:"records,omitempty"`
	Fsyncs              int64  `json:"fsyncs,omitempty"`
	Checkpoints         int64  `json:"checkpoints,omitempty"`
	Replayed            int64  `json:"replayed,omitempty"`
	TailTruncated       bool   `json:"tail_truncated,omitempty"`
	LastCheckpointAgeMs int64  `json:"last_checkpoint_age_ms,omitempty"`
}

// WALHealth reports the durability layer's health. d.wal is assigned
// once before the distributor is published and never reassigned, so no
// lock is needed.
func (d *Distributor) WALHealth() WALHealth {
	if d.wal == nil {
		return WALHealth{}
	}
	st := d.wal.Stats()
	h := WALHealth{
		Enabled:         true,
		Policy:          st.Policy,
		NextLSN:         st.NextLSN,
		SegmentBase:     st.SegmentBase,
		SinceCheckpoint: st.SinceCheckpoint,
		Records:         st.Appended,
		Fsyncs:          st.Fsyncs,
		Checkpoints:     st.Checkpoints,
		Replayed:        d.walReplayed,
		TailTruncated:   d.walTailTruncated,
	}
	if st.LastCheckpointUnixNano > 0 {
		h.LastCheckpointAgeMs = time.Since(time.Unix(0, st.LastCheckpointUnixNano)).Milliseconds()
	}
	return h
}

// WALReport summarizes an offline replay validation of a WAL directory.
type WALReport struct {
	HasSnapshot   bool
	SnapshotLSN   uint64
	Records       int
	TailTruncated bool
	Gen           uint64
	Clients       int
	Files         int
	LiveChunks    int
	Stripes       int
}

// ValidateWALDir replays a WAL directory read-only — no truncation, no
// fleet, no providers — and reports what a recovery would reconstruct.
// Any decode or apply failure is returned verbatim, so tooling can exit
// nonzero on a directory a real restart would refuse.
func ValidateWALDir(dir string) (WALReport, error) {
	rec, err := wal.ReadAll(dir)
	if err != nil {
		return WALReport{}, err
	}
	rep := WALReport{
		SnapshotLSN:   rec.SnapshotLSN,
		Records:       len(rec.Records),
		TailTruncated: rec.TailTruncated,
	}
	d := &Distributor{clients: map[string]*clientEntry{}}
	if rec.Snapshot != nil {
		rep.HasSnapshot = true
		var st walState
		if err := decodeWALState(rec.Snapshot, &st); err != nil {
			return rep, fmt.Errorf("core: decoding wal snapshot (lsn %d): %w", rec.SnapshotLSN, err)
		}
		d.installState(&st)
	}
	for i, raw := range rec.Records {
		var r walRecord
		if err := decodeWALRecord(raw, &r); err != nil {
			return rep, fmt.Errorf("core: decoding wal record lsn %d: %w", rec.SnapshotLSN+uint64(i), err)
		}
		if err := d.applyWALRecord(&r); err != nil {
			return rep, fmt.Errorf("core: replaying wal record lsn %d (op %s): %w", rec.SnapshotLSN+uint64(i), r.Op, err)
		}
	}
	rep.Gen = d.gen
	rep.Clients = len(d.clients)
	for _, c := range d.clients {
		rep.Files += len(c.Files)
	}
	for i := range d.chunks {
		if d.chunks[i].CPIndex >= 0 {
			rep.LiveChunks++
		}
	}
	rep.Stripes = len(d.stripes)
	return rep, nil
}
