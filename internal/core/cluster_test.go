package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/privacy"
	"repro/internal/provider"
)

func testCluster(t *testing.T, nDist, nProv int) (*Cluster, *provider.Fleet) {
	t.Helper()
	fleet := testFleet(t, nProv)
	dists := make([]*Distributor, nDist)
	for i := range dists {
		d, err := New(Config{Fleet: fleet, Secret: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		dists[i] = d
	}
	c, err := NewCluster(dists...)
	if err != nil {
		t.Fatal(err)
	}
	return c, fleet
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty cluster: %v", err)
	}
	f1 := testFleet(t, 3)
	f2 := testFleet(t, 3)
	d1, _ := New(Config{Fleet: f1})
	d2, _ := New(Config{Fleet: f2})
	if _, err := NewCluster(d1, d2); !errors.Is(err, ErrConfig) {
		t.Fatalf("mixed fleets: %v", err)
	}
}

func TestClusterUploadAndRetrieveViaSecondary(t *testing.T) {
	c, _ := testCluster(t, 3, 6)
	if err := c.RegisterClient("bob"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPassword("bob", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	data := payload(90_000, 60)
	info, err := c.Upload("bob", "pw", "f", data, privacy.Moderate, UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Chunks == 0 {
		t.Fatal("no chunks")
	}
	// The primary fails ("a single data distributor ... can be the single
	// point of failure"); secondaries must keep serving retrievals.
	if err := c.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetFile("bob", "pw", "f")
	if err != nil {
		t.Fatalf("retrieval with primary down: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("secondary served wrong data")
	}
	chunk, err := c.GetChunk("bob", "pw", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk) == 0 {
		t.Fatal("empty chunk from secondary")
	}
	// Uploads require the primary.
	if _, err := c.Upload("bob", "pw", "g", data, privacy.Low, UploadOptions{}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("upload with primary down: %v", err)
	}
	if err := c.RegisterClient("x"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("register with primary down: %v", err)
	}
	if err := c.AddPassword("bob", "q", privacy.Low); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("add password with primary down: %v", err)
	}
	// Recovery.
	_ = c.SetDown(0, false)
	if _, err := c.Upload("bob", "pw", "g", []byte("tiny"), privacy.Low, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterAllDistributorsDown(t *testing.T) {
	c, _ := testCluster(t, 2, 4)
	_ = c.RegisterClient("bob")
	_ = c.AddPassword("bob", "pw", privacy.High)
	if _, err := c.Upload("bob", "pw", "f", []byte("data"), privacy.Low, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	_ = c.SetDown(0, true)
	_ = c.SetDown(1, true)
	if _, err := c.GetFile("bob", "pw", "f"); err == nil {
		t.Fatal("retrieval succeeded with every distributor down")
	}
	if err := c.SetDown(5, true); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad index: %v", err)
	}
}

func TestClusterAccessControlHoldsOnSecondaries(t *testing.T) {
	c, _ := testCluster(t, 2, 5)
	_ = c.RegisterClient("bob")
	_ = c.AddPassword("bob", "admin", privacy.High)
	_ = c.AddPassword("bob", "weak", privacy.Public)
	if _, err := c.Upload("bob", "admin", "s", payload(9_000, 61), privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	_ = c.SetDown(0, true)
	if _, err := c.GetChunk("bob", "weak", "s", 0); !errors.Is(err, ErrAuth) {
		t.Fatalf("secondary honored weak password: %v", err)
	}
}

func TestExportImportMetadata(t *testing.T) {
	fleet := testFleet(t, 4)
	d1, _ := New(Config{Fleet: fleet})
	_ = d1.RegisterClient("bob")
	_ = d1.AddPassword("bob", "pw", privacy.High)
	data := payload(30_000, 62)
	if _, err := d1.Upload("bob", "pw", "f", data, privacy.Moderate, UploadOptions{MisleadFraction: 0.2}); err != nil {
		t.Fatal(err)
	}
	snap, err := d1.ExportMetadata()
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := New(Config{Fleet: fleet})
	if err := d2.ImportMetadata(snap); err != nil {
		t.Fatal(err)
	}
	got, err := d2.GetFile("bob", "pw", "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("imported distributor served wrong data")
	}
	if d2.Stats().Chunks != d1.Stats().Chunks {
		t.Fatal("stats diverge after import")
	}
}

func TestImportMetadataRejectsWrongFleet(t *testing.T) {
	d1, _ := New(Config{Fleet: testFleet(t, 4)})
	snap, _ := d1.ExportMetadata()
	d2, _ := New(Config{Fleet: testFleet(t, 7)})
	if err := d2.ImportMetadata(snap); !errors.Is(err, ErrConfig) {
		t.Fatalf("fleet-size mismatch: %v", err)
	}
	if err := d2.ImportMetadata([]byte("garbage")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestMetadataNeverContainsPlaintextPasswords(t *testing.T) {
	fleet := testFleet(t, 4)
	d, _ := New(Config{Fleet: fleet})
	_ = d.RegisterClient("bob")
	secretPW := "hunter2-super-secret"
	if err := d.AddPassword("bob", secretPW, privacy.High); err != nil {
		t.Fatal(err)
	}
	snap, err := d.ExportMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(snap, []byte(secretPW)) {
		t.Fatal("plaintext password present in replicated metadata")
	}
	// Authentication still works (hash comparison).
	if _, err := d.Upload("bob", secretPW, "f", []byte("x"), privacy.Low, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upload("bob", "wrong", "g", []byte("x"), privacy.Low, UploadOptions{}); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong password: %v", err)
	}
	// The rendered client table shows only a hash prefix.
	rendered := FormatClientTable(d.ClientTable())
	if strings.Contains(rendered, secretPW) {
		t.Fatal("plaintext password rendered in Table II")
	}
}
