package core

import (
	"errors"
	"testing"

	"repro/internal/privacy"
)

// TestFigure3Walkthrough reproduces the paper's two application-architecture
// scenarios: the accepted request (Bob, x9pr, file1, 0) and the denied
// request (Bob, aB1c, file1, 0).
func TestFigure3Walkthrough(t *testing.T) {
	sc, err := NewFigure3Scenario()
	if err != nil {
		t.Fatal(err)
	}
	d := sc.Distributor

	// Scenario 1: "the password x9pr is listed under Bob. The privacy
	// level of the password x9pr is 1 and the privacy level of chunk 0 of
	// file1 is also 1... the password is privileged enough."
	chunk, err := d.GetChunk("Bob", "x9pr", "file1", 0)
	if err != nil {
		t.Fatalf("accepted scenario failed: %v", err)
	}
	if len(chunk) != 1024 {
		t.Fatalf("chunk size = %d", len(chunk))
	}

	// Scenario 2: "The password aB1c is listed under Bob and its privacy
	// level is 0. As the privacy level of the requested chunk is 1, the
	// password is not privileged enough... Hence its request is denied."
	if _, err := d.GetChunk("Bob", "aB1c", "file1", 0); !errors.Is(err, ErrAuth) {
		t.Fatalf("denied scenario: err = %v, want ErrAuth", err)
	}
}

func TestFigure3VirtualIDs(t *testing.T) {
	sc, err := NewFigure3Scenario()
	if err != nil {
		t.Fatal(err)
	}
	rows := sc.Distributor.ChunkTable()
	if len(rows) != 7 {
		t.Fatalf("chunk rows = %d, want 7 (3+2+2)", len(rows))
	}
	want := map[string]bool{}
	for _, v := range Figure3VIDs {
		want[v] = true
	}
	for _, r := range rows {
		if !want[r.VirtualID] {
			t.Fatalf("unexpected virtual id %s", r.VirtualID)
		}
	}
	// Chunk 0 of file1 carries the figure's id 10986.
	ct := sc.Distributor.ClientTable()
	var bob ClientRow
	for _, r := range ct {
		if r.Client == "Bob" {
			bob = r
		}
	}
	if bob.Client == "" {
		t.Fatal("Bob missing from client table")
	}
	first := bob.Chunks[0]
	if first.Filename != "file1" || first.Serial != 0 {
		t.Fatalf("first chunk ref = %+v", first)
	}
	if got := rows[first.ChunkIdx].VirtualID; got != "10986" {
		t.Fatalf("file1#0 virtual id = %s, want 10986", got)
	}
}

func TestFigure3TablesMatchPaperShapes(t *testing.T) {
	sc, err := NewFigure3Scenario()
	if err != nil {
		t.Fatal(err)
	}
	d := sc.Distributor

	// Provider table: the 7 named providers with the paper's PL/CL.
	prows := d.ProviderTable()
	if len(prows) != 7 {
		t.Fatalf("providers = %d", len(prows))
	}
	if prows[6].Name != "Earth" || prows[6].PL != privacy.Low || prows[6].CL != 1 {
		t.Fatalf("Earth row = %+v", prows[6])
	}
	if prows[1].Name != "AWS" || prows[1].PL != privacy.High {
		t.Fatalf("AWS row = %+v", prows[1])
	}

	// Client table: Bob has 4 ⟨password, PL⟩ pairs, Roy has 1.
	crows := d.ClientTable()
	if len(crows) != 2 {
		t.Fatalf("clients = %d", len(crows))
	}
	for _, r := range crows {
		switch r.Client {
		case "Bob":
			if len(r.Passwords) != 4 || r.Count != 5 {
				t.Fatalf("Bob row = %+v", r)
			}
		case "Roy":
			if len(r.Passwords) != 1 || r.Count != 2 {
				t.Fatalf("Roy row = %+v", r)
			}
		default:
			t.Fatalf("unexpected client %s", r.Client)
		}
	}

	// Every chunk sits on a provider with PL >= chunk PL (the paper's
	// placement invariant).
	for _, r := range d.ChunkTable() {
		p, _ := d.Providers().At(r.CPIndex)
		if p.Info().PL < r.PL {
			t.Fatalf("chunk %s (PL %v) on provider %s (PL %v)", r.VirtualID, r.PL, p.Info().Name, p.Info().PL)
		}
	}
}

func TestFigure3RoysFileNeedsHighPrivilege(t *testing.T) {
	sc, _ := NewFigure3Scenario()
	d := sc.Distributor
	if _, err := d.GetFile("Roy", "eV2t", "file3"); err != nil {
		t.Fatal(err)
	}
	// Bob cannot read Roy's file even with his highest password.
	if _, err := d.GetFile("Bob", "Ty7e", "file3"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("cross-client access: %v", err)
	}
}
