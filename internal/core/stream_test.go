package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
)

// smallChunks shrinks every level's chunk size so multi-stripe files fit
// in a few KiB and stripe boundaries land at test-friendly offsets
// (High: 128-byte chunks, width 4 ⇒ 512-byte stripes).
func smallChunks() privacy.ChunkSizePolicy {
	return privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
		privacy.Public:   1024,
		privacy.Low:      512,
		privacy.Moderate: 256,
		privacy.High:     128,
	}}
}

// streamDistributor builds a distributor over n memory providers with the
// small chunk policy; mut tweaks the config before New.
func streamDistributor(t *testing.T, n int, mut func(*Config)) *Distributor {
	t.Helper()
	cfg := Config{Fleet: testFleet(t, n), ChunkPolicy: smallChunks()}
	if mut != nil {
		mut(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "guest", privacy.Public); err != nil {
		t.Fatal(err)
	}
	return d
}

// hookedStreamDistributor is streamDistributor over Hooked providers so
// tests can count, fail or darken provider I/O.
func hookedStreamDistributor(t *testing.T, n int, mut func(*Config)) (*Distributor, []*provider.Hooked) {
	t.Helper()
	f, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	hooked := make([]*provider.Hooked, n)
	for i := 0; i < n; i++ {
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("S%d", i), PL: privacy.High, CL: 1,
		}, provider.Options{})
		if err != nil {
			t.Fatal(err)
		}
		hooked[i] = provider.NewHooked(mem)
		if err := f.Add(hooked[i]); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Fleet: f, Parallelism: 1, ChunkPolicy: smallChunks()}
	if mut != nil {
		mut(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	return d, hooked
}

// getLog records every provider Get across a hooked fleet and can darken
// individual providers (their gets fail with ErrOutage after recording).
type getLog struct {
	mu   sync.Mutex
	keys []string
	dark map[int]bool
}

func attachGetLog(hooked []*provider.Hooked) *getLog {
	g := &getLog{dark: make(map[int]bool)}
	for i, h := range hooked {
		i := i
		h.SetBeforeGet(func(key string) error {
			g.mu.Lock()
			g.keys = append(g.keys, key)
			dark := g.dark[i]
			g.mu.Unlock()
			if dark {
				return provider.ErrOutage
			}
			return nil
		})
	}
	return g
}

func (g *getLog) reset() {
	g.mu.Lock()
	g.keys = nil
	g.mu.Unlock()
}

func (g *getLog) snapshot() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.keys...)
}

func (g *getLog) setDark(idx int, v bool) {
	g.mu.Lock()
	g.dark[idx] = v
	g.mu.Unlock()
}

// failFleetPutsAfter makes every provider put beyond the k-th (counted
// across the whole fleet) fail with ErrOutage — once tripped, failover
// has nowhere to go and the write must roll back.
func failFleetPutsAfter(hooked []*provider.Hooked, k int) {
	var mu sync.Mutex
	n := 0
	for _, h := range hooked {
		h.SetBeforePut(func(int, string) error {
			mu.Lock()
			defer mu.Unlock()
			n++
			if n > k {
				return provider.ErrOutage
			}
			return nil
		})
	}
}

func clearFleetPutHooks(hooked []*provider.Hooked) {
	for _, h := range hooked {
		h.SetBeforePut(nil)
	}
}

func fleetKeyCount(hooked []*provider.Hooked) int {
	n := 0
	for _, h := range hooked {
		n += len(h.Keys())
	}
	return n
}

// getFileTo drains a streaming read into memory for equality checks.
func getFileTo(t *testing.T, d *Distributor, password, filename string) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := d.GetFileTo(&buf, "alice", password, filename)
	if err != nil {
		t.Fatalf("GetFileTo(%s): %v", filename, err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("GetFileTo(%s): reported %d bytes, wrote %d", filename, n, buf.Len())
	}
	return buf.Bytes()
}

func TestUploadStreamRoundTrip(t *testing.T) {
	// High ⇒ 128-byte chunks; width 4 ⇒ 512-byte stripes. The sizes walk
	// every boundary: empty, sub-chunk, exact chunk, exact stripe, one
	// past, and a multi-stripe file with a short tail.
	sizes := []int{0, 1, 127, 128, 129, 512, 513, 1024, 3000}
	d := streamDistributor(t, 6, func(c *Config) { c.StreamWindow = 2 })
	for _, size := range sizes {
		name := fmt.Sprintf("f%d.bin", size)
		data := payload(size, int64(size)+1)
		info, err := d.UploadStream("alice", "root", name, bytes.NewReader(data), privacy.High, UploadOptions{})
		if err != nil {
			t.Fatalf("UploadStream(%d bytes): %v", size, err)
		}
		if info.Bytes != size {
			t.Fatalf("size %d: FileInfo.Bytes = %d", size, info.Bytes)
		}
		wantChunks := (size + 127) / 128
		if size == 0 {
			wantChunks = 1
		}
		if info.Chunks != wantChunks {
			t.Fatalf("size %d: %d chunks, want %d", size, info.Chunks, wantChunks)
		}
		if got := getFileTo(t, d, "root", name); !bytes.Equal(got, data) {
			t.Fatalf("size %d: GetFileTo mismatch (%d bytes back)", size, len(got))
		}
		// Interop: the buffered read path serves a streamed upload.
		got, err := d.GetFile("alice", "root", name)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("size %d: GetFile after UploadStream: %v", size, err)
		}
	}
	m := d.Metrics()
	if m.StreamUploads != int64(len(sizes)) || m.Uploads != int64(len(sizes)) {
		t.Fatalf("stream uploads %d / uploads %d, want %d", m.StreamUploads, m.Uploads, len(sizes))
	}
	if m.StreamReads != int64(len(sizes)) {
		t.Fatalf("stream reads %d, want %d", m.StreamReads, len(sizes))
	}
}

func TestUploadStreamOptionVariants(t *testing.T) {
	cases := []struct {
		name     string
		pl       privacy.Level
		password string
		window   int
		opts     UploadOptions
	}{
		{"raid6", privacy.High, "root", 2, UploadOptions{Assurance: raid.RAID6}},
		{"noparity", privacy.High, "root", 2, UploadOptions{NoParity: true}},
		{"replicas", privacy.High, "root", 2, UploadOptions{Replicas: 2}},
		{"mislead", privacy.High, "root", 2, UploadOptions{MisleadFraction: 0.25}},
		{"misleadlines", privacy.High, "root", 2, UploadOptions{MisleadLines: [][]byte{[]byte("decoy alpha"), []byte("decoy beta")}}},
		{"encrypted", privacy.High, "root", 2, UploadOptions{EncryptKey: payload(32, 9)}},
		{"public", privacy.Public, "guest", 2, UploadOptions{}},
		{"lockstep", privacy.High, "root", 1, UploadOptions{}},
		{"widewindow", privacy.High, "root", 8, UploadOptions{MisleadFraction: 0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := streamDistributor(t, 7, func(c *Config) { c.StreamWindow = tc.window })
			data := payload(3000, 42)
			if _, err := d.UploadStream("alice", tc.password, "v.bin", bytes.NewReader(data), tc.pl, tc.opts); err != nil {
				t.Fatalf("UploadStream: %v", err)
			}
			if got := getFileTo(t, d, tc.password, "v.bin"); !bytes.Equal(got, data) {
				t.Fatal("GetFileTo mismatch")
			}
			// Chunk-granular interop.
			first, err := d.GetChunk("alice", tc.password, "v.bin", 0)
			if err != nil || !bytes.Equal(first, data[:len(first)]) {
				t.Fatalf("GetChunk(0): %v", err)
			}
		})
	}
}

// TestUploadStreamMatchesUpload pushes the same bytes through the
// whole-buffer and the streaming write paths and checks the results are
// indistinguishable to every read path.
func TestUploadStreamMatchesUpload(t *testing.T) {
	data := payload(2500, 77)
	opts := UploadOptions{MisleadFraction: 0.2}
	db := streamDistributor(t, 6, nil)
	ds := streamDistributor(t, 6, nil)
	bi, err := db.Upload("alice", "root", "m.bin", data, privacy.High, opts)
	if err != nil {
		t.Fatal(err)
	}
	si, err := ds.UploadStream("alice", "root", "m.bin", bytes.NewReader(data), privacy.High, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bi.Chunks != si.Chunks || bi.Raid != si.Raid || bi.PL != si.PL {
		t.Fatalf("FileInfo diverged: buffered %+v, streamed %+v", bi, si)
	}
	for _, d := range []*Distributor{db, ds} {
		if got, err := d.GetFile("alice", "root", "m.bin"); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("GetFile: %v", err)
		}
		if got, err := d.GetRange("alice", "root", "m.bin", 500, 700); err != nil || !bytes.Equal(got, data[500:1200]) {
			t.Fatalf("GetRange: %v", err)
		}
	}
}

// guardReader fails the test if the distributor reads from it — used to
// prove validation errors fire before any bytes are consumed.
type guardReader struct{ t *testing.T }

func (r guardReader) Read([]byte) (int, error) {
	r.t.Error("UploadStream read from the reader before validating")
	return 0, io.EOF
}

func TestUploadStreamValidationAndDuplicates(t *testing.T) {
	d := streamDistributor(t, 6, nil)
	if _, err := d.UploadStream("alice", "root", "bad.bin", guardReader{t}, privacy.High,
		UploadOptions{MisleadFraction: 1.5}); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad mislead fraction: %v", err)
	}
	if _, err := d.UploadStream("alice", "root", "", guardReader{t}, privacy.High, UploadOptions{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty filename: %v", err)
	}
	if _, err := d.UploadStream("alice", "wrong", "auth.bin", guardReader{t}, privacy.High, UploadOptions{}); err == nil {
		t.Fatal("bad password accepted")
	}
	data := payload(600, 3)
	if _, err := d.Upload("alice", "root", "dup.bin", data, privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.UploadStream("alice", "root", "dup.bin", guardReader{t}, privacy.High, UploadOptions{}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate over Upload: %v", err)
	}
	if _, err := d.UploadStream("alice", "root", "s.bin", bytes.NewReader(data), privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.UploadStream("alice", "root", "s.bin", guardReader{t}, privacy.High, UploadOptions{}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate over UploadStream: %v", err)
	}
}

// streamAborted asserts the post-abort state: no blobs anywhere, no file,
// no orphans, and the filename free for a clean retry.
func streamAborted(t *testing.T, d *Distributor, hooked []*provider.Hooked, name string, data []byte) {
	t.Helper()
	if n := fleetKeyCount(hooked); n != 0 {
		t.Fatalf("%d blobs survived the rollback", n)
	}
	if _, err := d.GetFile("alice", "root", name); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("aborted file visible: %v", err)
	}
	rep, err := d.AuditOrphans(false)
	if err != nil {
		t.Fatal(err)
	}
	for prov, keys := range rep.Orphans {
		if len(keys) > 0 {
			t.Fatalf("%d orphans on %s after abort", len(keys), prov)
		}
	}
	// The reservation must have been released: the same name uploads.
	if _, err := d.UploadStream("alice", "root", name, bytes.NewReader(data), privacy.High, UploadOptions{}); err != nil {
		t.Fatalf("retry after abort: %v", err)
	}
	if got := getFileTo(t, d, "root", name); !bytes.Equal(got, data) {
		t.Fatal("retry round-trip mismatch")
	}
}

func TestUploadStreamShipFailureRollsBack(t *testing.T) {
	// 8 stripes of 5 puts each; every put after the 7th fails, so the
	// failure lands mid-stream with earlier stripes already shipped.
	d, hooked := hookedStreamDistributor(t, 5, func(c *Config) { c.StreamWindow = 2 })
	failFleetPutsAfter(hooked, 7)
	data := payload(8*512, 11)
	_, err := d.UploadStream("alice", "root", "roll.bin", bytes.NewReader(data), privacy.High, UploadOptions{})
	if err == nil {
		t.Fatal("upload succeeded despite exhausted failover")
	}
	if m := d.Metrics(); m.RollbackDeletes == 0 {
		t.Fatal("no rollback deletes recorded")
	}
	clearFleetPutHooks(hooked)
	streamAborted(t, d, hooked, "roll.bin", data)
}

// brokenReader yields size good bytes, then an I/O error.
type brokenReader struct {
	data []byte
	off  int
}

func (r *brokenReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, errors.New("disk on fire")
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func TestUploadStreamReadErrorRollsBack(t *testing.T) {
	d, hooked := hookedStreamDistributor(t, 5, func(c *Config) { c.StreamWindow = 2 })
	data := payload(8*512, 13)
	_, err := d.UploadStream("alice", "root", "cut.bin", &brokenReader{data: data[:3*512]}, privacy.High, UploadOptions{})
	if err == nil {
		t.Fatal("upload succeeded despite reader failure")
	}
	streamAborted(t, d, hooked, "cut.bin", data)
}

// failingWriter accepts limit bytes then refuses.
type failingWriter struct {
	limit   int
	written int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		return 0, errors.New("sink full")
	}
	w.written += len(p)
	return len(p), nil
}

func TestGetFileToWriterError(t *testing.T) {
	d := streamDistributor(t, 6, func(c *Config) { c.StreamWindow = 3 })
	data := payload(6*512, 21)
	if _, err := d.UploadStream("alice", "root", "w.bin", bytes.NewReader(data), privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	w := &failingWriter{limit: 512}
	n, err := d.GetFileTo(w, "alice", "root", "w.bin")
	if err == nil {
		t.Fatal("writer failure not reported")
	}
	if n != int64(w.written) || n >= int64(len(data)) {
		t.Fatalf("written %d (writer saw %d) of %d", n, w.written, len(data))
	}
}

func TestGetFileToDegradedProvider(t *testing.T) {
	d, hooked := hookedStreamDistributor(t, 5, func(c *Config) { c.StreamWindow = 2 })
	data := payload(4*512, 31)
	if _, err := d.UploadStream("alice", "root", "deg.bin", bytes.NewReader(data), privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	g := attachGetLog(hooked)
	g.setDark(0, true)
	if got := getFileTo(t, d, "root", "deg.bin"); !bytes.Equal(got, data) {
		t.Fatal("degraded GetFileTo mismatch")
	}
	if m := d.Metrics(); m.Reconstructions == 0 {
		t.Fatal("dark provider served without reconstruction")
	}
}

// TestGetFileToCacheInterplay: streamed reads consume the cache but never
// populate it — a whole-file pass must not evict the point-read working
// set, yet cached chunks should spare provider round-trips.
func TestGetFileToCacheInterplay(t *testing.T) {
	d, hooked := hookedStreamDistributor(t, 5, func(c *Config) {
		c.StreamWindow = 2
		c.CacheBytes = 1 << 20
	})
	data := payload(4*512, 41)
	for _, name := range []string{"hot.bin", "cold.bin"} {
		if _, err := d.UploadStream("alice", "root", name, bytes.NewReader(data), privacy.High, UploadOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm hot.bin through the buffered path (which does fill the cache)…
	if _, err := d.GetFile("alice", "root", "hot.bin"); err != nil {
		t.Fatal(err)
	}
	// …and pass cold.bin through the streaming path, which must not.
	if got := getFileTo(t, d, "root", "cold.bin"); !bytes.Equal(got, data) {
		t.Fatal("cold.bin mismatch")
	}
	g := attachGetLog(hooked)
	for i := range hooked {
		g.setDark(i, true)
	}
	// Every provider dark: hot.bin streams fully from cache…
	if got := getFileTo(t, d, "root", "hot.bin"); !bytes.Equal(got, data) {
		t.Fatal("cached stream mismatch")
	}
	// …while cold.bin was never cached by its streamed read, so the same
	// request now has nowhere to go.
	if _, err := d.GetFileTo(io.Discard, "alice", "root", "cold.bin"); err == nil {
		t.Fatal("cold.bin served with all providers dark — streamed read populated the cache?")
	}
}

// fileStripes returns, for each stripe of the file in serial order, the
// set of blob keys belonging to that stripe (members, mirrors, parity)
// and the fleet index hosting each data member.
func fileStripes(t *testing.T, d *Distributor, name string) (vids []map[string]bool, memberProvs [][]int) {
	t.Helper()
	d.mu.RLock()
	defer d.mu.RUnlock()
	fe := d.clients["alice"].Files[name]
	if fe == nil {
		t.Fatalf("no file %s", name)
	}
	seen := make(map[int]bool)
	for _, idx := range fe.ChunkIdx {
		sid := d.chunks[idx].StripeID
		if seen[sid] {
			continue
		}
		seen[sid] = true
		st := &d.stripes[sid]
		set := make(map[string]bool)
		var provs []int
		for _, ci := range st.Members {
			ce := &d.chunks[ci]
			set[ce.VirtualID] = true
			provs = append(provs, ce.CPIndex)
			for _, m := range ce.Mirrors {
				set[m.VirtualID] = true
			}
		}
		for _, p := range st.Parity {
			set[p.VirtualID] = true
		}
		vids = append(vids, set)
		memberProvs = append(memberProvs, provs)
	}
	return vids, memberProvs
}

func assertKeysWithin(t *testing.T, keys []string, allowed map[string]bool, label string) {
	t.Helper()
	for _, k := range keys {
		if !allowed[k] {
			t.Fatalf("%s: fetched shard %s outside the touched stripe", label, k)
		}
	}
}

// TestGetRangeStripeSelective pins the satellite guarantee: a range read
// only ever touches shards of the stripes its span overlaps — healthy
// reads fetch exactly the spanned chunks, and a degraded stripe recruits
// only its own siblings for reconstruction.
func TestGetRangeStripeSelective(t *testing.T) {
	// 3 stripes × 4 chunks × 128 bytes, RAID-5 on 5 providers.
	d, hooked := hookedStreamDistributor(t, 5, nil)
	data := payload(3*512, 51)
	if _, err := d.Upload("alice", "root", "r.bin", data, privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	vids, memberProvs := fileStripes(t, d, "r.bin")
	if len(vids) != 3 {
		t.Fatalf("expected 3 stripes, got %d", len(vids))
	}
	g := attachGetLog(hooked)

	healthy := []struct {
		name        string
		off, length int
		gets        int
		stripes     []int
	}{
		{"exact-chunk", 128, 128, 1, []int{0}},
		{"exact-stripe", 512, 512, 4, []int{1}},
		{"cross-stripe", 384, 256, 2, []int{0, 1}},
		{"interior", 650, 100, 1, []int{1}},
	}
	for _, tc := range healthy {
		g.reset()
		got, err := d.GetRange("alice", "root", "r.bin", tc.off, tc.length)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(got, data[tc.off:tc.off+tc.length]) {
			t.Fatalf("%s: wrong bytes", tc.name)
		}
		keys := g.snapshot()
		if len(keys) != tc.gets {
			t.Fatalf("%s: %d provider gets, want %d", tc.name, len(keys), tc.gets)
		}
		allowed := make(map[string]bool)
		for _, s := range tc.stripes {
			for k := range vids[s] {
				allowed[k] = true
			}
		}
		assertKeysWithin(t, keys, allowed, tc.name)
	}

	// Darken the provider of stripe 1's second member and read exactly
	// stripe 1: reconstruction must recruit only stripe-1 siblings.
	before := d.Metrics().Reconstructions
	g.setDark(memberProvs[1][1], true)
	g.reset()
	got, err := d.GetRange("alice", "root", "r.bin", 512, 512)
	if err != nil {
		t.Fatalf("degraded stripe read: %v", err)
	}
	if !bytes.Equal(got, data[512:1024]) {
		t.Fatal("degraded stripe read: wrong bytes")
	}
	assertKeysWithin(t, g.snapshot(), vids[1], "degraded")
	if d.Metrics().Reconstructions == before {
		t.Fatal("degraded read did not reconstruct")
	}
}

func TestGetRangeStripeSelectiveRAID6(t *testing.T) {
	// RAID-6 on 6 providers: width 4, 2 parity — a stripe survives two
	// dark members, still recruiting only its own shards.
	d, hooked := hookedStreamDistributor(t, 6, nil)
	data := payload(3*512, 61)
	if _, err := d.Upload("alice", "root", "r6.bin", data, privacy.High, UploadOptions{Assurance: raid.RAID6}); err != nil {
		t.Fatal(err)
	}
	vids, memberProvs := fileStripes(t, d, "r6.bin")
	g := attachGetLog(hooked)
	if memberProvs[1][0] == memberProvs[1][1] {
		t.Fatalf("stripe 1 members share provider %d; placement regression", memberProvs[1][0])
	}
	g.setDark(memberProvs[1][0], true)
	g.setDark(memberProvs[1][1], true)
	got, err := d.GetRange("alice", "root", "r6.bin", 512, 512)
	if err != nil {
		t.Fatalf("double-degraded stripe read: %v", err)
	}
	if !bytes.Equal(got, data[512:1024]) {
		t.Fatal("double-degraded stripe read: wrong bytes")
	}
	assertKeysWithin(t, g.snapshot(), vids[1], "raid6-degraded")
}

// ---- Bounded-memory regression (satellite: make memcheck) ----

// patternByte is a cheap deterministic byte stream indexed by offset, so
// GiB-scale transfers need no materialized expected buffer.
func patternByte(off int64) byte {
	x := uint64(off)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	return byte(x >> 56)
}

// patternReader yields size bytes of patternByte without allocating.
type patternReader struct{ size, off int64 }

func (r *patternReader) Read(p []byte) (int, error) {
	if r.off >= r.size {
		return 0, io.EOF
	}
	n := len(p)
	if rem := r.size - r.off; int64(n) > rem {
		n = int(rem)
	}
	for i := 0; i < n; i++ {
		p[i] = patternByte(r.off + int64(i))
	}
	r.off += int64(n)
	return n, nil
}

// patternWriter verifies a byte stream against patternByte as it lands.
type patternWriter struct {
	off int64
	bad int64 // offset of the first mismatch, -1 if none
}

func (w *patternWriter) Write(p []byte) (int, error) {
	for i, b := range p {
		if b != patternByte(w.off+int64(i)) {
			if w.bad < 0 {
				w.bad = w.off + int64(i)
			}
			return i, fmt.Errorf("byte %d corrupt", w.off+int64(i))
		}
	}
	w.off += int64(len(p))
	return len(p), nil
}

// diskDistributor builds a distributor over disk providers so provider
// storage lives outside the Go heap and HeapAlloc measures only the
// streaming pipeline.
func diskDistributor(t *testing.T, n, window, chunkSize int) *Distributor {
	t.Helper()
	root := t.TempDir()
	f, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p, err := provider.NewDiskProvider(provider.Info{
			Name: fmt.Sprintf("D%d", i), PL: privacy.High, CL: 1,
		}, filepath.Join(root, fmt.Sprintf("p%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	d, err := New(Config{
		Fleet:        f,
		StreamWindow: window,
		ChunkPolicy: privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
			privacy.Public: chunkSize, privacy.Low: chunkSize,
			privacy.Moderate: chunkSize, privacy.High: chunkSize,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "guest", privacy.Public); err != nil {
		t.Fatal(err)
	}
	return d
}

// heapGrowth runs fn while sampling HeapAlloc and returns the peak growth
// over the post-GC baseline.
func heapGrowth(fn func()) uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc
	var peak atomic.Uint64
	peak.Store(baseline)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		var s runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&s)
				for {
					cur := peak.Load()
					if s.HeapAlloc <= cur || peak.CompareAndSwap(cur, s.HeapAlloc) {
						break
					}
				}
			}
		}
	}()
	fn()
	close(stop)
	wg.Wait()
	runtime.ReadMemStats(&ms)
	for {
		cur := peak.Load()
		if ms.HeapAlloc <= cur || peak.CompareAndSwap(cur, ms.HeapAlloc) {
			break
		}
	}
	return peak.Load() - baseline
}

// streamMemoryCheck pushes fileBytes through UploadStream and GetFileTo
// on a disk-backed fleet and asserts both directions stay under budget —
// window-bounded, not file-bounded.
func streamMemoryCheck(t *testing.T, fileBytes int64, chunkSize, window int, budget uint64) {
	t.Helper()
	// A tighter GC target makes HeapAlloc track live memory instead of
	// GOGC-paced garbage, so the bound measures the pipeline, not pacing.
	defer debug.SetGCPercent(debug.SetGCPercent(50))
	d := diskDistributor(t, 6, window, chunkSize)

	var info FileInfo
	upGrowth := heapGrowth(func() {
		var err error
		info, err = d.UploadStream("alice", "guest", "big.bin", &patternReader{size: fileBytes}, privacy.Public, UploadOptions{})
		if err != nil {
			t.Fatalf("UploadStream: %v", err)
		}
	})
	if int64(info.Bytes) != fileBytes {
		t.Fatalf("uploaded %d of %d bytes", info.Bytes, fileBytes)
	}
	var written int64
	downGrowth := heapGrowth(func() {
		w := &patternWriter{bad: -1}
		var err error
		written, err = d.GetFileTo(w, "alice", "guest", "big.bin")
		if err != nil {
			t.Fatalf("GetFileTo: %v (first bad byte %d)", err, w.bad)
		}
	})
	if written != fileBytes {
		t.Fatalf("read back %d of %d bytes", written, fileBytes)
	}
	windowBytes := uint64(window) * 4 * uint64(chunkSize) // width 4 data shards per stripe
	t.Logf("file %d MiB, window %d MiB: upload growth %d MiB, download growth %d MiB (budget %d MiB)",
		fileBytes>>20, windowBytes>>20, upGrowth>>20, downGrowth>>20, budget>>20)
	if upGrowth > budget {
		t.Fatalf("upload heap growth %d exceeds budget %d for a %d-byte file", upGrowth, budget, fileBytes)
	}
	if downGrowth > budget {
		t.Fatalf("download heap growth %d exceeds budget %d for a %d-byte file", downGrowth, budget, fileBytes)
	}
}

// TestStreamBoundedMemorySmall is the always-on variant: 32 MiB through a
// 2-stripe window (512 KiB of payload in flight). The 16 MiB budget is
// half the file — loose enough for GC noise, tight enough that buffering
// the whole file would trip it.
func TestStreamBoundedMemorySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("disk-backed memory check skipped in -short")
	}
	streamMemoryCheck(t, 32<<20, 64<<10, 2, 16<<20)
}

// TestStreamBoundedMemoryLarge is the `make memcheck` gate: 256 MiB — a
// 128× multiple of the 2 MiB in-flight window — must fit in a 48 MiB
// heap-growth budget. Any O(file) buffer on the path blows it by 5×.
func TestStreamBoundedMemoryLarge(t *testing.T) {
	if os.Getenv("MEMCHECK") == "" {
		t.Skip("set MEMCHECK=1 (make memcheck) to run the 256 MiB sweep")
	}
	streamMemoryCheck(t, 256<<20, 256<<10, 2, 48<<20)
}
