package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/privacy"
)

func TestPRFAllocatorUnique(t *testing.T) {
	a := NewPRFAllocator([]byte("secret"))
	seen := map[string]bool{}
	for i := 0; i < 10_000; i++ {
		id := a.Next()
		if seen[id] {
			t.Fatalf("duplicate id %s at %d", id, i)
		}
		if len(id) != 16 {
			t.Fatalf("id length = %d", len(id))
		}
		seen[id] = true
	}
}

func TestPRFAllocatorDeterministicPerSecret(t *testing.T) {
	a := NewPRFAllocator([]byte("k1"))
	b := NewPRFAllocator([]byte("k1"))
	c := NewPRFAllocator([]byte("k2"))
	ida, idb, idc := a.Next(), b.Next(), c.Next()
	if ida != idb {
		t.Fatal("same secret gave different sequences")
	}
	if ida == idc {
		t.Fatal("different secrets gave the same id")
	}
}

func TestPRFAllocatorCopiesSecret(t *testing.T) {
	secret := []byte("mutable")
	a := NewPRFAllocator(secret)
	first := a.Next()
	secret[0] = 'X'
	b := NewPRFAllocator([]byte("mutable"))
	if b.Next() != first {
		t.Fatal("allocator aliased caller's secret buffer")
	}
}

func TestScriptedAllocator(t *testing.T) {
	s := NewScriptedAllocator([]string{"a", "b"})
	if s.Next() != "a" || s.Next() != "b" {
		t.Fatal("scripted sequence wrong")
	}
	// Falls back to PRF afterwards, still unique.
	x, y := s.Next(), s.Next()
	if x == y || x == "a" || x == "b" {
		t.Fatalf("fallback ids: %s, %s", x, y)
	}
}

// Property: upload → get round-trips for arbitrary sizes, levels and raid
// settings.
func TestUploadGetRoundTripProperty(t *testing.T) {
	d := testDistributor(t, 7)
	i := 0
	f := func(sz uint16, lvl uint8, raid6 bool, misl uint8) bool {
		i++
		size := int(sz) % 40_000
		level := privacy.Level(lvl % 4)
		data := payload(size, int64(i))
		opts := UploadOptions{MisleadFraction: float64(misl%50) / 100}
		if raid6 {
			opts.Assurance = 6
		}
		name := string(rune('A'+i%26)) + string(rune('0'+i/26))
		if _, err := d.Upload("alice", "root", name, data, level, opts); err != nil {
			return false
		}
		got, err := d.GetFile("alice", "root", name)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any upload, every chunk of every stripe sits on a
// provider whose PL >= the chunk's PL, and per-provider counts equal the
// table counts.
func TestPlacementInvariantProperty(t *testing.T) {
	d := testDistributor(t, 6)
	i := 100
	f := func(sz uint16, lvl uint8) bool {
		i++
		level := privacy.Level(lvl % 4)
		name := string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i/260))
		if _, err := d.Upload("alice", "root", name, payload(int(sz)%30_000, int64(i)), level, UploadOptions{}); err != nil {
			return false
		}
		for _, r := range d.ChunkTable() {
			p, err := d.Providers().At(r.CPIndex)
			if err != nil || p.Info().PL < r.PL {
				return false
			}
		}
		// Provider key counts match the distributor's accounting.
		for idx, p := range d.Providers().All() {
			if p.Len() != d.Stats().PerProvider[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
