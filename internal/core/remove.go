package core

import (
	"errors"
	"fmt"

	"repro/internal/provider"
	"repro/internal/raid"
)

// RemoveFile deletes a file: every data chunk and parity shard is removed
// from its provider and the tables are updated — the paper's
// remove_file(client name, password, filename).
//
// Plan (under d.mu): authenticate and collect every blob the file owns.
// Ship (no lock): fan the deletes out; a failed delete aborts with the
// tables untouched ("remove incomplete" — the blobs still referenced are
// still served, the already-deleted ones surface as unavailable until
// the remove is retried). Commit (under d.mu): re-check the file's
// generation and drop the rows and counts atomically.
func (d *Distributor) RemoveFile(client, password, filename string) error {
	// ---- Plan ----
	d.mu.Lock()
	c, _, err := d.auth(client, password)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	fe, ok := c.Files[filename]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	if _, err := d.authorize(client, password, fe.PL); err != nil {
		d.mu.Unlock()
		return err
	}
	fileGen := fe.Gen
	seenStripe := map[int]bool{}
	var dels []storedShard
	for _, idx := range fe.ChunkIdx {
		if idx < 0 {
			continue
		}
		entry := &d.chunks[idx]
		dels = append(dels, storedShard{entry.CPIndex, entry.VirtualID})
		for _, m := range entry.Mirrors {
			dels = append(dels, storedShard{m.CPIndex, m.VirtualID})
		}
		if entry.SnapVID != "" && entry.SPIndex >= 0 {
			dels = append(dels, storedShard{entry.SPIndex, entry.SnapVID})
		}
		if !seenStripe[entry.StripeID] {
			seenStripe[entry.StripeID] = true
			st := &d.stripes[entry.StripeID]
			for _, ps := range st.Parity {
				dels = append(dels, storedShard{ps.CPIndex, ps.VirtualID})
			}
		}
	}
	d.mu.Unlock()

	// ---- Ship ----
	jobs := make([]func() error, len(dels))
	for i, s := range dels {
		jobs[i] = d.deleteJob(s.provIdx, s.vid)
	}
	if err := d.fanOut(jobs); err != nil {
		return fmt.Errorf("core: remove incomplete: %w", err)
	}

	// ---- Commit ----
	d.mu.Lock()
	defer d.mu.Unlock()
	feNow, ok := c.Files[filename]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	if feNow != fe || feNow.Gen != fileGen {
		return fmt.Errorf("%w: %s changed during removal", ErrConflict, filename)
	}
	rec := &walRecord{
		Op: "remove_file", Client: client, Filename: filename,
		FileGen: fe.Gen + 1, ClientGen: c.Gen + 1, Gen: d.gen + 1,
	}
	if err := d.logAppendLocked(rec); err != nil {
		// Tables untouched: same "remove incomplete" semantics as a failed
		// delete — the already-deleted blobs surface as unavailable until
		// the remove is retried.
		return fmt.Errorf("core: remove incomplete: %w", err)
	}
	remaining := 0
	for _, idx := range fe.ChunkIdx {
		if idx < 0 {
			continue
		}
		remaining++
		entry := &d.chunks[idx]
		d.provCount[entry.CPIndex]--
		for _, m := range entry.Mirrors {
			d.provCount[m.CPIndex]--
		}
		if entry.SnapVID != "" && entry.SPIndex >= 0 {
			d.provCount[entry.SPIndex]--
		}
		entry.CPIndex = -1
		entry.SnapVID = ""
		entry.SPIndex = -1
		entry.Mirrors = nil
	}
	for sid := range seenStripe {
		st := &d.stripes[sid]
		for _, ps := range st.Parity {
			d.provCount[ps.CPIndex]--
		}
		st.Parity = nil
		st.Members = nil
	}
	c.Count -= remaining
	delete(c.Files, filename)
	for serial := range fe.ChunkIdx {
		d.cache.remove(cacheKey{fid: fe.FID, serial: serial, gen: fileGen})
	}
	fe.Gen++
	c.Gen++
	d.gen++
	d.counters.removes.Add(1)
	d.maybeCheckpointLocked()
	return nil
}

// RemoveChunk deletes one chunk — the paper's remove_chunk(client name,
// password, filename, sl no.). The chunk's stripe parity is re-encoded
// over the surviving members so RAID recovery keeps working for them.
//
// Plan (under d.mu): resolve the chunk, snapshot fetch plans for the
// survivors while the full stripe is still consistent, and stage fresh
// virtual ids for the replacement parity. Ship (no lock): fetch the
// survivors, write the new parity, then delete the chunk's blobs and the
// stale parity. Commit (under d.mu): generation check, then tombstone
// the row and swap the stripe's membership and parity atomically.
func (d *Distributor) RemoveChunk(client, password, filename string, serial int) error {
	// ---- Plan ----
	d.mu.Lock()
	entry, err := d.lookupChunk(client, password, filename, serial)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	c := d.clients[client]
	fe := c.Files[filename]
	fileGen := fe.Gen
	pl := entry.PL
	st := &d.stripes[entry.StripeID]
	stripeID := entry.StripeID
	level := st.Level
	oldParity := append([]parityShard(nil), st.Parity...)

	type survivor struct {
		chunkIdx int
		plan     fetchPlan
		provIdx  int
		name     string
		serial   int
	}
	var survivors []survivor
	for _, cidx := range st.Members {
		m := &d.chunks[cidx]
		if m.VirtualID == entry.VirtualID {
			continue
		}
		survivors = append(survivors, survivor{
			chunkIdx: cidx, plan: d.planFetch(m), provIdx: m.CPIndex,
			name: m.Filename, serial: m.Serial,
		})
	}

	dels := []storedShard{{entry.CPIndex, entry.VirtualID}}
	for _, m := range entry.Mirrors {
		dels = append(dels, storedShard{m.CPIndex, m.VirtualID})
	}
	if entry.SnapVID != "" && entry.SPIndex >= 0 {
		dels = append(dels, storedShard{entry.SPIndex, entry.SnapVID})
	}
	for _, ps := range oldParity {
		dels = append(dels, storedShard{ps.CPIndex, ps.VirtualID})
	}

	// Stage replacement parity on freshly placed providers.
	t := d.newTicketLocked()
	reencode := len(survivors) > 0 && level.ParityShards() > 0
	var newParity []parityShard
	if reencode {
		exclude := map[int]bool{}
		for _, s := range survivors {
			exclude[s.provIdx] = true
		}
		for pi := 0; pi < level.ParityShards(); pi++ {
			provIdx, err := d.placeParityExcluding(pl, exclude)
			if err != nil {
				d.releaseTicketLocked(t)
				d.mu.Unlock()
				return err
			}
			exclude[provIdx] = true
			vid := d.vids.Next()
			newParity = append(newParity, parityShard{VirtualID: vid, CPIndex: provIdx})
			d.stageLocked(t, provIdx, vid)
		}
	}
	d.mu.Unlock()

	// ---- Ship ----
	var stored []storedShard
	abort := func(err error) error {
		d.rollbackStored(stored)
		d.releaseTicket(t)
		return err
	}

	// Gather surviving member payloads (reconstructing any unreachable
	// one) while the full stripe still exists on the providers.
	shardLen := 1
	sibPayloads := make([][]byte, len(survivors))
	if reencode {
		jobs := make([]func() error, len(survivors))
		for i := range survivors {
			i := i
			jobs[i] = func() error {
				data, err := d.fetchPayloadPlan(&survivors[i].plan)
				if err != nil {
					return fmt.Errorf("core: cannot preserve stripe member %s#%d during removal: %w", survivors[i].name, survivors[i].serial, err)
				}
				sibPayloads[i] = data
				return nil
			}
		}
		if err := d.fanOut(jobs); err != nil {
			return abort(err)
		}
		for _, p := range sibPayloads {
			if len(p) > shardLen {
				shardLen = len(p)
			}
		}
		padded := make([][]byte, len(sibPayloads))
		for i, p := range sibPayloads {
			pad := make([]byte, shardLen)
			copy(pad, p)
			padded[i] = pad
		}
		stripe, err := raid.Encode(level, padded)
		if err != nil {
			return abort(fmt.Errorf("core: re-encoding stripe after removal: %w", err))
		}
		for pi := range newParity {
			pex := map[int]bool{}
			for _, s := range survivors {
				pex[s.provIdx] = true
			}
			for pj := range newParity {
				if pj != pi {
					pex[newParity[pj].CPIndex] = true
				}
			}
			pProv, pVID, err := d.rehomePut(pl, newParity[pi].CPIndex, newParity[pi].VirtualID, stripe.Shards[len(survivors)+pi], pex, t)
			if err != nil {
				return abort(fmt.Errorf("core: writing re-encoded parity: %w", err))
			}
			newParity[pi] = parityShard{VirtualID: pVID, CPIndex: pProv}
			stored = append(stored, storedShard{pProv, pVID})
		}
	}

	// Delete the chunk, its mirrors, its snapshot, and stale parity.
	jobs := make([]func() error, len(dels))
	for i, s := range dels {
		jobs[i] = d.deleteJob(s.provIdx, s.vid)
	}
	if err := d.fanOut(jobs); err != nil {
		return abort(fmt.Errorf("core: remove incomplete: %w", err))
	}

	// ---- Commit ----
	d.mu.Lock()
	feNow, ok := c.Files[filename]
	if !ok || feNow != fe || feNow.Gen != fileGen {
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		d.rollbackStored(stored)
		return fmt.Errorf("%w: %s#%d changed during removal", ErrConflict, filename, serial)
	}
	newMembers := make([]int, 0, len(survivors))
	for _, s := range survivors {
		newMembers = append(newMembers, s.chunkIdx)
	}
	rec := &walRecord{
		Op: "remove_chunk", Client: client, Filename: filename, Serial: serial,
		StripeID: stripeID, Members: newMembers, ShardLen: shardLen, Parity: newParity,
		FileGen: fe.Gen + 1, Gen: d.gen + 1,
	}
	if err := d.logAppendLocked(rec); err != nil {
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		d.rollbackStored(stored)
		return fmt.Errorf("core: remove incomplete: %w", err)
	}
	e := &d.chunks[fe.ChunkIdx[serial]]
	d.provCount[e.CPIndex]--
	for _, m := range e.Mirrors {
		d.provCount[m.CPIndex]--
	}
	if e.SnapVID != "" && e.SPIndex >= 0 {
		d.provCount[e.SPIndex]--
	}
	for _, ps := range oldParity {
		d.provCount[ps.CPIndex]--
	}
	d.commitTicketLocked(t)
	stNow := &d.stripes[stripeID]
	stNow.Members = newMembers
	stNow.ShardLen = shardLen
	stNow.Parity = newParity
	e.CPIndex = -1
	e.SPIndex = -1
	e.SnapVID = ""
	e.Mirrors = nil
	fe.ChunkIdx[serial] = -1
	c.Count--
	d.cache.remove(cacheKey{fid: fe.FID, serial: serial, gen: fileGen})
	fe.Gen++
	d.gen++
	d.counters.removes.Add(1)
	d.maybeCheckpointLocked()
	d.mu.Unlock()
	return nil
}

// deleteJob builds a fan-out job removing one key from one provider;
// missing keys are tolerated so removals are idempotent. The outcome
// feeds health accounting (a not-found reply counts as a success there
// too — the provider answered).
func (d *Distributor) deleteJob(provIdx int, vid string) func() error {
	return func() error {
		err := d.providerOp(provIdx, func(p provider.Provider) error {
			return p.Delete(vid)
		})
		if err != nil && !errors.Is(err, provider.ErrNotFound) {
			return err
		}
		return nil
	}
}
