package core

import (
	"errors"
	"fmt"

	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
)

// RemoveFile deletes a file: every data chunk and parity shard is removed
// from its provider and the tables are updated — the paper's
// remove_file(client name, password, filename).
func (d *Distributor) RemoveFile(client, password, filename string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, _, err := d.auth(client, password)
	if err != nil {
		return err
	}
	fe, ok := c.Files[filename]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	if _, err := d.authorize(client, password, fe.PL); err != nil {
		return err
	}

	seenStripe := map[int]bool{}
	var jobs []func() error
	remaining := 0
	for _, idx := range fe.ChunkIdx {
		if idx < 0 {
			continue
		}
		remaining++
		entry := &d.chunks[idx]
		jobs = append(jobs, d.deleteJob(entry.CPIndex, entry.VirtualID))
		for _, m := range entry.Mirrors {
			jobs = append(jobs, d.deleteJob(m.CPIndex, m.VirtualID))
		}
		if entry.SnapVID != "" && entry.SPIndex >= 0 {
			jobs = append(jobs, d.deleteJob(entry.SPIndex, entry.SnapVID))
		}
		if !seenStripe[entry.StripeID] {
			seenStripe[entry.StripeID] = true
			st := &d.stripes[entry.StripeID]
			for _, ps := range st.Parity {
				jobs = append(jobs, d.deleteJob(ps.CPIndex, ps.VirtualID))
			}
		}
	}
	if err := d.fanOut(jobs); err != nil {
		return fmt.Errorf("core: remove incomplete: %w", err)
	}

	// Update accounting and tables.
	for _, idx := range fe.ChunkIdx {
		if idx < 0 {
			continue
		}
		entry := &d.chunks[idx]
		d.provCount[entry.CPIndex]--
		for _, m := range entry.Mirrors {
			d.provCount[m.CPIndex]--
		}
		if entry.SnapVID != "" && entry.SPIndex >= 0 {
			d.provCount[entry.SPIndex]--
		}
		entry.CPIndex = -1
		entry.SnapVID = ""
		entry.SPIndex = -1
		entry.Mirrors = nil
	}
	for sid := range seenStripe {
		st := &d.stripes[sid]
		for _, ps := range st.Parity {
			d.provCount[ps.CPIndex]--
		}
		st.Parity = nil
		st.Members = nil
	}
	c.Count -= remaining
	delete(c.Files, filename)
	d.counters.removes.Add(1)
	return nil
}

// RemoveChunk deletes one chunk — the paper's remove_chunk(client name,
// password, filename, sl no.). The chunk's stripe parity is re-encoded
// over the surviving members so RAID recovery keeps working for them.
func (d *Distributor) RemoveChunk(client, password, filename string, serial int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	entry, err := d.lookupChunk(client, password, filename, serial)
	if err != nil {
		return err
	}
	c := d.clients[client]
	fe := c.Files[filename]

	st := &d.stripes[entry.StripeID]

	// Gather surviving member payloads (reconstruct any unreachable one
	// while the full stripe still exists).
	type survivor struct {
		chunkIdx int
		payload  []byte
	}
	var survivors []survivor
	for _, cidx := range st.Members {
		m := &d.chunks[cidx]
		if m.VirtualID == entry.VirtualID {
			continue
		}
		payload, err := d.fetchPayloadLocked(m)
		if err != nil {
			return fmt.Errorf("core: cannot preserve stripe member %s#%d during removal: %w", m.Filename, m.Serial, err)
		}
		survivors = append(survivors, survivor{chunkIdx: cidx, payload: payload})
	}

	// Delete the chunk, its mirrors, its snapshot, and stale parity.
	var jobs []func() error
	jobs = append(jobs, d.deleteJob(entry.CPIndex, entry.VirtualID))
	for _, m := range entry.Mirrors {
		jobs = append(jobs, d.deleteJob(m.CPIndex, m.VirtualID))
	}
	if entry.SnapVID != "" && entry.SPIndex >= 0 {
		jobs = append(jobs, d.deleteJob(entry.SPIndex, entry.SnapVID))
	}
	oldParity := st.Parity
	for _, ps := range oldParity {
		jobs = append(jobs, d.deleteJob(ps.CPIndex, ps.VirtualID))
	}
	if err := d.fanOut(jobs); err != nil {
		return fmt.Errorf("core: remove incomplete: %w", err)
	}
	d.provCount[entry.CPIndex]--
	for _, m := range entry.Mirrors {
		d.provCount[m.CPIndex]--
	}
	if entry.SnapVID != "" && entry.SPIndex >= 0 {
		d.provCount[entry.SPIndex]--
	}
	for _, ps := range oldParity {
		d.provCount[ps.CPIndex]--
	}
	st.Parity = nil

	// Rebuild stripe membership and parity over the survivors.
	newMembers := make([]int, 0, len(survivors))
	shardLen := 1
	for _, s := range survivors {
		newMembers = append(newMembers, s.chunkIdx)
		if len(s.payload) > shardLen {
			shardLen = len(s.payload)
		}
	}
	st.Members = newMembers
	st.ShardLen = shardLen
	if len(survivors) > 0 && st.Level.ParityShards() > 0 {
		padded := make([][]byte, len(survivors))
		for i, s := range survivors {
			pad := make([]byte, shardLen)
			copy(pad, s.payload)
			padded[i] = pad
		}
		stripe, err := raid.Encode(st.Level, padded)
		if err != nil {
			return fmt.Errorf("core: re-encoding stripe after removal: %w", err)
		}
		exclude := map[int]bool{}
		for _, s := range survivors {
			exclude[d.chunks[s.chunkIdx].CPIndex] = true
		}
		for pi := 0; pi < st.Level.ParityShards(); pi++ {
			provIdx, err := d.placeParityExcluding(entry.PL, exclude)
			if err != nil {
				return err
			}
			exclude[provIdx] = true
			vid := d.vids.Next()
			shard := stripe.Shards[len(survivors)+pi]
			if err := d.providerOp(provIdx, func(p provider.Provider) error {
				return p.Put(vid, shard)
			}); err != nil {
				return fmt.Errorf("core: writing re-encoded parity: %w", err)
			}
			st.Parity = append(st.Parity, parityShard{VirtualID: vid, CPIndex: provIdx})
			d.provCount[provIdx]++
		}
	}

	// Tombstone the chunk.
	entry.CPIndex = -1
	entry.SPIndex = -1
	entry.SnapVID = ""
	entry.Mirrors = nil
	fe.ChunkIdx[serial] = -1
	c.Count--
	d.counters.removes.Add(1)
	return nil
}

// placeParityExcluding picks one healthy eligible provider not in the
// exclusion set, preferring lower cost then lower load. Callers hold d.mu.
func (d *Distributor) placeParityExcluding(pl privacy.Level, exclude map[int]bool) (int, error) {
	best := -1
	for _, idx := range d.healthyEligible(pl) {
		if exclude[idx] {
			continue
		}
		if best == -1 {
			best = idx
			continue
		}
		pi, _ := d.fleet.At(idx)
		pb, _ := d.fleet.At(best)
		if pi.Info().CL < pb.Info().CL ||
			(pi.Info().CL == pb.Info().CL && d.provCount[idx] < d.provCount[best]) {
			best = idx
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("%w: no provider for re-encoded parity", ErrPlacement)
	}
	return best, nil
}

// deleteJob builds a fan-out job removing one key from one provider;
// missing keys are tolerated so removals are idempotent. The outcome
// feeds health accounting (a not-found reply counts as a success there
// too — the provider answered).
func (d *Distributor) deleteJob(provIdx int, vid string) func() error {
	return func() error {
		err := d.providerOp(provIdx, func(p provider.Provider) error {
			return p.Delete(vid)
		})
		if err != nil && !errors.Is(err, provider.ErrNotFound) {
			return err
		}
		return nil
	}
}
