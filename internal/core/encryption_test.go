package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/privacy"
)

var encKey = bytes.Repeat([]byte{0x5C}, 32)

func TestEncryptedUploadRoundTrip(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(80_000, 100)
	if _, err := d.Upload("alice", "root", "f", data, privacy.High, UploadOptions{EncryptKey: encKey}); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetFile("alice", "root", "f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	// Providers never see plaintext.
	probe := data[:64]
	for _, p := range d.Providers().All() {
		for _, blob := range p.Dump() {
			if bytes.Contains(blob, probe) {
				t.Fatalf("plaintext fragment on provider %s", p.Info().Name)
			}
		}
	}
}

func TestEncryptedUploadValidation(t *testing.T) {
	d := testDistributor(t, 4)
	if _, err := d.Upload("alice", "root", "f", []byte("x"), privacy.Low, UploadOptions{EncryptKey: []byte("short")}); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad key: %v", err)
	}
	if _, err := d.Upload("alice", "root", "f", []byte("x"), privacy.Low, UploadOptions{EncryptKey: encKey, MisleadFraction: 0.2}); !errors.Is(err, ErrConfig) {
		t.Fatalf("enc+mislead: %v", err)
	}
	if _, err := d.Upload("alice", "root", "f", []byte("x"), privacy.Low, UploadOptions{EncryptKey: encKey, MisleadLines: [][]byte{[]byte("d")}}); !errors.Is(err, ErrConfig) {
		t.Fatalf("enc+misleadlines: %v", err)
	}
}

func TestEncryptedChunksSurviveOutage(t *testing.T) {
	// Parity is computed over ciphertext; reconstruction must still yield
	// decryptable chunks.
	d := testDistributor(t, 6)
	data := payload(60_000, 101)
	if _, err := d.Upload("alice", "root", "f", data, privacy.High, UploadOptions{EncryptKey: encKey}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p, _ := d.Providers().At(i)
		p.SetOutage(true)
		got, err := d.GetFile("alice", "root", "f")
		if err != nil {
			t.Fatalf("provider %d down: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("provider %d down: mismatch", i)
		}
		p.SetOutage(false)
	}
}

func TestEncryptedRangeRead(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(50_000, 102)
	if _, err := d.Upload("alice", "root", "f", data, privacy.High, UploadOptions{EncryptKey: encKey}); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetRange("alice", "root", "f", 20_000, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[20_000:25_000]) {
		t.Fatal("encrypted range mismatch")
	}
}

func TestEncryptedUpdateChunk(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(30_000, 103)
	if _, err := d.Upload("alice", "root", "f", data, privacy.High, UploadOptions{EncryptKey: encKey}); err != nil {
		t.Fatal(err)
	}
	newChunk := []byte("fresh encrypted contents")
	if err := d.UpdateChunk("alice", "root", "f", 0, newChunk, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetChunk("alice", "root", "f", 0)
	if err != nil || !bytes.Equal(got, newChunk) {
		t.Fatalf("updated encrypted chunk: %v", err)
	}
	// Update with mislead on an encrypted file is rejected.
	if err := d.UpdateChunk("alice", "root", "f", 0, []byte("x"), UploadOptions{MisleadFraction: 0.2}); !errors.Is(err, ErrConfig) {
		t.Fatalf("enc+mislead update: %v", err)
	}
	// The ciphertext on the provider changed and is not the plaintext.
	d.mu.Lock()
	entry := d.chunks[0]
	d.mu.Unlock()
	p, _ := d.Providers().At(entry.CPIndex)
	stored, _ := p.Get(entry.VirtualID)
	if bytes.Contains(stored, newChunk) {
		t.Fatal("plaintext visible after update")
	}
}

func TestEncryptedAttackYieldsNothing(t *testing.T) {
	// An insider dumping the provider sees only ciphertext: a mining
	// attack parses zero rows.
	d := testDistributor(t, 4)
	// Upload a CSV that would normally leak.
	csvLike := []byte("year,company,materials\n2001,Greece,1300\n2002,Rome,1400\n")
	if _, err := d.Upload("alice", "root", "bids.csv", csvLike, privacy.High, UploadOptions{EncryptKey: encKey}); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Providers().All() {
		for _, blob := range p.Dump() {
			if bytes.Contains(blob, []byte("Greece")) {
				t.Fatal("plaintext row visible to insider")
			}
		}
	}
}
