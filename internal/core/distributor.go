package core

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/health"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
	"repro/internal/wal"
)

// Config assembles a Distributor.
type Config struct {
	// Fleet is the set of cloud providers chunks are scattered over.
	Fleet *provider.Fleet
	// ChunkPolicy maps privacy level → chunk size. Zero value selects
	// privacy.DefaultChunkSizes.
	ChunkPolicy privacy.ChunkSizePolicy
	// DefaultRaid is used when an upload does not choose an assurance
	// level. Zero selects RAID-5, the paper's default.
	DefaultRaid raid.Level
	// StripeWidth is the maximum number of data shards per stripe
	// (default 4). The effective width also never exceeds the number of
	// eligible providers minus parity.
	StripeWidth int
	// VIDs allocates virtual ids. Nil selects a PRF allocator keyed by
	// Secret.
	VIDs VIDAllocator
	// Secret keys the default PRF allocator.
	Secret []byte
	// Parallelism bounds concurrent provider operations per request
	// (default 4).
	Parallelism int
	// StreamWindow bounds how many stripes a streaming transfer
	// (UploadStream / GetFileTo) may hold in flight at once (default 4).
	// Peak distributor memory for a streaming request is O(window ×
	// stripe size), independent of file size. 1 yields strict lockstep
	// (plan→ship→plan→ship), which deterministic harnesses rely on;
	// negative is rejected.
	StreamWindow int
	// MisleadSeed makes decoy injection reproducible.
	MisleadSeed int64
	// CacheBytes bounds the distributor's read-side chunk cache in bytes.
	// 0 disables caching (every read goes to the providers); negative is
	// rejected.
	CacheBytes int64
	// HedgeAfter enables hedged reads and caps the hedge delay: when a
	// payload fetch has been in flight this long without an answer, the
	// next rung of the read ladder (mirror, then degraded parity
	// reconstruction) is raced against it instead of waiting for the
	// first to exhaust its retries. The per-rung delay is derived from
	// the launched provider's latency EWMA, clamped to
	// [HedgeAfter/8, HedgeAfter]. 0 disables hedging (the ladder stays
	// strictly sequential); negative is rejected.
	HedgeAfter time.Duration
	// Health tunes the per-provider circuit breakers. The zero value
	// selects the health package defaults.
	Health health.Config
	// WALDir enables durable metadata: every commit is logged there
	// before it becomes visible, and New recovers the tables from it.
	// Empty keeps the distributor in-memory (tests, examples).
	WALDir string
	// WALSync picks when log appends reach disk (wal.SyncAlways /
	// SyncGrouped / SyncOff). The zero value is SyncAlways.
	WALSync wal.SyncPolicy
	// SnapshotEvery is the checkpoint cadence in committed records
	// (default 4096): how much log tail a recovery may have to replay.
	SnapshotEvery int
	// WALBugSkipSync plants the lost-commit bug (acknowledged records
	// skip their fsync) for the crash-restart oracle. Harnesses only.
	WALBugSkipSync bool
}

// Distributor is the Cloud Data Distributor. All methods are safe for
// concurrent use.
type Distributor struct {
	// mu is read-mostly: retrievals and table snapshots plan under RLock
	// (planning only reads the committed tables — per-request counters
	// are atomics, the cache and the single-flight group carry their own
	// mutexes), while every mutation and ticket commit/release takes the
	// exclusive lock. No provider I/O ever happens under mu in either
	// mode.
	mu sync.RWMutex

	fleet        *provider.Fleet
	policy       privacy.ChunkSizePolicy
	defaultRaid  raid.Level
	stripeWidth  int
	vids         VIDAllocator
	parallelism  int
	streamWindow int
	hedgeAfter   time.Duration
	misleadRNG   *rand.Rand
	health       *health.Tracker

	clients   map[string]*clientEntry
	chunks    []chunkEntry
	stripes   []stripeEntry
	provCount []int // committed chunks+parity on each fleet index

	// Write-path staging state. Mutations run in plan → ship → commit
	// phases: provider I/O happens without d.mu, so the shards a request
	// has placed but not yet committed must stay visible to concurrent
	// planners (provPending, for load balancing) and to the orphan audit
	// (inflight, so shipped-but-uncommitted blobs are never collected).
	provPending []int           // staged, uncommitted shards per fleet index
	inflight    map[string]int  // virtual id → open tickets referencing it
	reserved    map[string]bool // client+"\x00"+filename of in-flight uploads
	gen         uint64          // bumped on every committed mutation

	counters opCounters
	encNonce uint64
	fidSeq   uint64 // last assigned fileEntry.FID

	// cache holds recovered chunk bytes keyed by (file id, serial,
	// generation); nil when Config.CacheBytes is 0. Lock order: d.mu may
	// be held while taking cache.mu, never the reverse.
	cache *chunkCache

	// flights coalesces concurrent cache misses on the same chunk
	// generation into one provider fetch. It is keyed by the same
	// (fid, serial, gen) triple as the cache, so a coalesced waiter can
	// never be handed bytes from a superseded generation.
	flights flightGroup

	// Durability. wal is assigned once in New and never reassigned (so
	// lock-free reads of the pointer are safe); nil means in-memory.
	// closed (under mu) fails further commits after Close/Crash. The
	// recovery outcome fields are written once in New, before the
	// distributor is published.
	wal                  *wal.Log
	snapshotEvery        int
	closed               bool
	walReplayed          int64
	walRecoveredSnapshot bool
	walTailTruncated     bool
	recoveryOrphans      int64
	walCheckpointErrs    atomic.Int64

	// commitHook, when set (via setCommitHook), observes every committed
	// mutation's encoded WAL record under d.mu — the replication feed a
	// Cluster taps. Nil outside cluster membership.
	commitHook func(raw []byte)
}

// nextEncNonce returns a fresh AES-CTR nonce. Callers hold d.mu.
func (d *Distributor) nextEncNonce() uint64 {
	d.encNonce++
	return d.encNonce
}

// New validates cfg and builds a Distributor.
func New(cfg Config) (*Distributor, error) {
	if cfg.Fleet == nil || cfg.Fleet.Len() == 0 {
		return nil, fmt.Errorf("%w: empty fleet", ErrConfig)
	}
	policy := cfg.ChunkPolicy
	if len(policy.SizeByLevel) == 0 {
		policy = privacy.DefaultChunkSizes()
	}
	if err := policy.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	defRaid := cfg.DefaultRaid
	if defRaid == 0 {
		defRaid = raid.RAID5
	}
	if !defRaid.Valid() {
		return nil, fmt.Errorf("%w: raid level %v", ErrConfig, defRaid)
	}
	width := cfg.StripeWidth
	if width == 0 {
		width = 4
	}
	if width < 1 {
		return nil, fmt.Errorf("%w: stripe width %d", ErrConfig, width)
	}
	par := cfg.Parallelism
	if par == 0 {
		par = 4
	}
	if par < 1 {
		return nil, fmt.Errorf("%w: parallelism %d", ErrConfig, par)
	}
	window := cfg.StreamWindow
	if window == 0 {
		window = 4
	}
	if window < 1 {
		return nil, fmt.Errorf("%w: stream window %d", ErrConfig, window)
	}
	if cfg.CacheBytes < 0 {
		return nil, fmt.Errorf("%w: cache bytes %d", ErrConfig, cfg.CacheBytes)
	}
	if cfg.HedgeAfter < 0 {
		return nil, fmt.Errorf("%w: hedge after %v", ErrConfig, cfg.HedgeAfter)
	}
	vids := cfg.VIDs
	if vids == nil {
		secret := cfg.Secret
		if len(secret) == 0 {
			secret = []byte("cloud-data-distributor")
		}
		vids = NewPRFAllocator(secret)
	}
	d := &Distributor{
		fleet:        cfg.Fleet,
		policy:       policy,
		defaultRaid:  defRaid,
		stripeWidth:  width,
		vids:         vids,
		parallelism:  par,
		streamWindow: window,
		hedgeAfter:   cfg.HedgeAfter,
		misleadRNG:   rand.New(rand.NewSource(cfg.MisleadSeed + 1)),
		health:       health.NewTracker(cfg.Fleet.Len(), cfg.Health),
		clients:      make(map[string]*clientEntry),
		provCount:    make([]int, cfg.Fleet.Len()),
		provPending:  make([]int, cfg.Fleet.Len()),
		inflight:     make(map[string]int),
		reserved:     make(map[string]bool),
		cache:        newChunkCache(cfg.CacheBytes),
	}
	if cfg.WALDir != "" {
		if err := d.recoverWAL(cfg); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// RegisterClient creates a client record. Registering an existing client
// is an error.
func (d *Distributor) RegisterClient(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty client name", ErrConfig)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.clients[name]; ok {
		return fmt.Errorf("%w: client %q already registered", ErrExists, name)
	}
	if err := d.logAppendLocked(&walRecord{Op: "register", Client: name, Gen: d.gen}); err != nil {
		return err
	}
	d.clients[name] = &clientEntry{
		Name:      name,
		Passwords: make(map[string]privacy.Level),
		Files:     make(map[string]*fileEntry),
	}
	return nil
}

// hashPassword derives the stored credential: the distributor keeps only
// SHA-256 digests so a metadata leak (or an over-curious secondary
// distributor) does not expose client passwords.
func hashPassword(password string) string {
	sum := sha256.Sum256([]byte(password))
	return hex.EncodeToString(sum[:])
}

// AddPassword associates a ⟨password, PL⟩ pair with a client: the group of
// users holding this password may access chunks up to that privacy level.
// Only the password's hash is retained.
func (d *Distributor) AddPassword(client, password string, pl privacy.Level) error {
	if password == "" {
		return fmt.Errorf("%w: empty password", ErrConfig)
	}
	if !pl.Valid() {
		return fmt.Errorf("%w: privacy level %v", ErrConfig, pl)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.clients[client]
	if !ok {
		return ErrAuth
	}
	h := hashPassword(password)
	if _, dup := c.Passwords[h]; dup {
		return fmt.Errorf("%w: password already registered", ErrExists)
	}
	if err := d.logAppendLocked(&walRecord{Op: "passwd", Client: client, PassHash: h, PassPL: pl, Gen: d.gen}); err != nil {
		return err
	}
	c.Passwords[h] = pl
	return nil
}

// auth resolves a (client, password) pair to the client entry and the
// privilege level the password unlocks. Callers hold d.mu.
func (d *Distributor) auth(client, password string) (*clientEntry, privacy.Level, error) {
	c, ok := d.clients[client]
	if !ok {
		return nil, 0, ErrAuth
	}
	pl, ok := c.Passwords[hashPassword(password)]
	if !ok {
		return nil, 0, ErrAuth
	}
	return c, pl, nil
}

// authorize additionally enforces privilege ≥ need — the paper's rule "If
// the privilege level of the password is greater than or equal to the
// privilege level of the chunk(s)".
func (d *Distributor) authorize(client, password string, need privacy.Level) (*clientEntry, error) {
	c, pl, err := d.auth(client, password)
	if err != nil {
		return nil, err
	}
	if pl < need {
		return nil, fmt.Errorf("%w: password unlocks %v, chunk requires %v", ErrAuth, pl, need)
	}
	return c, nil
}

// Providers returns the fleet (for inspection in examples and tests).
func (d *Distributor) Providers() *provider.Fleet { return d.fleet }

// transientRetries bounds retry attempts for injected/transient provider
// failures.
const transientRetries = 3

// withTransientRetry retries fn when it fails with the providers'
// transient-fault error (the failure-injection model); outages and
// not-found errors surface immediately.
func (d *Distributor) withTransientRetry(fn func() error) error {
	var err error
	for attempt := 0; attempt < transientRetries; attempt++ {
		err = fn()
		if err == nil || !errors.Is(err, provider.ErrInjected) {
			return err
		}
		d.counters.transientRetries.Add(1)
	}
	return err
}

// providerOp runs fn against fleet provider provIdx with transient
// retries, feeding the final outcome into the health tracker. A
// not-found reply counts as a success: the provider answered
// authoritatively, it just has no such key. Successful operations also
// feed the provider's latency EWMA, which the hedged read path uses to
// decide how long to wait before racing the next rung.
func (d *Distributor) providerOp(provIdx int, fn func(p provider.Provider) error) error {
	p, err := d.fleet.At(provIdx)
	if err != nil {
		return err
	}
	start := time.Now()
	err = d.withTransientRetry(func() error { return fn(p) })
	ok := err == nil || errors.Is(err, provider.ErrNotFound)
	d.health.Record(provIdx, ok)
	if ok {
		d.health.RecordLatency(provIdx, time.Since(start))
	}
	return err
}

// gatedPut is a providerOp Put that consults the circuit breaker first.
// Only write paths that can fail over use it; reads, deletes and repair
// traffic stay ungated (their outcomes are still recorded, so a
// successful read closes an open circuit early).
func (d *Distributor) gatedPut(provIdx int, vid string, payload []byte) error {
	if !d.health.Allow(provIdx) {
		return fmt.Errorf("%w: provider %d", ErrCircuitOpen, provIdx)
	}
	return d.providerOp(provIdx, func(p provider.Provider) error {
		return p.Put(vid, payload)
	})
}

// fanOut runs jobs with bounded parallelism. All jobs run to completion;
// the distinct failures (several providers often report the same outage
// string) are joined so a multi-provider failure is diagnosable from one
// message instead of whichever error won the race.
func (d *Distributor) fanOut(jobs []func() error) error {
	return d.fanOutN(len(jobs), func(i int) error { return jobs[i]() })
}

// fanOutN is fanOut over indices 0..n-1 — the allocation-light form the
// bulk read path uses: one shared closure instead of a job slice with a
// closure per chunk.
func (d *Distributor) fanOutN(n int, fn func(int) error) error {
	if n == 0 {
		return nil
	}
	errs := make([]error, n)
	d.runParallel(n, func(i int) { errs[i] = fn(i) })
	var distinct []error
	var seen map[string]bool
	for _, err := range errs {
		if err == nil {
			continue
		}
		if seen == nil {
			seen = make(map[string]bool)
		}
		if seen[err.Error()] {
			continue
		}
		seen[err.Error()] = true
		distinct = append(distinct, err)
	}
	if distinct == nil {
		return nil
	}
	return errors.Join(distinct...)
}
