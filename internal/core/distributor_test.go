package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
)

// testFleet builds a fleet of n providers, all PL3/CL varying, no latency.
func testFleet(t *testing.T, n int) *provider.Fleet {
	t.Helper()
	f, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p, err := provider.New(provider.Info{
			Name: fmt.Sprintf("P%d", i),
			PL:   privacy.High,
			CL:   privacy.CostLevel(i % 4),
		}, provider.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func testDistributor(t *testing.T, n int) *Distributor {
	t.Helper()
	d, err := New(Config{Fleet: testFleet(t, n)})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "guest", privacy.Public); err != nil {
		t.Fatal(err)
	}
	return d
}

func payload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil fleet: %v", err)
	}
	emptyFleet, _ := provider.NewFleet()
	if _, err := New(Config{Fleet: emptyFleet}); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty fleet: %v", err)
	}
	f := testFleet(t, 3)
	if _, err := New(Config{Fleet: f, StripeWidth: -1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad width: %v", err)
	}
	if _, err := New(Config{Fleet: f, Parallelism: -2}); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad parallelism: %v", err)
	}
	if _, err := New(Config{Fleet: f, DefaultRaid: raid.Level(3)}); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad raid: %v", err)
	}
	bad := privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{privacy.Public: -3}}
	if _, err := New(Config{Fleet: f, ChunkPolicy: bad}); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad policy: %v", err)
	}
}

func TestRegisterClientAndPasswords(t *testing.T) {
	d := testDistributor(t, 4)
	if err := d.RegisterClient("alice"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate client: %v", err)
	}
	if err := d.RegisterClient(""); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty client: %v", err)
	}
	if err := d.AddPassword("alice", "root", privacy.Low); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate password: %v", err)
	}
	if err := d.AddPassword("nobody", "x", privacy.Low); !errors.Is(err, ErrAuth) {
		t.Fatalf("unknown client: %v", err)
	}
	if err := d.AddPassword("alice", "", privacy.Low); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty password: %v", err)
	}
	if err := d.AddPassword("alice", "p", privacy.Level(7)); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad level: %v", err)
	}
}

func TestUploadAndGetFileRoundTrip(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(200_000, 1)
	info, err := d.Upload("alice", "root", "doc.bin", data, privacy.Moderate, UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Chunks < 2 {
		t.Fatalf("chunks = %d, want several", info.Chunks)
	}
	if info.Raid != raid.RAID5 {
		t.Fatalf("raid = %v, want default raid5", info.Raid)
	}
	got, err := d.GetFile("alice", "root", "doc.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestUploadValidation(t *testing.T) {
	d := testDistributor(t, 4)
	if _, err := d.Upload("alice", "root", "", nil, privacy.Low, UploadOptions{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty filename: %v", err)
	}
	if _, err := d.Upload("alice", "root", "f", nil, privacy.Level(9), UploadOptions{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad level: %v", err)
	}
	if _, err := d.Upload("alice", "root", "f", nil, privacy.Low, UploadOptions{MisleadFraction: 1.0}); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad fraction: %v", err)
	}
	if _, err := d.Upload("alice", "root", "f", nil, privacy.Low, UploadOptions{Assurance: raid.Level(2)}); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad raid: %v", err)
	}
	if _, err := d.Upload("alice", "wrongpw", "f", nil, privacy.Low, UploadOptions{}); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong password: %v", err)
	}
	if _, err := d.Upload("mallory", "root", "f", nil, privacy.Low, UploadOptions{}); !errors.Is(err, ErrAuth) {
		t.Fatalf("unknown client: %v", err)
	}
	// Low-privilege password cannot upload sensitive data.
	if _, err := d.Upload("alice", "guest", "f", nil, privacy.High, UploadOptions{}); !errors.Is(err, ErrAuth) {
		t.Fatalf("privilege escalation: %v", err)
	}
	// Duplicate filename.
	if _, err := d.Upload("alice", "root", "dup", []byte("x"), privacy.Low, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upload("alice", "root", "dup", []byte("y"), privacy.Low, UploadOptions{}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate file: %v", err)
	}
}

func TestGetChunkAccessControl(t *testing.T) {
	d := testDistributor(t, 5)
	data := payload(20_000, 2)
	if _, err := d.Upload("alice", "root", "secret", data, privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Privileged password succeeds.
	if _, err := d.GetChunk("alice", "root", "secret", 0); err != nil {
		t.Fatal(err)
	}
	// The paper's denial case: password privilege below chunk PL.
	if _, err := d.GetChunk("alice", "guest", "secret", 0); !errors.Is(err, ErrAuth) {
		t.Fatalf("low-privilege access: %v", err)
	}
	if _, err := d.GetFile("alice", "guest", "secret"); !errors.Is(err, ErrAuth) {
		t.Fatalf("low-privilege file access: %v", err)
	}
	// Bad serials.
	if _, err := d.GetChunk("alice", "root", "secret", -1); !errors.Is(err, ErrNoSuchChunk) {
		t.Fatalf("negative serial: %v", err)
	}
	if _, err := d.GetChunk("alice", "root", "secret", 10_000); !errors.Is(err, ErrNoSuchChunk) {
		t.Fatalf("big serial: %v", err)
	}
	if _, err := d.GetChunk("alice", "root", "nofile", 0); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("no file: %v", err)
	}
}

func TestGetChunkReturnsExactFragment(t *testing.T) {
	// Chunk content must equal the corresponding slice of the original.
	policy := privacy.ChunkSizePolicy{SizeByLevel: map[privacy.Level]int{
		privacy.Public: 100, privacy.Low: 100, privacy.Moderate: 100, privacy.High: 100,
	}}
	d, err := New(Config{Fleet: testFleet(t, 5), ChunkPolicy: policy})
	if err != nil {
		t.Fatal(err)
	}
	_ = d.RegisterClient("c")
	_ = d.AddPassword("c", "p", privacy.High)
	data := payload(250, 3)
	if _, err := d.Upload("c", "p", "f", data, privacy.Low, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	n, err := d.ChunkCount("c", "p", "f")
	if err != nil || n != 3 {
		t.Fatalf("ChunkCount = %d, %v", n, err)
	}
	for s := 0; s < 3; s++ {
		got, err := d.GetChunk("c", "p", "f", s)
		if err != nil {
			t.Fatal(err)
		}
		lo := s * 100
		hi := lo + 100
		if hi > len(data) {
			hi = len(data)
		}
		if !bytes.Equal(got, data[lo:hi]) {
			t.Fatalf("serial %d content mismatch", s)
		}
	}
}

func TestChunkSizeDependsOnPrivacyLevel(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(128<<10, 4)
	pub, err := d.Upload("alice", "root", "pub", data, privacy.Public, UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	high, err := d.Upload("alice", "root", "high", data, privacy.High, UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if high.Chunks <= pub.Chunks {
		t.Fatalf("PL3 chunks (%d) must exceed PL0 chunks (%d)", high.Chunks, pub.Chunks)
	}
}

func TestPlacementRespectsProviderPL(t *testing.T) {
	// A fleet with mixed PLs: sensitive chunks must never land on
	// low-reputation providers.
	fl, _ := provider.NewFleet(
		provider.MustNew(provider.Info{Name: "trusted1", PL: privacy.High, CL: 3}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "trusted2", PL: privacy.High, CL: 3}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "trusted3", PL: privacy.High, CL: 2}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "shady1", PL: privacy.Public, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "shady2", PL: privacy.Low, CL: 0}, provider.Options{}),
	)
	d, err := New(Config{Fleet: fl})
	if err != nil {
		t.Fatal(err)
	}
	_ = d.RegisterClient("c")
	_ = d.AddPassword("c", "p", privacy.High)
	if _, err := d.Upload("c", "p", "s", payload(64<<10, 5), privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	shady1, _, _ := fl.ByName("shady1")
	shady2, _, _ := fl.ByName("shady2")
	if shady1.Len() != 0 || shady2.Len() != 0 {
		t.Fatalf("sensitive chunks on low-PL providers: %d, %d", shady1.Len(), shady2.Len())
	}
	// Public data may use everyone.
	if _, err := d.Upload("c", "p", "open", payload(512<<10, 6), privacy.Public, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if shady1.Len() == 0 && shady2.Len() == 0 {
		t.Fatal("public chunks avoided cheap providers entirely")
	}
}

func TestPlacementPrefersCheaperProviders(t *testing.T) {
	fl, _ := provider.NewFleet(
		provider.MustNew(provider.Info{Name: "pricey", PL: privacy.High, CL: 3}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "cheap1", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "cheap2", PL: privacy.High, CL: 0}, provider.Options{}),
		provider.MustNew(provider.Info{Name: "cheap3", PL: privacy.High, CL: 0}, provider.Options{}),
	)
	d, _ := New(Config{Fleet: fl, StripeWidth: 2})
	_ = d.RegisterClient("c")
	_ = d.AddPassword("c", "p", privacy.High)
	// One stripe: 2 data + 1 parity = 3 shards; all fit on the cheap trio.
	if _, err := d.Upload("c", "p", "f", payload(16<<10, 7), privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	pricey, _, _ := fl.ByName("pricey")
	if pricey.Len() != 0 {
		t.Fatalf("expensive provider used (%d shards) while cheap capacity existed", pricey.Len())
	}
}

func TestUploadFailsWithoutEnoughProviders(t *testing.T) {
	// 2 providers cannot host a RAID-6 stripe (needs >= 3 distinct).
	d := testDistributor(t, 2)
	_, err := d.Upload("alice", "root", "f", payload(8<<10, 8), privacy.High, UploadOptions{Assurance: raid.RAID6})
	if !errors.Is(err, ErrPlacement) {
		t.Fatalf("err = %v, want ErrPlacement", err)
	}
}

func TestUploadEmptyFile(t *testing.T) {
	d := testDistributor(t, 4)
	info, err := d.Upload("alice", "root", "empty", nil, privacy.Low, UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Chunks != 1 {
		t.Fatalf("chunks = %d, want 1", info.Chunks)
	}
	got, err := d.GetFile("alice", "root", "empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestVirtualIDsConcealClientIdentity(t *testing.T) {
	d := testDistributor(t, 4)
	if _, err := d.Upload("alice", "root", "payroll2026.csv", payload(32<<10, 9), privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Providers().All() {
		for _, key := range p.Keys() {
			lower := strings.ToLower(key)
			if strings.Contains(lower, "alice") || strings.Contains(lower, "payroll") {
				t.Fatalf("virtual id %q leaks client identity", key)
			}
		}
	}
	// All ids unique across providers.
	seen := map[string]bool{}
	for _, p := range d.Providers().All() {
		for _, key := range p.Keys() {
			if seen[key] {
				t.Fatalf("virtual id %q reused", key)
			}
			seen[key] = true
		}
	}
}

func TestStripeShardsOnDistinctProviders(t *testing.T) {
	d := testDistributor(t, 8)
	if _, err := d.Upload("alice", "root", "f", payload(64<<10, 10), privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, st := range d.stripes {
		used := map[int]bool{}
		for _, ci := range st.Members {
			cp := d.chunks[ci].CPIndex
			if used[cp] {
				t.Fatalf("stripe %d reuses provider %d", st.ID, cp)
			}
			used[cp] = true
		}
		for _, ps := range st.Parity {
			if used[ps.CPIndex] {
				t.Fatalf("stripe %d parity shares provider %d with a member", st.ID, ps.CPIndex)
			}
			used[ps.CPIndex] = true
		}
	}
}

func TestStatsAndChunkCountErrors(t *testing.T) {
	d := testDistributor(t, 4)
	if _, err := d.ChunkCount("alice", "root", "nope"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.ChunkCount("alice", "bad", "nope"); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v", err)
	}
	_, _ = d.Upload("alice", "root", "a", payload(40<<10, 11), privacy.Low, UploadOptions{})
	s := d.Stats()
	if s.Clients != 1 || s.Files != 1 || s.Chunks < 1 || s.Stripes < 1 || s.ParityShards < 1 {
		t.Fatalf("stats = %+v", s)
	}
	total := 0
	for _, c := range s.PerProvider {
		total += c
	}
	if total != s.Chunks+s.ParityShards {
		t.Fatalf("per-provider total %d != chunks %d + parity %d", total, s.Chunks, s.ParityShards)
	}
}
