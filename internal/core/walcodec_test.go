package core

import (
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mislead"
	"repro/internal/privacy"
	"repro/internal/raid"
)

// codecChunk builds a chunkEntry exercising every field, including the
// -1 sentinels and a nil-vs-empty distinction on EncKey/Mirrors.
func codecChunk(i int) chunkEntry {
	c := chunkEntry{
		VirtualID:  "vid-abc",
		PL:         privacy.High,
		CPIndex:    3,
		SPIndex:    -1,
		Mislead:    mislead.Injection{Positions: []int{1, 7, 19}},
		Client:     "alice",
		Filename:   "f",
		Serial:     i,
		PayloadLen: 16384,
		DataLen:    16000,
		EncKey:     []byte{9, 8, 7},
		StripeID:   -1,
		SnapVID:    "snap-1",
		Mirrors:    []mirrorRef{{VirtualID: "m0", CPIndex: 1}, {VirtualID: "m1", CPIndex: 5}},
	}
	for j := range c.Sum {
		c.Sum[j] = byte(i + j)
	}
	if i%2 == 0 {
		c.EncKey = nil
		c.Mirrors = nil
		c.Mislead.Positions = nil
		c.SPIndex = 4
		c.StripeID = 2
	}
	return c
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []walRecord{
		{Op: "register", Client: "alice", Gen: 1, ClientGen: 1},
		{
			Op: "upload", Gen: 42, FIDSeq: 17, EncNonce: 99, VIDCtr: 1 << 40,
			Client: "alice", Filename: "f", FID: 17, PL: privacy.High,
			Raid: raid.RAID6, ChunksBase: 10, StripesBase: 2,
			Chunks:   []chunkEntry{codecChunk(0), codecChunk(1)},
			Stripes:  []stripeEntry{{ID: 2, Level: raid.RAID6, ShardLen: 512, Members: []int{10, 11}, Parity: []parityShard{{VirtualID: "p0", CPIndex: 6}}}},
			ChunkIdx: []int{10, 11}, FileGen: 1, ClientGen: 3,
		},
		{
			Op: "update", Gen: 43, Client: "alice", Filename: "f", Serial: 1,
			StripeID: 2, Chunk: codecChunk(3),
			Parity: []parityShard{}, Members: []int{}, ChunkIdx: []int{},
			ShardLen: 768, FileGen: 2, ClientGen: 3,
		},
		{Op: "move_parity", Gen: 44, TableIdx: 2, SubIdx: 1, NewProv: 7, NewVID: "nv"},
	}
	for _, want := range recs {
		enc := encodeWALRecord(&want)
		var got walRecord
		if err := decodeWALRecord(enc, &got); err != nil {
			t.Fatalf("op %s: decode: %v", want.Op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("op %s: round trip mismatch:\n got %+v\nwant %+v", want.Op, got, want)
		}
	}
}

func TestWALStateRoundTrip(t *testing.T) {
	want := walState{
		Clients: map[string]*clientEntry{
			"alice": {
				Name:      "alice",
				Passwords: map[string]privacy.Level{"h1": privacy.High, "h2": privacy.Low},
				Files: map[string]*fileEntry{
					"f": {Filename: "f", PL: privacy.High, FID: 3, ChunkIdx: []int{0, 1}, Raid: raid.RAID5, Gen: 2},
				},
				Count: 2, Gen: 4,
			},
			"bob": {Name: "bob", Passwords: map[string]privacy.Level{}, Files: map[string]*fileEntry{}},
		},
		Chunks:  []chunkEntry{codecChunk(0), codecChunk(1), codecChunk(2)},
		Stripes: []stripeEntry{{ID: 0, Level: raid.RAID5, ShardLen: 64, Members: []int{0, 1}, Parity: []parityShard{{VirtualID: "p", CPIndex: 2}}}},
		Gen:     9, FIDSeq: 4, EncNonce: 11, VIDCtr: 1 << 33,
	}
	enc := encodeWALState(&want)
	var got walState
	if err := decodeWALState(enc, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Map iteration order must not leak into the encoding.
	if enc2 := encodeWALState(&want); string(enc) != string(enc2) {
		t.Error("encoding the same state twice produced different bytes")
	}
}

// TestWALCodecStrictness drives the decoder with malformed inputs: every
// one must fail with a walcodec error, and a huge claimed length must be
// rejected before it allocates.
func TestWALCodecStrictness(t *testing.T) {
	good := encodeWALRecord(&walRecord{Op: "register", Client: "alice", Gen: 1})
	cases := map[string][]byte{
		"empty":          {},
		"bad version":    append([]byte{walCodecVersion + 1}, good[1:]...),
		"truncated":      good[:len(good)/2],
		"trailing bytes": append(append([]byte{}, good...), 0),
	}
	// A record whose Chunks collection claims ~2^60 elements: the count
	// guard must reject it against the remaining input, not allocate.
	huge := []byte{walCodecVersion}
	huge = append(huge, 2, 'o', 'p')         // Op
	huge = appendUvarints(huge, 0, 0, 0, 0)  // watermarks
	huge = append(huge, 0, 0, 0)             // Client, Filename, PassHash
	huge = append(huge, 0)                   // PassPL
	huge = append(huge, 0)                   // FID
	huge = append(huge, 0, 0, 0, 0)          // PL, Raid, ChunksBase, StripesBase
	huge = binary.AppendUvarint(huge, 1<<60) // Chunks length+1
	for name, data := range map[string][]byte{"huge collection": huge} {
		cases[name] = data
	}
	for name, data := range cases {
		var rec walRecord
		err := decodeWALRecord(data, &rec)
		if err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
			continue
		}
		if !strings.Contains(err.Error(), "walcodec") {
			t.Errorf("%s: error %q does not name the codec", name, err)
		}
	}
}

func appendUvarints(b []byte, vs ...uint64) []byte {
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}
