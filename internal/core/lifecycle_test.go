package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/privacy"
)

func TestRemoveFile(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(90_000, 30)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if before.Chunks == 0 {
		t.Fatal("no chunks after upload")
	}
	if err := d.RemoveFile("alice", "root", "f"); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after.Chunks != 0 || after.Files != 0 || after.ParityShards != 0 {
		t.Fatalf("stats after remove = %+v", after)
	}
	// No shards remain anywhere in the fleet.
	for _, p := range d.Providers().All() {
		if p.Len() != 0 {
			t.Fatalf("provider %s still holds %d keys", p.Info().Name, p.Len())
		}
	}
	if _, err := d.GetFile("alice", "root", "f"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("get after remove: %v", err)
	}
	if err := d.RemoveFile("alice", "root", "f"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestRemoveFileAuth(t *testing.T) {
	d := testDistributor(t, 4)
	if _, err := d.Upload("alice", "root", "f", payload(10_000, 31), privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveFile("alice", "guest", "f"); !errors.Is(err, ErrAuth) {
		t.Fatalf("low-privilege remove: %v", err)
	}
	if err := d.RemoveFile("alice", "nope", "f"); !errors.Is(err, ErrAuth) {
		t.Fatalf("bad password: %v", err)
	}
}

func TestRemoveChunk(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(100_000, 32)
	info, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Chunks < 3 {
		t.Fatalf("need >=3 chunks, got %d", info.Chunks)
	}
	if err := d.RemoveChunk("alice", "root", "f", 1); err != nil {
		t.Fatal(err)
	}
	// Removed serial is gone.
	if _, err := d.GetChunk("alice", "root", "f", 1); !errors.Is(err, ErrNoSuchChunk) {
		t.Fatalf("get removed chunk: %v", err)
	}
	if err := d.RemoveChunk("alice", "root", "f", 1); !errors.Is(err, ErrNoSuchChunk) {
		t.Fatalf("double chunk remove: %v", err)
	}
	// Other serials still readable.
	got, err := d.GetChunk("alice", "root", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := privacy.DefaultChunkSizes().Size(privacy.Moderate)
	if !bytes.Equal(got, data[:size]) {
		t.Fatal("surviving chunk mismatch")
	}
	// Whole-file read reports the hole.
	if _, err := d.GetFile("alice", "root", "f"); !errors.Is(err, ErrNoSuchChunk) {
		t.Fatalf("file read with hole: %v", err)
	}
	if d.Stats().Chunks != info.Chunks-1 {
		t.Fatalf("chunk count = %d, want %d", d.Stats().Chunks, info.Chunks-1)
	}
}

func TestRemoveChunkKeepsRAIDWorking(t *testing.T) {
	// After a chunk is removed, its stripe's parity is re-encoded, so the
	// remaining chunks must still survive a provider outage.
	d := testDistributor(t, 6)
	data := payload(100_000, 33)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveChunk("alice", "root", "f", 0); err != nil {
		t.Fatal(err)
	}
	size, _ := privacy.DefaultChunkSizes().Size(privacy.Moderate)
	for i := 0; i < 6; i++ {
		p, _ := d.Providers().At(i)
		p.SetOutage(true)
		got, err := d.GetChunk("alice", "root", "f", 1)
		if err != nil {
			t.Fatalf("provider %d down after chunk removal: %v", i, err)
		}
		if !bytes.Equal(got, data[size:2*size]) {
			t.Fatalf("provider %d down: chunk 1 mismatch", i)
		}
		p.SetOutage(false)
	}
}

func TestRemoveAllChunksOneByOne(t *testing.T) {
	d := testDistributor(t, 6)
	info, err := d.Upload("alice", "root", "f", payload(70_000, 34), privacy.Moderate, UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < info.Chunks; s++ {
		if err := d.RemoveChunk("alice", "root", "f", s); err != nil {
			t.Fatalf("remove serial %d: %v", s, err)
		}
	}
	for _, p := range d.Providers().All() {
		if p.Len() != 0 {
			t.Fatalf("provider %s still holds %d keys after removing every chunk", p.Info().Name, p.Len())
		}
	}
	if d.Stats().Chunks != 0 {
		t.Fatalf("chunks = %d", d.Stats().Chunks)
	}
}

func TestUpdateChunkWithSnapshot(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(50_000, 35)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// No snapshot before any modification.
	if _, err := d.GetSnapshot("alice", "root", "f", 0); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("premature snapshot: %v", err)
	}
	size, _ := privacy.DefaultChunkSizes().Size(privacy.Moderate)
	oldChunk := data[:size]
	newChunk := payload(size, 36)
	if err := d.UpdateChunk("alice", "root", "f", 0, newChunk, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Post-state served normally.
	got, err := d.GetChunk("alice", "root", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newChunk) {
		t.Fatal("post-state mismatch")
	}
	// Pre-state preserved on the snapshot provider.
	snap, err := d.GetSnapshot("alice", "root", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, oldChunk) {
		t.Fatal("snapshot is not the pre-state")
	}
	// Snapshot lives on a different provider than the chunk.
	d.mu.Lock()
	entry := d.chunks[0]
	d.mu.Unlock()
	if entry.SPIndex == entry.CPIndex {
		t.Fatal("snapshot on the same provider as the chunk")
	}
	if entry.SPIndex < 0 || entry.SnapVID == "" {
		t.Fatalf("snapshot bookkeeping missing: %+v", entry)
	}
}

func TestUpdateChunkKeepsRAIDConsistent(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(60_000, 37)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	newChunk := payload(500, 38) // different length than the original chunk
	if err := d.UpdateChunk("alice", "root", "f", 1, newChunk, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// After parity re-encode, the updated chunk must survive outages.
	for i := 0; i < 6; i++ {
		p, _ := d.Providers().At(i)
		p.SetOutage(true)
		got, err := d.GetChunk("alice", "root", "f", 1)
		if err != nil {
			t.Fatalf("provider %d down after update: %v", i, err)
		}
		if !bytes.Equal(got, newChunk) {
			t.Fatalf("provider %d down: updated chunk mismatch", i)
		}
		// And its stripe siblings too.
		if _, err := d.GetChunk("alice", "root", "f", 0); err != nil {
			t.Fatalf("provider %d down: sibling chunk: %v", i, err)
		}
		p.SetOutage(false)
	}
}

func TestUpdateChunkSecondUpdateRetiresOldSnapshot(t *testing.T) {
	d := testDistributor(t, 6)
	if _, err := d.Upload("alice", "root", "f", payload(20_000, 39), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	v1 := payload(300, 40)
	v2 := payload(280, 41)
	if err := d.UpdateChunk("alice", "root", "f", 0, v1, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateChunk("alice", "root", "f", 0, v2, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	snap, err := d.GetSnapshot("alice", "root", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, v1) {
		t.Fatal("snapshot should hold the immediately-previous state")
	}
	got, _ := d.GetChunk("alice", "root", "f", 0)
	if !bytes.Equal(got, v2) {
		t.Fatal("current state wrong after two updates")
	}
}

func TestUpdateChunkValidation(t *testing.T) {
	d := testDistributor(t, 5)
	if _, err := d.Upload("alice", "root", "f", payload(10_000, 42), privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateChunk("alice", "guest", "f", 0, []byte("x"), UploadOptions{}); !errors.Is(err, ErrAuth) {
		t.Fatalf("low-privilege update: %v", err)
	}
	if err := d.UpdateChunk("alice", "root", "f", 99, []byte("x"), UploadOptions{}); !errors.Is(err, ErrNoSuchChunk) {
		t.Fatalf("bad serial: %v", err)
	}
	if err := d.UpdateChunk("alice", "root", "f", 0, []byte("x"), UploadOptions{MisleadFraction: -1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad fraction: %v", err)
	}
}

func TestUpdateWithMisleadThenRead(t *testing.T) {
	d := testDistributor(t, 6)
	if _, err := d.Upload("alice", "root", "f", payload(20_000, 43), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	newChunk := payload(800, 44)
	if err := d.UpdateChunk("alice", "root", "f", 0, newChunk, UploadOptions{MisleadFraction: 0.4}); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetChunk("alice", "root", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newChunk) {
		t.Fatal("mislead strip after update failed")
	}
}

// TestUpdateChunkWithSiblingProviderDown is the regression test for a
// subtle corruption bug: updating chunk A while the provider of sibling
// chunk B is down used to re-encode parity by "reconstructing" B through
// parity that was already stale (A's new payload was written first),
// silently corrupting B. The fix prefetches siblings while the stripe is
// still consistent.
func TestUpdateChunkWithSiblingProviderDown(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(60_000, 120) // 4 chunks at PL2 → one stripe of width 4
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	size, _ := privacy.DefaultChunkSizes().Size(privacy.Moderate)

	// Take down the provider hosting sibling chunk 1.
	d.mu.Lock()
	sibling := d.chunks[1]
	d.mu.Unlock()
	sp, _ := d.Providers().At(sibling.CPIndex)
	sp.SetOutage(true)

	// Update chunk 0 while the sibling is unreachable (it is still
	// readable through RAID at prefetch time, so the update succeeds).
	newChunk := payload(size, 121)
	if err := d.UpdateChunk("alice", "root", "f", 0, newChunk, UploadOptions{}); err != nil {
		t.Fatalf("update with sibling down: %v", err)
	}

	// Chunk 1 must still read back EXACTLY, both via reconstruction while
	// its provider is down...
	got, err := d.GetChunk("alice", "root", "f", 1)
	if err != nil {
		t.Fatalf("sibling read during outage: %v", err)
	}
	if !bytes.Equal(got, data[size:2*size]) {
		t.Fatal("sibling corrupted by update (reconstruction path)")
	}
	// ...and directly after it recovers.
	sp.SetOutage(false)
	got, err = d.GetChunk("alice", "root", "f", 1)
	if err != nil || !bytes.Equal(got, data[size:2*size]) {
		t.Fatalf("sibling corrupted by update (direct path): %v", err)
	}
	// The updated chunk itself reads the new contents.
	got, err = d.GetChunk("alice", "root", "f", 0)
	if err != nil || !bytes.Equal(got, newChunk) {
		t.Fatalf("updated chunk wrong: %v", err)
	}
	// And the whole stripe still survives any single outage.
	for i := 0; i < 6; i++ {
		p, _ := d.Providers().At(i)
		p.SetOutage(true)
		if _, err := d.GetFile("alice", "root", "f"); err != nil {
			t.Fatalf("provider %d down after update: %v", i, err)
		}
		p.SetOutage(false)
	}
}
