package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/privacy"
	"repro/internal/provider"
)

// hedgeTestDistributor builds a distributor over 8 hooked in-memory
// providers with hedged reads enabled, returning the hooks so tests can
// stall or count individual providers' Gets.
func hedgeTestDistributor(t *testing.T, hedgeAfter time.Duration) (*Distributor, []*provider.Hooked) {
	t.Helper()
	f, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	hooked := make([]*provider.Hooked, 8)
	for i := range hooked {
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("H%d", i), PL: privacy.High, CL: 1,
		}, provider.Options{})
		if err != nil {
			t.Fatal(err)
		}
		hooked[i] = provider.NewHooked(mem)
		if err := f.Add(hooked[i]); err != nil {
			t.Fatal(err)
		}
	}
	d, err := New(Config{Fleet: f, Parallelism: 4, HedgeAfter: hedgeAfter})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	return d, hooked
}

func TestConfigRejectsNegativeHedgeAfter(t *testing.T) {
	f := testFleet(t, 3)
	if _, err := New(Config{Fleet: f, HedgeAfter: -time.Millisecond}); !errors.Is(err, ErrConfig) {
		t.Fatalf("New with HedgeAfter=-1ms: err=%v, want ErrConfig", err)
	}
}

// TestHedgeMirrorRescue is the acceptance test for hedged reads: a
// slow-but-healthy primary (its Get stalls but never fails) must not hold
// the read hostage — the hedge timer fires, the mirror rung races and
// wins, and the blocked primary's eventual genuine success reaches the
// health tracker without a single failure being recorded, so losing the
// race never feeds the circuit breaker.
func TestHedgeMirrorRescue(t *testing.T) {
	d, hooked := hedgeTestDistributor(t, 40*time.Millisecond)
	data := payload(20_000, 11)
	if _, err := d.Upload("alice", "root", "f.bin", data, privacy.Moderate, UploadOptions{Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	primary := d.chunks[d.clients["alice"].Files["f.bin"].ChunkIdx[0]].CPIndex
	base := d.Health()[primary]
	if base.Failures != 0 {
		t.Fatalf("failures before read = %d", base.Failures)
	}

	release := make(chan struct{})
	hooked[primary].SetBeforeGet(func(string) error {
		<-release
		return nil
	})

	got, err := d.GetChunk("alice", "root", "f.bin", 0)
	if err != nil {
		t.Fatalf("GetChunk with stalled primary: %v", err)
	}
	want := data[:d.chunks[d.clients["alice"].Files["f.bin"].ChunkIdx[0]].DataLen]
	if !bytes.Equal(got, want) {
		t.Fatal("hedged read returned wrong bytes")
	}
	m := d.Metrics()
	if m.HedgedReads != 1 || m.HedgeWins != 1 {
		t.Fatalf("hedged=%d wins=%d, want 1/1", m.HedgedReads, m.HedgeWins)
	}
	if m.MirrorHits != 1 || m.PrimaryHits != 0 {
		t.Fatalf("mirror=%d primary=%d, want 1/0", m.MirrorHits, m.PrimaryHits)
	}

	// Unblock the losing rung: its Get now genuinely succeeds, and that
	// success — not a failure — must land in the primary's health record.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := d.Health()[primary]
		if h.Successes > base.Successes {
			if h.Failures != 0 {
				t.Fatalf("losing a hedge race recorded %d failures", h.Failures)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocked primary's success never reached the health tracker")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleFlightCoalesce pins the dedup contract: N concurrent cache
// misses on the same chunk generation perform exactly one provider fetch,
// every waiter gets the bytes, and the coalesced-read counter accounts
// for the N-1 piggybackers.
func TestSingleFlightCoalesce(t *testing.T) {
	d, hooked := hedgeTestDistributor(t, 0) // sequential ladder; dedup only
	data := payload(20_000, 12)
	if _, err := d.Upload("alice", "root", "f.bin", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	release := make(chan struct{})
	var gets atomic.Int64
	for _, h := range hooked {
		h.SetBeforeGet(func(string) error {
			gets.Add(1)
			<-release
			return nil
		})
	}

	results := make([][]byte, readers)
	errs := make([]error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = d.GetChunk("alice", "root", "f.bin", 0)
		}(i)
	}

	// The leader is stalled inside the provider Get; everyone else must
	// join its flight. Coalesced joins are counted at join time, so the
	// metric reaching readers-1 proves all waiters are aboard before the
	// fetch is released.
	deadline := time.Now().Add(5 * time.Second)
	for d.Metrics().CoalescedReads != readers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d, want %d", d.Metrics().CoalescedReads, readers-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := gets.Load(); n != 1 {
		t.Fatalf("provider Gets = %d, want 1", n)
	}
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("reader %d got different bytes", i)
		}
	}
}

// TestConcurrentReadsDuringUpdate races whole-file and single-chunk reads
// against repeated chunk-0 updates, the workload the RWMutex planning
// path exists for (run under -race). Every successful read must be a
// consistent image: the untouched suffix byte-identical to the original,
// and chunk 0 equal to one of the committed generations. Reads that plan
// against a generation whose blobs are deleted mid-flight may fail, but
// only with ErrUnavailable.
func TestConcurrentReadsDuringUpdate(t *testing.T) {
	d := testDistributor(t, 8)
	data := payload(60_000, 13)
	if _, err := d.Upload("alice", "root", "f.bin", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	n0 := d.chunks[d.clients["alice"].Files["f.bin"].ChunkIdx[0]].DataLen
	gens := [][]byte{data[:n0], payload(n0, 14), payload(n0, 15)}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := d.GetFile("alice", "root", "f.bin")
				if err != nil {
					if !errors.Is(err, ErrUnavailable) {
						errCh <- fmt.Errorf("GetFile: %w", err)
						return
					}
					continue
				}
				if len(got) != len(data) || !bytes.Equal(got[n0:], data[n0:]) {
					errCh <- errors.New("GetFile: suffix diverged from original")
					return
				}
				head := got[:n0]
				if !bytes.Equal(head, gens[0]) && !bytes.Equal(head, gens[1]) && !bytes.Equal(head, gens[2]) {
					errCh <- errors.New("GetFile: chunk 0 matches no committed generation")
					return
				}
				if _, err := d.ChunkCount("alice", "root", "f.bin"); err != nil {
					errCh <- fmt.Errorf("ChunkCount: %w", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		if err := d.UpdateChunk("alice", "root", "f.bin", 0, gens[1+i%2], UploadOptions{}); err != nil {
			t.Errorf("update %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
