package core

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/cryptofrag"
	"repro/internal/mislead"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
)

// UpdateChunk replaces one chunk's contents. Before the modification the
// chunk's previous state is copied to a snapshot provider: "snapshot
// provider stores the pre-state and cloud provider stores the post-state
// of a chunk after each modification" (paper §IV-A, Chunk Table).
// The stripe's parity is re-encoded over the new contents.
func (d *Distributor) UpdateChunk(client, password, filename string, serial int, newData []byte, opts UploadOptions) error {
	if opts.MisleadFraction < 0 || opts.MisleadFraction >= 1 {
		return fmt.Errorf("%w: mislead fraction %v outside [0,1)", ErrConfig, opts.MisleadFraction)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	entry, err := d.lookupChunk(client, password, filename, serial)
	if err != nil {
		return err
	}

	// Capture the pre-state payload (reconstructing if necessary).
	oldPayload, err := d.fetchPayloadLocked(entry)
	if err != nil {
		return fmt.Errorf("core: reading pre-state: %w", err)
	}

	// Prefetch every sibling member of the stripe NOW, while parity is
	// still consistent with the members. Reading them after the post-state
	// write would let an unreachable sibling be "reconstructed" through
	// stale parity — silent corruption. If a sibling is unreadable even
	// through RAID, the update fails before mutating anything.
	st := &d.stripes[entry.StripeID]
	siblings := make(map[int][]byte, len(st.Members))
	if st.Level.ParityShards() > 0 {
		for _, cidx := range st.Members {
			m := &d.chunks[cidx]
			if m.VirtualID == entry.VirtualID {
				continue
			}
			sib, err := d.fetchPayloadLocked(m)
			if err != nil {
				return fmt.Errorf("core: reading stripe sibling %s#%d before update: %w", m.Filename, m.Serial, err)
			}
			siblings[cidx] = sib
		}
	}

	// Store the snapshot on a provider distinct from the current one,
	// failing over to other providers if the chosen one rejects the put.
	spIdx, err := d.pickSnapshotProvider(entry.PL, entry.CPIndex)
	if err != nil {
		return err
	}
	spIdx, snapVID, err := d.rehomePut(entry.PL, spIdx, d.vids.Next(), oldPayload,
		map[int]bool{entry.CPIndex: true})
	if err != nil {
		return fmt.Errorf("core: writing snapshot: %w", err)
	}
	// Retire any previous snapshot.
	if entry.SnapVID != "" && entry.SPIndex >= 0 {
		if old, e := d.fleet.At(entry.SPIndex); e == nil {
			_ = old.Delete(entry.SnapVID)
		}
		d.provCount[entry.SPIndex]--
	}
	entry.SPIndex = spIdx
	entry.SnapVID = snapVID
	d.provCount[spIdx]++

	// Build the new payload: encrypted files stay encrypted; otherwise a
	// fresh mislead injection if requested.
	payload := newData
	var inj mislead.Injection
	switch {
	case entry.EncKey != nil:
		if opts.MisleadFraction > 0 || len(opts.MisleadLines) > 0 {
			return fmt.Errorf("%w: misleading data and encryption are mutually exclusive", ErrConfig)
		}
		payload, err = cryptofrag.Encrypt(entry.EncKey, newData, d.nextEncNonce())
	case len(opts.MisleadLines) > 0:
		payload, inj, err = mislead.InjectLines(newData, opts.MisleadLines, d.misleadRNG)
	case opts.MisleadFraction > 0:
		payload, inj, err = mislead.Inject(newData, opts.MisleadFraction, d.misleadRNG)
	default:
		cp := make([]byte, len(newData))
		copy(cp, newData)
		payload = cp
	}
	if err != nil {
		return err
	}

	// Write the post-state, to the primary and to every mirror. A failed
	// primary put re-homes the chunk on another healthy provider under a
	// fresh virtual id (the stale blob is deleted best-effort, so even an
	// unreachable one is later detectable as a VID orphan).
	exclude := make(map[int]bool)
	for _, cidx := range st.Members {
		if m := &d.chunks[cidx]; m.VirtualID != entry.VirtualID {
			exclude[m.CPIndex] = true
		}
	}
	for _, ps := range st.Parity {
		exclude[ps.CPIndex] = true
	}
	for _, m := range entry.Mirrors {
		exclude[m.CPIndex] = true
	}
	newProv, newVID, err := d.rehomePut(entry.PL, entry.CPIndex, entry.VirtualID, payload, exclude)
	if err != nil {
		return fmt.Errorf("core: writing post-state: %w", err)
	}
	if newProv != entry.CPIndex {
		if old, e := d.fleet.At(entry.CPIndex); e == nil {
			_ = old.Delete(entry.VirtualID)
		}
		d.provCount[entry.CPIndex]--
		d.provCount[newProv]++
		entry.CPIndex = newProv
		entry.VirtualID = newVID
	}
	for mi := range entry.Mirrors {
		m := &entry.Mirrors[mi]
		mex := map[int]bool{entry.CPIndex: true}
		for _, other := range entry.Mirrors {
			if other.VirtualID != m.VirtualID {
				mex[other.CPIndex] = true
			}
		}
		mProv, mVID, err := d.rehomePut(entry.PL, m.CPIndex, m.VirtualID, payload, mex)
		if err != nil {
			return fmt.Errorf("core: writing post-state mirror: %w", err)
		}
		if mProv != m.CPIndex {
			if old, e := d.fleet.At(m.CPIndex); e == nil {
				_ = old.Delete(m.VirtualID)
			}
			d.provCount[m.CPIndex]--
			d.provCount[mProv]++
			m.CPIndex = mProv
			m.VirtualID = mVID
		}
	}
	entry.Mislead = inj
	entry.PayloadLen = len(payload)
	entry.DataLen = len(newData)
	entry.Sum = sha256.Sum256(newData)
	d.counters.updates.Add(1)

	// Re-encode parity from the prefetched siblings plus the new payload —
	// never re-reading members through a now-inconsistent stripe.
	if st.Level.ParityShards() == 0 || len(st.Members) == 0 {
		return nil
	}
	shardLen := 1
	payloads := make([][]byte, len(st.Members))
	for i, cidx := range st.Members {
		var pv []byte
		if cidx == chunkIndexOf(d, entry) {
			pv = payload
		} else {
			pv = siblings[cidx]
		}
		payloads[i] = pv
		if len(pv) > shardLen {
			shardLen = len(pv)
		}
	}
	st.ShardLen = shardLen
	return d.writeParityLocked(st, payloads)
}

// chunkIndexOf finds a chunk entry's index in the chunk table; entries are
// stored by value in d.chunks, so pointer arithmetic identifies the slot.
func chunkIndexOf(d *Distributor, entry *chunkEntry) int {
	for i := range d.chunks {
		if &d.chunks[i] == entry {
			return i
		}
	}
	return -1
}

// writeParityLocked pads member payloads to the stripe's shard length,
// encodes parity and writes each parity shard to its provider, failing a
// rejected parity put over to another healthy provider distinct from the
// rest of the stripe.
func (d *Distributor) writeParityLocked(st *stripeEntry, payloads [][]byte) error {
	padded := make([][]byte, len(payloads))
	for i, p := range payloads {
		pad := make([]byte, st.ShardLen)
		copy(pad, p)
		padded[i] = pad
	}
	stripe, err := raid.Encode(st.Level, padded)
	if err != nil {
		return fmt.Errorf("core: re-encode: %w", err)
	}
	var pl privacy.Level
	exclude := make(map[int]bool)
	for _, cidx := range st.Members {
		exclude[d.chunks[cidx].CPIndex] = true
		pl = d.chunks[cidx].PL
	}
	for _, ps := range st.Parity {
		exclude[ps.CPIndex] = true
	}
	for pi := range st.Parity {
		ps := &st.Parity[pi]
		ex := make(map[int]bool, len(exclude))
		for k := range exclude {
			if k != ps.CPIndex {
				ex[k] = true
			}
		}
		prov, vid, err := d.rehomePut(pl, ps.CPIndex, ps.VirtualID, stripe.Shards[len(payloads)+pi], ex)
		if err != nil {
			return fmt.Errorf("core: rewriting parity: %w", err)
		}
		if prov != ps.CPIndex {
			if old, e := d.fleet.At(ps.CPIndex); e == nil {
				_ = old.Delete(ps.VirtualID)
			}
			d.provCount[ps.CPIndex]--
			d.provCount[prov]++
			exclude[prov] = true
			ps.CPIndex = prov
			ps.VirtualID = vid
		}
	}
	return nil
}

// GetSnapshot returns a chunk's pre-modification contents. Misleading
// bytes of the snapshot generation cannot be stripped (the paper's Chunk
// Table keeps only the current M set), so snapshots are only offered for
// chunks that had no injection at snapshot time — the distributor rejects
// the request otherwise.
func (d *Distributor) GetSnapshot(client, password, filename string, serial int) ([]byte, error) {
	d.mu.Lock()
	entry, err := d.lookupChunk(client, password, filename, serial)
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	if entry.SnapVID == "" || entry.SPIndex < 0 {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %s#%d", ErrNoSnapshot, filename, serial)
	}
	spIdx, snapVID := entry.SPIndex, entry.SnapVID
	d.mu.Unlock()
	// Fetch outside the lock; the outcome still feeds health accounting.
	var payload []byte
	err = d.providerOp(spIdx, func(p provider.Provider) error {
		var e error
		payload, e = p.Get(snapVID)
		return e
	})
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// reencodeStripeLocked recomputes and rewrites a stripe's parity shards by
// re-reading every member. Only safe when members and parity are mutually
// consistent (e.g. after relocating a parity shard) — callers that just
// rewrote a member must use writeParityLocked with prefetched payloads
// instead.
func (d *Distributor) reencodeStripeLocked(stripeID int) error {
	st := &d.stripes[stripeID]
	if st.Level.ParityShards() == 0 || len(st.Members) == 0 {
		return nil
	}
	shardLen := 1
	payloads := make([][]byte, len(st.Members))
	for i, cidx := range st.Members {
		m := &d.chunks[cidx]
		payload, err := d.fetchPayloadLocked(m)
		if err != nil {
			return fmt.Errorf("core: re-encode: reading member %d: %w", i, err)
		}
		payloads[i] = payload
		if len(payload) > shardLen {
			shardLen = len(payload)
		}
	}
	st.ShardLen = shardLen
	return d.writeParityLocked(st, payloads)
}
