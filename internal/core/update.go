package core

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/cryptofrag"
	"repro/internal/mislead"
	"repro/internal/provider"
	"repro/internal/raid"
)

// UpdateChunk replaces one chunk's contents. Before the modification the
// chunk's previous state is copied to a snapshot provider: "snapshot
// provider stores the pre-state and cloud provider stores the post-state
// of a chunk after each modification" (paper §IV-A, Chunk Table).
// The stripe's parity is re-encoded over the new contents.
//
// The write runs in three phases. Plan (under d.mu): validate, build the
// new payload, snapshot fetch plans for the pre-state and every stripe
// sibling, and stage fresh virtual ids for every blob the update will
// produce — snapshot, post-state, mirrors and parity all get new ids, so
// nothing stored for the old generation is overwritten or deleted until
// the new generation is fully durable. Ship (no lock): read the
// pre-state and siblings, then write every new blob with failover. Any
// failure aborts with the tables untouched: the chunk row, provider
// counts and the previous snapshot all keep serving. Commit (under
// d.mu): re-check the file's generation — a concurrent mutation means
// ErrConflict and a rollback of the new blobs — then swap every row
// field at once and retire the superseded blobs.
func (d *Distributor) UpdateChunk(client, password, filename string, serial int, newData []byte, opts UploadOptions) error {
	if opts.MisleadFraction < 0 || opts.MisleadFraction >= 1 {
		return fmt.Errorf("%w: mislead fraction %v outside [0,1)", ErrConfig, opts.MisleadFraction)
	}

	// ---- Plan ----
	d.mu.Lock()
	entry, err := d.lookupChunk(client, password, filename, serial)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	fe := d.clients[client].Files[filename]
	fileGen := fe.Gen
	entryIdx := fe.ChunkIdx[serial]

	// Build the new payload: encrypted files stay encrypted; otherwise a
	// fresh mislead injection if requested. This stays in the plan phase
	// because the mislead RNG and the encryption nonce are d.mu-guarded.
	payload := newData
	var inj mislead.Injection
	switch {
	case entry.EncKey != nil:
		if opts.MisleadFraction > 0 || len(opts.MisleadLines) > 0 {
			d.mu.Unlock()
			return fmt.Errorf("%w: misleading data and encryption are mutually exclusive", ErrConfig)
		}
		payload, err = cryptofrag.Encrypt(entry.EncKey, newData, d.nextEncNonce())
	case len(opts.MisleadLines) > 0:
		payload, inj, err = mislead.InjectLines(newData, opts.MisleadLines, d.misleadRNG)
	case opts.MisleadFraction > 0:
		payload, inj, err = mislead.Inject(newData, opts.MisleadFraction, d.misleadRNG)
	default:
		cp := make([]byte, len(newData))
		copy(cp, newData)
		payload = cp
	}
	if err != nil {
		d.mu.Unlock()
		return err
	}

	// Snapshot the row being replaced and its stripe geometry.
	old := *entry
	old.Mirrors = append([]mirrorRef(nil), entry.Mirrors...)
	st := &d.stripes[entry.StripeID]
	stripeID := entry.StripeID
	level := st.Level
	members := append([]int(nil), st.Members...)
	oldParity := append([]parityShard(nil), st.Parity...)
	pl := entry.PL

	// Fetch plans: the pre-state, and — when the stripe carries parity —
	// every sibling member, planned NOW while parity is still consistent
	// with the members. Reading them after the post-state write would let
	// an unreachable sibling be "reconstructed" through stale parity.
	pre := d.planFetch(entry)
	type sibling struct {
		chunkIdx int
		plan     fetchPlan
		provIdx  int
		name     string
		serial   int
	}
	var sibs []sibling
	if level.ParityShards() > 0 {
		for _, cidx := range members {
			m := &d.chunks[cidx]
			if m.VirtualID == entry.VirtualID {
				continue
			}
			sibs = append(sibs, sibling{
				chunkIdx: cidx, plan: d.planFetch(m), provIdx: m.CPIndex,
				name: m.Filename, serial: m.Serial,
			})
		}
	}

	// Stage fresh virtual ids for every blob of the new generation. The
	// post-state gets a new id even when it stays on the same provider:
	// the old blob must survive untouched until commit.
	t := d.newTicketLocked()
	spIdx, err := d.pickSnapshotProvider(pl, old.CPIndex)
	if err != nil {
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		return err
	}
	snapVID := d.vids.Next()
	d.stageLocked(t, spIdx, snapVID)
	postVID := d.vids.Next()
	d.stageLocked(t, old.CPIndex, postVID)
	newMirrors := make([]mirrorRef, len(old.Mirrors))
	for i, m := range old.Mirrors {
		newMirrors[i] = mirrorRef{VirtualID: d.vids.Next(), CPIndex: m.CPIndex}
		d.stageLocked(t, m.CPIndex, newMirrors[i].VirtualID)
	}
	newParity := make([]parityShard, len(oldParity))
	for i, ps := range oldParity {
		newParity[i] = parityShard{VirtualID: d.vids.Next(), CPIndex: ps.CPIndex}
		d.stageLocked(t, ps.CPIndex, newParity[i].VirtualID)
	}
	d.mu.Unlock()

	// ---- Ship: all provider I/O happens without the lock ----
	var stored []storedShard
	abort := func(err error) error {
		d.rollbackStored(stored)
		d.releaseTicket(t)
		return err
	}

	oldPayload, err := d.fetchPayloadPlan(&pre)
	if err != nil {
		return abort(fmt.Errorf("core: reading pre-state: %w", err))
	}
	sibPayloads := make([][]byte, len(sibs))
	sibJobs := make([]func() error, len(sibs))
	for i := range sibs {
		i := i
		sibJobs[i] = func() error {
			data, err := d.fetchPayloadPlan(&sibs[i].plan)
			if err != nil {
				return fmt.Errorf("core: reading stripe sibling %s#%d before update: %w", sibs[i].name, sibs[i].serial, err)
			}
			sibPayloads[i] = data
			return nil
		}
	}
	if err := d.fanOut(sibJobs); err != nil {
		return abort(err)
	}

	// Snapshot first: the pre-state must be durable somewhere new before
	// anything else is worth writing.
	spIdx, snapVID, err = d.rehomePut(pl, spIdx, snapVID, oldPayload, map[int]bool{old.CPIndex: true}, t)
	if err != nil {
		return abort(fmt.Errorf("core: writing snapshot: %w", err))
	}
	stored = append(stored, storedShard{spIdx, snapVID})

	// Post-state, excluding every provider holding a sibling, parity
	// shard or mirror of this chunk.
	exclude := make(map[int]bool)
	for _, s := range sibs {
		exclude[s.provIdx] = true
	}
	for _, ps := range oldParity {
		exclude[ps.CPIndex] = true
	}
	for _, m := range old.Mirrors {
		exclude[m.CPIndex] = true
	}
	postProv, postVIDFinal, err := d.rehomePut(pl, old.CPIndex, postVID, payload, exclude, t)
	if err != nil {
		return abort(fmt.Errorf("core: writing post-state: %w", err))
	}
	postVID = postVIDFinal
	stored = append(stored, storedShard{postProv, postVID})

	for mi := range newMirrors {
		mex := map[int]bool{postProv: true}
		for mj := range newMirrors {
			if mj != mi {
				mex[newMirrors[mj].CPIndex] = true
			}
		}
		mProv, mVID, err := d.rehomePut(pl, newMirrors[mi].CPIndex, newMirrors[mi].VirtualID, payload, mex, t)
		if err != nil {
			return abort(fmt.Errorf("core: writing post-state mirror: %w", err))
		}
		newMirrors[mi] = mirrorRef{VirtualID: mVID, CPIndex: mProv}
		stored = append(stored, storedShard{mProv, mVID})
	}

	// Re-encode parity from the prefetched siblings plus the new payload —
	// never re-reading members through a now-inconsistent stripe.
	shardLen := 0
	if level.ParityShards() > 0 && len(members) > 0 {
		shardLen = 1
		payloads := make([][]byte, len(members))
		for i, cidx := range members {
			pv := payload
			if cidx != entryIdx {
				for j, s := range sibs {
					if s.chunkIdx == cidx {
						pv = sibPayloads[j]
						break
					}
				}
			}
			payloads[i] = pv
			if len(pv) > shardLen {
				shardLen = len(pv)
			}
		}
		// Pooled scratch: zero-padded copies for short shards plus the
		// parity outputs. Providers copy on Put, so everything drawn here
		// is dead once the parity writes finish.
		var pooled [][]byte
		defer func() {
			for _, b := range pooled {
				bufpool.Put(b)
			}
		}()
		padded := make([][]byte, len(payloads))
		for i, p := range payloads {
			if len(p) == shardLen {
				padded[i] = p
				continue
			}
			pad := bufpool.Get(shardLen)
			n := copy(pad, p)
			clear(pad[n:])
			padded[i] = pad
			pooled = append(pooled, pad)
		}
		parityBufs := make([][]byte, len(newParity))
		for pi := range parityBufs {
			parityBufs[pi] = bufpool.Get(shardLen)
			pooled = append(pooled, parityBufs[pi])
		}
		if err := raid.ParityInto(level, padded, parityBufs); err != nil {
			return abort(fmt.Errorf("core: re-encode: %w", err))
		}
		for pi := range newParity {
			pex := map[int]bool{postProv: true}
			for _, s := range sibs {
				pex[s.provIdx] = true
			}
			for pj := range newParity {
				if pj != pi {
					pex[newParity[pj].CPIndex] = true
				}
			}
			pProv, pVID, err := d.rehomePut(pl, newParity[pi].CPIndex, newParity[pi].VirtualID, parityBufs[pi], pex, t)
			if err != nil {
				return abort(fmt.Errorf("core: rewriting parity: %w", err))
			}
			newParity[pi] = parityShard{VirtualID: pVID, CPIndex: pProv}
			stored = append(stored, storedShard{pProv, pVID})
		}
	}

	// ---- Commit: swap the row atomically, or detect a lost race ----
	d.mu.Lock()
	c := d.clients[client]
	feNow, ok := c.Files[filename]
	if !ok || feNow != fe || feNow.Gen != fileGen {
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		d.rollbackStored(stored)
		return fmt.Errorf("%w: %s#%d changed during update", ErrConflict, filename, serial)
	}
	e := &d.chunks[entryIdx]
	newEntry := *e
	newEntry.VirtualID = postVID
	newEntry.CPIndex = postProv
	newEntry.SPIndex = spIdx
	newEntry.SnapVID = snapVID
	newEntry.Mirrors = newMirrors
	newEntry.Mislead = inj
	newEntry.PayloadLen = len(payload)
	newEntry.DataLen = len(newData)
	newEntry.Sum = sha256.Sum256(newData)
	rec := &walRecord{
		Op: "update", Client: client, Filename: filename, Serial: serial,
		StripeID: stripeID, Chunk: newEntry, Parity: newParity, ShardLen: shardLen,
		FileGen: fe.Gen + 1, Gen: d.gen + 1,
	}
	if err := d.logAppendLocked(rec); err != nil {
		d.releaseTicketLocked(t)
		d.mu.Unlock()
		d.rollbackStored(stored)
		return fmt.Errorf("core: update aborted: %w", err)
	}
	retired := []storedShard{{old.CPIndex, old.VirtualID}}
	d.provCount[old.CPIndex]--
	for _, m := range old.Mirrors {
		retired = append(retired, storedShard{m.CPIndex, m.VirtualID})
		d.provCount[m.CPIndex]--
	}
	for _, ps := range oldParity {
		retired = append(retired, storedShard{ps.CPIndex, ps.VirtualID})
		d.provCount[ps.CPIndex]--
	}
	if old.SnapVID != "" && old.SPIndex >= 0 {
		retired = append(retired, storedShard{old.SPIndex, old.SnapVID})
		d.provCount[old.SPIndex]--
	}
	d.commitTicketLocked(t)
	*e = newEntry
	stNow := &d.stripes[stripeID]
	stNow.Parity = newParity
	if shardLen > 0 {
		stNow.ShardLen = shardLen
	}
	fe.Gen++
	d.gen++
	// Drop the superseded generation's cached bytes eagerly. The key uses
	// fileGen (the generation this update planned against — the one
	// readers of the old bytes inserted under); entries under even older
	// generations are already unreachable and age out.
	d.cache.remove(cacheKey{fid: fe.FID, serial: serial, gen: fileGen})
	d.counters.updates.Add(1)
	d.maybeCheckpointLocked()
	d.mu.Unlock()

	// Retire the superseded generation, best-effort: every blob is
	// unreferenced by the committed tables, so a failed delete is later
	// detectable as a VID orphan.
	for _, s := range retired {
		if p, e := d.fleet.At(s.provIdx); e == nil {
			_ = p.Delete(s.vid)
		}
	}
	return nil
}

// GetSnapshot returns a chunk's pre-modification contents. Misleading
// bytes of the snapshot generation cannot be stripped (the paper's Chunk
// Table keeps only the current M set), so snapshots are only offered for
// chunks that had no injection at snapshot time — the distributor rejects
// the request otherwise.
func (d *Distributor) GetSnapshot(client, password, filename string, serial int) ([]byte, error) {
	d.mu.RLock()
	entry, err := d.lookupChunk(client, password, filename, serial)
	if err != nil {
		d.mu.RUnlock()
		return nil, err
	}
	if entry.SnapVID == "" || entry.SPIndex < 0 {
		d.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s#%d", ErrNoSnapshot, filename, serial)
	}
	spIdx, snapVID := entry.SPIndex, entry.SnapVID
	d.mu.RUnlock()
	// Fetch outside the lock; the outcome still feeds health accounting.
	var payload []byte
	err = d.providerOp(spIdx, func(p provider.Provider) error {
		var e error
		payload, e = p.Get(snapVID)
		return e
	})
	if err != nil {
		return nil, err
	}
	return payload, nil
}
