package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/privacy"
)

// metadataSnapshot is the replicated state of a distributor: everything a
// secondary needs to serve retrievals (Fig. 2's extended architecture).
type metadataSnapshot struct {
	Clients   map[string]*clientEntry
	Chunks    []chunkEntry
	Stripes   []stripeEntry
	ProvCount []int
}

// ExportMetadata serializes the distributor's tables for replication to
// secondary distributors. Because mutations stage off-table and only
// touch the live tables in their commit phase (under d.mu), the snapshot
// always reflects a consistent committed state: no half-shipped upload's
// rows, pending provider counts or reservations ever leak into it.
func (d *Distributor) ExportMetadata() ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	snap := metadataSnapshot{
		Clients:   d.clients,
		Chunks:    d.chunks,
		Stripes:   d.stripes,
		ProvCount: d.provCount,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("core: export metadata: %w", err)
	}
	return buf.Bytes(), nil
}

// ImportMetadata replaces the distributor's tables with a snapshot
// exported by another distributor over the same fleet.
func (d *Distributor) ImportMetadata(data []byte) error {
	var snap metadataSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("core: import metadata: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(snap.ProvCount) != d.fleet.Len() {
		return fmt.Errorf("%w: snapshot covers %d providers, fleet has %d", ErrConfig, len(snap.ProvCount), d.fleet.Len())
	}
	if snap.Clients == nil {
		snap.Clients = map[string]*clientEntry{}
	}
	d.clients = snap.Clients
	d.chunks = snap.Chunks
	d.stripes = snap.Stripes
	d.provCount = snap.ProvCount
	// A durable secondary must checkpoint immediately: its log records
	// predate the imported tables and no longer replay against them.
	if d.wal != nil && !d.closed {
		if err := d.checkpointLocked(); err != nil {
			return fmt.Errorf("core: import metadata: %w", err)
		}
	}
	return nil
}

// Cluster is the paper's extended architecture (Fig. 2): several Cloud
// Data Distributors over one provider fleet. "For each client, a specific
// distributor will act as the primary distributor that will upload data,
// whereas other distributors will act as secondary distributors who can
// perform the data retrieval operations." The primary's metadata is
// replicated to the secondaries after every mutation, so retrieval keeps
// working when the primary fails — eliminating the single point of
// failure the paper's §IV-C identifies.
type Cluster struct {
	mu    sync.Mutex
	dists []*Distributor
	down  []bool
}

// NewCluster groups distributors; the first is the primary. All must
// share the same provider fleet.
func NewCluster(dists ...*Distributor) (*Cluster, error) {
	if len(dists) == 0 {
		return nil, fmt.Errorf("%w: empty cluster", ErrConfig)
	}
	for _, dd := range dists[1:] {
		if dd.fleet != dists[0].fleet {
			return nil, fmt.Errorf("%w: distributors must share one fleet", ErrConfig)
		}
	}
	return &Cluster{dists: dists, down: make([]bool, len(dists))}, nil
}

// Primary returns the upload distributor.
func (c *Cluster) Primary() *Distributor { return c.dists[0] }

// Size returns the number of distributors.
func (c *Cluster) Size() int { return len(c.dists) }

// SetDown simulates a distributor failure (index 0 is the primary).
func (c *Cluster) SetDown(i int, down bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.dists) {
		return fmt.Errorf("%w: distributor index %d", ErrConfig, i)
	}
	c.down[i] = down
	return nil
}

// Sync replicates the primary's metadata to every secondary.
func (c *Cluster) Sync() error {
	snap, err := c.dists[0].ExportMetadata()
	if err != nil {
		return err
	}
	for i, dd := range c.dists[1:] {
		if err := dd.ImportMetadata(snap); err != nil {
			return fmt.Errorf("core: sync to secondary %d: %w", i+1, err)
		}
	}
	return nil
}

// primaryUp reports whether uploads can proceed.
func (c *Cluster) primaryUp() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.down[0]
}

// RegisterClient registers on the primary and replicates.
func (c *Cluster) RegisterClient(name string) error {
	if !c.primaryUp() {
		return fmt.Errorf("%w: primary distributor down", ErrUnavailable)
	}
	if err := c.dists[0].RegisterClient(name); err != nil {
		return err
	}
	return c.Sync()
}

// AddPassword adds a password on the primary and replicates.
func (c *Cluster) AddPassword(client, password string, pl privacy.Level) error {
	if !c.primaryUp() {
		return fmt.Errorf("%w: primary distributor down", ErrUnavailable)
	}
	if err := c.dists[0].AddPassword(client, password, pl); err != nil {
		return err
	}
	return c.Sync()
}

// Upload uploads through the primary and replicates metadata.
func (c *Cluster) Upload(client, password, filename string, data []byte, pl privacy.Level, opts UploadOptions) (FileInfo, error) {
	if !c.primaryUp() {
		return FileInfo{}, fmt.Errorf("%w: primary distributor down", ErrUnavailable)
	}
	info, err := c.dists[0].Upload(client, password, filename, data, pl, opts)
	if err != nil {
		return FileInfo{}, err
	}
	return info, c.Sync()
}

// eachUp visits distributors (primary first) until fn succeeds.
func (c *Cluster) eachUp(fn func(*Distributor) error) error {
	var lastErr error = fmt.Errorf("%w: all distributors down", ErrUnavailable)
	for i, dd := range c.dists {
		c.mu.Lock()
		down := c.down[i]
		c.mu.Unlock()
		if down {
			continue
		}
		if err := fn(dd); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// GetChunk retrieves via the first healthy distributor.
func (c *Cluster) GetChunk(client, password, filename string, serial int) ([]byte, error) {
	var out []byte
	err := c.eachUp(func(dd *Distributor) error {
		data, err := dd.GetChunk(client, password, filename, serial)
		if err != nil {
			return err
		}
		out = data
		return nil
	})
	return out, err
}

// GetFile retrieves a whole file via the first healthy distributor.
func (c *Cluster) GetFile(client, password, filename string) ([]byte, error) {
	var out []byte
	err := c.eachUp(func(dd *Distributor) error {
		data, err := dd.GetFile(client, password, filename)
		if err != nil {
			return err
		}
		out = data
		return nil
	})
	return out, err
}
