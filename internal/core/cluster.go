package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"repro/internal/privacy"
)

// metadataSnapshot is the full replicated state of a distributor:
// everything a secondary needs to serve retrievals (Fig. 2's extended
// architecture) plus the commit generation and allocator watermarks, so
// an imported snapshot leaves the replica able to take over as primary
// without re-issuing identifiers the exporter already used.
type metadataSnapshot struct {
	Clients   map[string]*clientEntry
	Chunks    []chunkEntry
	Stripes   []stripeEntry
	ProvCount []int
	Gen       uint64
	FIDSeq    uint64
	EncNonce  uint64
	VIDCtr    uint64
}

// ExportMetadata serializes the distributor's tables for replication to
// secondary distributors. Because mutations stage off-table and only
// touch the live tables in their commit phase (under d.mu), the snapshot
// always reflects a consistent committed state: no half-shipped upload's
// rows, pending provider counts or reservations ever leak into it.
func (d *Distributor) ExportMetadata() ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.exportMetadataLocked()
}

// exportMetadataLocked is ExportMetadata under a caller-held read lock,
// so a Cluster can pin the replication sequence number to the exact
// state it serializes.
func (d *Distributor) exportMetadataLocked() ([]byte, error) {
	snap := metadataSnapshot{
		Clients:   d.clients,
		Chunks:    d.chunks,
		Stripes:   d.stripes,
		ProvCount: d.provCount,
		Gen:       d.gen,
		FIDSeq:    d.fidSeq,
		EncNonce:  d.encNonce,
	}
	if prf, ok := d.vids.(*prfAllocator); ok {
		snap.VIDCtr = prf.ctr
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("core: export metadata: %w", err)
	}
	return buf.Bytes(), nil
}

// ImportMetadata replaces the distributor's tables with a snapshot
// exported by another distributor over the same fleet. The generation
// is taken from the snapshot and the allocator watermarks only ever
// advance — a replica must never re-issue a nonce or id its primary
// already consumed.
func (d *Distributor) ImportMetadata(data []byte) error {
	var snap metadataSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("core: import metadata: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(snap.ProvCount) != d.fleet.Len() {
		return fmt.Errorf("%w: snapshot covers %d providers, fleet has %d", ErrConfig, len(snap.ProvCount), d.fleet.Len())
	}
	if snap.Clients == nil {
		snap.Clients = map[string]*clientEntry{}
	}
	d.clients = snap.Clients
	d.chunks = snap.Chunks
	d.stripes = snap.Stripes
	d.provCount = snap.ProvCount
	d.gen = snap.Gen
	if snap.FIDSeq > d.fidSeq {
		d.fidSeq = snap.FIDSeq
	}
	if snap.EncNonce > d.encNonce {
		d.encNonce = snap.EncNonce
	}
	d.restoreVIDCtr(snap.VIDCtr)
	// A durable secondary must checkpoint immediately: its log records
	// predate the imported tables and no longer replay against them.
	if d.wal != nil && !d.closed {
		if err := d.checkpointLocked(); err != nil {
			return fmt.Errorf("core: import metadata: %w", err)
		}
	}
	return nil
}

// clusterLogRetention bounds the in-memory replication log. A secondary
// that falls further behind than this (a long outage) is caught up with
// one full snapshot instead of an unbounded record queue.
const clusterLogRetention = 4096

// Cluster is the paper's extended architecture (Fig. 2): several Cloud
// Data Distributors over one provider fleet. "For each client, a specific
// distributor will act as the primary distributor that will upload data,
// whereas other distributors will act as secondary distributors who can
// perform the data retrieval operations."
//
// Replication is incremental: the primary's commit hook feeds every
// committed mutation's encoded WAL record into a bounded in-memory log,
// and Sync ships only the records a secondary has not applied yet —
// O(mutation) per op instead of the old full-snapshot-per-mutation
// O(table) behavior. Each secondary applies records through the same
// validated replay path recovery uses; a conflict (generation running
// backwards) or any structural mismatch flips the member to a full
// snapshot resync. Reads fail over primary-first and are served off the
// follower's ordinary RWMutex/hedged read path.
//
// A distributor can be the primary of at most one Cluster at a time:
// NewCluster installs the cluster's commit hook on it, displacing any
// previous one.
type Cluster struct {
	mu    sync.Mutex
	dists []*Distributor
	down  []bool

	// Replication log: log[k] is the encoded commit record with sequence
	// number logBase+k; head is the newest sequence (0 = nothing yet),
	// applied[i] the last sequence member i has applied (applied[0]
	// tracks the primary and always equals head), needSnap[i] marks a
	// secondary whose next sync must ship a full snapshot.
	log      [][]byte
	logBase  uint64
	head     uint64
	applied  []uint64
	needSnap []bool

	recordsReplicated uint64
	snapshotSyncs     uint64

	// syncMu[i-1] serializes catch-up of secondary i, so concurrent
	// Syncs cannot double-apply a batch. Ordered above c.mu and every
	// distributor lock.
	syncMu []sync.Mutex
}

// NewCluster groups distributors; the first is the primary. All must
// share the same provider fleet. Secondaries whose commit generation
// differs from the primary's at grouping time (a recovered or foreign
// replica) are marked for a snapshot resync on first Sync; equal
// generations are trusted to mean equal state, which holds for replicas
// of one WAL lineage.
func NewCluster(dists ...*Distributor) (*Cluster, error) {
	if len(dists) == 0 {
		return nil, fmt.Errorf("%w: empty cluster", ErrConfig)
	}
	for _, dd := range dists[1:] {
		if dd.fleet != dists[0].fleet {
			return nil, fmt.Errorf("%w: distributors must share one fleet", ErrConfig)
		}
	}
	c := &Cluster{
		dists:    dists,
		down:     make([]bool, len(dists)),
		logBase:  1,
		applied:  make([]uint64, len(dists)),
		needSnap: make([]bool, len(dists)),
		syncMu:   make([]sync.Mutex, len(dists)-1),
	}
	pgen := dists[0].Generation()
	for i, dd := range dists[1:] {
		if dd.Generation() != pgen {
			c.needSnap[i+1] = true
		}
	}
	dists[0].setCommitHook(func(raw []byte) {
		// Runs under the primary's d.mu; lock order is d.mu before c.mu,
		// so nothing here (or anywhere holding c.mu) may call back into
		// a distributor.
		c.mu.Lock()
		c.head++
		c.log = append(c.log, raw)
		c.applied[0] = c.head
		// Bound the queue even if nobody ever calls Sync: beyond twice
		// the retention, fold back to retention (amortized O(1));
		// trimmed-past members resync via snapshot.
		if len(c.log) >= 2*clusterLogRetention {
			rest := make([][]byte, clusterLogRetention)
			copy(rest, c.log[len(c.log)-clusterLogRetention:])
			c.logBase += uint64(len(c.log) - clusterLogRetention)
			c.log = rest
		}
		c.mu.Unlock()
	})
	return c, nil
}

// Primary returns the upload distributor.
func (c *Cluster) Primary() *Distributor { return c.dists[0] }

// Size returns the number of distributors.
func (c *Cluster) Size() int { return len(c.dists) }

// SetDown simulates a distributor failure (index 0 is the primary).
// Bringing a secondary back up replays everything it missed before it
// serves again, so a healed replica never answers from stale tables.
func (c *Cluster) SetDown(i int, down bool) error {
	c.mu.Lock()
	if i < 0 || i >= len(c.dists) {
		c.mu.Unlock()
		return fmt.Errorf("%w: distributor index %d", ErrConfig, i)
	}
	was := c.down[i]
	c.down[i] = down
	c.mu.Unlock()
	if was && !down && i > 0 {
		return c.syncSecondary(i)
	}
	return nil
}

// Sync replicates the primary's outstanding commit records to every up
// secondary. Down secondaries are skipped — their lag is visible via
// Lag() and they catch up when SetDown brings them back — instead of
// the old behavior of silently shipping snapshots nobody could serve.
func (c *Cluster) Sync() error {
	var errs []error
	for i := 1; i < len(c.dists); i++ {
		c.mu.Lock()
		down := c.down[i]
		c.mu.Unlock()
		if down {
			continue
		}
		if err := c.syncSecondary(i); err != nil {
			errs = append(errs, fmt.Errorf("core: sync to secondary %d: %w", i, err))
		}
	}
	c.mu.Lock()
	c.trimLocked()
	c.mu.Unlock()
	return errors.Join(errs...)
}

// syncSecondary replays secondary i forward to the primary's head:
// incrementally when the retained log still covers its cursor, with one
// full snapshot when it does not (or when a record refuses to apply).
func (c *Cluster) syncSecondary(i int) error {
	c.syncMu[i-1].Lock()
	defer c.syncMu[i-1].Unlock()
	for {
		c.mu.Lock()
		snap := c.needSnap[i] || c.applied[i]+1 < c.logBase
		var batch [][]byte
		if !snap {
			if c.applied[i] >= c.head {
				c.mu.Unlock()
				return nil
			}
			batch = append([][]byte(nil), c.log[c.applied[i]+1-c.logBase:]...)
		}
		c.mu.Unlock()

		if snap {
			return c.snapshotSync(i)
		}
		for _, raw := range batch {
			if _, err := c.dists[i].ApplyReplicated(raw); err != nil {
				c.mu.Lock()
				c.needSnap[i] = true
				c.mu.Unlock()
				if snapErr := c.snapshotSync(i); snapErr != nil {
					return errors.Join(err, snapErr)
				}
				return nil
			}
			c.mu.Lock()
			c.applied[i]++
			c.recordsReplicated++
			c.mu.Unlock()
		}
	}
}

// snapshotSync ships one full metadata snapshot to secondary i and
// fast-forwards its cursor to the sequence the snapshot covers.
func (c *Cluster) snapshotSync(i int) error {
	raw, upTo, err := c.exportPrimaryWithSeq()
	if err != nil {
		return err
	}
	if err := c.dists[i].ImportMetadata(raw); err != nil {
		return err
	}
	c.mu.Lock()
	c.applied[i] = upTo
	c.needSnap[i] = false
	c.snapshotSyncs++
	c.mu.Unlock()
	return nil
}

// exportPrimaryWithSeq snapshots the primary's tables together with the
// replication sequence the snapshot covers. Commits append to the
// cluster log under the primary's write lock, so holding its read lock
// pins head to exactly the serialized state — no record can land in
// between and be skipped by the fast-forwarded cursor.
func (c *Cluster) exportPrimaryWithSeq() ([]byte, uint64, error) {
	p := c.dists[0]
	p.mu.RLock()
	defer p.mu.RUnlock()
	c.mu.Lock()
	upTo := c.head
	c.mu.Unlock()
	raw, err := p.exportMetadataLocked()
	return raw, upTo, err
}

// trimLocked drops log entries every reachable secondary has applied
// and bounds the rest to clusterLogRetention; a member trimmed past is
// detected by its cursor falling behind logBase and resynced with a
// snapshot. Callers hold c.mu.
func (c *Cluster) trimLocked() {
	min := c.head
	for i := 1; i < len(c.dists); i++ {
		if c.needSnap[i] || c.applied[i]+1 < c.logBase {
			continue
		}
		if c.applied[i] < min {
			min = c.applied[i]
		}
	}
	drop := int(min + 1 - c.logBase)
	if over := len(c.log) - drop - clusterLogRetention; over > 0 {
		drop += over
	}
	if drop <= 0 {
		return
	}
	rest := make([][]byte, len(c.log)-drop)
	copy(rest, c.log[drop:])
	c.log = rest
	c.logBase += uint64(drop)
}

// ReplicaLag is one cluster member's replication position: how far its
// applied state trails the primary, in commit records and generations.
type ReplicaLag struct {
	Index        int    `json:"index"`
	Role         string `json:"role"` // "primary" or "secondary"
	Down         bool   `json:"down"`
	Generation   uint64 `json:"generation"`  // member's last-applied commit generation
	AppliedSeq   uint64 `json:"applied_seq"` // last replication sequence applied
	LagRecords   uint64 `json:"lag_records"` // commit records behind the primary
	NeedSnapshot bool   `json:"needs_snapshot,omitempty"`
}

// Lag reports every member's replication position, primary first. This
// is the staleness the old Sync hid: a down secondary keeps serving its
// last-applied generation, and the gap is visible here (and on
// /v1/health) instead of silently growing.
func (c *Cluster) Lag() []ReplicaLag {
	c.mu.Lock()
	out := make([]ReplicaLag, len(c.dists))
	for i := range c.dists {
		out[i] = ReplicaLag{
			Index:        i,
			Role:         "secondary",
			Down:         c.down[i],
			AppliedSeq:   c.applied[i],
			LagRecords:   c.head - c.applied[i],
			NeedSnapshot: c.needSnap[i],
		}
	}
	out[0].Role = "primary"
	c.mu.Unlock()
	// Generations are read outside c.mu: distributor locks are ordered
	// above the cluster lock.
	for i := range out {
		out[i].Generation = c.dists[i].Generation()
	}
	return out
}

// ReplicationStats summarizes the cluster's replication machinery, for
// tests and operator tooling.
type ReplicationStats struct {
	Head              uint64 // commit records fed by the primary
	RecordsReplicated uint64 // incremental applies across all secondaries
	SnapshotSyncs     uint64 // full-snapshot fallbacks
	LogLen            int    // records currently retained
}

// ReplicationStats returns a snapshot of the replication counters.
func (c *Cluster) ReplicationStats() ReplicationStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ReplicationStats{
		Head:              c.head,
		RecordsReplicated: c.recordsReplicated,
		SnapshotSyncs:     c.snapshotSyncs,
		LogLen:            len(c.log),
	}
}

// primaryUp reports whether uploads can proceed.
func (c *Cluster) primaryUp() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.down[0]
}

// RegisterClient registers on the primary and replicates.
func (c *Cluster) RegisterClient(name string) error {
	if !c.primaryUp() {
		return fmt.Errorf("%w: primary distributor down", ErrUnavailable)
	}
	if err := c.dists[0].RegisterClient(name); err != nil {
		return err
	}
	return c.Sync()
}

// AddPassword adds a password on the primary and replicates.
func (c *Cluster) AddPassword(client, password string, pl privacy.Level) error {
	if !c.primaryUp() {
		return fmt.Errorf("%w: primary distributor down", ErrUnavailable)
	}
	if err := c.dists[0].AddPassword(client, password, pl); err != nil {
		return err
	}
	return c.Sync()
}

// Upload uploads through the primary and replicates metadata.
func (c *Cluster) Upload(client, password, filename string, data []byte, pl privacy.Level, opts UploadOptions) (FileInfo, error) {
	if !c.primaryUp() {
		return FileInfo{}, fmt.Errorf("%w: primary distributor down", ErrUnavailable)
	}
	info, err := c.dists[0].Upload(client, password, filename, data, pl, opts)
	if err != nil {
		return FileInfo{}, err
	}
	return info, c.Sync()
}

// eachUp visits distributors (primary first) until fn succeeds.
func (c *Cluster) eachUp(fn func(*Distributor) error) error {
	var lastErr error = fmt.Errorf("%w: all distributors down", ErrUnavailable)
	for i, dd := range c.dists {
		c.mu.Lock()
		down := c.down[i]
		c.mu.Unlock()
		if down {
			continue
		}
		if err := fn(dd); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// GetChunk retrieves via the first healthy distributor.
func (c *Cluster) GetChunk(client, password, filename string, serial int) ([]byte, error) {
	var out []byte
	err := c.eachUp(func(dd *Distributor) error {
		data, err := dd.GetChunk(client, password, filename, serial)
		if err != nil {
			return err
		}
		out = data
		return nil
	})
	return out, err
}

// GetFile retrieves a whole file via the first healthy distributor.
func (c *Cluster) GetFile(client, password, filename string) ([]byte, error) {
	var out []byte
	err := c.eachUp(func(dd *Distributor) error {
		data, err := dd.GetFile(client, password, filename)
		if err != nil {
			return err
		}
		out = data
		return nil
	})
	return out, err
}
