package core

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/cryptofrag"
	"repro/internal/mislead"
	"repro/internal/provider"
	"repro/internal/raid"
)

// GetChunk serves one chunk to a client holding a sufficiently privileged
// password — the paper's get_chunk(client name, password, filename,
// sl no.). If the chunk's provider is unreachable the distributor
// transparently reconstructs the chunk from the stripe's surviving shards.
func (d *Distributor) GetChunk(client, password, filename string, serial int) ([]byte, error) {
	d.mu.RLock()
	entry, err := d.lookupChunk(client, password, filename, serial)
	if err != nil {
		d.mu.RUnlock()
		return nil, err
	}
	d.counters.chunkReads.Add(1)
	fe := d.clients[client].Files[filename]
	key := cacheKey{fid: fe.FID, serial: serial, gen: fe.Gen}
	if data, ok := d.cache.get(key); ok {
		d.mu.RUnlock()
		return data, nil
	}
	plan := d.planFetch(entry)
	d.mu.RUnlock()
	// The provider round-trips happen outside d.mu so one slow or dark
	// provider cannot stall every other client request; concurrent misses
	// on the same chunk generation coalesce into one fetch.
	data, shared, err := d.flights.do(key, func() ([]byte, error) {
		return d.fetchChunkPlan(&plan)
	})
	if err != nil {
		return nil, err
	}
	if shared {
		return data, nil
	}
	// A reader that raced a commit inserts under the generation it planned
	// against; if that generation is already superseded the entry is
	// unreachable (no future reader computes the old key) and ages out.
	d.cache.put(key, data)
	return data, nil
}

// GetFile serves a whole file — the paper's get_file(client name,
// password, filename). Chunks are fetched with bounded parallelism
// ("This approach exploits the benefit of parallel query processing as
// various fragments can be accessed simultaneously").
func (d *Distributor) GetFile(client, password, filename string) ([]byte, error) {
	d.mu.RLock()
	c, _, err := d.auth(client, password)
	if err != nil {
		d.mu.RUnlock()
		return nil, err
	}
	fe, ok := c.Files[filename]
	if !ok {
		d.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	if _, err := d.authorize(client, password, fe.PL); err != nil {
		d.mu.RUnlock()
		return nil, err
	}
	// Snapshot every chunk's fetch plan under the read lock, then do all
	// the provider I/O outside it. Chunks resident in the cache skip
	// planning entirely: their recovered bytes are copied out here (the
	// cache is generation-keyed, so fe.Gen under this lock pins a
	// consistent view) and the fan-out below only places them.
	fid, fileGen := fe.FID, fe.Gen
	plans := make([]fetchPlan, len(fe.ChunkIdx))
	var cached [][]byte
	if d.cache != nil {
		cached = make([][]byte, len(fe.ChunkIdx))
	}
	for serial, idx := range fe.ChunkIdx {
		if idx < 0 {
			d.mu.RUnlock()
			return nil, fmt.Errorf("%w: serial %d was removed", ErrNoSuchChunk, serial)
		}
		if cached != nil {
			if data, ok := d.cache.get(cacheKey{fid: fid, serial: serial, gen: fileGen}); ok {
				cached[serial] = data
				continue
			}
		}
		plans[serial] = d.planFetch(&d.chunks[idx])
	}
	d.mu.RUnlock()

	// The whole file is assembled into one buffer sized from the chunk
	// entries' data lengths; each fetch job recovers its chunk directly
	// into its segment (offset = prefix sum of the preceding chunks), so
	// no per-chunk result slices or final concatenation exist.
	offs := make([]int, len(plans)+1)
	for serial := range plans {
		n := plans[serial].entry.DataLen
		if cached != nil && cached[serial] != nil {
			n = len(cached[serial]) // cache stores recovered bytes, len == DataLen
		}
		offs[serial+1] = offs[serial] + n
	}
	buf := make([]byte, offs[len(plans)])
	err = d.fanOutN(len(plans), func(serial int) error {
		seg := buf[offs[serial]:offs[serial]:offs[serial+1]]
		if cached != nil && cached[serial] != nil {
			copy(seg[:cap(seg)], cached[serial])
			return nil
		}
		plan := &plans[serial]
		key := cacheKey{fid: fid, serial: serial, gen: fileGen}
		// The leader copies the verified recovery into its segment of the
		// shared buffer; coalesced readers get the same slice back. For
		// plain chunks the recovered bytes alias the provider payload (no
		// decoys to strip), so this is one copy either way.
		data, sharedRes, err := d.flights.do(key, func() ([]byte, error) {
			res, err := d.fetchVerifiedPlan(plan)
			if err != nil {
				return nil, err
			}
			copy(seg[:cap(seg)], res.recovered)
			out := buf[offs[serial]:offs[serial+1]]
			d.cache.put(key, out)
			return out, nil
		})
		if err != nil {
			return err
		}
		if sharedRes {
			copy(seg[:cap(seg)], data)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.counters.fileReads.Add(1)
	return buf, nil
}

// ChunkCount reports how many chunks a file has (what the distributor
// "notifies" the client of).
func (d *Distributor) ChunkCount(client, password, filename string) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, _, err := d.auth(client, password)
	if err != nil {
		return 0, err
	}
	fe, ok := c.Files[filename]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	return len(fe.ChunkIdx), nil
}

// lookupChunk authenticates and resolves (client, filename, serial) to a
// chunk entry, enforcing password privilege against the chunk's privacy
// level. Callers hold d.mu (read or write mode — the lookup only reads).
func (d *Distributor) lookupChunk(client, password, filename string, serial int) (*chunkEntry, error) {
	c, _, err := d.auth(client, password)
	if err != nil {
		return nil, err
	}
	fe, ok := c.Files[filename]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	if serial < 0 || serial >= len(fe.ChunkIdx) {
		return nil, fmt.Errorf("%w: serial %d of %s (file has %d chunks)", ErrNoSuchChunk, serial, filename, len(fe.ChunkIdx))
	}
	idx := fe.ChunkIdx[serial]
	if idx < 0 {
		return nil, fmt.Errorf("%w: serial %d was removed", ErrNoSuchChunk, serial)
	}
	entry := &d.chunks[idx]
	if _, err := d.authorize(client, password, entry.PL); err != nil {
		return nil, err
	}
	return entry, nil
}

// fetchPlan is an immutable snapshot of everything needed to serve one
// chunk read — the chunk entry plus its stripe geometry — taken under
// d.mu so the provider round-trips can happen without the lock.
type fetchPlan struct {
	entry       chunkEntry // deep enough copy: Mirrors slice is cloned
	level       raid.Level
	shardLen    int
	dataShards  int
	parityCount int
	targetSlot  int        // this chunk's slot in the stripe, -1 if unknown
	siblings    []shardRef // surviving members and parity, slot-addressed
}

// shardRef locates one stripe shard for reconstruction.
type shardRef struct {
	slot       int
	provIdx    int
	vid        string
	payloadLen int
}

// planFetch snapshots entry and its stripe — a pure read, so RLock-held
// callers (the retrieval paths) and exclusive-lock callers (scrub,
// migration) both qualify. Callers hold d.mu in either mode.
func (d *Distributor) planFetch(entry *chunkEntry) fetchPlan {
	plan := fetchPlan{entry: *entry, targetSlot: -1}
	plan.entry.Mirrors = append([]mirrorRef(nil), entry.Mirrors...)
	st := &d.stripes[entry.StripeID]
	plan.level = st.Level
	plan.shardLen = st.ShardLen
	plan.dataShards = len(st.Members)
	plan.parityCount = len(st.Parity)
	plan.siblings = make([]shardRef, 0, len(st.Members)+len(st.Parity))
	for i, cidx := range st.Members {
		m := &d.chunks[cidx]
		if m.VirtualID == entry.VirtualID {
			plan.targetSlot = i
			continue
		}
		plan.siblings = append(plan.siblings, shardRef{
			slot: i, provIdx: m.CPIndex, vid: m.VirtualID, payloadLen: m.PayloadLen,
		})
	}
	for i, ps := range st.Parity {
		plan.siblings = append(plan.siblings, shardRef{
			slot: plan.dataShards + i, provIdx: ps.CPIndex, vid: ps.VirtualID, payloadLen: st.ShardLen,
		})
	}
	return plan
}

// fetchResult is one verified chunk read: the stored payload as it sits
// on the provider (mislead bytes in, or ciphertext) plus the recovered
// original bytes that payload verified against. Read paths serve
// recovered; maintenance paths (parity math, re-placement, snapshots)
// reuse payload knowing it passed end-to-end verification.
type fetchResult struct {
	payload   []byte
	recovered []byte
}

// fetchPayloadPlan returns just the verified stored payload — the
// convenience used by maintenance paths (parity re-encode, blob moves,
// snapshots) that re-place the payload as-is and only need the proof
// that it matches the chunk's checksum end-to-end.
func (d *Distributor) fetchPayloadPlan(plan *fetchPlan) ([]byte, error) {
	res, err := d.fetchVerifiedPlan(plan)
	if err != nil {
		return nil, err
	}
	return res.payload, nil
}

// fetchChunkPlan retrieves a chunk's original bytes from a plan:
// provider get (or RAID reconstruction), mislead stripping, checksum
// verification. It takes no locks.
func (d *Distributor) fetchChunkPlan(plan *fetchPlan) ([]byte, error) {
	res, err := d.fetchVerifiedPlan(plan)
	if err != nil {
		return nil, err
	}
	return res.recovered, nil
}

// stripAndVerify recovers a chunk's original bytes from its stored
// payload — decrypting (for encrypted files) or stripping misleading
// bytes — and checks the result against the chunk's checksum.
func stripAndVerify(entry *chunkEntry, payload []byte) ([]byte, error) {
	if entry.EncKey == nil && entry.Mislead.Count() == 0 {
		// No decoys and no ciphertext: the payload IS the original, so
		// verify in place and alias it instead of copying.
		if sha256.Sum256(payload) != entry.Sum {
			return nil, fmt.Errorf("%w: checksum mismatch for %s/%s#%d", ErrUnavailable, entry.Client, entry.Filename, entry.Serial)
		}
		return payload, nil
	}
	var data []byte
	var err error
	if entry.EncKey != nil {
		data, err = cryptofrag.Decrypt(entry.EncKey, payload)
		if err != nil {
			return nil, fmt.Errorf("%w: decrypting chunk: %v", ErrUnavailable, err)
		}
	} else {
		data, err = mislead.Strip(payload, entry.Mislead)
		if err != nil {
			return nil, fmt.Errorf("core: stripping misleading bytes: %w", err)
		}
	}
	if sha256.Sum256(data) != entry.Sum {
		return nil, fmt.Errorf("%w: checksum mismatch for %s/%s#%d", ErrUnavailable, entry.Client, entry.Filename, entry.Serial)
	}
	return data, nil
}

// tryGet fetches one blob with transient-failure retry, feeding the
// outcome into the provider's health accounting; a wrong length
// (provider-side truncation) counts as failure for the caller but not
// for the breaker — the provider did answer.
func (d *Distributor) tryGet(provIdx int, vid string, wantLen int) ([]byte, bool) {
	var payload []byte
	err := d.providerOp(provIdx, func(p provider.Provider) error {
		var e error
		payload, e = p.Get(vid)
		return e
	})
	if err != nil || len(payload) != wantLen {
		return nil, false
	}
	return payload, true
}

// reconstructPlan rebuilds one chunk from the surviving members of its
// stripe, as snapshotted in the plan. It takes no locks. The surviving
// shards are pooled scratch released before returning; the rebuilt
// payload is copied out so no pooled buffer ever escapes the read path.
func (d *Distributor) reconstructPlan(plan *fetchPlan) ([]byte, error) {
	if plan.level.ParityShards() == 0 {
		return nil, fmt.Errorf("%w: provider down and no parity (raid level none)", ErrUnavailable)
	}
	if plan.targetSlot == -1 {
		return nil, fmt.Errorf("%w: chunk not a member of its stripe", ErrUnavailable)
	}
	shards := make([][]byte, plan.dataShards+plan.parityCount)
	var pooled [][]byte
	defer func() {
		for _, b := range pooled {
			bufpool.Put(b)
		}
	}()
	for _, ref := range plan.siblings {
		payload, err := d.rawShard(ref.provIdx, ref.vid, plan.shardLen, ref.payloadLen)
		if err != nil {
			continue // surviving-shard fetch failed; leave nil for decoder
		}
		shards[ref.slot] = payload
		pooled = append(pooled, payload)
	}
	stripe := &raid.Stripe{Level: plan.level, Shards: shards, DataShards: plan.dataShards}
	if err := stripe.Reconstruct(); err != nil {
		return nil, fmt.Errorf("%w: reconstruction failed: %v", ErrUnavailable, err)
	}
	rebuilt := stripe.Shards[plan.targetSlot]
	if len(rebuilt) < plan.entry.PayloadLen {
		return nil, fmt.Errorf("%w: rebuilt shard shorter than payload", ErrUnavailable)
	}
	out := make([]byte, plan.entry.PayloadLen)
	copy(out, rebuilt)
	return out, nil
}

// rawShard fetches one shard with transient retry and zero-pads it (in a
// pooled buffer the caller releases) to the stripe's shard length so
// parity math lines up.
func (d *Distributor) rawShard(provIdx int, vid string, shardLen, payloadLen int) ([]byte, error) {
	var payload []byte
	err := d.providerOp(provIdx, func(p provider.Provider) error {
		var e error
		payload, e = p.Get(vid)
		return e
	})
	if err != nil {
		return nil, err
	}
	if len(payload) != payloadLen {
		return nil, fmt.Errorf("%w: shard length %d, want %d", ErrUnavailable, len(payload), payloadLen)
	}
	out := bufpool.Get(shardLen)
	n := copy(out, payload)
	clear(out[n:])
	return out, nil
}
