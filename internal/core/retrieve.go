package core

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"repro/internal/cryptofrag"
	"repro/internal/mislead"
	"repro/internal/raid"
)

// GetChunk serves one chunk to a client holding a sufficiently privileged
// password — the paper's get_chunk(client name, password, filename,
// sl no.). If the chunk's provider is unreachable the distributor
// transparently reconstructs the chunk from the stripe's surviving shards.
func (d *Distributor) GetChunk(client, password, filename string, serial int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	entry, err := d.lookupChunk(client, password, filename, serial)
	if err != nil {
		return nil, err
	}
	d.counters.chunkReads.Add(1)
	return d.fetchChunkLocked(entry)
}

// GetFile serves a whole file — the paper's get_file(client name,
// password, filename). Chunks are fetched with bounded parallelism
// ("This approach exploits the benefit of parallel query processing as
// various fragments can be accessed simultaneously").
func (d *Distributor) GetFile(client, password, filename string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, _, err := d.auth(client, password)
	if err != nil {
		return nil, err
	}
	fe, ok := c.Files[filename]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	if _, err := d.authorize(client, password, fe.PL); err != nil {
		return nil, err
	}
	parts := make([][]byte, len(fe.ChunkIdx))
	jobs := make([]func() error, 0, len(fe.ChunkIdx))
	for serial, idx := range fe.ChunkIdx {
		if idx < 0 {
			return nil, fmt.Errorf("%w: serial %d was removed", ErrNoSuchChunk, serial)
		}
		serial, idx := serial, idx
		entry := &d.chunks[idx]
		jobs = append(jobs, func() error {
			data, err := d.fetchChunkLocked(entry)
			if err != nil {
				return err
			}
			parts[serial] = data
			return nil
		})
	}
	if err := d.fanOut(jobs); err != nil {
		return nil, err
	}
	d.counters.fileReads.Add(1)
	return bytes.Join(parts, nil), nil
}

// ChunkCount reports how many chunks a file has (what the distributor
// "notifies" the client of).
func (d *Distributor) ChunkCount(client, password, filename string) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, _, err := d.auth(client, password)
	if err != nil {
		return 0, err
	}
	fe, ok := c.Files[filename]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	return len(fe.ChunkIdx), nil
}

// lookupChunk authenticates and resolves (client, filename, serial) to a
// chunk entry, enforcing password privilege against the chunk's privacy
// level. Callers hold d.mu.
func (d *Distributor) lookupChunk(client, password, filename string, serial int) (*chunkEntry, error) {
	c, _, err := d.auth(client, password)
	if err != nil {
		return nil, err
	}
	fe, ok := c.Files[filename]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	if serial < 0 || serial >= len(fe.ChunkIdx) {
		return nil, fmt.Errorf("%w: serial %d of %s (file has %d chunks)", ErrNoSuchChunk, serial, filename, len(fe.ChunkIdx))
	}
	idx := fe.ChunkIdx[serial]
	if idx < 0 {
		return nil, fmt.Errorf("%w: serial %d was removed", ErrNoSuchChunk, serial)
	}
	entry := &d.chunks[idx]
	if _, err := d.authorize(client, password, entry.PL); err != nil {
		return nil, err
	}
	return entry, nil
}

// fetchChunkLocked retrieves a chunk's original bytes: provider get (or
// RAID reconstruction), mislead stripping, checksum verification.
func (d *Distributor) fetchChunkLocked(entry *chunkEntry) ([]byte, error) {
	payload, err := d.fetchPayloadLocked(entry)
	if err != nil {
		return nil, err
	}
	return stripAndVerify(entry, payload)
}

// stripAndVerify recovers a chunk's original bytes from its stored
// payload — decrypting (for encrypted files) or stripping misleading
// bytes — and checks the result against the chunk's checksum.
func stripAndVerify(entry *chunkEntry, payload []byte) ([]byte, error) {
	var data []byte
	var err error
	if entry.EncKey != nil {
		data, err = cryptofrag.Decrypt(entry.EncKey, payload)
		if err != nil {
			return nil, fmt.Errorf("%w: decrypting chunk: %v", ErrUnavailable, err)
		}
	} else {
		data, err = mislead.Strip(payload, entry.Mislead)
		if err != nil {
			return nil, fmt.Errorf("core: stripping misleading bytes: %w", err)
		}
	}
	if sha256.Sum256(data) != entry.Sum {
		return nil, fmt.Errorf("%w: checksum mismatch for %s/%s#%d", ErrUnavailable, entry.Client, entry.Filename, entry.Serial)
	}
	return data, nil
}

// fetchPayloadLocked returns the stored payload (post-mislead bytes). The
// fallback ladder is: primary provider → mirror replicas → RAID
// reconstruction from the stripe.
func (d *Distributor) fetchPayloadLocked(entry *chunkEntry) ([]byte, error) {
	if payload, ok := d.tryGet(entry.CPIndex, entry.VirtualID, entry.PayloadLen); ok {
		d.counters.primaryHits.Add(1)
		return payload, nil
	}
	for _, m := range entry.Mirrors {
		if payload, ok := d.tryGet(m.CPIndex, m.VirtualID, entry.PayloadLen); ok {
			d.counters.mirrorHits.Add(1)
			return payload, nil
		}
	}
	payload, err := d.reconstructLocked(entry)
	if err == nil {
		d.counters.reconstructions.Add(1)
	}
	return payload, err
}

// tryGet fetches one blob with transient-failure retry; a wrong length
// (provider-side truncation) counts as failure.
func (d *Distributor) tryGet(provIdx int, vid string, wantLen int) ([]byte, bool) {
	p, err := d.fleet.At(provIdx)
	if err != nil {
		return nil, false
	}
	var payload []byte
	err = d.withTransientRetry(func() error {
		var e error
		payload, e = p.Get(vid)
		return e
	})
	if err != nil || len(payload) != wantLen {
		return nil, false
	}
	return payload, true
}

// reconstructLocked rebuilds one chunk from the surviving members of its
// stripe.
func (d *Distributor) reconstructLocked(entry *chunkEntry) ([]byte, error) {
	st := &d.stripes[entry.StripeID]
	if st.Level.ParityShards() == 0 {
		return nil, fmt.Errorf("%w: provider down and no parity (raid level none)", ErrUnavailable)
	}
	shards := make([][]byte, len(st.Members)+len(st.Parity))
	targetSlot := -1
	for i, cidx := range st.Members {
		m := &d.chunks[cidx]
		if m.VirtualID == entry.VirtualID {
			targetSlot = i
			continue // the shard we're rebuilding
		}
		payload, err := d.rawShard(m.CPIndex, m.VirtualID, st.ShardLen, m.PayloadLen)
		if err != nil {
			continue // surviving-shard fetch failed; leave nil for decoder
		}
		shards[i] = payload
	}
	if targetSlot == -1 {
		return nil, fmt.Errorf("%w: chunk not a member of its stripe", ErrUnavailable)
	}
	for i, ps := range st.Parity {
		payload, err := d.rawShard(ps.CPIndex, ps.VirtualID, st.ShardLen, st.ShardLen)
		if err != nil {
			continue
		}
		shards[len(st.Members)+i] = payload
	}
	stripe := &raid.Stripe{Level: st.Level, Shards: shards, DataShards: len(st.Members)}
	if err := stripe.Reconstruct(); err != nil {
		return nil, fmt.Errorf("%w: reconstruction failed: %v", ErrUnavailable, err)
	}
	rebuilt := stripe.Shards[targetSlot]
	if len(rebuilt) < entry.PayloadLen {
		return nil, fmt.Errorf("%w: rebuilt shard shorter than payload", ErrUnavailable)
	}
	return rebuilt[:entry.PayloadLen], nil
}

// rawShard fetches one shard and zero-pads it to the stripe's shard
// length so parity math lines up.
func (d *Distributor) rawShard(provIdx int, vid string, shardLen, payloadLen int) ([]byte, error) {
	p, err := d.fleet.At(provIdx)
	if err != nil {
		return nil, err
	}
	payload, err := p.Get(vid)
	if err != nil {
		return nil, err
	}
	if len(payload) != payloadLen {
		return nil, fmt.Errorf("%w: shard length %d, want %d", ErrUnavailable, len(payload), payloadLen)
	}
	out := make([]byte, shardLen)
	copy(out, payload)
	return out, nil
}
