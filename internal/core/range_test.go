package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/privacy"
)

func TestGetRangeBasic(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(100_000, 80)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// A point query in the middle.
	got, err := d.GetRange("alice", "root", "f", 50_000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[50_000:51_000]) {
		t.Fatal("range content mismatch")
	}
	// Whole file via range.
	got, err = d.GetRange("alice", "root", "f", 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("full-range mismatch")
	}
	// Empty range.
	got, err = d.GetRange("alice", "root", "f", 10, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty range: %d bytes, %v", len(got), err)
	}
}

func TestGetRangeTouchesOnlyOverlappingProviders(t *testing.T) {
	// A point query must hit at most 2 chunks' worth of providers —
	// §VII-E's efficiency claim made observable via provider counters.
	d := testDistributor(t, 6)
	data := payload(160_000, 81)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{NoParity: true}); err != nil {
		t.Fatal(err)
	}
	before := int64(0)
	for _, p := range d.Providers().All() {
		before += p.Usage().Gets
	}
	if _, err := d.GetRange("alice", "root", "f", 80_000, 100); err != nil {
		t.Fatal(err)
	}
	after := int64(0)
	for _, p := range d.Providers().All() {
		after += p.Usage().Gets
	}
	if gets := after - before; gets > 2 {
		t.Fatalf("point query performed %d provider gets, want <= 2", gets)
	}
}

func TestGetRangeValidation(t *testing.T) {
	d := testDistributor(t, 4)
	if _, err := d.Upload("alice", "root", "f", payload(10_000, 82), privacy.Low, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetRange("alice", "root", "f", -1, 5); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative offset: %v", err)
	}
	if _, err := d.GetRange("alice", "root", "f", 0, -5); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative length: %v", err)
	}
	if _, err := d.GetRange("alice", "root", "f", 9_999, 100); !errors.Is(err, ErrRange) {
		t.Fatalf("overflow range: %v", err)
	}
	if _, err := d.GetRange("alice", "root", "nope", 0, 1); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("missing file: %v", err)
	}
	if _, err := d.GetRange("alice", "bad", "f", 0, 1); !errors.Is(err, ErrAuth) {
		t.Fatalf("bad password: %v", err)
	}
}

func TestGetRangeWithMisleadingData(t *testing.T) {
	// Decoy bytes inflate stored payloads but must be invisible to range
	// arithmetic.
	d := testDistributor(t, 6)
	data := payload(60_000, 83)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{MisleadFraction: 0.3}); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetRange("alice", "root", "f", 20_000, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[20_000:25_000]) {
		t.Fatal("range over misleading data mismatch")
	}
}

// Property: GetRange(o, l) == data[o:o+l] for arbitrary valid ranges.
func TestGetRangeProperty(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(80_000, 84)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := rng.Intn(len(data))
		l := rng.Intn(len(data) - o)
		got, err := d.GetRange("alice", "root", "f", o, l)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data[o:o+l])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScrubHealthySystem(t *testing.T) {
	d := testDistributor(t, 6)
	if _, err := d.Upload("alice", "root", "f", payload(60_000, 85), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	rep, err := d.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 0 || rep.Unrepairable != 0 {
		t.Fatalf("healthy scrub = %+v", rep)
	}
	if rep.Healthy != rep.ChunksChecked || rep.ChunksChecked == 0 {
		t.Fatalf("scrub = %+v", rep)
	}
}

func TestScrubRepairsCorruption(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(128_000, 86) // 8 chunks → 2 stripes of width 4
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt one chunk per stripe (RAID-5 tolerates one loss per stripe).
	d.mu.Lock()
	victims := []chunkEntry{d.chunks[0], d.chunks[5]}
	if d.chunks[0].StripeID == d.chunks[5].StripeID {
		d.mu.Unlock()
		t.Fatal("test setup: victims share a stripe")
	}
	d.mu.Unlock()
	for _, v := range victims {
		p, _ := d.Providers().At(v.CPIndex)
		stored, err := p.Get(v.VirtualID)
		if err != nil {
			t.Fatal(err)
		}
		for i := range stored {
			stored[i] ^= 0x5A
		}
		if err := p.Put(v.VirtualID, stored); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := d.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 2 {
		t.Fatalf("scrub repaired %d, want 2 (%+v)", rep.Repaired, rep)
	}
	// Data now reads cleanly even with the parity path cut off, proving
	// the primary copy itself was fixed.
	got, err := d.GetFile("alice", "root", "f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-scrub read: %v", err)
	}
	again, err := d.Scrub()
	if err != nil || again.Repaired != 0 || again.Healthy != again.ChunksChecked {
		t.Fatalf("second scrub = %+v, %v", again, err)
	}
}

func TestScrubRefreshesStaleMirror(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(30_000, 87)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{Replicas: 1, NoParity: true}); err != nil {
		t.Fatal(err)
	}
	// Corrupt one mirror copy.
	d.mu.Lock()
	entry := d.chunks[0]
	d.mu.Unlock()
	mp, _ := d.Providers().At(entry.Mirrors[0].CPIndex)
	if err := mp.Put(entry.Mirrors[0].VirtualID, make([]byte, entry.PayloadLen)); err != nil {
		t.Fatal(err)
	}
	rep, err := d.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 {
		t.Fatalf("scrub = %+v, want 1 repair", rep)
	}
	// The mirror must now serve correct data when the primary dies.
	pp, _ := d.Providers().At(entry.CPIndex)
	pp.SetOutage(true)
	got, err := d.GetChunk("alice", "root", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := privacy.DefaultChunkSizes().Size(privacy.Moderate)
	if !bytes.Equal(got, data[:size]) {
		t.Fatal("repaired mirror serves wrong data")
	}
}

func TestScrubReportsUnrepairable(t *testing.T) {
	// No parity, no mirrors, primary payload corrupted: nothing to repair
	// from.
	d := testDistributor(t, 4)
	if _, err := d.Upload("alice", "root", "f", payload(5_000, 88), privacy.Low, UploadOptions{NoParity: true}); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	entry := d.chunks[0]
	d.mu.Unlock()
	p, _ := d.Providers().At(entry.CPIndex)
	corrupt := make([]byte, entry.PayloadLen)
	if err := p.Put(entry.VirtualID, corrupt); err != nil {
		t.Fatal(err)
	}
	rep, err := d.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrepairable != 1 {
		t.Fatalf("scrub = %+v, want 1 unrepairable", rep)
	}
}
