package core

import (
	"strings"
	"testing"

	"repro/internal/privacy"
)

func TestTablesReflectState(t *testing.T) {
	d := testDistributor(t, 4)
	if _, err := d.Upload("alice", "root", "f", payload(64<<10, 50), privacy.Moderate, UploadOptions{MisleadFraction: 0.2}); err != nil {
		t.Fatal(err)
	}

	// Table I.
	prows := d.ProviderTable()
	if len(prows) != 4 {
		t.Fatalf("provider rows = %d", len(prows))
	}
	totalVIDs := 0
	for i, r := range prows {
		if r.Count != len(r.VIDs) {
			t.Fatalf("provider %d: count %d != %d listed vids", i, r.Count, len(r.VIDs))
		}
		totalVIDs += len(r.VIDs)
		p, _ := d.Providers().At(i)
		if r.Name != p.Info().Name || r.PL != p.Info().PL || r.CL != p.Info().CL {
			t.Fatalf("provider row %d identity mismatch: %+v", i, r)
		}
	}
	st := d.Stats()
	if totalVIDs != st.Chunks+st.ParityShards {
		t.Fatalf("vids %d != chunks %d + parity %d", totalVIDs, st.Chunks, st.ParityShards)
	}

	// Table II.
	crows := d.ClientTable()
	if len(crows) != 1 || crows[0].Client != "alice" {
		t.Fatalf("client rows = %+v", crows)
	}
	if crows[0].Count != st.Chunks {
		t.Fatalf("client count = %d, want %d", crows[0].Count, st.Chunks)
	}
	if len(crows[0].Passwords) != 2 {
		t.Fatalf("passwords = %+v", crows[0].Passwords)
	}
	if len(crows[0].Chunks) != st.Chunks {
		t.Fatalf("chunk refs = %d", len(crows[0].Chunks))
	}
	for i, ref := range crows[0].Chunks {
		if ref.Filename != "f" || ref.PL != privacy.Moderate || ref.Serial != i {
			t.Fatalf("chunk ref %d = %+v", i, ref)
		}
	}

	// Table III.
	chrows := d.ChunkTable()
	if len(chrows) != st.Chunks {
		t.Fatalf("chunk rows = %d, want %d", len(chrows), st.Chunks)
	}
	for _, r := range chrows {
		if r.PL != privacy.Moderate {
			t.Fatalf("chunk PL = %v", r.PL)
		}
		if r.SPIndex != -1 {
			t.Fatalf("fresh chunk has snapshot: %+v", r)
		}
		if len(r.Mislead) == 0 {
			t.Fatalf("mislead positions missing: %+v", r)
		}
		if r.CPIndex < 0 || r.CPIndex >= 4 {
			t.Fatalf("CP index out of range: %+v", r)
		}
	}
}

func TestTablesOmitRemovedChunks(t *testing.T) {
	d := testDistributor(t, 5)
	info, err := d.Upload("alice", "root", "f", payload(80<<10, 51), privacy.Moderate, UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveChunk("alice", "root", "f", 0); err != nil {
		t.Fatal(err)
	}
	if got := len(d.ChunkTable()); got != info.Chunks-1 {
		t.Fatalf("chunk table rows = %d, want %d", got, info.Chunks-1)
	}
	refs := d.ClientTable()[0].Chunks
	for _, ref := range refs {
		if ref.Serial == 0 {
			t.Fatal("removed serial still referenced in client table")
		}
	}
}

func TestFormatTables(t *testing.T) {
	d := testDistributor(t, 4)
	if _, err := d.Upload("alice", "root", "report.csv", payload(64<<10, 52), privacy.Moderate, UploadOptions{MisleadFraction: 0.1}); err != nil {
		t.Fatal(err)
	}
	p := FormatProviderTable(d.ProviderTable())
	if !strings.Contains(p, "P0") || !strings.Contains(p, "Virtual id list") {
		t.Fatalf("provider table render:\n%s", p)
	}
	c := FormatClientTable(d.ClientTable())
	if !strings.Contains(c, "alice") || !strings.Contains(c, "report.csv") {
		t.Fatalf("client table render:\n%s", c)
	}
	ch := FormatChunkTable(d.ChunkTable())
	if !strings.Contains(ch, "NA") {
		t.Fatalf("chunk table render should show NA snapshots:\n%s", ch)
	}
}

func TestSnapshotAppearsInChunkTable(t *testing.T) {
	d := testDistributor(t, 5)
	if _, err := d.Upload("alice", "root", "f", payload(20_000, 53), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateChunk("alice", "root", "f", 0, []byte("new state"), UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	rows := d.ChunkTable()
	found := false
	for _, r := range rows {
		if r.SPIndex >= 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no chunk row shows a snapshot provider after update")
	}
	rendered := FormatChunkTable(rows)
	if !strings.Contains(rendered, "NA") && len(rows) > 1 {
		t.Log("all chunks snapshotted (unexpected but not fatal)")
	}
}
