package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/privacy"
	"repro/internal/provider"
)

// cacheTestDistributor builds a distributor over 8 hooked providers that
// count every Get round-trip, so tests can assert cache hits cost zero
// provider I/O.
func cacheTestDistributor(t *testing.T, cacheBytes int64) (*Distributor, *atomic.Int64) {
	t.Helper()
	var gets atomic.Int64
	f, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("C%d", i), PL: privacy.High, CL: 1,
		}, provider.Options{})
		if err != nil {
			t.Fatal(err)
		}
		h := provider.NewHooked(mem)
		h.SetBeforeGet(func(string) error {
			gets.Add(1)
			return nil
		})
		if err := f.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	d, err := New(Config{Fleet: f, Parallelism: 4, CacheBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("alice", "root", privacy.High); err != nil {
		t.Fatal(err)
	}
	return d, &gets
}

func TestConfigRejectsNegativeCacheBytes(t *testing.T) {
	f, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	mem, err := provider.New(provider.Info{Name: "X", PL: privacy.High, CL: 1}, provider.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Add(mem); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Fleet: f, CacheBytes: -1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("New with CacheBytes=-1: err=%v, want ErrConfig", err)
	}
}

// TestGetChunkCacheHitZeroProviderRoundTrips is the acceptance test for
// the read cache: once a chunk is resident, serving it again performs no
// provider round-trips at all.
func TestGetChunkCacheHitZeroProviderRoundTrips(t *testing.T) {
	d, gets := cacheTestDistributor(t, 32<<20)
	data := payload(64<<10, 3)
	if _, err := d.Upload("alice", "root", "f.bin", data, privacy.Moderate, UploadOptions{MisleadFraction: 0.1}); err != nil {
		t.Fatal(err)
	}

	first, err := d.GetChunk("alice", "root", "f.bin", 0)
	if err != nil {
		t.Fatal(err)
	}
	if gets.Load() == 0 {
		t.Fatal("cold read performed no provider gets")
	}
	before := gets.Load()

	second, err := d.GetChunk("alice", "root", "f.bin", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := gets.Load() - before; got != 0 {
		t.Fatalf("cache-hit read performed %d provider round-trips, want 0", got)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached bytes differ from cold-read bytes")
	}
	m := d.Metrics()
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", m.Cache.Hits, m.Cache.Misses)
	}
	if m.Cache.Entries == 0 || m.Cache.Bytes == 0 {
		t.Fatalf("cache residency entries=%d bytes=%d, want nonzero", m.Cache.Entries, m.Cache.Bytes)
	}
}

// TestGetFileServedFromCache checks the whole-file path both populates
// the cache and is served from it without provider I/O on a warm read.
func TestGetFileServedFromCache(t *testing.T) {
	d, gets := cacheTestDistributor(t, 32<<20)
	data := payload(96<<10, 5)
	if _, err := d.Upload("alice", "root", "f.bin", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	first, err := d.GetFile("alice", "root", "f.bin")
	if err != nil {
		t.Fatal(err)
	}
	before := gets.Load()
	second, err := d.GetFile("alice", "root", "f.bin")
	if err != nil {
		t.Fatal(err)
	}
	if got := gets.Load() - before; got != 0 {
		t.Fatalf("warm GetFile performed %d provider round-trips, want 0", got)
	}
	if !bytes.Equal(first, data) || !bytes.Equal(second, data) {
		t.Fatal("file bytes corrupted through the cache")
	}
}

// TestCacheInvalidationOnUpdate checks a committed UpdateChunk makes the
// cached pre-update bytes unservable.
func TestCacheInvalidationOnUpdate(t *testing.T) {
	d, _ := cacheTestDistributor(t, 32<<20)
	oldData := payload(8<<10, 1)
	if _, err := d.Upload("alice", "root", "f.bin", oldData, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetChunk("alice", "root", "f.bin", 0); err != nil {
		t.Fatal(err)
	}
	newData := payload(8<<10, 2)
	if err := d.UpdateChunk("alice", "root", "f.bin", 0, newData, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetChunk("alice", "root", "f.bin", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("post-update read served pre-update bytes")
	}
}

// TestCacheNoAliasAcrossReupload checks that removing a file and
// re-uploading the same filename can never serve the dead file's cached
// chunks: the new file has a fresh FID, so old keys cannot collide.
func TestCacheNoAliasAcrossReupload(t *testing.T) {
	d, _ := cacheTestDistributor(t, 32<<20)
	oldData := payload(8<<10, 11)
	if _, err := d.Upload("alice", "root", "f.bin", oldData, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetChunk("alice", "root", "f.bin", 0); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveFile("alice", "root", "f.bin"); err != nil {
		t.Fatal(err)
	}
	newData := payload(8<<10, 22)
	if _, err := d.Upload("alice", "root", "f.bin", newData, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetChunk("alice", "root", "f.bin", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("re-uploaded filename served the removed file's cached bytes")
	}
}

// TestCacheEviction checks the byte bound holds: reading more distinct
// chunks than fit evicts least-recently-used entries instead of growing.
func TestCacheEviction(t *testing.T) {
	// Moderate privacy → 16 KiB chunks; bound the cache to ~2 of them.
	d, _ := cacheTestDistributor(t, 40<<10)
	data := payload(128<<10, 9) // 8 chunks
	if _, err := d.Upload("alice", "root", "f.bin", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	n, err := d.ChunkCount("alice", "root", "f.bin")
	if err != nil {
		t.Fatal(err)
	}
	for serial := 0; serial < n; serial++ {
		if _, err := d.GetChunk("alice", "root", "f.bin", serial); err != nil {
			t.Fatal(err)
		}
	}
	m := d.Metrics()
	if m.Cache.Evictions == 0 {
		t.Fatalf("read %d chunks through a %d-byte cache with no evictions", n, 40<<10)
	}
	if m.Cache.Bytes > 40<<10 {
		t.Fatalf("cache holds %d bytes, bound is %d", m.Cache.Bytes, 40<<10)
	}
}

// TestReadersRaceUpdateCommit is the stress test for generation-aware
// invalidation: readers hammer GetChunk (warming and re-warming the
// cache) while a writer commits a sequence of UpdateChunks. A reader that
// starts after generation g committed must never observe bytes older than
// g — neither from providers nor from a stale cache entry.
func TestReadersRaceUpdateCommit(t *testing.T) {
	d, _ := cacheTestDistributor(t, 32<<20)
	const chunkBytes = 8 << 10
	mkData := func(gen byte) []byte { return bytes.Repeat([]byte{gen}, chunkBytes) }
	if _, err := d.Upload("alice", "root", "f.bin", mkData(0), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}

	const updates = 20
	var committed atomic.Int64 // latest generation whose commit returned
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := committed.Load()
				got, err := d.GetChunk("alice", "root", "f.bin", 0)
				if err != nil {
					// A read that planned against a generation whose blobs a
					// racing commit already retired fails unavailable; that
					// is a transient, not a stale observation.
					if errors.Is(err, ErrUnavailable) {
						continue
					}
					t.Errorf("reader: %v", err)
					return
				}
				if len(got) != chunkBytes {
					t.Errorf("reader: got %d bytes, want %d", len(got), chunkBytes)
					return
				}
				seen := int64(got[0])
				for _, b := range got {
					if int64(b) != seen {
						t.Errorf("reader: torn chunk: mixed generations %d and %d", seen, b)
						return
					}
				}
				if seen < floor {
					t.Errorf("reader observed generation %d after generation %d committed", seen, floor)
					return
				}
			}
		}()
	}
	for gen := byte(1); gen <= updates; gen++ {
		if err := d.UpdateChunk("alice", "root", "f.bin", 0, mkData(gen), UploadOptions{}); err != nil {
			t.Fatalf("update %d: %v", gen, err)
		}
		committed.Store(int64(gen))
	}
	close(stop)
	wg.Wait()

	got, err := d.GetChunk("alice", "root", "f.bin", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != updates {
		t.Fatalf("final read generation %d, want %d", got[0], updates)
	}
}
