package core

import (
	"sort"

	"repro/internal/privacy"
	"repro/internal/raid"
)

// BlobKind classifies one provider-resident blob in a StateView.
type BlobKind string

const (
	BlobChunk    BlobKind = "chunk"    // a chunk's primary copy
	BlobMirror   BlobKind = "mirror"   // a full replica
	BlobSnapshot BlobKind = "snapshot" // the pre-update snapshot copy
	BlobParity   BlobKind = "parity"   // a stripe parity shard
)

// BlobView locates one committed blob: which provider holds it, under
// which virtual id, and the metadata an external checker needs to decide
// whether that placement is legal and that payload plausible.
type BlobView struct {
	Kind    BlobKind
	VID     string
	ProvIdx int
	// PL is the privacy level governing this blob's placement — the
	// chunk's own level (parity inherits the stripe's). The placement
	// invariant is ProvPL >= PL for every committed blob.
	PL       privacy.Level
	Client   string
	Filename string
	Serial   int // -1 for parity
	// PayloadLen is the exact stored length; 0 when unknown (snapshots
	// are opaque pre-update payloads whose length isn't tracked).
	PayloadLen int
}

// StripeView is one stripe's committed geometry: members in shard order
// plus parity, everything an external oracle needs to recompute parity
// from raw provider bytes and detect cross-generation mixing.
type StripeView struct {
	Level    raid.Level
	ShardLen int
	Members  []BlobView
	Parity   []BlobView
}

// FileView is one committed file: identity, generation and shape.
type FileView struct {
	Client   string
	Filename string
	FID      uint64
	Gen      uint64
	PL       privacy.Level
	Raid     raid.Level
	// Chunks is the serial count including removed (tombstoned) slots;
	// Live counts the serials still backed by a chunk entry.
	Chunks int
	Live   int
}

// StateView is a consistent snapshot of the distributor's committed
// tables, taken under one read-lock hold — the oracle seam simulation
// harnesses check invariants against. It deliberately exposes only
// committed state plus a quiescence indicator: while Quiescent is true
// the view is exact (no staged writes, no inflight blobs, no filename
// reservations), so every provider-resident key outside Blobs is an
// orphan and every Blob must be present and placement-legal.
type StateView struct {
	// Gen is the distributor-wide mutation counter.
	Gen uint64
	// Quiescent reports that no write ticket is open: provPending is all
	// zero, the inflight registry and filename reservations are empty. A
	// leaked ticket (a failure path that forgot releaseTicket) shows up
	// as Quiescent == false at a point the caller knows is idle.
	Quiescent bool
	Files     []FileView
	Blobs     []BlobView
	Stripes   []StripeView
}

// StateView snapshots the committed tables. Files are sorted by
// (client, filename); blobs follow chunk-table order then stripe order,
// so two snapshots of identical state are deeply equal.
func (d *Distributor) StateView() StateView {
	d.mu.RLock()
	defer d.mu.RUnlock()

	v := StateView{Gen: d.gen, Quiescent: true}
	if len(d.inflight) > 0 || len(d.reserved) > 0 {
		v.Quiescent = false
	}
	for _, n := range d.provPending {
		if n != 0 {
			v.Quiescent = false
		}
	}

	for cname, ce := range d.clients {
		for fname, fe := range ce.Files {
			fv := FileView{
				Client:   cname,
				Filename: fname,
				FID:      fe.FID,
				Gen:      fe.Gen,
				PL:       fe.PL,
				Raid:     fe.Raid,
				Chunks:   len(fe.ChunkIdx),
			}
			for _, idx := range fe.ChunkIdx {
				if idx >= 0 {
					fv.Live++
				}
			}
			v.Files = append(v.Files, fv)
		}
	}
	sort.Slice(v.Files, func(i, j int) bool {
		if v.Files[i].Client != v.Files[j].Client {
			return v.Files[i].Client < v.Files[j].Client
		}
		return v.Files[i].Filename < v.Files[j].Filename
	})

	for i := range d.chunks {
		e := &d.chunks[i]
		if e.CPIndex < 0 {
			continue // removed
		}
		v.Blobs = append(v.Blobs, BlobView{
			Kind: BlobChunk, VID: e.VirtualID, ProvIdx: e.CPIndex, PL: e.PL,
			Client: e.Client, Filename: e.Filename, Serial: e.Serial, PayloadLen: e.PayloadLen,
		})
		for _, m := range e.Mirrors {
			v.Blobs = append(v.Blobs, BlobView{
				Kind: BlobMirror, VID: m.VirtualID, ProvIdx: m.CPIndex, PL: e.PL,
				Client: e.Client, Filename: e.Filename, Serial: e.Serial, PayloadLen: e.PayloadLen,
			})
		}
		if e.SnapVID != "" && e.SPIndex >= 0 {
			v.Blobs = append(v.Blobs, BlobView{
				Kind: BlobSnapshot, VID: e.SnapVID, ProvIdx: e.SPIndex, PL: e.PL,
				Client: e.Client, Filename: e.Filename, Serial: e.Serial,
			})
		}
	}
	for si := range d.stripes {
		st := &d.stripes[si]
		if len(st.Members) == 0 && len(st.Parity) == 0 {
			continue
		}
		pl := d.stripePL(st)
		sv := StripeView{Level: st.Level, ShardLen: st.ShardLen}
		var owner *chunkEntry
		for _, ci := range st.Members {
			e := &d.chunks[ci]
			if owner == nil {
				owner = e
			}
			sv.Members = append(sv.Members, BlobView{
				Kind: BlobChunk, VID: e.VirtualID, ProvIdx: e.CPIndex, PL: e.PL,
				Client: e.Client, Filename: e.Filename, Serial: e.Serial, PayloadLen: e.PayloadLen,
			})
		}
		for _, ps := range st.Parity {
			pv := BlobView{
				Kind: BlobParity, VID: ps.VirtualID, ProvIdx: ps.CPIndex, PL: pl,
				Serial: -1, PayloadLen: st.ShardLen,
			}
			if owner != nil {
				pv.Client, pv.Filename = owner.Client, owner.Filename
			}
			sv.Parity = append(sv.Parity, pv)
			v.Blobs = append(v.Blobs, pv)
		}
		v.Stripes = append(v.Stripes, sv)
	}
	return v
}
