package core

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheKey identifies one chunk generation. FID is the file's unique id
// (fresh per upload, so a remove + re-upload of the same filename can
// never alias an old entry) and gen is the file's mutation generation at
// read-plan time. A committed mutation bumps the generation, making
// every cached entry of the previous generation unreachable — a racing
// reader that inserts pre-update bytes inserts them under the old
// generation's key, which no future reader ever looks up.
type cacheKey struct {
	fid    uint64
	serial int
	gen    uint64
}

// cacheItem is one resident chunk: the recovered (post-strip,
// post-decrypt) bytes, owned by the cache.
type cacheItem struct {
	key  cacheKey
	data []byte
}

// chunkCache is a bounded LRU over recovered chunk bytes, keyed by
// (file id, serial, generation). Capacity is counted in payload bytes.
// A nil *chunkCache is valid and behaves as "disabled" — every method
// is nil-safe so call sites need no guards.
type chunkCache struct {
	mu    sync.Mutex
	cap   int64
	size  int64
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element

	hits, misses, evictions atomic.Int64
}

// newChunkCache returns a cache bounded to capBytes, or nil (disabled)
// when capBytes is zero.
func newChunkCache(capBytes int64) *chunkCache {
	if capBytes <= 0 {
		return nil
	}
	return &chunkCache{
		cap:   capBytes,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element),
	}
}

// get returns a copy of the cached chunk — callers own their result, the
// resident buffer never escapes — and records the hit or miss.
func (c *chunkCache) get(key cacheKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	data := el.Value.(*cacheItem).data
	out := make([]byte, len(data))
	copy(out, data)
	c.mu.Unlock()
	c.hits.Add(1)
	return out, true
}

// put stores a copy of data under key, evicting least-recently-used
// entries until the cache fits its byte bound. Oversized chunks are not
// cached; duplicate inserts (two racing readers of the same chunk) keep
// the resident entry.
func (c *chunkCache) put(key cacheKey, data []byte) {
	if c == nil || int64(len(data)) > c.cap {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.items[key]; dup {
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, data: cp})
	c.size += int64(len(cp))
	for c.size > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.evictLocked(back)
		c.evictions.Add(1)
	}
}

// remove drops one entry — the proactive invalidation hook update and
// remove commits use so superseded bytes free immediately instead of
// aging out.
func (c *chunkCache) remove(key cacheKey) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.evictLocked(el)
	}
}

// evictLocked unlinks one element. Callers hold c.mu.
func (c *chunkCache) evictLocked(el *list.Element) {
	it := el.Value.(*cacheItem)
	c.ll.Remove(el)
	delete(c.items, it.key)
	c.size -= int64(len(it.data))
}

// CacheStats is the cache's externally visible state, surfaced through
// Metrics() and the health endpoint.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Bytes     int64 `json:"bytes"`
	Entries   int   `json:"entries"`
	Capacity  int64 `json:"capacity"`
}

// stats snapshots the cache counters; the zero value means "disabled".
func (c *chunkCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	bytes, entries := c.size, len(c.items)
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     bytes,
		Entries:   entries,
		Capacity:  c.cap,
	}
}
