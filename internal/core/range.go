package core

import (
	"fmt"

	"repro/internal/provider"
)

// GetRange serves an arbitrary byte range of a file by fetching only the
// chunks that overlap it — the fragmentation-side win of the paper's
// §VII-E comparison ("This approach exploits the benefit of parallel
// query processing as various fragments can be accessed simultaneously"):
// a point query touches one or two chunks instead of the whole object.
// Overlapping chunks are fetched with the same bounded fan-out as
// GetFile; the output is assembled in file order regardless of which
// fetch finishes first.
func (d *Distributor) GetRange(client, password, filename string, offset, length int) ([]byte, error) {
	if offset < 0 || length < 0 {
		return nil, fmt.Errorf("%w: range [%d, %d)", ErrConfig, offset, offset+length)
	}
	d.mu.RLock()
	c, _, err := d.auth(client, password)
	if err != nil {
		d.mu.RUnlock()
		return nil, err
	}
	fe, ok := c.Files[filename]
	if !ok {
		d.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	if _, err := d.authorize(client, password, fe.PL); err != nil {
		d.mu.RUnlock()
		return nil, err
	}
	d.counters.rangeReads.Add(1)
	if length == 0 {
		d.mu.RUnlock()
		return []byte{}, nil
	}

	// Locate overlapping chunks by walking cumulative original sizes.
	// Chunk original length = PayloadLen - decoy count (mislead bytes are
	// not part of the file). Fetch plans for the overlapping chunks are
	// snapshotted under the lock; the provider I/O happens outside it.
	type span struct {
		plan    fetchPlan
		fileOff int // offset of this chunk within the file
		origLen int
	}
	var spans []span
	cum := 0
	for serial, idx := range fe.ChunkIdx {
		if idx < 0 {
			d.mu.RUnlock()
			return nil, fmt.Errorf("%w: serial %d was removed", ErrNoSuchChunk, serial)
		}
		entry := &d.chunks[idx]
		if cum+entry.DataLen > offset && cum < offset+length {
			spans = append(spans, span{plan: d.planFetch(entry), fileOff: cum, origLen: entry.DataLen})
		}
		cum += entry.DataLen
	}
	if offset+length > cum {
		d.mu.RUnlock()
		return nil, fmt.Errorf("%w: [%d, %d) beyond file of %d bytes", ErrRange, offset, offset+length, cum)
	}
	d.mu.RUnlock()

	// Fan the span fetches out; each result lands in its own slot so the
	// assembly below sees them in file order.
	parts := make([][]byte, len(spans))
	jobs := make([]func() error, len(spans))
	for i := range spans {
		i := i
		jobs[i] = func() error {
			data, err := d.fetchChunkPlan(&spans[i].plan)
			if err != nil {
				return err
			}
			parts[i] = data
			return nil
		}
	}
	if err := d.fanOut(jobs); err != nil {
		return nil, err
	}

	out := make([]byte, 0, length)
	for i := range spans {
		sp := &spans[i]
		lo := 0
		if offset > sp.fileOff {
			lo = offset - sp.fileOff
		}
		hi := sp.origLen
		if offset+length < sp.fileOff+sp.origLen {
			hi = offset + length - sp.fileOff
		}
		out = append(out, parts[i][lo:hi]...)
	}
	return out, nil
}

// ScrubReport summarizes an integrity pass.
type ScrubReport struct {
	ChunksChecked int
	Healthy       int
	Repaired      int
	Unrepairable  int
	// Skipped counts chunks that mutated concurrently between the scan
	// and the repair; the next scrub sees their final state.
	Skipped int
}

// Scrub verifies every stored chunk against its checksum and rewrites any
// missing, truncated or corrupted shard from its mirrors or RAID peers —
// the background maintenance a production deployment of the paper's
// architecture would run against silent provider corruption.
//
// The chunk table is snapshotted under d.mu; all verification and repair
// I/O runs without the lock so a scrub never stalls client traffic.
// Before rewriting a damaged chunk the owning file's generation is
// re-checked: a chunk mutated since the scan belongs to a newer write,
// and repairing its old blobs would only resurrect retired data.
func (d *Distributor) Scrub() (ScrubReport, error) {
	d.mu.RLock()
	type item struct {
		plan fetchPlan
		fe   *fileEntry
		gen  uint64
	}
	items := make([]item, 0, len(d.chunks))
	for i := range d.chunks {
		entry := &d.chunks[i]
		if entry.CPIndex < 0 {
			continue // removed
		}
		fe := d.clients[entry.Client].Files[entry.Filename]
		items = append(items, item{plan: d.planFetch(entry), fe: fe, gen: fe.Gen})
	}
	d.mu.RUnlock()

	var rep ScrubReport
	for k := range items {
		it := &items[k]
		entry := &it.plan.entry
		rep.ChunksChecked++

		healthy := false
		if payload, ok := d.tryGet(entry.CPIndex, entry.VirtualID, entry.PayloadLen); ok {
			if d.payloadMatches(entry, payload) {
				healthy = true
			}
		}
		if healthy {
			// Also verify mirrors; refresh any stale copy.
			stale := false
			for _, m := range entry.Mirrors {
				payload, ok := d.tryGet(m.CPIndex, m.VirtualID, entry.PayloadLen)
				if !ok || !d.payloadMatches(entry, payload) {
					stale = true
				}
			}
			if !stale {
				rep.Healthy++
				continue
			}
		}

		// Rebuild the canonical payload from any healthy source.
		payload, err := d.healthyPayload(&it.plan)
		if err != nil {
			rep.Unrepairable++
			continue
		}

		d.mu.RLock()
		feNow, ok := d.clients[entry.Client].Files[entry.Filename]
		changed := !ok || feNow != it.fe || feNow.Gen != it.gen
		d.mu.RUnlock()
		if changed {
			rep.Skipped++
			continue
		}

		// Rewrite primary and mirrors. Repair traffic is recorded but not
		// gated: a scrub is exactly the kind of background write that
		// should keep probing a struggling provider.
		repaired := true
		if e := d.providerOp(entry.CPIndex, func(p provider.Provider) error {
			return p.Put(entry.VirtualID, payload)
		}); e != nil {
			repaired = false
		}
		for _, m := range entry.Mirrors {
			m := m
			if e := d.providerOp(m.CPIndex, func(p provider.Provider) error {
				return p.Put(m.VirtualID, payload)
			}); e != nil {
				repaired = false
			}
		}
		if repaired {
			rep.Repaired++
		} else {
			rep.Unrepairable++
		}
	}
	return rep, nil
}

// payloadMatches verifies a stored payload against the chunk's checksum
// (after stripping misleading bytes).
func (d *Distributor) payloadMatches(entry *chunkEntry, payload []byte) bool {
	data, err := stripAndVerify(entry, payload)
	return err == nil && data != nil
}

// healthyPayload finds a payload copy that passes verification: primary,
// then mirrors, then RAID reconstruction. It works entirely from the
// plan and takes no locks.
func (d *Distributor) healthyPayload(plan *fetchPlan) ([]byte, error) {
	entry := &plan.entry
	if payload, ok := d.tryGet(entry.CPIndex, entry.VirtualID, entry.PayloadLen); ok && d.payloadMatches(entry, payload) {
		return payload, nil
	}
	for _, m := range entry.Mirrors {
		if payload, ok := d.tryGet(m.CPIndex, m.VirtualID, entry.PayloadLen); ok && d.payloadMatches(entry, payload) {
			return payload, nil
		}
	}
	payload, err := d.reconstructPlan(plan)
	if err != nil {
		return nil, err
	}
	if !d.payloadMatches(entry, payload) {
		return nil, fmt.Errorf("%w: reconstruction yields corrupt payload", ErrUnavailable)
	}
	return payload, nil
}
