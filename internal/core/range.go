package core

import (
	"fmt"

	"repro/internal/provider"
)

// GetRange serves an arbitrary byte range of a file by fetching only the
// chunks that overlap it — the fragmentation-side win of the paper's
// §VII-E comparison ("This approach exploits the benefit of parallel
// query processing as various fragments can be accessed simultaneously"):
// a point query touches one or two chunks instead of the whole object.
func (d *Distributor) GetRange(client, password, filename string, offset, length int) ([]byte, error) {
	if offset < 0 || length < 0 {
		return nil, fmt.Errorf("%w: range [%d, %d)", ErrConfig, offset, offset+length)
	}
	d.mu.Lock()
	c, _, err := d.auth(client, password)
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	fe, ok := c.Files[filename]
	if !ok {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	if _, err := d.authorize(client, password, fe.PL); err != nil {
		d.mu.Unlock()
		return nil, err
	}
	d.counters.rangeReads.Add(1)
	if length == 0 {
		d.mu.Unlock()
		return []byte{}, nil
	}

	// Locate overlapping chunks by walking cumulative original sizes.
	// Chunk original length = PayloadLen - decoy count (mislead bytes are
	// not part of the file). Fetch plans for the overlapping chunks are
	// snapshotted under the lock; the provider I/O happens outside it.
	type span struct {
		plan    fetchPlan
		fileOff int // offset of this chunk within the file
		origLen int
	}
	var spans []span
	cum := 0
	for serial, idx := range fe.ChunkIdx {
		if idx < 0 {
			d.mu.Unlock()
			return nil, fmt.Errorf("%w: serial %d was removed", ErrNoSuchChunk, serial)
		}
		entry := &d.chunks[idx]
		if cum+entry.DataLen > offset && cum < offset+length {
			spans = append(spans, span{plan: d.planFetch(entry), fileOff: cum, origLen: entry.DataLen})
		}
		cum += entry.DataLen
	}
	if offset+length > cum {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: range [%d, %d) beyond file of %d bytes", ErrNoSuchChunk, offset, offset+length, cum)
	}
	d.mu.Unlock()

	out := make([]byte, 0, length)
	for i := range spans {
		sp := &spans[i]
		data, err := d.fetchChunkPlan(&sp.plan)
		if err != nil {
			return nil, err
		}
		lo := 0
		if offset > sp.fileOff {
			lo = offset - sp.fileOff
		}
		hi := sp.origLen
		if offset+length < sp.fileOff+sp.origLen {
			hi = offset + length - sp.fileOff
		}
		out = append(out, data[lo:hi]...)
	}
	return out, nil
}

// ScrubReport summarizes an integrity pass.
type ScrubReport struct {
	ChunksChecked int
	Healthy       int
	Repaired      int
	Unrepairable  int
}

// Scrub verifies every stored chunk against its checksum and rewrites any
// missing, truncated or corrupted shard from its mirrors or RAID peers —
// the background maintenance a production deployment of the paper's
// architecture would run against silent provider corruption.
func (d *Distributor) Scrub() (ScrubReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var rep ScrubReport
	for i := range d.chunks {
		entry := &d.chunks[i]
		if entry.CPIndex < 0 {
			continue // removed
		}
		rep.ChunksChecked++

		healthy := false
		if payload, ok := d.tryGet(entry.CPIndex, entry.VirtualID, entry.PayloadLen); ok {
			if d.payloadMatches(entry, payload) {
				healthy = true
			}
		}
		if healthy {
			// Also verify mirrors; refresh any stale copy.
			stale := false
			for _, m := range entry.Mirrors {
				payload, ok := d.tryGet(m.CPIndex, m.VirtualID, entry.PayloadLen)
				if !ok || !d.payloadMatches(entry, payload) {
					stale = true
				}
			}
			if !stale {
				rep.Healthy++
				continue
			}
		}

		// Rebuild the canonical payload from any healthy source.
		payload, err := d.healthyPayload(entry)
		if err != nil {
			rep.Unrepairable++
			continue
		}
		// Rewrite primary and mirrors. Repair traffic is recorded but not
		// gated: a scrub is exactly the kind of background write that
		// should keep probing a struggling provider.
		repaired := true
		if e := d.providerOp(entry.CPIndex, func(p provider.Provider) error {
			return p.Put(entry.VirtualID, payload)
		}); e != nil {
			repaired = false
		}
		for _, m := range entry.Mirrors {
			m := m
			if e := d.providerOp(m.CPIndex, func(p provider.Provider) error {
				return p.Put(m.VirtualID, payload)
			}); e != nil {
				repaired = false
			}
		}
		if repaired {
			rep.Repaired++
		} else {
			rep.Unrepairable++
		}
	}
	return rep, nil
}

// payloadMatches verifies a stored payload against the chunk's checksum
// (after stripping misleading bytes).
func (d *Distributor) payloadMatches(entry *chunkEntry, payload []byte) bool {
	data, err := stripAndVerify(entry, payload)
	return err == nil && data != nil
}

// healthyPayload finds a payload copy that passes verification: primary,
// then mirrors, then RAID reconstruction.
func (d *Distributor) healthyPayload(entry *chunkEntry) ([]byte, error) {
	if payload, ok := d.tryGet(entry.CPIndex, entry.VirtualID, entry.PayloadLen); ok && d.payloadMatches(entry, payload) {
		return payload, nil
	}
	for _, m := range entry.Mirrors {
		if payload, ok := d.tryGet(m.CPIndex, m.VirtualID, entry.PayloadLen); ok && d.payloadMatches(entry, payload) {
			return payload, nil
		}
	}
	plan := d.planFetch(entry)
	payload, err := d.reconstructPlan(&plan)
	if err != nil {
		return nil, err
	}
	if !d.payloadMatches(entry, payload) {
		return nil, fmt.Errorf("%w: reconstruction yields corrupt payload", ErrUnavailable)
	}
	return payload, nil
}
