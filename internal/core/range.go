package core

import (
	"bytes"
	"fmt"

	"repro/internal/provider"
	"repro/internal/raid"
)

// GetRange serves an arbitrary byte range of a file by fetching only the
// chunks that overlap it — the fragmentation-side win of the paper's
// §VII-E comparison ("This approach exploits the benefit of parallel
// query processing as various fragments can be accessed simultaneously"):
// a point query touches one or two chunks instead of the whole object.
// Overlapping chunks are fetched with the same bounded fan-out as
// GetFile; the output is assembled in file order regardless of which
// fetch finishes first.
func (d *Distributor) GetRange(client, password, filename string, offset, length int) ([]byte, error) {
	if offset < 0 || length < 0 {
		return nil, fmt.Errorf("%w: range [%d, %d)", ErrConfig, offset, offset+length)
	}
	d.mu.RLock()
	c, _, err := d.auth(client, password)
	if err != nil {
		d.mu.RUnlock()
		return nil, err
	}
	fe, ok := c.Files[filename]
	if !ok {
		d.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	if _, err := d.authorize(client, password, fe.PL); err != nil {
		d.mu.RUnlock()
		return nil, err
	}
	d.counters.rangeReads.Add(1)
	if length == 0 {
		d.mu.RUnlock()
		return []byte{}, nil
	}

	// Locate overlapping chunks by walking cumulative original sizes.
	// Chunk original length = PayloadLen - decoy count (mislead bytes are
	// not part of the file). Fetch plans for the overlapping chunks are
	// snapshotted under the lock; the provider I/O happens outside it.
	type span struct {
		plan    fetchPlan
		fileOff int // offset of this chunk within the file
		origLen int
	}
	var spans []span
	cum := 0
	for serial, idx := range fe.ChunkIdx {
		if idx < 0 {
			d.mu.RUnlock()
			return nil, fmt.Errorf("%w: serial %d was removed", ErrNoSuchChunk, serial)
		}
		entry := &d.chunks[idx]
		if cum+entry.DataLen > offset && cum < offset+length {
			spans = append(spans, span{plan: d.planFetch(entry), fileOff: cum, origLen: entry.DataLen})
		}
		cum += entry.DataLen
	}
	if offset+length > cum {
		d.mu.RUnlock()
		return nil, fmt.Errorf("%w: [%d, %d) beyond file of %d bytes", ErrRange, offset, offset+length, cum)
	}
	d.mu.RUnlock()

	// Fan the span fetches out; each result lands in its own slot so the
	// assembly below sees them in file order.
	parts := make([][]byte, len(spans))
	jobs := make([]func() error, len(spans))
	for i := range spans {
		i := i
		jobs[i] = func() error {
			data, err := d.fetchChunkPlan(&spans[i].plan)
			if err != nil {
				return err
			}
			parts[i] = data
			return nil
		}
	}
	if err := d.fanOut(jobs); err != nil {
		return nil, err
	}

	out := make([]byte, 0, length)
	for i := range spans {
		sp := &spans[i]
		lo := 0
		if offset > sp.fileOff {
			lo = offset - sp.fileOff
		}
		hi := sp.origLen
		if offset+length < sp.fileOff+sp.origLen {
			hi = offset + length - sp.fileOff
		}
		out = append(out, parts[i][lo:hi]...)
	}
	return out, nil
}

// ScrubReport summarizes an integrity pass.
type ScrubReport struct {
	ChunksChecked int
	Healthy       int
	Repaired      int
	Unrepairable  int
	// Skipped counts chunks that mutated concurrently between the scan
	// and the repair; the next scrub sees their final state.
	Skipped int
	// ParityChecked/ParityRepaired/ParityUnrepairable cover the second
	// phase: every stripe's parity shards recomputed from its members and
	// compared byte-for-byte against what the providers hold. Without
	// this phase a rotted parity blob stays latent until the exact
	// provider failure it was bought to survive.
	ParityChecked      int
	ParityRepaired     int
	ParityUnrepairable int
}

// Scrub verifies every stored chunk against its checksum and rewrites any
// missing, truncated or corrupted shard from its mirrors or RAID peers —
// the background maintenance a production deployment of the paper's
// architecture would run against silent provider corruption.
//
// The chunk table is snapshotted under d.mu; all verification and repair
// I/O runs without the lock so a scrub never stalls client traffic.
// Before rewriting a damaged chunk the owning file's generation is
// re-checked: a chunk mutated since the scan belongs to a newer write,
// and repairing its old blobs would only resurrect retired data.
func (d *Distributor) Scrub() (ScrubReport, error) {
	d.mu.RLock()
	type item struct {
		plan fetchPlan
		fe   *fileEntry
		gen  uint64
	}
	items := make([]item, 0, len(d.chunks))
	for i := range d.chunks {
		entry := &d.chunks[i]
		if entry.CPIndex < 0 {
			continue // removed
		}
		fe := d.clients[entry.Client].Files[entry.Filename]
		items = append(items, item{plan: d.planFetch(entry), fe: fe, gen: fe.Gen})
	}
	d.mu.RUnlock()

	var rep ScrubReport
	for k := range items {
		it := &items[k]
		entry := &it.plan.entry
		rep.ChunksChecked++

		healthy := false
		if payload, ok := d.tryGet(entry.CPIndex, entry.VirtualID, entry.PayloadLen); ok {
			if d.payloadMatches(entry, payload) {
				healthy = true
			}
		}
		if healthy {
			// Also verify mirrors; refresh any stale copy.
			stale := false
			for _, m := range entry.Mirrors {
				payload, ok := d.tryGet(m.CPIndex, m.VirtualID, entry.PayloadLen)
				if !ok || !d.payloadMatches(entry, payload) {
					stale = true
				}
			}
			if !stale {
				rep.Healthy++
				continue
			}
		}

		// Rebuild the canonical payload from any healthy source — the
		// read ladder only returns verified bytes.
		payload, err := d.fetchPayloadPlan(&it.plan)
		if err != nil {
			rep.Unrepairable++
			continue
		}

		d.mu.RLock()
		feNow, ok := d.clients[entry.Client].Files[entry.Filename]
		changed := !ok || feNow != it.fe || feNow.Gen != it.gen
		d.mu.RUnlock()
		if changed {
			rep.Skipped++
			continue
		}

		// Rewrite primary and mirrors. Repair traffic is recorded but not
		// gated: a scrub is exactly the kind of background write that
		// should keep probing a struggling provider.
		repaired := true
		if e := d.providerOp(entry.CPIndex, func(p provider.Provider) error {
			return p.Put(entry.VirtualID, payload)
		}); e != nil {
			repaired = false
		}
		for _, m := range entry.Mirrors {
			m := m
			if e := d.providerOp(m.CPIndex, func(p provider.Provider) error {
				return p.Put(m.VirtualID, payload)
			}); e != nil {
				repaired = false
			}
		}
		if repaired {
			rep.Repaired++
		} else {
			rep.Unrepairable++
		}
	}
	d.scrubParity(&rep)
	return rep, nil
}

// scrubParity is Scrub's second phase: recompute every stripe's parity
// from its (verified) member payloads and rewrite any parity blob that
// is missing, truncated or holds different bytes. The same generation
// re-check as chunk repair applies — a stripe mutated since the snapshot
// belongs to a newer write and is left to the next scrub.
func (d *Distributor) scrubParity(rep *ScrubReport) {
	d.mu.RLock()
	type stripeItem struct {
		level       raid.Level
		shardLen    int
		parity      []parityShard
		memberPlans []fetchPlan
		fe          *fileEntry
		gen         uint64
		client      string
		filename    string
	}
	items := make([]stripeItem, 0, len(d.stripes))
	for si := range d.stripes {
		st := &d.stripes[si]
		if len(st.Parity) == 0 || len(st.Members) == 0 {
			continue
		}
		owner := &d.chunks[st.Members[0]]
		if owner.CPIndex < 0 {
			continue
		}
		fe := d.clients[owner.Client].Files[owner.Filename]
		it := stripeItem{
			level:    st.Level,
			shardLen: st.ShardLen,
			parity:   append([]parityShard(nil), st.Parity...),
			fe:       fe,
			gen:      fe.Gen,
			client:   owner.Client,
			filename: owner.Filename,
		}
		for _, ci := range st.Members {
			it.memberPlans = append(it.memberPlans, d.planFetch(&d.chunks[ci]))
		}
		items = append(items, it)
	}
	d.mu.RUnlock()

	for k := range items {
		it := &items[k]
		rep.ParityChecked += len(it.parity)

		// Parity is computed over the zero-padded stored payloads, so the
		// members must be readable (any healthy source) to know the truth.
		padded := make([][]byte, len(it.memberPlans))
		readable := true
		for mi := range it.memberPlans {
			payload, err := d.fetchPayloadPlan(&it.memberPlans[mi])
			if err != nil {
				readable = false
				break
			}
			pad := make([]byte, it.shardLen)
			copy(pad, payload)
			padded[mi] = pad
		}
		if !readable {
			rep.ParityUnrepairable += len(it.parity)
			continue
		}
		expected := make([][]byte, it.level.ParityShards())
		for i := range expected {
			expected[i] = make([]byte, it.shardLen)
		}
		if err := raid.ParityInto(it.level, padded, expected); err != nil {
			rep.ParityUnrepairable += len(it.parity)
			continue
		}

		for pi, ps := range it.parity {
			if pi >= len(expected) {
				break
			}
			got, ok := d.tryGet(ps.CPIndex, ps.VirtualID, it.shardLen)
			if ok && bytes.Equal(got, expected[pi]) {
				continue // healthy
			}
			d.mu.RLock()
			feNow, ok := d.clients[it.client].Files[it.filename]
			changed := !ok || feNow != it.fe || feNow.Gen != it.gen
			d.mu.RUnlock()
			if changed {
				rep.Skipped++
				continue
			}
			ps := ps
			pi := pi
			if e := d.providerOp(ps.CPIndex, func(p provider.Provider) error {
				return p.Put(ps.VirtualID, expected[pi])
			}); e != nil {
				rep.ParityUnrepairable++
			} else {
				rep.ParityRepaired++
			}
		}
	}
}

// payloadMatches verifies a stored payload against the chunk's checksum
// (after stripping misleading bytes).
func (d *Distributor) payloadMatches(entry *chunkEntry, payload []byte) bool {
	data, err := stripAndVerify(entry, payload)
	return err == nil && data != nil
}
