package core

import (
	"bytes"
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/provider"
	"repro/internal/raid"
)

// rangeSpan is one chunk overlapping a requested byte range: its fetch
// plan, its position in the file, and — after the fetch phases — its
// verified read result.
type rangeSpan struct {
	plan    fetchPlan
	fileOff int // offset of this chunk within the file
	origLen int
	res     fetchResult
	ok      bool
}

// GetRange serves an arbitrary byte range of a file by fetching only the
// chunks that overlap it — the fragmentation-side win of the paper's
// §VII-E comparison ("This approach exploits the benefit of parallel
// query processing as various fragments can be accessed simultaneously"):
// a point query touches one or two chunks instead of the whole object.
//
// The read is stripe-selective. Phase one fans the overlapping chunks
// out over their primaries and mirrors only. Only if a chunk stays
// unreadable does phase two reconstruct — one stripe solve per affected
// stripe, seeded with the members phase one already verified, so a span
// never fetches shards of stripes it does not touch, and two missing
// members of the same stripe cost one reconstruction instead of two.
// Every fetched buffer is returned to the pool after the assembly copies
// the requested window out.
func (d *Distributor) GetRange(client, password, filename string, offset, length int) ([]byte, error) {
	if offset < 0 || length < 0 {
		return nil, fmt.Errorf("%w: range [%d, %d)", ErrConfig, offset, offset+length)
	}
	d.mu.RLock()
	c, _, err := d.auth(client, password)
	if err != nil {
		d.mu.RUnlock()
		return nil, err
	}
	fe, ok := c.Files[filename]
	if !ok {
		d.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, filename)
	}
	if _, err := d.authorize(client, password, fe.PL); err != nil {
		d.mu.RUnlock()
		return nil, err
	}
	d.counters.rangeReads.Add(1)
	if length == 0 {
		d.mu.RUnlock()
		return []byte{}, nil
	}

	// Locate overlapping chunks by walking cumulative original sizes.
	// Chunk original length = PayloadLen - decoy count (mislead bytes are
	// not part of the file). Fetch plans for the overlapping chunks are
	// snapshotted under the lock; the provider I/O happens outside it.
	var spans []rangeSpan
	cum := 0
	for serial, idx := range fe.ChunkIdx {
		if idx < 0 {
			d.mu.RUnlock()
			return nil, fmt.Errorf("%w: serial %d was removed", ErrNoSuchChunk, serial)
		}
		entry := &d.chunks[idx]
		if cum+entry.DataLen > offset && cum < offset+length {
			spans = append(spans, rangeSpan{plan: d.planFetch(entry), fileOff: cum, origLen: entry.DataLen})
		}
		cum += entry.DataLen
	}
	if offset+length > cum {
		d.mu.RUnlock()
		return nil, fmt.Errorf("%w: [%d, %d) beyond file of %d bytes", ErrRange, offset, offset+length, cum)
	}
	d.mu.RUnlock()

	// Phase one: primaries and mirrors only, fanned out across all
	// overlapping chunks. Failures are collected, not returned — a
	// missing member is phase two's job.
	d.runParallel(len(spans), func(i int) {
		sp := &spans[i]
		if res, err := d.fetchDirect(&sp.plan); err == nil {
			sp.res = res
			sp.ok = true
		}
	})

	// Phase two: one shared stripe solve per stripe with unreadable
	// members, seeded with the payloads phase one verified.
	if err := d.reconstructSpanStripes(spans); err != nil {
		return nil, err
	}

	out := make([]byte, 0, length)
	for i := range spans {
		sp := &spans[i]
		lo := 0
		if offset > sp.fileOff {
			lo = offset - sp.fileOff
		}
		hi := sp.origLen
		if offset+length < sp.fileOff+sp.origLen {
			hi = offset + length - sp.fileOff
		}
		out = append(out, sp.res.recovered[lo:hi]...)
	}
	// The recovered buffers are uniquely owned by this request (provider
	// gets return copies, strip/decrypt allocate, and range reads never
	// populate the cache), so after the copy-out they go back to the pool.
	for i := range spans {
		bufpool.Put(spans[i].res.recovered)
	}
	return out, nil
}

// fetchDirect walks a chunk's primary and mirror rungs only — no
// reconstruction rung. The range path recovers unreadable members with
// one shared stripe solve per group instead of a per-chunk rebuild.
func (d *Distributor) fetchDirect(plan *fetchPlan) (fetchResult, error) {
	rungs := d.readRungs(plan)
	rungs = rungs[:len(rungs)-1] // drop the reconstruction rung
	if d.hedgeAfter <= 0 {
		return d.fetchSequential(rungs)
	}
	return d.fetchHedged(rungs)
}

// reconstructSpanStripes rebuilds every span chunk phase one could not
// read. Spans are grouped by stripe; each affected stripe is solved once
// — members already verified seed the solve as known shards, the other
// surviving shards of that stripe (and only that stripe) are fetched
// raw, and every missing member falls out of the same decode. Rebuilt
// payloads are verified end-to-end before they count.
func (d *Distributor) reconstructSpanStripes(spans []rangeSpan) error {
	groups := make(map[int][]int) // StripeID → span indices
	var order []int
	for i := range spans {
		id := spans[i].plan.entry.StripeID
		if _, seen := groups[id]; !seen {
			order = append(order, id)
		}
		groups[id] = append(groups[id], i)
	}
	var degraded []int
	for _, id := range order {
		for _, i := range groups[id] {
			if !spans[i].ok {
				degraded = append(degraded, id)
				break
			}
		}
	}
	if len(degraded) == 0 {
		return nil
	}
	return d.fanOutN(len(degraded), func(k int) error {
		return d.solveSpanStripe(spans, groups[degraded[k]])
	})
}

// solveSpanStripe reconstructs the unreadable members among one stripe's
// spans (idxs index into spans; all share the stripe).
func (d *Distributor) solveSpanStripe(spans []rangeSpan, idxs []int) error {
	p0 := &spans[idxs[0]].plan
	if p0.parityCount == 0 {
		return fmt.Errorf("%w: provider down and no parity (raid level none)", ErrUnavailable)
	}
	shards := make([][]byte, p0.dataShards+p0.parityCount)
	var pooled [][]byte
	defer func() {
		for _, b := range pooled {
			bufpool.Put(b)
		}
	}()

	spanBySlot := make(map[int]*rangeSpan, len(idxs))
	for _, i := range idxs {
		sp := &spans[i]
		if sp.plan.targetSlot < 0 {
			return fmt.Errorf("%w: chunk not a member of its stripe", ErrUnavailable)
		}
		spanBySlot[sp.plan.targetSlot] = sp
	}
	// Seed the solve with the members phase one already verified: their
	// stored payloads, zero-padded to the stripe's shard length.
	for slot, sp := range spanBySlot {
		if !sp.ok {
			continue
		}
		pad := bufpool.Get(p0.shardLen)
		n := copy(pad, sp.res.payload)
		clear(pad[n:])
		shards[slot] = pad
		pooled = append(pooled, pad)
	}
	// Fetch the remaining shards of this stripe — and no other — raw.
	// Slots of members phase one failed stay empty: their bytes are
	// exactly what could not be read or verified.
	for _, ref := range p0.siblings {
		if shards[ref.slot] != nil {
			continue
		}
		if sp, isSpan := spanBySlot[ref.slot]; isSpan && !sp.ok {
			continue
		}
		payload, err := d.rawShard(ref.provIdx, ref.vid, p0.shardLen, ref.payloadLen)
		if err != nil {
			continue // leave nil for the decoder
		}
		shards[ref.slot] = payload
		pooled = append(pooled, payload)
	}
	stripe := &raid.Stripe{Level: p0.level, Shards: shards, DataShards: p0.dataShards}
	if err := stripe.Reconstruct(); err != nil {
		return fmt.Errorf("%w: reconstruction failed: %v", ErrUnavailable, err)
	}
	for slot, sp := range spanBySlot {
		if sp.ok {
			continue
		}
		rebuilt := stripe.Shards[slot]
		if len(rebuilt) < sp.plan.entry.PayloadLen {
			return fmt.Errorf("%w: rebuilt shard shorter than payload", ErrUnavailable)
		}
		payload := make([]byte, sp.plan.entry.PayloadLen)
		copy(payload, rebuilt)
		recovered, err := stripAndVerify(&sp.plan.entry, payload)
		if err != nil {
			return fmt.Errorf("%w: reconstruction yields corrupt payload: %v", ErrUnavailable, err)
		}
		sp.res = fetchResult{payload: payload, recovered: recovered}
		sp.ok = true
		d.counters.reconstructions.Add(1)
	}
	return nil
}

// ScrubReport summarizes an integrity pass.
type ScrubReport struct {
	ChunksChecked int
	Healthy       int
	Repaired      int
	Unrepairable  int
	// Skipped counts chunks that mutated concurrently between the scan
	// and the repair; the next scrub sees their final state.
	Skipped int
	// ParityChecked/ParityRepaired/ParityUnrepairable cover the second
	// phase: every stripe's parity shards recomputed from its members and
	// compared byte-for-byte against what the providers hold. Without
	// this phase a rotted parity blob stays latent until the exact
	// provider failure it was bought to survive.
	ParityChecked      int
	ParityRepaired     int
	ParityUnrepairable int
	// ParitySkipped counts parity repairs withheld because the stripe
	// mutated concurrently — the parity phase's counterpart of Skipped,
	// kept separate so the two phases' counts never alias.
	ParitySkipped int
}

// Scrub verifies every stored chunk against its checksum and rewrites any
// missing, truncated or corrupted shard from its mirrors or RAID peers —
// the background maintenance a production deployment of the paper's
// architecture would run against silent provider corruption.
//
// The chunk table is snapshotted under d.mu; all verification and repair
// I/O runs without the lock so a scrub never stalls client traffic.
// Before rewriting a damaged chunk the owning file's generation is
// re-checked: a chunk mutated since the scan belongs to a newer write,
// and repairing its old blobs would only resurrect retired data.
func (d *Distributor) Scrub() (ScrubReport, error) {
	d.mu.RLock()
	type item struct {
		plan fetchPlan
		fe   *fileEntry
		gen  uint64
	}
	items := make([]item, 0, len(d.chunks))
	for i := range d.chunks {
		entry := &d.chunks[i]
		if entry.CPIndex < 0 {
			continue // removed
		}
		fe := d.clients[entry.Client].Files[entry.Filename]
		items = append(items, item{plan: d.planFetch(entry), fe: fe, gen: fe.Gen})
	}
	d.mu.RUnlock()

	var rep ScrubReport
	for k := range items {
		it := &items[k]
		entry := &it.plan.entry
		rep.ChunksChecked++

		healthy := false
		if payload, ok := d.tryGet(entry.CPIndex, entry.VirtualID, entry.PayloadLen); ok {
			if d.payloadMatches(entry, payload) {
				healthy = true
			}
		}
		if healthy {
			// Also verify mirrors; refresh any stale copy.
			stale := false
			for _, m := range entry.Mirrors {
				payload, ok := d.tryGet(m.CPIndex, m.VirtualID, entry.PayloadLen)
				if !ok || !d.payloadMatches(entry, payload) {
					stale = true
				}
			}
			if !stale {
				rep.Healthy++
				continue
			}
		}

		// Rebuild the canonical payload from any healthy source — the
		// read ladder only returns verified bytes.
		payload, err := d.fetchPayloadPlan(&it.plan)
		if err != nil {
			rep.Unrepairable++
			continue
		}

		d.mu.RLock()
		feNow, ok := d.clients[entry.Client].Files[entry.Filename]
		changed := !ok || feNow != it.fe || feNow.Gen != it.gen
		d.mu.RUnlock()
		if changed {
			rep.Skipped++
			continue
		}

		// Rewrite primary and mirrors. Repair traffic is recorded but not
		// gated: a scrub is exactly the kind of background write that
		// should keep probing a struggling provider.
		repaired := true
		if e := d.providerOp(entry.CPIndex, func(p provider.Provider) error {
			return p.Put(entry.VirtualID, payload)
		}); e != nil {
			repaired = false
		}
		for _, m := range entry.Mirrors {
			m := m
			if e := d.providerOp(m.CPIndex, func(p provider.Provider) error {
				return p.Put(m.VirtualID, payload)
			}); e != nil {
				repaired = false
			}
		}
		if repaired {
			rep.Repaired++
		} else {
			rep.Unrepairable++
		}
	}
	d.scrubParity(&rep)
	return rep, nil
}

// stripeScrubItem is one parity-carrying stripe snapshotted for the
// scrub's second phase.
type stripeScrubItem struct {
	level       raid.Level
	shardLen    int
	parity      []parityShard
	memberPlans []fetchPlan
	fe          *fileEntry
	gen         uint64
	client      string
	filename    string
}

// scrubParity is Scrub's second phase: recompute every stripe's parity
// from its (verified) member payloads and rewrite any parity blob that
// is missing, truncated or holds different bytes. The same generation
// re-check as chunk repair applies — a stripe mutated since the snapshot
// belongs to a newer write and is left to the next scrub (counted in
// ParitySkipped).
func (d *Distributor) scrubParity(rep *ScrubReport) {
	d.mu.RLock()
	items := make([]stripeScrubItem, 0, len(d.stripes))
	for si := range d.stripes {
		st := &d.stripes[si]
		if len(st.Parity) == 0 || len(st.Members) == 0 {
			continue
		}
		owner := &d.chunks[st.Members[0]]
		if owner.CPIndex < 0 {
			continue
		}
		fe := d.clients[owner.Client].Files[owner.Filename]
		it := stripeScrubItem{
			level:    st.Level,
			shardLen: st.ShardLen,
			parity:   append([]parityShard(nil), st.Parity...),
			fe:       fe,
			gen:      fe.Gen,
			client:   owner.Client,
			filename: owner.Filename,
		}
		for _, ci := range st.Members {
			it.memberPlans = append(it.memberPlans, d.planFetch(&d.chunks[ci]))
		}
		items = append(items, it)
	}
	d.mu.RUnlock()

	for k := range items {
		d.scrubStripeParity(&items[k], rep)
	}
}

// scrubStripeParity verifies and repairs one stripe's parity shards. The
// padded member copies and recomputed parity live in pooled scratch
// released before returning.
func (d *Distributor) scrubStripeParity(it *stripeScrubItem, rep *ScrubReport) {
	rep.ParityChecked += len(it.parity)

	var scratch [][]byte
	defer func() {
		for _, b := range scratch {
			bufpool.Put(b)
		}
	}()

	// Parity is computed over the zero-padded stored payloads, so the
	// members must be readable (any healthy source) to know the truth.
	padded := make([][]byte, len(it.memberPlans))
	for mi := range it.memberPlans {
		payload, err := d.fetchPayloadPlan(&it.memberPlans[mi])
		if err != nil {
			rep.ParityUnrepairable += len(it.parity)
			return
		}
		pad := bufpool.Get(it.shardLen)
		n := copy(pad, payload)
		clear(pad[n:])
		padded[mi] = pad
		scratch = append(scratch, pad)
	}
	expected := make([][]byte, it.level.ParityShards())
	for i := range expected {
		expected[i] = bufpool.Get(it.shardLen)
		scratch = append(scratch, expected[i])
	}
	if err := raid.ParityInto(it.level, padded, expected); err != nil {
		rep.ParityUnrepairable += len(it.parity)
		return
	}

	for pi, ps := range it.parity {
		if pi >= len(expected) {
			break
		}
		got, ok := d.tryGet(ps.CPIndex, ps.VirtualID, it.shardLen)
		if ok && bytes.Equal(got, expected[pi]) {
			continue // healthy
		}
		d.mu.RLock()
		feNow, ok := d.clients[it.client].Files[it.filename]
		changed := !ok || feNow != it.fe || feNow.Gen != it.gen
		d.mu.RUnlock()
		if changed {
			rep.ParitySkipped++
			continue
		}
		ps := ps
		pi := pi
		if e := d.providerOp(ps.CPIndex, func(p provider.Provider) error {
			return p.Put(ps.VirtualID, expected[pi])
		}); e != nil {
			rep.ParityUnrepairable++
		} else {
			rep.ParityRepaired++
		}
	}
}

// payloadMatches verifies a stored payload against the chunk's checksum
// (after stripping misleading bytes).
func (d *Distributor) payloadMatches(entry *chunkEntry, payload []byte) bool {
	data, err := stripAndVerify(entry, payload)
	return err == nil && data != nil
}
