package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/privacy"
)

// shardKind distinguishes the three blob types an upload stages.
type shardKind int

const (
	shardData shardKind = iota
	shardMirror
	shardParity
)

// stagedShard is one provider blob of an in-flight upload, carrying back
// references into the staged tables (positions, not pointers — the
// staging loop appends, which reallocates) so a failover can re-home the
// shard and patch the metadata that will be committed.
type stagedShard struct {
	kind      shardKind
	chunkPos  int // index into newChunks (data and mirror shards), -1 otherwise
	mirrorPos int // index into that chunk's Mirrors (mirror shards), -1 otherwise
	stripePos int // index into newStripes
	parityPos int // index into that stripe's Parity (parity shards), -1 otherwise
	provIdx   int
	vid       string
	payload   []byte
	failed    map[int]bool // providers that already failed this shard
}

// storedShard locates a blob that reached a provider, for rollback.
type storedShard struct {
	provIdx int
	vid     string
}

// writeTicket tracks what one in-flight mutation has staged but not yet
// committed: the per-provider shard deltas (mirrored into d.provPending
// so concurrent planners balance load against them) and the staged
// virtual ids (registered in d.inflight so the orphan audit never
// collects a blob that is shipped but not yet committed). A ticket ends
// in exactly one of commitTicketLocked or releaseTicketLocked.
type writeTicket struct {
	delta []int
	vids  []string
}

// newTicketLocked opens a ticket. Callers hold d.mu.
func (d *Distributor) newTicketLocked() *writeTicket {
	return &writeTicket{delta: make([]int, d.fleet.Len())}
}

// stageLocked records one staged blob on provIdx. Callers hold d.mu.
func (d *Distributor) stageLocked(t *writeTicket, provIdx int, vid string) {
	t.delta[provIdx]++
	d.provPending[provIdx]++
	d.inflight[vid]++
	t.vids = append(t.vids, vid)
}

// unstageProviderLocked moves one staged blob off provIdx because a
// failover is about to re-home it. The superseded vid stays registered
// until the ticket ends — it only shields a doomed blob from the audit a
// little longer. Callers hold d.mu.
func (d *Distributor) unstageProviderLocked(t *writeTicket, provIdx int) {
	t.delta[provIdx]--
	d.provPending[provIdx]--
}

// releaseTicketLocked withdraws the ticket's pending load and inflight
// registrations without touching committed counts — the abort path.
// Callers hold d.mu.
func (d *Distributor) releaseTicketLocked(t *writeTicket) {
	for i, n := range t.delta {
		d.provPending[i] -= n
	}
	for _, vid := range t.vids {
		if d.inflight[vid]--; d.inflight[vid] <= 0 {
			delete(d.inflight, vid)
		}
	}
	t.delta = nil
	t.vids = nil
}

// commitTicketLocked folds the staged shard deltas into the committed
// provider counts and releases the ticket. Callers hold d.mu.
func (d *Distributor) commitTicketLocked(t *writeTicket) {
	for i, n := range t.delta {
		d.provCount[i] += n
	}
	d.releaseTicketLocked(t)
}

// releaseTicket is releaseTicketLocked for callers outside the lock.
func (d *Distributor) releaseTicket(t *writeTicket) {
	d.mu.Lock()
	d.releaseTicketLocked(t)
	d.mu.Unlock()
}

// relatedProviders collects the providers that shard i must not share:
// the other data/parity shards of its stripe (distinct-provider RAID
// constraint), and — for data and mirror shards — the other copies of
// the same chunk. Mirrors of *other* chunks in the stripe are not
// excluded, matching the staging policy.
func relatedProviders(shards []stagedShard, i int) map[int]bool {
	s := &shards[i]
	ex := make(map[int]bool)
	for j := range shards {
		if j == i {
			continue
		}
		t := &shards[j]
		sameStripe := t.stripePos == s.stripePos &&
			s.kind != shardMirror && t.kind != shardMirror
		sameChunk := s.chunkPos >= 0 && t.chunkPos == s.chunkPos &&
			(s.kind == shardMirror || t.kind == shardMirror)
		if sameStripe || sameChunk {
			ex[t.provIdx] = true
		}
	}
	return ex
}

// shipStaged sends every staged shard to its provider with bounded
// fan-out, failing individual shards over to the next healthy eligible
// provider (fresh virtual id, staged tables and ticket patched) when a
// put exhausts its transient retries or hits an open circuit. Only when
// a shard runs out of eligible providers does the whole write fail. It
// always returns the blobs that reached a provider — on error too — so
// the caller can roll them back (and, for streaming uploads, fold them
// into a rollback list spanning many shipStaged calls) and leave no
// orphans. Runs WITHOUT d.mu: the provider round-trips are the slow
// part of every upload, and holding the lock here would serialize all
// clients behind one slow provider. Only the failover placement
// decisions re-acquire the lock briefly (the VID allocator and the
// pending-load accounting live under it). newChunks and newStripes are
// private to the calling request until its commit, so patching them
// here is race-free.
func (d *Distributor) shipStaged(pl privacy.Level, shards []stagedShard, newChunks []chunkEntry, newStripes []stripeEntry, t *writeTicket) ([]storedShard, error) {
	var stored []storedShard
	pending := make([]int, len(shards))
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		jobs := make([]func() error, len(pending))
		for k, si := range pending {
			s := &shards[si]
			provIdx, vid, payload := s.provIdx, s.vid, s.payload
			jobs[k] = func() error { return d.gatedPut(provIdx, vid, payload) }
		}
		errs := d.fanOutEach(jobs)
		// Record every success of this round before handling any failure:
		// a failover-exhausted rollback must cover shards that landed
		// after the failed one in the same round.
		for k, si := range pending {
			if errs[k] == nil {
				stored = append(stored, storedShard{shards[si].provIdx, shards[si].vid})
			}
		}
		var next []int
		for k, si := range pending {
			s := &shards[si]
			if errs[k] == nil {
				continue
			}
			// Re-home the shard: never back onto a provider that already
			// failed it, never onto a provider holding a related shard.
			if s.failed == nil {
				s.failed = make(map[int]bool)
			}
			s.failed[s.provIdx] = true
			exclude := relatedProviders(shards, si)
			for p := range s.failed {
				exclude[p] = true
			}
			d.mu.Lock()
			d.unstageProviderLocked(t, s.provIdx)
			newProv, perr := d.placeParityExcluding(pl, exclude)
			if perr != nil {
				d.mu.Unlock()
				return stored, fmt.Errorf("shard failover exhausted: %w (last put error: %v)", perr, errs[k])
			}
			s.provIdx = newProv
			s.vid = d.vids.Next()
			d.stageLocked(t, newProv, s.vid)
			d.mu.Unlock()
			switch s.kind {
			case shardData:
				newChunks[s.chunkPos].CPIndex = newProv
				newChunks[s.chunkPos].VirtualID = s.vid
			case shardMirror:
				newChunks[s.chunkPos].Mirrors[s.mirrorPos] = mirrorRef{VirtualID: s.vid, CPIndex: newProv}
			case shardParity:
				newStripes[s.stripePos].Parity[s.parityPos] = parityShard{VirtualID: s.vid, CPIndex: newProv}
			}
			d.counters.writeFailovers.Add(1)
			next = append(next, si)
		}
		pending = next
	}
	return stored, nil
}

// rehomePut writes payload to provider firstProv under firstVID through
// the circuit-breaker gate, failing over to freshly placed providers
// (fresh virtual id each hop) when a put exhausts its retries or the
// circuit is open. exclude lists providers the blob must never land on
// — stripe mates, its own mirrors — beyond the ones that already failed
// it. Returns the provider and virtual id that finally stored the blob;
// the caller patches tables and stale copies at commit. Runs WITHOUT
// d.mu — only the failover placement re-acquires it. The blob must
// already be staged on t at (firstProv, firstVID); every hop moves the
// staging with it, so on error the ticket no longer counts this blob.
func (d *Distributor) rehomePut(pl privacy.Level, firstProv int, firstVID string, payload []byte, exclude map[int]bool, t *writeTicket) (int, string, error) {
	prov, vid := firstProv, firstVID
	failed := make(map[int]bool)
	for {
		err := d.gatedPut(prov, vid, payload)
		if err == nil {
			return prov, vid, nil
		}
		failed[prov] = true
		ex := make(map[int]bool, len(exclude)+len(failed))
		for k := range exclude {
			ex[k] = true
		}
		for k := range failed {
			ex[k] = true
		}
		d.mu.Lock()
		d.unstageProviderLocked(t, prov)
		newProv, perr := d.placeParityExcluding(pl, ex)
		if perr != nil {
			d.mu.Unlock()
			return 0, "", fmt.Errorf("write failover exhausted: %w (last put error: %v)", perr, err)
		}
		vid = d.vids.Next()
		d.stageLocked(t, newProv, vid)
		d.mu.Unlock()
		prov = newProv
		d.counters.writeFailovers.Add(1)
	}
}

// rollbackStored best-effort deletes every blob a failed write already
// stored. The deletes are raw — not routed through providerOp — so a
// provider answering "not found" during cleanup does not count as a
// success that would reset its breaker while the very put failure that
// triggered the rollback is still the live signal.
func (d *Distributor) rollbackStored(stored []storedShard) {
	for _, s := range stored {
		if p, err := d.fleet.At(s.provIdx); err == nil {
			_ = p.Delete(s.vid)
			d.counters.rollbackDeletes.Add(1)
		}
	}
}

// fanOutEach runs jobs with bounded parallelism and returns every job's
// error, index-aligned, so the caller can fail over just the shards that
// failed. With Parallelism 1 the semaphore serializes jobs in submission
// order, which deterministic fault-injection tests rely on.
func (d *Distributor) fanOutEach(jobs []func() error) []error {
	errs := make([]error, len(jobs))
	d.runParallel(len(jobs), func(i int) { errs[i] = jobs[i]() })
	return errs
}

// runParallel invokes fn(0..n-1) with bounded parallelism through a
// fixed worker pool pulling indices from a shared counter: a handful of
// allocations per call regardless of n, instead of a goroutine funcval
// and semaphore slot per job.
func (d *Distributor) runParallel(n int, fn func(int)) {
	workers := d.parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
