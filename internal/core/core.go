package core
