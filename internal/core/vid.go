package core

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// VIDAllocator produces virtual chunk ids. "Inside the Cloud Data
// Distributor each chunk is given a unique virtual id and this id is used
// to identify the chunk within the Cloud Data Distributor and Cloud
// Providers. This virtualization conceals the identity of a client from
// the provider."
type VIDAllocator interface {
	// Next returns a fresh id, never repeating within one distributor.
	Next() string
}

// prfAllocator derives ids as HMAC-SHA256(secret, counter): unlinkable to
// clients and files without the distributor's secret, yet deterministic
// for a given secret so tests are reproducible.
type prfAllocator struct {
	secret []byte
	ctr    uint64
}

// NewPRFAllocator builds the default allocator from a secret key.
func NewPRFAllocator(secret []byte) VIDAllocator {
	cp := make([]byte, len(secret))
	copy(cp, secret)
	return &prfAllocator{secret: cp}
}

func (a *prfAllocator) Next() string {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], a.ctr)
	a.ctr++
	mac := hmac.New(sha256.New, a.secret)
	mac.Write(buf[:])
	return hex.EncodeToString(mac.Sum(nil)[:8])
}

// ScriptedAllocator hands out a fixed sequence of ids, then falls back to
// a PRF allocator. It exists so the Figure 3 walkthrough can reproduce the
// exact virtual ids printed in the paper (10986, 13239, ...).
type ScriptedAllocator struct {
	Sequence []string
	pos      int
	fallback VIDAllocator
}

// NewScriptedAllocator returns an allocator that first yields seq in
// order.
func NewScriptedAllocator(seq []string) *ScriptedAllocator {
	return &ScriptedAllocator{Sequence: seq, fallback: NewPRFAllocator([]byte("scripted-fallback"))}
}

// Next implements VIDAllocator.
func (s *ScriptedAllocator) Next() string {
	if s.pos < len(s.Sequence) {
		id := s.Sequence[s.pos]
		s.pos++
		return id
	}
	return s.fallback.Next()
}
