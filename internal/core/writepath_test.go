package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/privacy"
	"repro/internal/provider"
)

// blockFirstPut installs a fleet-wide hook that blocks the first Put to
// reach any provider until gate is closed, signalling entered when the
// blocked Put arrives. Every other Put passes through untouched.
func blockFirstPut(hooked []*provider.Hooked, entered chan<- struct{}, gate <-chan struct{}) {
	var mu sync.Mutex
	taken := false
	for _, h := range hooked {
		h.SetBeforePut(func(int, string) error {
			mu.Lock()
			first := !taken
			taken = true
			mu.Unlock()
			if first {
				close(entered)
				<-gate
			}
			return nil
		})
	}
}

// within fails the test if fn does not finish (successfully) inside d —
// the detector for operations stalling behind a blocked write.
func within(t *testing.T, d time.Duration, what string, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	case <-time.After(d):
		t.Fatalf("%s stalled behind a blocked write", what)
	}
}

// TestBlockedWriteDoesNotStallReadsOrOtherClients is the tentpole's
// acceptance test: with one upload parked inside a provider Put, reads of
// committed data and a second client's whole upload must still complete.
// Before the plan/ship/commit split, the writer held d.mu across its
// provider I/O and every one of these operations would hang.
func TestBlockedWriteDoesNotStallReadsOrOtherClients(t *testing.T) {
	d, hooked := hookedDistributor(t, 6)
	if err := d.RegisterClient("bob"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPassword("bob", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	warm := payload(2*chunkSizeFor(t, privacy.Moderate), 11)
	if _, err := d.Upload("alice", "root", "warm", warm, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	gate := make(chan struct{})
	blockFirstPut(hooked, entered, gate)

	blockedData := payload(4*chunkSizeFor(t, privacy.Moderate), 12)
	blockedErr := make(chan error, 1)
	go func() {
		_, err := d.Upload("alice", "root", "blocked", blockedData, privacy.Moderate, UploadOptions{})
		blockedErr <- err
	}()
	<-entered

	// The write is parked inside a provider Put. Nothing below may wait
	// on it.
	within(t, 5*time.Second, "read of a committed file", func() error {
		got, err := d.GetFile("alice", "root", "warm")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, warm) {
			t.Error("warm file corrupted during concurrent write")
		}
		return nil
	})
	within(t, 5*time.Second, "range read of a committed file", func() error {
		got, err := d.GetRange("alice", "root", "warm", 100, 500)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, warm[100:600]) {
			t.Error("range read corrupted during concurrent write")
		}
		return nil
	})
	bobData := payload(2*chunkSizeFor(t, privacy.High), 13)
	within(t, 5*time.Second, "second client's upload", func() error {
		_, err := d.Upload("bob", "pw", "bobfile", bobData, privacy.High, UploadOptions{})
		return err
	})

	close(gate)
	if err := <-blockedErr; err != nil {
		t.Fatalf("blocked upload after release: %v", err)
	}
	clearPutHooks(hooked)

	for name, want := range map[string][]byte{"warm": warm, "blocked": blockedData} {
		got, err := d.GetFile("alice", "root", name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("readback %s: %v", name, err)
		}
	}
	if got, err := d.GetFile("bob", "pw", "bobfile"); err != nil || !bytes.Equal(got, bobData) {
		t.Fatalf("readback bobfile: %v", err)
	}
	st := d.Stats()
	for i, h := range hooked {
		if h.Len() != st.PerProvider[i] {
			t.Fatalf("provider %d holds %d keys, table says %d", i, h.Len(), st.PerProvider[i])
		}
	}
}

// TestConcurrentUploadSameFilenameReservation: while one upload of a
// filename is mid-ship, a second upload of the same name must fail fast
// with ErrExists (the plan phase reserves the name) — not interleave, not
// block, not double-commit.
func TestConcurrentUploadSameFilenameReservation(t *testing.T) {
	d, hooked := hookedDistributor(t, 5)
	entered := make(chan struct{})
	gate := make(chan struct{})
	blockFirstPut(hooked, entered, gate)

	data := payload(2*chunkSizeFor(t, privacy.Moderate), 21)
	firstErr := make(chan error, 1)
	go func() {
		_, err := d.Upload("alice", "root", "dup", data, privacy.Moderate, UploadOptions{})
		firstErr <- err
	}()
	<-entered

	within(t, 5*time.Second, "duplicate upload rejection", func() error {
		_, err := d.Upload("alice", "root", "dup", payload(100, 22), privacy.Moderate, UploadOptions{})
		if !errors.Is(err, ErrExists) {
			t.Errorf("concurrent duplicate upload: %v, want ErrExists", err)
		}
		return nil
	})

	close(gate)
	if err := <-firstErr; err != nil {
		t.Fatalf("original upload after release: %v", err)
	}
	got, err := d.GetFile("alice", "root", "dup")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("the reserved upload's content must win: %v", err)
	}
}

// TestUpdateFailureMidwayLeavesStateIntact is the regression test for the
// latent UpdateChunk corruption bug: the old implementation mutated the
// chunk row, provider counts and snapshot pointer — and deleted the old
// snapshot — before knowing the post-state write would succeed. Here the
// snapshot write succeeds, the post-state write fails, and failover is
// impossible (the stripe already spans the whole fleet): the update must
// abort leaving the chunk, the previous snapshot, the provider counts and
// the blob population exactly as they were.
func TestUpdateFailureMidwayLeavesStateIntact(t *testing.T) {
	d, hooked := hookedDistributor(t, 5)
	cs := chunkSizeFor(t, privacy.Moderate)
	data := payload(4*cs, 31)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// First update succeeds and establishes a snapshot of the original
	// chunk 1.
	upd1 := payload(cs, 32)
	if err := d.UpdateChunk("alice", "root", "f", 1, upd1, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	orig1 := data[cs : 2*cs]
	if snap, err := d.GetSnapshot("alice", "root", "f", 1); err != nil || !bytes.Equal(snap, orig1) {
		t.Fatalf("snapshot after first update: %v", err)
	}

	keysBefore := make([]int, len(hooked))
	for i, h := range hooked {
		keysBefore[i] = h.Len()
	}
	statsBefore := d.Stats()

	// Second update: put #1 is the new snapshot (succeeds), put #2 the
	// post-state (fails). The stripe's members and parity cover all five
	// providers, so the post-state has nowhere to fail over to.
	failNthFleetPut(hooked, 2)
	upd2 := payload(cs, 33)
	if err := d.UpdateChunk("alice", "root", "f", 1, upd2, UploadOptions{}); err == nil {
		t.Fatal("update should fail when the post-state write cannot be rehomed")
	}

	// Nothing observable may have changed.
	if got, err := d.GetChunk("alice", "root", "f", 1); err != nil || !bytes.Equal(got, upd1) {
		t.Fatalf("chunk content after failed update: %v", err)
	}
	if snap, err := d.GetSnapshot("alice", "root", "f", 1); err != nil || !bytes.Equal(snap, orig1) {
		t.Fatalf("previous snapshot must survive a failed update: %v", err)
	}
	for i, h := range hooked {
		if h.Len() != keysBefore[i] {
			t.Fatalf("provider %d holds %d keys after failed update, had %d", i, h.Len(), keysBefore[i])
		}
	}
	if st := d.Stats(); !equalInts(st.PerProvider, statsBefore.PerProvider) {
		t.Fatalf("provider counts drifted: %v -> %v", statsBefore.PerProvider, st.PerProvider)
	}
	clearPutHooks(hooked)
	rep, err := d.AuditOrphans(false)
	if err != nil {
		t.Fatal(err)
	}
	for prov, keys := range rep.Orphans {
		if len(keys) > 0 {
			t.Fatalf("orphans on %s after aborted update: %v", prov, keys)
		}
	}

	// The fault was transient: the same update must succeed now, retiring
	// the old snapshot for a new one of upd1.
	if err := d.UpdateChunk("alice", "root", "f", 1, upd2, UploadOptions{}); err != nil {
		t.Fatalf("update after fault cleared: %v", err)
	}
	if got, err := d.GetChunk("alice", "root", "f", 1); err != nil || !bytes.Equal(got, upd2) {
		t.Fatalf("chunk content after retried update: %v", err)
	}
	if snap, err := d.GetSnapshot("alice", "root", "f", 1); err != nil || !bytes.Equal(snap, upd1) {
		t.Fatalf("snapshot after retried update: %v", err)
	}
	want := append(append(append([]byte(nil), data[:cs]...), upd2...), data[2*cs:]...)
	if got, err := d.GetFile("alice", "root", "f"); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("file content after retried update: %v", err)
	}
}

// TestUpdateConflictingRemoveWinsCleanly races an update against a
// removal of the same file: the update is parked inside its first
// provider Put while RemoveFile runs to completion, then resumes, ships
// everything — and must detect at commit that the file is gone, return
// ErrConflict, and roll its blobs back. Generation checking is what makes
// the unlocked ship phase safe; this is its direct test.
func TestUpdateConflictingRemoveWinsCleanly(t *testing.T) {
	d, hooked := hookedDistributor(t, 5)
	cs := chunkSizeFor(t, privacy.Moderate)
	data := payload(4*cs, 41)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	gate := make(chan struct{})
	blockFirstPut(hooked, entered, gate)

	updErr := make(chan error, 1)
	go func() {
		updErr <- d.UpdateChunk("alice", "root", "f", 1, payload(cs, 42), UploadOptions{})
	}()
	<-entered

	within(t, 5*time.Second, "remove during blocked update", func() error {
		return d.RemoveFile("alice", "root", "f")
	})
	close(gate)

	if err := <-updErr; !errors.Is(err, ErrConflict) {
		t.Fatalf("update racing a remove: %v, want ErrConflict", err)
	}
	clearPutHooks(hooked)

	// The remove won; the update's shipped blobs must be rolled back and
	// no trace of the file remain anywhere.
	for i, h := range hooked {
		if h.Len() != 0 {
			t.Fatalf("provider %d holds %d blobs after remove+conflicted update", i, h.Len())
		}
	}
	st := d.Stats()
	if st.Files != 0 || st.Chunks != 0 {
		t.Fatalf("tables not empty after remove: %+v", st)
	}
	rep, err := d.AuditOrphans(false)
	if err != nil {
		t.Fatal(err)
	}
	for prov, keys := range rep.Orphans {
		if len(keys) > 0 {
			t.Fatalf("orphans on %s: %v", prov, keys)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
