package core

import "time"

// ProviderHealth is one provider's externally visible health snapshot,
// JSON-ready for the distributor's health endpoint and CLI.
type ProviderHealth struct {
	Provider            string  `json:"provider"`
	State               string  `json:"state"` // closed | open | half-open
	Successes           int64   `json:"successes"`
	Failures            int64   `json:"failures"`
	ConsecutiveFailures int     `json:"consecutive_failures"`
	Opens               int64   `json:"opens"`
	WindowFailureRatio  float64 `json:"window_failure_ratio"`
	WindowSamples       int     `json:"window_samples"`
	// LatencyEWMAMs is the smoothed successful-operation latency in
	// milliseconds — the signal hedged reads derive their delay from.
	// 0 until the provider has served at least one operation.
	LatencyEWMAMs float64 `json:"latency_ewma_ms"`
}

// Health reports every provider's circuit-breaker state and accumulated
// success/failure counts, indexed by fleet position. It does not take
// d.mu — the tracker has its own synchronization — so it stays readable
// even while a slow operation holds the distributor lock.
func (d *Distributor) Health() []ProviderHealth {
	snap := d.health.Snapshot()
	out := make([]ProviderHealth, len(snap))
	for i, s := range snap {
		name := ""
		if p, err := d.fleet.At(i); err == nil {
			name = p.Info().Name
		}
		ratio := 0.0
		if s.WindowSamples > 0 {
			ratio = float64(s.WindowFailures) / float64(s.WindowSamples)
		}
		out[i] = ProviderHealth{
			Provider:            name,
			State:               s.State.String(),
			Successes:           s.Successes,
			Failures:            s.Failures,
			ConsecutiveFailures: s.ConsecutiveFailures,
			Opens:               s.Opens,
			WindowFailureRatio:  ratio,
			WindowSamples:       s.WindowSamples,
			LatencyEWMAMs:       float64(s.LatencyEWMA) / float64(time.Millisecond),
		}
	}
	return out
}

// CacheHealth reports the chunk cache's hit/miss/eviction counters and
// residency, for the health endpoint. Like Health it does not take d.mu.
// All-zero (Capacity 0) means caching is disabled.
func (d *Distributor) CacheHealth() CacheStats {
	return d.cache.stats()
}
