package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/privacy"
)

// TestConcurrentClients hammers one distributor from many goroutines:
// uploads, reads, range reads, updates and removals interleaved. The
// distributor must stay consistent and race-free (run under -race).
func TestConcurrentClients(t *testing.T) {
	d := testDistributor(t, 8)
	const workers = 6
	const filesPerWorker = 5

	// Worker 0 reuses the fixture's "alice"; the rest get fresh accounts.
	for w := 1; w < workers; w++ {
		name := fmt.Sprintf("client%d", w)
		if err := d.RegisterClient(name); err != nil {
			t.Fatal(err)
		}
		if err := d.AddPassword(name, "pw", privacy.High); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, pw := fmt.Sprintf("client%d", w), "pw"
			if w == 0 {
				client, pw = "alice", "root"
			}
			for f := 0; f < filesPerWorker; f++ {
				name := fmt.Sprintf("w%d-f%d", w, f)
				data := payload(10_000+w*1000+f*100, int64(w*100+f))
				if _, err := d.Upload(client, pw, name, data, privacy.Moderate, UploadOptions{}); err != nil {
					errCh <- fmt.Errorf("worker %d upload %s: %w", w, name, err)
					return
				}
				got, err := d.GetFile(client, pw, name)
				if err != nil {
					errCh <- fmt.Errorf("worker %d read %s: %w", w, name, err)
					return
				}
				if !bytes.Equal(got, data) {
					errCh <- fmt.Errorf("worker %d read %s: mismatch", w, name)
					return
				}
				if _, err := d.GetRange(client, pw, name, 100, 500); err != nil {
					errCh <- fmt.Errorf("worker %d range %s: %w", w, name, err)
					return
				}
				if f%2 == 1 {
					if err := d.UpdateChunk(client, pw, name, 0, []byte("updated"), UploadOptions{}); err != nil {
						errCh <- fmt.Errorf("worker %d update %s: %w", w, name, err)
						return
					}
				}
				if f%3 == 2 {
					if err := d.RemoveFile(client, pw, name); err != nil {
						errCh <- fmt.Errorf("worker %d remove %s: %w", w, name, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Accounting holds after the storm.
	st := d.Stats()
	for i, p := range d.Providers().All() {
		if p.Len() != st.PerProvider[i] {
			t.Fatalf("provider %d holds %d keys, table says %d", i, p.Len(), st.PerProvider[i])
		}
	}
	if st.Clients != workers {
		t.Fatalf("clients = %d", st.Clients)
	}
}

// TestConcurrentReadsDuringOutage interleaves reads with providers
// flapping, exercising the RAID path under concurrency.
func TestConcurrentReadsDuringOutage(t *testing.T) {
	d := testDistributor(t, 6)
	data := payload(60_000, 99)
	if _, err := d.Upload("alice", "root", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			p, _ := d.Providers().At(i % 6)
			p.SetOutage(true)
			p.SetOutage(false)
			i++
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				got, err := d.GetFile("alice", "root", "f")
				if err != nil {
					// A read can legitimately fail if two providers happen
					// to be down at the same instant; content corruption
					// cannot.
					continue
				}
				if !bytes.Equal(got, data) {
					errCh <- fmt.Errorf("read %d: corrupted content", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	flapper.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
