package mining

import (
	"math/rand"
	"testing"
)

func TestKNNBasicClassification(t *testing.T) {
	pts := [][]float64{{0, 0}, {0, 1}, {1, 0}, {10, 10}, {10, 11}, {11, 10}}
	labels := []string{"low", "low", "low", "high", "high", "high"}
	c, err := NewKNN(3, pts, labels)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict([]float64{0.5, 0.5})
	if err != nil || got != "low" {
		t.Fatalf("Predict = %q, %v; want low", got, err)
	}
	got, _ = c.Predict([]float64{10.5, 10.5})
	if got != "high" {
		t.Fatalf("Predict = %q, want high", got)
	}
}

func TestKNNValidation(t *testing.T) {
	pts := [][]float64{{1}}
	if _, err := NewKNN(0, pts, []string{"a"}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := NewKNN(1, nil, nil); err == nil {
		t.Fatal("empty training set should error")
	}
	if _, err := NewKNN(1, pts, []string{"a", "b"}); err == nil {
		t.Fatal("label count mismatch should error")
	}
	if _, err := NewKNN(1, [][]float64{{1}, {1, 2}}, []string{"a", "b"}); err == nil {
		t.Fatal("ragged points should error")
	}
}

func TestKNNPredictDimMismatch(t *testing.T) {
	c, _ := NewKNN(1, [][]float64{{1, 2}}, []string{"a"})
	if _, err := c.Predict([]float64{1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestKNNKLargerThanTrainingSet(t *testing.T) {
	c, _ := NewKNN(10, [][]float64{{0}, {1}}, []string{"a", "b"})
	if _, err := c.Predict([]float64{0.4}); err != nil {
		t.Fatal(err)
	}
}

func TestKNNAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var train, test [][]float64
	var trainL, testL []string
	for i := 0; i < 30; i++ {
		p := []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}
		l := "a"
		if i%2 == 1 {
			p[0] += 8
			l = "b"
		}
		if i < 20 {
			train = append(train, p)
			trainL = append(trainL, l)
		} else {
			test = append(test, p)
			testL = append(testL, l)
		}
	}
	c, err := NewKNN(3, train, trainL)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.Accuracy(test, testL)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Fatalf("accuracy = %v on separable data", acc)
	}
	if _, err := c.Accuracy(nil, nil); err == nil {
		t.Fatal("empty test set should error")
	}
}

func TestKNNDeterministicTieBreak(t *testing.T) {
	// Equidistant neighbours with different labels: result must be stable.
	pts := [][]float64{{-1}, {1}}
	labels := []string{"b", "a"}
	c, _ := NewKNN(2, pts, labels)
	first, _ := c.Predict([]float64{0})
	for i := 0; i < 10; i++ {
		got, _ := c.Predict([]float64{0})
		if got != first {
			t.Fatal("tie-break not deterministic")
		}
	}
}
