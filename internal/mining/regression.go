// Package mining implements the attacker's data-mining toolkit from the
// paper's threat model: multivariate linear regression (the Table IV
// bidding attack), hierarchical agglomerative clustering with dendrograms
// (the Figs. 4–6 GPS attack), k-means clustering, Apriori association-rule
// mining and k-NN prediction. These are the algorithms the paper argues
// fragmentation defeats; implementing them lets the benchmarks measure
// mining success on whole versus fragmented data.
package mining

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrTooFewSamples is returned when a model has more parameters than
// observations — exactly the failure mode fragmentation induces.
var ErrTooFewSamples = errors.New("mining: too few samples for model")

// RegressionModel is a fitted multivariate linear model
// y = Σ Coeffs[i]·x[i] + Intercept.
type RegressionModel struct {
	Coeffs    []float64
	Intercept float64
	// R2 is the coefficient of determination on the training data.
	R2 float64
	// N is the number of observations the model was fitted on.
	N int
}

// LinearRegression fits y ≈ X·β + β₀ by least squares. X is n×p with one
// row per observation. It mirrors the MATLAB "linear multiple regression"
// the paper's attacker (Hera) runs on the bidding history.
func LinearRegression(x [][]float64, y []float64) (*RegressionModel, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("%w: no observations", ErrTooFewSamples)
	}
	if len(y) != n {
		return nil, fmt.Errorf("mining: len(y)=%d but %d observation rows", len(y), n)
	}
	p := len(x[0])
	if n < p+1 {
		return nil, fmt.Errorf("%w: %d observations for %d parameters", ErrTooFewSamples, n, p+1)
	}
	// Design matrix with trailing 1s column for the intercept.
	a := linalg.NewMatrix(n, p+1)
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("mining: ragged observation row %d", i)
		}
		for j, v := range row {
			a.Set(i, j, v)
		}
		a.Set(i, p, 1)
	}
	beta, err := linalg.LeastSquares(a, y)
	if err != nil {
		return nil, fmt.Errorf("mining: regression solve: %w", err)
	}
	m := &RegressionModel{Coeffs: beta[:p], Intercept: beta[p], N: n}
	m.R2 = rSquared(a, beta, y)
	return m, nil
}

func rSquared(a *linalg.Matrix, beta, y []float64) float64 {
	pred, _ := a.MulVec(beta)
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i, v := range y {
		ssRes += (v - pred[i]) * (v - pred[i])
		ssTot += (v - mean) * (v - mean)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// Predict evaluates the model on one observation.
func (m *RegressionModel) Predict(x []float64) (float64, error) {
	if len(x) != len(m.Coeffs) {
		return 0, fmt.Errorf("mining: predict with %d features, model has %d", len(x), len(m.Coeffs))
	}
	s := m.Intercept
	for i, c := range m.Coeffs {
		s += c * x[i]
	}
	return s, nil
}

// String renders the model the way the paper writes Hera's equations,
// e.g. "(1.4*x0 + 1.5*x1 + 3.1*x2) + 5436".
func (m *RegressionModel) String() string {
	s := "("
	for i, c := range m.Coeffs {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%.2f*x%d", c, i)
	}
	return s + fmt.Sprintf(") + %.0f", m.Intercept)
}

// CoefficientDistance returns the Euclidean distance between two models'
// parameter vectors (coefficients plus intercept), the benchmark's measure
// of how far a fragment's misleading fit lies from the true model.
func CoefficientDistance(a, b *RegressionModel) (float64, error) {
	if len(a.Coeffs) != len(b.Coeffs) {
		return 0, fmt.Errorf("mining: models have %d vs %d coefficients", len(a.Coeffs), len(b.Coeffs))
	}
	s := (a.Intercept - b.Intercept) * (a.Intercept - b.Intercept)
	for i := range a.Coeffs {
		d := a.Coeffs[i] - b.Coeffs[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// RelativeCoefficientError returns max_i |a_i − b_i| / max(|b_i|, 1) over
// coefficients and intercept, a scale-aware divergence measure.
func RelativeCoefficientError(fit, truth *RegressionModel) (float64, error) {
	if len(fit.Coeffs) != len(truth.Coeffs) {
		return 0, fmt.Errorf("mining: models have %d vs %d coefficients", len(fit.Coeffs), len(truth.Coeffs))
	}
	worst := math.Abs(fit.Intercept-truth.Intercept) / math.Max(math.Abs(truth.Intercept), 1)
	for i := range fit.Coeffs {
		e := math.Abs(fit.Coeffs[i]-truth.Coeffs[i]) / math.Max(math.Abs(truth.Coeffs[i]), 1)
		if e > worst {
			worst = e
		}
	}
	return worst, nil
}

// RMSE returns the root-mean-square prediction error of the model on a
// held-out set.
func (m *RegressionModel) RMSE(x [][]float64, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) == 0 {
		return 0, fmt.Errorf("mining: RMSE needs equal non-empty x, y (got %d, %d)", len(x), len(y))
	}
	var s float64
	for i, row := range x {
		p, err := m.Predict(row)
		if err != nil {
			return 0, err
		}
		d := p - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(x))), nil
}
