package mining

import (
	"fmt"
	"math"
	"sort"
)

// KNNClassifier is a k-nearest-neighbour classifier, the repository's
// stand-in for the paper's "prediction algorithms" that "may reveal
// misleading results as they lack numbers of observations" under
// fragmentation.
type KNNClassifier struct {
	k      int
	points [][]float64
	labels []string
}

// NewKNN builds a classifier over the training set.
func NewKNN(k int, points [][]float64, labels []string) (*KNNClassifier, error) {
	if k < 1 {
		return nil, fmt.Errorf("mining: k=%d must be >= 1", k)
	}
	if len(points) == 0 {
		return nil, errNoObservations
	}
	if len(points) != len(labels) {
		return nil, fmt.Errorf("mining: %d points but %d labels", len(points), len(labels))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("mining: point %d has %d dims, want %d", i, len(p), dim)
		}
	}
	return &KNNClassifier{k: k, points: points, labels: labels}, nil
}

// Predict returns the majority label among the k nearest neighbours; ties
// break toward the nearer neighbour set (then lexicographically for
// determinism).
func (c *KNNClassifier) Predict(x []float64) (string, error) {
	if len(x) != len(c.points[0]) {
		return "", fmt.Errorf("mining: query has %d dims, want %d", len(x), len(c.points[0]))
	}
	type nd struct {
		d float64
		i int
	}
	ds := make([]nd, len(c.points))
	for i, p := range c.points {
		ds[i] = nd{d: math.Sqrt(sqDist(x, p)), i: i}
	}
	sort.Slice(ds, func(a, b int) bool {
		if ds[a].d != ds[b].d {
			return ds[a].d < ds[b].d
		}
		return ds[a].i < ds[b].i
	})
	k := c.k
	if k > len(ds) {
		k = len(ds)
	}
	votes := map[string]int{}
	nearest := map[string]float64{}
	for _, e := range ds[:k] {
		lbl := c.labels[e.i]
		votes[lbl]++
		if _, ok := nearest[lbl]; !ok {
			nearest[lbl] = e.d
		}
	}
	best, bestVotes, bestDist := "", -1, math.Inf(1)
	keys := make([]string, 0, len(votes))
	for l := range votes {
		keys = append(keys, l)
	}
	sort.Strings(keys)
	for _, l := range keys {
		v := votes[l]
		if v > bestVotes || (v == bestVotes && nearest[l] < bestDist) {
			best, bestVotes, bestDist = l, v, nearest[l]
		}
	}
	return best, nil
}

// Accuracy scores the classifier on a labelled test set.
func (c *KNNClassifier) Accuracy(points [][]float64, labels []string) (float64, error) {
	if len(points) != len(labels) || len(points) == 0 {
		return 0, fmt.Errorf("mining: accuracy needs equal non-empty sets (got %d, %d)", len(points), len(labels))
	}
	correct := 0
	for i, p := range points {
		got, err := c.Predict(p)
		if err != nil {
			return 0, err
		}
		if got == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(points)), nil
}
