package mining

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := twoBlobs(8, 8, rng)
	res, err := KMeans(pts, 2, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 8; i++ {
		if res.Labels[i] != res.Labels[0] {
			t.Fatalf("blob A split: %v", res.Labels)
		}
	}
	for i := 9; i < 16; i++ {
		if res.Labels[i] != res.Labels[8] {
			t.Fatalf("blob B split: %v", res.Labels)
		}
	}
	if res.Labels[0] == res.Labels[8] {
		t.Fatal("blobs merged")
	}
	if res.Inertia > 1.0 {
		t.Fatalf("inertia = %v, want tight clusters", res.Inertia)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 1, 10, nil); err == nil {
		t.Fatal("expected error on empty points")
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, 0, 10, nil); err == nil {
		t.Fatal("expected error on k=0")
	}
	if _, err := KMeans(pts, 3, 10, nil); err == nil {
		t.Fatal("expected error on k>n")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 10, nil); err == nil {
		t.Fatal("expected error on ragged points")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	pts := [][]float64{{0}, {5}, {10}}
	res, err := KMeans(pts, 3, 20, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("k=n should give zero inertia, got %v", res.Inertia)
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Fatalf("labels = %v, want 3 distinct", res.Labels)
	}
}

func TestKMeansDeterministicWithSameSeed(t *testing.T) {
	rng1 := rand.New(rand.NewSource(77))
	rng2 := rand.New(rand.NewSource(77))
	pts := twoBlobs(5, 5, rand.New(rand.NewSource(2)))
	r1, err := KMeans(pts, 2, 30, rng1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(pts, 2, 30, rng2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Labels {
		if r1.Labels[i] != r2.Labels[i] {
			t.Fatal("same seed gave different clusterings")
		}
	}
}

func TestKMeansNilRNGDefaults(t *testing.T) {
	pts := twoBlobs(4, 4, rand.New(rand.NewSource(8)))
	if _, err := KMeans(pts, 2, 0, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every point's assigned centroid is (weakly) the nearest one.
func TestKMeansAssignmentOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		}
		k := 1 + rng.Intn(3)
		res, err := KMeans(pts, k, 60, rng)
		if err != nil {
			return false
		}
		for i, p := range pts {
			mine := sqDist(p, res.Centroids[res.Labels[i]])
			for _, c := range res.Centroids {
				if sqDist(p, c) < mine-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: inertia equals the sum of squared point-to-assigned-centroid
// distances (self-consistency of the reported statistic).
func TestKMeansInertiaConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64()}
		}
		res, err := KMeans(pts, 2, 40, rng)
		if err != nil {
			return n < 2
		}
		s := 0.0
		for i, p := range pts {
			s += sqDist(p, res.Centroids[res.Labels[i]])
		}
		return math.Abs(s-res.Inertia) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
