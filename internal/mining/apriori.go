package mining

import (
	"fmt"
	"sort"
	"strings"
)

// Transaction is one market basket: a set of item identifiers. The paper
// names association-rule mining over "business transaction records" as a
// privacy threat; Apriori is the canonical algorithm.
type Transaction []string

// ItemSet is a sorted, deduplicated set of items.
type ItemSet []string

func (s ItemSet) String() string { return "{" + strings.Join(s, ",") + "}" }

// Key returns a canonical map key for the set.
func (s ItemSet) Key() string { return strings.Join(s, "\x00") }

// Rule is an association rule A → B with its support and confidence.
type Rule struct {
	Antecedent ItemSet
	Consequent ItemSet
	Support    float64 // fraction of transactions containing A ∪ B
	Confidence float64 // support(A ∪ B) / support(A)
	Lift       float64 // confidence / support(B)
}

func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup=%.3f conf=%.3f lift=%.2f)", r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// FrequentItemSet pairs an itemset with its support.
type FrequentItemSet struct {
	Items   ItemSet
	Support float64
}

// Apriori mines frequent itemsets at the given minimum support (a fraction
// in (0,1]) and derives rules at the given minimum confidence.
func Apriori(txns []Transaction, minSupport, minConfidence float64) ([]FrequentItemSet, []Rule, error) {
	if len(txns) == 0 {
		return nil, nil, errNoObservations
	}
	if minSupport <= 0 || minSupport > 1 {
		return nil, nil, fmt.Errorf("mining: minSupport %v out of (0,1]", minSupport)
	}
	if minConfidence < 0 || minConfidence > 1 {
		return nil, nil, fmt.Errorf("mining: minConfidence %v out of [0,1]", minConfidence)
	}
	n := float64(len(txns))
	minCount := int(minSupport*n + 0.999999) // ceil without importing math for ints
	if minCount < 1 {
		minCount = 1
	}

	// Normalize transactions into sorted unique item slices.
	norm := make([][]string, len(txns))
	for i, t := range txns {
		seen := map[string]bool{}
		var items []string
		for _, it := range t {
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		sort.Strings(items)
		norm[i] = items
	}

	counts := map[string]int{}
	sets := map[string]ItemSet{}

	// L1: frequent single items.
	for _, t := range norm {
		for _, it := range t {
			s := ItemSet{it}
			counts[s.Key()]++
			sets[s.Key()] = s
		}
	}
	var frequent []FrequentItemSet
	level := make([]ItemSet, 0)
	for k, c := range counts {
		if c >= minCount {
			level = append(level, sets[k])
			frequent = append(frequent, FrequentItemSet{Items: sets[k], Support: float64(c) / n})
		}
	}
	sortItemSets(level)
	allCounts := map[string]int{}
	for k, c := range counts {
		allCounts[k] = c
	}

	// Iteratively extend.
	for len(level) > 0 {
		candidates := generateCandidates(level)
		if len(candidates) == 0 {
			break
		}
		levelCounts := map[string]int{}
		candBySet := map[string]ItemSet{}
		for _, c := range candidates {
			candBySet[c.Key()] = c
		}
		for _, t := range norm {
			for key, c := range candBySet {
				if containsAll(t, c) {
					levelCounts[key]++
				}
			}
		}
		next := make([]ItemSet, 0)
		for key, cnt := range levelCounts {
			if cnt >= minCount {
				next = append(next, candBySet[key])
				frequent = append(frequent, FrequentItemSet{Items: candBySet[key], Support: float64(cnt) / n})
				allCounts[key] = cnt
			}
		}
		sortItemSets(next)
		level = next
	}

	// Rule generation: for each frequent itemset of size ≥ 2, split into
	// every antecedent/consequent partition.
	supportOf := func(s ItemSet) float64 {
		if c, ok := allCounts[s.Key()]; ok {
			return float64(c) / n
		}
		// Count directly (infrequent subsets are still needed for lift).
		cnt := 0
		for _, t := range norm {
			if containsAll(t, s) {
				cnt++
			}
		}
		allCounts[s.Key()] = cnt
		return float64(cnt) / n
	}

	var rules []Rule
	for _, fi := range frequent {
		if len(fi.Items) < 2 {
			continue
		}
		for mask := 1; mask < (1<<len(fi.Items))-1; mask++ {
			var ant, con ItemSet
			for i, it := range fi.Items {
				if mask&(1<<i) != 0 {
					ant = append(ant, it)
				} else {
					con = append(con, it)
				}
			}
			sa := supportOf(ant)
			if sa == 0 {
				continue
			}
			conf := fi.Support / sa
			if conf+1e-12 < minConfidence {
				continue
			}
			sc := supportOf(con)
			lift := 0.0
			if sc > 0 {
				lift = conf / sc
			}
			rules = append(rules, Rule{Antecedent: ant, Consequent: con, Support: fi.Support, Confidence: conf, Lift: lift})
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		return rules[i].String() < rules[j].String()
	})
	sort.Slice(frequent, func(i, j int) bool {
		if len(frequent[i].Items) != len(frequent[j].Items) {
			return len(frequent[i].Items) < len(frequent[j].Items)
		}
		return frequent[i].Items.Key() < frequent[j].Items.Key()
	})
	return frequent, rules, nil
}

func sortItemSets(sets []ItemSet) {
	sort.Slice(sets, func(i, j int) bool { return sets[i].Key() < sets[j].Key() })
}

// generateCandidates joins k-sets sharing a (k-1)-prefix, Apriori style.
func generateCandidates(level []ItemSet) []ItemSet {
	var out []ItemSet
	seen := map[string]bool{}
	freq := map[string]bool{}
	for _, s := range level {
		freq[s.Key()] = true
	}
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := len(a)
			if !samePrefix(a, b, k-1) {
				continue
			}
			merged := make(ItemSet, k+1)
			copy(merged, a)
			merged[k] = b[k-1]
			if merged[k-1] > merged[k] {
				merged[k-1], merged[k] = merged[k], merged[k-1]
			}
			key := merged.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			// Prune: all k-subsets must be frequent.
			if allSubsetsFrequent(merged, freq) {
				out = append(out, merged)
			}
		}
	}
	return out
}

func samePrefix(a, b ItemSet, k int) bool {
	for i := 0; i < k; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(s ItemSet, freq map[string]bool) bool {
	sub := make(ItemSet, 0, len(s)-1)
	for skip := range s {
		sub = sub[:0]
		for i, it := range s {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !freq[sub.Key()] {
			return false
		}
	}
	return true
}

// containsAll reports whether sorted transaction t contains every item of
// sorted set s.
func containsAll(t []string, s ItemSet) bool {
	i := 0
	for _, item := range s {
		for i < len(t) && t[i] < item {
			i++
		}
		if i >= len(t) || t[i] != item {
			return false
		}
		i++
	}
	return true
}
