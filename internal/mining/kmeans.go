package mining

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeansResult holds the outcome of a k-means run.
type KMeansResult struct {
	Centroids [][]float64
	Labels    []int
	// Inertia is the sum of squared distances of points to their centroid.
	Inertia float64
	// Iterations actually performed before convergence or cutoff.
	Iterations int
}

// KMeans clusters points into k groups using Lloyd's algorithm with
// k-means++-style seeding from the provided rng. maxIter bounds the number
// of assignment/update rounds.
func KMeans(points [][]float64, k, maxIter int, rng *rand.Rand) (*KMeansResult, error) {
	n := len(points)
	if n == 0 {
		return nil, errNoObservations
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("mining: k=%d for %d points", k, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("mining: point %d has %d dims, want %d", i, len(p), dim)
		}
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if maxIter <= 0 {
		maxIter = 100
	}

	centroids := seedPlusPlus(points, k, rng)
	labels := make([]int, n)
	res := &KMeansResult{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				d := sqDist(p, cen)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		// Update step.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			counts[labels[i]]++
			for j, v := range p {
				sums[labels[i]][j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(sums[c], points[rng.Intn(n)])
				counts[c] = 1
				changed = true
			}
			for j := range sums[c] {
				sums[c][j] /= float64(counts[c])
			}
		}
		centroids = sums
		if !changed && iter > 0 {
			break
		}
	}
	res.Centroids = centroids
	res.Labels = labels
	for i, p := range points {
		res.Inertia += sqDist(p, centroids[labels[i]])
	}
	return res, nil
}

func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(n)]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			for i, d := range d2 {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
