package mining

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearRegressionRecoversExactModel(t *testing.T) {
	// Plant y = 1.4a + 1.5b + 3.1c + 5436 — the paper's Hercules model.
	rng := rand.New(rand.NewSource(42))
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		a := 1300 + rng.Float64()*800
		b := 600 + rng.Float64()*500
		c := 3100 + rng.Float64()*600
		x = append(x, []float64{a, b, c})
		y = append(y, 1.4*a+1.5*b+3.1*c+5436)
	}
	m, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.4, 1.5, 3.1}
	for i := range want {
		if math.Abs(m.Coeffs[i]-want[i]) > 1e-6 {
			t.Fatalf("coeffs = %v, want %v", m.Coeffs, want)
		}
	}
	if math.Abs(m.Intercept-5436) > 1e-4 {
		t.Fatalf("intercept = %v, want 5436", m.Intercept)
	}
	if m.R2 < 0.999999 {
		t.Fatalf("R2 = %v, want ~1", m.R2)
	}
	if m.N != 40 {
		t.Fatalf("N = %d, want 40", m.N)
	}
}

func TestLinearRegressionTooFewSamples(t *testing.T) {
	x := [][]float64{{1, 2, 3}, {4, 5, 6}}
	y := []float64{1, 2}
	if _, err := LinearRegression(x, y); !errors.Is(err, ErrTooFewSamples) {
		t.Fatalf("err = %v, want ErrTooFewSamples", err)
	}
	if _, err := LinearRegression(nil, nil); !errors.Is(err, ErrTooFewSamples) {
		t.Fatalf("empty: err = %v, want ErrTooFewSamples", err)
	}
}

func TestLinearRegressionLengthMismatch(t *testing.T) {
	if _, err := LinearRegression([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error on len mismatch")
	}
}

func TestLinearRegressionRaggedRows(t *testing.T) {
	x := [][]float64{{1, 2}, {3}, {4, 5}, {6, 7}}
	if _, err := LinearRegression(x, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("expected error on ragged rows")
	}
}

func TestPredict(t *testing.T) {
	m := &RegressionModel{Coeffs: []float64{2, -1}, Intercept: 10}
	got, err := m.Predict([]float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Fatalf("Predict = %v, want 12", got)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestModelString(t *testing.T) {
	m := &RegressionModel{Coeffs: []float64{1.4, 1.5, 3.1}, Intercept: 5436}
	s := m.String()
	if s != "(1.40*x0 + 1.50*x1 + 3.10*x2) + 5436" {
		t.Fatalf("String = %q", s)
	}
}

func TestCoefficientDistance(t *testing.T) {
	a := &RegressionModel{Coeffs: []float64{1, 2}, Intercept: 3}
	b := &RegressionModel{Coeffs: []float64{1, 2}, Intercept: 3}
	d, err := CoefficientDistance(a, b)
	if err != nil || d != 0 {
		t.Fatalf("identical models: d=%v err=%v", d, err)
	}
	c := &RegressionModel{Coeffs: []float64{4, 6}, Intercept: 3}
	d, err = CoefficientDistance(a, c)
	if err != nil || math.Abs(d-5) > 1e-12 {
		t.Fatalf("d = %v, want 5", d)
	}
	bad := &RegressionModel{Coeffs: []float64{1}}
	if _, err := CoefficientDistance(a, bad); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestRelativeCoefficientError(t *testing.T) {
	truth := &RegressionModel{Coeffs: []float64{2, 4}, Intercept: 100}
	fit := &RegressionModel{Coeffs: []float64{2, 4}, Intercept: 100}
	e, err := RelativeCoefficientError(fit, truth)
	if err != nil || e != 0 {
		t.Fatalf("e=%v err=%v", e, err)
	}
	fit2 := &RegressionModel{Coeffs: []float64{3, 4}, Intercept: 100}
	e, _ = RelativeCoefficientError(fit2, truth)
	if math.Abs(e-0.5) > 1e-12 {
		t.Fatalf("e = %v, want 0.5", e)
	}
	bad := &RegressionModel{Coeffs: []float64{1}}
	if _, err := RelativeCoefficientError(bad, truth); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestRMSE(t *testing.T) {
	m := &RegressionModel{Coeffs: []float64{1}, Intercept: 0}
	rmse, err := m.RMSE([][]float64{{1}, {2}}, []float64{2, 1}) // errors -1, +1
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rmse-1) > 1e-12 {
		t.Fatalf("RMSE = %v, want 1", rmse)
	}
	if _, err := m.RMSE(nil, nil); err == nil {
		t.Fatal("expected error on empty set")
	}
}

// Property: regression on noiseless data from a random planted linear model
// recovers the model, regardless of sample content.
func TestRegressionRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(4)
		n := p + 5 + rng.Intn(20)
		coeffs := make([]float64, p)
		for i := range coeffs {
			coeffs[i] = rng.NormFloat64() * 10
		}
		intercept := rng.NormFloat64() * 100
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, p)
			s := intercept
			for j := range row {
				row[j] = rng.NormFloat64() * 5
				s += coeffs[j] * row[j]
			}
			x[i] = row
			y[i] = s
		}
		m, err := LinearRegression(x, y)
		if err != nil {
			return errors.Is(err, ErrTooFewSamples)
		}
		for j := range coeffs {
			if math.Abs(m.Coeffs[j]-coeffs[j]) > 1e-5 {
				return false
			}
		}
		return math.Abs(m.Intercept-intercept) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
