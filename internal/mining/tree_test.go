package mining

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDecisionTreeSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := bayesBlobs(200, rng)
	tree, err := TrainDecisionTree(x, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := bayesBlobs(100, rng)
	acc, err := tree.Accuracy(tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.97 {
		t.Fatalf("accuracy = %v on separable data", acc)
	}
	if tree.Depth() < 1 {
		t.Fatal("tree never split")
	}
}

func TestDecisionTreeValidation(t *testing.T) {
	if _, err := TrainDecisionTree(nil, nil, TreeConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := TrainDecisionTree([][]float64{{1}}, []string{"a", "b"}, TreeConfig{}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := TrainDecisionTree([][]float64{{1}, {1, 2}}, []string{"a", "b"}, TreeConfig{}); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestDecisionTreePureInputIsLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []string{"only", "only", "only"}
	tree, err := TrainDecisionTree(x, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatalf("pure data grew depth %d", tree.Depth())
	}
	got, _ := tree.Predict([]float64{99})
	if got != "only" {
		t.Fatalf("Predict = %q", got)
	}
}

func TestDecisionTreeMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []string
	for i := 0; i < 300; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		lbl := "a"
		if (p[0] > 0.5) != (p[1] > 0.5) { // XOR pattern needs depth >= 2
			lbl = "b"
		}
		x = append(x, p)
		y = append(y, lbl)
	}
	tree, err := TrainDecisionTree(x, y, TreeConfig{MaxDepth: 2, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 2 {
		t.Fatalf("depth %d exceeds max 2", tree.Depth())
	}
	deep, err := TrainDecisionTree(x, y, TreeConfig{MaxDepth: 8, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	accShallow, _ := tree.Accuracy(x, y)
	accDeep, _ := deep.Accuracy(x, y)
	if accDeep <= accShallow {
		t.Fatalf("deeper tree (%v) not better than depth-2 (%v) on XOR", accDeep, accShallow)
	}
	if accDeep < 0.9 {
		t.Fatalf("deep tree accuracy %v on XOR", accDeep)
	}
}

func TestDecisionTreePredictValidation(t *testing.T) {
	tree, _ := TrainDecisionTree([][]float64{{0}, {1}, {0}, {1}, {0}, {1}}, []string{"a", "b", "a", "b", "a", "b"}, TreeConfig{MinLeaf: 1})
	if _, err := tree.Predict([]float64{1, 2}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := tree.Accuracy(nil, nil); err == nil {
		t.Fatal("empty test set accepted")
	}
}

func TestDecisionTreeRulesReadable(t *testing.T) {
	x := [][]float64{{90}, {95}, {100}, {130}, {140}, {150}}
	y := []string{"low", "low", "low", "high", "high", "high"}
	tree, err := TrainDecisionTree(x, y, TreeConfig{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	rules := tree.Rules([]string{"glucose"})
	if !strings.Contains(rules, "glucose <=") || !strings.Contains(rules, "=> high") {
		t.Fatalf("rules unreadable:\n%s", rules)
	}
	// The split threshold must lie between the classes.
	got, _ := tree.Predict([]float64{92})
	if got != "low" {
		t.Fatalf("Predict(92) = %q", got)
	}
	got, _ = tree.Predict([]float64{145})
	if got != "high" {
		t.Fatalf("Predict(145) = %q", got)
	}
}

func TestDecisionTreeTiesOnEqualValues(t *testing.T) {
	// All feature values equal: no split possible, majority leaf.
	x := [][]float64{{5}, {5}, {5}, {5}}
	y := []string{"a", "a", "b", "a"}
	tree, err := TrainDecisionTree(x, y, TreeConfig{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tree.Predict([]float64{5})
	if got != "a" {
		t.Fatalf("majority = %q", got)
	}
}
