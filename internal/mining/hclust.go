package mining

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Linkage selects how inter-cluster distance is computed during
// agglomerative clustering.
type Linkage int

const (
	// SingleLinkage merges on minimum pairwise distance.
	SingleLinkage Linkage = iota
	// CompleteLinkage merges on maximum pairwise distance.
	CompleteLinkage
	// AverageLinkage merges on mean pairwise distance (UPGMA — what
	// MATLAB's default dendrogram pipeline in the paper effectively shows).
	AverageLinkage
)

func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// DendrogramNode is one merge in the hierarchical binary cluster tree. A
// leaf has Left == Right == nil and Obs set; an internal node records the
// merge Height (the linkage distance at which its children joined).
type DendrogramNode struct {
	Obs    int // observation index, valid only for leaves
	Left   *DendrogramNode
	Right  *DendrogramNode
	Height float64
	Size   int // number of leaves under this node
}

// IsLeaf reports whether the node is an original observation.
func (n *DendrogramNode) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Dendrogram is the full hierarchical binary cluster tree over n
// observations, the structure Figs. 4–6 plot.
type Dendrogram struct {
	Root *DendrogramNode
	N    int
	// Merges lists internal nodes in merge order (ascending height order
	// of construction), mirroring MATLAB's linkage output matrix.
	Merges []*DendrogramNode
}

var errNoObservations = errors.New("mining: hierarchical clustering needs at least one observation")

// EuclideanDistanceMatrix computes the n×n condensed pairwise distance
// matrix for rows of points.
func EuclideanDistanceMatrix(points [][]float64) ([][]float64, error) {
	n := len(points)
	if n == 0 {
		return nil, errNoObservations
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		if len(points[i]) != len(points[0]) {
			return nil, fmt.Errorf("mining: point %d has %d dims, want %d", i, len(points[i]), len(points[0]))
		}
		for j := i + 1; j < n; j++ {
			s := 0.0
			for k := range points[i] {
				dv := points[i][k] - points[j][k]
				s += dv * dv
			}
			v := math.Sqrt(s)
			d[i][j] = v
			d[j][i] = v
		}
	}
	return d, nil
}

// HierarchicalCluster builds the binary cluster tree over the given
// distance matrix with the chosen linkage, using the Lance–Williams
// update so the whole clustering runs in O(n²·n) worst case — fine for the
// paper's 30-user scale and our benchmark sweeps.
func HierarchicalCluster(dist [][]float64, linkage Linkage) (*Dendrogram, error) {
	n := len(dist)
	if n == 0 {
		return nil, errNoObservations
	}
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("mining: distance matrix row %d has %d entries, want %d", i, len(dist[i]), n)
		}
	}

	// Working copy of distances between active clusters.
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		copy(d[i], dist[i])
	}
	nodes := make([]*DendrogramNode, n)
	active := make([]bool, n)
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		nodes[i] = &DendrogramNode{Obs: i, Size: 1}
		active[i] = true
		sizes[i] = 1
	}

	dg := &Dendrogram{N: n}
	remaining := n
	for remaining > 1 {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if d[i][j] < best {
					bi, bj, best = i, j, d[i][j]
				}
			}
		}
		merged := &DendrogramNode{
			Left:   nodes[bi],
			Right:  nodes[bj],
			Height: best,
			Size:   sizes[bi] + sizes[bj],
		}
		dg.Merges = append(dg.Merges, merged)

		// Lance–Williams update: new cluster lives in slot bi.
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			var nd float64
			switch linkage {
			case SingleLinkage:
				nd = math.Min(d[bi][k], d[bj][k])
			case CompleteLinkage:
				nd = math.Max(d[bi][k], d[bj][k])
			case AverageLinkage:
				wi, wj := float64(sizes[bi]), float64(sizes[bj])
				nd = (wi*d[bi][k] + wj*d[bj][k]) / (wi + wj)
			default:
				return nil, fmt.Errorf("mining: unknown linkage %v", linkage)
			}
			d[bi][k] = nd
			d[k][bi] = nd
		}
		nodes[bi] = merged
		sizes[bi] += sizes[bj]
		active[bj] = false
		remaining--
	}
	for i := 0; i < n; i++ {
		if active[i] {
			dg.Root = nodes[i]
			break
		}
	}
	return dg, nil
}

// ClusterPoints is a convenience wrapper: Euclidean distances + clustering.
func ClusterPoints(points [][]float64, linkage Linkage) (*Dendrogram, error) {
	d, err := EuclideanDistanceMatrix(points)
	if err != nil {
		return nil, err
	}
	return HierarchicalCluster(d, linkage)
}

// Cut slices the tree at the level that yields k clusters and returns the
// cluster label of each observation (labels are 0..k-1, assigned in leaf
// order of first appearance).
func (dg *Dendrogram) Cut(k int) ([]int, error) {
	if k < 1 || k > dg.N {
		return nil, fmt.Errorf("mining: cut into %d clusters of %d observations", k, dg.N)
	}
	// Start from the root and repeatedly split the cluster whose merge
	// height is largest until we hold k subtrees.
	roots := []*DendrogramNode{dg.Root}
	for len(roots) < k {
		// Pick the internal node with the greatest height.
		idx, best := -1, math.Inf(-1)
		for i, r := range roots {
			if !r.IsLeaf() && r.Height > best {
				idx, best = i, r.Height
			}
		}
		if idx < 0 {
			break // all leaves; can't split further
		}
		n := roots[idx]
		roots = append(roots[:idx], roots[idx+1:]...)
		roots = append(roots, n.Left, n.Right)
	}
	labels := make([]int, dg.N)
	for i := range labels {
		labels[i] = -1
	}
	for ci, r := range roots {
		assignLabels(r, ci, labels)
	}
	return labels, nil
}

func assignLabels(n *DendrogramNode, label int, labels []int) {
	if n.IsLeaf() {
		labels[n.Obs] = label
		return
	}
	assignLabels(n.Left, label, labels)
	assignLabels(n.Right, label, labels)
}

// LeafOrder returns observation indices in left-to-right dendrogram order —
// the x-axis ordering of the paper's dendrogram plots.
func (dg *Dendrogram) LeafOrder() []int {
	var order []int
	var walk func(n *DendrogramNode)
	walk = func(n *DendrogramNode) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			order = append(order, n.Obs)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(dg.Root)
	return order
}

// CopheneticDistances returns the n×n matrix of cophenetic distances (the
// height at which two observations first share a cluster). Used to compare
// full-data vs fragment dendrograms quantitatively.
func (dg *Dendrogram) CopheneticDistances() [][]float64 {
	c := make([][]float64, dg.N)
	for i := range c {
		c[i] = make([]float64, dg.N)
	}
	var walk func(n *DendrogramNode) []int
	walk = func(n *DendrogramNode) []int {
		if n.IsLeaf() {
			return []int{n.Obs}
		}
		l := walk(n.Left)
		r := walk(n.Right)
		for _, a := range l {
			for _, b := range r {
				c[a][b] = n.Height
				c[b][a] = n.Height
			}
		}
		return append(l, r...)
	}
	if dg.Root != nil {
		walk(dg.Root)
	}
	return c
}

// ASCII renders the dendrogram as indented text — the repository's stand-in
// for the paper's MATLAB dendrogram plots. Leaves print as observation
// indices (1-based like the paper's figures); internal nodes print their
// merge heights.
func (dg *Dendrogram) ASCII(labelOf func(obs int) string) string {
	if labelOf == nil {
		labelOf = func(obs int) string { return fmt.Sprintf("%d", obs+1) }
	}
	var b strings.Builder
	var walk func(n *DendrogramNode, depth int)
	walk = func(n *DendrogramNode, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.IsLeaf() {
			fmt.Fprintf(&b, "%s- %s\n", indent, labelOf(n.Obs))
			return
		}
		fmt.Fprintf(&b, "%s+ h=%.4f (%d leaves)\n", indent, n.Height, n.Size)
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	if dg.Root != nil {
		walk(dg.Root, 0)
	}
	return b.String()
}

// MergeHeights returns all internal merge heights sorted ascending — the
// y-axis profile of the dendrogram plot.
func (dg *Dendrogram) MergeHeights() []float64 {
	hs := make([]float64, 0, len(dg.Merges))
	for _, m := range dg.Merges {
		hs = append(hs, m.Height)
	}
	sort.Float64s(hs)
	return hs
}
