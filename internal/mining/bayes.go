package mining

import (
	"fmt"
	"math"
	"sort"
)

// GaussianNB is a Gaussian naive-Bayes classifier — the repository's
// second "prediction algorithm" (after k-NN) for the paper's claim that
// prediction over fragments "may reveal misleading results as they lack
// numbers of observations". It models each feature as class-conditionally
// normal.
type GaussianNB struct {
	classes []string
	priors  map[string]float64
	means   map[string][]float64
	vars    map[string][]float64
	dim     int
}

// TrainGaussianNB fits the classifier on labelled observations.
func TrainGaussianNB(points [][]float64, labels []string) (*GaussianNB, error) {
	if len(points) == 0 {
		return nil, errNoObservations
	}
	if len(points) != len(labels) {
		return nil, fmt.Errorf("mining: %d points but %d labels", len(points), len(labels))
	}
	dim := len(points[0])
	byClass := map[string][][]float64{}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("mining: point %d has %d dims, want %d", i, len(p), dim)
		}
		byClass[labels[i]] = append(byClass[labels[i]], p)
	}
	nb := &GaussianNB{
		priors: map[string]float64{},
		means:  map[string][]float64{},
		vars:   map[string][]float64{},
		dim:    dim,
	}
	n := float64(len(points))
	for class, pts := range byClass {
		nb.classes = append(nb.classes, class)
		nb.priors[class] = float64(len(pts)) / n
		mean := make([]float64, dim)
		for _, p := range pts {
			for j, v := range p {
				mean[j] += v
			}
		}
		for j := range mean {
			mean[j] /= float64(len(pts))
		}
		variance := make([]float64, dim)
		for _, p := range pts {
			for j, v := range p {
				d := v - mean[j]
				variance[j] += d * d
			}
		}
		for j := range variance {
			variance[j] = variance[j]/float64(len(pts)) + 1e-9 // smoothing
		}
		nb.means[class] = mean
		nb.vars[class] = variance
	}
	sort.Strings(nb.classes)
	return nb, nil
}

// Classes returns the label set in sorted order.
func (nb *GaussianNB) Classes() []string {
	return append([]string(nil), nb.classes...)
}

// Predict returns the maximum-posterior class for one observation.
func (nb *GaussianNB) Predict(x []float64) (string, error) {
	if len(x) != nb.dim {
		return "", fmt.Errorf("mining: query has %d dims, model has %d", len(x), nb.dim)
	}
	best, bestLP := "", math.Inf(-1)
	for _, class := range nb.classes {
		lp := math.Log(nb.priors[class])
		mean, variance := nb.means[class], nb.vars[class]
		for j, v := range x {
			d := v - mean[j]
			lp += -0.5*math.Log(2*math.Pi*variance[j]) - d*d/(2*variance[j])
		}
		if lp > bestLP {
			best, bestLP = class, lp
		}
	}
	return best, nil
}

// Accuracy scores the model on a labelled test set.
func (nb *GaussianNB) Accuracy(points [][]float64, labels []string) (float64, error) {
	if len(points) != len(labels) || len(points) == 0 {
		return 0, fmt.Errorf("mining: accuracy needs equal non-empty sets (got %d, %d)", len(points), len(labels))
	}
	correct := 0
	for i, p := range points {
		got, err := nb.Predict(p)
		if err != nil {
			return 0, err
		}
		if got == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(points)), nil
}
