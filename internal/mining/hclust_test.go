package mining

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoBlobs returns points in two well-separated groups of sizes n1, n2.
func twoBlobs(n1, n2 int, rng *rand.Rand) [][]float64 {
	var pts [][]float64
	for i := 0; i < n1; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
	}
	for i := 0; i < n2; i++ {
		pts = append(pts, []float64{10 + rng.NormFloat64()*0.1, 10 + rng.NormFloat64()*0.1})
	}
	return pts
}

func TestEuclideanDistanceMatrix(t *testing.T) {
	pts := [][]float64{{0, 0}, {3, 4}}
	d, err := EuclideanDistanceMatrix(pts)
	if err != nil {
		t.Fatal(err)
	}
	if d[0][0] != 0 || d[1][1] != 0 {
		t.Fatal("diagonal not zero")
	}
	if math.Abs(d[0][1]-5) > 1e-12 || math.Abs(d[1][0]-5) > 1e-12 {
		t.Fatalf("d = %v, want 5 symmetric", d)
	}
}

func TestEuclideanDistanceMatrixErrors(t *testing.T) {
	if _, err := EuclideanDistanceMatrix(nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := EuclideanDistanceMatrix([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("expected error on ragged dims")
	}
}

func TestHierarchicalClusterSingleObservation(t *testing.T) {
	dg, err := ClusterPoints([][]float64{{1, 2}}, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if !dg.Root.IsLeaf() || dg.Root.Obs != 0 || dg.N != 1 {
		t.Fatalf("single-obs dendrogram wrong: %+v", dg.Root)
	}
}

func TestHierarchicalClusterSeparatesBlobs(t *testing.T) {
	for _, lk := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		rng := rand.New(rand.NewSource(5))
		pts := twoBlobs(6, 6, rng)
		dg, err := ClusterPoints(pts, lk)
		if err != nil {
			t.Fatalf("%v: %v", lk, err)
		}
		labels, err := dg.Cut(2)
		if err != nil {
			t.Fatal(err)
		}
		// First 6 points must share a label; last 6 another.
		for i := 1; i < 6; i++ {
			if labels[i] != labels[0] {
				t.Fatalf("%v: blob A split: %v", lk, labels)
			}
		}
		for i := 7; i < 12; i++ {
			if labels[i] != labels[6] {
				t.Fatalf("%v: blob B split: %v", lk, labels)
			}
		}
		if labels[0] == labels[6] {
			t.Fatalf("%v: blobs merged: %v", lk, labels)
		}
	}
}

func TestDendrogramMergeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := twoBlobs(5, 5, rng)
	dg, err := ClusterPoints(pts, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(dg.Merges) != 9 {
		t.Fatalf("merges = %d, want n-1 = 9", len(dg.Merges))
	}
	if dg.Root.Size != 10 {
		t.Fatalf("root size = %d, want 10", dg.Root.Size)
	}
}

func TestCutBounds(t *testing.T) {
	dg, _ := ClusterPoints([][]float64{{0}, {1}, {2}}, SingleLinkage)
	if _, err := dg.Cut(0); err == nil {
		t.Fatal("Cut(0) should error")
	}
	if _, err := dg.Cut(4); err == nil {
		t.Fatal("Cut(n+1) should error")
	}
	labels, err := dg.Cut(3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Cut(3) produced %d labels: %v", len(seen), labels)
	}
}

func TestCutOneCluster(t *testing.T) {
	dg, _ := ClusterPoints([][]float64{{0}, {5}, {9}}, CompleteLinkage)
	labels, err := dg.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatalf("Cut(1) labels = %v", labels)
		}
	}
}

func TestLeafOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := twoBlobs(7, 4, rng)
	dg, _ := ClusterPoints(pts, AverageLinkage)
	order := dg.LeafOrder()
	if len(order) != 11 {
		t.Fatalf("leaf order length = %d", len(order))
	}
	seen := make([]bool, 11)
	for _, o := range order {
		if o < 0 || o >= 11 || seen[o] {
			t.Fatalf("order not a permutation: %v", order)
		}
		seen[o] = true
	}
}

func TestCopheneticDistances(t *testing.T) {
	// Three colinear points: 0 at x=0, 1 at x=1, 2 at x=10.
	dg, _ := ClusterPoints([][]float64{{0}, {1}, {10}}, SingleLinkage)
	c := dg.CopheneticDistances()
	// 0 and 1 merge first at height 1.
	if math.Abs(c[0][1]-1) > 1e-12 {
		t.Fatalf("coph(0,1) = %v, want 1", c[0][1])
	}
	// 2 joins at the root height (single linkage: distance 9 from point 1).
	if math.Abs(c[0][2]-9) > 1e-12 || math.Abs(c[1][2]-9) > 1e-12 {
		t.Fatalf("coph to 2 = %v/%v, want 9", c[0][2], c[1][2])
	}
	if c[0][0] != 0 {
		t.Fatal("self-distance not zero")
	}
}

func TestMergeHeightsMonotoneForCompleteLinkage(t *testing.T) {
	// Complete/average linkage on metric data produce monotone dendrograms.
	rng := rand.New(rand.NewSource(13))
	pts := make([][]float64, 20)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	dg, _ := ClusterPoints(pts, CompleteLinkage)
	hs := make([]float64, 0, len(dg.Merges))
	for _, m := range dg.Merges {
		hs = append(hs, m.Height)
	}
	for i := 1; i < len(hs); i++ {
		if hs[i]+1e-9 < hs[i-1] {
			t.Fatalf("merge heights not monotone: %v", hs)
		}
	}
}

func TestASCIIRendering(t *testing.T) {
	dg, _ := ClusterPoints([][]float64{{0}, {1}}, SingleLinkage)
	s := dg.ASCII(nil)
	if s == "" {
		t.Fatal("empty ASCII dendrogram")
	}
	s2 := dg.ASCII(func(obs int) string { return "user" })
	if s2 == s {
		t.Fatal("custom labeler had no effect")
	}
}

func TestHierarchicalClusterBadMatrix(t *testing.T) {
	if _, err := HierarchicalCluster(nil, SingleLinkage); err == nil {
		t.Fatal("expected error on empty matrix")
	}
	if _, err := HierarchicalCluster([][]float64{{0, 1}}, SingleLinkage); err == nil {
		t.Fatal("expected error on non-square matrix")
	}
}

func TestLinkageString(t *testing.T) {
	if SingleLinkage.String() != "single" || CompleteLinkage.String() != "complete" || AverageLinkage.String() != "average" {
		t.Fatal("Linkage.String wrong")
	}
	if Linkage(99).String() == "" {
		t.Fatal("unknown linkage should still render")
	}
}

// Property: every cut into k clusters yields exactly k non-empty groups and
// labels every observation.
func TestCutPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		}
		dg, err := ClusterPoints(pts, AverageLinkage)
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(n)
		labels, err := dg.Cut(k)
		if err != nil {
			return false
		}
		seen := map[int]int{}
		for _, l := range labels {
			if l < 0 {
				return false
			}
			seen[l]++
		}
		return len(seen) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: cophenetic distance dominates the true distance under single
// linkage never exceeds it under... — we assert symmetry and zero diagonal.
func TestCopheneticSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64()}
		}
		dg, err := ClusterPoints(pts, SingleLinkage)
		if err != nil {
			return false
		}
		c := dg.CopheneticDistances()
		for i := 0; i < n; i++ {
			if c[i][i] != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if c[i][j] != c[j][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
