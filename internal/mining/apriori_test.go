package mining

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func classicBaskets() []Transaction {
	return []Transaction{
		{"bread", "milk"},
		{"bread", "diapers", "beer", "eggs"},
		{"milk", "diapers", "beer", "cola"},
		{"bread", "milk", "diapers", "beer"},
		{"bread", "milk", "diapers", "cola"},
	}
}

func TestAprioriFrequentItemsets(t *testing.T) {
	freq, _, err := Apriori(classicBaskets(), 0.6, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, f := range freq {
		got[f.Items.String()] = f.Support
	}
	// bread appears in 4/5, milk 4/5, diapers 4/5, beer 3/5.
	for _, item := range []string{"{bread}", "{milk}", "{diapers}", "{beer}"} {
		if _, ok := got[item]; !ok {
			t.Fatalf("missing frequent itemset %s in %v", item, got)
		}
	}
	if got["{beer,diapers}"] != 0.6 {
		t.Fatalf("sup{beer,diapers} = %v, want 0.6", got["{beer,diapers}"])
	}
	if _, ok := got["{cola}"]; ok {
		t.Fatal("cola (2/5) should not be frequent at 0.6")
	}
}

func TestAprioriRules(t *testing.T) {
	_, rules, err := Apriori(classicBaskets(), 0.6, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// beer → diapers has confidence 3/3 = 1.0.
	found := false
	for _, r := range rules {
		if r.Antecedent.String() == "{beer}" && r.Consequent.String() == "{diapers}" {
			found = true
			if r.Confidence < 0.999 {
				t.Fatalf("conf(beer→diapers) = %v, want 1.0", r.Confidence)
			}
			if r.Support != 0.6 {
				t.Fatalf("sup = %v, want 0.6", r.Support)
			}
			if r.Lift < 1.24 || r.Lift > 1.26 { // 1.0 / 0.8
				t.Fatalf("lift = %v, want 1.25", r.Lift)
			}
		}
	}
	if !found {
		t.Fatalf("beer→diapers missing from %v", rules)
	}
}

func TestAprioriDuplicateItemsInTransaction(t *testing.T) {
	txns := []Transaction{{"a", "a", "b"}, {"a", "b"}}
	freq, _, err := Apriori(txns, 1.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range freq {
		if f.Items.String() == "{a}" && f.Support != 1.0 {
			t.Fatalf("duplicate items double-counted: %v", f)
		}
	}
}

func TestAprioriParamValidation(t *testing.T) {
	txns := classicBaskets()
	if _, _, err := Apriori(nil, 0.5, 0.5); err == nil {
		t.Fatal("expected error on empty txns")
	}
	if _, _, err := Apriori(txns, 0, 0.5); err == nil {
		t.Fatal("expected error on minSupport=0")
	}
	if _, _, err := Apriori(txns, 1.5, 0.5); err == nil {
		t.Fatal("expected error on minSupport>1")
	}
	if _, _, err := Apriori(txns, 0.5, -0.1); err == nil {
		t.Fatal("expected error on negative confidence")
	}
	if _, _, err := Apriori(txns, 0.5, 1.1); err == nil {
		t.Fatal("expected error on confidence>1")
	}
}

func TestAprioriTripleItemset(t *testing.T) {
	txns := []Transaction{
		{"a", "b", "c"}, {"a", "b", "c"}, {"a", "b", "c"}, {"d"},
	}
	freq, rules, err := Apriori(txns, 0.7, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range freq {
		if f.Items.String() == "{a,b,c}" {
			found = true
			if f.Support != 0.75 {
				t.Fatalf("sup{a,b,c} = %v, want 0.75", f.Support)
			}
		}
	}
	if !found {
		t.Fatal("3-itemset {a,b,c} not found")
	}
	// Rule {a,b} → {c} should exist with confidence 1.
	foundRule := false
	for _, r := range rules {
		if r.Antecedent.String() == "{a,b}" && r.Consequent.String() == "{c}" {
			foundRule = true
			if r.Confidence < 0.999 {
				t.Fatalf("conf = %v", r.Confidence)
			}
		}
	}
	if !foundRule {
		t.Fatalf("{a,b}→{c} missing from %v", rules)
	}
}

func TestContainsAll(t *testing.T) {
	txn := []string{"a", "c", "e"}
	if !containsAll(txn, ItemSet{"a", "e"}) {
		t.Fatal("containsAll false negative")
	}
	if containsAll(txn, ItemSet{"a", "b"}) {
		t.Fatal("containsAll false positive")
	}
	if !containsAll(txn, ItemSet{}) {
		t.Fatal("empty set should be contained")
	}
}

// Property: every reported frequent itemset really meets min support, and
// every subset of a frequent itemset is also frequent (anti-monotonicity).
func TestAprioriSoundnessProperty(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		txns := make([]Transaction, n)
		for i := range txns {
			var t Transaction
			for _, it := range items {
				if rng.Float64() < 0.5 {
					t = append(t, it)
				}
			}
			if len(t) == 0 {
				t = Transaction{"a"}
			}
			txns[i] = t
		}
		minSup := 0.3
		freq, rules, err := Apriori(txns, minSup, 0.6)
		if err != nil {
			return false
		}
		keys := map[string]bool{}
		for _, fi := range freq {
			keys[fi.Items.Key()] = true
			// Verify support by direct count.
			cnt := 0
			for _, txn := range txns {
				sorted := append([]string(nil), txn...)
				sortStrings(sorted)
				if containsAll(sorted, fi.Items) {
					cnt++
				}
			}
			if float64(cnt)/float64(n) < minSup-1e-9 {
				return false
			}
		}
		// Anti-monotonicity: all (k-1)-subsets of frequent sets frequent.
		for _, fi := range freq {
			if len(fi.Items) < 2 {
				continue
			}
			for skip := range fi.Items {
				var sub ItemSet
				for i, it := range fi.Items {
					if i != skip {
						sub = append(sub, it)
					}
				}
				if !keys[sub.Key()] {
					return false
				}
			}
		}
		// Rules meet the confidence floor.
		for _, r := range rules {
			if r.Confidence < 0.6-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
