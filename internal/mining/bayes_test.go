package mining

import (
	"math/rand"
	"testing"
)

func bayesBlobs(n int, rng *rand.Rand) ([][]float64, []string) {
	var x [][]float64
	var y []string
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x = append(x, []float64{rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, "a")
		} else {
			x = append(x, []float64{6 + rng.NormFloat64(), 6 + rng.NormFloat64()})
			y = append(y, "b")
		}
	}
	return x, y
}

func TestGaussianNBSeparableClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := bayesBlobs(200, rng)
	nb, err := TrainGaussianNB(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got := nb.Classes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Classes = %v", got)
	}
	tx, ty := bayesBlobs(100, rng)
	acc, err := nb.Accuracy(tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.98 {
		t.Fatalf("accuracy = %v on separable data", acc)
	}
}

func TestGaussianNBValidation(t *testing.T) {
	if _, err := TrainGaussianNB(nil, nil); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := TrainGaussianNB([][]float64{{1}}, []string{"a", "b"}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := TrainGaussianNB([][]float64{{1}, {1, 2}}, []string{"a", "b"}); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestGaussianNBPredictValidation(t *testing.T) {
	nb, err := TrainGaussianNB([][]float64{{0, 0}, {5, 5}}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.Predict([]float64{1}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := nb.Accuracy(nil, nil); err == nil {
		t.Fatal("empty test set accepted")
	}
}

func TestGaussianNBPriorsMatter(t *testing.T) {
	// Heavily imbalanced classes with overlapping features: the prior
	// should pull ambiguous points toward the majority class.
	var x [][]float64
	var y []string
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 95; i++ {
		x = append(x, []float64{rng.NormFloat64()})
		y = append(y, "common")
	}
	for i := 0; i < 5; i++ {
		x = append(x, []float64{0.5 + rng.NormFloat64()})
		y = append(y, "rare")
	}
	nb, err := TrainGaussianNB(x, y)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nb.Predict([]float64{0.25}) // ambiguous midpoint
	if err != nil {
		t.Fatal(err)
	}
	if got != "common" {
		t.Fatalf("prior ignored: predicted %q", got)
	}
}

func TestGaussianNBZeroVarianceFeature(t *testing.T) {
	// Constant features must not produce NaNs (variance smoothing).
	x := [][]float64{{1, 0}, {1, 1}, {1, 5}, {1, 6}}
	y := []string{"a", "a", "b", "b"}
	nb, err := TrainGaussianNB(x, y)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nb.Predict([]float64{1, 5.5})
	if err != nil || got != "b" {
		t.Fatalf("Predict = %q, %v", got, err)
	}
}
