package mining

import (
	"fmt"
	"sort"
	"strings"
)

// DecisionTree is a CART-style classification tree (Gini impurity, binary
// numeric splits) — the most interpretable of the "powerful mining
// algorithms" in the attacker's toolkit: its split thresholds literally
// spell out the private decision boundaries (e.g. "Glucose > 114 ⇒
// high risk").
type DecisionTree struct {
	root *treeNode
	dim  int
}

type treeNode struct {
	// Leaf fields.
	leaf  bool
	label string
	// Split fields.
	feature   int
	threshold float64
	left      *treeNode // feature <= threshold
	right     *treeNode // feature > threshold
	samples   int
}

// TreeConfig bounds tree growth.
type TreeConfig struct {
	// MaxDepth limits tree height (default 6).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 3).
	MinLeaf int
}

// TrainDecisionTree fits a classification tree.
func TrainDecisionTree(points [][]float64, labels []string, cfg TreeConfig) (*DecisionTree, error) {
	if len(points) == 0 {
		return nil, errNoObservations
	}
	if len(points) != len(labels) {
		return nil, fmt.Errorf("mining: %d points but %d labels", len(points), len(labels))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("mining: point %d has %d dims, want %d", i, len(p), dim)
		}
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 3
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	root := growTree(points, labels, idx, cfg, 0)
	return &DecisionTree{root: root, dim: dim}, nil
}

func growTree(points [][]float64, labels []string, idx []int, cfg TreeConfig, depth int) *treeNode {
	maj, pure := majorityLabel(labels, idx)
	if pure || depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return &treeNode{leaf: true, label: maj, samples: len(idx)}
	}
	feature, threshold, gain := bestSplit(points, labels, idx, cfg.MinLeaf)
	if gain <= 1e-12 {
		return &treeNode{leaf: true, label: maj, samples: len(idx)}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if points[i][feature] <= threshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < cfg.MinLeaf || len(rightIdx) < cfg.MinLeaf {
		return &treeNode{leaf: true, label: maj, samples: len(idx)}
	}
	return &treeNode{
		feature:   feature,
		threshold: threshold,
		left:      growTree(points, labels, leftIdx, cfg, depth+1),
		right:     growTree(points, labels, rightIdx, cfg, depth+1),
		samples:   len(idx),
	}
}

func majorityLabel(labels []string, idx []int) (string, bool) {
	counts := map[string]int{}
	for _, i := range idx {
		counts[labels[i]]++
	}
	best, bestN := "", -1
	keys := make([]string, 0, len(counts))
	for l := range counts {
		keys = append(keys, l)
	}
	sort.Strings(keys)
	for _, l := range keys {
		if counts[l] > bestN {
			best, bestN = l, counts[l]
		}
	}
	return best, len(counts) == 1
}

func gini(labels []string, idx []int) float64 {
	counts := map[string]int{}
	for _, i := range idx {
		counts[labels[i]]++
	}
	n := float64(len(idx))
	g := 1.0
	for _, c := range counts {
		p := float64(c) / n
		g -= p * p
	}
	return g
}

// bestSplit finds the (feature, threshold) minimizing weighted Gini.
func bestSplit(points [][]float64, labels []string, idx []int, minLeaf int) (feature int, threshold, gain float64) {
	parent := gini(labels, idx)
	n := float64(len(idx))
	bestGain := 0.0
	bestFeature, bestThresh := -1, 0.0
	dim := len(points[idx[0]])

	for f := 0; f < dim; f++ {
		sorted := append([]int(nil), idx...)
		sort.Slice(sorted, func(a, b int) bool { return points[sorted[a]][f] < points[sorted[b]][f] })
		// Incremental class counts left of the candidate split.
		leftCounts := map[string]int{}
		rightCounts := map[string]int{}
		for _, i := range sorted {
			rightCounts[labels[i]]++
		}
		for k := 0; k < len(sorted)-1; k++ {
			lbl := labels[sorted[k]]
			leftCounts[lbl]++
			rightCounts[lbl]--
			if k+1 < minLeaf || len(sorted)-k-1 < minLeaf {
				continue
			}
			v, next := points[sorted[k]][f], points[sorted[k+1]][f]
			if v == next {
				continue // can't split between equal values
			}
			nl, nr := float64(k+1), float64(len(sorted)-k-1)
			gl := giniFromCounts(leftCounts, nl)
			gr := giniFromCounts(rightCounts, nr)
			g := parent - (nl/n)*gl - (nr/n)*gr
			if g > bestGain {
				bestGain = g
				bestFeature = f
				bestThresh = (v + next) / 2
			}
		}
	}
	return bestFeature, bestThresh, bestGain
}

func giniFromCounts(counts map[string]int, n float64) float64 {
	g := 1.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		g -= p * p
	}
	return g
}

// Predict classifies one observation.
func (t *DecisionTree) Predict(x []float64) (string, error) {
	if len(x) != t.dim {
		return "", fmt.Errorf("mining: query has %d dims, tree has %d", len(x), t.dim)
	}
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label, nil
}

// Accuracy scores the tree on a labelled test set.
func (t *DecisionTree) Accuracy(points [][]float64, labels []string) (float64, error) {
	if len(points) != len(labels) || len(points) == 0 {
		return 0, fmt.Errorf("mining: accuracy needs equal non-empty sets (got %d, %d)", len(points), len(labels))
	}
	correct := 0
	for i, p := range points {
		got, err := t.Predict(p)
		if err != nil {
			return 0, err
		}
		if got == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(points)), nil
}

// Depth returns the tree's height (a single leaf has depth 0).
func (t *DecisionTree) Depth() int {
	var depth func(n *treeNode) int
	depth = func(n *treeNode) int {
		if n.leaf {
			return 0
		}
		l, r := depth(n.left), depth(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return depth(t.root)
}

// Rules renders the tree's decision rules — the leaked "knowledge" an
// attacker reads straight off the model.
func (t *DecisionTree) Rules(featureNames []string) string {
	var b strings.Builder
	nameOf := func(f int) string {
		if f < len(featureNames) {
			return featureNames[f]
		}
		return fmt.Sprintf("x%d", f)
	}
	var walk func(n *treeNode, indent string)
	walk = func(n *treeNode, indent string) {
		if n.leaf {
			fmt.Fprintf(&b, "%s=> %s (%d samples)\n", indent, n.label, n.samples)
			return
		}
		fmt.Fprintf(&b, "%sif %s <= %.3f:\n", indent, nameOf(n.feature), n.threshold)
		walk(n.left, indent+"  ")
		fmt.Fprintf(&b, "%selse:\n", indent)
		walk(n.right, indent+"  ")
	}
	walk(t.root, "")
	return b.String()
}
