package simcheck

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/health"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/wal"
)

// ShardConfig parameterizes one multi-distributor simulation: a
// consistent-hash namespace over several shards, each shard a
// primary+followers replication cluster over its own provider fleet.
// The run is a pure function of this struct — same config, same trace
// hash — like the single-distributor harness.
type ShardConfig struct {
	Seed int64
	// Ops is the number of workload operations (default 240).
	Ops int
	// Shards is the number of distributor clusters (default 3).
	Shards int
	// ProvidersPerShard sizes each shard's private fleet (default 6).
	ProvidersPerShard int
	// Followers is the number of replication followers per shard
	// (default 1).
	Followers int
	// CheckEvery is the op interval between quiescent checkpoints
	// (default 30). A final checkpoint always runs after the last op.
	CheckEvery int
	// MaxFileBytes caps generated file sizes (default 8 KiB).
	MaxFileBytes int

	// FollowerOutageRate is the per-op chance that one shard's follower
	// becomes unreachable (an inter-distributor partition) for
	// WindowOps operations; replication lag accrues, then the heal must
	// catch it up incrementally.
	FollowerOutageRate float64
	// PrimaryOutageRate is the per-op chance that one shard's primary
	// goes down for WindowOps operations: mutations to that shard fail
	// as unavailable while reads are served byte-exact off a follower.
	PrimaryOutageRate float64
	// CrashRate is the per-op chance that one shard's primary
	// crash-restarts (power-loss semantics, recovery from its WAL) and
	// rejoins its cluster.
	CrashRate float64
	// WindowOps is the length of an outage window in ops (default 8).
	WindowOps int
}

// DefaultShardConfig returns the standard sweep configuration for a
// seed: fault rates high enough that every class of window fires in a
// few hundred ops.
func DefaultShardConfig(seed int64) ShardConfig {
	return ShardConfig{
		Seed:               seed,
		Ops:                240,
		Shards:             3 + int(seed%2), // sweep 3- and 4-shard topologies
		ProvidersPerShard:  6,
		Followers:          1,
		CheckEvery:         30,
		MaxFileBytes:       8 << 10,
		FollowerOutageRate: 0.04,
		PrimaryOutageRate:  0.02,
		CrashRate:          0.015,
		WindowOps:          8,
	}
}

// ShardResult summarizes a completed sharded run.
type ShardResult struct {
	Seed        int64
	Ops         int
	Shards      int
	TraceHash   string
	Checkpoints int

	Uploads         int
	UploadsOK       int
	Reads           int
	ReadsOK         int
	Updates         int
	Removes         int
	Unavailable     int // mutations rejected while a primary was down
	FollowerOutages int
	PrimaryOutages  int
	Restarts        int

	RecordsReplicated uint64 // summed across shards
	SnapshotSyncs     uint64
}

// shard is one namespace partition's moving parts.
type shard struct {
	name      string
	cluster   *core.Cluster
	members   []*core.Distributor // [0] primary, rest followers
	walDir    string
	rebuild   func() (*core.Distributor, error)
	lastGen   uint64 // primary generation at the previous checkpoint
	downUntil int    // op index an open outage window ends at (0 = none)
	downIdx   int    // which member the open window holds down
}

// shardRunner drives one sharded simulation.
type shardRunner struct {
	cfg    ShardConfig
	ring   *dht.BalancedRing
	shards []*shard
	m      *model
	tr     *trace
	rng    *rand.Rand
	res    ShardResult

	nameSeq int
	clients []string
}

// RunSharded executes one multi-distributor simulation. On an invariant
// violation the error is a *Violation carrying a seeded repro line.
func RunSharded(cfg ShardConfig) (ShardResult, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 240
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.ProvidersPerShard <= 0 {
		cfg.ProvidersPerShard = 6
	}
	if cfg.Followers <= 0 {
		cfg.Followers = 1
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 30
	}
	if cfg.MaxFileBytes <= 0 {
		cfg.MaxFileBytes = 8 << 10
	}
	if cfg.WindowOps <= 0 {
		cfg.WindowOps = 8
	}

	tr := newTrace()
	tr.addf("simcheck-shard seed=%d ops=%d shards=%d provs=%d followers=%d",
		cfg.Seed, cfg.Ops, cfg.Shards, cfg.ProvidersPerShard, cfg.Followers)

	// The breaker clock is virtual and shared, as in the single-shard
	// harness; with no provider-level faults it never trips a breaker,
	// but keeping wall time out of the loop is what makes the trace hash
	// reproducible.
	var vnow atomic.Int64

	r := &shardRunner{
		cfg: cfg, m: newModel(), tr: tr,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		res:     ShardResult{Seed: cfg.Seed, Ops: cfg.Ops, Shards: cfg.Shards},
		clients: []string{"alice", "bob"},
	}

	names := make([]string, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		names[s] = fmt.Sprintf("shard-%02d", s)
	}
	ring, err := dht.NewBalancedRing(dht.DefaultVNodes, names...)
	if err != nil {
		return r.res, err
	}
	r.ring = ring

	for s := 0; s < cfg.Shards; s++ {
		fleet, err := provider.NewFleet()
		if err != nil {
			return r.res, err
		}
		for i := 0; i < cfg.ProvidersPerShard; i++ {
			mem, err := provider.New(provider.Info{
				Name: fmt.Sprintf("s%02dp%02d", s, i), PL: privacy.High, CL: 1,
			}, provider.Options{})
			if err != nil {
				return r.res, err
			}
			if err := fleet.Add(mem); err != nil {
				return r.res, err
			}
		}
		walDir, err := os.MkdirTemp("", "simcheck-shard-wal-")
		if err != nil {
			return r.res, err
		}
		defer os.RemoveAll(walDir)

		buildMember := func(secret byte, dir string) (*core.Distributor, error) {
			return core.New(core.Config{
				Fleet:        fleet,
				StripeWidth:  3,
				Parallelism:  1, // determinism anchors, as in Run
				StreamWindow: 1,
				Secret:       []byte{secret},
				MisleadSeed:  cfg.Seed,
				Health: health.Config{
					Cooldown: 8 * time.Millisecond,
					Clock:    func() time.Time { return time.Unix(0, vnow.Load()) },
				},
				WALDir:        dir,
				WALSync:       wal.SyncAlways,
				SnapshotEvery: 64,
			})
		}
		members := make([]*core.Distributor, 1+cfg.Followers)
		// Only the primary is durable; followers hold replicated state in
		// memory and re-seed from a snapshot if they ever fall off the
		// retained log — exactly the production follower contract.
		members[0], err = buildMember(byte(s+1), walDir)
		if err != nil {
			return r.res, err
		}
		for f := 1; f < len(members); f++ {
			members[f], err = buildMember(byte(s+1)<<4|byte(f), "")
			if err != nil {
				return r.res, err
			}
		}
		cluster, err := core.NewCluster(members...)
		if err != nil {
			return r.res, err
		}
		sh := &shard{name: names[s], cluster: cluster, members: members, walDir: walDir}
		shardIdx := s
		sh.rebuild = func() (*core.Distributor, error) {
			return buildMember(byte(shardIdx+1), walDir)
		}
		r.shards = append(r.shards, sh)

		for _, c := range r.clients {
			if err := cluster.RegisterClient(c); err != nil {
				return r.res, err
			}
			if err := cluster.AddPassword(c, password, privacy.High); err != nil {
				return r.res, err
			}
		}
	}

	for i := 0; i < cfg.Ops; i++ {
		vnow.Add(int64(time.Millisecond))
		if v := r.windows(i); v != nil {
			r.finish()
			return r.res, v
		}
		if v := r.step(i); v != nil {
			r.finish()
			return r.res, v
		}
		if (i+1)%cfg.CheckEvery == 0 {
			if v := r.checkpoint(i); v != nil {
				r.finish()
				return r.res, v
			}
		}
	}
	if cfg.Ops%cfg.CheckEvery != 0 {
		if v := r.checkpoint(cfg.Ops - 1); v != nil {
			r.finish()
			return r.res, v
		}
	}
	r.finish()
	return r.res, nil
}

func (r *shardRunner) finish() {
	for _, sh := range r.shards {
		st := sh.cluster.ReplicationStats()
		r.res.RecordsReplicated += st.RecordsReplicated
		r.res.SnapshotSyncs += st.SnapshotSyncs
	}
	r.res.TraceHash = r.tr.hashHex()
}

// owner routes a file key to its shard — the same hash the transport
// router uses, so the harness exercises the production partition.
func (r *shardRunner) owner(client, name string) (int, *shard) {
	node, err := r.ring.Successor(dht.FileKey(client, name))
	if err != nil {
		panic("simcheck: empty ring: " + err.Error())
	}
	for s, sh := range r.shards {
		if sh.name == node {
			return s, sh
		}
	}
	panic("simcheck: ring returned unknown shard " + node)
}

// windows closes expired outage windows and rolls for new faults.
// Heals are synchronous: SetDown(false) catches a lagging follower up
// before it may serve reads again, so any error here is a violation.
func (r *shardRunner) windows(i int) *Violation {
	for s, sh := range r.shards {
		if sh.downUntil > 0 && i >= sh.downUntil {
			if err := sh.cluster.SetDown(sh.downIdx, false); err != nil {
				return r.violation(i, "heal-catchup",
					fmt.Sprintf("shard %d member %d heal: %v", s, sh.downIdx, err))
			}
			r.tr.addf("op=%d shard=%d heal member=%d", i, s, sh.downIdx)
			sh.downUntil = 0
		}
	}
	// At most one new fault per op keeps windows from piling onto one
	// shard; the roll order is fixed so the schedule stays seeded.
	roll := r.rng.Float64()
	s := r.rng.Intn(len(r.shards))
	sh := r.shards[s]
	switch {
	case roll < r.cfg.FollowerOutageRate:
		if sh.downUntil > 0 {
			return nil // window already open on this shard
		}
		f := 1 + r.rng.Intn(len(sh.members)-1)
		if err := sh.cluster.SetDown(f, true); err != nil {
			return r.violation(i, "fault-inject", fmt.Sprintf("shard %d follower down: %v", s, err))
		}
		sh.downUntil, sh.downIdx = i+1+r.rng.Intn(r.cfg.WindowOps), f
		r.res.FollowerOutages++
		r.tr.addf("op=%d shard=%d partition follower=%d until=%d", i, s, f, sh.downUntil)
	case roll < r.cfg.FollowerOutageRate+r.cfg.PrimaryOutageRate:
		if sh.downUntil > 0 {
			return nil
		}
		if err := sh.cluster.SetDown(0, true); err != nil {
			return r.violation(i, "fault-inject", fmt.Sprintf("shard %d primary down: %v", s, err))
		}
		sh.downUntil, sh.downIdx = i+1+r.rng.Intn(r.cfg.WindowOps), 0
		r.res.PrimaryOutages++
		r.tr.addf("op=%d shard=%d primary-down until=%d", i, s, sh.downUntil)
	case roll < r.cfg.FollowerOutageRate+r.cfg.PrimaryOutageRate+r.cfg.CrashRate:
		return r.crashRestart(i, s)
	}
	return nil
}

// crashRestart power-cycles a shard's primary: no drain, recovery from
// the WAL, then the cluster is rebuilt around the recovered primary and
// resynced. Any open window on the shard heals first so the rebuilt
// cluster starts from a known membership state.
func (r *shardRunner) crashRestart(i, s int) *Violation {
	sh := r.shards[s]
	if sh.downUntil > 0 {
		if err := sh.cluster.SetDown(sh.downIdx, false); err != nil {
			return r.violation(i, "heal-catchup",
				fmt.Sprintf("shard %d member %d pre-crash heal: %v", s, sh.downIdx, err))
		}
		sh.downUntil = 0
	}
	genBefore := sh.members[0].Generation()
	if err := sh.members[0].Crash(); err != nil {
		return r.violation(i, "recovery", fmt.Sprintf("shard %d crash: %v", s, err))
	}
	prim, err := sh.rebuild()
	if err != nil {
		return r.violation(i, "recovery", fmt.Sprintf("shard %d re-open after crash: %v", s, err))
	}
	if got := prim.Generation(); got < genBefore {
		return r.violation(i, "generation-monotonic",
			fmt.Sprintf("shard %d recovered at gen %d, below pre-crash gen %d", s, got, genBefore))
	}
	sh.members[0] = prim
	cluster, err := core.NewCluster(sh.members...)
	if err != nil {
		return r.violation(i, "recovery", fmt.Sprintf("shard %d cluster rebuild: %v", s, err))
	}
	sh.cluster = cluster
	if err := cluster.Sync(); err != nil {
		return r.violation(i, "recovery", fmt.Sprintf("shard %d post-crash sync: %v", s, err))
	}
	r.res.Restarts++
	r.tr.addf("op=%d shard=%d crash-restart gen=%d", i, s, prim.Generation())
	return nil
}

// step executes one routed workload operation.
func (r *shardRunner) step(i int) *Violation {
	live := r.m.live()
	k := r.rng.Intn(100)
	if len(live) == 0 {
		k = 0
	}
	switch {
	case k < 30:
		r.opUpload(i)
		return nil
	case k < 70:
		return r.opRead(i, live)
	case k < 85:
		r.opUpdate(i, live)
		return nil
	default:
		r.opRemove(i, live)
		return nil
	}
}

func (r *shardRunner) opUpload(i int) {
	client := r.clients[r.rng.Intn(len(r.clients))]
	name := fmt.Sprintf("g%05d", r.nameSeq)
	r.nameSeq++
	pl := privacy.Level(r.rng.Intn(int(privacy.MaxLevel) + 1))
	data := make([]byte, r.rng.Intn(r.cfg.MaxFileBytes+1))
	r.rng.Read(data)
	opts := core.UploadOptions{}
	if r.rng.Float64() < 0.3 {
		opts.Replicas = 1
	}
	s, sh := r.owner(client, name)
	r.res.Uploads++
	fi, err := sh.cluster.Upload(client, password, name, data, pl, opts)
	r.tr.addf("op=%d upload shard=%d c=%s f=%s pl=%d size=%d -> %s",
		i, s, client, name, pl, len(data), errClass(err))
	if err == nil {
		r.res.UploadsOK++
		r.m.addFile(client, name, data, pl, fi.Raid)
	} else if errors.Is(err, core.ErrUnavailable) {
		r.res.Unavailable++
	}
}

// opRead reads a file through its owning cluster. With no provider
// faults in this harness a read must always succeed — even mid-window,
// when a down primary leaves only followers — and must be byte-exact.
func (r *shardRunner) opRead(i int, live []*modelFile) *Violation {
	f := live[r.rng.Intn(len(live))]
	s, sh := r.owner(f.client, f.name)
	got, err := sh.cluster.GetFile(f.client, password, f.name)
	r.tr.addf("op=%d getfile shard=%d c=%s f=%s -> %s", i, s, f.client, f.name, errClass(err))
	r.res.Reads++
	if err != nil {
		return r.violation(i, "shard-readability",
			fmt.Sprintf("read of %s/%s on shard %d failed: %v", f.client, f.name, s, err))
	}
	r.res.ReadsOK++
	if !bytes.Equal(got, f.bytes()) {
		return r.violation(i, "read-integrity",
			fmt.Sprintf("read of %s/%s on shard %d returned %d bytes differing from the model (%d expected)",
				f.client, f.name, s, len(got), len(f.bytes())))
	}
	return nil
}

// opUpdate mutates one chunk through the owning shard's primary and
// replicates. A down primary makes the mutation unavailable — the
// model stays unchanged, which the next read then verifies.
func (r *shardRunner) opUpdate(i int, live []*modelFile) {
	f := live[r.rng.Intn(len(live))]
	s, sh := r.owner(f.client, f.name)
	serial := r.rng.Intn(len(f.chunks))
	size, err := r.m.policy.Size(f.pl)
	if err != nil || size <= 0 {
		size = 8 << 10
	}
	data := make([]byte, 1+r.rng.Intn(size))
	r.rng.Read(data)
	r.res.Updates++
	if sh.downUntil > 0 && sh.downIdx == 0 {
		r.res.Unavailable++
		r.tr.addf("op=%d update shard=%d c=%s f=%s -> unavailable", i, s, f.client, f.name)
		return
	}
	err = sh.members[0].UpdateChunk(f.client, password, f.name, serial, data, core.UploadOptions{})
	if err == nil {
		err = sh.cluster.Sync()
	}
	r.tr.addf("op=%d update shard=%d c=%s f=%s serial=%d size=%d -> %s",
		i, s, f.client, f.name, serial, len(data), errClass(err))
	if err == nil {
		f.chunks[serial] = data
	}
}

// opRemove deletes a file through the owning shard's primary.
func (r *shardRunner) opRemove(i int, live []*modelFile) {
	f := live[r.rng.Intn(len(live))]
	s, sh := r.owner(f.client, f.name)
	r.res.Removes++
	if sh.downUntil > 0 && sh.downIdx == 0 {
		r.res.Unavailable++
		r.tr.addf("op=%d remove shard=%d c=%s f=%s -> unavailable", i, s, f.client, f.name)
		return
	}
	err := sh.members[0].RemoveFile(f.client, password, f.name)
	if err == nil {
		err = sh.cluster.Sync()
	}
	r.tr.addf("op=%d remove shard=%d c=%s f=%s -> %s", i, s, f.client, f.name, errClass(err))
	if err == nil {
		r.m.drop(f.client, f.name)
	}
}

// checkpoint quiesces every fault window, syncs every shard, and checks
// the per-shard oracle invariants: zero lag with equal generations,
// follower state identical to the primary, byte-exact reads through
// the cluster AND directly off a follower, generation monotonicity,
// and namespace isolation (a file lives on its owning shard only).
func (r *shardRunner) checkpoint(i int) *Violation {
	r.res.Checkpoints++
	r.tr.addf("op=%d checkpoint", i)
	for s, sh := range r.shards {
		if sh.downUntil > 0 {
			if err := sh.cluster.SetDown(sh.downIdx, false); err != nil {
				return r.violation(i, "heal-catchup",
					fmt.Sprintf("shard %d member %d checkpoint heal: %v", s, sh.downIdx, err))
			}
			sh.downUntil = 0
		}
		if err := sh.cluster.Sync(); err != nil {
			return r.violation(i, "replication-sync", fmt.Sprintf("shard %d: %v", s, err))
		}
		primGen := sh.members[0].Generation()
		if primGen < sh.lastGen {
			return r.violation(i, "generation-monotonic",
				fmt.Sprintf("shard %d primary gen %d below last checkpoint's %d", s, primGen, sh.lastGen))
		}
		sh.lastGen = primGen
		for _, lag := range sh.cluster.Lag() {
			if lag.Down || lag.LagRecords != 0 || lag.NeedSnapshot || lag.Generation != primGen {
				return r.violation(i, "replication-lag",
					fmt.Sprintf("shard %d member %d not converged after sync: %+v", s, lag.Index, lag))
			}
		}
		primStats := sh.members[0].Stats()
		for f := 1; f < len(sh.members); f++ {
			fs := sh.members[f].Stats()
			if fmt.Sprintf("%+v", fs) != fmt.Sprintf("%+v", primStats) {
				return r.violation(i, "replica-divergence",
					fmt.Sprintf("shard %d follower %d stats %+v != primary %+v", s, f, fs, primStats))
			}
		}
	}
	for _, f := range r.m.live() {
		s, sh := r.owner(f.client, f.name)
		want := f.bytes()
		got, err := sh.cluster.GetFile(f.client, password, f.name)
		if err != nil || !bytes.Equal(got, want) {
			return r.violation(i, "shard-readability",
				fmt.Sprintf("checkpoint read of %s/%s on shard %d: err=%v bytes=%d want=%d",
					f.client, f.name, s, err, len(got), len(want)))
		}
		// Follower reads: the replicated metadata must serve the same
		// bytes without the primary's help.
		fgot, err := sh.members[len(sh.members)-1].GetFile(f.client, password, f.name)
		if err != nil || !bytes.Equal(fgot, want) {
			return r.violation(i, "follower-read",
				fmt.Sprintf("follower read of %s/%s on shard %d: err=%v bytes=%d want=%d",
					f.client, f.name, s, err, len(fgot), len(want)))
		}
		for o, other := range r.shards {
			if o == s {
				if _, err := other.members[0].ChunkCount(f.client, password, f.name); err != nil {
					return r.violation(i, "shard-isolation",
						fmt.Sprintf("owner shard %d does not hold %s/%s: %v", o, f.client, f.name, err))
				}
				continue
			}
			if _, err := other.members[0].ChunkCount(f.client, password, f.name); err == nil {
				return r.violation(i, "shard-isolation",
					fmt.Sprintf("file %s/%s leaked onto shard %d (owner %d)", f.client, f.name, o, s))
			}
		}
	}
	return nil
}

func (r *shardRunner) violation(op int, invariant, detail string) *Violation {
	v := &Violation{
		Seed: r.cfg.Seed, Ops: r.cfg.Ops, Op: op,
		Invariant: invariant, Detail: detail,
		Repro: "TestSimCheckSharded",
		Trace: r.tr.tail(25),
	}
	r.tr.addf("VIOLATION op=%d %s: %s", op, invariant, detail)
	return v
}
