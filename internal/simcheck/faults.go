package simcheck

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/provider"
)

// FaultCounts tallies every fault the injector introduced during a run.
type FaultCounts struct {
	PutFaults    int
	GetFaults    int
	DeleteFaults int
	Corruptions  int
	Delays       int
	Blackouts    int
	Partitions   int
	Outages      int
	Crashes      int
	SilentDrops  int
}

// injector drives the seeded fault schedule through provider.Hooked's
// hook surface. Hooks are installed once and consult the injector's
// state, so suspending faults for a checkpoint is a single flag flip —
// no hook churn, no lost delete observations.
//
// Window bookkeeping is in op counts, never wall time: a partition
// "until op 137" ends when the driver reaches op 137, making the whole
// schedule a pure function of the seed.
type injector struct {
	mu     sync.Mutex
	cfg    Config
	rng    *rand.Rand
	tr     *trace
	tick   func(time.Duration)
	hooked []*provider.Hooked

	active bool
	curOp  int

	blackoutUntil int
	partUntil     []int
	outUntil      []int
	crashArm      []int // puts left on this provider before it crashes
	crashDur      []int
	crashUntil    []int

	// keyLog records every put/delete attempt per vid (op, provider,
	// hook verdict) so an orphan violation can print the blob's whole
	// provider-facing history. It is not part of the hashed trace.
	keyLog map[string][]string

	// failedDeletes is the oracle's allowed-orphan set: every delete the
	// injector made fail is recorded here, because a failed delete is the
	// one legitimate way a blob outlives its table reference. The set
	// persists for the whole run: a stale copy left by a failed delete
	// stays invisible to the orphan audit while its vid is still
	// referenced from the copy's new home, and only surfaces checkpoints
	// later when the vid is retired. A delete that is silently dropped
	// (BugDropDeletes) is deliberately NOT recorded — that is the
	// planted bug the orphan invariant must catch.
	failedDeletes map[string]bool

	counts FaultCounts
}

func newInjector(cfg Config, seed int64, tr *trace, tick func(time.Duration), hooked []*provider.Hooked) *injector {
	inj := &injector{
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(seed)),
		tr:            tr,
		tick:          tick,
		hooked:        hooked,
		active:        true,
		keyLog:        make(map[string][]string),
		failedDeletes: make(map[string]bool),
		partUntil:     make([]int, len(hooked)),
		outUntil:      make([]int, len(hooked)),
		crashArm:      make([]int, len(hooked)),
		crashDur:      make([]int, len(hooked)),
		crashUntil:    make([]int, len(hooked)),
	}
	for i, h := range hooked {
		p := i
		h.SetBeforePut(func(_ int, key string) error { return inj.beforePut(p, key) })
		h.SetBeforeGet(func(key string) error { return inj.beforeGet(p) })
		h.SetTransformGet(func(key string, data []byte) []byte { return inj.onGet(p, data) })
		h.SetBeforeDelete(func(key string) error { return inj.beforeDelete(p, key) })
		h.SetBeforeList(func() error { return inj.beforeList(p) })
	}
	return inj
}

// downLocked reports whether provider p is inside any fault window at
// the current op. Callers hold inj.mu.
func (inj *injector) downLocked(p int) bool {
	if inj.cfg.DarkProvider && p == 0 {
		return true
	}
	return inj.blackoutUntil > inj.curOp ||
		inj.partUntil[p] > inj.curOp ||
		inj.outUntil[p] > inj.curOp ||
		inj.crashUntil[p] > inj.curOp
}

func (inj *injector) beforePut(p int, key string) error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	verdict := func(err error) error {
		inj.keyLog[key] = append(inj.keyLog[key], fmt.Sprintf("op=%d put p=%d -> %v", inj.curOp, p, err))
		return err
	}
	if !inj.active {
		return verdict(nil)
	}
	if inj.crashArm[p] > 0 {
		inj.crashArm[p]--
		if inj.crashArm[p] == 0 {
			// The provider dies taking this very write with it.
			inj.crashUntil[p] = inj.curOp + inj.crashDur[p]
			inj.counts.Crashes++
			inj.tr.addf("fault op=%d crash p=%d until=%d", inj.curOp, p, inj.crashUntil[p])
			return verdict(provider.ErrOutage)
		}
	}
	if inj.downLocked(p) {
		inj.counts.PutFaults++
		return verdict(provider.ErrOutage)
	}
	if inj.rng.Float64() < inj.cfg.DelayRate {
		inj.counts.Delays++
		inj.tick(time.Duration(1+inj.rng.Intn(4)) * time.Millisecond)
	}
	if inj.rng.Float64() < inj.cfg.PutFailRate {
		inj.counts.PutFaults++
		inj.tr.addf("fault op=%d put-fail p=%d", inj.curOp, p)
		if inj.rng.Intn(2) == 0 {
			return verdict(provider.ErrInjected)
		}
		return verdict(provider.ErrOutage)
	}
	return verdict(nil)
}

func (inj *injector) beforeGet(p int) error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.active {
		return nil
	}
	if inj.downLocked(p) {
		inj.counts.GetFaults++
		return provider.ErrOutage
	}
	if inj.rng.Float64() < inj.cfg.DelayRate {
		inj.counts.Delays++
		inj.tick(time.Duration(1+inj.rng.Intn(4)) * time.Millisecond)
	}
	if inj.rng.Float64() < inj.cfg.GetFailRate {
		inj.counts.GetFaults++
		inj.tr.addf("fault op=%d get-fail p=%d", inj.curOp, p)
		return provider.ErrOutage
	}
	return nil
}

// onGet is the in-flight corruption fault: right length, wrong bytes.
// The store stays intact — only this answer lies.
func (inj *injector) onGet(p int, data []byte) []byte {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.active || len(data) == 0 {
		return data
	}
	if inj.rng.Float64() < inj.cfg.CorruptRate {
		inj.counts.Corruptions++
		inj.tr.addf("fault op=%d corrupt-get p=%d len=%d", inj.curOp, p, len(data))
		for i := range data {
			data[i] ^= 0x6B
		}
	}
	return data
}

func (inj *injector) beforeDelete(p int, key string) error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	verdict := func(err error) error {
		inj.keyLog[key] = append(inj.keyLog[key], fmt.Sprintf("op=%d delete p=%d -> %v", inj.curOp, p, err))
		return err
	}
	if !inj.active {
		return verdict(nil)
	}
	if inj.cfg.BugDropDeletes {
		// Planted bug: acknowledge the delete without performing it and
		// without recording the key as a known-failed delete. The blob
		// becomes an orphan the rollback/GC bookkeeping knows nothing
		// about — exactly what the orphan invariant exists to catch.
		inj.counts.SilentDrops++
		inj.tr.addf("fault op=%d delete-silently-dropped p=%d vid=%s", inj.curOp, p, key)
		return verdict(provider.ErrSilentDrop)
	}
	if inj.downLocked(p) {
		inj.counts.DeleteFaults++
		inj.failedDeletes[key] = true
		return verdict(provider.ErrOutage)
	}
	if inj.rng.Float64() < inj.cfg.DeleteFailRate {
		inj.counts.DeleteFaults++
		inj.failedDeletes[key] = true
		inj.tr.addf("fault op=%d delete-fail p=%d vid=%s", inj.curOp, p, key)
		return verdict(provider.ErrInjected)
	}
	return verdict(nil)
}

func (inj *injector) beforeList(p int) error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.active {
		return nil
	}
	if inj.downLocked(p) {
		return provider.ErrOutage
	}
	return nil
}

// atOp advances the schedule to op i: the virtual clock ticks once, and
// new fault windows may open. All randomness comes from the injector's
// own rng so the fault schedule is independent of the workload stream.
func (inj *injector) atOp(i int) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.curOp = i
	inj.tick(time.Millisecond)
	if inj.blackoutUntil <= i && inj.rng.Float64() < inj.cfg.BlackoutRate {
		inj.blackoutUntil = i + 2 + inj.rng.Intn(4)
		inj.counts.Blackouts++
		inj.tr.addf("fault op=%d blackout until=%d", i, inj.blackoutUntil)
	}
	if inj.rng.Float64() < inj.cfg.PartitionRate {
		p := inj.rng.Intn(len(inj.hooked))
		if inj.partUntil[p] <= i {
			inj.partUntil[p] = i + 4 + inj.rng.Intn(8)
			inj.counts.Partitions++
			inj.tr.addf("fault op=%d partition p=%d until=%d", i, p, inj.partUntil[p])
		}
	}
	if inj.rng.Float64() < inj.cfg.OutageRate {
		p := inj.rng.Intn(len(inj.hooked))
		if inj.outUntil[p] <= i {
			inj.outUntil[p] = i + 3 + inj.rng.Intn(6)
			inj.counts.Outages++
			inj.tr.addf("fault op=%d outage p=%d until=%d", i, p, inj.outUntil[p])
		}
	}
	if inj.rng.Float64() < inj.cfg.CrashRate {
		p := inj.rng.Intn(len(inj.hooked))
		if inj.crashArm[p] == 0 && inj.crashUntil[p] <= i {
			inj.crashArm[p] = 1 + inj.rng.Intn(3)
			inj.crashDur[p] = 4 + inj.rng.Intn(6)
			inj.tr.addf("fault op=%d crash-armed p=%d after=%d puts", i, p, inj.crashArm[p])
		}
	}
}

// suspend turns every fault off (checkpoints run against a healthy
// fleet); resume turns them back on. Window expiry keeps advancing via
// op counts either way.
func (inj *injector) suspend() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.active = false
}

func (inj *injector) resume() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.active = true
}

func (inj *injector) allowedOrphan(key string) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.failedDeletes[key]
}

// keyHistory returns the recorded put/delete attempts for a vid.
func (inj *injector) keyHistory(key string) []string {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]string(nil), inj.keyLog[key]...)
}

func (inj *injector) faultCounts() FaultCounts {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.counts
}
