package simcheck

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var (
	flagSeed  = flag.Int64("seed", 0, "run exactly this simcheck seed (0 = sweep)")
	flagSeeds = flag.Int("seeds", 0, "number of seeds to sweep (0 = 32, or 8 with -short)")
	flagOps   = flag.Int("ops", 0, "ops per run (0 = default)")
)

// dumpArtifact writes a failing run's full trace to $SIMCHECK_ARTIFACTS
// so CI can upload it next to the repro line.
func dumpArtifact(t *testing.T, cfg Config, v *Violation) {
	dir := os.Getenv("SIMCHECK_ARTIFACTS")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("simcheck: cannot create artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("simcheck-seed%d.txt", cfg.Seed))
	body := v.Error() + "\n\nfull trace:\n" + strings.Join(v.Trace, "\n") + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Logf("simcheck: cannot write artifact: %v", err)
		return
	}
	t.Logf("simcheck: failing-seed artifact written to %s", path)
}

func runSeed(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		var v *Violation
		if errors.As(err, &v) {
			dumpArtifact(t, cfg, v)
		}
		t.Fatalf("%v", err)
	}
	return res
}

// TestSimCheck sweeps seeded fault schedules against the invariant
// oracle. Reproduce any failure with the printed repro line, e.g.
//
//	go test ./internal/simcheck -run 'TestSimCheck$' -seed=7 -ops=300
func TestSimCheck(t *testing.T) {
	if *flagSeed != 0 {
		cfg := DefaultConfig(*flagSeed)
		if *flagOps > 0 {
			cfg.Ops = *flagOps
		}
		res := runSeed(t, cfg)
		t.Logf("seed=%d trace=%s uploads=%d/%d reads=%d/%d faults=%+v",
			res.Seed, res.TraceHash[:16], res.UploadsOK, res.UploadsAttempted,
			res.ReadsOK, res.ReadsAttempted, res.Faults)
		return
	}
	seeds := *flagSeeds
	if seeds == 0 {
		seeds = 32
		if testing.Short() {
			seeds = 8
		}
	}
	for s := int64(1); s <= int64(seeds); s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			cfg := DefaultConfig(s)
			if *flagOps > 0 {
				cfg.Ops = *flagOps
			}
			res := runSeed(t, cfg)
			if res.UploadsOK == 0 {
				t.Fatalf("seed %d: no upload ever succeeded (%d attempted)", s, res.UploadsAttempted)
			}
			if res.StreamUploads == 0 || res.StreamReads == 0 {
				t.Fatalf("seed %d: streaming paths unexercised (ustream=%d getfileto=%d)",
					s, res.StreamUploads, res.StreamReads)
			}
			if res.Checkpoints == 0 {
				t.Fatalf("seed %d: no checkpoint ran", s)
			}
		})
	}
}

// TestSimCheckCrashRestart sweeps seeded fault schedules with periodic
// distributor crashes: the process dies without warning (no drain, no
// final checkpoint), re-opens from its WAL directory, and every oracle
// invariant must hold against the recovered state. Reproduce a failure
// with the printed repro line, e.g.
//
//	go test ./internal/simcheck -run 'TestSimCheckCrashRestart' -seed=7 -ops=300
func TestSimCheckCrashRestart(t *testing.T) {
	if *flagSeed != 0 {
		cfg := DefaultCrashConfig(*flagSeed)
		if *flagOps > 0 {
			cfg.Ops = *flagOps
		}
		res := runSeed(t, cfg)
		t.Logf("seed=%d trace=%s restarts=%d uploads=%d/%d reads=%d/%d",
			res.Seed, res.TraceHash[:16], res.Restarts, res.UploadsOK, res.UploadsAttempted,
			res.ReadsOK, res.ReadsAttempted)
		return
	}
	seeds := *flagSeeds
	if seeds == 0 {
		seeds = 32
		if testing.Short() {
			seeds = 8
		}
	}
	for s := int64(1); s <= int64(seeds); s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			cfg := DefaultCrashConfig(s)
			if *flagOps > 0 {
				cfg.Ops = *flagOps
			}
			res := runSeed(t, cfg)
			if res.Restarts == 0 {
				t.Fatalf("seed %d: no crash-restart cycle ran", s)
			}
			if res.UploadsOK == 0 {
				t.Fatalf("seed %d: no upload ever succeeded (%d attempted)", s, res.UploadsAttempted)
			}
			if res.Checkpoints == 0 {
				t.Fatalf("seed %d: no checkpoint ran", s)
			}
			if !res.Metrics.WAL.Enabled {
				t.Fatalf("seed %d: crash-restart run was not durable", s)
			}
		})
	}
}

// TestSimCheckCrashRestartDeterministic demands that a durable run —
// including its recovery traces — replays bit-identically, so the
// crash-restart repro line is honest.
func TestSimCheckCrashRestartDeterministic(t *testing.T) {
	cfg := DefaultCrashConfig(5)
	cfg.Ops = 240
	a := runSeed(t, cfg)
	b := runSeed(t, cfg)
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hashes differ across identical crash-restart runs: %s vs %s", a.TraceHash, b.TraceHash)
	}
	if a != b {
		t.Fatalf("results differ across identical crash-restart runs:\n  %+v\n  %+v", a, b)
	}
	if a.Restarts == 0 {
		t.Fatal("no restart ran; determinism check is vacuous")
	}
}

// TestSimCheckCatchesLostCommit plants the classic lost-commit bug —
// the WAL acknowledges records at SyncAlways without fsyncing them, so
// a crash forgets acknowledged commits — and requires the post-recovery
// oracle checkpoint to catch it with a crash-restart repro line.
func TestSimCheckCatchesLostCommit(t *testing.T) {
	cfg := DefaultCrashConfig(2)
	cfg.Ops = 200
	cfg.BugLoseLastCommit = true
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("a run that loses every acknowledged commit on crash passed the oracle — recovery checking has no teeth")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected a *Violation, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "TestSimCheckCrashRestart") {
		t.Fatalf("violation carries no crash-restart repro line: %v", err)
	}
	t.Logf("planted lost-commit bug caught (invariant %q): %s", v.Invariant, strings.SplitN(err.Error(), "\n", 2)[0])
}

// TestSimCheckDeterministic runs the same config twice and demands an
// identical op/fault trace: the repro line is only honest if a seed
// replays the run exactly.
func TestSimCheckDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 4} { // one cache-on seed, one cache-off
		cfg := DefaultConfig(seed)
		cfg.Ops = 240
		a := runSeed(t, cfg)
		b := runSeed(t, cfg)
		if a.TraceHash != b.TraceHash {
			t.Fatalf("seed %d: trace hashes differ across identical runs: %s vs %s", seed, a.TraceHash, b.TraceHash)
		}
		if a != b {
			t.Fatalf("seed %d: results differ across identical runs:\n  %+v\n  %+v", seed, a, b)
		}
	}
}

// TestSimCheckCatchesDroppedRollbackDelete plants the classic rollback
// bug — provider deletes acknowledged but silently dropped — and
// requires the orphan invariant to catch it with a repro line.
func TestSimCheckCatchesDroppedRollbackDelete(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Ops = 200
	cfg.BugDropDeletes = true
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("a run that silently drops every provider delete passed the oracle — the orphan invariant has no teeth")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected a *Violation, got %T: %v", err, err)
	}
	if v.Invariant != "orphans" {
		t.Fatalf("expected the orphan invariant to trip, got %q: %v", v.Invariant, err)
	}
	if !strings.Contains(err.Error(), "go test ./internal/simcheck") {
		t.Fatalf("violation carries no repro line: %v", err)
	}
	t.Logf("planted bug caught: %s", strings.SplitN(err.Error(), "\n", 2)[0])
}

// TestSimCheckDarkProvider ports internal/sim's sustained-outage
// scenario onto the harness: provider 0 stays "up" but fails every
// data-plane op for the whole run. Failover and circuit breaking must
// keep the workload healthy and every invariant intact.
func TestSimCheckDarkProvider(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.Ops = 240
	cfg.DarkProvider = true
	// Isolate the dark provider's effect: no other faults.
	cfg.PutFailRate, cfg.GetFailRate, cfg.DeleteFailRate = 0, 0, 0
	cfg.CorruptRate, cfg.DelayRate = 0, 0
	cfg.BlackoutRate, cfg.PartitionRate, cfg.OutageRate, cfg.CrashRate = 0, 0, 0, 0
	cfg.RotPerCheckpoint = 0
	res := runSeed(t, cfg)
	if res.UploadsAttempted == 0 {
		t.Fatal("no uploads attempted")
	}
	if ratio := float64(res.UploadsOK) / float64(res.UploadsAttempted); ratio < 0.9 {
		t.Fatalf("upload success %d/%d under a single dark provider; failover should carry the fleet",
			res.UploadsOK, res.UploadsAttempted)
	}
	if res.Metrics.WriteFailovers == 0 {
		t.Fatal("WriteFailovers = 0: the dark provider was never even tried, scenario is vacuous")
	}
	if res.Metrics.CircuitOpens == 0 {
		t.Fatal("CircuitOpens = 0: the breaker never isolated the dark provider")
	}
}
