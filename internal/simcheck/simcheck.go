package simcheck

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
	"repro/internal/wal"
)

// Config parameterizes one simulation run. The run is a pure function
// of this struct: same config, same trace hash.
type Config struct {
	Seed int64
	// Ops is the number of workload operations (default 300).
	Ops int
	// Providers is the fleet size, >= 8 (default 12). The first
	// Providers-4 are High-PL; the tail steps down Moderate, Moderate,
	// Low, Public so placement legality is actually exercised.
	Providers int
	// CheckEvery is the op interval between quiescent checkpoints
	// (default 40). A final checkpoint always runs after the last op.
	CheckEvery int
	// MaxFileBytes caps generated file sizes (default 16 KiB).
	MaxFileBytes int
	// CacheBytes sizes the distributor's read cache. 0 disables it;
	// DefaultConfig derives on/off from the seed so both paths are swept.
	CacheBytes int64

	// Per-op fault probabilities, drawn per provider operation.
	PutFailRate    float64
	GetFailRate    float64
	DeleteFailRate float64
	CorruptRate    float64 // in-flight: right length, wrong bytes
	DelayRate      float64 // virtual-clock delay (skews breaker healing)

	// Window fault probabilities, drawn once per workload op.
	BlackoutRate  float64 // full-fleet outage for a few ops
	PartitionRate float64 // one provider unreachable for a while
	OutageRate    float64 // one provider erroring for a while
	CrashRate     float64 // provider dies mid-write after a few puts

	// RotPerCheckpoint injects that many at-rest bit-rot corruptions
	// after each checkpoint, budgeted to one per stripe so every rot
	// stays repairable (the next scrub must heal all of them).
	RotPerCheckpoint int

	// RestartEvery crashes the distributor (power-loss semantics: no
	// drain, no final checkpoint) every that many ops and re-opens it
	// from its WAL directory, then runs a full oracle checkpoint against
	// the recovered state. 0 disables restarts. A non-zero value makes
	// the run durable: it opens a WAL in a per-run temp directory at
	// SyncAlways (grouped sync flushes on a wall-clock timer, which
	// would break trace determinism).
	RestartEvery int

	// BugDropDeletes plants a rollback bug: every provider delete is
	// acknowledged but silently dropped, leaving orphans the bookkeeping
	// cannot explain. Used to prove the orphan invariant has teeth.
	BugDropDeletes bool
	// BugLoseLastCommit plants the classic lost-commit bug: WAL records
	// are acknowledged at SyncAlways but never actually fsynced, so a
	// crash silently forgets acknowledged commits. The post-recovery
	// oracle checkpoint must catch it (generation going backwards / the
	// file set diverging from the model). Implies a durable run.
	BugLoseLastCommit bool
	// DarkProvider ports internal/sim's sustained-outage scenario:
	// provider 0 stays up but fails every data-plane op for the whole
	// run, so failover and circuit breaking carry the workload.
	DarkProvider bool
}

// DefaultConfig returns the standard sweep configuration for a seed.
func DefaultConfig(seed int64) Config {
	cfg := Config{
		Seed:             seed,
		Ops:              300,
		Providers:        12,
		CheckEvery:       40,
		MaxFileBytes:     16 << 10,
		PutFailRate:      0.03,
		GetFailRate:      0.03,
		DeleteFailRate:   0.05,
		CorruptRate:      0.03,
		DelayRate:        0.01,
		BlackoutRate:     0.004,
		PartitionRate:    0.010,
		OutageRate:       0.008,
		CrashRate:        0.006,
		RotPerCheckpoint: 2,
	}
	if seed%2 == 1 {
		cfg.CacheBytes = 8 << 20
	}
	return cfg
}

// DefaultCrashConfig is DefaultConfig plus a seed-derived crash-restart
// cadence, so a sweep exercises different (restart × checkpoint × fault
// window) phase alignments.
func DefaultCrashConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.RestartEvery = 30 + int(seed%7)*5
	return cfg
}

// Result summarizes a completed run.
type Result struct {
	Seed        int64
	Ops         int
	TraceHash   string
	Checkpoints int
	Restarts    int // crash-restart cycles survived

	UploadsAttempted int
	UploadsOK        int
	StreamUploads    int // uploads driven through UploadStream (io.Reader path)
	ReadsAttempted   int
	ReadsOK          int
	StreamReads      int // whole-file reads driven through GetFileTo (io.Writer path)
	Updates          int
	Removes          int
	Scrubs           int
	Decommissions    int
	DrillReads       int
	OrphansCollected int

	Faults  FaultCounts
	Metrics core.OpMetrics
}

// Violation is an invariant failure. Its Error() carries a one-line
// repro command with the seed, so any sweep failure is replayable.
type Violation struct {
	Seed      int64
	Ops       int
	Op        int
	Invariant string
	Detail    string
	Repro     string   // test to replay this schedule under (default TestSimCheck$)
	Trace     []string // tail of the op/fault trace
}

func (v *Violation) Error() string {
	run := v.Repro
	if run == "" {
		run = "TestSimCheck$"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "simcheck: invariant %q violated at op %d: %s\n", v.Invariant, v.Op, v.Detail)
	fmt.Fprintf(&b, "repro: go test ./internal/simcheck -run '%s' -seed=%d -ops=%d", run, v.Seed, v.Ops)
	if len(v.Trace) > 0 {
		fmt.Fprintf(&b, "\ntrace tail:\n  %s", strings.Join(v.Trace, "\n  "))
	}
	return b.String()
}

// runner holds one run's moving parts.
type runner struct {
	cfg     Config
	d       *core.Distributor
	rebuild func() (*core.Distributor, error) // re-open from the WAL dir
	fleet   *provider.Fleet
	hooked  []*provider.Hooked
	provPL  []privacy.Level
	inj     *injector
	m       *model
	tr      *trace
	rng     *rand.Rand // workload stream, independent of the injector's
	tick    func(time.Duration)
	res     Result

	nameSeq int
	clients []string
}

const password = "root"

// Run executes one simulation. It returns the run summary and, on an
// invariant violation, a *Violation as the error.
func Run(cfg Config) (Result, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 300
	}
	if cfg.Providers == 0 {
		cfg.Providers = 12
	}
	if cfg.Providers < 8 {
		return Result{}, fmt.Errorf("simcheck: need >= 8 providers, got %d", cfg.Providers)
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 40
	}
	if cfg.MaxFileBytes <= 0 {
		cfg.MaxFileBytes = 16 << 10
	}

	tr := newTrace()
	tr.addf("simcheck seed=%d ops=%d providers=%d cache=%d dark=%v bug=%v restart=%d lostcommit=%v",
		cfg.Seed, cfg.Ops, cfg.Providers, cfg.CacheBytes, cfg.DarkProvider, cfg.BugDropDeletes,
		cfg.RestartEvery, cfg.BugLoseLastCommit)

	fleet, err := provider.NewFleet()
	if err != nil {
		return Result{}, err
	}
	hooked := make([]*provider.Hooked, cfg.Providers)
	provPL := make([]privacy.Level, cfg.Providers)
	for i := 0; i < cfg.Providers; i++ {
		pl := privacy.High
		switch cfg.Providers - 1 - i {
		case 0:
			pl = privacy.Public
		case 1:
			pl = privacy.Low
		case 2, 3:
			pl = privacy.Moderate
		}
		provPL[i] = pl
		mem, err := provider.New(provider.Info{Name: fmt.Sprintf("sp%02d", i), PL: pl, CL: 1}, provider.Options{})
		if err != nil {
			return Result{}, err
		}
		hooked[i] = provider.NewHooked(mem)
		if err := fleet.Add(hooked[i]); err != nil {
			return Result{}, err
		}
	}

	// The breaker clock is virtual: one tick per op plus injected delay
	// jitter. Cooldowns therefore elapse in op counts, deterministically.
	var vnow atomic.Int64
	tick := func(delta time.Duration) { vnow.Add(int64(delta)) }
	inj := newInjector(cfg, cfg.Seed^0x5eedfa17, tr, tick, hooked)

	// A crash-restart run is durable: the WAL lives in a per-run temp
	// directory and every restart re-opens it against the same fleet and
	// the same virtual clock.
	walDir := ""
	if cfg.RestartEvery > 0 || cfg.BugLoseLastCommit {
		dir, err := os.MkdirTemp("", "simcheck-wal-")
		if err != nil {
			return Result{}, err
		}
		defer os.RemoveAll(dir)
		walDir = dir
	}
	build := func() (*core.Distributor, error) {
		return core.New(core.Config{
			Fleet:        fleet,
			StripeWidth:  3,
			Parallelism:  1, // sequential provider I/O: determinism anchor
			StreamWindow: 1, // lockstep streaming: same determinism anchor
			Secret:       []byte("simcheck-prf-secret"),
			MisleadSeed:  cfg.Seed,
			CacheBytes:   cfg.CacheBytes,
			Health: health.Config{
				Cooldown: 8 * time.Millisecond,
				Clock:    func() time.Time { return time.Unix(0, vnow.Load()) },
			},
			WALDir:         walDir,
			WALSync:        wal.SyncAlways, // grouped flushes on wall-clock: nondeterministic
			SnapshotEvery:  64,
			WALBugSkipSync: cfg.BugLoseLastCommit,
		})
	}
	d, err := build()
	if err != nil {
		return Result{}, err
	}
	r := &runner{
		cfg: cfg, d: d, rebuild: build, fleet: fleet, hooked: hooked, provPL: provPL,
		inj: inj, m: newModel(), tr: tr,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		tick: tick,
		res:  Result{Seed: cfg.Seed, Ops: cfg.Ops},
	}
	r.clients = []string{"alice", "bob"}
	for _, c := range r.clients {
		if err := d.RegisterClient(c); err != nil {
			return r.res, err
		}
		if err := d.AddPassword(c, password, privacy.High); err != nil {
			return r.res, err
		}
	}

	for i := 0; i < cfg.Ops; i++ {
		if cfg.RestartEvery > 0 && i > 0 && i%cfg.RestartEvery == 0 {
			if v := r.restart(i); v != nil {
				r.finish()
				return r.res, v
			}
			// Every invariant must hold against the freshly recovered
			// state before the workload resumes.
			if v := r.checkpoint(i); v != nil {
				r.finish()
				return r.res, v
			}
		}
		inj.atOp(i)
		if v := r.step(i); v != nil {
			r.finish()
			return r.res, v
		}
		if (i+1)%cfg.CheckEvery == 0 {
			if v := r.checkpoint(i); v != nil {
				r.finish()
				return r.res, v
			}
		}
	}
	if cfg.Ops%cfg.CheckEvery != 0 {
		if v := r.checkpoint(cfg.Ops - 1); v != nil {
			r.finish()
			return r.res, v
		}
	}
	r.finish()
	return r.res, nil
}

// restart drops the live distributor the way a power loss would and
// re-opens it from the WAL directory. The fleet, its blobs and the
// virtual clock survive (providers are remote machines); everything the
// distributor held in memory must come back from the log.
func (r *runner) restart(i int) *Violation {
	r.inj.suspend()
	defer r.inj.resume()
	r.tr.addf("op=%d crash-restart", i)
	if err := r.d.Crash(); err != nil {
		return r.violation(i, "recovery", fmt.Sprintf("Crash: %v", err))
	}
	d2, err := r.rebuild()
	if err != nil {
		return r.violation(i, "recovery", fmt.Sprintf("re-open after crash: %v", err))
	}
	r.d = d2
	r.res.Restarts++
	st := d2.Metrics().WAL
	r.tr.addf("op=%d recovered snapshot=%v replayed=%d torn=%v orphans=%d",
		i, st.RecoveredSnapshot, st.Replayed, st.TailTruncated, st.RecoveryOrphans)
	return nil
}

func (r *runner) finish() {
	r.res.Faults = r.inj.faultCounts()
	r.res.Metrics = r.d.Metrics()
	r.res.TraceHash = r.tr.hashHex()
}

// errClass collapses an error to a stable label so traces hash
// identically across runs without depending on full error strings.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, core.ErrUnavailable):
		return "unavailable"
	case errors.Is(err, core.ErrPlacement):
		return "placement"
	case errors.Is(err, core.ErrCircuitOpen):
		return "circuit"
	case errors.Is(err, core.ErrConflict):
		return "conflict"
	case errors.Is(err, core.ErrExists):
		return "exists"
	case errors.Is(err, core.ErrNoSuchFile):
		return "nosuchfile"
	case errors.Is(err, core.ErrNoSuchChunk):
		return "nosuchchunk"
	case errors.Is(err, core.ErrRange):
		return "range"
	case errors.Is(err, provider.ErrOutage):
		return "outage"
	case errors.Is(err, provider.ErrInjected):
		return "transient"
	case errors.Is(err, provider.ErrNotFound):
		return "notfound"
	default:
		return "err"
	}
}

// step executes one randomized workload operation. A non-nil return is
// an invariant violation observed mid-window (a read served wrong
// bytes — reads may fail under faults, but must never lie).
func (r *runner) step(i int) *Violation {
	live := r.m.live()
	k := r.rng.Intn(100)
	if len(live) == 0 {
		k = 0 // nothing to read, mutate or remove yet
	}
	switch {
	case k < 24:
		r.opUpload(i)
		return nil
	case k < 44:
		return r.opGetFile(i, live)
	case k < 58:
		return r.opGetRange(i, live)
	case k < 64:
		return r.opGetChunk(i, live)
	case k < 80:
		r.opUpdate(i, live)
		return nil
	case k < 90:
		r.opRemove(i, live)
		return nil
	case k < 94:
		r.opScrub(i)
		return nil
	default:
		r.opDecommission(i)
		return nil
	}
}

func (r *runner) opUpload(i int) {
	client := r.clients[r.rng.Intn(len(r.clients))]
	name := fmt.Sprintf("f%05d", r.nameSeq)
	r.nameSeq++
	pl := privacy.Level(r.rng.Intn(int(privacy.MaxLevel) + 1))
	data := make([]byte, r.rng.Intn(r.cfg.MaxFileBytes+1))
	r.rng.Read(data)
	opts := core.UploadOptions{}
	if r.rng.Intn(2) == 0 {
		opts.Assurance = raid.RAID6
	} else {
		opts.Assurance = raid.RAID5
	}
	if r.rng.Float64() < 0.15 {
		opts.NoParity = true
	}
	if r.rng.Float64() < 0.35 {
		opts.MisleadFraction = 0.1 + 0.2*r.rng.Float64()
	}
	if r.rng.Float64() < 0.30 {
		opts.Replicas = 1
	}
	r.res.UploadsAttempted++
	// Half the uploads take the streaming path (UploadStream over an
	// io.Reader, window 1), so every fault schedule also exercises the
	// windowed plan→ship→commit pipeline and its rollback.
	var (
		fi   core.FileInfo
		err  error
		verb = "upload"
	)
	if r.rng.Intn(2) == 0 {
		verb = "ustream"
		r.res.StreamUploads++
		fi, err = r.d.UploadStream(client, password, name, bytes.NewReader(data), pl, opts)
	} else {
		fi, err = r.d.Upload(client, password, name, data, pl, opts)
	}
	r.tr.addf("op=%d %s c=%s f=%s pl=%d size=%d raid=%v np=%v ml=%.2f rep=%d -> %s",
		i, verb, client, name, pl, len(data), opts.Assurance, opts.NoParity, opts.MisleadFraction, opts.Replicas, errClass(err))
	if err == nil {
		r.res.UploadsOK++
		r.m.addFile(client, name, data, pl, fi.Raid)
	}
}

func (r *runner) pick(live []*modelFile) *modelFile { return live[r.rng.Intn(len(live))] }

// checkRead verifies a successful read against the model: under any
// fault schedule a read may fail, but it must never return wrong bytes.
func (r *runner) checkRead(i int, f *modelFile, what string, got, want []byte, err error) *Violation {
	r.res.ReadsAttempted++
	if err != nil {
		return nil
	}
	r.res.ReadsOK++
	if !bytes.Equal(got, want) {
		return r.violation(i, "read-integrity",
			fmt.Sprintf("%s of %s/%s returned %d bytes that differ from the model (%d bytes expected)",
				what, f.client, f.name, len(got), len(want)))
	}
	return nil
}

func (r *runner) opGetFile(i int, live []*modelFile) *Violation {
	f := r.pick(live)
	// Half the whole-file reads stream through GetFileTo (window 1), so
	// the ordered-delivery path faces the same fault schedules as the
	// buffered one. A failed streamed read may leave a partial prefix in
	// the buffer; only a *successful* read must match the model.
	if r.rng.Intn(2) == 0 {
		r.res.StreamReads++
		var buf bytes.Buffer
		n, err := r.d.GetFileTo(&buf, f.client, password, f.name)
		r.tr.addf("op=%d getfileto c=%s f=%s n=%d -> %s", i, f.client, f.name, n, errClass(err))
		got := buf.Bytes()
		if err == nil && int64(len(got)) != n {
			return r.violation(i, "read-integrity",
				fmt.Sprintf("GetFileTo of %s/%s reported %d bytes but wrote %d", f.client, f.name, n, len(got)))
		}
		return r.checkRead(i, f, "GetFileTo", got, f.bytes(), err)
	}
	got, err := r.d.GetFile(f.client, password, f.name)
	r.tr.addf("op=%d getfile c=%s f=%s -> %s", i, f.client, f.name, errClass(err))
	return r.checkRead(i, f, "GetFile", got, f.bytes(), err)
}

func (r *runner) opGetRange(i int, live []*modelFile) *Violation {
	f := r.pick(live)
	want := f.bytes()
	if len(want) == 0 {
		return r.opGetFile(i, live)
	}
	off := r.rng.Intn(len(want))
	max := len(want) - off
	if max > 4096 {
		max = 4096
	}
	n := 1 + r.rng.Intn(max)
	got, err := r.d.GetRange(f.client, password, f.name, off, n)
	r.tr.addf("op=%d getrange c=%s f=%s off=%d n=%d -> %s", i, f.client, f.name, off, n, errClass(err))
	return r.checkRead(i, f, "GetRange", got, want[off:off+n], err)
}

func (r *runner) opGetChunk(i int, live []*modelFile) *Violation {
	f := r.pick(live)
	serial := r.rng.Intn(len(f.chunks))
	got, err := r.d.GetChunk(f.client, password, f.name, serial)
	r.tr.addf("op=%d getchunk c=%s f=%s serial=%d -> %s", i, f.client, f.name, serial, errClass(err))
	return r.checkRead(i, f, "GetChunk", got, f.chunks[serial], err)
}

func (r *runner) opUpdate(i int, live []*modelFile) {
	f := r.pick(live)
	serial := r.rng.Intn(len(f.chunks))
	size, err := r.m.policy.Size(f.pl)
	if err != nil || size <= 0 {
		size = 8 << 10
	}
	data := make([]byte, 1+r.rng.Intn(size))
	r.rng.Read(data)
	opts := core.UploadOptions{}
	if r.rng.Float64() < 0.25 {
		opts.MisleadFraction = 0.1 + 0.1*r.rng.Float64()
	}
	err = r.d.UpdateChunk(f.client, password, f.name, serial, data, opts)
	r.tr.addf("op=%d update c=%s f=%s serial=%d size=%d -> %s", i, f.client, f.name, serial, len(data), errClass(err))
	r.res.Updates++
	if err == nil {
		f.chunks[serial] = data
	}
}

func (r *runner) opRemove(i int, live []*modelFile) {
	f := r.pick(live)
	err := r.d.RemoveFile(f.client, password, f.name)
	r.tr.addf("op=%d remove c=%s f=%s -> %s", i, f.client, f.name, errClass(err))
	r.res.Removes++
	if err == nil {
		r.m.drop(f.client, f.name)
	} else {
		// A failed remove may have deleted some blobs or even committed
		// the table removal; the checkpoint re-drives it to convergence.
		f.limbo = true
	}
}

func (r *runner) opScrub(i int) {
	rep, err := r.d.Scrub()
	r.tr.addf("op=%d scrub checked=%d repaired=%d unrepairable=%d parity=%d/%d -> %s",
		i, rep.ChunksChecked, rep.Repaired, rep.Unrepairable, rep.ParityRepaired, rep.ParityChecked, errClass(err))
	r.res.Scrubs++
}

func (r *runner) opDecommission(i int) {
	p := r.rng.Intn(r.cfg.Providers)
	_, err := r.d.Decommission(p)
	r.tr.addf("op=%d decommission p=%d -> %s", i, p, errClass(err))
	r.res.Decommissions++
}

func (r *runner) violation(op int, invariant, detail string) *Violation {
	v := &Violation{
		Seed: r.cfg.Seed, Ops: r.cfg.Ops, Op: op,
		Invariant: invariant, Detail: detail,
		Trace: r.tr.tail(25),
	}
	if r.cfg.RestartEvery > 0 || r.cfg.BugLoseLastCommit {
		v.Repro = "TestSimCheckCrashRestart"
	}
	r.tr.addf("VIOLATION op=%d %s: %s", op, invariant, detail)
	return v
}
