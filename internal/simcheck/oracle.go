package simcheck

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/raid"
)

// chunkLoc is the oracle's physical index for one logical chunk: where
// its primary and mirrors live and which stripe (if any) covers it.
type chunkLoc struct {
	primary   int
	mirrors   []int
	stripeIdx int // index into view.Stripes, -1 when unstriped
}

// checkpoint drives the distributor to a quiescent point and checks the
// durability invariants against the model:
//
//  1. every committed file is fully readable, byte-for-byte;
//  2. no blob sits on a provider whose PL is below the blob's;
//  3. generation counters are monotonic and stripes are internally
//     consistent (parity recomputed from raw member bytes matches the
//     stored parity — cross-generation mixing cannot pass this);
//  4. the only provider-resident keys outside the tables are deletes
//     the injector made fail — rollback leaves no unexplained orphans;
//  5. losing any f providers (f = the stripe's parity tolerance) still
//     reconstructs every expected-readable chunk.
//
// Faults are suspended for the duration; windows keep expiring by op
// count so a blackout can span a checkpoint without wedging it.
func (r *runner) checkpoint(opIdx int) *Violation {
	r.inj.suspend()
	defer r.inj.resume()
	r.res.Checkpoints++
	// Let every breaker cooldown elapse so probes can close circuits.
	r.tick(20 * time.Millisecond)

	// Re-drive interrupted removes to convergence: a failed RemoveFile
	// may have left the file live, half-deleted, or fully removed.
	for _, f := range r.m.limboFiles() {
		var err error
		for attempt := 0; attempt < 4; attempt++ {
			err = r.d.RemoveFile(f.client, password, f.name)
			if err == nil || errors.Is(err, core.ErrNoSuchFile) {
				err = nil
				break
			}
		}
		if err != nil {
			return r.violation(opIdx, "remove-convergence",
				fmt.Sprintf("RemoveFile %s/%s cannot complete on a healthy fleet: %v", f.client, f.name, err))
		}
		r.tr.addf("check op=%d limbo-remove c=%s f=%s done", opIdx, f.client, f.name)
		r.m.drop(f.client, f.name)
	}

	// Scrub on a healthy fleet must repair everything outstanding: the
	// at-rest rot injected after the previous checkpoint stayed within
	// each stripe's parity budget, so nothing may be unrepairable.
	srep, err := r.d.Scrub()
	if err != nil {
		return r.violation(opIdx, "scrub", fmt.Sprintf("Scrub on healthy fleet: %v", err))
	}
	r.res.Scrubs++
	r.tr.addf("check op=%d scrub checked=%d repaired=%d parity=%d/%d", opIdx,
		srep.ChunksChecked, srep.Repaired, srep.ParityRepaired, srep.ParityChecked)
	if srep.Unrepairable > 0 || srep.ParityUnrepairable > 0 {
		return r.violation(opIdx, "scrub-unrepairable",
			fmt.Sprintf("healthy-fleet scrub left %d chunks / %d parity shards unrepairable",
				srep.Unrepairable, srep.ParityUnrepairable))
	}

	view := r.d.StateView()
	if !view.Quiescent {
		return r.violation(opIdx, "quiescence",
			"StateView reports open write tickets on an idle distributor (leaked ticket or reservation)")
	}

	// Invariant 3a: generation counters never move backwards.
	if view.Gen < r.m.lastDistGen {
		return r.violation(opIdx, "generation-monotonic",
			fmt.Sprintf("distributor generation went backwards: %d -> %d", r.m.lastDistGen, view.Gen))
	}
	newGens := make(map[uint64]uint64, len(view.Files))
	for _, fv := range view.Files {
		if last, ok := r.m.lastGen[fv.FID]; ok && fv.Gen < last {
			return r.violation(opIdx, "generation-monotonic",
				fmt.Sprintf("file %s/%s (fid %d) generation went backwards: %d -> %d",
					fv.Client, fv.Filename, fv.FID, last, fv.Gen))
		}
		newGens[fv.FID] = fv.Gen
	}

	// The table's file set must equal the model's, chunk-for-chunk.
	files := r.m.live()
	if len(view.Files) != len(files) {
		return r.violation(opIdx, "file-set",
			fmt.Sprintf("tables hold %d files, model holds %d", len(view.Files), len(files)))
	}
	for i, f := range files { // both sides sorted by (client, name)
		fv := view.Files[i]
		if fv.Client != f.client || fv.Filename != f.name {
			return r.violation(opIdx, "file-set",
				fmt.Sprintf("tables[%d] = %s/%s, model = %s/%s", i, fv.Client, fv.Filename, f.client, f.name))
		}
		if fv.Live != len(f.chunks) {
			return r.violation(opIdx, "file-set",
				fmt.Sprintf("%s/%s has %d live chunks, model has %d", f.client, f.name, fv.Live, len(f.chunks)))
		}
	}

	// Invariant 2 + presence: every committed blob exists on its
	// provider, at its recorded length, on a provider whose PL covers it.
	for _, b := range view.Blobs {
		if b.ProvIdx < 0 || b.ProvIdx >= len(r.provPL) {
			return r.violation(opIdx, "placement",
				fmt.Sprintf("blob %s on out-of-range provider %d", b.VID, b.ProvIdx))
		}
		if r.provPL[b.ProvIdx] < b.PL {
			return r.violation(opIdx, "placement",
				fmt.Sprintf("%s blob %s (PL %d) of %s/%s placed on sp%02d (PL %d)",
					b.Kind, b.VID, b.PL, b.Client, b.Filename, b.ProvIdx, r.provPL[b.ProvIdx]))
		}
		p, err := r.fleet.At(b.ProvIdx)
		if err != nil {
			return r.violation(opIdx, "placement", fmt.Sprintf("provider %d: %v", b.ProvIdx, err))
		}
		got, err := p.Get(b.VID)
		if err != nil {
			return r.violation(opIdx, "blob-presence",
				fmt.Sprintf("%s blob %s of %s/%s missing from sp%02d: %v",
					b.Kind, b.VID, b.Client, b.Filename, b.ProvIdx, err))
		}
		if b.PayloadLen > 0 && len(got) != b.PayloadLen {
			return r.violation(opIdx, "blob-presence",
				fmt.Sprintf("%s blob %s holds %d bytes, tables say %d", b.Kind, b.VID, len(got), b.PayloadLen))
		}
	}

	// Invariant 3b: recompute every stripe's parity from the raw member
	// bytes the providers hold right now. Members and parity from
	// different generations cannot XOR out clean.
	if v := r.checkStripes(opIdx, &view); v != nil {
		return v
	}

	// Invariant 1: every committed byte readable, through the full read
	// path (cache, mislead stripping, mirrors, reconstruction).
	for _, f := range files {
		want := f.bytes()
		got, err := r.d.GetFile(f.client, password, f.name)
		if err != nil {
			return r.violation(opIdx, "readability",
				fmt.Sprintf("GetFile %s/%s on healthy fleet: %v", f.client, f.name, err))
		}
		if !bytes.Equal(got, want) {
			return r.violation(opIdx, "readability",
				fmt.Sprintf("GetFile %s/%s returned %d bytes differing from the model (%d expected)",
					f.client, f.name, len(got), len(want)))
		}
		if len(want) > 0 {
			off := r.rng.Intn(len(want))
			max := len(want) - off
			if max > 2048 {
				max = 2048
			}
			n := 1 + r.rng.Intn(max)
			rgot, err := r.d.GetRange(f.client, password, f.name, off, n)
			if err != nil || !bytes.Equal(rgot, want[off:off+n]) {
				return r.violation(opIdx, "readability",
					fmt.Sprintf("GetRange %s/%s [%d,%d) on healthy fleet: err=%v", f.client, f.name, off, off+n, err))
			}
		}
	}

	// Invariant 4: audit first, GC second. Every orphan must be a delete
	// the injector failed; anything else is a rollback/bookkeeping bug.
	audit, err := r.d.AuditOrphans(false)
	if err != nil {
		return r.violation(opIdx, "orphans", fmt.Sprintf("AuditOrphans: %v", err))
	}
	provNames := make([]string, 0, len(audit.Orphans))
	for name := range audit.Orphans {
		provNames = append(provNames, name)
	}
	sort.Strings(provNames)
	orphanCount := 0
	for _, name := range provNames {
		keys := append([]string(nil), audit.Orphans[name]...)
		sort.Strings(keys)
		for _, key := range keys {
			orphanCount++
			if !r.inj.allowedOrphan(key) {
				return r.violation(opIdx, "orphans",
					fmt.Sprintf("blob %s on %s is referenced by nothing and does not come from a failed delete; history: %v",
						key, name, r.inj.keyHistory(key)))
			}
		}
	}
	if orphanCount > 0 {
		gcRep, err := r.d.AuditOrphans(true)
		if err != nil {
			return r.violation(opIdx, "orphans", fmt.Sprintf("AuditOrphans(gc): %v", err))
		}
		r.res.OrphansCollected += gcRep.Deleted
		r.tr.addf("check op=%d orphans=%d collected=%d", opIdx, orphanCount, gcRep.Deleted)
		clean, err := r.d.AuditOrphans(false)
		if err != nil {
			return r.violation(opIdx, "orphans", fmt.Sprintf("AuditOrphans recheck: %v", err))
		}
		for name, keys := range clean.Orphans {
			if len(keys) > 0 {
				return r.violation(opIdx, "orphans",
					fmt.Sprintf("%d orphans on %s survived a healthy-fleet GC", len(keys), name))
			}
		}
	}

	// Invariant 5: f-loss drills. Partition f providers, then every
	// chunk whose redundancy should survive that loss must still read
	// back exactly.
	for f := 1; f <= 2; f++ {
		if v := r.drill(opIdx, &view, files, f); v != nil {
			return v
		}
	}

	// Arm the next window: inject at-rest rot within parity budgets.
	if opIdx+1 < r.cfg.Ops {
		r.injectRot(opIdx, &view)
	}

	r.m.lastGen = newGens
	r.m.lastDistGen = view.Gen
	r.tr.addf("check op=%d ok files=%d blobs=%d stripes=%d", opIdx, len(files), len(view.Blobs), len(view.Stripes))
	return nil
}

// checkStripes recomputes parity from raw provider bytes for every
// stripe and compares against the stored parity blobs.
func (r *runner) checkStripes(opIdx int, view *core.StateView) *Violation {
	for si, st := range view.Stripes {
		if len(st.Members) == 0 || len(st.Parity) == 0 {
			continue
		}
		if len(st.Parity) != st.Level.ParityShards() {
			return r.violation(opIdx, "stripe-consistency",
				fmt.Sprintf("stripe %d (%v) has %d parity shards, want %d", si, st.Level, len(st.Parity), st.Level.ParityShards()))
		}
		data := make([][]byte, len(st.Members))
		for mi, mb := range st.Members {
			p, err := r.fleet.At(mb.ProvIdx)
			if err != nil {
				return r.violation(opIdx, "stripe-consistency", fmt.Sprintf("stripe %d member provider: %v", si, err))
			}
			raw, err := p.Get(mb.VID)
			if err != nil {
				return r.violation(opIdx, "stripe-consistency",
					fmt.Sprintf("stripe %d member %s unreadable: %v", si, mb.VID, err))
			}
			padded := make([]byte, st.ShardLen)
			copy(padded, raw)
			data[mi] = padded
		}
		expected := make([][]byte, len(st.Parity))
		for pi := range expected {
			expected[pi] = make([]byte, st.ShardLen)
		}
		if err := raid.ParityInto(st.Level, data, expected); err != nil {
			return r.violation(opIdx, "stripe-consistency", fmt.Sprintf("stripe %d recompute: %v", si, err))
		}
		for pi, pb := range st.Parity {
			p, err := r.fleet.At(pb.ProvIdx)
			if err != nil {
				return r.violation(opIdx, "stripe-consistency", fmt.Sprintf("stripe %d parity provider: %v", si, err))
			}
			raw, err := p.Get(pb.VID)
			if err != nil {
				return r.violation(opIdx, "stripe-consistency",
					fmt.Sprintf("stripe %d parity %s unreadable: %v", si, pb.VID, err))
			}
			if !bytes.Equal(raw, expected[pi]) {
				return r.violation(opIdx, "stripe-consistency",
					fmt.Sprintf("stripe %d (%v, %s/%s) parity shard %d does not match parity recomputed from raw members — cross-generation mixing or stale parity",
						si, st.Level, pb.Client, pb.Filename, pi))
			}
		}
	}
	return nil
}

// chunkIndex builds the oracle's chunk → placement map from a view.
func chunkIndex(view *core.StateView) map[string]*chunkLoc {
	idx := make(map[string]*chunkLoc)
	key := func(client, name string, serial int) string {
		return fmt.Sprintf("%s/%s#%d", client, name, serial)
	}
	byVID := make(map[string]int)
	for si, st := range view.Stripes {
		for _, mb := range st.Members {
			byVID[mb.VID] = si
		}
	}
	for _, b := range view.Blobs {
		switch b.Kind {
		case core.BlobChunk:
			k := key(b.Client, b.Filename, b.Serial)
			loc := idx[k]
			if loc == nil {
				loc = &chunkLoc{stripeIdx: -1}
				idx[k] = loc
			}
			loc.primary = b.ProvIdx
			if si, ok := byVID[b.VID]; ok {
				loc.stripeIdx = si
			}
		case core.BlobMirror:
			k := key(b.Client, b.Filename, b.Serial)
			loc := idx[k]
			if loc == nil {
				loc = &chunkLoc{stripeIdx: -1}
				idx[k] = loc
			}
			loc.mirrors = append(loc.mirrors, b.ProvIdx)
		}
	}
	return idx
}

// drill partitions f random providers and asserts the exact readability
// the committed placement promises: a chunk must survive if its primary
// or any mirror is up, or if its stripe lost no more shards than its
// parity tolerance. Reads that succeed must match the model either way.
func (r *runner) drill(opIdx int, view *core.StateView, files []*modelFile, f int) *Violation {
	if len(files) == 0 || f >= len(r.hooked) {
		return nil
	}
	down := make(map[int]bool, f)
	for len(down) < f {
		down[r.rng.Intn(len(r.hooked))] = true
	}
	downList := make([]int, 0, f)
	for p := range down {
		downList = append(downList, p)
	}
	sort.Ints(downList)
	r.tr.addf("check op=%d drill f=%d down=%v", opIdx, f, downList)

	idx := chunkIndex(view)
	for _, p := range downList {
		r.hooked[p].SetPartitioned(true)
	}
	defer func() {
		for _, p := range downList {
			r.hooked[p].SetPartitioned(false)
		}
		// Heal the breakers the drill tripped before the window resumes.
		r.tick(20 * time.Millisecond)
	}()

	for _, mf := range files {
		expected := true
		for serial := range mf.chunks {
			loc := idx[fmt.Sprintf("%s/%s#%d", mf.client, mf.name, serial)]
			if loc == nil {
				return r.violation(opIdx, "f-loss",
					fmt.Sprintf("chunk %s/%s#%d has no committed placement", mf.client, mf.name, serial))
			}
			ok := !down[loc.primary]
			for _, m := range loc.mirrors {
				ok = ok || !down[m]
			}
			if !ok && loc.stripeIdx >= 0 {
				st := view.Stripes[loc.stripeIdx]
				losses := 0
				for _, mb := range st.Members {
					if down[mb.ProvIdx] {
						losses++
					}
				}
				for _, pb := range st.Parity {
					if down[pb.ProvIdx] {
						losses++
					}
				}
				ok = losses <= st.Level.ParityShards()
			}
			if !ok {
				expected = false
				break
			}
		}
		got, err := r.d.GetFile(mf.client, password, mf.name)
		r.res.DrillReads++
		if err == nil && !bytes.Equal(got, mf.bytes()) {
			return r.violation(opIdx, "f-loss",
				fmt.Sprintf("GetFile %s/%s under %d-provider loss %v served wrong bytes", mf.client, mf.name, f, downList))
		}
		if expected && err != nil {
			return r.violation(opIdx, "f-loss",
				fmt.Sprintf("GetFile %s/%s should survive losing providers %v (placement promises it) but failed: %v",
					mf.client, mf.name, downList, err))
		}
	}
	return nil
}

// injectRot corrupts a few blobs at rest for the next window, budgeted
// so scrub can always repair: at most one rot per stripe (members and
// parity share the budget), and unstriped chunks are rotted only when
// a mirror can restore them.
func (r *runner) injectRot(opIdx int, view *core.StateView) {
	if r.cfg.RotPerCheckpoint <= 0 || len(view.Blobs) == 0 {
		return
	}
	byVID := make(map[string]int)
	hasParity := make(map[int]bool)
	for si, st := range view.Stripes {
		hasParity[si] = len(st.Parity) > 0
		for _, mb := range st.Members {
			byVID[mb.VID] = si
		}
		for _, pb := range st.Parity {
			byVID[pb.VID] = si
		}
	}
	mirrorCount := make(map[string]int)
	for _, b := range view.Blobs {
		if b.Kind == core.BlobMirror {
			mirrorCount[fmt.Sprintf("%s/%s#%d", b.Client, b.Filename, b.Serial)]++
		}
	}
	var candidates []core.BlobView
	for _, b := range view.Blobs {
		if (b.Kind == core.BlobChunk || b.Kind == core.BlobParity) && b.PayloadLen > 0 {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		return
	}
	rotted := make(map[int]int)    // stripe index -> rots this round
	rottedVID := map[string]bool{} // never rot the same blob twice
	for n := 0; n < r.cfg.RotPerCheckpoint; n++ {
		b := candidates[r.rng.Intn(len(candidates))]
		if rottedVID[b.VID] {
			continue
		}
		// A rot is only safe when something can restore the blob. Stripe
		// reconstruction covers it when the stripe carries parity AND this
		// is the stripe's first rot this round — one rot per stripe, not
		// ParityShards, because a rotted parity blob is indistinguishable
		// from a healthy one at fetch time (only chunks carry end-to-end
		// checksums), so repairing a rotted member may deterministically
		// pick the rotted parity and fail while the parity recompute needs
		// the rotted member. NoParity uploads still build (parity-less)
		// stripes, which reconstruct nothing. Everything else needs a
		// mirror.
		si, striped := byVID[b.VID]
		if !(striped && hasParity[si] && rotted[si] == 0) {
			if b.Kind != core.BlobChunk ||
				mirrorCount[fmt.Sprintf("%s/%s#%d", b.Client, b.Filename, b.Serial)] == 0 {
				continue // nothing could restore it
			}
		}
		p, err := r.fleet.At(b.ProvIdx)
		if err != nil {
			continue
		}
		raw, err := p.Get(b.VID)
		if err != nil || len(raw) == 0 {
			continue
		}
		for i := range raw {
			raw[i] ^= 0x3C
		}
		if err := p.Put(b.VID, raw); err != nil {
			continue
		}
		if striped {
			rotted[si]++
		}
		rottedVID[b.VID] = true
		r.tr.addf("check op=%d rot kind=%s vid=%s p=%d len=%d", opIdx, b.Kind, b.VID, b.ProvIdx, len(raw))
	}
}
