package simcheck

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dumpShardArtifact writes a failing sharded run's full trace to
// $SIMCHECK_ARTIFACTS next to the repro line, like dumpArtifact.
func dumpShardArtifact(t *testing.T, cfg ShardConfig, v *Violation) {
	dir := os.Getenv("SIMCHECK_ARTIFACTS")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("simcheck: cannot create artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("simcheck-shard-seed%d.txt", cfg.Seed))
	body := v.Error() + "\n\nfull trace:\n" + strings.Join(v.Trace, "\n") + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Logf("simcheck: cannot write artifact: %v", err)
		return
	}
	t.Logf("simcheck: failing-seed artifact written to %s", path)
}

func runShardSeed(t *testing.T, cfg ShardConfig) ShardResult {
	t.Helper()
	res, err := RunSharded(cfg)
	if err != nil {
		var v *Violation
		if errors.As(err, &v) {
			dumpShardArtifact(t, cfg, v)
		}
		t.Fatalf("%v", err)
	}
	return res
}

// TestSimCheckSharded sweeps seeded schedules of inter-distributor
// partitions, primary outages and primary crash-restarts across a
// consistent-hash sharded namespace. Per-shard oracle invariants —
// byte-exact readability (including follower-served reads), zero
// replication lag after sync, follower/primary state equality,
// generation monotonicity across crashes, and namespace isolation —
// must hold at every checkpoint. Reproduce any failure with the
// printed repro line, e.g.
//
//	go test ./internal/simcheck -run 'TestSimCheckSharded' -seed=7 -ops=240
func TestSimCheckSharded(t *testing.T) {
	if *flagSeed != 0 {
		cfg := DefaultShardConfig(*flagSeed)
		if *flagOps > 0 {
			cfg.Ops = *flagOps
		}
		res := runShardSeed(t, cfg)
		t.Logf("seed=%d shards=%d trace=%s uploads=%d/%d reads=%d/%d partitions=%d primary-downs=%d restarts=%d snapsyncs=%d",
			res.Seed, res.Shards, res.TraceHash[:16], res.UploadsOK, res.Uploads,
			res.ReadsOK, res.Reads, res.FollowerOutages, res.PrimaryOutages, res.Restarts, res.SnapshotSyncs)
		return
	}
	seeds := *flagSeeds
	if seeds == 0 {
		seeds = 32
		if testing.Short() {
			seeds = 8
		}
	}
	var partitions, primaryDowns, restarts int
	for s := int64(1); s <= int64(seeds); s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			cfg := DefaultShardConfig(s)
			if *flagOps > 0 {
				cfg.Ops = *flagOps
			}
			res := runShardSeed(t, cfg)
			if res.UploadsOK == 0 {
				t.Fatalf("seed %d: no upload ever succeeded (%d attempted)", s, res.Uploads)
			}
			if res.ReadsOK != res.Reads {
				t.Fatalf("seed %d: %d of %d reads failed; with replicas up this harness requires all reads to succeed",
					s, res.Reads-res.ReadsOK, res.Reads)
			}
			if res.Checkpoints == 0 {
				t.Fatalf("seed %d: no checkpoint ran", s)
			}
			if res.RecordsReplicated == 0 {
				t.Fatalf("seed %d: replication feed never carried a record", s)
			}
			partitions += res.FollowerOutages
			primaryDowns += res.PrimaryOutages
			restarts += res.Restarts
		})
	}
	// Individual seeds may draw no fault of one class; the sweep as a
	// whole must exercise all three or the oracle is checking nothing.
	if partitions == 0 || primaryDowns == 0 || restarts == 0 {
		t.Fatalf("sweep exercised partitions=%d primary-downs=%d restarts=%d; every fault class must fire",
			partitions, primaryDowns, restarts)
	}
}

// TestSimCheckShardedDeterministic demands that a sharded run — fault
// windows, crash recoveries and all — replays bit-identically, so the
// sharded repro line is honest.
func TestSimCheckShardedDeterministic(t *testing.T) {
	cfg := DefaultShardConfig(6)
	cfg.Ops = 180
	a := runShardSeed(t, cfg)
	b := runShardSeed(t, cfg)
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hashes differ across identical sharded runs: %s vs %s", a.TraceHash, b.TraceHash)
	}
	if a != b {
		t.Fatalf("results differ across identical sharded runs:\n  %+v\n  %+v", a, b)
	}
	if a.FollowerOutages+a.PrimaryOutages+a.Restarts == 0 {
		t.Fatal("no fault window fired; determinism check is vacuous")
	}
}
