// Package simcheck is a deterministic simulation harness for the
// distributor: a seeded fault schedule (per-op failures, delays,
// corrupted bytes, partitions, crash-mid-write, full-fleet blackouts)
// interleaved with a randomized workload over a real core.Distributor
// and an in-memory reference model. At every quiescent checkpoint a
// model-based oracle checks the distributor's durability invariants;
// any violation carries a one-line `go test` repro with the seed.
//
// The whole run is a pure function of Config: providers are in-memory,
// parallelism is 1, hedging is off, and the circuit-breaker clock is
// virtual (advanced per op, never read from wall time), so the same
// seed always produces the same op sequence, the same fault schedule,
// the same breaker states and the same trace hash.
package simcheck

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
)

// trace is the run's op/fault log: every line feeds an incremental
// sha256 so two runs can be compared by hash, and the tail is kept for
// violation reports.
type trace struct {
	mu    sync.Mutex
	h     hash.Hash
	lines []string
}

func newTrace() *trace { return &trace{h: sha256.New()} }

func (t *trace) addf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.h.Write([]byte(line))
	t.h.Write([]byte{'\n'})
	t.lines = append(t.lines, line)
}

// hashHex returns the hex digest of everything traced so far.
func (t *trace) hashHex() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return hex.EncodeToString(t.h.Sum(nil))
}

// tail returns the last n trace lines.
func (t *trace) tail(n int) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > len(t.lines) {
		n = len(t.lines)
	}
	out := make([]string, n)
	copy(out, t.lines[len(t.lines)-n:])
	return out
}

// all returns a copy of every trace line, for artifact dumps.
func (t *trace) all() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.lines...)
}
